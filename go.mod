module archexplorer

go 1.22
