// Sim→DEG pipeline benchmarks: the bench-pipeline Makefile target runs
// exactly these. BenchmarkPipelineBuffered measures the classic two-phase
// flow — materialize the full trace, then run the windowed analysis over
// it — while BenchmarkPipelineStream measures the fused flow, where the
// simulator's chunks feed the StreamAnalyzer directly and no full trace
// ever exists. Both produce bit-identical reports (pinned by
// internal/deg's stream parity tests); the difference is peak memory and
// the overlap of simulation with analysis. BENCH_pipeline.json records
// the before/after numbers, including the live-heap measurements from the
// Large variants.
//
//	make bench-pipeline   # 20k-instruction throughput benchmarks, -benchmem
//	make bench-all        # every bench family, gated against BENCH_*.json
package archexplorer

import (
	"io"
	"runtime"
	"testing"

	"archexplorer/internal/deg"
	"archexplorer/internal/isa"
	"archexplorer/internal/obs"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// pipelineWindow matches the evaluator's default windowed-analysis
// configuration closely enough to be representative: 2000-instruction
// windows with the ROB-derived margin.
const pipelineWindow = 2000

func pipelineStream(b *testing.B, n int) []isa.Inst {
	b.Helper()
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

func runBuffered(b *testing.B, cfg uarch.Config, stream []isa.Inst) *pipetrace.Trace {
	b.Helper()
	core, err := ooo.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := deg.AnalyzeWindowed(tr, deg.WindowOptions{
		Window: pipelineWindow, ReorderWindow: cfg.ROBEntries,
	}); err != nil {
		b.Fatal(err)
	}
	return tr
}

func runStreamed(b *testing.B, cfg uarch.Config, stream []isa.Inst, probe func(sa *deg.StreamAnalyzer)) {
	runStreamedWorkers(b, cfg, stream, 1, probe)
}

// runStreamedWorkers is runStreamed with an explicit analysis worker
// count; the benchmarks pin it instead of deriving it from the host so a
// committed baseline means the same thing on every machine.
func runStreamedWorkers(b *testing.B, cfg uarch.Config, stream []isa.Inst, workers int, probe func(sa *deg.StreamAnalyzer)) {
	b.Helper()
	core, err := ooo.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sa, err := deg.NewStreamAnalyzer(deg.WindowOptions{
		Window: pipelineWindow, ReorderWindow: cfg.ROBEntries,
		Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	fed := 0
	stats, err := core.RunStream(stream, 0, func(c *pipetrace.Chunk) error {
		err := sa.Feed(c)
		if probe != nil {
			fed += len(c.Records)
			if fed >= len(stream)/2 {
				probe(sa)
				probe = nil
			}
		}
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sa.Finish(stats.Cycles); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineBuffered: simulate to a pooled full trace, then run the
// windowed DEG analysis over it. Peak memory holds the whole trace plus
// one window's graph.
func BenchmarkPipelineBuffered(b *testing.B) {
	stream := pipelineStream(b, 20000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBuffered(b, cfg, stream).Release()
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineStream: the fused sim→DEG flow over the same trace.
// Peak memory holds only the analyzer's window+margin working set of
// records, never the full trace.
func BenchmarkPipelineStream(b *testing.B) {
	stream := pipelineStream(b, 20000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStreamed(b, cfg, stream, nil)
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineStreamPar is the fused flow with the windowed analysis
// fanned across 4 workers — the dominant pipeline cost (DEG analysis is
// ~90% of fused wall-clock) made parallel. Reports are bit-identical to
// the sequential run; the bench-pipeline-par Makefile target gates the
// speedup against same-run BenchmarkPipelineStream on multicore hosts and
// against a no-regression floor on 1-vCPU hosts, where the worker pool
// cannot scale and must merely not cost throughput.
func BenchmarkPipelineStreamPar(b *testing.B) {
	stream := pipelineStream(b, 20000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStreamedWorkers(b, cfg, stream, 4, nil)
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineStreamSpans is BenchmarkPipelineStream plus exactly the
// per-evaluation span-instrumentation work the evaluator performs when a
// journal is attached: clock reads and live-track calls around each stage,
// and the commit-phase emission of the stage/eval/batch span events into a
// journal. The bench-spans Makefile target gates this against the
// uninstrumented BenchmarkPipelineStream of the same run (benchgate's
// bench: baseline), requiring the overhead to stay under 2% — the span
// layer must be free enough to leave on for every journaled campaign.
func BenchmarkPipelineStreamSpans(b *testing.B) {
	stream := pipelineStream(b, 20000)
	cfg := uarch.Baseline()
	rec := obs.New()
	rec.SetJournalWriter(io.Discard)
	stages := []string{"trace", "deg_stream", "power"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Worker side: per-stage clock reads and live-tracking hooks, with
		// the span records accumulated exactly like dse's stage capture.
		spans := make([]obs.SpanEvent, 0, len(stages))
		for _, name := range stages {
			start := rec.Clock()
			done := rec.TrackSpan(obs.SpanStage, name, "458.sjeng", 1)
			if name == "deg_stream" {
				runStreamed(b, cfg, stream, nil)
			}
			done()
			spans = append(spans, obs.SpanEvent{
				SpanKind: obs.SpanStage, Name: name, Workload: "458.sjeng",
				Worker: 1, StartNS: start, DurNS: rec.Clock() - start,
			})
		}
		// Commit side: id assignment and journal emission, children first.
		batch := rec.NextSpan()
		eval := rec.NextSpan()
		for k := range spans {
			spans[k].Span = rec.NextSpan()
			spans[k].Parent = eval
			rec.Emit(&spans[k])
		}
		rec.Emit(&obs.SpanEvent{Span: eval, Parent: batch, SpanKind: obs.SpanEval, Name: "bench"})
		rec.Emit(&obs.SpanEvent{Span: batch, SpanKind: obs.SpanBatch, Name: "evaluate"})
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// liveHeap forces a collection and returns the live heap, the number the
// Large variants report to evidence the O(window+margin) bound.
func liveHeap() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}

// BenchmarkPipelineBufferedLarge measures live heap on a 1M-instruction
// trace at the buffered pipeline's peak — trace fully materialized,
// analysis done, trace not yet released. Run with -benchtime=1x.
func BenchmarkPipelineBufferedLarge(b *testing.B) {
	stream := pipelineStream(b, 1_000_000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := runBuffered(b, cfg, stream)
		b.StopTimer()
		b.ReportMetric(liveHeap(), "live-heap-bytes")
		b.StartTimer()
		tr.Release()
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineStreamLarge is the fused flow over the same
// 1M-instruction trace; live heap is sampled mid-stream, where the
// analyzer's buffer is at its steady-state window+margin size. The peak
// buffered record count is reported alongside so the memory bound
// (window + 2·overlap + chunk − 1 records) is checkable from the output.
func BenchmarkPipelineStreamLarge(b *testing.B) {
	stream := pipelineStream(b, 1_000_000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStreamed(b, cfg, stream, func(sa *deg.StreamAnalyzer) {
			b.StopTimer()
			b.ReportMetric(liveHeap(), "live-heap-bytes")
			b.ReportMetric(float64(sa.PeakBufferedRecords()), "peak-buffered-records")
			b.StartTimer()
		})
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineStreamLargePar: the 1M-instruction fused flow at 4
// analysis workers — the tentpole's headline measurement (target ≥2.5×
// BenchmarkPipelineStreamLarge on a ≥4-core host). Peak buffered records
// rise by the bounded in-flight window copies
// (InflightCap·(window + 2·overlap)) but stay trace-length-independent,
// which the reported metric makes checkable from the output.
func BenchmarkPipelineStreamLargePar(b *testing.B) {
	stream := pipelineStream(b, 1_000_000)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStreamedWorkers(b, cfg, stream, 4, func(sa *deg.StreamAnalyzer) {
			b.StopTimer()
			b.ReportMetric(liveHeap(), "live-heap-bytes")
			b.ReportMetric(float64(sa.PeakBufferedRecords()), "peak-buffered-records")
			b.StartTimer()
		})
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}
