// Simulator hot-path benchmarks: the bench-sim / profile-sim Makefile
// targets run exactly these. BenchmarkSimFull measures the steady-state DSE
// configuration — pooled trace storage recycled between runs, all DEG
// annotations recorded — and BenchmarkSimLite the probe-lite path that
// skips annotation recording. BENCH_sim.json records the before/after
// numbers for the allocation-free rewrite.
//
//	make bench-sim       # both benchmarks, -benchmem
//	make profile-sim     # CPU profile of BenchmarkSimFull → sim.pprof
package archexplorer

import (
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// benchStream is the 20k-instruction 458.sjeng prefix every simulator
// benchmark runs over.
func benchStream(b *testing.B) []isa.Inst {
	b.Helper()
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 20000)
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

func benchSim(b *testing.B, lite bool) {
	stream := benchStream(b)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := ooo.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var err2 error
		var tr interface{ Release() }
		if lite {
			tr, _, err2 = core.RunLite(stream)
		} else {
			tr, _, err2 = core.Run(stream)
		}
		if err2 != nil {
			b.Fatal(err2)
		}
		tr.Release()
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSimFull is the steady-state full-fidelity simulation: trace
// buffers recycle through the pool, annotations are recorded and interned
// into the trace arenas.
func BenchmarkSimFull(b *testing.B) { benchSim(b, false) }

// BenchmarkSimLite is the probe-lite variant: identical timing model, no
// annotation recording (what EvaluateBatch(..., withDEG=false) runs).
func BenchmarkSimLite(b *testing.B) { benchSim(b, true) }
