// Simulator hot-path benchmarks: the bench-sim / profile-sim Makefile
// targets run exactly these. BenchmarkSimFull measures the steady-state DSE
// configuration — pooled trace storage recycled between runs, all DEG
// annotations recorded — and BenchmarkSimLite the probe-lite path that
// skips annotation recording. BENCH_sim.json records the before/after
// numbers for the allocation-free rewrite.
//
//	make bench-sim       # both benchmarks, -benchmem
//	make profile-sim     # CPU profile of BenchmarkSimFull → sim.pprof
package archexplorer

import (
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// benchStream is the 20k-instruction 458.sjeng prefix every simulator
// benchmark runs over.
func benchStream(b *testing.B) []isa.Inst {
	b.Helper()
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 20000)
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

func benchSim(b *testing.B, lite bool) {
	stream := benchStream(b)
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := ooo.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var err2 error
		var tr interface{ Release() }
		if lite {
			tr, _, err2 = core.RunLite(stream)
		} else {
			tr, _, err2 = core.Run(stream)
		}
		if err2 != nil {
			b.Fatal(err2)
		}
		tr.Release()
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSimFull is the steady-state full-fidelity simulation: trace
// buffers recycle through the pool, annotations are recorded and interned
// into the trace arenas.
func BenchmarkSimFull(b *testing.B) { benchSim(b, false) }

// BenchmarkSimLite is the probe-lite variant: identical timing model, no
// annotation recording (what EvaluateBatch(..., withDEG=false) runs).
func BenchmarkSimLite(b *testing.B) { benchSim(b, true) }

// benchBatchConfigs are four sibling back-end variants of the baseline —
// the shape of an explorer-issued batch (same front end, so one branch
// replay serves all four lanes; differing window/FU provisioning).
func benchBatchConfigs() []uarch.Config {
	base := uarch.Baseline()
	small := base
	small.ROBEntries /= 2
	small.IQEntries /= 2
	wide := base
	wide.ROBEntries *= 2
	wide.IntRF += 32
	wide.FpRF += 32
	lean := base
	lean.IntALU = 2
	lean.LQEntries /= 2
	lean.SQEntries /= 2
	return []uarch.Config{base, small, wide, lean}
}

func benchBatch(b *testing.B, workers int) {
	stream := benchStream(b)
	cfgs := benchBatchConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ooo.RunBatch(stream, cfgs, ooo.BatchOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			r.Trace.Release()
		}
	}
	b.ReportMetric(float64(len(stream)*len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSimBatch is the batched multi-config pass the evaluator's
// -sim-batch fast path runs: four configs over one shared stream, workers
// defaulted to the host's cores. inst/s counts simulated instructions
// across all lanes, so it is directly comparable to BenchmarkSimBatchSeq.
func BenchmarkSimBatch(b *testing.B) { benchBatch(b, 0) }

// BenchmarkSimBatchW1 pins the single-threaded batch pass: what stream
// sharing and branch-replay amortization buy before any worker
// parallelism.
func BenchmarkSimBatchW1(b *testing.B) { benchBatch(b, 1) }

// BenchmarkSimBatchSeq is the per-config path the batch replaces: the same
// four configs as four independent full-fidelity runs.
func BenchmarkSimBatchSeq(b *testing.B) {
	stream := benchStream(b)
	cfgs := benchBatchConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			core, err := ooo.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tr, _, err := core.Run(stream)
			if err != nil {
				b.Fatal(err)
			}
			tr.Release()
		}
	}
	b.ReportMetric(float64(len(stream)*len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}
