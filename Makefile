# Developer entry points. `make ci` is the gate every change must pass:
# vet plus the full test suite under the race detector (the parallel
# evaluator's determinism tests only mean something with -race on).

GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One regeneration per experiment plus the evaluator fan-out comparison.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

ci: vet race
