# Developer entry points. `make ci` is the gate every change must pass:
# vet, the full test suite under the race detector (the parallel
# evaluator's determinism tests only mean something with -race on), and
# the coverage floors below.

GO ?= go

# Minimum statement coverage for the packages whose correctness rests on
# their tests rather than on downstream use: the telemetry layer (whose
# disabled path must stay invisible), the evaluator/explorer core, and the
# fault-injection registry (which exists purely to make failure paths
# testable, so untested lines defeat its point). Measured 91%/90%/97% when
# the gates were set; the slack absorbs small refactors, not test deletions.
# The simulator core and the conformance harness joined with the batch
# work: five execution engines claim bit-identical results, so untested
# simulator lines are unpinned behaviour (measured 94%/90% at gate time).
COVER_MIN_OBS := 85
COVER_MIN_DSE := 80
COVER_MIN_FAULT := 90
COVER_MIN_SELFDEG := 80
COVER_MIN_OOO := 80
COVER_MIN_CONFORMANCE := 90

.PHONY: build vet test race cover fuzz-seeds bench bench-deg bench-sim bench-sim-smoke bench-pipeline bench-pipeline-smoke bench-pipeline-par bench-spans bench-batch bench-batch-smoke bench-all bench-all-smoke profile-sim profile-pipeline ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	@set -e; \
	check() { \
	  pct=$$($(GO) test -cover "./internal/$$1/" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	  if [ -z "$$pct" ]; then echo "internal/$$1: coverage not reported (test failure?)"; exit 1; fi; \
	  echo "internal/$$1 coverage: $$pct% (minimum $$2%)"; \
	  awk -v p="$$pct" -v m="$$2" 'BEGIN { exit !(p+0 >= m+0) }' || { echo "internal/$$1 coverage below minimum"; exit 1; }; \
	}; \
	check obs $(COVER_MIN_OBS); \
	check dse $(COVER_MIN_DSE); \
	check fault $(COVER_MIN_FAULT); \
	check selfdeg $(COVER_MIN_SELFDEG); \
	check ooo $(COVER_MIN_OOO); \
	check conformance $(COVER_MIN_CONFORMANCE)

# A short randomized pass over the campaign-file reader, the five-engine
# conformance check, and the capacity-pool/heap differential (the
# calendar-queue pool must pop bit-identically to container/heap), on top
# of the checked-in seed corpora that `make test` already replays.
fuzz-seeds:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/persist/
	$(GO) test -fuzz=FuzzConformance -fuzztime=10s ./internal/conformance/
	$(GO) test -fuzz=FuzzCapPoolParity -fuzztime=10s ./internal/ooo/

# One regeneration per experiment plus the evaluator fan-out comparison.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Whole-trace vs windowed DEG analysis: same trace, same report, compare
# B/op and allocs/op to see the pooled windowed path's working-set bound.
bench-deg:
	$(GO) test -bench='BenchmarkDEG' -benchmem -run XXX .

# Simulator hot path: full-fidelity (pooled, annotated) vs probe-lite runs
# on the 20k-instruction trace. BENCH_sim.json records the before/after of
# the allocation-free rewrite; re-run this after touching internal/ooo.
bench-sim:
	$(GO) test -bench='BenchmarkSim(Full|Lite)$$' -benchmem -run XXX -count 3 .

# Single-iteration smoke of the simulator benchmarks — catches a broken
# bench harness in CI without paying for a full measurement run.
bench-sim-smoke:
	$(GO) test -bench='BenchmarkSim(Full|Lite)$$' -benchtime=1x -run XXX .

# Buffered (Run + AnalyzeWindowed) vs fused streaming (RunStream +
# StreamAnalyzer) sim→DEG pipeline on the 20k-instruction trace.
# BENCH_pipeline.json records the before/after, including the 1M-instruction
# live-heap measurements from the Large variants (run those with
# -benchtime=1x; they dominate wall-clock otherwise).
bench-pipeline:
	$(GO) test -bench='BenchmarkPipeline(Buffered|Stream|StreamPar)$$' -benchmem -run XXX -count 3 .

# Single-iteration smoke of the pipeline benchmarks for CI: exercises the
# fused streaming path end to end (sequential and 4-worker) without paying
# for a measurement run.
bench-pipeline-smoke:
	$(GO) test -bench='BenchmarkPipeline(Buffered|Stream|StreamPar)$$' -benchtime=1x -run XXX .

# Parallel windowed DEG gate: the fused pipeline at 4 analysis workers vs
# the SAME run's sequential pipeline (benchgate's bench: baseline), so host
# speed cancels out. The speedup rides on spare cores, so the floors —
# 1.5x on the 20k run, 2.5x on the 1M run (the headline target, run at
# -benchtime=1x) — arm on hosts with >=4 cores; on smaller hosts the gate
# degrades to no-regression (>=0.9x sequential): the worker pool must not
# cost throughput even where it cannot buy any.
bench-pipeline-par:
	$(GO) build -o benchgate ./cmd/benchgate
	@cores=$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1); \
	if [ "$$cores" -ge 4 ]; then mult=1.5; large=2.5; tol=0; \
	else mult=1.0; large=1.0; tol=0.10; \
	  echo "bench-pipeline-par: $$cores core(s), workers cannot scale: gating no-regression (>=0.9x seq) instead of the 1.5x/2.5x parallel floors"; fi; \
	( $(GO) test -bench='BenchmarkPipelineStream(Par)?$$' -run XXX -count 1 . ; \
	  $(GO) test -bench='BenchmarkPipelineStreamLarge(Par)?$$' -benchtime=1x -run XXX -count 1 . ) | \
	  ./benchgate -tolerance $$tol \
	    -expect "BenchmarkPipelineStreamPar=$$mult*bench:BenchmarkPipelineStream" \
	    -expect "BenchmarkPipelineStreamLargePar=$$large*bench:BenchmarkPipelineStreamLarge"

# Span-instrumentation overhead gate: the fused pipeline with the
# evaluator's full per-evaluation span capture must stay within 2% of the
# uninstrumented pipeline measured in the SAME run (benchgate's bench:
# baseline), so host speed cancels out of the comparison.
bench-spans:
	$(GO) build -o benchgate ./cmd/benchgate
	$(GO) test -bench='BenchmarkPipelineStream(Spans)?$$' -run XXX -count 1 . | \
	  ./benchgate -tolerance 0.02 \
	    -expect 'BenchmarkPipelineStreamSpans=bench:BenchmarkPipelineStream'

# Batched multi-config simulation vs the per-config loop it replaces: the
# same four sibling configs as one RunBatch pass (workers = cores) and as
# four independent Core.Run calls, aggregate inst/s across all lanes.
# Workers carry the speedup, so the ≥1.5× floor the batch path claims
# (BENCH_sim.json "batch" section) arms on hosts with ≥4 cores; on
# smaller hosts — where the single-threaded pass can only match the
# per-config loop, since branch-replay sharing is <1% of sim CPU — the
# gate degrades to no-regression (≥1.0× with 10% tolerance).
bench-batch:
	$(GO) build -o benchgate ./cmd/benchgate
	@cores=$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1); \
	if [ "$$cores" -ge 4 ]; then mult=1.5; tol=0; \
	else mult=1.0; tol=0.10; \
	  echo "bench-batch: $$cores core(s), workers cannot scale: gating no-regression (>=0.9x seq) instead of the 1.5x parallel floor"; fi; \
	$(GO) test -bench='BenchmarkSimBatch(W1|Seq)?$$' -benchmem -run XXX -count 1 . | \
	  ./benchgate -tolerance $$tol \
	    -expect "BenchmarkSimBatch=$$mult*bench:BenchmarkSimBatchSeq"

# Single-iteration smoke of the batch benchmarks for CI: exercises
# RunBatch next to its sequential baseline without a measurement run.
bench-batch-smoke:
	$(GO) test -bench='BenchmarkSimBatch(W1|Seq)?$$' -benchtime=1x -run XXX .

# Every benchmark family, gated against the committed baselines: fails if
# simulator or pipeline throughput lands more than 10% below what
# BENCH_sim.json / BENCH_pipeline.json record for the reference host.
# The simulator gates are the calendar-queue numbers (the current
# baseline) PLUS a speedup floor: SimFull must also hold >=1.2x the
# pre-calendar-queue after_full record, so the pool rewrite's win cannot
# silently erode back even across re-baselines of the calqueue section.
# Re-baseline (re-run bench-sim / bench-pipeline and update the JSONs)
# when a deliberate change moves the numbers. The span-overhead gate rides
# along (span capture must cost <2% of same-run pipeline throughput), as do
# the batch and parallel-DEG speedup gates.
bench-all:
	$(GO) build -o benchgate ./cmd/benchgate
	$(GO) test -bench='BenchmarkSim(Full|Lite)$$|BenchmarkDEG|BenchmarkPipeline(Buffered|Stream)$$' -benchmem -run XXX -count 1 . | \
	  ./benchgate -tolerance 0.10 \
	    -expect 'BenchmarkSimFull=BENCH_sim.json:calqueue.full.inst_per_sec' \
	    -expect 'BenchmarkSimFull=1.2*BENCH_sim.json:after_full.inst_per_sec' \
	    -expect 'BenchmarkSimLite=BENCH_sim.json:calqueue.lite.inst_per_sec' \
	    -expect 'BenchmarkPipelineBuffered=BENCH_pipeline.json:before.inst_per_sec' \
	    -expect 'BenchmarkPipelineStream=BENCH_pipeline.json:after.inst_per_sec'
	$(MAKE) bench-spans
	$(MAKE) bench-batch
	$(MAKE) bench-pipeline-par

# Single-iteration pass of the bench-all simulator+pipeline set through
# benchgate with a near-zero floor: verifies in CI that every -expect
# mapping still resolves (benchmark names, JSON files, dotted paths) on
# any host, without paying for — or trusting — a real measurement run.
bench-all-smoke:
	$(GO) build -o benchgate ./cmd/benchgate
	$(GO) test -bench='BenchmarkSim(Full|Lite)$$|BenchmarkDEG|BenchmarkPipeline(Buffered|Stream|StreamPar)$$' -benchtime=1x -run XXX . | \
	  ./benchgate -tolerance 0.95 \
	    -expect 'BenchmarkSimFull=BENCH_sim.json:calqueue.full.inst_per_sec' \
	    -expect 'BenchmarkSimFull=1.2*BENCH_sim.json:after_full.inst_per_sec' \
	    -expect 'BenchmarkSimLite=BENCH_sim.json:calqueue.lite.inst_per_sec' \
	    -expect 'BenchmarkPipelineBuffered=BENCH_pipeline.json:before.inst_per_sec' \
	    -expect 'BenchmarkPipelineStream=BENCH_pipeline.json:after.inst_per_sec' \
	    -expect 'BenchmarkPipelineStreamPar=1.5*bench:BenchmarkPipelineStream' \
	    -expect 'BenchmarkPipelineStreamPar=BENCH_pipeline.json:parallel.par4.inst_per_sec'

# CPU profile of the full-fidelity simulator benchmark. Inspect with
#   go tool pprof -top sim.pprof
#   go tool pprof -http=: sim.pprof
profile-sim:
	$(GO) test -bench='BenchmarkSimFull$$' -run XXX -cpuprofile sim.pprof -o sim.test .
	@echo "wrote sim.pprof (binary: sim.test); try: go tool pprof -top sim.pprof"

# CPU + heap profile of the fused 1M-instruction sim→DEG pipeline — the
# DSE inner loop's dominant cost and the profile that motivated the
# parallel windowed analysis (DESIGN.md §16 records the top-10). Inspect:
#   go tool pprof -top pipeline_cpu.pprof
#   go tool pprof -top pipeline_mem.pprof
#   go tool pprof -http=: pipeline_cpu.pprof
profile-pipeline:
	$(GO) test -bench='BenchmarkPipelineStreamLarge$$' -benchtime=1x -run XXX -cpuprofile pipeline_cpu.pprof -memprofile pipeline_mem.pprof -o pipeline.test .
	@echo "wrote pipeline_cpu.pprof / pipeline_mem.pprof (binary: pipeline.test); try: go tool pprof -top pipeline_cpu.pprof"

# The alloc gate on the streaming hot path (internal/deg
# TestStreamAllocsBounded) runs inside `cover`'s non-race test pass; the
# bench smokes keep the bench harnesses AND the bench-all gate wiring
# (expect names, baseline JSON paths) compiling and resolving.
ci: vet race cover fuzz-seeds bench-all-smoke bench-batch-smoke
