// Command archexplorer runs the full bottleneck-removal-driven design-space
// exploration over the Table 4 space and prints the explored Pareto
// frontier with its hypervolume.
//
// Usage:
//
//	archexplorer -suite SPEC06 -budget 1200 -seed 1
//	archexplorer -suite SPEC17 -method BOOM-Explorer   (run a baseline instead)
//	archexplorer -budget 120 -journal run.jsonl        (then: obsreport run.jsonl)
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"archexplorer/internal/cli"
	"archexplorer/internal/dse"
	"archexplorer/internal/obs"
	"archexplorer/internal/pareto"
	"archexplorer/internal/persist"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	cli.Init("archexplorer")
	var (
		suiteName = flag.String("suite", "SPEC06", "workload suite: SPEC06 or SPEC17")
		budget    = flag.Int("budget", 720, "simulation budget (full config-workload runs)")
		traceLen  = flag.Int("tracelen", 4000, "instructions per full evaluation")
		seed      = flag.Int64("seed", 1, "random seed")
		method    = flag.String("method", "ArchExplorer", "ArchExplorer | Random | AdaBoost | BOOM-Explorer | ArchRanker")
		parallel  = flag.Int("parallel", 0, "concurrent simulations per evaluation (0 = all cores, 1 = sequential)")
		out       = flag.String("out", "", "write the exploration campaign to this JSON file")
		tele      cli.Telemetry
		ckpt      cli.Checkpoint
		resil     cli.Resilience
		degf      cli.DEG
		simf      cli.Sim
	)
	tele.AddTelemetryFlags(flag.CommandLine)
	ckpt.AddCheckpointFlags(flag.CommandLine)
	resil.AddResilienceFlags(flag.CommandLine)
	degf.AddDEGFlags(flag.CommandLine)
	simf.AddSimFlags(flag.CommandLine)
	flag.Parse()

	var suite []workload.Profile
	switch strings.ToUpper(*suiteName) {
	case "SPEC06":
		suite = workload.Suite06()
	case "SPEC17":
		suite = workload.Suite17()
	default:
		cli.Usagef("unknown suite %q", *suiteName)
	}

	var ex dse.Explorer
	switch *method {
	case "ArchExplorer":
		ex = dse.NewArchExplorer(*seed)
	case "Random":
		ex = &dse.RandomSearch{Seed: *seed}
	case "AdaBoost":
		ex = dse.NewAdaBoostDSE(*seed)
	case "BOOM-Explorer":
		ex = dse.NewBOOMExplorer(*seed)
	case "ArchRanker":
		ex = dse.NewArchRankerDSE(*seed)
	default:
		cli.Usagef("unknown method %q", *method)
	}

	rec, stopTelemetry, err := tele.Start()
	cli.Check(err)

	ref := pareto.StandardReference
	rec.Emit(&obs.RunStart{
		Tool: "archexplorer", Method: ex.Name(), Suite: strings.ToUpper(*suiteName),
		Budget: *budget, TraceLen: *traceLen, Parallelism: *parallel,
		HVRef: [3]float64{ref.Perf, ref.Power, ref.Area},
		Time:  time.Now().Format(time.RFC3339),
	})

	// The campaign span is the root of the run's self-DEG: everything the
	// evaluator and explorer emit parents under it, so obsreport
	// -critical-path can attribute the whole wall-clock.
	campaignSpan, endCampaign := rec.CampaignSpan("archexplorer/" + ex.Name())

	ev := dse.NewEvaluator(uarch.StandardSpace(), suite, *traceLen)
	ev.Parallelism = *parallel
	ev.Obs = rec
	ev.SpanParent = campaignSpan
	resil.Apply(ev)
	degf.Apply(ev)
	simf.Apply(ev)
	if err := ckpt.Wire(ev, ex.Name(), strings.ToUpper(*suiteName), *budget, *seed, rec); err != nil {
		stopTelemetry()
		cli.Fatal(err)
	}
	fmt.Printf("%s on %s (%d workloads), budget %d simulations\n",
		ex.Name(), *suiteName, len(suite), *budget)
	start := time.Now()
	if err := ex.Run(ev, *budget); err != nil {
		stopTelemetry()
		cli.Fatal(err)
	}
	st := ev.StageTotals()
	fmt.Printf("wall-clock %v (worker time: sim %v, power %v, analysis %v, traces %v)\n",
		time.Since(start).Round(time.Millisecond), st.Sim.Round(time.Millisecond),
		st.Power.Round(time.Millisecond), st.DEG.Round(time.Millisecond),
		st.Trace.Round(time.Millisecond))

	pts := ev.PointsUpTo(float64(*budget))
	fr := pareto.Frontier(pts)
	hv := pareto.Hypervolume(pts, ref)
	fmt.Printf("\nspent %.1f simulations, %d designs explored, %d full evaluations\n",
		ev.Sims, len(pts), len(ev.Points()))
	fmt.Printf("Pareto hypervolume: %.4f\n\n", hv)

	endCampaign()
	rec.Emit(&obs.RunEnd{
		Tool: "archexplorer", Sims: ev.Sims, HV: hv,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Metrics:   rec.Registry().Snapshot(),
	})
	stopTelemetry()

	fmt.Printf("Pareto frontier (%d designs):\n", len(fr))
	fmt.Printf("%8s %10s %10s %12s\n", "IPC", "power(W)", "area(mm2)", "Perf2/(PxA)")
	for _, p := range fr {
		fmt.Printf("%8.4f %10.4f %10.3f %12.4f\n",
			p.Perf, p.Power, p.Area, p.Perf*p.Perf/(p.Power*p.Area))
	}

	// Show the configuration of the best trade-off design.
	var best *dse.Evaluation
	for _, e := range ev.History {
		if e.Probe {
			continue
		}
		if best == nil || e.Tradeoff() > best.Tradeoff() {
			best = e
		}
	}
	if best != nil {
		fmt.Printf("\nbest trade-off design: %s\n", best.Config)
	}

	if *out != "" {
		c := persist.FromEvaluator(ex.Name(), *suiteName, *budget, ev)
		c.Seed = *seed
		c.Journal = tele.Journal
		cli.Check(c.Save(*out))
		fmt.Printf("campaign written to %s (%d designs)\n", *out, len(c.Designs))
	}
}
