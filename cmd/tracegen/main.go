// Command tracegen materialises the synthetic workload traces for
// inspection: instruction listings, dynamic mixes, and CSV export for
// external analysis.
//
// Usage:
//
//	tracegen -workload 429.mcf -n 50 -v        # listing
//	tracegen -stats                             # Table 3 mix summary
//	tracegen -workload 444.namd -n 10000 -csv trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"archexplorer/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "458.sjeng", "workload name")
		n       = flag.Int("n", 20, "instructions to generate")
		verbose = flag.Bool("v", false, "print the instruction listing")
		stats   = flag.Bool("stats", false, "print mix statistics for every workload")
		csvPath = flag.String("csv", "", "write the trace as CSV to this file")
	)
	flag.Parse()

	if *stats {
		fmt.Printf("%-18s %-7s %8s %8s %8s %8s\n", "workload", "suite", "loads", "stores", "branches", "taken%")
		for _, p := range workload.All() {
			tr, err := workload.CachedTrace(p, *n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			m := workload.Mix(tr)
			taken := 0.0
			if m.Branches > 0 {
				taken = 100 * float64(m.TakenBranches) / float64(m.Branches)
			}
			fmt.Printf("%-18s %-7s %8d %8d %8d %7.1f%%\n", p.Name, p.Suite, m.Loads, m.Stores, m.Branches, taken)
		}
		return
	}

	p, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr, err := workload.Trace(p, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := csv.NewWriter(f)
		_ = w.Write([]string{"seq", "pc", "class", "src1", "src2", "dest", "addr", "taken", "target"})
		for i := range tr {
			in := &tr[i]
			_ = w.Write([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%#x", in.PC),
				in.Class.String(),
				in.Src1.String(), in.Src2.String(), in.Dest.String(),
				fmt.Sprintf("%#x", in.Addr),
				strconv.FormatBool(in.Taken),
				fmt.Sprintf("%#x", in.Target),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d instructions to %s\n", len(tr), *csvPath)
		return
	}

	m := workload.Mix(tr)
	fmt.Printf("%s (%s): %d instructions, %d loads, %d stores, %d branches\n",
		p.Name, p.Suite, m.Total, m.Loads, m.Stores, m.Branches)
	if *verbose {
		for i := range tr {
			fmt.Printf("%6d  %s\n", i, tr[i].String())
		}
	}
}
