// Command tracegen materialises the synthetic workload traces for
// inspection: instruction listings, dynamic mixes, and CSV export for
// external analysis.
//
// Usage:
//
//	tracegen -workload 429.mcf -n 50 -v        # listing
//	tracegen -stats                             # Table 3 mix summary
//	tracegen -workload 444.namd -n 10000 -csv trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"archexplorer/internal/cli"
	"archexplorer/internal/obs"
	"archexplorer/internal/workload"
)

func main() {
	cli.Init("tracegen")
	var (
		name    = flag.String("workload", "458.sjeng", "workload name")
		n       = flag.Int("n", 20, "instructions to generate")
		verbose = flag.Bool("v", false, "print the instruction listing")
		stats   = flag.Bool("stats", false, "print mix statistics for every workload")
		csvPath = flag.String("csv", "", "write the trace as CSV to this file")
		tele    cli.Telemetry
	)
	tele.AddTelemetryFlags(flag.CommandLine)
	flag.Parse()

	rec, stopTelemetry, err := tele.Start()
	cli.Check(err)
	defer stopTelemetry()
	rec.Emit(&obs.RunStart{Tool: "tracegen", TraceLen: *n, Time: time.Now().Format(time.RFC3339)})
	start := time.Now()
	generated := 0
	defer func() {
		rec.Emit(&obs.RunEnd{
			Tool: "tracegen", Sims: float64(generated),
			ElapsedNS: time.Since(start).Nanoseconds(),
			Metrics:   rec.Registry().Snapshot(),
		})
	}()

	if *stats {
		fmt.Printf("%-18s %-7s %8s %8s %8s %8s\n", "workload", "suite", "loads", "stores", "branches", "taken%")
		for _, p := range workload.All() {
			t0 := time.Now()
			tr, err := workload.CachedTrace(p, *n)
			cli.Check(err)
			rec.Histogram(obs.MetricStageTrace).Observe(time.Since(t0).Seconds())
			generated++
			m := workload.Mix(tr)
			taken := 0.0
			if m.Branches > 0 {
				taken = 100 * float64(m.TakenBranches) / float64(m.Branches)
			}
			fmt.Printf("%-18s %-7s %8d %8d %8d %7.1f%%\n", p.Name, p.Suite, m.Loads, m.Stores, m.Branches, taken)
		}
		return
	}

	p, err := workload.ByName(*name)
	cli.Check(err)
	t0 := time.Now()
	tr, err := workload.Trace(p, *n)
	cli.Check(err)
	rec.Histogram(obs.MetricStageTrace).Observe(time.Since(t0).Seconds())
	generated++

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		cli.Check(err)
		w := csv.NewWriter(f)
		_ = w.Write([]string{"seq", "pc", "class", "src1", "src2", "dest", "addr", "taken", "target"})
		for i := range tr {
			in := &tr[i]
			_ = w.Write([]string{
				strconv.Itoa(i),
				fmt.Sprintf("%#x", in.PC),
				in.Class.String(),
				in.Src1.String(), in.Src2.String(), in.Dest.String(),
				fmt.Sprintf("%#x", in.Addr),
				strconv.FormatBool(in.Taken),
				fmt.Sprintf("%#x", in.Target),
			})
		}
		w.Flush()
		cli.Check(w.Error())
		cli.Check(f.Close())
		fmt.Printf("wrote %d instructions to %s\n", len(tr), *csvPath)
		return
	}

	m := workload.Mix(tr)
	fmt.Printf("%s (%s): %d instructions, %d loads, %d stores, %d branches\n",
		p.Name, p.Suite, m.Total, m.Loads, m.Stores, m.Branches)
	if *verbose {
		for i := range tr {
			fmt.Printf("%6d  %s\n", i, tr[i].String())
		}
	}
}
