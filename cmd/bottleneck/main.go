// Command bottleneck simulates one microarchitecture on one workload and
// prints the critical-path bottleneck analysis report — the per-resource
// runtime contributions ArchExplorer's DSE consumes.
//
// Usage:
//
//	bottleneck -workload 458.sjeng -n 20000
//	bottleneck -workload 429.mcf -rob 128 -intrf 96 -width 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"archexplorer/internal/cli"
	"archexplorer/internal/deg"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/obs"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	cli.Init("bottleneck")
	cfg := uarch.Baseline()
	var (
		wlName = flag.String("workload", "458.sjeng", "workload name (see Table 3)")
		n      = flag.Int("n", 10000, "instructions to simulate")
		all    = flag.Bool("all", false, "average the report over every workload")
		dotOut = flag.String("dot", "", "write the induced DEG as Graphviz DOT to this file (small -n only)")
		tele   cli.Telemetry
		degf   cli.DEG
	)
	flag.IntVar(&cfg.Width, "width", cfg.Width, "pipeline width")
	flag.IntVar(&cfg.ROBEntries, "rob", cfg.ROBEntries, "reorder buffer entries")
	flag.IntVar(&cfg.IQEntries, "iq", cfg.IQEntries, "issue queue entries")
	flag.IntVar(&cfg.LQEntries, "lq", cfg.LQEntries, "load queue entries")
	flag.IntVar(&cfg.SQEntries, "sq", cfg.SQEntries, "store queue entries")
	flag.IntVar(&cfg.IntRF, "intrf", cfg.IntRF, "physical integer registers")
	flag.IntVar(&cfg.FpRF, "fprf", cfg.FpRF, "physical floating-point registers")
	flag.IntVar(&cfg.IntALU, "intalu", cfg.IntALU, "integer ALUs")
	flag.IntVar(&cfg.DCacheKB, "dcache", cfg.DCacheKB, "L1 D$ size in KB")
	flag.IntVar(&cfg.ICacheKB, "icache", cfg.ICacheKB, "L1 I$ size in KB")
	tele.AddTelemetryFlags(flag.CommandLine)
	degf.AddDEGFlags(flag.CommandLine)
	flag.Parse()

	if err := cfg.Validate(); err != nil {
		cli.Usagef("%v", err)
	}
	if *dotOut != "" && (degf.Window > 0 || degf.Stream) {
		cli.Usagef("-dot needs the whole-trace graph; drop -deg-window/-deg-stream")
	}

	profiles := []workload.Profile{}
	if *all {
		profiles = workload.All()
	} else {
		p, err := workload.ByName(*wlName)
		cli.Check(err)
		profiles = append(profiles, p)
	}

	rec, stopTelemetry, err := tele.Start()
	cli.Check(err)
	defer stopTelemetry()
	rec.Emit(&obs.RunStart{
		Tool: "bottleneck", TraceLen: *n,
		Time: time.Now().Format(time.RFC3339),
	})
	start := time.Now()

	fmt.Printf("config: %s\n\n", cfg)
	var reports []*deg.Report
	for _, p := range profiles {
		var times [4]time.Duration // trace, sim, power, deg
		var streamDur time.Duration
		t0 := time.Now()
		stream, err := workload.CachedTrace(p, *n)
		cli.Check(err)
		times[0] = time.Since(t0)

		core, err := ooo.New(cfg)
		cli.Check(err)

		var stats *ooo.Stats
		var rep *deg.Report
		var g *deg.Graph
		var cp *deg.CriticalPath
		var ws *deg.WindowStats
		if degf.Stream {
			// Fused simulate+analyze: the simulator's chunks feed the
			// windowed analyzer directly and no full trace is materialized —
			// peak memory is the analyzer's window+margin working set.
			qwait := rec.Histogram(obs.MetricDEGQueueWait)
			sa, err := deg.NewStreamAnalyzer(deg.WindowOptions{
				Window: degf.Window, Overlap: degf.Overlap,
				ReorderWindow: cfg.ROBEntries,
				Workers:       degf.ResolvedWorkers(),
				OnQueueWait:   func(d time.Duration) { qwait.Observe(d.Seconds()) },
			})
			cli.Check(err)
			t0 = time.Now()
			stats, err = core.RunStream(stream, degf.Chunk, sa.Feed)
			cli.Check(err)
			peak := sa.PeakBufferedRecords()
			rep, ws, err = sa.Finish(stats.Cycles)
			cli.Check(err)
			streamDur = time.Since(t0)
			fmt.Printf("streamed analysis: %d windows, peak %d edges / %d vertices, %d clipped deps, peak %d buffered records\n",
				ws.Windows, ws.PeakEdges, ws.PeakVertices, ws.ClippedDeps, peak)
		} else {
			t0 = time.Now()
			var tr *pipetrace.Trace
			tr, stats, err = core.Run(stream)
			cli.Check(err)
			times[1] = time.Since(t0)

			t0 = time.Now()
			if degf.Window > 0 {
				rep, ws, err = deg.AnalyzeWindowed(tr, deg.WindowOptions{
					Window: degf.Window, Overlap: degf.Overlap,
					ReorderWindow: cfg.ROBEntries,
					Workers:       degf.ResolvedWorkers(),
				})
				cli.Check(err)
				fmt.Printf("windowed analysis: %d windows, peak %d edges / %d vertices, %d clipped deps\n",
					ws.Windows, ws.PeakEdges, ws.PeakVertices, ws.ClippedDeps)
			} else {
				rep, g, cp, err = deg.Analyze(tr, deg.Options{})
				cli.Check(err)
			}
			times[3] = time.Since(t0)
		}
		if ws != nil {
			rec.Gauge(obs.MetricDEGWindows).Set(float64(ws.Windows))
			rec.Gauge(obs.MetricDEGPeakEdges).Set(float64(ws.PeakEdges))
			rec.Gauge(obs.MetricDEGWorkers).Set(float64(degf.ResolvedWorkers()))
			if d := ws.Dropped(); d > 0 {
				rec.Counter(obs.MetricDEGDrops).Add(int64(d))
			}
		}

		t0 = time.Now()
		pw, err := mcpat.Evaluate(cfg, stats)
		cli.Check(err)
		times[2] = time.Since(t0)
		reports = append(reports, rep)

		rec.Counter(obs.MetricEvaluations).Inc()
		rec.Histogram(obs.MetricStageTrace).Observe(times[0].Seconds())
		rec.Histogram(obs.MetricStagePower).Observe(times[2].Seconds())
		if degf.Stream {
			rec.Histogram(obs.MetricStageDEGStream).Observe(streamDur.Seconds())
		} else {
			rec.Histogram(obs.MetricStageSim).Observe(times[1].Seconds())
			rec.Histogram(obs.MetricStageDEG).Observe(times[3].Seconds())
		}
		span := &obs.EvalSpan{
			Span: rec.NextSpan(), Config: cfg.String() + " @ " + p.Name,
			SimsAt: float64(len(reports)), Perf: stats.IPC(), PowerW: pw.PowerW, AreaMM2: pw.AreaMM2,
			TraceNS: times[0].Nanoseconds(), SimNS: times[1].Nanoseconds(),
			PowerNS: times[2].Nanoseconds(), DEGNS: times[3].Nanoseconds(),
			DEGStreamNS: streamDur.Nanoseconds(),
			ElapsedNS:   (times[0] + times[1] + times[2] + times[3] + streamDur).Nanoseconds(),
		}
		if ws != nil {
			span.DEGWindows = ws.Windows
			span.DEGPeakEdges = ws.PeakEdges
			span.DEGDrops = int64(ws.Dropped())
		}
		rec.Emit(span)

		if *dotOut != "" && !*all {
			f, err := os.Create(*dotOut)
			cli.Check(err)
			cli.Check(g.WriteDOT(f, cp))
			cli.Check(f.Close())
			fmt.Printf("DEG written to %s\n", *dotOut)
		}
		fmt.Printf("%-18s IPC=%.4f  power=%.4f W  area=%.3f mm2  mispredict=%.2f%%  d$miss=%.2f%%\n",
			p.Name, stats.IPC(), pw.PowerW, pw.AreaMM2,
			100*stats.MispredictRate(),
			100*float64(stats.DCacheMisses)/float64(max(stats.DCacheAccesses, 1)))
		if !*all {
			fmt.Printf("\n%s", rep)
		}
	}
	if *all {
		merged, err := deg.Merge(reports, nil)
		cli.Check(err)
		fmt.Printf("\nEquation-2 weighted average across %d workloads:\n%s", len(reports), merged)
	}
	rec.Emit(&obs.RunEnd{
		Tool: "bottleneck", Sims: float64(len(reports)),
		ElapsedNS: time.Since(start).Nanoseconds(),
		Metrics:   rec.Registry().Snapshot(),
	})
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
