// Command bottleneck simulates one microarchitecture on one workload and
// prints the critical-path bottleneck analysis report — the per-resource
// runtime contributions ArchExplorer's DSE consumes.
//
// Usage:
//
//	bottleneck -workload 458.sjeng -n 20000
//	bottleneck -workload 429.mcf -rob 128 -intrf 96 -width 6
package main

import (
	"flag"
	"fmt"
	"os"

	"archexplorer/internal/deg"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	cfg := uarch.Baseline()
	var (
		wlName = flag.String("workload", "458.sjeng", "workload name (see Table 3)")
		n      = flag.Int("n", 10000, "instructions to simulate")
		all    = flag.Bool("all", false, "average the report over every workload")
		dotOut = flag.String("dot", "", "write the induced DEG as Graphviz DOT to this file (small -n only)")
	)
	flag.IntVar(&cfg.Width, "width", cfg.Width, "pipeline width")
	flag.IntVar(&cfg.ROBEntries, "rob", cfg.ROBEntries, "reorder buffer entries")
	flag.IntVar(&cfg.IQEntries, "iq", cfg.IQEntries, "issue queue entries")
	flag.IntVar(&cfg.LQEntries, "lq", cfg.LQEntries, "load queue entries")
	flag.IntVar(&cfg.SQEntries, "sq", cfg.SQEntries, "store queue entries")
	flag.IntVar(&cfg.IntRF, "intrf", cfg.IntRF, "physical integer registers")
	flag.IntVar(&cfg.FpRF, "fprf", cfg.FpRF, "physical floating-point registers")
	flag.IntVar(&cfg.IntALU, "intalu", cfg.IntALU, "integer ALUs")
	flag.IntVar(&cfg.DCacheKB, "dcache", cfg.DCacheKB, "L1 D$ size in KB")
	flag.IntVar(&cfg.ICacheKB, "icache", cfg.ICacheKB, "L1 I$ size in KB")
	flag.Parse()

	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	profiles := []workload.Profile{}
	if *all {
		profiles = workload.All()
	} else {
		p, err := workload.ByName(*wlName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = append(profiles, p)
	}

	fmt.Printf("config: %s\n\n", cfg)
	var reports []*deg.Report
	for _, p := range profiles {
		stream, err := workload.CachedTrace(p, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		core, err := ooo.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, stats, err := core.Run(stream)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pw, err := mcpat.Evaluate(cfg, stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, g, cp, err := deg.Analyze(tr, deg.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		if *dotOut != "" && !*all {
			f, err := os.Create(*dotOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := g.WriteDOT(f, cp); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("DEG written to %s\n", *dotOut)
		}
		fmt.Printf("%-18s IPC=%.4f  power=%.4f W  area=%.3f mm2  mispredict=%.2f%%  d$miss=%.2f%%\n",
			p.Name, stats.IPC(), pw.PowerW, pw.AreaMM2,
			100*stats.MispredictRate(),
			100*float64(stats.DCacheMisses)/float64(max(stats.DCacheAccesses, 1)))
		if !*all {
			fmt.Printf("\n%s", rep)
		}
	}
	if *all {
		merged, err := deg.Merge(reports, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nEquation-2 weighted average across %d workloads:\n%s", len(reports), merged)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
