// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table5 -budget 2400 -seeds 3
//	experiments -run all -fast
//	experiments -run table5 -journal exp.jsonl -progress 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"archexplorer/internal/cli"
	"archexplorer/internal/exp"
	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
)

func main() {
	cli.Init("experiments")
	var (
		run      = flag.String("run", "", "experiment to run (see -list), or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		budget   = flag.Int("budget", 0, "simulation budget for DSE experiments")
		traceLen = flag.Int("tracelen", 0, "instructions per workload evaluation")
		seeds    = flag.Int("seeds", 0, "seeds averaged in DSE comparisons")
		samples  = flag.Int("samples", 0, "design samples for fig1")
		parallel = flag.Int("parallel", 0, "concurrent simulations per evaluation (0 = all cores, 1 = sequential)")
		fast     = flag.Bool("fast", false, "shrink all experiments for a quick pass")
		ckptDir  = flag.String("checkpoint-dir", "", "snapshot every campaign grid cell into this directory")
		ckptInt  = flag.Duration("checkpoint-every", 30*time.Second, "minimum interval between per-cell snapshots; 0 snapshots every batch")
		resume   = flag.Bool("resume", false, "resume grid cells from their -checkpoint-dir snapshots where present")
		tele     cli.Telemetry
		resil    cli.Resilience
		degf     cli.DEG
		simf     cli.Sim
	)
	tele.AddTelemetryFlags(flag.CommandLine)
	resil.AddResilienceFlags(flag.CommandLine)
	degf.AddDEGFlags(flag.CommandLine)
	simf.AddSimFlags(flag.CommandLine)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.List() {
			fmt.Printf("  %-12s %-12s %s\n", e.Name, e.Paper, e.Desc)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	rec, stopTelemetry, err := tele.Start()
	cli.Check(err)
	defer stopTelemetry()

	if *resume && *ckptDir == "" {
		cli.Usagef("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		cli.Check(os.MkdirAll(*ckptDir, 0o755))
	}
	opts := exp.Options{
		Budget:          *budget,
		TraceLen:        *traceLen,
		Seeds:           *seeds,
		Samples:         *samples,
		Parallelism:     *parallel,
		Obs:             rec,
		Fast:            *fast,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptInt,
		Resume:          *resume,
		Retry:           fault.Retry{Max: resil.Retries, Base: resil.RetryBase, Cap: resil.RetryCap},
		StageTimeout:    resil.StageTimeout,
		SkipFailures:    resil.SkipFailures,
		DEGWindow:       degf.Window,
		DEGOverlap:      degf.Overlap,
		DEGStream:       degf.Stream,
		DEGChunk:        degf.Chunk,
		SimBatch:        simf.Batch,
	}
	// Campaign grids are multi-minute; surface cell completions live
	// whenever any telemetry is on.
	if rec != nil {
		opts.Progress = os.Stderr
	}

	names := []string{*run}
	if *run == "all" {
		names = names[:0]
		for _, e := range exp.List() {
			names = append(names, e.Name)
		}
	}
	start := time.Now()
	rec.Emit(&obs.RunStart{
		Tool: "experiments", Budget: *budget, TraceLen: *traceLen,
		Parallelism: *parallel, Time: time.Now().Format(time.RFC3339),
	})
	// Grid cells parent their spans under this run-wide campaign span, so
	// the journal holds one self-DEG tree even for "-run all".
	campaignSpan, endCampaign := rec.CampaignSpan("experiments")
	opts.SpanParent = campaignSpan
	for _, name := range names {
		e, err := exp.Get(name)
		cli.Check(err)
		fmt.Printf("==== %s (%s) ====\n", e.Name, e.Paper)
		expStart := time.Now()
		if err := e.Run(opts, os.Stdout); err != nil {
			cli.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Printf("(%s finished in %v)\n\n", e.Name, time.Since(expStart).Round(time.Millisecond))
	}
	endCampaign()
	rec.Emit(&obs.RunEnd{
		Tool: "experiments", ElapsedNS: time.Since(start).Nanoseconds(),
		Metrics: rec.Registry().Snapshot(),
	})
}
