// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table5 -budget 2400 -seeds 3
//	experiments -run all -fast
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"archexplorer/internal/exp"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment to run (see -list), or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		budget   = flag.Int("budget", 0, "simulation budget for DSE experiments")
		traceLen = flag.Int("tracelen", 0, "instructions per workload evaluation")
		seeds    = flag.Int("seeds", 0, "seeds averaged in DSE comparisons")
		samples  = flag.Int("samples", 0, "design samples for fig1")
		parallel = flag.Int("parallel", 0, "concurrent simulations per evaluation (0 = all cores, 1 = sequential)")
		fast     = flag.Bool("fast", false, "shrink all experiments for a quick pass")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.List() {
			fmt.Printf("  %-12s %-12s %s\n", e.Name, e.Paper, e.Desc)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := exp.Options{
		Budget:      *budget,
		TraceLen:    *traceLen,
		Seeds:       *seeds,
		Samples:     *samples,
		Parallelism: *parallel,
		Fast:        *fast,
	}

	names := []string{*run}
	if *run == "all" {
		names = names[:0]
		for _, e := range exp.List() {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		e, err := exp.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) ====\n", e.Name, e.Paper)
		start := time.Now()
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
