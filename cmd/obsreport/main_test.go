package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"archexplorer/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestRecoveryReportGolden pins the rendered report — recovery timeline
// included — for a journaled run that retried, timed out, skipped, lost a
// snapshot, checkpointed, and resumed.
func TestRecoveryReportGolden(t *testing.T) {
	events, err := obs.LoadJournal(filepath.Join("testdata", "recovery.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report(&buf, events, 4, 10)

	golden := filepath.Join("testdata", "recovery.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file (rerun with -update to accept)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestCriticalPathGolden pins obsreport -critical-path byte for byte on a
// checked-in campaign journal with span events: the self-DEG attribution
// must reproduce exactly on every analysis of the same journal.
func TestCriticalPathGolden(t *testing.T) {
	events, err := obs.LoadJournal(filepath.Join("testdata", "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := criticalPath(&buf, events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "spans.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("critical-path report drifted from golden file (rerun with -update to accept)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}

	// Re-analysis of the same events must render identically.
	var again bytes.Buffer
	if err := criticalPath(&again, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("critical-path report not reproducible within one process")
	}
}

// TestCriticalPathWithoutSpans: pre-span journals get a clear error, and
// the default report still renders for them.
func TestCriticalPathWithoutSpans(t *testing.T) {
	events := []obs.Event{
		&obs.RunStart{Tool: "archexplorer", Budget: 4},
		&obs.EvalSpan{Span: 1, SimsAt: 2, Perf: 1, PowerW: 1, AreaMM2: 10},
		&obs.RunEnd{Tool: "archexplorer", Sims: 4},
	}
	if err := criticalPath(&bytes.Buffer{}, events); err == nil {
		t.Fatal("span-less journal did not error")
	}
}

// TestReportWithoutRecoveryEvents: a journal with no fault/checkpoint/
// resume events renders no recovery section at all.
func TestReportWithoutRecoveryEvents(t *testing.T) {
	events := []obs.Event{
		&obs.RunStart{Tool: "archexplorer", Budget: 4},
		&obs.EvalSpan{Span: 1, SimsAt: 2, Perf: 1, PowerW: 1, AreaMM2: 10},
		&obs.RunEnd{Tool: "archexplorer", Sims: 4},
	}
	var buf bytes.Buffer
	report(&buf, events, 2, 0)
	if bytes.Contains(buf.Bytes(), []byte("recovery timeline")) {
		t.Fatalf("clean run grew a recovery section:\n%s", buf.String())
	}
}
