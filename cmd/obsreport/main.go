// Command obsreport post-processes a JSONL run journal (written by the
// other binaries' -journal flag) into the run's story: where worker time
// went per pipeline stage, how well the evaluation cache did, how
// hypervolume grew as budget was spent, which resources the bottleneck
// analysis kept fingering iteration by iteration, and — for runs that hit
// trouble — the recovery timeline of retries, skips, checkpoints, and
// resumes.
//
// Usage:
//
//	archexplorer -suite SPEC06 -budget 120 -journal run.jsonl
//	obsreport run.jsonl
//	obsreport -iters 0 run.jsonl       # skip the per-iteration table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"archexplorer/internal/cli"
	"archexplorer/internal/obs"
	"archexplorer/internal/pareto"
	"archexplorer/internal/selfdeg"
)

func main() {
	cli.Init("obsreport")
	var (
		steps    = flag.Int("steps", 10, "budget steps in the hypervolume trajectory")
		iters    = flag.Int("iters", 40, "explorer iterations to list (0 = none, -1 = all)")
		critical = flag.Bool("critical-path", false, "print the campaign's own critical-path attribution from its span events instead of the stage report")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Usagef("usage: obsreport [flags] <run.jsonl>")
	}

	events, err := obs.LoadJournal(flag.Arg(0))
	cli.Check(err)
	if len(events) == 0 {
		cli.Fatalf("%s: empty journal", flag.Arg(0))
	}
	if *critical {
		cli.Check(criticalPath(os.Stdout, events))
		return
	}
	report(os.Stdout, events, *steps, *iters)
}

// criticalPath applies the repo's bottleneck method to the campaign
// itself: rebuild the run's execution dependency graph from its span
// events and attribute wall-clock to the longest path through it.
func criticalPath(w io.Writer, events []obs.Event) error {
	rep, err := selfdeg.Analyze(events)
	if err != nil {
		return err
	}
	rep.Format(w)
	return nil
}

// report renders the whole journal story to w. Split from main so tests can
// pin the output byte for byte.
func report(w io.Writer, events []obs.Event, steps, iters int) {
	var start *obs.RunStart
	var end *obs.RunEnd
	var iterEvents []*obs.IterEvent
	var grids []*obs.GridProgress
	var recovery []obs.Event
	spans := reduceSpans(events, &start, &end, &iterEvents, &grids, &recovery)

	printHeader(w, start, end, len(events))
	printStages(w, spans)
	printCache(w, end)
	printRecovery(w, recovery)
	printTrajectory(w, spans, start, end, steps)
	printIterations(w, iterEvents, iters)
	if len(grids) > 0 {
		last := grids[len(grids)-1]
		fmt.Fprintf(w, "campaign grid: %d/%d cells completed\n\n", last.Done, last.Total)
	}
}

// reduceSpans mirrors the evaluator's in-place history upgrades: a span
// that replaces another takes the superseded span's slot, so the result
// is ordered exactly like Evaluator.History and sums to StageTotals. Fault,
// checkpoint, and resume events are collected in journal order for the
// recovery timeline.
func reduceSpans(events []obs.Event, start **obs.RunStart, end **obs.RunEnd,
	iters *[]*obs.IterEvent, grids *[]*obs.GridProgress, recovery *[]obs.Event) []*obs.EvalSpan {
	var out []*obs.EvalSpan
	slot := map[int64]int{}
	for _, e := range events {
		switch v := e.(type) {
		case *obs.RunStart:
			if *start == nil {
				*start = v
			}
		case *obs.RunEnd:
			*end = v
		case *obs.IterEvent:
			*iters = append(*iters, v)
		case *obs.GridProgress:
			*grids = append(*grids, v)
		case *obs.FaultEvent, *obs.CheckpointEvent, *obs.ResumeEvent:
			*recovery = append(*recovery, v)
		case *obs.EvalSpan:
			if i, ok := slot[v.Replaces]; v.Replaces != 0 && ok {
				delete(slot, v.Replaces)
				out[i] = v
				slot[v.Span] = i
				continue
			}
			slot[v.Span] = len(out)
			out = append(out, v)
		}
	}
	return out
}

func printHeader(w io.Writer, start *obs.RunStart, end *obs.RunEnd, n int) {
	if start == nil {
		fmt.Fprintf(w, "journal: %d events (no run_start; partial journal?)\n\n", n)
		return
	}
	fmt.Fprintf(w, "run: %s", start.Tool)
	if start.Method != "" {
		fmt.Fprintf(w, " / %s", start.Method)
	}
	if start.Suite != "" {
		fmt.Fprintf(w, " on %s", start.Suite)
	}
	if start.Budget > 0 {
		fmt.Fprintf(w, ", budget %d", start.Budget)
	}
	if start.TraceLen > 0 {
		fmt.Fprintf(w, ", tracelen %d", start.TraceLen)
	}
	fmt.Fprintf(w, " (%d events)\n", n)
	if end != nil {
		fmt.Fprintf(w, "outcome: %.1f sims in %v", end.Sims, time.Duration(end.ElapsedNS).Round(time.Millisecond))
		if end.HV != 0 {
			fmt.Fprintf(w, ", final hypervolume %.4f", end.HV)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "outcome: no run_end event — the run did not finish cleanly")
	}
	fmt.Fprintln(w)
}

func printStages(w io.Writer, spans []*obs.EvalSpan) {
	if len(spans) == 0 {
		return
	}
	var trace, sim, power, deg, degStream time.Duration
	var insts int64
	evals, probes := 0, 0
	for _, s := range spans {
		trace += time.Duration(s.TraceNS)
		sim += time.Duration(s.SimNS)
		power += time.Duration(s.PowerNS)
		deg += time.Duration(s.DEGNS)
		degStream += time.Duration(s.DEGStreamNS)
		insts += s.SimInsts
		if s.Probe {
			probes++
		} else {
			evals++
		}
	}
	total := trace + sim + power + deg + degStream
	fmt.Fprintf(w, "stage-time breakdown (%d full evaluations, %d probes):\n", evals, probes)
	pct := func(d time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", "sim", sim.Round(time.Microsecond), pct(sim))
	fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", "analysis", deg.Round(time.Microsecond), pct(deg))
	// Fused sim+analysis stage of streamed evaluations; older journals and
	// buffered runs carry no such spans, so the row stays hidden for them.
	if degStream > 0 {
		fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", "sim+deg", degStream.Round(time.Microsecond), pct(degStream))
	}
	fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", "power", power.Round(time.Microsecond), pct(power))
	fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", "traces", trace.Round(time.Microsecond), pct(trace))
	fmt.Fprintf(w, "  %-10s %12s\n", "total", total.Round(time.Microsecond))
	// Older journals carry no sim_insts; keep their reports unchanged.
	if insts > 0 && sim > 0 {
		fmt.Fprintf(w, "  simulator throughput: %d insts in %s (%.0f insts/s)\n",
			insts, sim.Round(time.Microsecond), float64(insts)/sim.Seconds())
	}
	fmt.Fprintf(w, "\n")
}

func printCache(w io.Writer, end *obs.RunEnd) {
	if end == nil || end.Metrics == nil {
		return
	}
	hits := end.Metrics[obs.MetricCacheHits]
	misses := end.Metrics[obs.MetricCacheMisses]
	upgrades := end.Metrics[obs.MetricCacheUpgrades]
	if hits+misses == 0 {
		return
	}
	fmt.Fprintf(w, "evaluation cache: %.0f hits / %.0f lookups (%.1f%% hit rate), %.0f DEG upgrades\n\n",
		hits, hits+misses, 100*hits/(hits+misses), upgrades)
}

// printRecovery renders the fault-tolerance story: every retry, skip,
// failed snapshot, checkpoint, and resume, in journal order, followed by a
// one-line tally.
func printRecovery(w io.Writer, recovery []obs.Event) {
	if len(recovery) == 0 {
		return
	}
	fmt.Fprintf(w, "recovery timeline (%d events):\n", len(recovery))
	var retries, timeouts, skips, ckptFails int
	var checkpoints, resumes int
	lastCkpt := ""
	for _, e := range recovery {
		switch v := e.(type) {
		case *obs.ResumeEvent:
			resumes++
			fmt.Fprintf(w, "  resume      %d designs replayed from %s (%d skipped), %.1f sims already spent\n",
				v.Designs, pathBase(v.Path), v.Skipped, v.Sims)
		case *obs.CheckpointEvent:
			// Checkpoints dominate a healthy journal; fold the run of them
			// into the tally and print only the site changes.
			checkpoints++
			lastCkpt = fmt.Sprintf("%d designs, %.1f sims", v.Designs, v.Sims)
		case *obs.FaultEvent:
			switch v.Action {
			case "retry":
				retries++
				if v.Class == "timeout" {
					timeouts++
				}
				fmt.Fprintf(w, "  retry       %s %s on %s (attempt %d, backoff %v)\n",
					v.Class, v.Site, v.Workload, v.Attempt, time.Duration(v.BackoffNS))
			case "skip":
				skips++
				fmt.Fprintf(w, "  skip        %s failure at point %v: %s\n", v.Site, v.Point, v.Err)
			case "checkpoint-failed":
				ckptFails++
				fmt.Fprintf(w, "  ckpt-failed %s\n", v.Err)
			default:
				fmt.Fprintf(w, "  %-11s %s %s\n", v.Action, v.Class, v.Site)
			}
		}
	}
	if checkpoints > 0 {
		fmt.Fprintf(w, "  checkpoint  ×%d, last at %s\n", checkpoints, lastCkpt)
	}
	fmt.Fprintf(w, "recovered: %d retries (%d timeouts), %d designs skipped, %d checkpoints (%d failed), %d resumes\n\n",
		retries, timeouts, skips, checkpoints, ckptFails, resumes)
}

// pathBase trims a checkpoint path to its final element so journals remain
// comparable across machines and temp directories.
func pathBase(p string) string {
	if p == "" {
		return "(unnamed)"
	}
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

func printTrajectory(w io.Writer, spans []*obs.EvalSpan, start *obs.RunStart, end *obs.RunEnd, steps int) {
	if len(spans) == 0 || steps <= 0 {
		return
	}
	ref := pareto.StandardReference
	if start != nil && start.HVRef != [3]float64{} {
		ref = pareto.Reference{Perf: start.HVRef[0], Power: start.HVRef[1], Area: start.HVRef[2]}
	}
	budget := 0.0
	if start != nil && start.Budget > 0 {
		budget = float64(start.Budget)
	}
	maxAt := 0.0
	for _, s := range spans {
		if s.SimsAt > maxAt {
			maxAt = s.SimsAt
		}
	}
	if budget == 0 {
		budget = maxAt
	}
	hvAt := func(b float64) float64 {
		var pts []pareto.Point
		for _, s := range spans {
			if s.SimsAt > b {
				continue
			}
			pts = append(pts, pareto.Point{Perf: s.Perf, Power: s.PowerW, Area: s.AreaMM2})
		}
		return pareto.Hypervolume(pts, ref)
	}
	fmt.Fprintf(w, "hypervolume vs budget (reference perf=%g power=%g area=%g):\n", ref.Perf, ref.Power, ref.Area)
	fmt.Fprintf(w, "  %10s %12s\n", "sims", "hypervolume")
	for i := 1; i <= steps; i++ {
		b := budget * float64(i) / float64(steps)
		fmt.Fprintf(w, "  %10.1f %12.4f\n", b, hvAt(b))
	}
	final := hvAt(budget)
	fmt.Fprintf(w, "  final (budget %.0f): %.4f", budget, final)
	if end != nil && end.HV != 0 {
		if d := final - end.HV; d < 1e-9 && d > -1e-9 {
			fmt.Fprintf(w, "  — matches the run's reported hypervolume")
		} else {
			fmt.Fprintf(w, "  — run reported %.4f (journal incomplete?)", end.HV)
		}
	}
	fmt.Fprint(w, "\n\n")
}

func printIterations(w io.Writer, iters []*obs.IterEvent, limit int) {
	steps := iters[:0:0]
	phases := map[string]int{}
	topCount := map[string]int{}
	for _, it := range iters {
		if it.Phase != "" {
			phases[it.Explorer+" "+it.Phase]++
			continue
		}
		steps = append(steps, it)
		if len(it.Top) > 0 {
			topCount[it.Top[0].Res]++
		}
	}
	if len(phases) > 0 {
		var keys []string
		for k := range phases {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "explorer phases:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %s ×%d", k, phases[k])
		}
		fmt.Fprint(w, "\n\n")
	}
	if len(steps) == 0 {
		return
	}
	if len(topCount) > 0 {
		type rc struct {
			res string
			n   int
		}
		var ranked []rc
		for r, n := range topCount {
			ranked = append(ranked, rc{r, n})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].n != ranked[j].n {
				return ranked[i].n > ranked[j].n
			}
			return ranked[i].res < ranked[j].res
		})
		fmt.Fprintf(w, "top bottleneck across %d iterations:", len(steps))
		for _, r := range ranked {
			fmt.Fprintf(w, "  %s ×%d", r.res, r.n)
		}
		fmt.Fprint(w, "\n\n")
	}
	if limit == 0 {
		return
	}
	shown := steps
	if limit > 0 && len(shown) > limit {
		shown = shown[:limit]
	}
	fmt.Fprintf(w, "iterations (%d of %d):\n", len(shown), len(steps))
	fmt.Fprintf(w, "  %-9s %8s %10s %6s  %-28s %s\n", "walk/step", "sims", "hv", "best", "top bottlenecks", "resize")
	for _, it := range shown {
		var tops []string
		for _, c := range it.Top {
			tops = append(tops, fmt.Sprintf("%s %.2f", c.Res, c.Contrib))
		}
		resize := describeResize(it)
		fmt.Fprintf(w, "  %4d/%-4d %8.1f %10.4f %6.3f  %-28s %s\n",
			it.Walk, it.Step, it.Sims, it.HV, it.BestIPC, strings.Join(tops, ", "), resize)
	}
	if len(shown) < len(steps) {
		fmt.Fprintf(w, "  … %d more (rerun with -iters -1)\n", len(steps)-len(shown))
	}
	fmt.Fprintln(w)
}

func describeResize(it *obs.IterEvent) string {
	var parts []string
	if len(it.Grown) > 0 {
		parts = append(parts, compactNames("+", it.Grown))
	}
	if len(it.Shrunk) > 0 {
		parts = append(parts, compactNames("-", it.Shrunk))
	}
	if it.Improved {
		parts = append(parts, "improved")
	}
	if len(parts) == 0 {
		return "—"
	}
	return strings.Join(parts, " ")
}

// compactNames folds repeated resize targets ("-IntRF,-IntRF,-IntRF" from
// a multi-level shrink) into "-IntRF×3", keeping first-occurrence order.
func compactNames(sign string, names []string) string {
	count := map[string]int{}
	var order []string
	for _, n := range names {
		if count[n] == 0 {
			order = append(order, n)
		}
		count[n]++
	}
	var out []string
	for _, n := range order {
		if count[n] > 1 {
			out = append(out, fmt.Sprintf("%s%s×%d", sign, n, count[n]))
		} else {
			out = append(out, sign+n)
		}
	}
	return strings.Join(out, ",")
}
