// Command benchgate compares `go test -bench` output against committed
// BENCH_*.json baselines and fails when throughput regresses beyond a
// tolerance. It is the teeth behind `make bench-all`: the baselines record
// what the optimized pipeline achieved on the reference host, and a >10%
// drop in inst/s on the same host means a hot-path regression slipped in.
//
// Usage:
//
//	go test -bench '...' -benchmem -run XXX . | \
//	    benchgate -tolerance 0.10 \
//	        -expect 'BenchmarkSimFull=BENCH_sim.json:after_full.inst_per_sec' \
//	        -expect 'BenchmarkPipelineStream=BENCH_pipeline.json:after.inst_per_sec'
//
// Each -expect maps a benchmark name (suffixes like -8 are ignored) to a
// dotted path into a baseline JSON file; the addressed value is the
// baseline inst/s. Benchmarks in the output without an -expect mapping are
// ignored; a mapped benchmark missing from the output is an error, so a
// renamed or deleted benchmark cannot silently drop out of the gate.
//
// A baseline ref may instead name another benchmark from the SAME run:
//
//	benchgate -tolerance 0.02 \
//	    -expect 'BenchmarkPipelineStreamSpans=bench:BenchmarkPipelineStream'
//
// bench: refs gate relative overheads (instrumented vs uninstrumented)
// without a committed number, so host speed cancels out of the comparison.
//
// Either ref form takes an optional leading multiplier:
//
//	benchgate -tolerance 0 \
//	    -expect 'BenchmarkSimBatch=1.5*bench:BenchmarkSimBatchSeq'
//
// scales the baseline before the tolerance applies — here requiring the
// batched pass to reach at least 1.5× the same run's sequential
// throughput, a speedup floor rather than a regression floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

type expectList []string

func (e *expectList) String() string     { return strings.Join(*e, ",") }
func (e *expectList) Set(s string) error { *e = append(*e, s); return nil }

func main() {
	var (
		expects   expectList
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional throughput drop before failing")
		metric    = flag.String("metric", "inst/s", "benchmark metric unit to gate on")
	)
	flag.Var(&expects, "expect", "Bench=file.json:dotted.path mapping (repeatable)")
	flag.Parse()
	if len(expects) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no -expect mappings given")
		os.Exit(2)
	}

	measured, err := parseBench(os.Stdin, *metric)
	check(err)

	failed := false
	for _, e := range expects {
		name, ref, ok := strings.Cut(e, "=")
		if !ok {
			check(fmt.Errorf("malformed -expect %q (want Bench=file.json:path)", e))
		}
		baseline, err := resolveBaseline(ref, measured)
		check(err)
		got, ok := measured[name]
		if !ok {
			check(fmt.Errorf("benchmark %s not found in input (stale -expect or renamed benchmark?)", name))
		}
		floor := baseline * (1 - *tolerance)
		status := "ok"
		if got < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-34s %12.0f %s  baseline %12.0f  floor %12.0f  %s\n",
			name, got, *metric, baseline, floor, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: throughput regressed more than %.0f%% below baseline\n", *tolerance*100)
		os.Exit(1)
	}
}

// parseBench extracts the named metric from `go test -bench` output lines:
// a value token immediately followed by the metric's unit token. The
// benchmark name is the first field with any -<GOMAXPROCS> suffix removed.
func parseBench(r io.Reader, metric string) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 1; i+1 < len(fields); i++ {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s value in %q: %v", metric, line, err)
			}
			out[name] = v
		}
	}
	return out, sc.Err()
}

// resolveBaseline resolves a baseline ref: "bench:Name" reads another
// benchmark's value from the same run's measurements; anything else is a
// "file.json:dotted.path" into a committed baseline file. A leading
// "<factor>*" scales the resolved value, turning the gate into a speedup
// floor (e.g. "1.5*bench:BenchmarkSimBatchSeq").
func resolveBaseline(ref string, measured map[string]float64) (float64, error) {
	scale := 1.0
	if head, rest, ok := strings.Cut(ref, "*"); ok {
		f, err := strconv.ParseFloat(head, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed multiplier in baseline ref %q: %v", ref, err)
		}
		// ParseFloat accepts "NaN" and "+Inf", and `NaN <= 0` is false, so
		// a plain non-positive check would wave both through — a NaN scale
		// makes every floor comparison false and the gate vacuously green.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("non-finite multiplier %v in baseline ref %q", f, ref)
		}
		if f <= 0 {
			return 0, fmt.Errorf("non-positive multiplier in baseline ref %q", ref)
		}
		scale, ref = f, rest
	}
	if name, ok := strings.CutPrefix(ref, "bench:"); ok {
		v, ok := measured[name]
		if !ok {
			return 0, fmt.Errorf("baseline benchmark %s not found in input", name)
		}
		return scale * v, nil
	}
	v, err := lookupBaseline(ref)
	return scale * v, err
}

// lookupBaseline resolves "file.json:dotted.path" to a number inside the
// baseline file.
func lookupBaseline(ref string) (float64, error) {
	file, path, ok := strings.Cut(ref, ":")
	if !ok {
		return 0, fmt.Errorf("malformed baseline ref %q (want file.json:dotted.path)", ref)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		return 0, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %v", file, err)
	}
	cur := doc
	for _, key := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("%s: %q is not an object", file, path)
		}
		if cur, ok = m[key]; !ok {
			return 0, fmt.Errorf("%s: no field %q in path %q", file, key, path)
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("%s: %q is not a number", file, path)
	}
	return v, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
}
