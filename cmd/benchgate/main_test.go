package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkSimFull-8    	     100	  12345 ns/op	   3200000 inst/s	  64 B/op
BenchmarkSimBatch     	      80	  30959063 ns/op	   2584060 inst/s
BenchmarkNoMetric-8   	     100	  999 ns/op
PASS
`
	m, err := parseBench(strings.NewReader(out), "inst/s")
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkSimFull"]; got != 3200000 {
		t.Fatalf("suffix-stripped benchmark: got %v", got)
	}
	if got := m["BenchmarkSimBatch"]; got != 2584060 {
		t.Fatalf("unsuffixed benchmark: got %v", got)
	}
	if _, ok := m["BenchmarkNoMetric"]; ok {
		t.Fatal("benchmark without the metric should not be recorded")
	}
	if _, err := parseBench(strings.NewReader("BenchmarkBad 1 2 ns/op bogus inst/s\n"), "inst/s"); err == nil {
		t.Fatal("unparseable metric value accepted")
	}
}

func TestResolveBaselineBenchRef(t *testing.T) {
	measured := map[string]float64{"BenchmarkSeq": 1000}
	v, err := resolveBaseline("bench:BenchmarkSeq", measured)
	if err != nil || v != 1000 {
		t.Fatalf("bench ref: %v %v", v, err)
	}
	if _, err := resolveBaseline("bench:BenchmarkGone", measured); err == nil {
		t.Fatal("missing bench ref accepted")
	}
}

func TestResolveBaselineMultiplier(t *testing.T) {
	measured := map[string]float64{"BenchmarkSeq": 1000}
	v, err := resolveBaseline("1.5*bench:BenchmarkSeq", measured)
	if err != nil || math.Abs(v-1500) > 1e-9 {
		t.Fatalf("scaled bench ref: %v %v", v, err)
	}
	// strconv.ParseFloat accepts "NaN" and the infinities, and NaN <= 0 is
	// false, so these used to sail through the non-positive check and turn
	// every floor comparison vacuously green. They must be rejected with an
	// error that names the problem.
	cases := []struct {
		ref     string
		wantErr string
	}{
		{"NaN*bench:BenchmarkSeq", "non-finite multiplier"},
		{"nan*bench:BenchmarkSeq", "non-finite multiplier"},
		{"+Inf*bench:BenchmarkSeq", "non-finite multiplier"},
		{"Inf*bench:BenchmarkSeq", "non-finite multiplier"},
		{"-Inf*bench:BenchmarkSeq", "non-finite multiplier"},
		{"infinity*bench:BenchmarkSeq", "non-finite multiplier"},
		{"0*bench:BenchmarkSeq", "non-positive multiplier"},
		{"-2*bench:BenchmarkSeq", "non-positive multiplier"},
		{"x*bench:BenchmarkSeq", "malformed multiplier"},
	}
	for _, c := range cases {
		_, err := resolveBaseline(c.ref, measured)
		if err == nil {
			t.Errorf("multiplier ref %q accepted, want error containing %q", c.ref, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("multiplier ref %q: error %q does not contain %q", c.ref, err, c.wantErr)
		}
	}
}

func TestResolveBaselineFileRef(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(`{"after": {"inst_per_sec": 2000, "note": "x"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := resolveBaseline(path+":after.inst_per_sec", nil)
	if err != nil || v != 2000 {
		t.Fatalf("file ref: %v %v", v, err)
	}
	v, err = resolveBaseline("2*"+path+":after.inst_per_sec", nil)
	if err != nil || v != 4000 {
		t.Fatalf("scaled file ref: %v %v", v, err)
	}
	for _, bad := range []string{
		"no-colon-ref",
		path + ":after.missing",
		path + ":after.note",
		path + ":after.inst_per_sec.deeper",
	} {
		if _, err := resolveBaseline(bad, nil); err == nil {
			t.Fatalf("bad file ref %q accepted", bad)
		}
	}
}
