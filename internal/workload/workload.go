// Package workload generates the synthetic benchmark traces used in place
// of SPEC CPU2006/2017 Simpoints.
//
// The paper evaluates on 12 SPEC06 and 14 SPEC17 workloads (Table 3), using
// the first 100k instructions of each Simpoint for critical-path analysis.
// Real SPEC binaries and Simpoint traces are proprietary inputs we cannot
// ship, so each workload here is a deterministic generator that imitates the
// *microarchitectural character* of its namesake: instruction mix (integer/
// FP/multiply/divide), memory footprint and access pattern (streaming,
// random, pointer-chasing), branch density and predictability, call depth,
// and data-dependence chain length. Those are exactly the axes that decide
// which hardware resource bottlenecks a design — which is all ArchExplorer's
// bottleneck analysis consumes.
//
// Generation is a two-step process mirroring a real program: a seeded
// Profile is first compiled into a static Program (a control-flow graph of
// basic blocks over static instruction slots with fixed PCs), and the
// dynamic trace is then a seeded walk over that CFG. Static PCs repeat
// across the walk, so branch predictors and instruction caches observe
// realistic locality.
package workload

import (
	"fmt"
	"math/rand"

	"archexplorer/internal/isa"
)

// Profile describes the microarchitectural character of a workload.
type Profile struct {
	Name  string
	Suite string // "SPEC06" or "SPEC17"

	Blocks    int // static basic blocks in the hot region
	BlockMin  int // min non-branch instructions per block
	BlockMax  int // max non-branch instructions per block
	CallDepth int // fraction control: >0 enables call/return blocks

	// Instruction mix (fractions of non-branch slots; remainder is IntAlu).
	FpFrac    float64 // FP ALU ops
	FpMulFrac float64 // FP multiply/divide ops
	MulFrac   float64 // integer multiply ops
	DivFrac   float64 // integer divide ops
	LoadFrac  float64
	StoreFrac float64

	// Memory behaviour.
	FootprintKB int     // working-set size
	StreamFrac  float64 // fraction of static memory slots with unit-stride streams
	ChaseFrac   float64 // fraction of static loads that are pointer-chasing

	// Dependence structure.
	ChainFrac float64 // probability an op reads the immediately preceding dest

	// Branch behaviour.
	BranchBias float64 // per-static-branch probability of its biased direction
	CallFrac   float64 // fraction of blocks that end in call (paired with ret)
}

// Validate reports profile fields that would generate a malformed program.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile missing name")
	}
	if p.Blocks < 2 {
		return fmt.Errorf("workload %s: need at least 2 blocks", p.Name)
	}
	if p.BlockMin < 1 || p.BlockMax < p.BlockMin {
		return fmt.Errorf("workload %s: bad block length range [%d,%d]", p.Name, p.BlockMin, p.BlockMax)
	}
	if p.FootprintKB < 1 {
		return fmt.Errorf("workload %s: footprint must be >= 1KB", p.Name)
	}
	mix := p.FpFrac + p.FpMulFrac + p.MulFrac + p.DivFrac + p.LoadFrac + p.StoreFrac
	if mix > 1.0001 {
		return fmt.Errorf("workload %s: instruction mix sums to %.3f > 1", p.Name, mix)
	}
	for _, f := range []float64{p.StreamFrac, p.ChaseFrac, p.ChainFrac, p.BranchBias, p.CallFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: fraction %v out of [0,1]", p.Name, f)
		}
	}
	return nil
}

// memPattern is the address behaviour of one static memory slot.
type memPattern uint8

const (
	memStream memPattern = iota // sequential, unit cache-line stride
	memRandom                   // uniform in the working set
	memChase                    // serialized pointer chase in the working set
)

// staticInst is one static instruction slot of a Program.
type staticInst struct {
	pc    uint64
	class isa.OpClass
	// memory slots
	pattern memPattern
	region  uint64 // base address of this slot's region
	regSize uint64 // region size in bytes
	stride  uint64
	// branch slots
	brKind isa.BranchKind
	bias   float64 // probability of taking the branch (irregular branches)
	period int     // >0: deterministic loop branch, taken period-1 of period
	taken  int     // CFG successor when taken
	fall   int     // CFG successor when not taken
}

// block is a basic block: a run of static instructions ending in an
// optional branch.
type block struct {
	insts []staticInst
}

// Program is the compiled static form of a Profile.
type Program struct {
	Profile Profile
	blocks  []block
	entry   int
}

// Generator walks a Program, producing the dynamic instruction stream.
type Generator struct {
	prog *Program
	rng  *rand.Rand

	cur      int // current block index
	idx      int // next instruction slot within the current block
	stack    []int
	streams  map[uint64]uint64 // per-slot next streaming address
	chasePtr map[uint64]uint64 // per-slot current pointer-chase position
	brCount  map[uint64]int    // per-slot execution count (loop periods)
	winBase  uint64            // shared hot-window base (random pattern)
	winCnt   int               // shared access count (window drift)
	lastDest isa.Reg           // most recent destination register
	lastLoad isa.Reg           // most recent load destination (for chases)
	regRot   int               // round-robin architectural dest allocator
}

// Compile expands a Profile into a static Program using the given seed.
func Compile(p Profile, seed int64) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	prog := &Program{Profile: p}

	const pcStride = 4
	nextPC := uint64(0x10000)
	footprint := uint64(p.FootprintKB) * 1024

	for b := 0; b < p.Blocks; b++ {
		n := p.BlockMin
		if p.BlockMax > p.BlockMin {
			n += rng.Intn(p.BlockMax - p.BlockMin + 1)
		}
		var blk block
		for i := 0; i < n; i++ {
			si := staticInst{pc: nextPC}
			nextPC += pcStride
			r := rng.Float64()
			switch {
			case r < p.LoadFrac:
				si.class = isa.OpLoad
			case r < p.LoadFrac+p.StoreFrac:
				si.class = isa.OpStore
			case r < p.LoadFrac+p.StoreFrac+p.FpFrac:
				si.class = isa.OpFpAlu
			case r < p.LoadFrac+p.StoreFrac+p.FpFrac+p.FpMulFrac:
				if rng.Float64() < 0.05 {
					si.class = isa.OpFpDiv
				} else {
					si.class = isa.OpFpMult
				}
			case r < p.LoadFrac+p.StoreFrac+p.FpFrac+p.FpMulFrac+p.MulFrac:
				si.class = isa.OpIntMult
			case r < p.LoadFrac+p.StoreFrac+p.FpFrac+p.FpMulFrac+p.MulFrac+p.DivFrac:
				si.class = isa.OpIntDiv
			default:
				si.class = isa.OpIntAlu
			}
			if si.class.IsMem() {
				si.region = 0x100000
				si.regSize = footprint
				si.stride = 8 // element-granular streaming: ~1 miss per 8 accesses
				mr := rng.Float64()
				switch {
				case si.class == isa.OpLoad && mr < p.ChaseFrac:
					si.pattern = memChase
				case mr < p.ChaseFrac+p.StreamFrac:
					si.pattern = memStream
				default:
					si.pattern = memRandom
				}
			}
			blk.insts = append(blk.insts, si)
		}
		// Terminator branch; successors are filled in below.
		term := staticInst{pc: nextPC, class: isa.OpBranch, bias: p.BranchBias}
		nextPC += pcStride
		blk.insts = append(blk.insts, term)
		prog.blocks = append(prog.blocks, blk)
	}

	// Wire the CFG: mostly loopy back-edges plus forward jumps, with a
	// CallFrac share of call/return pairs exercising the RAS. The last
	// block jumps back to the entry unconditionally so fall-through PCs
	// stay contiguous.
	for b := range prog.blocks {
		if b == p.Blocks-1 {
			term := &prog.blocks[b].insts[len(prog.blocks[b].insts)-1]
			term.brKind = isa.BrJump
			term.taken = 0
			term.fall = 0
			continue
		}
		term := &prog.blocks[b].insts[len(prog.blocks[b].insts)-1]
		term.fall = (b + 1) % p.Blocks
		switch r := rng.Float64(); {
		case r < p.CallFrac/2:
			term.brKind = isa.BrCall
			term.bias = 1.0
			term.taken = rng.Intn(p.Blocks)
		case r < p.CallFrac:
			term.brKind = isa.BrRet
			term.bias = 1.0
			term.taken = rng.Intn(p.Blocks) // fallback target when stack empty
		case rng.Float64() < 0.6:
			// Loop back-edge to a recent block. With probability
			// BranchBias the loop has a deterministic trip count (the
			// predictable branches of real code); otherwise the exit
			// is data-dependent (irregular).
			back := b - 1 - rng.Intn(4)
			if back < 0 {
				back += p.Blocks
			}
			term.brKind = isa.BrCond
			term.taken = back
			// Regular (fixed-trip-count) loops dominate; truly
			// data-dependent exits are the (1-bias)/2 minority and
			// remain biased one way, as real hard branches are.
			if rng.Float64() < (1+p.BranchBias)/2 {
				term.period = 3 + rng.Intn(6)
			} else {
				term.bias = 0.65 + 0.25*rng.Float64()
			}
		default:
			term.brKind = isa.BrCond
			term.taken = rng.Intn(p.Blocks)
			if rng.Float64() < (1+p.BranchBias)/2 {
				term.period = 2 + rng.Intn(7)
			} else {
				term.bias = 0.65 + 0.25*rng.Float64()
			}
		}
	}
	return prog, nil
}

// NewGenerator starts a dynamic walk over the program.
func (prog *Program) NewGenerator(seed int64) *Generator {
	return &Generator{
		prog:     prog,
		rng:      rand.New(rand.NewSource(seed)),
		cur:      prog.entry,
		streams:  make(map[uint64]uint64),
		chasePtr: make(map[uint64]uint64),
		brCount:  make(map[uint64]int),
		lastDest: isa.InvalidReg,
		lastLoad: isa.InvalidReg,
	}
}

// nextReg allocates a destination register, rotating through the upper
// architectural registers so WAW recycling resembles compiled code.
func (g *Generator) nextReg(float bool) isa.Reg {
	g.regRot++
	idx := 8 + g.regRot%20 // avoid x0..x7 (stack/zero-like), reuse 20 regs
	if float {
		return isa.FpReg(idx)
	}
	return isa.IntReg(idx)
}

// srcReg picks a source register, honouring the profile's chain fraction.
// Besides chained reads of the previous destination, a large share of reads
// hit long-lived values (loop invariants, base pointers: x2..x7), which are
// always ready and create no scheduling pressure — real code's main source
// of instruction-level parallelism.
func (g *Generator) srcReg(float bool) isa.Reg {
	p := g.prog.Profile
	if g.lastDest.Valid() && g.lastDest.Float == float && g.rng.Float64() < p.ChainFrac {
		return g.lastDest
	}
	if g.rng.Float64() < 0.45 {
		idx := 2 + g.rng.Intn(6) // invariant pool
		if float {
			return isa.FpReg(idx)
		}
		return isa.IntReg(idx)
	}
	idx := 8 + g.rng.Intn(20)
	if float {
		return isa.FpReg(idx)
	}
	return isa.IntReg(idx)
}

// address computes the next effective address for a static memory slot.
func (g *Generator) address(si *staticInst) uint64 {
	switch si.pattern {
	case memStream:
		a, ok := g.streams[si.pc]
		if !ok || a >= si.region+si.regSize {
			a = si.region
		}
		g.streams[si.pc] = a + si.stride
		return a
	case memChase:
		a, ok := g.chasePtr[si.pc]
		if !ok {
			a = si.region
		}
		// A deterministic scramble keeps the chase inside the working
		// set while defeating next-line locality.
		next := si.region + (a*2654435761+97)%si.regSize
		next &^= 7
		g.chasePtr[si.pc] = next
		return a
	default:
		// Random accesses model heap locality with a drifting hot window
		// shared by all access sites: most references land in a small
		// window whose base occasionally jumps elsewhere in the footprint
		// (phase change), and a cold tail touches the whole working set.
		win := uint64(8 * 1024)
		if win > si.regSize {
			win = si.regSize
		}
		g.winCnt++
		if g.winBase == 0 || g.winCnt%1024 == 0 {
			g.winBase = si.region + (g.rng.Uint64()%si.regSize)&^63
			if g.winBase+win > si.region+si.regSize {
				g.winBase = si.region + si.regSize - win
			}
		}
		if g.rng.Float64() < 0.95 {
			return g.winBase + (g.rng.Uint64()%win)&^7
		}
		return si.region + (g.rng.Uint64()%si.regSize)&^7
	}
}

// Next produces the next dynamic instruction.
func (g *Generator) Next() isa.Inst {
	blk := &g.prog.blocks[g.cur]
	// Walk the current block start-to-end; the Generator stores position
	// implicitly by emitting whole blocks via an internal buffer-less
	// index. For simplicity we keep a per-call scan: the generator emits
	// one instruction per call using idx.
	if g.idx >= len(blk.insts) {
		g.idx = 0
	}
	si := &blk.insts[g.idx]
	g.idx++

	out := isa.Inst{PC: si.pc, Class: si.class}
	switch si.class {
	case isa.OpLoad:
		out.Addr = g.address(si)
		out.Size = 8
		if si.pattern == memChase && g.lastLoad.Valid() {
			out.Src1 = g.lastLoad // serialize the chase
		} else {
			out.Src1 = g.srcReg(false)
		}
		out.Src2 = isa.InvalidReg
		out.Dest = g.nextReg(false)
		g.lastLoad = out.Dest
		g.lastDest = out.Dest
	case isa.OpStore:
		out.Addr = g.address(si)
		out.Size = 8
		out.Src1 = g.srcReg(false) // address register
		out.Src2 = g.srcReg(false) // data register
		out.Dest = isa.InvalidReg
	case isa.OpBranch:
		out.BrKind = si.brKind
		out.Src1 = g.srcReg(false)
		out.Src2 = isa.InvalidReg
		out.Dest = isa.InvalidReg
		next := si.fall
		taken := false
		switch si.brKind {
		case isa.BrCall:
			taken = true
			next = si.taken
			maxDepth := 4 * (g.prog.Profile.CallDepth + 1)
			if len(g.stack) < maxDepth {
				g.stack = append(g.stack, si.fall)
			}
			out.Dest = isa.IntReg(1) // link register
		case isa.BrRet:
			taken = true
			if n := len(g.stack); n > 0 {
				next = g.stack[n-1]
				g.stack = g.stack[:n-1]
			} else {
				next = si.taken
			}
		case isa.BrJump:
			taken = true
			next = si.taken
		default:
			if si.period > 0 {
				cnt := g.brCount[si.pc]
				g.brCount[si.pc] = cnt + 1
				if cnt%si.period != si.period-1 {
					taken = true
					next = si.taken
				}
			} else if g.rng.Float64() < si.bias {
				taken = true
				next = si.taken
			}
		}
		out.Taken = taken
		if taken {
			out.Target = g.prog.blocks[next].insts[0].pc
		}
		g.cur = next
		g.idx = 0
		return out
	default:
		float := si.class.IsFloat()
		out.Src1 = g.srcReg(float)
		if g.rng.Float64() < 0.35 {
			out.Src2 = isa.InvalidReg // immediate-operand forms
		} else {
			out.Src2 = g.srcReg(float)
		}
		out.Dest = g.nextReg(float)
		g.lastDest = out.Dest
	}
	return out
}

// Trace emits n dynamic instructions.
func (g *Generator) Trace(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
