package workload

import (
	"sync"
	"testing"

	"archexplorer/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("expected 26 workloads (12 + 14), got %d", len(all))
	}
	n06, n17 := 0, 0
	seen := map[string]bool{}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "SPEC06":
			n06++
		case "SPEC17":
			n17++
		default:
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
	}
	if n06 != 12 || n17 != 14 {
		t.Fatalf("suite sizes %d/%d, want 12/14 (Table 3)", n06, n17)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := Profile{Name: "x", Blocks: 4, BlockMin: 1, BlockMax: 3, FootprintKB: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{},
		{Name: "x", Blocks: 1, BlockMin: 1, BlockMax: 2, FootprintKB: 8},
		{Name: "x", Blocks: 4, BlockMin: 3, BlockMax: 2, FootprintKB: 8},
		{Name: "x", Blocks: 4, BlockMin: 1, BlockMax: 2, FootprintKB: 0},
		{Name: "x", Blocks: 4, BlockMin: 1, BlockMax: 2, FootprintKB: 8, LoadFrac: 0.8, StoreFrac: 0.4},
		{Name: "x", Blocks: 4, BlockMin: 1, BlockMax: 2, FootprintKB: 8, ChaseFrac: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("429.mcf")
	if err != nil || p.Name != "429.mcf" {
		t.Fatalf("ByName: %v %v", p, err)
	}
	if _, err := ByName("999.nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestTraceDeterministic(t *testing.T) {
	p, _ := ByName("458.sjeng")
	a, err := Trace(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trace(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3000 || len(b) != 3000 {
		t.Fatalf("trace lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCachedTraceSharesResult(t *testing.T) {
	p, _ := ByName("444.namd")
	a, err := CachedTrace(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedTrace(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("cache did not share the trace")
	}
}

func TestTraceControlFlowConsistent(t *testing.T) {
	// Every instruction's PC must equal the previous instruction's NextPC.
	for _, name := range []string{"458.sjeng", "400.perlbench", "619.lbm_s"} {
		p, _ := ByName(name)
		tr, err := Trace(p, 5000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(tr); i++ {
			if tr[i].PC != tr[i-1].NextPC() {
				t.Fatalf("%s: control flow broken at %d: %#x after %v", name, i, tr[i].PC, tr[i-1])
			}
		}
	}
}

func TestTraceMemoryAligned(t *testing.T) {
	p, _ := ByName("429.mcf")
	tr, err := Trace(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for i := range tr {
		if !tr[i].Class.IsMem() {
			continue
		}
		if tr[i].Addr%8 != 0 {
			t.Fatalf("misaligned access %#x", tr[i].Addr)
		}
		if tr[i].Addr < 0x100000 {
			t.Fatalf("access %#x below data region", tr[i].Addr)
		}
		if tr[i].Class == isa.OpLoad {
			loads++
		}
	}
	if loads == 0 {
		t.Fatal("mcf generated no loads")
	}
}

func TestMixMatchesProfileIntent(t *testing.T) {
	// FP-heavy namd must generate more FP ops than integer-only sjeng;
	// chasing mcf must have more loads than lbm has branches, etc.
	mix := func(name string) MixStats {
		p, _ := ByName(name)
		tr, err := Trace(p, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return Mix(tr)
	}
	namd, sjeng := mix("444.namd"), mix("458.sjeng")
	if namd.FpAlu+namd.FpMul <= sjeng.FpAlu+sjeng.FpMul {
		t.Error("namd should be FP-heavier than sjeng")
	}
	if sjeng.Branches <= namd.Branches {
		t.Error("sjeng should be branchier than namd")
	}
	perl := mix("400.perlbench")
	if perl.Calls == 0 || perl.Returns == 0 {
		t.Error("perlbench should exercise calls and returns")
	}
}

func TestGeneratorRespectsCount(t *testing.T) {
	p, _ := ByName("401.bzip2")
	prog, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGenerator(2)
	tr := g.Trace(777)
	if len(tr) != 777 {
		t.Fatalf("got %d instructions", len(tr))
	}
}

func TestCachedTraceConcurrentSingleflight(t *testing.T) {
	p, err := ByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1234 // unique length so this test owns the cache entry
	const goroutines = 16
	traces := make([][]isa.Inst, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := CachedTrace(p, n)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if len(traces[i]) != n {
			t.Fatalf("goroutine %d got %d instructions", i, len(traces[i]))
		}
		// Singleflight: every caller shares one backing array.
		if &traces[i][0] != &traces[0][0] {
			t.Fatal("concurrent CachedTrace produced distinct traces")
		}
	}
}

func TestPrewarmPopulatesCache(t *testing.T) {
	suite := Suite06()[:3]
	const n = 321
	if err := Prewarm(suite, n, 4); err != nil {
		t.Fatal(err)
	}
	for _, p := range suite {
		want, err := Trace(p, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CachedTrace(p, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: cached trace diverges at %d", p.Name, i)
			}
		}
	}
}
