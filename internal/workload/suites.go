package workload

import (
	"fmt"
	"sync"

	"archexplorer/internal/isa"
	"archexplorer/internal/par"
)

// The profiles below imitate the SPEC CPU2006/2017 workloads of Table 3.
// Parameters are chosen from the workloads' published characterisations:
// e.g. mcf is pointer-chasing with a large footprint and poor locality,
// libquantum/lbm are streaming, sjeng/deepsjeng/gobmk are branchy integer
// code with mediocre predictability, namd/cactuBSSN are FP-dense with long
// dependence chains, xz/bzip2 are integer compress kernels with frequent
// stores, perlbench/gcc/xalancbmk are call-heavy with large instruction
// footprints.

// Suite06 returns the 12 SPEC CPU2006-like workload profiles.
func Suite06() []Profile {
	return []Profile{
		{Name: "400.perlbench", Suite: "SPEC06", Blocks: 96, BlockMin: 3, BlockMax: 9, CallDepth: 3, CallFrac: 0.30, LoadFrac: 0.26, StoreFrac: 0.12, MulFrac: 0.01, FootprintKB: 384, StreamFrac: 0.25, ChaseFrac: 0.10, ChainFrac: 0.30, BranchBias: 0.88},
		{Name: "401.bzip2", Suite: "SPEC06", Blocks: 48, BlockMin: 4, BlockMax: 10, LoadFrac: 0.28, StoreFrac: 0.14, MulFrac: 0.02, FootprintKB: 1024, StreamFrac: 0.55, ChaseFrac: 0.02, ChainFrac: 0.38, BranchBias: 0.85},
		{Name: "429.mcf", Suite: "SPEC06", Blocks: 40, BlockMin: 3, BlockMax: 7, LoadFrac: 0.34, StoreFrac: 0.09, FootprintKB: 8192, StreamFrac: 0.05, ChaseFrac: 0.45, ChainFrac: 0.30, BranchBias: 0.90},
		{Name: "445.gobmk", Suite: "SPEC06", Blocks: 128, BlockMin: 2, BlockMax: 7, CallDepth: 2, CallFrac: 0.22, LoadFrac: 0.24, StoreFrac: 0.11, FootprintKB: 256, StreamFrac: 0.20, ChaseFrac: 0.08, ChainFrac: 0.25, BranchBias: 0.72},
		{Name: "444.namd", Suite: "SPEC06", Blocks: 24, BlockMin: 8, BlockMax: 18, FpFrac: 0.34, FpMulFrac: 0.22, LoadFrac: 0.22, StoreFrac: 0.07, FootprintKB: 512, StreamFrac: 0.70, ChaseFrac: 0.0, ChainFrac: 0.45, BranchBias: 0.97},
		{Name: "447.dealII", Suite: "SPEC06", Blocks: 64, BlockMin: 5, BlockMax: 12, CallDepth: 2, CallFrac: 0.14, FpFrac: 0.24, FpMulFrac: 0.14, LoadFrac: 0.26, StoreFrac: 0.09, FootprintKB: 2048, StreamFrac: 0.45, ChaseFrac: 0.08, ChainFrac: 0.35, BranchBias: 0.92},
		{Name: "450.soplex", Suite: "SPEC06", Blocks: 56, BlockMin: 4, BlockMax: 11, FpFrac: 0.22, FpMulFrac: 0.12, LoadFrac: 0.30, StoreFrac: 0.08, FootprintKB: 4096, StreamFrac: 0.35, ChaseFrac: 0.15, ChainFrac: 0.30, BranchBias: 0.90},
		{Name: "453.povray", Suite: "SPEC06", Blocks: 88, BlockMin: 4, BlockMax: 10, CallDepth: 4, CallFrac: 0.26, FpFrac: 0.28, FpMulFrac: 0.16, DivFrac: 0.015, LoadFrac: 0.22, StoreFrac: 0.08, FootprintKB: 128, StreamFrac: 0.30, ChaseFrac: 0.05, ChainFrac: 0.40, BranchBias: 0.85},
		{Name: "456.hmmer", Suite: "SPEC06", Blocks: 20, BlockMin: 8, BlockMax: 16, LoadFrac: 0.33, StoreFrac: 0.13, MulFrac: 0.03, FootprintKB: 96, StreamFrac: 0.75, ChaseFrac: 0.0, ChainFrac: 0.28, BranchBias: 0.95},
		{Name: "458.sjeng", Suite: "SPEC06", Blocks: 112, BlockMin: 2, BlockMax: 6, CallDepth: 3, CallFrac: 0.20, LoadFrac: 0.22, StoreFrac: 0.10, MulFrac: 0.015, FootprintKB: 192, StreamFrac: 0.15, ChaseFrac: 0.10, ChainFrac: 0.22, BranchBias: 0.70},
		{Name: "462.libquantum", Suite: "SPEC06", Blocks: 12, BlockMin: 6, BlockMax: 12, LoadFrac: 0.30, StoreFrac: 0.16, FpFrac: 0.06, FootprintKB: 16384, StreamFrac: 0.92, ChaseFrac: 0.0, ChainFrac: 0.20, BranchBias: 0.98},
		{Name: "464.h264ref", Suite: "SPEC06", Blocks: 72, BlockMin: 5, BlockMax: 13, LoadFrac: 0.31, StoreFrac: 0.12, MulFrac: 0.05, FootprintKB: 768, StreamFrac: 0.60, ChaseFrac: 0.03, ChainFrac: 0.33, BranchBias: 0.89},
	}
}

// Suite17 returns the 14 SPEC CPU2017-like workload profiles.
func Suite17() []Profile {
	return []Profile{
		{Name: "600.perlbench_s", Suite: "SPEC17", Blocks: 104, BlockMin: 3, BlockMax: 9, CallDepth: 3, CallFrac: 0.30, LoadFrac: 0.26, StoreFrac: 0.12, MulFrac: 0.01, FootprintKB: 512, StreamFrac: 0.25, ChaseFrac: 0.10, ChainFrac: 0.30, BranchBias: 0.88},
		{Name: "602.gcc_s", Suite: "SPEC17", Blocks: 160, BlockMin: 2, BlockMax: 8, CallDepth: 4, CallFrac: 0.26, LoadFrac: 0.27, StoreFrac: 0.13, FootprintKB: 2048, StreamFrac: 0.20, ChaseFrac: 0.15, ChainFrac: 0.27, BranchBias: 0.84},
		{Name: "605.mcf_s", Suite: "SPEC17", Blocks: 44, BlockMin: 3, BlockMax: 7, LoadFrac: 0.35, StoreFrac: 0.09, FootprintKB: 12288, StreamFrac: 0.05, ChaseFrac: 0.48, ChainFrac: 0.30, BranchBias: 0.90},
		{Name: "620.omnetpp_s", Suite: "SPEC17", Blocks: 120, BlockMin: 3, BlockMax: 8, CallDepth: 5, CallFrac: 0.32, LoadFrac: 0.30, StoreFrac: 0.12, FootprintKB: 4096, StreamFrac: 0.10, ChaseFrac: 0.30, ChainFrac: 0.28, BranchBias: 0.89},
		{Name: "623.xalancbmk_s", Suite: "SPEC17", Blocks: 136, BlockMin: 2, BlockMax: 7, CallDepth: 5, CallFrac: 0.34, LoadFrac: 0.31, StoreFrac: 0.10, FootprintKB: 1536, StreamFrac: 0.15, ChaseFrac: 0.20, ChainFrac: 0.25, BranchBias: 0.87},
		{Name: "625.x264_s", Suite: "SPEC17", Blocks: 64, BlockMin: 6, BlockMax: 14, LoadFrac: 0.32, StoreFrac: 0.13, MulFrac: 0.05, FootprintKB: 1024, StreamFrac: 0.65, ChaseFrac: 0.02, ChainFrac: 0.34, BranchBias: 0.91},
		{Name: "631.deepsjeng_s", Suite: "SPEC17", Blocks: 112, BlockMin: 2, BlockMax: 6, CallDepth: 3, CallFrac: 0.22, LoadFrac: 0.23, StoreFrac: 0.10, MulFrac: 0.02, FootprintKB: 512, StreamFrac: 0.15, ChaseFrac: 0.10, ChainFrac: 0.22, BranchBias: 0.71},
		{Name: "641.leela_s", Suite: "SPEC17", Blocks: 96, BlockMin: 3, BlockMax: 8, CallDepth: 3, CallFrac: 0.20, LoadFrac: 0.25, StoreFrac: 0.10, FpFrac: 0.05, FootprintKB: 256, StreamFrac: 0.20, ChaseFrac: 0.12, ChainFrac: 0.26, BranchBias: 0.76},
		{Name: "648.exchange2_s", Suite: "SPEC17", Blocks: 40, BlockMin: 6, BlockMax: 14, CallDepth: 6, CallFrac: 0.18, LoadFrac: 0.22, StoreFrac: 0.12, MulFrac: 0.02, FootprintKB: 64, StreamFrac: 0.50, ChaseFrac: 0.0, ChainFrac: 0.30, BranchBias: 0.93},
		{Name: "657.xz_s", Suite: "SPEC17", Blocks: 52, BlockMin: 4, BlockMax: 10, LoadFrac: 0.29, StoreFrac: 0.14, MulFrac: 0.02, FootprintKB: 8192, StreamFrac: 0.40, ChaseFrac: 0.10, ChainFrac: 0.40, BranchBias: 0.83},
		{Name: "603.cactuBSSN_s", Suite: "SPEC17", Blocks: 16, BlockMin: 12, BlockMax: 24, FpFrac: 0.36, FpMulFrac: 0.24, LoadFrac: 0.24, StoreFrac: 0.08, FootprintKB: 6144, StreamFrac: 0.80, ChaseFrac: 0.0, ChainFrac: 0.42, BranchBias: 0.98},
		{Name: "619.lbm_s", Suite: "SPEC17", Blocks: 8, BlockMin: 14, BlockMax: 26, FpFrac: 0.32, FpMulFrac: 0.20, LoadFrac: 0.26, StoreFrac: 0.12, FootprintKB: 16384, StreamFrac: 0.95, ChaseFrac: 0.0, ChainFrac: 0.35, BranchBias: 0.99},
		{Name: "638.imagick_s", Suite: "SPEC17", Blocks: 32, BlockMin: 8, BlockMax: 18, FpFrac: 0.30, FpMulFrac: 0.18, LoadFrac: 0.25, StoreFrac: 0.09, FootprintKB: 512, StreamFrac: 0.70, ChaseFrac: 0.0, ChainFrac: 0.40, BranchBias: 0.96},
		{Name: "644.nab_s", Suite: "SPEC17", Blocks: 28, BlockMin: 8, BlockMax: 16, FpFrac: 0.28, FpMulFrac: 0.18, DivFrac: 0.01, LoadFrac: 0.26, StoreFrac: 0.08, FootprintKB: 1024, StreamFrac: 0.55, ChaseFrac: 0.05, ChainFrac: 0.38, BranchBias: 0.95},
	}
}

// All returns both suites concatenated (26 workloads).
func All() []Profile {
	return append(Suite06(), Suite17()...)
}

// ByName finds a profile in either suite.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// profileSeed derives a stable per-workload seed from the profile name so
// traces are reproducible across runs and machines.
func profileSeed(name string) int64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Trace compiles the profile (if needed) and returns its first n dynamic
// instructions. Traces are deterministic per (profile name, n).
func Trace(p Profile, n int) ([]isa.Inst, error) {
	prog, err := Compile(p, profileSeed(p.Name))
	if err != nil {
		return nil, err
	}
	return prog.NewGenerator(profileSeed(p.Name) ^ 0x5bd1e995).Trace(n), nil
}

var traceCache sync.Map // key traceKey -> *traceEntry

type traceKey struct {
	name string
	n    int
}

// traceEntry is a singleflight slot: the first caller generates the trace
// under the entry's Once while concurrent callers for the same key block on
// it instead of duplicating the generation work.
type traceEntry struct {
	once sync.Once
	tr   []isa.Inst
	err  error
}

// CachedTrace is Trace with process-wide memoisation. It is safe for
// concurrent use: parallel evaluations of the same (workload, length) pair
// generate the trace exactly once and share the result.
//
// Immutability contract: the returned slice is the cache's single backing
// array, handed simultaneously to every caller — concurrent evaluator
// workers simulate from it while other goroutines read it. Callers must
// treat both the slice and its elements as strictly read-only; a consumer
// that needs scratch per-instruction state must keep it in parallel storage
// of its own (the ooo core keeps per-instruction state in its own records
// and is pinned read-only by TestRunDoesNotMutateSharedStream). Mutating an
// element here is a data race AND silently corrupts every later simulation
// of the same (workload, length) pair, cached-forever.
func CachedTrace(p Profile, n int) ([]isa.Inst, error) {
	v, _ := traceCache.LoadOrStore(traceKey{p.Name, n}, &traceEntry{})
	e := v.(*traceEntry)
	e.once.Do(func() { e.tr, e.err = Trace(p, n) })
	return e.tr, e.err
}

// Prewarm generates the traces for every profile in the suite, fanning the
// (deterministic, independent) generations across up to limit goroutines.
// Evaluations that follow hit the cache. limit <= 0 means GOMAXPROCS.
func Prewarm(suite []Profile, n, limit int) error {
	return par.ForEach(len(suite), limit, func(i int) error {
		_, err := CachedTrace(suite[i], n)
		return err
	})
}

// MixStats summarises the dynamic instruction mix of a trace.
type MixStats struct {
	Total                   int
	Loads, Stores, Branches int
	IntAlu, IntMul, IntDiv  int
	FpAlu, FpMul, FpDiv     int
	TakenBranches           int
	Calls, Returns          int
}

// Mix computes trace statistics.
func Mix(tr []isa.Inst) MixStats {
	var m MixStats
	m.Total = len(tr)
	for i := range tr {
		switch tr[i].Class {
		case isa.OpLoad:
			m.Loads++
		case isa.OpStore:
			m.Stores++
		case isa.OpBranch:
			m.Branches++
			if tr[i].Taken {
				m.TakenBranches++
			}
			switch tr[i].BrKind {
			case isa.BrCall:
				m.Calls++
			case isa.BrRet:
				m.Returns++
			}
		case isa.OpIntAlu:
			m.IntAlu++
		case isa.OpIntMult:
			m.IntMul++
		case isa.OpIntDiv:
			m.IntDiv++
		case isa.OpFpAlu:
			m.FpAlu++
		case isa.OpFpMult:
			m.FpMul++
		case isa.OpFpDiv:
			m.FpDiv++
		}
	}
	return m
}
