// Package par is the small concurrency toolkit shared by the DSE
// evaluator, the experiment harness, and the ML baselines: a bounded
// errgroup-style Group, an indexed ForEach with deterministic error
// selection, and a process-wide compute-slot pool sized to GOMAXPROCS so
// nested fan-outs (batches of design points × workloads × experiment
// combos) cannot oversubscribe the machine.
//
// The split mirrors the two levels every caller has: *structural*
// concurrency (one goroutine per independent unit of work, managed by
// Group/ForEach) and *compute* concurrency (the CPU-bound leaf tasks, gated
// by Slot). Structural goroutines are cheap and may block; only leaf tasks
// hold a CPU slot, and they must never acquire a second one.
package par

import (
	"runtime"
	"sync"
)

// DefaultLimit is the default fan-out width: runtime.GOMAXPROCS(0).
func DefaultLimit() int { return runtime.GOMAXPROCS(0) }

// cpuSlots is the process-wide compute-slot pool. Its capacity is fixed at
// init; workers that want a slot queue on the channel.
var cpuSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// Slot runs fn while holding one of the process-wide GOMAXPROCS compute
// slots. It is the gate every CPU-bound leaf task (one workload simulation,
// one DEG analysis) runs behind, so concurrent batches across evaluators
// and experiments share the machine instead of multiplying goroutine
// pressure. fn must not call Slot recursively: a task that holds a slot
// while waiting for another can deadlock the pool.
func Slot(fn func()) {
	cpuSlots <- struct{}{}
	defer func() { <-cpuSlots }()
	fn()
}

// Group is a minimal errgroup: Go spawns tasks (bounded by the limit given
// to NewGroup), Wait blocks until all complete and returns the first error
// recorded in completion order. When callers need a *deterministic* error
// (independent of goroutine scheduling), they should record per-index
// results and pick the lowest index themselves, or use ForEach which does
// exactly that.
type Group struct {
	wg  sync.WaitGroup
	sem chan struct{} // nil means unbounded

	mu  sync.Mutex
	err error
}

// NewGroup returns a Group running at most limit tasks concurrently;
// limit <= 0 means unbounded.
func NewGroup(limit int) *Group {
	g := &Group{}
	if limit > 0 {
		g.sem = make(chan struct{}, limit)
	}
	return g
}

// Go schedules fn on its own goroutine, blocking while the group is at its
// concurrency limit.
func (g *Group) Go(fn func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every task started with Go has returned, then reports
// the first error recorded (unspecified which, under races between tasks).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// ForEach runs fn(i) for every i in [0, n) on at most limit concurrent
// goroutines (limit <= 0 means DefaultLimit). Every index runs regardless
// of failures — results stay aligned with inputs — and the returned error
// is the one from the lowest failing index, so error propagation is
// deterministic under any schedule.
func ForEach(n, limit int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if limit <= 0 {
		limit = DefaultLimit()
	}
	if limit == 1 {
		// Degenerate case: run inline, still completing every index.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	g := NewGroup(limit)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error {
			errs[i] = fn(i)
			return nil
		})
	}
	g.Wait() // tasks report via errs; Group's own error is always nil
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
