package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, limit := range []int{0, 1, 3, 64} {
		n := 200
		seen := make([]int32, n)
		err := ForEach(n, limit, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("limit %d: index %d ran %d times", limit, i, c)
			}
		}
	}
}

func TestForEachRespectsLimit(t *testing.T) {
	const limit = 3
	var cur, peak int32
	err := ForEach(100, limit, func(int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", peak, limit)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Higher indices fail "faster" in submission order, but the lowest
	// failing index must still win.
	err := ForEach(50, 8, func(i int) error {
		if i == 7 || i == 33 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 7" {
		t.Fatalf("got %v, want fail 7", err)
	}
	// All indices still ran despite the failure.
	var ran int32
	_ = ForEach(20, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i < 5 {
			return fmt.Errorf("early")
		}
		return nil
	})
	if ran != 20 {
		t.Fatalf("only %d/20 indices ran after error", ran)
	}
}

func TestGroupCollectsError(t *testing.T) {
	g := NewGroup(2)
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 4 {
				return fmt.Errorf("boom")
			}
			return nil
		})
	}
	if err := g.Wait(); err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
	// Empty group waits cleanly.
	if err := NewGroup(0).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotSerializesUnderContention(t *testing.T) {
	// Many concurrent Slot calls must all complete (no deadlock) and never
	// exceed the pool capacity.
	cap := int32(cap(cpuSlots))
	var cur, peak int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Slot(func() {
				c := atomic.AddInt32(&cur, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
						break
					}
				}
				atomic.AddInt32(&cur, -1)
			})
		}()
	}
	wg.Wait()
	if peak > cap {
		t.Fatalf("%d concurrent slot holders, pool capacity %d", peak, cap)
	}
}

func TestDefaultLimitPositive(t *testing.T) {
	if DefaultLimit() < 1 {
		t.Fatalf("DefaultLimit = %d", DefaultLimit())
	}
}
