// Package conformance is the differential-testing harness over the
// simulator's five execution engines: per-config full-fidelity (Core.Run),
// probe-lite (Core.RunLite), streaming (Core.RunStream), batched
// multi-config (ooo.RunBatch, full and lite), and parallel windowed DEG
// analysis (deg.AnalyzeWindowed with Workers > 1). All five implement one
// timing-and-attribution model, so for any (config, stream) pair they must
// agree exactly; the package quantifies that over randomly drawn valid
// configurations.
//
// The oracle is the fingerprint family in internal/ooo: full engines are
// compared through ooo.Fingerprint (every deterministic record field),
// lite engines through ooo.TimingFingerprint (the lite-preserved subset),
// and the chunked stream through ooo.ChunkedFingerprint. DEG bottleneck
// attributions computed from the reference and batched traces are compared
// structurally — agreement of the traces' annotations is necessary but not
// sufficient for ArchExplorer, whose decisions consume the reports — and
// the parallel windowed analyzer must reproduce the sequential windowed
// report bit for bit on the same trace.
//
// When a draw disagrees, Shrink reduces the failing design point toward
// the baseline one lattice step at a time, so the reported counterexample
// is (locally) minimal and the offending parameter is usually legible
// straight from the diff against Baseline.
package conformance

import (
	"fmt"
	"math/rand"
	"reflect"

	"archexplorer/internal/deg"
	"archexplorer/internal/isa"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// Gen draws random valid design points from a space. Deterministic for a
// seed, so every corpus failure names the draw that reproduces it.
type Gen struct {
	Space *uarch.Space
	rng   *rand.Rand
}

// NewGen returns a seeded generator over the standard Table 4 space.
func NewGen(seed int64) *Gen {
	return &Gen{Space: uarch.StandardSpace(), rng: rand.New(rand.NewSource(seed))}
}

// Point draws a design point whose decoded config passes validation.
// Random points over the standard space are essentially always valid; the
// loop guards against value tables whose cross product admits degenerate
// corners.
func (g *Gen) Point() uarch.Point {
	for {
		pt := g.Space.Random(g.rng)
		if g.Space.Decode(pt).Validate() == nil {
			return pt
		}
	}
}

// Config draws a random valid configuration.
func (g *Gen) Config() uarch.Config { return g.Space.Decode(g.Point()) }

// Mismatch is one engine disagreement: the named engine's fingerprint
// diverged from the per-config reference run on this (config, workload).
type Mismatch struct {
	Engine    string // "batch", "batch-lite", "lite", "stream", "deg", "deg-par"
	Workload  string
	Config    uarch.Config
	Want, Got uint64 // reference and diverging fingerprints (0 for the deg engines)
}

// Error implements error.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("conformance: %s engine diverged on %s: fingerprint %#x, reference %#x\nconfig: %+v",
		m.Engine, m.Workload, m.Got, m.Want, m.Config)
}

// Check cross-checks every engine for each config over one instruction
// stream and returns the first disagreement as a *Mismatch (or the first
// operational error). nil means all engines agreed on every config.
//
// The batched engine runs all configs in one RunBatch call (full and
// lite), exactly how the evaluator's fast path uses it, so cross-lane
// state leaks — the bug class batching invites — are in scope.
func Check(stream []isa.Inst, wl string, cfgs []uarch.Config, withDEG bool) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("conformance: no configs to check")
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	full, err := ooo.RunBatch(stream, cfgs, ooo.BatchOptions{})
	if err != nil {
		return err
	}
	defer releaseAll(full)
	lite, err := ooo.RunBatch(stream, cfgs, ooo.BatchOptions{Lite: true})
	if err != nil {
		return err
	}
	defer releaseAll(lite)
	for i, cfg := range cfgs {
		if err := checkOne(stream, wl, cfg, full[i], lite[i], withDEG); err != nil {
			return err
		}
	}
	return nil
}

func releaseAll(res []ooo.BatchResult) {
	for _, r := range res {
		if r.Trace != nil {
			r.Trace.Release()
		}
	}
}

// checkOne compares one config's batch lanes and single-config engines
// against a fresh reference run.
func checkOne(stream []isa.Inst, wl string, cfg uarch.Config, full, lite ooo.BatchResult, withDEG bool) error {
	if full.Err != nil {
		return full.Err
	}
	if lite.Err != nil {
		return lite.Err
	}

	// Reference: the plain per-config full-fidelity engine.
	core, err := ooo.New(cfg)
	if err != nil {
		return err
	}
	tr, st, err := core.Run(stream)
	if err != nil {
		return err
	}
	defer tr.Release()
	ref := ooo.Fingerprint(tr, st)
	refTiming := ooo.TimingFingerprint(tr, st)

	if got := ooo.Fingerprint(full.Trace, full.Stats); got != ref {
		return &Mismatch{Engine: "batch", Workload: wl, Config: cfg, Want: ref, Got: got}
	}
	if got := ooo.TimingFingerprint(lite.Trace, lite.Stats); got != refTiming {
		return &Mismatch{Engine: "batch-lite", Workload: wl, Config: cfg, Want: refTiming, Got: got}
	}

	liteCore, err := ooo.New(cfg)
	if err != nil {
		return err
	}
	ltr, lst, err := liteCore.RunLite(stream)
	if err != nil {
		return err
	}
	gotLite := ooo.TimingFingerprint(ltr, lst)
	ltr.Release()
	if gotLite != refTiming {
		return &Mismatch{Engine: "lite", Workload: wl, Config: cfg, Want: refTiming, Got: gotLite}
	}

	gotStream, err := streamFingerprint(cfg, stream)
	if err != nil {
		return err
	}
	if gotStream != ref {
		return &Mismatch{Engine: "stream", Workload: wl, Config: cfg, Want: ref, Got: gotStream}
	}

	if withDEG {
		refRep, _, _, err := deg.Analyze(tr, deg.Options{})
		if err != nil {
			return err
		}
		batchRep, _, _, err := deg.Analyze(full.Trace, deg.Options{})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(refRep, batchRep) {
			return &Mismatch{Engine: "deg", Workload: wl, Config: cfg}
		}

		// Fifth engine: parallel windowed DEG analysis. Window at roughly a
		// quarter of the trace so the run genuinely spans several windows,
		// with the margin derived from the config's own reorder window —
		// then the 4-worker report and stats must be bit-identical to the
		// sequential windowed run on the same trace.
		window := max(1, len(tr.Records)/4)
		seq := deg.WindowOptions{Window: window, ReorderWindow: cfg.ROBEntries}
		seqRep, seqSt, err := deg.AnalyzeWindowed(tr, seq)
		if err != nil {
			return err
		}
		par := seq
		par.Workers = 4
		parRep, parSt, err := deg.AnalyzeWindowed(tr, par)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(parRep, seqRep) || !reflect.DeepEqual(parSt, seqSt) {
			return &Mismatch{Engine: "deg-par", Workload: wl, Config: cfg}
		}
	}
	return nil
}

// streamFingerprint runs the streaming engine and folds its chunks through
// the chunk-ordered fingerprint. Chunks are retained until the stats (the
// hash preamble) are known, then released.
func streamFingerprint(cfg uarch.Config, stream []isa.Inst) (uint64, error) {
	core, err := ooo.New(cfg)
	if err != nil {
		return 0, err
	}
	var chunks []*pipetrace.Chunk
	defer func() {
		for _, c := range chunks {
			c.Release()
		}
	}()
	st, err := core.RunStream(stream, 0, func(c *pipetrace.Chunk) error {
		chunks = append(chunks, c)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return ooo.ChunkedFingerprint(st.Cycles, st, func(hash func(*pipetrace.Record)) {
		for _, c := range chunks {
			for i := range c.Records {
				hash(&c.Records[i])
			}
		}
	}), nil
}

// Shrink greedily minimises a failing design point toward the space's
// baseline: move one parameter one lattice level toward the baseline point
// and keep any move that preserves the failure, until no single step does.
// The result is a locally minimal counterexample, so the offending
// parameters are legible from a diff against Baseline. The predicate is
// re-run on candidates only (never on pt itself), so callers pass a point
// they already know fails.
func Shrink(space *uarch.Space, pt uarch.Point, fails func(uarch.Point) bool) uarch.Point {
	base := space.Nearest(uarch.Baseline())
	for progress := true; progress; {
		progress = false
		for p := 0; p < uarch.NumParams; p++ {
			for pt[p] != base[p] {
				cand := pt
				if cand[p] > base[p] {
					cand[p]--
				} else {
					cand[p]++
				}
				if space.Decode(cand).Validate() != nil || !fails(cand) {
					break
				}
				pt = cand
				progress = true
			}
		}
	}
	return pt
}

// StrictCapacityParams are the pure window/register capacities of Table 4:
// ROB, issue queue, load/store queues, and the physical register files.
// Growing one only relaxes rename stalls — it admits instructions into
// flight sooner but never reorders anything already in flight — so under
// this timing model IPC is strictly monotonic in each of them. The
// metamorphic suite asserts that with zero tolerance.
func StrictCapacityParams() []uarch.Param {
	return []uarch.Param{
		uarch.ParamROB, uarch.ParamIQ, uarch.ParamLQ, uarch.ParamSQ,
		uarch.ParamIntRF, uarch.ParamFpRF,
	}
}

// FUParams are the functional-unit counts. Growth almost always helps, but
// an extra unit can change which ready instruction issues first, and the
// reordered memory operations then see different cache (LRU) and
// store-forwarding state — a second-order effect that occasionally costs a
// few cycles. Empirically (thousands of random grow-one-level pairs) the
// worst observed regression is under 0.3% relative IPC, so the metamorphic
// suite bounds FU growth with FUTolerance instead of demanding strictness.
func FUParams() []uarch.Param {
	return []uarch.Param{
		uarch.ParamIntALU, uarch.ParamIntMultDiv, uarch.ParamFpALU, uarch.ParamFpMultDiv,
	}
}

// CapacityParams is every resource the monotonicity suite grows: the
// strict capacities followed by the FU counts. Predictor tables and caches
// are deliberately excluded — bigger tables change which branches
// mispredict and which lines survive, effects that are non-monotonic by
// nature (aliasing can help).
func CapacityParams() []uarch.Param {
	return append(StrictCapacityParams(), FUParams()...)
}

// EdgeConfigs returns the capacity-floor corners of the standard space:
// the baseline with every window capacity (and the fetch queue) floored at
// once — at both width extremes — plus the baseline with each capacity
// floored individually. Random corpus draws essentially never land on
// these corners, yet they are exactly where the capacity-pool free lists
// saturate every cycle and where an off-by-one in pool bookkeeping or
// release tie order would first show. Only validating configs are
// returned, so the list tracks the space's own floors.
func EdgeConfigs() []uarch.Config {
	space := uarch.StandardSpace()
	base := space.Nearest(uarch.Baseline())
	starved := append(CapacityParams(), uarch.ParamFetchQueue)
	var out []uarch.Config
	for _, w := range []int{0, space.Levels(uarch.ParamWidth) - 1} {
		pt := base
		pt[uarch.ParamWidth] = w
		for _, p := range starved {
			pt[p] = 0
		}
		if c := space.Decode(pt); c.Validate() == nil {
			out = append(out, c)
		}
	}
	for _, p := range starved {
		pt := base
		pt[p] = 0
		if c := space.Decode(pt); c.Validate() == nil {
			out = append(out, c)
		}
	}
	return out
}

// FUTolerance is the allowed relative IPC drop when growing one FU count:
// an order of magnitude above the worst second-order regression observed,
// far below what any real scheduling or accounting bug costs.
const FUTolerance = 0.01

// GrowthViolation reports a monotonicity break: growing Param one level
// turned BaseIPC into GrownIPC, a drop beyond the tolerance.
type GrowthViolation struct {
	Param             uarch.Param
	Workload          string
	Base, Grown       uarch.Config
	BaseIPC, GrownIPC float64
}

// Error implements error, printing the offending config pair.
func (v *GrowthViolation) Error() string {
	return fmt.Sprintf("conformance: IPC not monotonic in %v on %s: %.6f -> %.6f\n  base:  %+v\n  grown: %+v",
		v.Param, v.Workload, v.BaseIPC, v.GrownIPC, v.Base, v.Grown)
}

// CheckGrowth grows prm one lattice level from pt and compares IPC over
// stream: a relative drop beyond tol is returned as a *GrowthViolation.
// checked is false when pt is already at the top level (or either config
// fails validation) and nothing was compared.
func CheckGrowth(space *uarch.Space, pt uarch.Point, prm uarch.Param, stream []isa.Inst, wl string, tol float64) (checked bool, err error) {
	up := pt
	if !space.Step(&up, prm, 1) {
		return false, nil
	}
	base, grown := space.Decode(pt), space.Decode(up)
	if base.Validate() != nil || grown.Validate() != nil {
		return false, nil
	}
	a, err := IPC(base, stream)
	if err != nil {
		return true, err
	}
	b, err := IPC(grown, stream)
	if err != nil {
		return true, err
	}
	if b < a*(1-tol) {
		return true, &GrowthViolation{
			Param: prm, Workload: wl, Base: base, Grown: grown, BaseIPC: a, GrownIPC: b,
		}
	}
	return true, nil
}

// IPC is the monotonicity metric: committed IPC of one probe-lite run of
// cfg over stream.
func IPC(cfg uarch.Config, stream []isa.Inst) (float64, error) {
	core, err := ooo.New(cfg)
	if err != nil {
		return 0, err
	}
	tr, st, err := core.RunLite(stream)
	if err != nil {
		return 0, err
	}
	tr.Release()
	return st.IPC(), nil
}
