package conformance

import (
	"errors"
	"strings"
	"testing"

	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
)

// TestCheckOneDetectsBatchDivergence drives the detector itself: hand
// checkOne batch lanes simulated with a DIFFERENT config than the
// reference and it must name the diverging engine. This is the only way
// to exercise the mismatch paths while the real engines agree.
func TestCheckOneDetectsBatchDivergence(t *testing.T) {
	st := stream(t, "458.sjeng", 600)
	space := uarch.StandardSpace()
	ref := space.Decode(space.Nearest(uarch.Baseline()))
	other := ref
	other.Width = ref.Width * 2

	lanes := func(cfg uarch.Config, lite bool) ooo.BatchResult {
		res, err := ooo.RunBatch(st, []uarch.Config{cfg}, ooo.BatchOptions{Lite: lite})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	refFull, refLite := lanes(ref, false), lanes(ref, true)
	otherFull, otherLite := lanes(other, false), lanes(other, true)
	defer func() {
		for _, r := range []ooo.BatchResult{refFull, refLite, otherFull, otherLite} {
			r.Trace.Release()
		}
	}()

	var m *Mismatch
	if err := checkOne(st, "wl", ref, otherFull, refLite, false); !errors.As(err, &m) || m.Engine != "batch" {
		t.Fatalf("divergent full lane not caught: %v", err)
	}
	if err := checkOne(st, "wl", ref, refFull, otherLite, false); !errors.As(err, &m) || m.Engine != "batch-lite" {
		t.Fatalf("divergent lite lane not caught: %v", err)
	}
	if err := checkOne(st, "wl", ref, refFull, refLite, true); err != nil {
		t.Fatalf("agreeing lanes rejected: %v", err)
	}

	// Poisoned lanes short-circuit with their own error.
	poison := errors.New("lane poisoned")
	if err := checkOne(st, "wl", ref, ooo.BatchResult{Err: poison}, refLite, false); !errors.Is(err, poison) {
		t.Fatalf("full lane error not surfaced: %v", err)
	}
	if err := checkOne(st, "wl", ref, refFull, ooo.BatchResult{Err: poison}, false); !errors.Is(err, poison) {
		t.Fatalf("lite lane error not surfaced: %v", err)
	}

	// A config the reference engine itself rejects surfaces as an error.
	bad := ref
	bad.IntRF = 2
	if err := checkOne(st, "wl", bad, refFull, refLite, false); err == nil {
		t.Fatal("invalid reference config accepted")
	}
	// An empty stream fails the reference run.
	if err := checkOne(nil, "wl", ref, refFull, refLite, false); err == nil {
		t.Fatal("empty stream accepted by the reference run")
	}
}

// TestStreamFingerprintErrors: operational failures of the streaming
// engine propagate instead of producing a bogus hash.
func TestStreamFingerprintErrors(t *testing.T) {
	ref := uarch.Baseline()
	if _, err := streamFingerprint(ref, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	bad := ref
	bad.IntRF = 2
	if _, err := streamFingerprint(bad, stream(t, "458.sjeng", 200)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestIPCErrors: the monotonicity metric refuses invalid configs and empty
// streams.
func TestIPCErrors(t *testing.T) {
	bad := uarch.Baseline()
	bad.IntRF = 2
	if _, err := IPC(bad, stream(t, "458.sjeng", 200)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := IPC(uarch.Baseline(), nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestCheckGrowthPropagatesErrors: a simulation failure inside the growth
// pair surfaces as an error, not a verdict.
func TestCheckGrowthPropagatesErrors(t *testing.T) {
	space := uarch.StandardSpace()
	pt := space.Nearest(uarch.Baseline())
	did, err := CheckGrowth(space, pt, uarch.ParamROB, nil, "wl", 0)
	if !did || err == nil {
		t.Fatalf("empty-stream growth check: checked=%v err=%v", did, err)
	}
}

// TestGrowthViolationError: the report prints the parameter, workload,
// both IPCs, and both configs.
func TestGrowthViolationError(t *testing.T) {
	base := uarch.Baseline()
	grown := base
	grown.ROBEntries = base.ROBEntries * 2
	v := &GrowthViolation{
		Param: uarch.ParamROB, Workload: "429.mcf",
		Base: base, Grown: grown, BaseIPC: 1.5, GrownIPC: 1.25,
	}
	for _, want := range []string{"ROB", "429.mcf", "1.5", "1.25", "base:", "grown:"} {
		if !strings.Contains(v.Error(), want) {
			t.Fatalf("violation report %q missing %q", v.Error(), want)
		}
	}
}
