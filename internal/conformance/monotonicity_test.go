package conformance

import (
	"testing"

	"archexplorer/internal/uarch"
)

// monoPoints draws the base designs the growth checks quantify over.
func monoPoints(n int) []uarch.Point {
	gen := NewGen(7)
	pts := make([]uarch.Point, 0, n+1)
	pts = append(pts, gen.Space.Nearest(uarch.Baseline()))
	for len(pts) < n+1 {
		pts = append(pts, gen.Point())
	}
	return pts
}

// TestMonotonicCapacityGrowth is the metamorphic half of the suite:
// growing a window or register-file capacity one level admits instructions
// into flight sooner but never reorders anything already in flight, so IPC
// must not decrease — with zero tolerance. A violation prints the exact
// config pair via GrowthViolation.
func TestMonotonicCapacityGrowth(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	space := uarch.StandardSpace()
	checked := 0
	for _, name := range suiteNames {
		st := stream(t, name, 1500)
		for _, pt := range monoPoints(n) {
			for _, prm := range StrictCapacityParams() {
				did, err := CheckGrowth(space, pt, prm, st, name, 0)
				if err != nil {
					t.Fatal(err)
				}
				if did {
					checked++
				}
			}
		}
	}
	if checked < len(suiteNames)*n {
		t.Fatalf("only %d growth pairs were comparable", checked)
	}
}

// TestMonotonicFUGrowth bounds the FU counts: an extra unit can reorder
// issue and perturb downstream cache state by a few cycles (worst observed
// ~0.3% relative), so growth is held to FUTolerance instead of strictness.
// Anything past the tolerance is a real scheduling or accounting bug.
func TestMonotonicFUGrowth(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	space := uarch.StandardSpace()
	checked := 0
	for _, name := range suiteNames {
		st := stream(t, name, 1500)
		for _, pt := range monoPoints(n) {
			for _, prm := range FUParams() {
				did, err := CheckGrowth(space, pt, prm, st, name, FUTolerance)
				if err != nil {
					t.Fatal(err)
				}
				if did {
					checked++
				}
			}
		}
	}
	if checked < len(suiteNames)*n {
		t.Fatalf("only %d growth pairs were comparable", checked)
	}
}

// TestCapacityParamsCoverBoth pins the registry split: the union is
// exactly strict + FU, with no overlap, and every entry is a real capacity
// dimension of the space.
func TestCapacityParamsCoverBoth(t *testing.T) {
	all := CapacityParams()
	if len(all) != len(StrictCapacityParams())+len(FUParams()) {
		t.Fatalf("CapacityParams holds %d entries", len(all))
	}
	seen := map[uarch.Param]bool{}
	space := uarch.StandardSpace()
	for _, p := range all {
		if seen[p] {
			t.Fatalf("param %v listed twice", p)
		}
		seen[p] = true
		if space.Levels(p) < 2 {
			t.Fatalf("param %v has no room to grow", p)
		}
	}
}

// TestCheckGrowthDetectsDrop wires the violation path: shrinking (a
// negative "growth" simulated by swapping base and grown) must trip the
// detector when the drop is real. We synthesise it by checking a top-level
// point, where Step fails and checked must be false.
func TestCheckGrowthDetectsDrop(t *testing.T) {
	space := uarch.StandardSpace()
	pt := space.Nearest(uarch.Baseline())
	st := stream(t, "458.sjeng", 800)

	top := pt
	top[uarch.ParamROB] = space.Levels(uarch.ParamROB) - 1
	did, err := CheckGrowth(space, top, uarch.ParamROB, st, "458.sjeng", 0)
	if did || err != nil {
		t.Fatalf("top-level growth reported checked=%v err=%v", did, err)
	}

	// An impossible tolerance (-1 means "must improve by >100%") turns any
	// real pair into a violation, exercising the report path end to end.
	did, err = CheckGrowth(space, pt, uarch.ParamROB, st, "458.sjeng", -1)
	if !did {
		t.Fatal("baseline growth not comparable")
	}
	v, ok := err.(*GrowthViolation)
	if !ok {
		t.Fatalf("expected a GrowthViolation, got %v", err)
	}
	if v.Param != uarch.ParamROB || v.Workload != "458.sjeng" || v.BaseIPC <= 0 || v.GrownIPC <= 0 {
		t.Fatalf("malformed violation: %+v", v)
	}
	if v.Base == v.Grown {
		t.Fatal("violation does not name distinct configs")
	}
}
