package conformance

import (
	"errors"
	"strings"
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// suiteNames are the bundled workloads the corpus quantifies over.
var suiteNames = []string{"458.sjeng", "444.namd", "429.mcf", "462.libquantum"}

func stream(t testing.TB, name string, n int) []isa.Inst {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCorpus is the conformance corpus: 200 random valid configs (40 with
// -short) checked across all five engines on every bundled workload, in
// RunBatch-sized rounds so the batched engine sees realistic multi-config
// batches. A failing draw is shrunk toward the baseline before reporting,
// so the log names a locally minimal counterexample.
func TestCorpus(t *testing.T) {
	const round = 25
	configs := 200
	if testing.Short() {
		configs = 40
	}
	gen := NewGen(1)
	pts := make([]uarch.Point, configs)
	for i := range pts {
		pts[i] = gen.Point()
	}
	for _, name := range suiteNames {
		st := stream(t, name, 1000)
		for lo := 0; lo < len(pts); lo += round {
			hi := lo + round
			if hi > len(pts) {
				hi = len(pts)
			}
			// DEG attribution comparison is the expensive oracle; one
			// round per workload exercises it, fingerprints cover the rest.
			withDEG := lo == 0
			cfgs := make([]uarch.Config, 0, hi-lo)
			for _, pt := range pts[lo:hi] {
				cfgs = append(cfgs, gen.Space.Decode(pt))
			}
			if err := Check(st, name, cfgs, withDEG); err != nil {
				reportShrunk(t, gen.Space, st, name, pts[lo:hi], withDEG, err)
			}
		}
	}
}

// TestCorpusEdges pins the capacity-floor corners of the space: configs
// with every pool starved at once (at both width extremes) and with each
// pool starved individually, checked across all five engines with the DEG
// oracles on (including the parallel windowed engine). Random draws never
// land here, but these are the points where
// the pool free lists saturate every cycle — the first place a pool
// bookkeeping or release-tie-order bug would surface.
func TestCorpusEdges(t *testing.T) {
	cfgs := EdgeConfigs()
	if len(cfgs) < 10 {
		t.Fatalf("EdgeConfigs returned only %d configs; the space floors no longer validate?", len(cfgs))
	}
	names := suiteNames
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		st := stream(t, name, 1000)
		if err := Check(st, name, cfgs, true); err != nil {
			t.Fatalf("engines diverged at the capacity floor on %s: %v", name, err)
		}
	}
}

// reportShrunk minimises the failing round to a single-config, reduced
// counterexample and fails with both the original and shrunk reports.
func reportShrunk(t *testing.T, space *uarch.Space, st []isa.Inst, name string, pts []uarch.Point, withDEG bool, err error) {
	t.Helper()
	fails := func(pt uarch.Point) bool {
		return Check(st, name, []uarch.Config{space.Decode(pt)}, withDEG) != nil
	}
	for _, pt := range pts {
		if !fails(pt) {
			continue
		}
		min := Shrink(space, pt, fails)
		t.Fatalf("engines diverged on %s: %v\nshrunk counterexample: %v\n%v",
			name, err, min, Check(st, name, []uarch.Config{space.Decode(min)}, withDEG))
	}
	// No single config reproduces it: a cross-lane interaction inside the
	// batch. Report the whole round.
	t.Fatalf("engines diverged on %s (only as a batch of %d): %v", name, len(pts), err)
}

// TestCheckAgreesOnBaseline is the fast smoke: the baseline design point,
// DEG oracle included.
func TestCheckAgreesOnBaseline(t *testing.T) {
	space := uarch.StandardSpace()
	cfg := space.Decode(space.Nearest(uarch.Baseline()))
	if err := Check(stream(t, "458.sjeng", 1500), "458.sjeng", []uarch.Config{cfg}, true); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRejectsBadInput: empty batches and invalid configs surface as
// errors, not as silent agreement.
func TestCheckRejectsBadInput(t *testing.T) {
	st := stream(t, "458.sjeng", 500)
	if err := Check(st, "458.sjeng", nil, false); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := uarch.Baseline()
	bad.IntRF = 2 // fewer physical than architectural registers
	if err := Check(st, "458.sjeng", []uarch.Config{bad}, false); err == nil {
		t.Fatal("invalid config accepted")
	}
	if err := Check(nil, "458.sjeng", []uarch.Config{uarch.Baseline()}, false); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestGenDeterministicAndValid: same seed, same draws; every draw decodes
// to a validating config inside the space.
func TestGenDeterministicAndValid(t *testing.T) {
	a, b := NewGen(42), NewGen(42)
	for i := 0; i < 50; i++ {
		pa, pb := a.Point(), b.Point()
		if pa != pb {
			t.Fatalf("draw %d diverged: %v vs %v", i, pa, pb)
		}
		cfg := a.Space.Decode(pa)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		if !a.Space.Contains(cfg) {
			t.Fatalf("draw %d outside the space: %+v", i, cfg)
		}
		// Config() is exactly one draw: the twin generators stay in
		// lockstep when one advances via Config and the other via Point.
		if c := a.Config(); c != b.Space.Decode(b.Point()) {
			t.Fatalf("Config consumed more than one draw at %d: %+v", i, c)
		}
	}
}

// TestShrinkReachesMinimal: with a predicate that fails iff ROB and IQ are
// above given levels, Shrink must land exactly one step above the
// thresholds on those axes and on the baseline everywhere else.
func TestShrinkReachesMinimal(t *testing.T) {
	space := uarch.StandardSpace()
	base := space.Nearest(uarch.Baseline())
	fails := func(pt uarch.Point) bool {
		return pt[uarch.ParamROB] >= 3 && pt[uarch.ParamIQ] >= 2
	}
	start := base
	start[uarch.ParamROB] = space.Levels(uarch.ParamROB) - 1
	start[uarch.ParamIQ] = space.Levels(uarch.ParamIQ) - 1
	start[uarch.ParamWidth] = space.Levels(uarch.ParamWidth) - 1 // irrelevant axis
	if !fails(start) {
		t.Fatal("start point does not fail")
	}
	min := Shrink(space, start, fails)
	if !fails(min) {
		t.Fatal("shrunk point no longer fails")
	}
	want := base
	want[uarch.ParamROB], want[uarch.ParamIQ] = 3, 2
	// The baseline may itself sit above a threshold; clamp expectations.
	if base[uarch.ParamROB] > 3 {
		want[uarch.ParamROB] = base[uarch.ParamROB]
	}
	if base[uarch.ParamIQ] > 2 {
		want[uarch.ParamIQ] = base[uarch.ParamIQ]
	}
	if min != want {
		t.Fatalf("shrunk to %v, want %v (baseline %v)", min, want, base)
	}
}

// TestShrinkKeepsFailingPoint: a predicate nothing smaller satisfies
// returns the start point unchanged.
func TestShrinkKeepsFailingPoint(t *testing.T) {
	space := uarch.StandardSpace()
	start := space.Nearest(uarch.Baseline())
	start[uarch.ParamROB]++
	only := start
	min := Shrink(space, start, func(pt uarch.Point) bool { return pt == only })
	if min != start {
		t.Fatalf("shrink moved off the only failing point: %v", min)
	}
}

// TestShrinkMovesUpTowardBaseline: shrinking is "toward the baseline", not
// "downward" — a start point below the baseline on some axis walks up it.
func TestShrinkMovesUpTowardBaseline(t *testing.T) {
	space := uarch.StandardSpace()
	base := space.Nearest(uarch.Baseline())
	start := base
	start[uarch.ParamROB] = 0
	if start == base {
		t.Skip("baseline sits at the bottom ROB level")
	}
	min := Shrink(space, start, func(uarch.Point) bool { return true })
	if min != base {
		t.Fatalf("always-failing predicate should shrink to baseline: %v vs %v", min, base)
	}
}

// TestMismatchError: the failure report names the engine, workload, and
// both fingerprints — everything needed to reproduce by hand.
func TestMismatchError(t *testing.T) {
	m := &Mismatch{Engine: "batch", Workload: "429.mcf", Config: uarch.Baseline(), Want: 0xabc, Got: 0xdef}
	var err error = m
	var back *Mismatch
	if !errors.As(err, &back) {
		t.Fatal("Mismatch does not travel as an error")
	}
	for _, want := range []string{"batch", "429.mcf", "0xabc", "0xdef"} {
		if !strings.Contains(m.Error(), want) {
			t.Fatalf("mismatch report %q missing %q", m.Error(), want)
		}
	}
}

// FuzzConformance feeds the differential check from the fuzzer: each input
// seeds the generator for a three-config batch over a short stream. The
// seed corpus covers both oracles; `go test -fuzz=FuzzConformance` explores
// further.
func FuzzConformance(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(2))
	f.Add(int64(1234567))
	st := stream(f, "462.libquantum", 600)
	f.Fuzz(func(t *testing.T, seed int64) {
		gen := NewGen(seed)
		cfgs := []uarch.Config{gen.Config(), gen.Config(), gen.Config()}
		if err := Check(st, "462.libquantum", cfgs, seed%2 == 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}
