package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		c                   OpClass
		mem, float, control bool
	}{
		{OpIntAlu, false, false, false},
		{OpIntMult, false, false, false},
		{OpIntDiv, false, false, false},
		{OpFpAlu, false, true, false},
		{OpFpMult, false, true, false},
		{OpFpDiv, false, true, false},
		{OpLoad, true, false, false},
		{OpStore, true, false, false},
		{OpBranch, false, false, true},
		{OpNop, false, false, false},
	}
	for _, tc := range cases {
		if tc.c.IsMem() != tc.mem || tc.c.IsFloat() != tc.float || tc.c.IsControl() != tc.control {
			t.Errorf("%s: predicates mem=%v float=%v control=%v", tc.c, tc.c.IsMem(), tc.c.IsFloat(), tc.c.IsControl())
		}
		if tc.c.String() == "" {
			t.Errorf("missing name for class %d", tc.c)
		}
	}
	if got := OpClass(200).String(); got != "OpClass(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestRegisters(t *testing.T) {
	if !IntReg(5).Valid() || IntReg(5).Float {
		t.Error("IntReg(5) malformed")
	}
	if !FpReg(7).Float {
		t.Error("FpReg(7) not float")
	}
	if InvalidReg.Valid() {
		t.Error("InvalidReg is valid")
	}
	if !IntReg(0).IsZero() {
		t.Error("x0 should be zero reg")
	}
	if FpReg(0).IsZero() {
		t.Error("f0 is not a zero reg")
	}
	if IntReg(3).String() != "x3" || FpReg(4).String() != "f4" || InvalidReg.String() != "-" {
		t.Error("register names wrong")
	}
}

func TestInstDestAndNextPC(t *testing.T) {
	in := Inst{PC: 0x1000, Class: OpIntAlu, Dest: IntReg(5)}
	if !in.HasDest() {
		t.Error("alu with x5 dest should allocate")
	}
	in.Dest = IntReg(0)
	if in.HasDest() {
		t.Error("x0 dest must not allocate a rename register")
	}
	in.Dest = InvalidReg
	if in.HasDest() {
		t.Error("invalid dest must not allocate")
	}

	br := Inst{PC: 0x2000, Class: OpBranch, Taken: true, Target: 0x3000}
	if br.NextPC() != 0x3000 {
		t.Errorf("taken branch NextPC = %#x", br.NextPC())
	}
	br.Taken = false
	if br.NextPC() != 0x2004 {
		t.Errorf("not-taken branch NextPC = %#x", br.NextPC())
	}
	if br.FallThrough() != 0x2004 {
		t.Errorf("FallThrough = %#x", br.FallThrough())
	}
}

func TestNextPCNeverZeroForSequential(t *testing.T) {
	f := func(pc uint32) bool {
		in := Inst{PC: uint64(pc), Class: OpIntAlu}
		return in.NextPC() == uint64(pc)+4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchKindString(t *testing.T) {
	for k, want := range map[BranchKind]string{BrCond: "cond", BrJump: "jump", BrCall: "call", BrRet: "ret"} {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestInstString(t *testing.T) {
	for _, in := range []Inst{
		{PC: 4, Class: OpLoad, Addr: 0x100, Dest: IntReg(3), Src1: IntReg(2)},
		{PC: 8, Class: OpBranch, Taken: true, Target: 0x40},
		{PC: 12, Class: OpFpMult, Dest: FpReg(1), Src1: FpReg(2), Src2: FpReg(3)},
	} {
		if in.String() == "" {
			t.Errorf("empty String for %v", in.Class)
		}
	}
}
