// Package isa defines the minimal RISC-style instruction set abstraction
// used by the trace generators and the out-of-order core model.
//
// The model follows the paper's gem5 RISC-V setup: instructions are typed
// micro-ops with up to two register sources and one destination, drawn from
// separate integer and floating-point architectural register files, plus
// loads, stores, and control-flow instructions. Only the attributes that
// influence pipeline timing are represented: operation class (which selects
// the functional unit and its latency), register dependencies (which create
// true data dependencies), and memory/branch behaviour (addresses and
// taken/not-taken outcomes come from the workload trace, so the simulator
// never needs functional emulation).
package isa

import "fmt"

// OpClass identifies the functional-unit class an instruction executes on.
type OpClass uint8

// Operation classes. The set mirrors Table 1/Table 4 of the paper: integer
// ALUs, integer multiply/divide units, floating-point ALUs, floating-point
// multiply/divide units, and cache read/write ports for memory operations.
const (
	OpIntAlu OpClass = iota // simple integer arithmetic, logic, compares
	OpIntMult
	OpIntDiv
	OpFpAlu
	OpFpMult
	OpFpDiv
	OpLoad  // memory read through a RdWr port + D$
	OpStore // memory write through a RdWr port + D$
	OpBranch
	OpNop
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

var opClassNames = [...]string{
	OpIntAlu:  "IntAlu",
	OpIntMult: "IntMult",
	OpIntDiv:  "IntDiv",
	OpFpAlu:   "FpAlu",
	OpFpMult:  "FpMult",
	OpFpDiv:   "FpDiv",
	OpLoad:    "Load",
	OpStore:   "Store",
	OpBranch:  "Branch",
	OpNop:     "Nop",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// IsFloat reports whether the class executes on the floating-point cluster
// and therefore writes a floating-point destination register.
func (c OpClass) IsFloat() bool { return c == OpFpAlu || c == OpFpMult || c == OpFpDiv }

// IsControl reports whether the class can redirect the front-end.
func (c OpClass) IsControl() bool { return c == OpBranch }

// Architectural register file sizes. RISC-V has 32 integer and 32 FP
// registers; register x0 is hard-wired to zero and never renamed.
const (
	NumIntArchRegs = 32
	NumFpArchRegs  = 32
	ZeroReg        = 0 // integer register 0: reads are free, writes discarded
)

// Reg names an architectural register in one of the two register files.
type Reg struct {
	Index int  // 0..31
	Float bool // true selects the floating-point file
}

// InvalidReg marks an unused operand slot.
var InvalidReg = Reg{Index: -1}

// Valid reports whether the register names a real architectural register.
func (r Reg) Valid() bool { return r.Index >= 0 }

// IsZero reports whether the register is the hard-wired integer zero.
func (r Reg) IsZero() bool { return !r.Float && r.Index == ZeroReg }

func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	if r.Float {
		return fmt.Sprintf("f%d", r.Index)
	}
	return fmt.Sprintf("x%d", r.Index)
}

// IntReg and FpReg are convenience constructors.
func IntReg(i int) Reg { return Reg{Index: i} }
func FpReg(i int) Reg  { return Reg{Index: i, Float: true} }

// Inst is one dynamic instruction in a workload trace. The workload layer
// produces fully-resolved dynamic streams (branch outcomes and effective
// addresses included) so the timing model needs no functional execution.
type Inst struct {
	PC    uint64
	Class OpClass

	Src1, Src2 Reg // source operands; InvalidReg if unused
	Dest       Reg // destination; InvalidReg if none (stores, branches, nops)

	// Memory operations.
	Addr uint64 // effective address (Load/Store)
	Size uint8  // access size in bytes

	// Control flow.
	BrKind BranchKind
	Taken  bool   // actual branch outcome
	Target uint64 // actual next PC when taken
}

// BranchKind refines OpBranch for the branch-predictor model.
type BranchKind uint8

const (
	BrCond BranchKind = iota // conditional branch (direction predicted)
	BrJump                   // unconditional direct jump (always taken)
	BrCall                   // call: pushes return address on the RAS
	BrRet                    // return: target predicted by the RAS
)

func (k BranchKind) String() string {
	switch k {
	case BrCond:
		return "cond"
	case BrJump:
		return "jump"
	case BrCall:
		return "call"
	case BrRet:
		return "ret"
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// HasDest reports whether the instruction allocates a rename register: it
// must have a valid destination that is not the integer zero register.
func (in *Inst) HasDest() bool { return in.Dest.Valid() && !in.Dest.IsZero() }

// FallThrough returns the next sequential PC (4-byte fixed encoding).
func (in *Inst) FallThrough() uint64 { return in.PC + 4 }

// NextPC returns the architecturally correct next PC.
func (in *Inst) NextPC() uint64 {
	if in.Class.IsControl() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

func (in *Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x: %s %s,%s [%#x]", in.PC, in.Class, in.Dest, in.Src1, in.Addr)
	case in.Class.IsControl():
		return fmt.Sprintf("%#x: %s taken=%v -> %#x", in.PC, in.Class, in.Taken, in.Target)
	default:
		return fmt.Sprintf("%#x: %s %s,%s,%s", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}
