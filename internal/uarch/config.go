// Package uarch describes out-of-order microarchitecture configurations and
// the design space explored by ArchExplorer.
//
// The parameter set reproduces Table 4 of the paper: 21 parameters of an
// OoO RISC-V processor similar to the Alpha 21264, spanning pipeline width,
// front-end buffering, the tournament branch predictor, back-end queue and
// register-file capacities, functional-unit counts, and first-level cache
// geometry. The full cross product holds about 8.96e14 design points.
package uarch

import (
	"fmt"
	"strings"
)

// Config is one microarchitecture design point. Every field corresponds to a
// row of Table 4; the zero value is NOT valid — use Baseline or
// Space.Decode to construct configurations.
type Config struct {
	// Front end.
	Width          int // fetch/decode/rename/dispatch/issue/writeback/commit width
	FetchBufBytes  int // fetch buffer size in bytes
	FetchQueueUops int // fetch target queue capacity in micro-ops

	// Tournament branch predictor.
	LocalPredictor  int // local history table entries
	GlobalPredictor int // global predictor entries (choice predictor matches)
	RASEntries      int // return address stack depth
	BTBEntries      int // branch target buffer entries

	// Back end capacities.
	ROBEntries int
	IntRF      int // physical integer registers
	FpRF       int // physical floating-point registers
	IQEntries  int // unified instruction (issue) queue
	LQEntries  int // load queue
	SQEntries  int // store queue

	// Functional units.
	IntALU     int
	IntMultDiv int
	FpALU      int
	FpMultDiv  int
	// RdWrPort is fixed at 1 in Table 1 and is not swept in Table 4, but
	// the model keeps it explicit so bottleneck reports can attribute
	// memory-port contention.
	RdWrPorts int

	// First-level caches. Sizes in KB, power-of-two associativity.
	ICacheKB    int
	ICacheAssoc int
	DCacheKB    int
	DCacheAssoc int
}

// Baseline returns the Table 1 baseline microarchitecture specification.
func Baseline() Config {
	return Config{
		Width:           4,
		FetchBufBytes:   64,
		FetchQueueUops:  32,
		LocalPredictor:  2048,
		GlobalPredictor: 8192,
		RASEntries:      16,
		BTBEntries:      4096,
		ROBEntries:      50,
		IntRF:           50,
		FpRF:            50,
		IQEntries:       32,
		LQEntries:       24,
		SQEntries:       24,
		IntALU:          3,
		IntMultDiv:      1,
		FpALU:           2,
		FpMultDiv:       1,
		RdWrPorts:       1,
		ICacheKB:        32,
		ICacheAssoc:     2,
		DCacheKB:        32,
		DCacheAssoc:     2,
	}
}

// Validate checks structural invariants that the simulator depends on.
func (c Config) Validate() error {
	type check struct {
		name string
		v    int
		min  int
	}
	checks := []check{
		{"Width", c.Width, 1},
		{"FetchBufBytes", c.FetchBufBytes, 4},
		{"FetchQueueUops", c.FetchQueueUops, 1},
		{"LocalPredictor", c.LocalPredictor, 2},
		{"GlobalPredictor", c.GlobalPredictor, 2},
		{"RASEntries", c.RASEntries, 1},
		{"BTBEntries", c.BTBEntries, 2},
		{"ROBEntries", c.ROBEntries, 4},
		{"IntRF", c.IntRF, 34}, // must cover 32 arch regs + rename headroom
		{"FpRF", c.FpRF, 34},
		{"IQEntries", c.IQEntries, 2},
		{"LQEntries", c.LQEntries, 2},
		{"SQEntries", c.SQEntries, 2},
		{"IntALU", c.IntALU, 1},
		{"IntMultDiv", c.IntMultDiv, 1},
		{"FpALU", c.FpALU, 1},
		{"FpMultDiv", c.FpMultDiv, 1},
		{"RdWrPorts", c.RdWrPorts, 1},
		{"ICacheKB", c.ICacheKB, 1},
		{"ICacheAssoc", c.ICacheAssoc, 1},
		{"DCacheKB", c.DCacheKB, 1},
		{"DCacheAssoc", c.DCacheAssoc, 1},
	}
	for _, ch := range checks {
		if ch.v < ch.min {
			return fmt.Errorf("uarch: %s=%d below minimum %d", ch.name, ch.v, ch.min)
		}
	}
	for _, p2 := range []check{
		{"LocalPredictor", c.LocalPredictor, 0},
		{"GlobalPredictor", c.GlobalPredictor, 0},
		{"BTBEntries", c.BTBEntries, 0},
	} {
		if p2.v&(p2.v-1) != 0 {
			return fmt.Errorf("uarch: %s=%d must be a power of two", p2.name, p2.v)
		}
	}
	return nil
}

// String renders the configuration as a compact single-line spec.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "W%d FB%d FQ%d BP%d/%d RAS%d BTB%d ROB%d IRF%d FRF%d IQ%d LQ%d SQ%d",
		c.Width, c.FetchBufBytes, c.FetchQueueUops,
		c.LocalPredictor, c.GlobalPredictor, c.RASEntries, c.BTBEntries,
		c.ROBEntries, c.IntRF, c.FpRF, c.IQEntries, c.LQEntries, c.SQEntries)
	fmt.Fprintf(&b, " ALU%d MD%d FALU%d FMD%d I$%dKB/%d D$%dKB/%d",
		c.IntALU, c.IntMultDiv, c.FpALU, c.FpMultDiv,
		c.ICacheKB, c.ICacheAssoc, c.DCacheKB, c.DCacheAssoc)
	return b.String()
}

// Resource identifies a hardware structure for bottleneck attribution.
// The set matches the resources the paper's critical path blames: back-end
// queue capacities, rename register files, functional units, memory ports,
// the branch predictor (via misprediction edges), and the two first-level
// caches (via access-latency edges).
type Resource uint8

const (
	ResNone     Resource = iota // unattributed (virtual or pure pipeline edges)
	ResFrontend                 // fetch buffer / fetch queue / pipeline width
	ResROB
	ResIQ
	ResLQ
	ResSQ
	ResIntRF
	ResFpRF
	ResIntALU
	ResIntMultDiv
	ResFpALU
	ResFpMultDiv
	ResRdWrPort
	ResBranchPred // misprediction squash latency
	ResICache     // instruction fetch latency beyond the pipelined hit
	ResDCache     // data access latency (misses, bank conflicts)
	ResRawDep     // true data dependence (not a hardware resource)
	numResources
)

// NumResources is the number of distinct attribution targets.
const NumResources = int(numResources)

var resourceNames = [...]string{
	ResNone:       "None",
	ResFrontend:   "Frontend",
	ResROB:        "ROB",
	ResIQ:         "IQ",
	ResLQ:         "LQ",
	ResSQ:         "SQ",
	ResIntRF:      "IntRF",
	ResFpRF:       "FpRF",
	ResIntALU:     "IntALU",
	ResIntMultDiv: "IntMultDiv",
	ResFpALU:      "FpALU",
	ResFpMultDiv:  "FpMultDiv",
	ResRdWrPort:   "RdWrPort",
	ResBranchPred: "BranchPred",
	ResICache:     "ICache",
	ResDCache:     "DCache",
	ResRawDep:     "RawDep",
}

func (r Resource) String() string {
	if int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("Resource(%d)", uint8(r))
}

// ResourceByName is the inverse of Resource.String, for deserialising
// reports whose resources were stored by display name.
func ResourceByName(name string) (Resource, bool) {
	for r, n := range resourceNames {
		if n == name {
			return Resource(r), true
		}
	}
	return ResNone, false
}

// Resources returns every attributable resource in display order.
func Resources() []Resource {
	out := make([]Resource, 0, NumResources-1)
	for r := Resource(1); r < numResources; r++ {
		out = append(out, r)
	}
	return out
}
