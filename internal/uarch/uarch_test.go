package uarch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaselineMatchesTable1(t *testing.T) {
	b := Baseline()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Width != 4 || b.ROBEntries != 50 || b.IQEntries != 32 ||
		b.LQEntries != 24 || b.SQEntries != 24 || b.IntRF != 50 || b.FpRF != 50 {
		t.Errorf("baseline drifted from Table 1: %+v", b)
	}
	if b.IntALU != 3 || b.IntMultDiv != 1 || b.FpALU != 2 || b.FpMultDiv != 1 || b.RdWrPorts != 1 {
		t.Errorf("baseline FUs drifted from Table 1")
	}
	if b.ICacheKB != 32 || b.DCacheKB != 32 || b.ICacheAssoc != 2 || b.DCacheAssoc != 2 {
		t.Errorf("baseline caches drifted from Table 1")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ROBEntries = 1 },
		func(c *Config) { c.IntRF = 32 },        // no rename headroom
		func(c *Config) { c.BTBEntries = 1000 }, // not a power of two
		func(c *Config) { c.LocalPredictor = 1234 },
		func(c *Config) { c.RdWrPorts = 0 },
	}
	for i, mutate := range bad {
		c := Baseline()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %s", i, c)
		}
	}
}

func TestStandardSpaceSizeMatchesTable4(t *testing.T) {
	s := StandardSpace()
	// Table 4's value ranges ("start:end:stride") multiply to ~1.07e15;
	// the paper's own "#" column and its stated total of 8.9649e14 are
	// mutually inconsistent with those ranges, so this repo follows the
	// ranges and pins the resulting size.
	want := 1.0662e15
	if got := s.Size(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("space size %.4e, want %.4e", got, want)
	}
	// Per-parameter cardinalities from Table 4.
	counts := map[Param]int{
		ParamWidth: 8, ParamFetchBuf: 3, ParamFetchQueue: 11,
		ParamLocalPred: 3, ParamGlobalPred: 3, ParamRAS: 13, ParamBTB: 3,
		ParamROB: 15, ParamIntRF: 34, ParamFpRF: 34, ParamIQ: 9, // RF ranges per Table 4's "40:304:8"
		ParamLQ: 8, ParamSQ: 8, ParamIntALU: 4, ParamIntMultDiv: 2,
		ParamFpALU: 2, ParamFpMultDiv: 2, ParamICacheKB: 3,
		ParamICacheAssoc: 2, ParamDCacheKB: 3, ParamDCacheAssoc: 2,
	}
	for p, want := range counts {
		if got := s.Levels(p); got != want {
			t.Errorf("%s: %d levels, Table 4 has %d", p, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		pt := s.Random(rng)
		cfg := s.Decode(pt)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoded config invalid: %v (%s)", err, cfg)
		}
		back, err := s.Encode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if back != pt {
			t.Fatalf("round trip %v -> %v", pt, back)
		}
		if !s.Contains(cfg) {
			t.Fatal("Contains false for decoded config")
		}
	}
}

func TestEncodeRejectsOffGrid(t *testing.T) {
	s := StandardSpace()
	if _, err := s.Encode(Baseline()); err == nil {
		t.Fatal("Table 1 baseline (ROB=50) should be off the Table 4 grid")
	}
	if s.Contains(Baseline()) {
		t.Fatal("Contains should reject the off-grid baseline")
	}
}

func TestNearestAndClamp(t *testing.T) {
	s := StandardSpace()
	pt := s.Nearest(Baseline())
	cfg := s.Decode(pt)
	// ROB 50 must snap to 48 (nearest of 32:256:16).
	if cfg.ROBEntries != 48 {
		t.Errorf("ROB snapped to %d, want 48", cfg.ROBEntries)
	}
	if cfg.IntRF != 48 {
		t.Errorf("IntRF snapped to %d, want 48", cfg.IntRF)
	}
	cl := s.Clamp(Baseline())
	if !s.Contains(cl) {
		t.Error("Clamp result not in space")
	}
	if cl.RdWrPorts != 1 {
		t.Errorf("Clamp lost RdWrPorts: %d", cl.RdWrPorts)
	}
}

func TestStepClamps(t *testing.T) {
	s := StandardSpace()
	var pt Point
	if s.Step(&pt, ParamROB, -1) {
		t.Error("step below floor should not move")
	}
	if !s.Step(&pt, ParamROB, 3) || pt[ParamROB] != 3 {
		t.Error("step +3 failed")
	}
	if !s.Step(&pt, ParamROB, 100) || pt[ParamROB] != s.Levels(ParamROB)-1 {
		t.Error("step should clamp at ceiling")
	}
	if s.Step(&pt, ParamROB, 1) {
		t.Error("step at ceiling should not move")
	}
}

func TestResourceParamsInverse(t *testing.T) {
	// Every parameter maps to a resource whose parameter list contains it.
	for p := Param(0); p < Param(NumParams); p++ {
		res := ParamResource(p)
		if res == ResNone {
			t.Errorf("%s has no resource", p)
			continue
		}
		found := false
		for _, q := range ResourceParams(res) {
			if q == p {
				found = true
			}
		}
		if !found {
			t.Errorf("%s -> %s, but ResourceParams(%s) misses it", p, res, res)
		}
	}
	if ResourceParams(ResRdWrPort) != nil {
		t.Error("RdWrPort is not swept and must map to no parameters")
	}
	if ResourceParams(ResRawDep) != nil {
		t.Error("RawDep is not a hardware resource")
	}
}

func TestResourcesListing(t *testing.T) {
	rs := Resources()
	if len(rs) != NumResources-1 {
		t.Fatalf("Resources() returned %d entries", len(rs))
	}
	for _, r := range rs {
		if r == ResNone {
			t.Fatal("ResNone must not be listed")
		}
		if r.String() == "" {
			t.Fatalf("resource %d unnamed", r)
		}
	}
}

func TestRandomPointsAlwaysDecodeValid(t *testing.T) {
	s := StandardSpace()
	f := func(seed int64) bool {
		pt := s.Random(rand.New(rand.NewSource(seed)))
		return s.Decode(pt).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
