package uarch

import (
	"fmt"
	"math/rand"
)

// Param enumerates the tunable design-space dimensions of Table 4.
type Param uint8

const (
	ParamWidth Param = iota
	ParamFetchBuf
	ParamFetchQueue
	ParamLocalPred
	ParamGlobalPred
	ParamRAS
	ParamBTB
	ParamROB
	ParamIntRF
	ParamFpRF
	ParamIQ
	ParamLQ
	ParamSQ
	ParamIntALU
	ParamIntMultDiv
	ParamFpALU
	ParamFpMultDiv
	ParamICacheKB
	ParamICacheAssoc
	ParamDCacheKB
	ParamDCacheAssoc
	numParams
)

// NumParams is the number of swept dimensions (21, per Table 4).
const NumParams = int(numParams)

var paramNames = [...]string{
	ParamWidth:       "Width",
	ParamFetchBuf:    "FetchBuf",
	ParamFetchQueue:  "FetchQueue",
	ParamLocalPred:   "LocalPred",
	ParamGlobalPred:  "GlobalPred",
	ParamRAS:         "RAS",
	ParamBTB:         "BTB",
	ParamROB:         "ROB",
	ParamIntRF:       "IntRF",
	ParamFpRF:        "FpRF",
	ParamIQ:          "IQ",
	ParamLQ:          "LQ",
	ParamSQ:          "SQ",
	ParamIntALU:      "IntALU",
	ParamIntMultDiv:  "IntMultDiv",
	ParamFpALU:       "FpALU",
	ParamFpMultDiv:   "FpMultDiv",
	ParamICacheKB:    "ICacheKB",
	ParamICacheAssoc: "ICacheAssoc",
	ParamDCacheKB:    "DCacheKB",
	ParamDCacheAssoc: "DCacheAssoc",
}

func (p Param) String() string {
	if int(p) < len(paramNames) {
		return paramNames[p]
	}
	return fmt.Sprintf("Param(%d)", uint8(p))
}

func seq(start, end, stride int) []int {
	var out []int
	for v := start; v <= end; v += stride {
		out = append(out, v)
	}
	return out
}

// Space is the candidate-value table for every parameter: the design space
// is the cross product of all value lists.
type Space struct {
	values [NumParams][]int
}

// StandardSpace returns the Table 4 design space
// (size 8 * 3 * 11 * 3 * 3 * 13 * 3 * 15 * 18 * 18 * 9 * 8 * 8 * 4 * 2 * 2 * 2 * 3 * 2 * 3 * 2
// ≈ 8.96e14 points).
func StandardSpace() *Space {
	s := &Space{}
	s.values[ParamWidth] = seq(1, 8, 1)
	s.values[ParamFetchBuf] = []int{16, 32, 64}
	s.values[ParamFetchQueue] = seq(8, 48, 4)
	s.values[ParamLocalPred] = []int{512, 1024, 2048}
	s.values[ParamGlobalPred] = []int{2048, 4096, 8192}
	s.values[ParamRAS] = seq(16, 40, 2)
	s.values[ParamBTB] = []int{1024, 2048, 4096}
	s.values[ParamROB] = seq(32, 256, 16)
	s.values[ParamIntRF] = seq(40, 304, 8)
	s.values[ParamFpRF] = seq(40, 304, 8)
	s.values[ParamIQ] = seq(16, 80, 8)
	s.values[ParamLQ] = seq(20, 48, 4)
	s.values[ParamSQ] = seq(20, 48, 4)
	s.values[ParamIntALU] = seq(3, 6, 1)
	s.values[ParamIntMultDiv] = []int{1, 2}
	s.values[ParamFpALU] = []int{1, 2}
	s.values[ParamFpMultDiv] = []int{1, 2}
	s.values[ParamICacheKB] = []int{16, 32, 64}
	s.values[ParamICacheAssoc] = []int{2, 4}
	s.values[ParamDCacheKB] = []int{16, 32, 64}
	s.values[ParamDCacheAssoc] = []int{2, 4}
	return s
}

// Values returns the candidate list for a parameter. The returned slice must
// not be modified.
func (s *Space) Values(p Param) []int { return s.values[p] }

// Levels returns the number of candidate values for a parameter.
func (s *Space) Levels(p Param) int { return len(s.values[p]) }

// Size returns the total number of design points in the space.
func (s *Space) Size() float64 {
	total := 1.0
	for _, vs := range s.values {
		total *= float64(len(vs))
	}
	return total
}

// Point is a design point given as per-parameter value indices.
type Point [NumParams]int

// Decode materialises a Point into a Config.
func (s *Space) Decode(pt Point) Config {
	get := func(p Param) int { return s.values[p][pt[p]] }
	return Config{
		Width:           get(ParamWidth),
		FetchBufBytes:   get(ParamFetchBuf),
		FetchQueueUops:  get(ParamFetchQueue),
		LocalPredictor:  get(ParamLocalPred),
		GlobalPredictor: get(ParamGlobalPred),
		RASEntries:      get(ParamRAS),
		BTBEntries:      get(ParamBTB),
		ROBEntries:      get(ParamROB),
		IntRF:           get(ParamIntRF),
		FpRF:            get(ParamFpRF),
		IQEntries:       get(ParamIQ),
		LQEntries:       get(ParamLQ),
		SQEntries:       get(ParamSQ),
		IntALU:          get(ParamIntALU),
		IntMultDiv:      get(ParamIntMultDiv),
		FpALU:           get(ParamFpALU),
		FpMultDiv:       get(ParamFpMultDiv),
		RdWrPorts:       1,
		ICacheKB:        get(ParamICacheKB),
		ICacheAssoc:     get(ParamICacheAssoc),
		DCacheKB:        get(ParamDCacheKB),
		DCacheAssoc:     get(ParamDCacheAssoc),
	}
}

// Encode maps a Config back to value indices. It returns an error if any
// field holds a value outside the candidate list.
func (s *Space) Encode(c Config) (Point, error) {
	fields := [NumParams]int{
		ParamWidth:       c.Width,
		ParamFetchBuf:    c.FetchBufBytes,
		ParamFetchQueue:  c.FetchQueueUops,
		ParamLocalPred:   c.LocalPredictor,
		ParamGlobalPred:  c.GlobalPredictor,
		ParamRAS:         c.RASEntries,
		ParamBTB:         c.BTBEntries,
		ParamROB:         c.ROBEntries,
		ParamIntRF:       c.IntRF,
		ParamFpRF:        c.FpRF,
		ParamIQ:          c.IQEntries,
		ParamLQ:          c.LQEntries,
		ParamSQ:          c.SQEntries,
		ParamIntALU:      c.IntALU,
		ParamIntMultDiv:  c.IntMultDiv,
		ParamFpALU:       c.FpALU,
		ParamFpMultDiv:   c.FpMultDiv,
		ParamICacheKB:    c.ICacheKB,
		ParamICacheAssoc: c.ICacheAssoc,
		ParamDCacheKB:    c.DCacheKB,
		ParamDCacheAssoc: c.DCacheAssoc,
	}
	var pt Point
	for p := Param(0); p < numParams; p++ {
		idx := -1
		for i, v := range s.values[p] {
			if v == fields[p] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return pt, fmt.Errorf("uarch: %s=%d not in design space", p, fields[p])
		}
		pt[p] = idx
	}
	return pt, nil
}

// Contains reports whether the configuration is expressible in the space.
func (s *Space) Contains(c Config) bool {
	_, err := s.Encode(c)
	return err == nil
}

// Random samples a uniform design point using r.
func (s *Space) Random(r *rand.Rand) Point {
	var pt Point
	for p := 0; p < NumParams; p++ {
		pt[p] = r.Intn(len(s.values[p]))
	}
	return pt
}

// Step moves parameter p of pt by delta candidate positions, clamping to the
// candidate range. It reports whether the point changed.
func (s *Space) Step(pt *Point, p Param, delta int) bool {
	idx := pt[p] + delta
	if idx < 0 {
		idx = 0
	}
	if max := len(s.values[p]) - 1; idx > max {
		idx = max
	}
	if idx == pt[p] {
		return false
	}
	pt[p] = idx
	return true
}

// Clamp snaps a configuration to the nearest expressible design point,
// rounding each field to the closest candidate value.
func (s *Space) Clamp(c Config) Config {
	pt := s.Nearest(c)
	out := s.Decode(pt)
	out.RdWrPorts = c.RdWrPorts
	if out.RdWrPorts == 0 {
		out.RdWrPorts = 1
	}
	return out
}

// Nearest returns the design point whose value is closest to the given
// configuration in every dimension independently.
func (s *Space) Nearest(c Config) Point {
	fields := [NumParams]int{
		ParamWidth:       c.Width,
		ParamFetchBuf:    c.FetchBufBytes,
		ParamFetchQueue:  c.FetchQueueUops,
		ParamLocalPred:   c.LocalPredictor,
		ParamGlobalPred:  c.GlobalPredictor,
		ParamRAS:         c.RASEntries,
		ParamBTB:         c.BTBEntries,
		ParamROB:         c.ROBEntries,
		ParamIntRF:       c.IntRF,
		ParamFpRF:        c.FpRF,
		ParamIQ:          c.IQEntries,
		ParamLQ:          c.LQEntries,
		ParamSQ:          c.SQEntries,
		ParamIntALU:      c.IntALU,
		ParamIntMultDiv:  c.IntMultDiv,
		ParamFpALU:       c.FpALU,
		ParamFpMultDiv:   c.FpMultDiv,
		ParamICacheKB:    c.ICacheKB,
		ParamICacheAssoc: c.ICacheAssoc,
		ParamDCacheKB:    c.DCacheKB,
		ParamDCacheAssoc: c.DCacheAssoc,
	}
	var pt Point
	for p := Param(0); p < numParams; p++ {
		best, bestDist := 0, -1
		for i, v := range s.values[p] {
			d := v - fields[p]
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
		pt[p] = best
	}
	return pt
}

// ResourceParams maps a bottleneck resource to the design-space parameters
// that provision it. Resources outside the swept space (read/write ports)
// or that are not hardware structures (RawDep) map to nil.
func ResourceParams(r Resource) []Param {
	switch r {
	case ResFrontend:
		return []Param{ParamWidth, ParamFetchQueue, ParamFetchBuf}
	case ResROB:
		return []Param{ParamROB}
	case ResIQ:
		return []Param{ParamIQ}
	case ResLQ:
		return []Param{ParamLQ}
	case ResSQ:
		return []Param{ParamSQ}
	case ResIntRF:
		return []Param{ParamIntRF}
	case ResFpRF:
		return []Param{ParamFpRF}
	case ResIntALU:
		return []Param{ParamIntALU}
	case ResIntMultDiv:
		return []Param{ParamIntMultDiv}
	case ResFpALU:
		return []Param{ParamFpALU}
	case ResFpMultDiv:
		return []Param{ParamFpMultDiv}
	case ResBranchPred:
		return []Param{ParamGlobalPred, ParamLocalPred, ParamBTB, ParamRAS}
	case ResICache:
		return []Param{ParamICacheKB, ParamICacheAssoc}
	case ResDCache:
		return []Param{ParamDCacheKB, ParamDCacheAssoc}
	default:
		return nil
	}
}

// ParamResource is the inverse of ResourceParams: which resource a
// parameter provisions (used when shrinking abundant structures).
func ParamResource(p Param) Resource {
	switch p {
	case ParamWidth, ParamFetchBuf, ParamFetchQueue:
		return ResFrontend
	case ParamLocalPred, ParamGlobalPred, ParamRAS, ParamBTB:
		return ResBranchPred
	case ParamROB:
		return ResROB
	case ParamIntRF:
		return ResIntRF
	case ParamFpRF:
		return ResFpRF
	case ParamIQ:
		return ResIQ
	case ParamLQ:
		return ResLQ
	case ParamSQ:
		return ResSQ
	case ParamIntALU:
		return ResIntALU
	case ParamIntMultDiv:
		return ResIntMultDiv
	case ParamFpALU:
		return ResFpALU
	case ParamFpMultDiv:
		return ResFpMultDiv
	case ParamICacheKB, ParamICacheAssoc:
		return ResICache
	case ParamDCacheKB, ParamDCacheAssoc:
		return ResDCache
	default:
		return ResNone
	}
}
