package mlkit

import (
	"math"
	"math/rand"
)

// PairRanker is ArchRanker's pairwise comparison model: given two designs'
// feature vectors it predicts which achieves the better objective. The
// original uses ranking SVMs; we train the equivalent linear model on
// feature differences with logistic loss and SGD, which preserves the
// method's behaviour (a learned linear ordering over designs) without an
// external solver.
type PairRanker struct {
	W     []float64
	Epoch int
	LR    float64
	rng   *rand.Rand
}

// NewPairRanker builds an untrained ranker for nFeat-dimensional designs.
func NewPairRanker(nFeat int, seed int64) *PairRanker {
	return &PairRanker{
		W:     make([]float64, nFeat),
		Epoch: 60,
		LR:    0.5,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Fit trains on pairs: better[i] is preferred over worse[i].
func (r *PairRanker) Fit(better, worse [][]float64) {
	n := len(better)
	if n == 0 {
		return
	}
	for e := 0; e < r.Epoch; e++ {
		for k := 0; k < n; k++ {
			i := r.rng.Intn(n)
			// Logistic loss on the difference vector.
			var s float64
			for f := range r.W {
				s += r.W[f] * (better[i][f] - worse[i][f])
			}
			// gradient of log(1+exp(-s))
			g := -1.0 / (1.0 + exp(s))
			for f := range r.W {
				r.W[f] -= r.LR * g * (better[i][f] - worse[i][f])
			}
		}
	}
}

// Score orders designs: higher scores are predicted better.
func (r *PairRanker) Score(x []float64) float64 {
	var s float64
	for f := range r.W {
		s += r.W[f] * x[f]
	}
	return s
}

// Prefer reports whether a is predicted better than b.
func (r *PairRanker) Prefer(a, b []float64) bool { return r.Score(a) > r.Score(b) }

func exp(x float64) float64 {
	// Clamp to avoid overflow in the logistic gradient.
	if x > 30 {
		x = 30
	}
	if x < -30 {
		x = -30
	}
	return math.Exp(x)
}
