package mlkit

import (
	"math"
	"sort"
)

// TreeNode is one node of a CART regression tree.
type TreeNode struct {
	Feature   int     // split feature (-1 for leaves)
	Threshold float64 // go left when x[Feature] <= Threshold
	Value     float64 // leaf prediction
	Left      *TreeNode
	Right     *TreeNode
}

// RegressionTree is a depth-limited CART tree fitted with weighted
// variance reduction — the weak learner of AdaBoost.RT.
type RegressionTree struct {
	Root     *TreeNode
	MaxDepth int
	MinLeaf  int
}

// FitTree builds a regression tree on weighted samples.
func FitTree(x [][]float64, y, w []float64, maxDepth, minLeaf int) *RegressionTree {
	t := &RegressionTree{MaxDepth: maxDepth, MinLeaf: minLeaf}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.build(x, y, w, idx, 0)
	return t
}

func weightedMean(y, w []float64, idx []int) float64 {
	var sw, swy float64
	for _, i := range idx {
		sw += w[i]
		swy += w[i] * y[i]
	}
	if sw == 0 {
		return 0
	}
	return swy / sw
}

func (t *RegressionTree) build(x [][]float64, y, w []float64, idx []int, depth int) *TreeNode {
	node := &TreeNode{Feature: -1, Value: weightedMean(y, w, idx)}
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return node
	}

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	nFeat := len(x[idx[0]])

	// Parent weighted SSE.
	parentMean := node.Value
	var parentSSE, sw float64
	for _, i := range idx {
		d := y[i] - parentMean
		parentSSE += w[i] * d * d
		sw += w[i]
	}
	if parentSSE <= 1e-12 {
		return node
	}

	order := make([]int, len(idx))
	for f := 0; f < nFeat; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

		// Incremental weighted split scan.
		var lw, lwy, lwy2 float64
		var rw, rwy, rwy2 float64
		for _, i := range order {
			rw += w[i]
			rwy += w[i] * y[i]
			rwy2 += w[i] * y[i] * y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lw += w[i]
			lwy += w[i] * y[i]
			lwy2 += w[i] * y[i] * y[i]
			rw -= w[i]
			rwy -= w[i] * y[i]
			rwy2 -= w[i] * y[i] * y[i]
			if k+1 < t.MinLeaf || len(order)-k-1 < t.MinLeaf {
				continue
			}
			xv, xn := x[order[k]][f], x[order[k+1]][f]
			if xv == xn {
				continue
			}
			sseL := lwy2 - lwy*lwy/math.Max(lw, 1e-12)
			sseR := rwy2 - rwy*rwy/math.Max(rw, 1e-12)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (xv + xn) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}

	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return node
	}
	node.Feature = bestFeat
	node.Threshold = bestThresh
	node.Left = t.build(x, y, w, li, depth+1)
	node.Right = t.build(x, y, w, ri, depth+1)
	return node
}

// Predict evaluates the tree at q.
func (t *RegressionTree) Predict(q []float64) float64 {
	n := t.Root
	for n.Feature >= 0 {
		if q[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// AdaBoostRT is the AdaBoost.RT regression ensemble (Solomatine & Shrestha)
// used by the AdaBoost DSE baseline: weak regression trees are boosted with
// a relative-error threshold phi; samples whose relative error exceeds phi
// get up-weighted.
type AdaBoostRT struct {
	Phi      float64 // relative error threshold (paper setting ~0.1..0.3)
	Rounds   int
	MaxDepth int
	trees    []*RegressionTree
	betas    []float64
}

// NewAdaBoostRT constructs an ensemble with typical settings.
func NewAdaBoostRT() *AdaBoostRT {
	return &AdaBoostRT{Phi: 0.2, Rounds: 12, MaxDepth: 4}
}

// Fit trains the ensemble.
func (a *AdaBoostRT) Fit(x [][]float64, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	a.trees = a.trees[:0]
	a.betas = a.betas[:0]
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	for r := 0; r < a.Rounds; r++ {
		tree := FitTree(x, y, w, a.MaxDepth, 2)
		// Error rate: total weight of samples with relative error > phi.
		var errRate float64
		rel := make([]float64, n)
		for i := range x {
			pred := tree.Predict(x[i])
			denom := math.Abs(y[i])
			if denom < 1e-9 {
				denom = 1e-9
			}
			rel[i] = math.Abs(pred-y[i]) / denom
			if rel[i] > a.Phi {
				errRate += w[i]
			}
		}
		if errRate >= 0.5 {
			break // weak learner no longer better than chance
		}
		beta := math.Pow(errRate, 2)
		if beta < 1e-9 {
			beta = 1e-9
		}
		a.trees = append(a.trees, tree)
		a.betas = append(a.betas, beta)
		// Reweight: correct samples down-weighted by beta.
		var sum float64
		for i := range w {
			if rel[i] <= a.Phi {
				w[i] *= beta
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		if errRate == 0 {
			break
		}
	}
	if len(a.trees) == 0 {
		// Degenerate data: keep a single unweighted tree.
		uw := make([]float64, n)
		for i := range uw {
			uw[i] = 1
		}
		a.trees = append(a.trees, FitTree(x, y, uw, a.MaxDepth, 2))
		a.betas = append(a.betas, 1)
	}
}

// Predict returns the log(1/beta)-weighted median of the trees'
// predictions, AdaBoost.RT's combination rule.
func (a *AdaBoostRT) Predict(q []float64) float64 {
	if len(a.trees) == 0 {
		return 0
	}
	type pw struct{ p, w float64 }
	ps := make([]pw, len(a.trees))
	var totalW float64
	for i, t := range a.trees {
		wt := math.Log(1 / a.betas[i])
		ps[i] = pw{p: t.Predict(q), w: wt}
		totalW += wt
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p < ps[j].p })
	var acc float64
	for _, v := range ps {
		acc += v.w
		if acc >= totalW/2 {
			return v.p
		}
	}
	return ps[len(ps)-1].p
}
