package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyRoundTrip(t *testing.T) {
	// A = B Bᵀ + n I is SPD for random B.
	rng := rand.New(rand.NewSource(3))
	n := 8
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check L Lᵀ == A.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-9 {
				t.Fatalf("LLt[%d,%d]=%v, A=%v", i, j, s, a.At(i, j))
			}
		}
	}
	// Solve against a known x.
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rhs[i] += a.At(i, j) * x[j]
		}
	}
	got := SolveCholesky(l, rhs)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("solve[%d]=%v, want %v", i, got[i], x[i])
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	r := NewMatrix(2, 3)
	if _, err := Cholesky(r); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 1, 0, -1, 0}
	gp := NewGP()
	if err := gp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, va := gp.Predict(x[i])
		if math.Abs(mu-y[i]) > 0.05 {
			t.Errorf("GP at training point %v: mean %v want %v", x[i], mu, y[i])
		}
		if va < 0 {
			t.Errorf("negative variance %v", va)
		}
	}
	// Far from data, variance must grow.
	_, vNear := gp.Predict([]float64{0.5})
	_, vFar := gp.Predict([]float64{3})
	if vFar <= vNear {
		t.Errorf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
}

func TestGPHandlesDuplicatePoints(t *testing.T) {
	x := [][]float64{{0.3}, {0.3}, {0.7}}
	y := []float64{1, 1, 2}
	gp := NewGP()
	if err := gp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mu, _ := gp.Predict([]float64{0.3})
	if math.Abs(mu-1) > 0.1 {
		t.Fatalf("duplicate-point mean %v, want ~1", mu)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	gp := NewGP()
	if err := gp.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	f := func(q float64) bool {
		return gp.ExpectedImprovement([]float64{math.Mod(math.Abs(q), 2)}, 1.0) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// EI near an unexplored promising region exceeds EI at the known best.
	eiKnown := gp.ExpectedImprovement([]float64{1}, 1.0)
	eiNew := gp.ExpectedImprovement([]float64{1.6}, 1.0)
	if eiNew <= eiKnown {
		t.Errorf("EI should favour unexplored region: new %v vs known %v", eiNew, eiKnown)
	}
}

func TestRegressionTreeFitsStep(t *testing.T) {
	var x [][]float64
	var y, w []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		x = append(x, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 5)
		}
		w = append(w, 1)
	}
	tree := FitTree(x, y, w, 3, 2)
	if p := tree.Predict([]float64{0.2}); math.Abs(p-1) > 0.01 {
		t.Fatalf("left leaf %v, want 1", p)
	}
	if p := tree.Predict([]float64{0.9}); math.Abs(p-5) > 0.01 {
		t.Fatalf("right leaf %v, want 5", p)
	}
}

func TestAdaBoostRTImprovesOverSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	target := func(q []float64) float64 {
		return math.Sin(4*q[0]) + 0.5*q[1]*q[1] + q[0]*q[1]
	}
	for i := 0; i < 300; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		x = append(x, q)
		y = append(y, target(q))
	}
	ens := NewAdaBoostRT()
	ens.Fit(x, y)

	w := make([]float64, len(x))
	for i := range w {
		w[i] = 1
	}
	single := FitTree(x, y, w, 4, 2)

	var errEns, errSingle float64
	for i := 0; i < 200; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		want := target(q)
		errEns += math.Abs(ens.Predict(q) - want)
		errSingle += math.Abs(single.Predict(q) - want)
	}
	if errEns > errSingle*1.1 {
		t.Errorf("boosted error %v worse than single tree %v", errEns, errSingle)
	}
}

func TestPairRankerLearnsLinearOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	truth := []float64{2, -1, 0.5}
	score := func(x []float64) float64 { return Dot(truth, x) }

	var better, worse [][]float64
	for i := 0; i < 400; i++ {
		a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if score(a) > score(b) {
			better = append(better, a)
			worse = append(worse, b)
		} else {
			better = append(better, b)
			worse = append(worse, a)
		}
	}
	r := NewPairRanker(3, 1)
	r.Fit(better, worse)

	correct := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if r.Prefer(a, b) == (score(a) > score(b)) {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Fatalf("ranker accuracy %.2f, want >= 0.9", acc)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
