// Package mlkit provides the small machine-learning toolkit the baseline
// DSE methods are built from: Gaussian-process regression with expected
// improvement (BOOM-Explorer's Bayesian optimisation), regression trees
// boosted with AdaBoost.RT (the AdaBoost baseline), and a pairwise ranking
// model (ArchRanker). Everything is deterministic given the caller's seed
// and uses only the standard library.
package mlkit

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Cholesky computes the lower-triangular L with A = L Lᵀ for a symmetric
// positive-definite A. It returns an error if A is not positive definite
// (callers add jitter to the diagonal and retry).
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mlkit: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mlkit: matrix not positive definite at %d (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, via
// forward then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
