package mlkit

import (
	"fmt"
	"math"
)

// GP is a Gaussian-process regressor with an RBF (squared-exponential)
// kernel over normalised feature vectors — the surrogate model of
// BOOM-Explorer's Bayesian optimisation.
type GP struct {
	LengthScale float64 // kernel length scale (in normalised feature units)
	SignalVar   float64 // kernel variance
	NoiseVar    float64 // observation noise added to the diagonal

	x     [][]float64
	alpha []float64
	chol  *Matrix
	mean  float64
}

// NewGP constructs a GP with reasonable defaults for features scaled to
// [0,1] per dimension.
func NewGP() *GP {
	return &GP{LengthScale: 0.35, SignalVar: 1.0, NoiseVar: 1e-4}
}

func (g *GP) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.SignalVar * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// Fit conditions the GP on observations (x, y). Targets are centred
// internally. Jitter is added progressively if the kernel matrix is close
// to singular (duplicate points).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("mlkit: GP fit with %d inputs, %d targets", len(x), len(y))
	}
	n := len(x)
	g.x = x
	g.mean = 0
	for _, v := range y {
		g.mean += v
	}
	g.mean /= float64(n)

	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - g.mean
	}

	jitter := g.NoiseVar
	for attempt := 0; attempt < 8; attempt++ {
		k := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := g.kernel(x[i], x[j])
				if i == j {
					v += jitter
				}
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
		l, err := Cholesky(k)
		if err != nil {
			jitter *= 10
			continue
		}
		g.chol = l
		g.alpha = SolveCholesky(l, yc)
		return nil
	}
	return fmt.Errorf("mlkit: GP kernel matrix not positive definite after jitter escalation")
}

// Predict returns the posterior mean and variance at q.
func (g *GP) Predict(q []float64) (mean, variance float64) {
	if g.chol == nil {
		return g.mean, g.SignalVar
	}
	n := len(g.x)
	ks := make([]float64, n)
	for i := range g.x {
		ks[i] = g.kernel(q, g.x[i])
	}
	mean = g.mean + Dot(ks, g.alpha)
	// v = L^{-1} ks via forward substitution.
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := ks[i]
		for k := 0; k < i; k++ {
			sum -= g.chol.At(i, k) * v[k]
		}
		v[i] = sum / g.chol.At(i, i)
	}
	variance = g.kernel(q, q) - Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mean, variance
}

// ExpectedImprovement computes EI of maximising beyond best at query q.
func (g *GP) ExpectedImprovement(q []float64, best float64) float64 {
	mu, va := g.Predict(q)
	sigma := math.Sqrt(va)
	if sigma < 1e-12 {
		if mu > best {
			return mu - best
		}
		return 0
	}
	z := (mu - best) / sigma
	return (mu-best)*normCDF(z) + sigma*normPDF(z)
}

func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
