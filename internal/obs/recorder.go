package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the handle instrumented code holds: a metrics registry, an
// optional JSONL journal, and optional live sinks (HTTP exposition,
// periodic progress lines). All methods are safe on a nil receiver, so a
// disabled recorder costs one pointer comparison per call site and changes
// nothing observable.
type Recorder struct {
	reg   *Registry
	start time.Time // Clock()'s epoch (monotonic)

	mu       sync.Mutex
	j        *journal
	srv      *http.Server
	srvAddr  string
	stopProg chan struct{}
	progWG   sync.WaitGroup

	spans atomic.Int64

	spanLive    // in-flight span tracking for the dashboard
	stopSampler chan struct{}
	samplerWG   sync.WaitGroup
}

// New returns a recorder with a fresh registry and no sinks attached.
func New() *Recorder {
	return &Recorder{reg: NewRegistry(), start: time.Now()}
}

// Registry returns the recorder's metric registry (nil for a nil recorder;
// a nil registry hands out no-op metrics).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter is shorthand for Registry().Counter.
func (r *Recorder) Counter(name string) *Counter { return r.Registry().Counter(name) }

// Gauge is shorthand for Registry().Gauge.
func (r *Recorder) Gauge(name string) *Gauge { return r.Registry().Gauge(name) }

// Histogram is shorthand for Registry().Histogram.
func (r *Recorder) Histogram(name string) *Histogram { return r.Registry().Histogram(name) }

// NextSpan returns a fresh span id (1-based). Ids are process-unique per
// recorder; when emission happens from a single deterministic phase they
// are also reproducible run to run.
func (r *Recorder) NextSpan() int64 {
	if r == nil {
		return 0
	}
	return r.spans.Add(1)
}

// OpenJournal attaches a JSONL run-journal writing to path (truncating an
// existing file). The journal is flushed and closed by Close.
func (r *Recorder) OpenJournal(path string) error {
	if r == nil {
		return fmt.Errorf("obs: OpenJournal on a nil recorder")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: open journal: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.j != nil {
		f.Close()
		return fmt.Errorf("obs: journal already open")
	}
	r.j = newJournal(f, f)
	return nil
}

// SetJournalWriter attaches a caller-owned writer as the journal sink
// (used by tests and embedders); Close flushes but does not close it.
func (r *Recorder) SetJournalWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.j = newJournal(w, nil)
}

// JournalEnabled reports whether Emit will write anywhere. Call sites use
// it to skip building expensive event payloads (e.g. hypervolume
// recomputation) when nobody is listening.
func (r *Recorder) JournalEnabled() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.j != nil
}

// Emit appends one event to the journal (no-op without one). The event's
// type tag and sequence number are assigned here, under the journal lock,
// so seq order equals physical line order.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	j := r.j
	r.mu.Unlock()
	if j == nil {
		return
	}
	j.emit(e)
}

// Serve starts an HTTP server on addr exposing the Prometheus text
// exposition at /metrics, Go's pprof profiles under /debug/pprof/, and
// expvar at /debug/vars. It returns the bound address (useful with ":0").
// The server is shut down by Close.
func (r *Recorder) Serve(addr string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("obs: Serve on a nil recorder")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.sampleRuntime() // scrape-time sampling, like a prometheus collector
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/dash", r.dashPage)
	mux.HandleFunc("/dash/data", r.dashData)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	r.mu.Lock()
	if r.srv != nil {
		r.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("obs: metrics server already running")
	}
	r.srv = srv
	r.srvAddr = ln.Addr().String()
	r.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// StartProgress prints Registry.Summary to w every interval until Close.
func (r *Recorder) StartProgress(w io.Writer, interval time.Duration) {
	if r == nil || interval <= 0 {
		return
	}
	r.mu.Lock()
	if r.stopProg != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	r.stopProg = stop
	r.mu.Unlock()

	r.progWG.Add(1)
	go func() {
		defer r.progWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(w, "[obs] %s\n", r.reg.Summary())
			}
		}
	}()
}

// Close stops the progress sink, shuts the metrics server down, and
// flushes + closes the journal. It is safe to call more than once.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	stop, srv, j := r.stopProg, r.srv, r.j
	sampler := r.stopSampler
	r.stopProg, r.srv, r.j, r.stopSampler = nil, nil, nil, nil
	r.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	if sampler != nil {
		close(sampler)
	}
	r.progWG.Wait()
	r.samplerWG.Wait()
	var err error
	if srv != nil {
		err = srv.Close()
	}
	if j != nil {
		if jerr := j.close(); err == nil {
			err = jerr
		}
	}
	return err
}
