// Package obs is the run-telemetry layer of the reproduction: low-overhead
// concurrency-safe metrics (counters, gauges, histograms), structured
// span/event recording into a JSONL run-journal, and two live sinks — a
// Prometheus-style text exposition served next to net/http/pprof and
// expvar, and a periodic one-line progress printer.
//
// Everything is nil-safe: a nil *Recorder (telemetry disabled) makes every
// operation a no-op, so instrumented code paths carry no conditionals and
// produce byte-identical results with telemetry off. The journal is the
// only ordered sink; instrumented code must emit journal events from a
// deterministic phase (the DSE evaluator emits from its commit phase, never
// from workers), so a run's event sequence is reproducible even though the
// durations inside the events are not.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names shared by the instrumented packages and the
// progress/exposition sinks. Keeping them here means the dse evaluator, the
// experiment harness, and Registry.Summary all agree on what a metric is
// called without importing one another.
const (
	MetricEvaluations   = "archx_evaluations_total"    // full-fidelity evaluations committed
	MetricProbes        = "archx_probes_total"         // probe evaluations committed
	MetricCacheHits     = "archx_cache_hits_total"     // batch slots resolved from cache
	MetricCacheMisses   = "archx_cache_misses_total"   // deduplicated jobs actually simulated
	MetricCacheUpgrades = "archx_cache_upgrades_total" // cached entries re-run to add a DEG report
	MetricBudgetSpent   = "archx_budget_spent_sims"    // cumulative simulation budget (gauge)
	MetricSimsInFlight  = "archx_sims_in_flight"       // (config, workload) simulations running now
	MetricIterations    = "archx_explorer_iters_total" // explorer decision steps
	MetricHypervolume   = "archx_hypervolume"          // running Pareto hypervolume (gauge)
	MetricCampaignsDone = "archx_campaigns_done_total" // finished grid cells in an experiment fan-out
	MetricRetries       = "archx_retries_total"        // transient stage failures retried
	MetricTimeouts      = "archx_stage_timeouts_total" // stage attempts abandoned at the timeout
	MetricEvalSkips     = "archx_eval_skips_total"     // permanently failed evaluations degraded to skips
	MetricCheckpoints   = "archx_checkpoints_total"    // campaign snapshots written
	MetricStageTrace    = "archx_stage_trace_seconds"  // histograms: per-stage worker latency
	MetricStageSim      = "archx_stage_sim_seconds"
	MetricStagePower    = "archx_stage_power_seconds"
	MetricStageDEG      = "archx_stage_deg_seconds"
	// MetricStageDEGStream is the fused simulate+analyze stage of the
	// streaming sim->DEG pipeline (replaces the sim and deg histograms on
	// streamed evaluations).
	MetricStageDEGStream = "archx_stage_deg_stream_seconds"
	MetricSimInsts       = "archx_sim_insts_total"   // instructions committed by the cycle-level simulator
	MetricSimInstRate    = "archx_sim_insts_per_sec" // throughput of the most recent simulation (gauge)
	MetricSimBatchSize   = "archx_sim_batch_size"    // histogram: configs per batched-simulation pass

	MetricDEGWindows   = "archx_deg_windows"             // windows of the last windowed analysis (gauge)
	MetricDEGPeakEdges = "archx_deg_peak_edges"          // largest single-window edge count (gauge)
	MetricDEGDrops     = "archx_deg_dropped_edges_total" // defensively dropped DEG edges (corruption indicator)
	MetricDEGWorkers   = "archx_deg_workers"             // resolved DEG analysis worker count (gauge)
	// MetricDEGQueueWait is the histogram of how long each sealed window
	// waited between dispatch and a worker picking it up: near-zero means
	// the pool keeps up with the simulator; growing waits mean analysis is
	// the bottleneck even at the configured worker count.
	MetricDEGQueueWait = "archx_deg_queue_wait_seconds"
	// Runtime self-profile gauges, sampled by the recorder's runtime
	// sampler (started by the live dashboard, or explicitly via
	// Recorder.StartRuntimeSampler) so a stalled campaign can be triaged
	// from /metrics or /dash without attaching pprof.
	MetricRuntimeHeap       = "archx_runtime_heap_alloc_bytes" // live heap at the last sample (gauge)
	MetricRuntimeSys        = "archx_runtime_sys_bytes"        // total memory obtained from the OS (gauge)
	MetricRuntimeGoroutines = "archx_runtime_goroutines"       // goroutine count at the last sample (gauge)
	MetricRuntimeGCPause    = "archx_runtime_gc_pause_last_ns" // most recent GC stop-the-world pause (gauge)
	MetricRuntimeGCTotal    = "archx_runtime_gc_cycles_total"  // completed GC cycles (gauge; cumulative)
)

// Counter is a monotonically increasing int64, safe for concurrent use.
// The zero value is ready; a nil Counter ignores every operation.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move both ways, safe for concurrent use.
// The zero value is ready; a nil Gauge ignores every operation.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets spans the sub-millisecond-to-seconds range the
// simulator's per-stage latencies live in (upper bounds, in seconds).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency/size distribution, safe for
// concurrent use. A nil Histogram ignores every operation.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []uint64  // len(buckets)+1
	sum     float64
	count   uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (DefaultLatencyBuckets when nil).
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	return &Histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Merge folds another histogram's samples into h. Both must share bucket
// bounds; mismatched shapes return an error and leave h unchanged. The
// source is snapshotted before h locks, so concurrent cross-merges cannot
// deadlock; merging a histogram into itself is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil || h == o {
		return nil
	}
	o.mu.Lock()
	oBuckets := o.buckets
	oCounts := append([]uint64(nil), o.counts...)
	oSum, oCount := o.sum, o.count
	o.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.buckets) != len(oBuckets) {
		return fmt.Errorf("obs: merge across %d- and %d-bucket histograms", len(h.buckets), len(oBuckets))
	}
	for i, b := range h.buckets {
		if b != oBuckets[i] {
			return fmt.Errorf("obs: merge across mismatched bucket bounds")
		}
	}
	for i, c := range oCounts {
		h.counts[i] += c
	}
	h.sum += oSum
	h.count += oCount
	return nil
}

// Snapshot returns cumulative bucket counts (Prometheus `le` semantics),
// the sample sum, and the sample count.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return cumulative, h.sum, h.count
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) from the bucket counts,
// interpolating linearly inside the bucket the rank lands in. Samples in
// the implicit +Inf bucket are reported as the largest finite bound — the
// usual Prometheus convention — so the estimate is a floor, not an
// overshoot. Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || len(h.buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.buckets) { // +Inf bucket: clamp to the largest finite bound
			return h.buckets[len(h.buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.buckets[i-1]
		}
		hi := h.buckets[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.buckets[len(h.buckets)-1]
}

// Bounds returns the histogram's upper bounds (shared, do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.buckets
}

// Registry is a get-or-create store of named metrics. The zero value is not
// usable; use NewRegistry. A nil Registry hands out nil metrics, which
// swallow every operation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the default
// latency buckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(nil)
		r.histograms[name] = h
	}
	return h
}

// HistogramNames returns the names of every histogram registered so far,
// sorted — the enumeration the live dashboard walks (Histogram(name) only
// ever hands out one metric at a time, and would create on a miss).
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.histograms)
}

// Snapshot returns every counter and gauge value by name — the flat form
// embedded in the journal's run_end event so a journal is self-contained.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (sorted by name, so output is stable for tests and diffing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name].Value())
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		cum, sum, count := h.Snapshot()
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for i, bound := range h.Bounds() {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", bound), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summary is the one-line live view the periodic progress sink prints:
// evaluation/probe counts, budget spend, hypervolume, cache behaviour, and
// simulations in flight, drawn from the canonical metric names.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	hits := r.Counter(MetricCacheHits).Value()
	misses := r.Counter(MetricCacheMisses).Value()
	lookups := hits + misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = 100 * float64(hits) / float64(lookups)
	}
	return fmt.Sprintf("evals=%d probes=%d sims=%.1f hv=%.4f in-flight=%.0f cache=%d/%d (%.0f%% hit) iters=%d",
		r.Counter(MetricEvaluations).Value(),
		r.Counter(MetricProbes).Value(),
		r.Gauge(MetricBudgetSpent).Value(),
		r.Gauge(MetricHypervolume).Value(),
		r.Gauge(MetricSimsInFlight).Value(),
		hits, lookups, hitRate,
		r.Counter(MetricIterations).Value())
}
