package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"
)

// The live dashboard rides the recorder's HTTP mux (Serve): /dash is a
// small embedded HTML page that polls /dash/data, a JSON snapshot of the
// campaign — metric counters/gauges, stage-latency histograms with
// quantiles, the in-flight spans, and the archx_runtime_* self-profile
// gauges. Everything here is pull-driven: in-flight span tracking and
// runtime sampling switch on at the first dashboard request, so a campaign
// nobody watches pays one atomic load per span and nothing else.

// sampleRuntime refreshes the archx_runtime_* gauges from the Go runtime.
// Called at scrape/poll time and from the optional background sampler.
func (r *Recorder) sampleRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg := r.reg
	reg.Gauge(MetricRuntimeHeap).Set(float64(ms.HeapAlloc))
	reg.Gauge(MetricRuntimeSys).Set(float64(ms.Sys))
	reg.Gauge(MetricRuntimeGoroutines).Set(float64(runtime.NumGoroutine()))
	reg.Gauge(MetricRuntimeGCTotal).Set(float64(ms.NumGC))
	if ms.NumGC > 0 {
		reg.Gauge(MetricRuntimeGCPause).Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// StartRuntimeSampler samples the runtime gauges every interval until
// Close — for headless runs that export /metrics to a scraper with its own
// cadence, or journal-only runs that want the final run_end metrics
// snapshot to include the self-profile. No-op on a nil recorder, a
// non-positive interval, or when a sampler is already running.
func (r *Recorder) StartRuntimeSampler(interval time.Duration) {
	if r == nil || interval <= 0 {
		return
	}
	r.mu.Lock()
	if r.stopSampler != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	r.stopSampler = stop
	r.mu.Unlock()

	r.sampleRuntime()
	r.samplerWG.Add(1)
	go func() {
		defer r.samplerWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.sampleRuntime()
			}
		}
	}()
}

// dashHist is one histogram in the dashboard snapshot.
type dashHist struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // cumulative, le semantics; last entry is the total
}

// dashLiveSpan is a LiveSpan plus its age at snapshot time.
type dashLiveSpan struct {
	LiveSpan
	AgeNS int64 `json:"age_ns"`
}

// dashSnapshot is the /dash/data payload.
type dashSnapshot struct {
	UptimeNS   int64              `json:"uptime_ns"`
	Metrics    map[string]float64 `json:"metrics"`
	Summary    string             `json:"summary"`
	Histograms []dashHist         `json:"histograms"`
	InFlight   []dashLiveSpan     `json:"in_flight"`
}

// dashData serves the JSON snapshot the dashboard page polls.
func (r *Recorder) dashData(w http.ResponseWriter, _ *http.Request) {
	r.EnableLiveSpans()
	r.sampleRuntime()
	now := r.Clock()
	snap := dashSnapshot{
		UptimeNS: now,
		Metrics:  r.reg.Snapshot(),
		Summary:  r.reg.Summary(),
	}
	for _, name := range r.reg.HistogramNames() {
		h := r.reg.Histogram(name)
		cum, sum, count := h.Snapshot()
		snap.Histograms = append(snap.Histograms, dashHist{
			Name: name, Count: count, Sum: sum,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Bounds: h.Bounds(), Counts: cum,
		})
	}
	for _, s := range r.InFlight() {
		snap.InFlight = append(snap.InFlight, dashLiveSpan{LiveSpan: s, AgeNS: now - s.StartNS})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

// dashPage serves the embedded dashboard and switches live tracking on.
func (r *Recorder) dashPage(w http.ResponseWriter, _ *http.Request) {
	r.EnableLiveSpans()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashHTML))
}

const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>archx dashboard</title>
<style>
body{font:13px/1.5 ui-monospace,Menlo,Consolas,monospace;margin:1.5em;background:#111;color:#ddd}
h1{font-size:15px}h2{font-size:13px;margin:1.2em 0 .3em;color:#9cf}
table{border-collapse:collapse}td,th{padding:.15em .8em;text-align:right;border-bottom:1px solid #333}
th{color:#888;font-weight:normal}td:first-child,th:first-child{text-align:left}
#summary{color:#9f9}#err{color:#f66}
.bar{display:inline-block;height:9px;background:#49f;vertical-align:middle}
</style>
</head>
<body>
<h1>archx live dashboard</h1>
<div id="summary">connecting…</div><div id="err"></div>
<h2>progress</h2><table id="prog"></table>
<h2>stage latency histograms</h2><table id="hists"></table>
<h2>in-flight spans</h2><table id="spans"></table>
<h2>runtime self-profile</h2><table id="rt"></table>
<script>
const fmtNS=n=>n>=1e9?(n/1e9).toFixed(2)+"s":n>=1e6?(n/1e6).toFixed(1)+"ms":n>=1e3?(n/1e3).toFixed(1)+"µs":n+"ns";
const fmtB=n=>n>=1<<30?(n/(1<<30)).toFixed(2)+"GiB":n>=1<<20?(n/(1<<20)).toFixed(1)+"MiB":n>=1024?(n/1024).toFixed(1)+"KiB":n+"B";
const fmtS=s=>s>=1?s.toFixed(2)+"s":s>=1e-3?(s*1e3).toFixed(1)+"ms":(s*1e6).toFixed(0)+"µs";
function rows(el,head,body){el.innerHTML="<tr>"+head.map(h=>"<th>"+h+"</th>").join("")+"</tr>"+
  body.map(r=>"<tr>"+r.map(c=>"<td>"+c+"</td>").join("")+"</tr>").join("");}
const PROG=[["archx_explorer_iters_total","iterations"],["archx_evaluations_total","evaluations"],
 ["archx_probes_total","probes"],["archx_budget_spent_sims","budget (sims)"],["archx_hypervolume","hypervolume"],
 ["archx_sims_in_flight","sims in flight"],["archx_cache_hits_total","cache hits"],["archx_cache_misses_total","cache misses"],
 ["archx_retries_total","retries"],["archx_campaigns_done_total","grid cells done"]];
const RT=[["archx_runtime_heap_alloc_bytes","heap",fmtB],["archx_runtime_sys_bytes","sys",fmtB],
 ["archx_runtime_goroutines","goroutines",v=>v],["archx_runtime_gc_pause_last_ns","last GC pause",fmtNS],
 ["archx_runtime_gc_cycles_total","GC cycles",v=>v]];
async function tick(){
 try{
  const d=await (await fetch("dash/data")).json();
  document.getElementById("err").textContent="";
  document.getElementById("summary").textContent="up "+fmtNS(d.uptime_ns)+" — "+d.summary;
  const m=d.metrics||{};
  rows(document.getElementById("prog"),["metric","value"],
    PROG.filter(([k])=>k in m).map(([k,l])=>[l,+m[k].toFixed(4)]));
  rows(document.getElementById("hists"),["stage","count","mean","p50","p90","p99"],
    (d.histograms||[]).map(h=>[h.name.replace(/^archx_|_seconds$/g,""),h.count,
      fmtS(h.count?h.sum/h.count:0),fmtS(h.p50),fmtS(h.p90),fmtS(h.p99)]));
  rows(document.getElementById("spans"),["kind","name","workload","worker","age"],
    (d.in_flight||[]).map(s=>[s.kind,s.name||"",s.workload||"",s.worker||"",
      fmtNS(s.age_ns)+' <span class="bar" style="width:'+Math.min(120,s.age_ns/1e7)+'px"></span>']));
  rows(document.getElementById("rt"),["gauge","value"],
    RT.filter(([k])=>k in m).map(([k,l,f])=>[l,f(m[k])]));
 }catch(e){document.getElementById("err").textContent="poll failed: "+e;}
}
tick();setInterval(tick,1000);
</script>
</body>
</html>
`
