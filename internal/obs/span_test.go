package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanEventRoundTrip: span events survive the journal with every field
// intact and parse back as *SpanEvent, not Unknown.
func TestSpanEventRoundTrip(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetJournalWriter(&buf)
	r.Emit(&SpanEvent{
		Span: 3, Parent: 1, SpanKind: SpanStage, Name: "sim", Workload: "mcf",
		Worker: 2, StartNS: 100, DurNS: 50,
	})
	r.Emit(&SpanEvent{
		Span: 4, SpanKind: SpanBatch, Name: "evaluate", Hits: 2,
		Point: []int{1, 2}, Cache: "replay", StartNS: 10, DurNS: 400,
	})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
	s := events[0].(*SpanEvent)
	if s.Kind() != "span" || s.Span != 3 || s.Parent != 1 || s.SpanKind != SpanStage ||
		s.Name != "sim" || s.Workload != "mcf" || s.Worker != 2 || s.StartNS != 100 || s.DurNS != 50 {
		t.Fatalf("span fields lost: %+v", s)
	}
	if s.End() != 150 {
		t.Fatalf("End() = %d, want 150", s.End())
	}
	b := events[1].(*SpanEvent)
	if b.SpanKind != SpanBatch || b.Hits != 2 || b.Cache != "replay" || len(b.Point) != 2 {
		t.Fatalf("batch span fields lost: %+v", b)
	}
}

// TestUnknownByteIdenticalRoundTrip is the forward-compatibility contract
// the journal versioning rule promises: an event kind this build does not
// know — payload fields included — reads into Unknown and re-marshals
// byte-identically, so a journal filter built against an old schema never
// strips data written by a newer one.
func TestUnknownByteIdenticalRoundTrip(t *testing.T) {
	lines := []string{
		`{"t":"future_thing","seq":0,"nested":{"a":[1,2,3]},"note":"keep me"}`,
		`{"t":"span2","seq":1,"span":9,"extra_ns":123}`,
	}
	events, err := ReadJournal(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(lines) {
		t.Fatalf("parsed %d events, want %d", len(events), len(lines))
	}
	for i, e := range events {
		u, ok := e.(*Unknown)
		if !ok {
			t.Fatalf("event %d parsed as %T, want *Unknown", i, e)
		}
		out, err := json.Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != lines[i] {
			t.Fatalf("unknown event %d not byte-identical:\n got %s\nwant %s", i, out, lines[i])
		}
	}
	// An Unknown built without raw bytes still marshals its head.
	out, err := json.Marshal(&Unknown{Head: Head{T: "x", Seq: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"t":"x","seq":7}` {
		t.Fatalf("bare unknown marshals as %s", out)
	}
}

// TestQuantile checks the histogram quantile estimator: interpolation
// within a bucket, the +Inf clamp, and the degenerate inputs.
func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 4 observations in [0,1), 4 in [2,4).
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 1 {
		// p50 sits exactly at the [0,1) bucket's upper bound.
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.25); got != 0.5 {
		// Halfway into the first bucket, interpolated from 0.
		t.Fatalf("p25 = %v, want 0.5", got)
	}
	if got := h.Quantile(0.75); got != 3 {
		// Halfway into the [2,4) bucket.
		t.Fatalf("p75 = %v, want 3", got)
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("p clamp low: %v != %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("p clamp high: %v != %v", got, h.Quantile(1))
	}

	// Observations beyond the last finite bound land in +Inf; the
	// estimate clamps to the largest finite bound rather than inventing
	// an infinite latency.
	inf := NewHistogram([]float64{1, 2, 4})
	inf.Observe(100)
	if got := inf.Quantile(0.99); got != 4 {
		t.Fatalf("+Inf bucket p99 = %v, want clamp to 4", got)
	}

	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	empty := NewHistogram(nil)
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	if math.IsNaN(h.Quantile(0.999)) {
		t.Fatal("quantile produced NaN")
	}
}

// TestQuantileConcurrent reads quantiles and summaries while writers
// hammer the registry — the race gate for the dashboard's read paths.
func TestQuantileConcurrent(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := r.Histogram(MetricStageSim)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64((i+seed)%100) / 1000)
				r.Counter(MetricEvaluations).Inc()
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if q := r.Histogram(MetricStageSim).Quantile(0.9); q < 0 {
			t.Errorf("negative quantile %v", q)
			break
		}
		_ = r.Registry().Summary()
		_ = r.Registry().HistogramNames()
	}
	close(stop)
	wg.Wait()
}

// TestHistogramNames: sorted, and nil-safe.
func TestHistogramNames(t *testing.T) {
	r := New()
	r.Histogram("z_seconds").Observe(1)
	r.Histogram("a_seconds").Observe(1)
	got := r.Registry().HistogramNames()
	if len(got) != 2 || got[0] != "a_seconds" || got[1] != "z_seconds" {
		t.Fatalf("HistogramNames = %v", got)
	}
	var nilReg *Registry
	if names := nilReg.HistogramNames(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
}

// TestNilRecorderSpanAPIs extends the disabled-telemetry contract to every
// span-layer entry point: all of them must be safe no-ops on nil.
func TestNilRecorderSpanAPIs(t *testing.T) {
	var r *Recorder
	if r.Clock() != 0 {
		t.Fatal("nil recorder has a clock")
	}
	if r.SpansActive() {
		t.Fatal("nil recorder claims active spans")
	}
	done := r.TrackSpan(SpanStage, "sim", "mcf", 1)
	done() // must not panic
	if got := r.InFlight(); got != nil {
		t.Fatalf("nil recorder in-flight = %v", got)
	}
	id, end := r.CampaignSpan("x")
	if id != 0 {
		t.Fatalf("nil recorder campaign span id = %d", id)
	}
	end() // must not panic
	r.EnableLiveSpans()
	r.StartRuntimeSampler(time.Second)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignSpanEmission: with a journal the campaign span is emitted at
// end() with the id handed out up front; without one the API stays silent
// and allocates nothing.
func TestCampaignSpanEmission(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetJournalWriter(&buf)
	id, end := r.CampaignSpan("testcamp")
	if id == 0 {
		t.Fatal("campaign span id not allocated with a journal attached")
	}
	end()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("journal holds %d events, want 1", len(events))
	}
	s := events[0].(*SpanEvent)
	if s.Span != id || s.SpanKind != SpanCampaign || s.Name != "testcamp" || s.Parent != 0 {
		t.Fatalf("campaign span = %+v", s)
	}
	if s.DurNS < 0 {
		t.Fatalf("negative campaign duration %d", s.DurNS)
	}

	bare := New()
	if id, end := bare.CampaignSpan("x"); id != 0 {
		t.Fatalf("campaign span id %d without a journal", id)
	} else {
		end()
	}
	if bare.NextSpan() != 1 {
		t.Fatal("journal-less CampaignSpan consumed a span id")
	}
	bare.Close()
}

// TestTrackSpanInFlight: live tracking is off until EnableLiveSpans, then
// records and drops spans as they begin and end, ordered by start time.
func TestTrackSpanInFlight(t *testing.T) {
	r := New()
	defer r.Close()
	done := r.TrackSpan(SpanStage, "sim", "mcf", 1)
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("tracking before EnableLiveSpans: %v", got)
	}
	done()

	r.EnableLiveSpans()
	if !r.SpansActive() {
		t.Fatal("SpansActive false after EnableLiveSpans")
	}
	d1 := r.TrackSpan(SpanStage, "sim", "mcf", 1)
	d2 := r.TrackSpan(SpanStage, "power", "gcc", 2)
	live := r.InFlight()
	if len(live) != 2 {
		t.Fatalf("in-flight = %d spans, want 2", len(live))
	}
	if live[0].StartNS > live[1].StartNS {
		t.Fatal("in-flight spans not ordered by start")
	}
	d1()
	if live := r.InFlight(); len(live) != 1 || live[0].Name != "power" {
		t.Fatalf("after ending one span: %+v", live)
	}
	d2()
	if live := r.InFlight(); len(live) != 0 {
		t.Fatalf("spans leaked: %+v", live)
	}
}

// TestDashEndpoints scrapes /dash and /dash/data off an ephemeral server:
// the page serves HTML, the data endpoint serves a JSON snapshot carrying
// metrics and in-flight spans, and hitting either lazily enables live
// tracking and the runtime self-profile gauges.
func TestDashEndpoints(t *testing.T) {
	r := New()
	r.Counter(MetricEvaluations).Add(5)
	r.Histogram(MetricStageSim).Observe(0.25)
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer r.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	page := get("/dash")
	if !bytes.Contains(page, []byte("<html")) || !bytes.Contains(page, []byte("dash/data")) {
		t.Fatalf("dashboard page unexpected:\n%.200s", page)
	}
	if !r.SpansActive() {
		t.Fatal("dashboard hit did not enable live span tracking")
	}

	done := r.TrackSpan(SpanEval, "cfg", "", 1)
	var snap struct {
		UptimeNS int64              `json:"uptime_ns"`
		Metrics  map[string]float64 `json:"metrics"`
		InFlight []struct {
			Name string `json:"name"`
		} `json:"in_flight"`
		Histograms []struct {
			Name string  `json:"name"`
			P99  float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(get("/dash/data"), &snap); err != nil {
		t.Fatal(err)
	}
	done()
	if snap.UptimeNS <= 0 {
		t.Fatalf("uptime %d", snap.UptimeNS)
	}
	if snap.Metrics[MetricEvaluations] != 5 {
		t.Fatalf("snapshot metrics = %v", snap.Metrics)
	}
	if snap.Metrics[MetricRuntimeGoroutines] <= 0 {
		t.Fatal("runtime self-profile gauges not sampled")
	}
	if len(snap.InFlight) != 1 || snap.InFlight[0].Name != "cfg" {
		t.Fatalf("in-flight = %+v", snap.InFlight)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == MetricStageSim && h.P99 > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("histograms missing %s: %+v", MetricStageSim, snap.Histograms)
	}

	// The runtime gauges also reach the Prometheus exposition.
	if !bytes.Contains(get("/metrics"), []byte(MetricRuntimeHeap)) {
		t.Fatal("/metrics missing runtime gauges")
	}
}

// TestRuntimeSampler: the periodic sampler populates the runtime gauges
// and stops with Close; starting it twice is a no-op.
func TestRuntimeSampler(t *testing.T) {
	r := New()
	r.StartRuntimeSampler(time.Millisecond)
	r.StartRuntimeSampler(time.Millisecond)
	deadline := time.After(5 * time.Second)
	for r.Gauge(MetricRuntimeGoroutines).Value() <= 0 {
		select {
		case <-deadline:
			t.Fatal("sampler never populated the runtime gauges")
		case <-time.After(time.Millisecond):
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
