package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal versioning rule: the schema is append-only. A new need is met by
// a new event kind or a new omitempty field on an existing kind — never by
// renaming, re-typing, or re-purposing a field that has shipped, and a new
// field must be omitted whenever the feature that sets it is off, so
// default-configuration journals stay byte-identical across versions.
// Readers hold up the other half of the contract: ReadJournal maps unknown
// kinds to *Unknown (preserved byte-for-byte, so filters can re-emit them
// losslessly) and json ignores unknown fields, which lets an old obsreport
// binary read a newer journal and a new binary read an old one.
//
// Head is the envelope every journal event carries: its type tag and a
// sequence number assigned in emission order. Emission order is the
// journal's determinism contract — instrumented code only emits from
// deterministic phases, so seq N holds the same event (modulo durations)
// on every run of the same campaign.
type Head struct {
	T   string `json:"t"`
	Seq int64  `json:"seq"`
}

func (h *Head) head() *Head { return h }

// Event is one journal line. Concrete event types embed Head and name
// their type tag via Kind.
type Event interface {
	head() *Head
	Kind() string
}

// RunStart opens a journal: which tool ran what, with which knobs, and the
// hypervolume reference point every later HV number is measured against.
type RunStart struct {
	Head
	Tool        string     `json:"tool"`
	Method      string     `json:"method,omitempty"`
	Suite       string     `json:"suite,omitempty"`
	Budget      int        `json:"budget,omitempty"`
	TraceLen    int        `json:"trace_len,omitempty"`
	Parallelism int        `json:"parallelism,omitempty"`
	HVRef       [3]float64 `json:"hv_ref,omitempty"` // perf, power, area
	Time        string     `json:"time,omitempty"`   // wall-clock, not deterministic
}

// Kind implements Event.
func (*RunStart) Kind() string { return "run_start" }

// EvalSpan is one committed evaluation: the span over its trace/sim/power/
// DEG child stages plus the deterministic outcome fields. Span ids are
// assigned at commit time; an evaluation that re-runs a cached entry to
// attach a DEG report records the span it replaces, so reductions that
// mirror the evaluator's history (stage sums, Pareto sets) drop the
// superseded span.
type EvalSpan struct {
	Head
	Span     int64   `json:"span"`
	Replaces int64   `json:"replaces,omitempty"`
	Point    []int   `json:"point,omitempty"`
	Config   string  `json:"config,omitempty"`
	Probe    bool    `json:"probe,omitempty"`
	SimsAt   float64 `json:"sims_at"`
	Perf     float64 `json:"perf"`
	PowerW   float64 `json:"power_w"`
	AreaMM2  float64 `json:"area_mm2"`
	// Windowed-DEG outcome: total windows and largest single-window graph
	// across the suite, plus defensively dropped DEG edges (a trace-
	// corruption indicator). All omitted on whole-trace runs, keeping
	// journals from default configurations byte-identical to before.
	DEGWindows   int   `json:"deg_windows,omitempty"`
	DEGPeakEdges int   `json:"deg_peak_edges,omitempty"`
	DEGDrops     int64 `json:"deg_drops,omitempty"`
	// SimInsts is the suite-total committed instruction count — with SimNS
	// it yields simulator throughput. Omitted when zero (replayed spans),
	// keeping older journals parseable and golden files unchanged.
	SimInsts int64 `json:"sim_insts,omitempty"`
	// Durations vary run to run; every other field is deterministic.
	TraceNS int64 `json:"trace_ns"`
	SimNS   int64 `json:"sim_ns"`
	PowerNS int64 `json:"power_ns"`
	DEGNS   int64 `json:"deg_ns"`
	// DEGStreamNS is the fused simulate+analyze stage of streamed
	// evaluations, which leaves SimNS and DEGNS zero; omitted on buffered
	// runs so their journals are byte-identical to before.
	DEGStreamNS int64 `json:"deg_stream_ns,omitempty"`
	ElapsedNS   int64 `json:"elapsed_ns"`
}

// Kind implements Event.
func (*EvalSpan) Kind() string { return "eval" }

// ResContrib is one resource's share of the critical path in an iteration
// event.
type ResContrib struct {
	Res     string  `json:"res"`
	Contrib float64 `json:"contrib"`
}

// IterEvent is one explorer decision step: the bottleneck report's top
// contributors that drove it, the resize decision taken, and the running
// hypervolume of everything explored so far. Baseline explorers emit the
// same event per phase batch with Phase set and the resize fields empty.
type IterEvent struct {
	Head
	Explorer string       `json:"explorer"`
	Walk     int          `json:"walk,omitempty"`
	Step     int          `json:"step,omitempty"`
	Phase    string       `json:"phase,omitempty"`
	Sims     float64      `json:"sims"`
	HV       float64      `json:"hv"`
	Top      []ResContrib `json:"top,omitempty"`
	Grown    []string     `json:"grown,omitempty"`
	Shrunk   []string     `json:"shrunk,omitempty"`
	Improved bool         `json:"improved,omitempty"`
	BestIPC  float64      `json:"best_ipc,omitempty"`
	Evals    int          `json:"evals,omitempty"`
}

// Kind implements Event.
func (*IterEvent) Kind() string { return "iter" }

// FaultEvent records one fault-handling action: a transient or timed-out
// stage attempt that was retried (action "retry", class "transient" or
// "timeout"), a permanently failed evaluation degraded to a journaled skip
// (action "skip"), or a campaign snapshot that could not be written (action
// "checkpoint-failed"). Retry events are collected worker-side but emitted
// from the evaluator's commit phase in suite order, so the sequence stays
// deterministic for a sequential evaluator.
type FaultEvent struct {
	Head
	Site     string `json:"site"`
	Class    string `json:"class,omitempty"`
	Action   string `json:"action"`
	Attempt  int    `json:"attempt,omitempty"`
	Point    []int  `json:"point,omitempty"`
	Workload string `json:"workload,omitempty"`
	Err      string `json:"err,omitempty"`
	// BackoffNS is the scheduled sleep before the retry — a policy value,
	// not a measurement, so it is deterministic.
	BackoffNS int64 `json:"backoff_ns,omitempty"`
}

// Kind implements Event.
func (*FaultEvent) Kind() string { return "fault" }

// CheckpointEvent marks one atomic campaign snapshot reaching disk.
type CheckpointEvent struct {
	Head
	Path    string  `json:"path,omitempty"`
	Designs int     `json:"designs"`
	Sims    float64 `json:"sims"`
}

// Kind implements Event.
func (*CheckpointEvent) Kind() string { return "checkpoint" }

// ResumeEvent marks a campaign restored from a checkpoint: how much
// explored state came back and will be replayed instead of re-simulated.
type ResumeEvent struct {
	Head
	Path    string  `json:"path,omitempty"`
	Designs int     `json:"designs"`
	Skipped int     `json:"skipped,omitempty"`
	Sims    float64 `json:"sims"`
}

// Kind implements Event.
func (*ResumeEvent) Kind() string { return "resume" }

// GridProgress marks one finished cell of an experiment's campaign grid.
type GridProgress struct {
	Head
	Variant int     `json:"variant"`
	Seed    int64   `json:"seed"`
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Sims    float64 `json:"sims,omitempty"`
}

// Kind implements Event.
func (*GridProgress) Kind() string { return "grid" }

// RunEnd closes a journal with the final outcome and a full metrics
// snapshot, making the journal self-contained for post-processing.
type RunEnd struct {
	Head
	Tool      string             `json:"tool"`
	Sims      float64            `json:"sims,omitempty"`
	HV        float64            `json:"hv,omitempty"`
	ElapsedNS int64              `json:"elapsed_ns,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Kind implements Event.
func (*RunEnd) Kind() string { return "run_end" }

// journal is the JSONL sink: one event per line, buffered, flushed on
// Close. Writes are serialised by a mutex; seq is assigned under the same
// mutex so the numbering matches the physical line order.
type journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // nil when wrapping a caller-owned writer
	seq int64
	err error
}

func newJournal(w io.Writer, c io.Closer) *journal {
	return &journal{w: bufio.NewWriter(w), c: c}
}

// emit assigns the next sequence number and writes one line.
func (j *journal) emit(e Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	h := e.head()
	h.T = e.Kind()
	h.Seq = j.seq
	j.seq++
	b, err := json.Marshal(e)
	if err == nil {
		_, err = j.w.Write(append(b, '\n'))
	}
	if err != nil {
		j.err = fmt.Errorf("obs: journal write: %w", err)
		return j.err
	}
	return nil
}

// close flushes the buffer and closes the underlying file, if owned.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.w != nil {
		err = j.w.Flush()
	}
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
		j.c = nil
	}
	j.w = nil
	if err != nil && j.err == nil {
		j.err = err
	}
	return err
}

// ReadJournal parses a JSONL journal into typed events, skipping blank
// lines. Unknown event types are preserved as *Unknown so newer journals
// stay readable by older tools.
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		var e Event
		switch head.T {
		case "run_start":
			e = &RunStart{}
		case "eval":
			e = &EvalSpan{}
		case "span":
			e = &SpanEvent{}
		case "iter":
			e = &IterEvent{}
		case "grid":
			e = &GridProgress{}
		case "fault":
			e = &FaultEvent{}
		case "checkpoint":
			e = &CheckpointEvent{}
		case "resume":
			e = &ResumeEvent{}
		case "run_end":
			e = &RunEnd{}
		default:
			e = &Unknown{}
		}
		if err := json.Unmarshal(raw, e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d (%s): %w", line, head.T, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: journal read: %w", err)
	}
	return out, nil
}

// LoadJournal reads a journal file.
func LoadJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// Unknown is a forward-compatibility event: a journal line whose type this
// build does not know. The original line is preserved byte-for-byte, so a
// tool that reads a journal and writes it back (a filter, a splitter)
// round-trips events from newer builds losslessly. Unknown is a read-side
// type — emitting one through a Recorder would re-serialise Raw verbatim,
// ignoring the journal's sequence numbering, so don't.
type Unknown struct {
	Head
	Raw json.RawMessage `json:"-"`
}

// UnmarshalJSON captures the envelope and keeps the raw line.
func (u *Unknown) UnmarshalJSON(b []byte) error {
	if err := json.Unmarshal(b, &u.Head); err != nil {
		return err
	}
	u.Raw = append(u.Raw[:0], b...)
	return nil
}

// MarshalJSON re-emits the preserved line byte-identically.
func (u *Unknown) MarshalJSON() ([]byte, error) {
	if len(u.Raw) > 0 {
		return append([]byte(nil), u.Raw...), nil
	}
	return json.Marshal(u.Head)
}

// Kind implements Event.
func (u *Unknown) Kind() string { return u.T }
