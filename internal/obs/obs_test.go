package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMetrics hammers one counter, gauge, and histogram from many
// goroutines; run under -race this is the recorder's thread-safety gate.
func TestConcurrentMetrics(t *testing.T) {
	r := New()
	const workers, n = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter(MetricEvaluations)
			g := r.Gauge(MetricBudgetSpent)
			h := r.Histogram(MetricStageSim)
			for i := 0; i < n; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i%10) / 1000)
			}
		}()
	}
	wg.Wait()

	if got := r.Counter(MetricEvaluations).Value(); got != workers*n {
		t.Fatalf("counter = %d, want %d", got, workers*n)
	}
	if got := r.Gauge(MetricBudgetSpent).Value(); got != workers*n*0.5 {
		t.Fatalf("gauge = %v, want %v", got, workers*n*0.5)
	}
	_, _, count := r.Histogram(MetricStageSim).Snapshot()
	if count != workers*n {
		t.Fatalf("histogram count = %d, want %d", count, workers*n)
	}
}

// TestHistogramMerge folds two disjoint histograms and checks the combined
// distribution, plus the mismatched-shape error path.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(1.5)
	b.Observe(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	cum, sum, count := a.Snapshot()
	if count != 4 || sum != 105 {
		t.Fatalf("merged count=%d sum=%v, want 4, 105", count, sum)
	}
	// cumulative over bounds 1,2,4,+Inf: 0.5 -> [1]; 1.5 -> [2]; 3 -> [4]; 100 -> +Inf
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if err := a.Merge(a); err != nil {
		t.Fatalf("self-merge: %v", err)
	}
	if _, _, c := a.Snapshot(); c != 4 {
		t.Fatalf("self-merge changed count to %d", c)
	}
	odd := NewHistogram([]float64{1, 3})
	if err := a.Merge(odd); err == nil {
		t.Fatal("merge across mismatched buckets did not fail")
	}
	if _, _, c := a.Snapshot(); c != 4 {
		t.Fatal("failed merge mutated the target")
	}
}

// TestConcurrentHistogramMerge cross-merges two histograms from concurrent
// goroutines while observers run — the deadlock/race regression test.
func TestConcurrentHistogramMerge(t *testing.T) {
	a := NewHistogram(nil)
	b := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				a.Observe(0.001)
				b.Observe(0.002)
				a.Merge(b)
				b.Merge(a)
			}
		}()
	}
	wg.Wait()
}

// TestJournalRoundTrip emits every event type into a buffer, closes, and
// parses it back: seq must be dense and in order, types preserved.
func TestJournalRoundTrip(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetJournalWriter(&buf)
	if !r.JournalEnabled() {
		t.Fatal("journal not enabled after SetJournalWriter")
	}

	r.Emit(&RunStart{Tool: "test", Method: "ArchExplorer", Suite: "SPEC06", Budget: 10})
	r.Emit(&EvalSpan{Span: r.NextSpan(), Point: []int{1, 2}, Probe: true, SimsAt: 1.5, Perf: 0.9})
	r.Emit(&IterEvent{Explorer: "ArchExplorer", Walk: 1, Step: 2, Sims: 3,
		Top: []ResContrib{{Res: "ROB", Contrib: 0.4}}, Grown: []string{"ROB"}})
	r.Emit(&GridProgress{Variant: 1, Seed: 2, Done: 3, Total: 9})
	r.Emit(&RunEnd{Tool: "test", Sims: 3, Metrics: map[string]float64{"x": 1}})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []string{"run_start", "eval", "iter", "grid", "run_end"}
	if len(events) != len(wantKinds) {
		t.Fatalf("parsed %d events, want %d", len(events), len(wantKinds))
	}
	for i, e := range events {
		if e.Kind() != wantKinds[i] {
			t.Fatalf("event %d kind %q, want %q", i, e.Kind(), wantKinds[i])
		}
		if e.head().Seq != int64(i) {
			t.Fatalf("event %d seq %d", i, e.head().Seq)
		}
	}
	ev := events[1].(*EvalSpan)
	if ev.Span != 1 || !ev.Probe || ev.SimsAt != 1.5 {
		t.Fatalf("eval span fields lost: %+v", ev)
	}
	it := events[2].(*IterEvent)
	if len(it.Top) != 1 || it.Top[0].Res != "ROB" {
		t.Fatalf("iter top lost: %+v", it)
	}
}

// TestJournalFlushOnClose writes through a real file and checks nothing is
// lost between the bufio layer and disk.
func TestJournalFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r := New()
	if err := r.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		r.Emit(&EvalSpan{Span: r.NextSpan(), SimsAt: float64(i)})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("journal holds %d events, want %d", len(events), n)
	}
	last := events[n-1].(*EvalSpan)
	if last.SimsAt != n-1 || last.Span != n {
		t.Fatalf("last event corrupted: %+v", last)
	}
	// Double close is safe.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentEmit drives Emit from many goroutines: every line must
// still be valid JSON with a unique seq (ordering across goroutines is not
// asserted — that is the caller's phase discipline, not the journal's).
func TestConcurrentEmit(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetJournalWriter(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(&IterEvent{Explorer: "x", Sims: float64(i)})
			}
		}()
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*per {
		t.Fatalf("%d events, want %d", len(events), workers*per)
	}
	seen := make(map[int64]bool)
	for _, e := range events {
		if seen[e.head().Seq] {
			t.Fatalf("duplicate seq %d", e.head().Seq)
		}
		seen[e.head().Seq] = true
	}
}

// TestWritePrometheus checks the text exposition shape for all three
// metric kinds.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(1.5)
	h := r.Registry().Histogram("h_seconds")
	h.Observe(0.0002)
	h.Observe(42)

	var buf bytes.Buffer
	if err := r.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE c_total counter\nc_total 3\n",
		"# TYPE g gauge\ng 1.5\n",
		"# TYPE h_seconds histogram\n",
		`h_seconds_bucket{le="0.00025"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestServe spins the metrics endpoint up on an ephemeral port and scrapes
// it once.
func TestServe(t *testing.T) {
	r := New()
	r.Counter(MetricEvaluations).Add(7)
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer r.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), MetricEvaluations+" 7") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if _, err := r.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("second Serve did not fail")
	}
}

// TestStartProgress checks the periodic progress line fires and stops.
func TestStartProgress(t *testing.T) {
	r := New()
	r.Counter(MetricEvaluations).Add(2)
	pr, pw := io.Pipe()
	r.StartProgress(pw, time.Millisecond)
	line := make(chan string, 1)
	go func() {
		b := make([]byte, 256)
		n, _ := pr.Read(b)
		line <- string(b[:n])
	}()
	select {
	case got := <-line:
		if !strings.Contains(got, "evals=2") {
			t.Fatalf("progress line %q missing evals", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no progress line within 5s")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
}

// TestNilRecorder: the disabled-telemetry contract — every operation on a
// nil recorder (and the nil metrics it hands out) is a safe no-op.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Emit(&RunEnd{})
	if r.JournalEnabled() {
		t.Fatal("nil recorder claims a journal")
	}
	if r.NextSpan() != 0 {
		t.Fatal("nil recorder allocated a span")
	}
	r.StartProgress(io.Discard, time.Second)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if s := r.Registry().Summary(); s != "" {
		t.Fatalf("nil registry summary %q", s)
	}
	if err := r.Registry().WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Registry().Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
}

// TestSummary spot-checks the live one-liner's cache arithmetic.
func TestSummary(t *testing.T) {
	r := New()
	r.Counter(MetricCacheHits).Add(3)
	r.Counter(MetricCacheMisses).Add(1)
	s := r.Registry().Summary()
	if !strings.Contains(s, "cache=3/4 (75% hit)") {
		t.Fatalf("summary %q", s)
	}
}

// TestReadJournalUnknown: forward compatibility — unknown event types are
// preserved, bad JSON is an error naming the line.
func TestReadJournalUnknown(t *testing.T) {
	in := strings.NewReader(`{"t":"future_thing","seq":0}` + "\n" + `{"t":"run_end","seq":1,"tool":"x"}` + "\n")
	events, err := ReadJournal(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind() != "future_thing" {
		t.Fatalf("unknown event mishandled: %v", events)
	}
	if _, err := ReadJournal(strings.NewReader("{nope\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestOpenJournalErrors covers the unopenable-path and double-open errors.
func TestOpenJournalErrors(t *testing.T) {
	r := New()
	if err := r.OpenJournal(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Fatal("unopenable journal path accepted")
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := r.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	if err := r.OpenJournal(path); err == nil {
		t.Fatal("double OpenJournal accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}
	if _, err := LoadJournal(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("loading an absent journal succeeded")
	}
}

func ExampleRegistry_Summary() {
	r := New()
	r.Counter(MetricEvaluations).Add(4)
	r.Gauge(MetricBudgetSpent).Set(12)
	fmt.Println(r.Registry().Summary())
	// Output: evals=4 probes=0 sims=12.0 hv=0.0000 in-flight=0 cache=0/0 (0% hit) iters=0
}
