package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds, from the outside in. A campaign is one tool invocation (or
// one grid cell of an experiment fan-out); an iteration is one explorer
// decision step; a batch is one EvaluateBatch/ProbeBatch commit; an eval is
// one committed evaluation (sharing its id with the EvalSpan event); a
// stage is one worker-side pipeline stage of one workload.
const (
	SpanCampaign  = "campaign"
	SpanIteration = "iteration"
	SpanBatch     = "batch"
	SpanEval      = "eval"
	SpanStage     = "stage"
)

// SpanEvent is one node of the campaign's own execution tree, the raw
// material the selfdeg analysis reconstructs the campaign dependency graph
// from. Spans are emitted from the evaluator's commit phase (children
// before their parent, so a reader sees a post-order traversal), which
// keeps the sequence of (kind, name, parent-shape) deterministic for a
// given campaign; StartNS/DurNS and Worker are measurements and vary run
// to run, exactly like the duration fields of EvalSpan. With the journal
// disabled nothing is emitted and nothing is measured.
type SpanEvent struct {
	Head
	Span   int64 `json:"span"`
	Parent int64 `json:"parent,omitempty"`
	// SpanKind is one of the Span* constants. (The field cannot be called
	// Kind: that name is taken by the Event interface method.)
	SpanKind string `json:"kind"`
	// Name identifies the span within its kind: the tool/explorer for a
	// campaign, "w<walk>.s<step>" for an iteration, "evaluate"/"probe" for
	// a batch, the design-point config for an eval, the stage name
	// (trace, sim, power, deg, deg_stream) for a stage.
	Name     string `json:"name,omitempty"`
	Workload string `json:"workload,omitempty"` // stage spans: workload being simulated
	// Worker is the 1-based evaluator worker slot a stage ran on; slots are
	// assigned lowest-free-first, so the number of distinct values observed
	// equals the campaign's effective parallelism.
	Worker int   `json:"worker,omitempty"`
	Point  []int `json:"point,omitempty"` // eval spans: the design point
	// Cache classifies how an eval span was satisfied: "" (computed),
	// "upgrade" (cached entry re-run to attach a DEG report), "replay"
	// (restored from a checkpoint, no compute), or "failed".
	Cache string `json:"cache,omitempty"`
	// Hits is the batch's cache-hit short-circuit count: slots served from
	// the evaluation cache without spawning any child eval span.
	Hits    int   `json:"hits,omitempty"`
	StartNS int64 `json:"start_ns"` // offset from recorder creation, monotonic
	DurNS   int64 `json:"dur_ns"`
}

// Kind implements Event.
func (*SpanEvent) Kind() string { return "span" }

// End returns the span's end offset.
func (s *SpanEvent) End() int64 { return s.StartNS + s.DurNS }

// Clock returns nanoseconds since the recorder was created, from the
// monotonic clock — the time base of every SpanEvent. Returns 0 on a nil
// recorder, so disabled-telemetry paths measure nothing.
func (r *Recorder) Clock() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.start))
}

// SpansActive reports whether instrumented code should capture span
// timings at all: a journal is attached (spans are committed to it) or the
// live dashboard has asked for in-flight spans.
func (r *Recorder) SpansActive() bool {
	if r == nil {
		return false
	}
	return r.liveOn.Load() || r.JournalEnabled()
}

// LiveSpan is one in-flight span as shown by the dashboard. Live tracking
// has its own id space (ids never reach the journal): journal span ids are
// allocated at commit time, after the work is done, which is exactly when
// a live view no longer cares.
type LiveSpan struct {
	ID       int64  `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Workload string `json:"workload,omitempty"`
	Worker   int    `json:"worker,omitempty"`
	StartNS  int64  `json:"start_ns"`
}

// EnableLiveSpans turns on in-flight span tracking (idempotent). The
// dashboard calls this lazily on its first request, so campaigns nobody
// watches pay only one atomic load per span.
func (r *Recorder) EnableLiveSpans() {
	if r == nil {
		return
	}
	r.liveMu.Lock()
	if r.live == nil {
		r.live = make(map[int64]LiveSpan)
	}
	r.liveMu.Unlock()
	r.liveOn.Store(true)
}

// TrackSpan registers an in-flight span with the live view and returns the
// closure that retires it. When live tracking is off (or r is nil) it
// returns a no-op without taking any lock.
func (r *Recorder) TrackSpan(kind, name, workload string, worker int) func() {
	if r == nil || !r.liveOn.Load() {
		return func() {}
	}
	id := r.liveIDs.Add(1)
	s := LiveSpan{ID: id, Kind: kind, Name: name, Workload: workload, Worker: worker, StartNS: r.Clock()}
	r.liveMu.Lock()
	if r.live != nil {
		r.live[id] = s
	}
	r.liveMu.Unlock()
	return func() {
		r.liveMu.Lock()
		delete(r.live, id)
		r.liveMu.Unlock()
	}
}

// InFlight snapshots the live spans, oldest first (ties broken by id so
// the order is total).
func (r *Recorder) InFlight() []LiveSpan {
	if r == nil {
		return nil
	}
	r.liveMu.Lock()
	out := make([]LiveSpan, 0, len(r.live))
	for _, s := range r.live {
		out = append(out, s)
	}
	r.liveMu.Unlock()
	sortLiveSpans(out)
	return out
}

func sortLiveSpans(s []LiveSpan) {
	for i := 1; i < len(s); i++ { // insertion sort: the in-flight set is tiny
		for j := i; j > 0 && (s[j].StartNS < s[j-1].StartNS ||
			(s[j].StartNS == s[j-1].StartNS && s[j].ID < s[j-1].ID)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CampaignSpan opens the root span of a campaign and returns its id plus
// the closure that emits the span event; call it after the run's last
// journal event of interest (conventionally just before RunEnd). Children
// parent to the returned id via Evaluator.SpanParent. Without a journal it
// returns (0, no-op) and allocates nothing, preserving the byte-identical
// journal contract — 0 is never a valid span id, so instrumented code can
// use "parent != 0" as the spans-enabled test.
func (r *Recorder) CampaignSpan(name string) (int64, func()) {
	if r == nil || !r.JournalEnabled() {
		return 0, func() {}
	}
	id := r.NextSpan()
	start := r.Clock()
	done := r.TrackSpan(SpanCampaign, name, "", 0)
	return id, func() {
		done()
		r.Emit(&SpanEvent{Span: id, SpanKind: SpanCampaign, Name: name, StartNS: start, DurNS: r.Clock() - start})
	}
}

// spanLive is the recorder state behind live span tracking, kept in its
// own struct so Recorder's field list stays readable.
type spanLive struct {
	liveOn  atomic.Bool
	liveIDs atomic.Int64
	liveMu  sync.Mutex
	live    map[int64]LiveSpan
}
