package pipetrace

import "sync"

// tracePool recycles Trace buffers — the records array plus the annotation
// arenas — across simulator runs. Repeated evaluations of the same trace
// length (the DSE loop's steady state) then run allocation-free in the
// record path: the pool mirrors the DEG stage's buffer pools from the
// windowed analyzer.
var tracePool sync.Pool

// GetTrace returns an empty trace whose record storage can hold at least
// capacity records without growing, reusing a released trace when one is
// available. Callers that finish with the trace — and can prove no other
// goroutine still reads it — should hand it back with Release; callers that
// keep the trace alive simply never release it, and the pool stays out of
// the picture.
func GetTrace(capacity int) *Trace {
	if v := tracePool.Get(); v != nil {
		t := v.(*Trace)
		if cap(t.Records) < capacity {
			t.Records = make([]Record, 0, capacity)
		}
		return t
	}
	return &Trace{Records: make([]Record, 0, capacity)}
}

// Release resets the trace and returns its storage to the pool. The caller
// must not touch the trace — or any Record or annotation slice obtained
// from it — after Release: the next GetTrace may hand the same backing
// storage to a concurrent simulation.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.Records = t.Records[:0]
	t.Cycles = 0
	t.deps = t.deps[:0]
	t.prods = t.prods[:0]
	tracePool.Put(t)
}
