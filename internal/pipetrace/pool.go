package pipetrace

import (
	"sync"
	"sync/atomic"
)

// tracePool recycles Trace buffers — the records array plus the annotation
// arenas — across simulator runs. Repeated evaluations of the same trace
// length (the DSE loop's steady state) then run allocation-free in the
// record path: the pool mirrors the DEG stage's buffer pools from the
// windowed analyzer.
var tracePool sync.Pool

// PoolStats counts trace-pool traffic. The counters exist so tests can
// assert lifecycle invariants — every acquired trace is eventually
// released even when stage timeouts abandon readers — without poking at
// sync.Pool internals; they are three atomic adds per simulator run, far
// off the per-record hot path.
type PoolStats struct {
	// Gets counts GetTrace calls; Puts counts traces actually returned to
	// the pool by the final Release. Gets - Puts is the number of live
	// (pool-owned, unreleased) traces.
	Gets, Puts int64
	// Retains counts Retain calls (extra references taken on live traces).
	Retains int64
}

var poolGets, poolPuts, poolRetains atomic.Int64

// TracePoolStats returns a snapshot of the pool counters.
func TracePoolStats() PoolStats {
	return PoolStats{
		Gets:    poolGets.Load(),
		Puts:    poolPuts.Load(),
		Retains: poolRetains.Load(),
	}
}

// GetTrace returns an empty trace whose record storage can hold at least
// capacity records without growing, reusing a released trace when one is
// available. The trace starts with one reference — the caller's ownership.
// Callers that finish with the trace hand it back with Release; code that
// needs the trace to outlive the owner (an abandoned timed-out analysis
// attempt, a concurrent reader) takes its own reference with Retain and
// pairs it with Release, and the storage recycles when the last reference
// drops.
func GetTrace(capacity int) *Trace {
	poolGets.Add(1)
	if v := tracePool.Get(); v != nil {
		t := v.(*Trace)
		if cap(t.Records) < capacity {
			t.Records = make([]Record, 0, capacity)
		}
		atomic.StoreInt32(&t.refs, 1)
		t.pooled = true
		return t
	}
	t := &Trace{Records: make([]Record, 0, capacity), refs: 1, pooled: true}
	return t
}

// Retain takes an additional reference on the trace, keeping its storage
// out of the pool until a matching Release. It must be called while the
// caller already holds a live reference (taking a reference on a trace
// whose last Release already ran is a use-after-free). Nil-safe.
func (t *Trace) Retain() {
	if t == nil {
		return
	}
	poolRetains.Add(1)
	atomic.AddInt32(&t.refs, 1)
}

// Release drops one reference; the last Release resets the trace and
// returns its storage to the pool. The dropping caller must not touch the
// trace — or any Record or annotation slice obtained from it — after
// Release: once the final reference drops, the next GetTrace may hand the
// same backing storage to a concurrent simulation.
//
// Traces constructed directly (&Trace{}, not via GetTrace) carry no pool
// reference; Release resets them without pooling, preserving the old
// contract for such one-off traces.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	if t.pooled {
		switch refs := atomic.AddInt32(&t.refs, -1); {
		case refs > 0:
			return
		case refs < 0:
			// A Release beyond the last reference used to fall through and
			// Put the trace a second time, so two later GetTrace calls could
			// hand out the SAME *Trace to two concurrent simulations — in
			// batch mode, one lane silently writing another lane's records.
			// The refcount contract is load-bearing; violating it must be
			// loud, not a latent cross-config aliasing bug. (pooled stays
			// set across the pool round-trip exactly so this over-release
			// lands here instead of silently resetting someone's trace.)
			panic("pipetrace: Trace released more times than retained")
		}
		t.Records = t.Records[:0]
		t.Cycles = 0
		t.Arena.reset()
		poolPuts.Add(1)
		tracePool.Put(t)
		return
	}
	t.Records = t.Records[:0]
	t.Cycles = 0
	t.Arena.reset()
}
