package pipetrace

import "sync"

// Chunk is one fixed-size batch of committed-instruction records in the
// streaming sim→DEG pipeline. The simulator fills a chunk — records plus
// the arena their annotation slices are interned into — and hands it to
// the analysis sink; ownership passes with the handoff.
//
// Ownership rules (the streaming pipeline's memory contract):
//
//   - The producer (simulator) owns a chunk from GetChunk until its sink
//     callback returns; it must not touch the chunk afterwards.
//   - The consumer (stream analyzer) owns it from the sink call until it
//     calls Release — which it may only do once no retained Record (or
//     annotation subslice) from the chunk can be read again.
//   - Release recycles the chunk's storage through a pool shared with
//     future chunks, so a late read after Release observes another
//     simulation's records; the analyzer therefore holds every chunk
//     whose records overlap a still-unanalyzed window.
type Chunk struct {
	// Records hold globally sequenced committed instructions: Seq is the
	// commit index in the whole run, not the chunk.
	Records []Record

	// Arena backs the records' annotation slices, exactly as a Trace's
	// arena backs a batch run's records.
	Arena
}

var chunkPool sync.Pool

// GetChunk returns an empty chunk whose record storage can hold at least
// capacity records without growing, reusing a released chunk when one is
// available.
func GetChunk(capacity int) *Chunk {
	if v := chunkPool.Get(); v != nil {
		c := v.(*Chunk)
		if cap(c.Records) < capacity {
			c.Records = make([]Record, 0, capacity)
		}
		return c
	}
	return &Chunk{Records: make([]Record, 0, capacity)}
}

// Release resets the chunk and returns its storage to the pool. The caller
// must not touch the chunk — or any Record or annotation slice obtained
// from it — afterwards. Nil-safe.
func (c *Chunk) Release() {
	if c == nil {
		return
	}
	c.Records = c.Records[:0]
	c.Arena.reset()
	chunkPool.Put(c)
}
