package pipetrace

import (
	"sync"
	"sync/atomic"
)

// Chunk is one fixed-size batch of committed-instruction records in the
// streaming sim→DEG pipeline. The simulator fills a chunk — records plus
// the arena their annotation slices are interned into — and hands it to
// the analysis sink; ownership passes with the handoff.
//
// Ownership rules (the streaming pipeline's memory contract):
//
//   - The producer (simulator) owns a chunk from GetChunk until its sink
//     callback returns; it must not touch the chunk afterwards.
//   - The consumer (stream analyzer) owns it from the sink call until it
//     drops its reference with Release — which it may only do once no
//     retained Record (or annotation subslice) it still reads aliases the
//     chunk.
//   - Chunks are reference-counted like pooled Traces: GetChunk hands out
//     one reference, Retain takes extra ones (a parallel analysis worker
//     pins the chunks backing the window it reads), and the storage
//     recycles when the last reference drops. Only then may a future
//     GetChunk alias it, so a retained window's records safely outlive the
//     sequential release point.
//   - The final Release recycles the chunk's storage through a pool shared
//     with future chunks, so a late read after it observes another
//     simulation's records; the analyzer therefore holds a reference on
//     every chunk whose records overlap a still-unanalyzed window.
type Chunk struct {
	// Records hold globally sequenced committed instructions: Seq is the
	// commit index in the whole run, not the chunk.
	Records []Record

	// Arena backs the records' annotation slices, exactly as a Trace's
	// arena backs a batch run's records.
	Arena

	refs int32
}

var chunkPool sync.Pool

// GetChunk returns an empty chunk whose record storage can hold at least
// capacity records without growing, reusing a released chunk when one is
// available. The chunk starts with one reference — the caller's ownership.
func GetChunk(capacity int) *Chunk {
	if v := chunkPool.Get(); v != nil {
		c := v.(*Chunk)
		if cap(c.Records) < capacity {
			c.Records = make([]Record, 0, capacity)
		}
		atomic.StoreInt32(&c.refs, 1)
		return c
	}
	return &Chunk{Records: make([]Record, 0, capacity), refs: 1}
}

// Retain takes an additional reference on the chunk, keeping its storage
// out of the pool until a matching Release. It must be called while the
// caller already holds a live reference (taking a reference on a chunk
// whose last Release already ran is a use-after-free). Nil-safe.
func (c *Chunk) Retain() {
	if c == nil {
		return
	}
	atomic.AddInt32(&c.refs, 1)
}

// Release drops one reference; the last Release resets the chunk and
// returns its storage to the pool. The dropping caller must not touch the
// chunk — or any Record or annotation slice obtained from it — afterwards.
// Releasing beyond the last reference panics: the refcount contract guards
// against the pool handing one chunk to two concurrent simulations, so a
// violation must be loud, not a latent aliasing bug. Nil-safe.
func (c *Chunk) Release() {
	if c == nil {
		return
	}
	switch refs := atomic.AddInt32(&c.refs, -1); {
	case refs > 0:
		return
	case refs < 0:
		panic("pipetrace: Chunk released more times than retained")
	}
	c.Records = c.Records[:0]
	c.Arena.reset()
	chunkPool.Put(c)
}
