package pipetrace

import (
	"testing"

	"archexplorer/internal/isa"
)

func validRecord(seq int, base int64) Record {
	r := NewRecord(seq, 0x1000+uint64(4*seq), isa.OpIntAlu)
	for s := SF1; s <= SC; s++ {
		if s == SM {
			continue
		}
		r.Stamp[s] = base + int64(s)
	}
	return r
}

func TestNewRecordDefaults(t *testing.T) {
	r := NewRecord(3, 0x10, isa.OpLoad)
	if r.Seq != 3 || r.PC != 0x10 || r.Class != isa.OpLoad {
		t.Fatal("fields not set")
	}
	if r.FUProducer != -1 || r.PortProducer != -1 || r.MispredictFrom != -1 {
		t.Fatal("producers must default to -1")
	}
	for s := 0; s < NumStages; s++ {
		if r.Stamp[s] != NoStamp {
			t.Fatal("stamps must default to NoStamp")
		}
	}
}

func TestRecordValidate(t *testing.T) {
	r := validRecord(0, 10)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// M may be absent; other stages may not.
	r.Stamp[SDC] = NoStamp
	if err := r.Validate(); err == nil {
		t.Fatal("missing DC must fail")
	}
	r = validRecord(0, 10)
	r.Stamp[SP] = r.Stamp[SI] - 5
	if err := r.Validate(); err == nil {
		t.Fatal("non-monotone stamps must fail")
	}
}

func TestRecordSpan(t *testing.T) {
	r := validRecord(0, 100)
	if got := r.Span(); got != int64(SC) {
		t.Fatalf("span %d", got)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		tr.Records = append(tr.Records, validRecord(i, int64(10*i)))
	}
	tr.Cycles = tr.Records[4].Stamp[SC] + 1
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// Out-of-order commits must fail.
	bad := *tr
	bad.Records = append([]Record(nil), tr.Records...)
	bad.Records[3].Stamp[SC] = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("commit reordering must fail validation")
	}

	// Sparse sequence numbers must fail.
	bad2 := *tr
	bad2.Records = append([]Record(nil), tr.Records...)
	bad2.Records[2].Seq = 7
	if err := bad2.Validate(); err == nil {
		t.Fatal("sparse seq must fail validation")
	}

	// Cycles earlier than the last commit must fail.
	bad3 := *tr
	bad3.Cycles = 1
	if err := bad3.Validate(); err == nil {
		t.Fatal("short Cycles must fail validation")
	}
}

func TestIPC(t *testing.T) {
	tr := &Trace{Cycles: 100}
	for i := 0; i < 50; i++ {
		tr.Records = append(tr.Records, validRecord(i, int64(i)))
	}
	if got := tr.IPC(); got != 0.5 {
		t.Fatalf("IPC %v", got)
	}
	empty := &Trace{}
	if empty.IPC() != 0 {
		t.Fatal("empty trace IPC must be 0")
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"F1", "F2", "F", "DC", "R", "DP", "I", "M", "P", "C"}
	for i, name := range want {
		if Stage(i).String() != name {
			t.Errorf("stage %d named %q", i, Stage(i))
		}
	}
}
