package pipetrace

// Arena is the chunked backing storage for record annotation slices
// (ResourceDeps, DataProducers). The simulator interns each record's
// annotations into the arena instead of allocating one slice per record;
// the records then hold three-index subslices of arena chunks, so the
// arena must live exactly as long as the records that point into it.
//
// Both the batch Trace and the streaming Chunk embed an Arena: in batch
// mode one arena backs the whole trace, in streaming mode each chunk owns
// the arena its records' annotations live in, so releasing a chunk
// releases its annotation storage with it.
type Arena struct {
	deps  []ResourceDep
	prods []int
}

// InternDeps copies a record's resource dependences into the arena and
// returns a stable full-capacity subslice (nil for no deps). The returned
// slice is content-identical to an independently allocated copy; only its
// backing storage is shared with the arena.
func (a *Arena) InternDeps(src []ResourceDep) []ResourceDep {
	if len(src) == 0 {
		return nil
	}
	if cap(a.deps)-len(a.deps) < len(src) {
		c := 2 * cap(a.deps)
		if c < 1024 {
			c = 1024
		}
		// The retired chunk stays referenced by earlier records.
		a.deps = make([]ResourceDep, 0, c)
	}
	start := len(a.deps)
	a.deps = append(a.deps, src...)
	return a.deps[start:len(a.deps):len(a.deps)]
}

// InternProducers is InternDeps for data-producer sequence numbers.
func (a *Arena) InternProducers(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	if cap(a.prods)-len(a.prods) < len(src) {
		c := 2 * cap(a.prods)
		if c < 1024 {
			c = 1024
		}
		a.prods = make([]int, 0, c)
	}
	start := len(a.prods)
	a.prods = append(a.prods, src...)
	return a.prods[start:len(a.prods):len(a.prods)]
}

// reset truncates the arena for reuse, keeping the current chunk's
// capacity. Earlier retired chunks are dropped for the GC.
func (a *Arena) reset() {
	a.deps = a.deps[:0]
	a.prods = a.prods[:0]
}
