package pipetrace

import "testing"

// TestTraceRetainRelease pins the ownership-handoff contract: a pooled
// trace recycles exactly when its last reference drops, however many
// holders took references in between.
func TestTraceRetainRelease(t *testing.T) {
	base := TracePoolStats()

	tr := GetTrace(8)
	tr.Records = append(tr.Records, NewRecord(0, 0x40, 0))
	tr.Retain() // a second holder (e.g. an abandoned analysis attempt)
	tr.Retain()

	tr.Release() // owner drops; two holders remain
	tr.Release()
	if st := TracePoolStats(); st.Puts != base.Puts {
		t.Fatalf("trace pooled with a live reference: %+v", st)
	}
	if len(tr.Records) != 1 {
		t.Fatal("records reset before the last reference dropped")
	}
	tr.Release() // last holder: now it recycles
	st := TracePoolStats()
	if st.Puts != base.Puts+1 {
		t.Fatalf("final release did not pool the trace: %+v (base %+v)", st, base)
	}
	if st.Gets != base.Gets+1 || st.Retains != base.Retains+2 {
		t.Fatalf("counter mismatch: %+v (base %+v)", st, base)
	}

	// A second acquisition may reuse the same storage; it must come back
	// reset and independently refcounted.
	tr2 := GetTrace(8)
	if len(tr2.Records) != 0 || len(tr2.deps) != 0 || len(tr2.prods) != 0 {
		t.Fatal("recycled trace not reset")
	}
	tr2.Release()
}

// TestDirectTraceNeverPools: ad-hoc &Trace{} values reset on Release but
// never enter the pool — they carry no reference accounting.
func TestDirectTraceNeverPools(t *testing.T) {
	base := TracePoolStats()
	tr := &Trace{Cycles: 42}
	tr.Records = append(tr.Records, NewRecord(0, 0x40, 0))
	tr.Release()
	if len(tr.Records) != 0 || tr.Cycles != 0 {
		t.Fatal("direct trace not reset by Release")
	}
	if st := TracePoolStats(); st.Puts != base.Puts || st.Gets != base.Gets {
		t.Fatalf("direct trace touched the pool: %+v (base %+v)", st, base)
	}
	// Nil-safety mirrors Release.
	var nilTr *Trace
	nilTr.Retain()
	nilTr.Release()
}

// TestChunkReleaseRecycles: chunks round-trip through their pool with
// records and arena reset.
func TestChunkReleaseRecycles(t *testing.T) {
	c := GetChunk(4)
	c.Records = append(c.Records, NewRecord(0, 0x40, 0))
	c.Records[0].ResourceDeps = c.InternDeps([]ResourceDep{{Producer: 3}})
	c.Records[0].DataProducers = c.InternProducers([]int{1, 2})
	c.Release()

	c2 := GetChunk(4)
	if len(c2.Records) != 0 || len(c2.deps) != 0 || len(c2.prods) != 0 {
		t.Fatal("recycled chunk not reset")
	}
	c2.Release()
	var nilChunk *Chunk
	nilChunk.Release()
}

// TestReleaseBeyondZeroPanics pins the batch-mode aliasing guard: dropping
// more references than were ever taken used to drive the refcount negative
// and fall through to a second reset+Put, after which two later GetTrace
// calls could hand the SAME *Trace to two concurrent simulations (one
// batch lane scribbling over another's records). The contract violation
// must be loud instead.
func TestReleaseBeyondZeroPanics(t *testing.T) {
	tr := GetTrace(4)
	tr.Retain()
	tr.Release() // holder drops (refs 2 -> 1)
	tr.Release() // owner drops: final release, trace recycles
	defer func() {
		if recover() == nil {
			t.Fatal("Release beyond the last reference did not panic")
		}
	}()
	tr.Release() // stale extra release: must panic, not double-Put
}
