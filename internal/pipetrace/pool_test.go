package pipetrace

import (
	"testing"

	"archexplorer/internal/uarch"
)

func TestGetTraceCapacityAndReuse(t *testing.T) {
	tr := GetTrace(128)
	if len(tr.Records) != 0 || cap(tr.Records) < 128 {
		t.Fatalf("fresh trace: len=%d cap=%d, want 0/>=128", len(tr.Records), cap(tr.Records))
	}
	tr.Records = append(tr.Records, NewRecord(0, 0x100, 0))
	tr.Cycles = 42
	tr.InternDeps([]ResourceDep{{Resource: uarch.ResROB, Producer: 7}})
	tr.InternProducers([]int{1, 2})
	tr.Release()

	// A released trace comes back empty whatever storage it reuses.
	got := GetTrace(64)
	if len(got.Records) != 0 || got.Cycles != 0 {
		t.Fatalf("reused trace not reset: len=%d cycles=%d", len(got.Records), got.Cycles)
	}
	if len(got.deps) != 0 || len(got.prods) != 0 {
		t.Fatalf("reused trace kept arena contents: deps=%d prods=%d", len(got.deps), len(got.prods))
	}
	got.Release()

	// Asking for more capacity than the pooled trace holds regrows it.
	big := GetTrace(100000)
	if cap(big.Records) < 100000 {
		t.Fatalf("capacity not honored: cap=%d", cap(big.Records))
	}
	big.Release()
}

func TestReleaseNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Release() // must not panic
}

func TestInternDepsContentAndStability(t *testing.T) {
	tr := &Trace{}
	if got := tr.InternDeps(nil); got != nil {
		t.Fatalf("empty intern should return nil, got %v", got)
	}

	// Intern enough batches to force at least one arena chunk retirement
	// and verify earlier slices keep their contents (the retired chunk
	// stays referenced by the returned subslices).
	var slices [][]ResourceDep
	var want [][]ResourceDep
	for i := 0; i < 2000; i++ {
		src := []ResourceDep{
			{Resource: uarch.ResROB, Producer: i},
			{Resource: uarch.ResIQ, Producer: i + 1},
		}
		slices = append(slices, tr.InternDeps(src))
		want = append(want, src)
	}
	for i := range slices {
		if len(slices[i]) != 2 || slices[i][0] != want[i][0] || slices[i][1] != want[i][1] {
			t.Fatalf("interned slice %d corrupted: %v want %v", i, slices[i], want[i])
		}
	}

	// Full-capacity subslices: an append to one interned slice must not
	// overwrite its neighbor.
	a := tr.InternDeps([]ResourceDep{{Resource: uarch.ResLQ, Producer: 1}})
	b := tr.InternDeps([]ResourceDep{{Resource: uarch.ResSQ, Producer: 2}})
	_ = append(a, ResourceDep{Resource: uarch.ResROB, Producer: 99})
	if b[0].Producer != 2 || b[0].Resource != uarch.ResSQ {
		t.Fatalf("append through interned slice clobbered neighbor: %v", b[0])
	}
}

func TestInternProducersContent(t *testing.T) {
	tr := &Trace{}
	if got := tr.InternProducers(nil); got != nil {
		t.Fatalf("empty intern should return nil, got %v", got)
	}
	var slices [][]int
	for i := 0; i < 3000; i++ {
		slices = append(slices, tr.InternProducers([]int{i, i * 2}))
	}
	for i := range slices {
		if slices[i][0] != i || slices[i][1] != i*2 {
			t.Fatalf("interned producers %d corrupted: %v", i, slices[i])
		}
	}
}
