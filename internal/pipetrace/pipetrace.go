// Package pipetrace defines the per-instruction microexecution record the
// simulator emits and the DEG formulation consumes.
//
// This is the repo's equivalent of the paper's "modified GEM5 to generate
// dynamic timing information": every committed instruction carries the
// cycle of each pipeline event (the vertices of Figure 7) plus dependence
// annotations resolved by the simulator's scoreboard — which instruction's
// released resource entry unblocked a rename stall, which instruction last
// used the functional unit or memory port we acquired, which producers our
// source operands waited on, and which mispredicted branch (re)started our
// fetch.
package pipetrace

import (
	"fmt"

	"archexplorer/internal/isa"
	"archexplorer/internal/uarch"
)

// Stage enumerates the pipeline events of the new DEG formulation
// (Figure 7): F1 sends the I$ request, F2 receives the response, F copies
// into the fetch queue, DC decodes, R renames, DP dispatches, I issues,
// M starts the memory access (memory ops only), P completes execution,
// C commits.
type Stage uint8

const (
	SF1 Stage = iota
	SF2
	SF
	SDC
	SR
	SDP
	SI
	SM
	SP
	SC
	numStages
)

// NumStages is the number of pipeline events per instruction.
const NumStages = int(numStages)

var stageNames = [...]string{"F1", "F2", "F", "DC", "R", "DP", "I", "M", "P", "C"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// NoStamp marks a stage that did not occur (M for non-memory ops).
const NoStamp int64 = -1

// ResourceDep records one rename-stall dependence: the instruction had to
// wait until Producer released an entry of Resource (Table 2's
// R(i) -> R(j) hardware-resource dependence).
type ResourceDep struct {
	Resource uarch.Resource
	Producer int // dynamic sequence number of the releasing instruction
}

// Record is the complete microexecution history of one committed
// instruction.
type Record struct {
	Seq   int // dynamic sequence number, 0-based commit order
	PC    uint64
	Class isa.OpClass

	// Stamp holds the cycle of each pipeline event; NoStamp if absent.
	Stamp [NumStages]int64

	// ResourceDeps lists the back-end structures whose exhaustion stalled
	// this instruction at rename, with the releasing producers.
	ResourceDeps []ResourceDep

	// FUProducer is the sequence number of the instruction that last
	// released the functional unit this one executes on, when acquiring
	// the unit delayed issue; -1 otherwise. FURes names the unit class.
	FUProducer int
	FURes      uarch.Resource

	// PortProducer is like FUProducer for the cache read/write port.
	PortProducer int

	// DataProducers are sequence numbers of in-window producers of this
	// instruction's source operands (true data dependence, I(i) -> I(j)).
	DataProducers []int

	// MispredictFrom is the sequence number of the mispredicted branch
	// whose resolution restarted the fetch of this instruction; -1 if the
	// fetch was not a misprediction refill.
	MispredictFrom int

	// Mispredicted marks branches the front end predicted incorrectly.
	Mispredicted bool

	// Latencies observed by this instruction.
	ICacheLat int64 // F1 -> F2 instruction fetch latency
	DCacheLat int64 // data access latency (memory ops)
	ExecLat   int64 // functional-unit latency
}

// NewRecord returns a Record with all stamps empty and producers cleared.
func NewRecord(seq int, pc uint64, class isa.OpClass) Record {
	var r Record
	r.Reset(seq, pc, class)
	return r
}

// Reset reinitializes r in place to exactly the state NewRecord returns.
// The simulator fills pooled record storage through it — resetting the
// slot a pipeline stage is about to write instead of building a ~200-byte
// struct on the stack and copying it into the slice per instruction. Every
// field is (re)assigned, so slots recycled by the trace pool cannot leak
// stale stamps or annotation subslices.
func (r *Record) Reset(seq int, pc uint64, class isa.OpClass) {
	// Field-wise on purpose: `*r = Record{...}` materializes a ~200-byte
	// temporary and duffcopies it into the slot, which is the exact copy
	// this method exists to avoid.
	r.Seq = seq
	r.PC = pc
	r.Class = class
	for i := range r.Stamp {
		r.Stamp[i] = NoStamp
	}
	r.ResourceDeps = nil
	r.FUProducer = -1
	r.FURes = 0
	r.PortProducer = -1
	r.DataProducers = nil
	r.MispredictFrom = -1
	r.Mispredicted = false
	r.ICacheLat = 0
	r.DCacheLat = 0
	r.ExecLat = 0
}

// AppendReset extends recs by one record — reusing the existing slot in
// place when capacity allows, as it always does for pooled trace and chunk
// storage — and resets that slot to the NewRecord state. It returns the
// extended slice; the caller fills the last element through a pointer.
func AppendReset(recs []Record, seq int, pc uint64, class isa.OpClass) []Record {
	if len(recs) < cap(recs) {
		recs = recs[:len(recs)+1]
	} else {
		recs = append(recs, Record{})
	}
	recs[len(recs)-1].Reset(seq, pc, class)
	return recs
}

// Validate checks the monotonicity invariant: every present stage stamp is
// ordered F1 <= F2 <= F <= DC <= R <= DP <= I <= (M) <= P <= C.
func (r *Record) Validate() error {
	last := int64(0)
	lastStage := SF1
	for s := SF1; s < numStages; s++ {
		t := r.Stamp[s]
		if t == NoStamp {
			if s == SM { // only M may be absent
				continue
			}
			return fmt.Errorf("pipetrace: seq %d missing stage %s", r.Seq, s)
		}
		if t < last {
			return fmt.Errorf("pipetrace: seq %d stage %s at %d precedes %s at %d",
				r.Seq, s, t, lastStage, last)
		}
		last, lastStage = t, s
	}
	return nil
}

// Span returns the instruction's lifetime in cycles (C - F1).
func (r *Record) Span() int64 { return r.Stamp[SC] - r.Stamp[SF1] }

// HasStage reports whether the stage event occurred (M is absent for
// non-memory instructions).
func (r *Record) HasStage(s Stage) bool { return r.Stamp[s] != NoStamp }

// Trace is the microexecution of a whole workload on one design point.
//
// A Trace owns arena storage for its records' annotation slices
// (ResourceDeps, DataProducers): the simulator interns each record's
// annotations into the arena instead of allocating one slice per record,
// and Release recycles the whole bundle — records and arenas — through the
// trace pool for the next run of the same length.
type Trace struct {
	Records []Record
	Cycles  int64 // total simulated cycles (commit time of the last instruction)

	// Arena is the backing storage for the records' annotation slices.
	// Records hold three-index subslices of it, so the arena lives exactly
	// as long as the records that point into it.
	Arena

	// refs counts the owners that may still read this trace; see Retain.
	// A plain int32 driven by sync/atomic functions (not atomic.Int32) so
	// value copies of ad-hoc traces keep working; pooled traces are never
	// copied. pooled marks traces that came from GetTrace: only those are
	// refcounted and recycled — a zero-valued &Trace{} resets on Release
	// but never enters the pool.
	refs   int32
	pooled bool
}

// Span returns the wall-clock interval the trace covers: last commit minus
// first fetch. Zero for an empty trace.
func (t *Trace) Span() int64 {
	n := len(t.Records)
	if n == 0 {
		return 0
	}
	return t.Records[n-1].Stamp[SC] - t.Records[0].Stamp[SF1]
}

// IPC returns committed instructions per cycle.
func (t *Trace) IPC() float64 {
	if t.Cycles == 0 {
		return 0
	}
	return float64(len(t.Records)) / float64(t.Cycles)
}

// Validate checks every record plus the whole-trace invariants: sequence
// numbers are dense and commits are in order.
func (t *Trace) Validate() error {
	var lastCommit int64
	for i := range t.Records {
		r := &t.Records[i]
		if r.Seq != i {
			return fmt.Errorf("pipetrace: record %d has seq %d", i, r.Seq)
		}
		if err := r.Validate(); err != nil {
			return err
		}
		if r.Stamp[SC] < lastCommit {
			return fmt.Errorf("pipetrace: seq %d commits at %d before predecessor at %d",
				r.Seq, r.Stamp[SC], lastCommit)
		}
		lastCommit = r.Stamp[SC]
	}
	if n := len(t.Records); n > 0 && t.Cycles < t.Records[n-1].Stamp[SC] {
		return fmt.Errorf("pipetrace: total cycles %d precede last commit %d",
			t.Cycles, t.Records[n-1].Stamp[SC])
	}
	return nil
}
