package dse

import (
	"bytes"
	"testing"

	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// litePoints picks a handful of diverse design points to compare lite and
// full evaluations over.
func litePoints(space *uarch.Space) []uarch.Point {
	pts := []uarch.Point{space.Nearest(uarch.Baseline())}
	cfg := uarch.Baseline()
	cfg.ROBEntries = 64
	cfg.IQEntries = 16
	pts = append(pts, space.Nearest(cfg))
	cfg = uarch.Baseline()
	cfg.Width = 2
	cfg.IntALU = 2
	pts = append(pts, space.Nearest(cfg))
	return pts
}

// TestLiteEvaluationMatchesFull is the evaluator half of the probe-lite
// contract: an evaluation without DEG analysis (which runs the simulator in
// lite mode, skipping all annotation recording) must report the exact same
// IPC, PPA, and per-workload results as the annotated run — the annotations
// may only feed the DEG, never the timing.
func TestLiteEvaluationMatchesFull(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		space := uarch.StandardSpace()
		pts := litePoints(space)

		liteEv := NewEvaluator(space, miniSuite(), 1500)
		liteEv.Parallelism = parallelism
		liteOut, err := liteEv.EvaluateBatch(pts, false)
		if err != nil {
			t.Fatal(err)
		}

		fullEv := NewEvaluator(space, miniSuite(), 1500)
		fullEv.Parallelism = parallelism
		fullOut, err := fullEv.EvaluateBatch(pts, true)
		if err != nil {
			t.Fatal(err)
		}

		for i := range pts {
			l, f := liteOut[i], fullOut[i]
			if l.PPA != f.PPA {
				t.Fatalf("parallelism %d, point %d: PPA diverges lite %+v full %+v",
					parallelism, i, l.PPA, f.PPA)
			}
			for k := range l.PerWorkloadIPC {
				if l.PerWorkloadIPC[k] != f.PerWorkloadIPC[k] {
					t.Fatalf("parallelism %d, point %d, workload %d: IPC diverges lite %v full %v",
						parallelism, i, k, l.PerWorkloadIPC[k], f.PerWorkloadIPC[k])
				}
			}
			if l.SimInsts != f.SimInsts {
				t.Fatalf("parallelism %d, point %d: SimInsts diverges lite %d full %d",
					parallelism, i, l.SimInsts, f.SimInsts)
			}
			if l.Report != nil {
				t.Fatalf("parallelism %d, point %d: lite evaluation carries a DEG report", parallelism, i)
			}
			if f.Report == nil {
				t.Fatalf("parallelism %d, point %d: full evaluation lost its DEG report", parallelism, i)
			}
		}
	}
}

// TestLiteJournalDeterministic runs the same lite batch sequentially and
// fanned out, with journals attached, and requires the deterministic fields
// of the two journals to be identical — probe-lite and trace pooling must
// not leak scheduling order into the telemetry stream.
func TestLiteJournalDeterministic(t *testing.T) {
	run := func(parallelism int) ([]obs.Event, *Evaluator) {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
		ev.Parallelism = parallelism
		rec := obs.New()
		var buf bytes.Buffer
		rec.SetJournalWriter(&buf)
		ev.Obs = rec
		if _, err := ev.EvaluateBatch(litePoints(ev.Space), false); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadJournal(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return events, ev
	}

	seqEvents, seqEv := run(1)
	parEvents, parEv := run(4)

	seq := deterministicTrace(t, seqEvents)
	par := deterministicTrace(t, parEvents)
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("journal diverges at event %d:\n  seq: %+v\n  par: %+v", i, seq[i], par[i])
		}
	}
	for i := range seqEv.History {
		sameEvaluation(t, "lite history", seqEv.History[i], parEv.History[i])
		if seqEv.History[i].SimInsts != parEv.History[i].SimInsts {
			t.Fatalf("history %d: SimInsts differ across parallelism", i)
		}
	}
}
