package dse

import (
	"math/rand"
	"testing"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// sameEvaluation compares the deterministic fields of two evaluations
// (timings are excluded — they are the only fields allowed to vary).
func sameEvaluation(t *testing.T, label string, a, b *Evaluation) {
	t.Helper()
	if a.Point != b.Point {
		t.Fatalf("%s: points differ: %v vs %v", label, a.Point, b.Point)
	}
	if a.Config != b.Config {
		t.Fatalf("%s: configs differ", label)
	}
	if a.PPA != b.PPA {
		t.Fatalf("%s: PPA differs: %+v vs %+v", label, a.PPA, b.PPA)
	}
	if a.Probe != b.Probe {
		t.Fatalf("%s: probe flags differ", label)
	}
	if a.SimsAt != b.SimsAt {
		t.Fatalf("%s: SimsAt differs: %v vs %v", label, a.SimsAt, b.SimsAt)
	}
	if len(a.PerWorkloadIPC) != len(b.PerWorkloadIPC) {
		t.Fatalf("%s: per-workload IPC lengths differ", label)
	}
	for i := range a.PerWorkloadIPC {
		if a.PerWorkloadIPC[i] != b.PerWorkloadIPC[i] {
			t.Fatalf("%s: workload %d IPC differs: %v vs %v",
				label, i, a.PerWorkloadIPC[i], b.PerWorkloadIPC[i])
		}
	}
	if (a.Report == nil) != (b.Report == nil) {
		t.Fatalf("%s: one report missing", label)
	}
	if a.Report != nil {
		if a.Report.L != b.Report.L || a.Report.Base != b.Report.Base {
			t.Fatalf("%s: report L/Base differ", label)
		}
		for r := range a.Report.Contrib {
			if a.Report.Contrib[r] != b.Report.Contrib[r] {
				t.Fatalf("%s: report contrib %d differs", label, r)
			}
		}
	}
}

// TestParallelismDeterminism is the tentpole's contract: an explorer run at
// Parallelism 4 must leave byte-identical evaluations, budget accounting,
// and history order to the fully sequential Parallelism 1 run. ArchExplorer
// exercises every evaluator path — probes, batches, cache upgrades, and
// full re-evaluations.
func TestParallelismDeterminism(t *testing.T) {
	run := func(parallelism int) *Evaluator {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		ev.Parallelism = parallelism
		if err := NewArchExplorer(7).Run(ev, 40); err != nil {
			t.Fatal(err)
		}
		return ev
	}
	seq := run(1)
	par := run(4)

	if seq.Sims != par.Sims {
		t.Fatalf("Sims differ: sequential %v, parallel %v", seq.Sims, par.Sims)
	}
	if len(seq.History) != len(par.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(seq.History), len(par.History))
	}
	for i := range seq.History {
		sameEvaluation(t, "history", seq.History[i], par.History[i])
	}
}

// TestBatchMatchesSequentialEvaluate checks EvaluateBatch against a loop of
// single Evaluate calls on a fresh evaluator: same results, same budget,
// same history.
func TestBatchMatchesSequentialEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	space := uarch.StandardSpace()
	pts := make([]uarch.Point, 6)
	for i := range pts {
		pts[i] = space.Random(rng)
	}
	pts[4] = pts[1] // duplicate inside the batch

	seq := NewEvaluator(space, miniSuite(), 1000)
	seq.Parallelism = 1
	for _, pt := range pts {
		if _, err := seq.Evaluate(pt, true); err != nil {
			t.Fatal(err)
		}
	}

	bat := NewEvaluator(space, miniSuite(), 1000)
	bat.Parallelism = 4
	evals, err := bat.EvaluateBatch(pts, true)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Sims != bat.Sims {
		t.Fatalf("Sims differ: %v vs %v", seq.Sims, bat.Sims)
	}
	if len(seq.History) != len(bat.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(seq.History), len(bat.History))
	}
	for i := range seq.History {
		sameEvaluation(t, "history", seq.History[i], bat.History[i])
	}
	if evals[4] != evals[1] {
		t.Fatal("duplicate point did not share its evaluation")
	}
}

// TestUpgradeChargesNothing is the budget double-charging regression: a
// cached evaluation re-requested with DEG analysis re-simulates to rebuild
// the trace, but the budget was already paid once.
func TestUpgradeChargesNothing(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	pt := ev.Space.Nearest(uarch.Baseline())

	if _, err := ev.Evaluate(pt, false); err != nil {
		t.Fatal(err)
	}
	paid := ev.Sims
	if paid != float64(len(ev.Workloads)) {
		t.Fatalf("initial charge %v, want %d", paid, len(ev.Workloads))
	}

	e, err := ev.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Report == nil {
		t.Fatal("upgrade did not attach a report")
	}
	if ev.Sims != paid {
		t.Fatalf("upgrade charged budget: %v after paying %v", ev.Sims, paid)
	}
	if len(ev.History) != 1 {
		t.Fatalf("upgrade duplicated history: %d entries", len(ev.History))
	}
}

// TestBatchDeduplicatesCharges: a batch repeating one design point charges
// a single suite and records a single history entry.
func TestBatchDeduplicatesCharges(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.Parallelism = 4
	pt := ev.Space.Nearest(uarch.Baseline())

	evals, err := ev.EvaluateBatch([]uarch.Point{pt, pt, pt}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sims != float64(len(ev.Workloads)) {
		t.Fatalf("duplicates charged: %v sims", ev.Sims)
	}
	if len(ev.History) != 1 {
		t.Fatalf("duplicates in history: %d", len(ev.History))
	}
	if evals[0] != evals[1] || evals[1] != evals[2] {
		t.Fatal("duplicates resolved to distinct evaluations")
	}
}

// TestDrawBatchPlansSequentialBudget: DrawBatch must stop exactly where the
// sequential `for ev.Sims < budget` loop would, treating cached points as
// free.
func TestDrawBatchPlansSequentialBudget(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	pt := ev.Space.Nearest(uarch.Baseline())
	if _, err := ev.Evaluate(pt, false); err != nil { // pre-cache one point
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var fresh []uarch.Point
	for len(fresh) < 3 {
		p := ev.Space.Random(rng)
		if p != pt {
			fresh = append(fresh, p)
		}
	}
	// Budget for exactly two more suites beyond the one already spent.
	budget := 3 * len(ev.Workloads)
	seqPts := []uarch.Point{pt, fresh[0], pt, fresh[1], fresh[2]}
	got := ev.DrawBatch(float64(budget), false, drawFrom(seqPts))

	// Sequential replay: pt free (cached), fresh[0] +N, pt free, fresh[1]
	// +N -> budget reached, fresh[2] never drawn.
	want := []uarch.Point{pt, fresh[0], pt, fresh[1]}
	if len(got) != len(want) {
		t.Fatalf("planned %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan diverges at %d", i)
		}
	}
	if _, err := ev.EvaluateBatch(got, false); err != nil {
		t.Fatal(err)
	}
	if ev.Sims != float64(budget) {
		t.Fatalf("executed plan spent %v sims, want %d", ev.Sims, budget)
	}
}

// TestWarmWindowIPCGuards is the probe warm-up regression: degenerate
// traces must fall back to whole-trace IPC instead of panicking or
// dividing by a zero span.
func TestWarmWindowIPCGuards(t *testing.T) {
	rec := func(commit int64) pipetrace.Record {
		var r pipetrace.Record
		r.Stamp[pipetrace.SC] = commit
		return r
	}

	cases := []struct {
		name    string
		records []pipetrace.Record
		ok      bool
	}{
		{"empty", nil, false},
		{"single", []pipetrace.Record{rec(5)}, false},
		{"pair", []pipetrace.Record{rec(5), rec(6)}, false},
		{"zero-span", []pipetrace.Record{rec(5), rec(5), rec(5), rec(5)}, false},
		{"healthy", []pipetrace.Record{rec(1), rec(2), rec(3), rec(4), rec(5), rec(6)}, true},
	}
	for _, tc := range cases {
		ipc, ok := warmWindowIPC(&pipetrace.Trace{Records: tc.records})
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
		}
		if ok && ipc <= 0 {
			t.Errorf("%s: non-positive warm IPC %v", tc.name, ipc)
		}
	}
}

// TestStageTimesRecorded: every evaluation carries per-stage wall-clock so
// campaigns can report where the budget's real time went.
func TestStageTimesRecorded(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	if _, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true); err != nil {
		t.Fatal(err)
	}
	e := ev.History[0]
	if e.Times.Sim <= 0 || e.Times.DEG <= 0 {
		t.Fatalf("missing stage times: %+v", e.Times)
	}
	if e.Elapsed <= 0 {
		t.Fatal("missing elapsed time")
	}
	tot := ev.StageTotals()
	if tot != e.Times {
		t.Fatalf("StageTotals %+v != evaluation times %+v", tot, e.Times)
	}
}
