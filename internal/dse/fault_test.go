package dse

import (
	"bytes"
	"testing"
	"time"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// noSleepRetry retries without backoff sleeps so fault tests stay fast.
var noSleepRetry = fault.Retry{Max: 3}

func faultEvaluator(t *testing.T, plan *fault.Plan) *Evaluator {
	t.Helper()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	ev.Parallelism = 1 // pin hit-count determinism
	ev.Faults = plan
	ev.Retry = noSleepRetry
	return ev
}

// TestTransientFaultsAreAbsorbed pins the core retry property: a run whose
// stages fail transiently (and get retried) produces byte-identical
// evaluations to a clean run.
func TestTransientFaultsAreAbsorbed(t *testing.T) {
	clean := faultEvaluator(t, nil)
	pt := clean.Space.Nearest(uarch.Baseline())
	want, err := clean.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []string{fault.SiteTrace, fault.SiteSim, fault.SitePower, fault.SiteDEG} {
		plan := fault.MustPlan(
			fault.Injection{Site: site, Nth: 1, Count: 2, Class: fault.Transient},
		)
		ev := faultEvaluator(t, plan)
		got, err := ev.Evaluate(pt, true)
		if err != nil {
			t.Fatalf("site %s: transient fault surfaced despite retries: %v", site, err)
		}
		sameEvaluation(t, "transient@"+site, want, got)
		if plan.Hits(site) < 3 {
			t.Fatalf("site %s: expected at least 3 hits (2 failures + success), got %d", site, plan.Hits(site))
		}
	}
}

// TestTransientFaultRetriesExhausted pins the giving-up path: with no retry
// budget a transient failure surfaces like any other error.
func TestTransientFaultRetriesExhausted(t *testing.T) {
	ev := faultEvaluator(t, fault.MustPlan(
		fault.Injection{Site: fault.SiteSim, Nth: 1, Count: 100, Class: fault.Transient},
	))
	ev.Retry = fault.Retry{} // zero value: no retries
	pt := ev.Space.Nearest(uarch.Baseline())
	if _, err := ev.Evaluate(pt, false); err == nil {
		t.Fatal("exhausted transient fault did not surface")
	}
	if len(ev.History) != 0 || ev.Sims != 0 {
		t.Fatalf("aborted evaluation leaked state: %d history, %.1f sims", len(ev.History), ev.Sims)
	}
}

// TestPermanentFaultAbortsByDefault: without SkipFailures a permanent
// failure unwinds the evaluation and charges nothing.
func TestPermanentFaultAbortsByDefault(t *testing.T) {
	ev := faultEvaluator(t, fault.MustPlan(
		fault.Injection{Site: fault.SitePower, Nth: 1, Class: fault.Permanent},
	))
	pt := ev.Space.Nearest(uarch.Baseline())
	if _, err := ev.Evaluate(pt, false); err == nil {
		t.Fatal("permanent fault did not surface")
	}
	if len(ev.History) != 0 || ev.Sims != 0 {
		t.Fatalf("aborted evaluation leaked state: %d history, %.1f sims", len(ev.History), ev.Sims)
	}
}

// TestPermanentFaultDegradesToSkip: in skip-failures mode the failed design
// enters History marked Failed, charged its full suite cost, is sticky in
// the cache, and never joins Pareto reductions.
func TestPermanentFaultDegradesToSkip(t *testing.T) {
	ev := faultEvaluator(t, fault.MustPlan(
		fault.Injection{Site: fault.SiteSim, Nth: 1, Class: fault.Permanent},
	))
	ev.SkipFailures = true
	pt := ev.Space.Nearest(uarch.Baseline())

	e, err := ev.Evaluate(pt, false)
	if err != nil {
		t.Fatalf("skip-failures mode surfaced the failure: %v", err)
	}
	if !e.Failed || e.FailSite != fault.SiteSim || e.FailReason == "" {
		t.Fatalf("failure not recorded: %+v", e)
	}
	if e.Tradeoff() != 0 {
		t.Fatalf("failed evaluation trades off at %v, want 0", e.Tradeoff())
	}
	wantCharge := float64(len(ev.Workloads))
	if ev.Sims != wantCharge {
		t.Fatalf("failed evaluation charged %.1f sims, want %.1f", ev.Sims, wantCharge)
	}
	if len(ev.History) != 1 || !ev.History[0].Failed {
		t.Fatalf("failed evaluation missing from history: %+v", ev.History)
	}
	if pts := ev.Points(); len(pts) != 0 {
		t.Fatalf("failed evaluation leaked into Points: %v", pts)
	}
	if pts := ev.PointsUpTo(1e18); len(pts) != 0 {
		t.Fatalf("failed evaluation leaked into PointsUpTo: %v", pts)
	}

	// Sticky: a repeat request — even one asking for a DEG report — serves
	// the failed entry from cache without re-simulating or re-charging.
	e2, err := ev.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e {
		t.Fatal("failed entry not served from cache")
	}
	if ev.Sims != wantCharge || len(ev.History) != 1 {
		t.Fatalf("cache hit on failed entry re-charged: %.1f sims, %d history", ev.Sims, len(ev.History))
	}
}

// TestKillAlwaysAborts: a kill-class fault unwinds the batch even in
// skip-failures mode — it models the process dying, not a bad design.
func TestKillAlwaysAborts(t *testing.T) {
	ev := faultEvaluator(t, fault.MustPlan(
		fault.Injection{Site: fault.SiteSim, Nth: 1, Class: fault.Kill},
	))
	ev.SkipFailures = true
	pt := ev.Space.Nearest(uarch.Baseline())
	_, err := ev.Evaluate(pt, false)
	if !fault.IsKill(err) {
		t.Fatalf("kill fault surfaced as %v", err)
	}
	if len(ev.History) != 0 || ev.Sims != 0 {
		t.Fatalf("killed batch leaked state: %d history, %.1f sims", len(ev.History), ev.Sims)
	}
}

// TestStageTimeoutRetries: a hung stage attempt is abandoned at the
// StageTimeout and retried as a transient failure; the retry succeeds and
// the result matches a clean run.
func TestStageTimeoutRetries(t *testing.T) {
	clean := faultEvaluator(t, nil)
	pt := clean.Space.Nearest(uarch.Baseline())
	want, err := clean.Evaluate(pt, false)
	if err != nil {
		t.Fatal(err)
	}

	// The injected fault stalls 200ms before firing; the 20ms stage timeout
	// abandons the attempt long before that, converting it to a timeout.
	plan := fault.MustPlan(fault.Injection{
		Site: fault.SitePower, Nth: 1, Class: fault.Transient, Delay: 200 * time.Millisecond,
	})
	ev := faultEvaluator(t, plan)
	ev.StageTimeout = 20 * time.Millisecond

	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec

	got, err := ev.Evaluate(pt, false)
	if err != nil {
		t.Fatalf("timed-out stage did not recover: %v", err)
	}
	sameEvaluation(t, "timeout", want, got)
	if n := rec.Counter(obs.MetricTimeouts).Value(); n < 1 {
		t.Fatalf("timeout counter %d, want >= 1", n)
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawTimeoutRetry := false
	for _, e := range events {
		if f, ok := e.(*obs.FaultEvent); ok && f.Action == "retry" && f.Class == "timeout" {
			sawTimeoutRetry = true
		}
	}
	if !sawTimeoutRetry {
		t.Fatal("no timeout retry event in journal")
	}
}

// TestFaultJournal pins the journal shape of a retried-then-skipped run:
// retry events precede the skip event, all from the commit phase, and the
// skip carries the failure's site and reason.
func TestFaultJournal(t *testing.T) {
	ev := faultEvaluator(t, fault.MustPlan(
		fault.Injection{Site: fault.SiteSim, Nth: 1, Class: fault.Transient},
		fault.Injection{Site: fault.SiteDEG, Nth: 1, Count: 100, Class: fault.Permanent},
	))
	ev.SkipFailures = true
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec

	pt := ev.Space.Nearest(uarch.Baseline())
	e, err := ev.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Failed || e.FailSite != fault.SiteDEG {
		t.Fatalf("expected DEG failure, got %+v", e)
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var retryIdx, skipIdx = -1, -1
	for i, ev := range events {
		f, ok := ev.(*obs.FaultEvent)
		if !ok {
			continue
		}
		switch f.Action {
		case "retry":
			if retryIdx < 0 {
				retryIdx = i
			}
			if f.Site != fault.SiteSim || f.Attempt < 1 || f.Workload == "" {
				t.Fatalf("malformed retry event: %+v", f)
			}
		case "skip":
			skipIdx = i
			if f.Site != fault.SiteDEG || f.Class != "permanent" || f.Err == "" {
				t.Fatalf("malformed skip event: %+v", f)
			}
			if len(f.Point) != uarch.NumParams {
				t.Fatalf("skip event missing point: %+v", f)
			}
		}
	}
	if retryIdx < 0 || skipIdx < 0 || retryIdx > skipIdx {
		t.Fatalf("journal order wrong: retry at %d, skip at %d", retryIdx, skipIdx)
	}
	if n := rec.Counter(obs.MetricRetries).Value(); n < 1 {
		t.Fatalf("retry counter %d, want >= 1", n)
	}
	if n := rec.Counter(obs.MetricEvalSkips).Value(); n != 1 {
		t.Fatalf("skip counter %d, want 1", n)
	}
}

// TestExplorersSurviveSkippedFailures: each explorer completes a small
// campaign despite permanently failed evaluations sprinkled through it.
func TestExplorersSurviveSkippedFailures(t *testing.T) {
	for _, mk := range []func() Explorer{
		func() Explorer { return NewArchExplorer(1) },
		func() Explorer { return &RandomSearch{Seed: 1} },
	} {
		ex := mk()
		ev := faultEvaluator(t, fault.MustPlan(
			fault.Injection{Site: fault.SiteSim, Nth: 3, Count: 4, Class: fault.Permanent},
			fault.Injection{Site: fault.SiteSim, Nth: 19, Class: fault.Permanent},
		))
		ev.SkipFailures = true
		if err := ex.Run(ev, 10); err != nil {
			t.Fatalf("%s aborted on skipped failures: %v", ex.Name(), err)
		}
		failed := 0
		for _, e := range ev.History {
			if e.Failed {
				failed++
			}
		}
		if failed == 0 {
			t.Fatalf("%s: no failures recorded — injection never fired", ex.Name())
		}
		if ev.Sims < 10 {
			t.Fatalf("%s: budget not spent: %.1f", ex.Name(), ev.Sims)
		}
	}
}
