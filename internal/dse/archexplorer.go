package dse

import (
	"fmt"
	"math/rand"

	"archexplorer/internal/mcpat"
	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// ArchExplorer is the bottleneck-removal-driven explorer of Section 4.3.
// Each walk starts from a random design whose power and area define the
// walk's *budget envelope*. Steps probe the design with critical-path
// analysis, grow the top-contributing (deficient) resources to the next
// larger design-space values, and reclaim abundant (low-contribution)
// resources — keeping the design inside the envelope, so reclaimed budget
// pays for the bottleneck fixes ("reassigning" in the paper's terms). A
// walk ends when performance plateaus; its best design is re-evaluated at
// full fidelity and the explorer restarts from a fresh random envelope,
// which spreads the exploration set across the whole power/area range.
type ArchExplorer struct {
	Seed int64
	// TopK is how many top bottleneck resources are grown per step.
	TopK int
	// Patience is how many consecutive non-improving steps end a walk.
	Patience int
	// GrowThreshold is the minimum contribution for a resource to be
	// considered a bottleneck worth growing.
	GrowThreshold float64
	// ShrinkThreshold is the contribution below which a resource is
	// considered abundant and reclaimed.
	ShrinkThreshold float64
	// ShrinkStep is how many candidate levels an abundant resource gives
	// back per step.
	ShrinkStep int
	// ReevalN is how many of a walk's best designs are re-evaluated at
	// full fidelity when the walk ends.
	ReevalN int
	// EnvelopeSlack is the tolerated fractional excess over the walk's
	// starting area and power.
	EnvelopeSlack float64

	// Ablation switches (all false in the paper's configuration).
	NoShrink      bool // never reclaim abundant resources
	NoProbe       bool // pay full-fidelity evaluations for every step
	NoScreenStart bool // start walks from a single random design
}

// NewArchExplorer returns the configuration used in the experiments: grow
// the most critical resource each step (the ablation experiment shows one
// focused fix per probe beats broader moves), reclaim idle ones, restart
// after three stale steps.
func NewArchExplorer(seed int64) *ArchExplorer {
	return &ArchExplorer{
		Seed:            seed,
		TopK:            1,
		Patience:        3,
		GrowThreshold:   0.02,
		ShrinkThreshold: 0.01,
		ShrinkStep:      1,
		ReevalN:         2,
		EnvelopeSlack:   0.02,
	}
}

// Name implements Explorer.
func (a *ArchExplorer) Name() string { return "ArchExplorer" }

// Run implements Explorer.
func (a *ArchExplorer) Run(ev *Evaluator, budget int) error {
	rng := rand.New(rand.NewSource(a.Seed))
	for walk := 1; ev.Sims < float64(budget); walk++ {
		if err := a.walk(ev, rng, budget, walk); err != nil {
			return err
		}
	}
	return nil
}

// walk performs one bottleneck-elimination trajectory from a random start.
// Steps use cheap probe evaluations (Section 5.1: a short prefix of each
// workload suffices to identify resource utilisation); the walk's best
// designs are then re-evaluated at full fidelity, which is what enters the
// reported exploration set.
func (a *ArchExplorer) walk(ev *Evaluator, rng *rand.Rand, budget, walkIdx int) error {
	probe := func(p uarch.Point) (*Evaluation, error) {
		if a.NoProbe {
			return ev.Evaluate(p, true)
		}
		return ev.Probe(p)
	}

	// Seed the walk from the most promising of a small probed sample (the
	// paper initialises from sampled designs or prior knowledge). The
	// probes are cheap and the losers still join the exploration set.
	pt := ev.Space.Random(rng)
	e0, err := probe(pt)
	if err != nil {
		return err
	}
	if !a.NoScreenStart {
		// The screen candidates depend only on the rng, not on each other's
		// probes, so the whole screen fans out as one batch.
		drawn := 0
		cands := ev.DrawBatch(float64(budget), !a.NoProbe, func() (uarch.Point, bool) {
			if drawn >= 5 {
				var zero uarch.Point
				return zero, false
			}
			drawn++
			return ev.Space.Random(rng), true
		})
		var ecs []*Evaluation
		if a.NoProbe {
			ecs, err = ev.EvaluateBatch(cands, true)
		} else {
			ecs, err = ev.ProbeBatch(cands)
		}
		if err != nil {
			return err
		}
		for i, ec := range ecs {
			if ec.Failed {
				continue
			}
			if ec.Tradeoff() > e0.Tradeoff() {
				pt, e0 = cands[i], ec
			}
		}
	}
	if e0.Failed {
		// Every screened start failed (degraded-skip mode): abandon the
		// walk — the failed probes still charged budget, so the outer loop
		// advances to a fresh envelope.
		return nil
	}
	envArea := e0.PPA.Area * (1 + a.EnvelopeSlack)
	envPower := e0.PPA.Power * (1 + a.EnvelopeSlack)

	bestIPC := e0.PPA.Perf
	stale := 0
	bestPts := []uarch.Point{pt}

	finish := func() error {
		n := len(bestPts)
		if n > a.ReevalN {
			bestPts = bestPts[n-a.ReevalN:]
		}
		// Full-fidelity re-evaluations of the walk's best designs are
		// independent, so they fan out as one batch (no budget gate — the
		// walk's outcome always enters the exploration set).
		_, err := ev.EvaluateBatch(bestPts, false)
		return err
	}

	// Per-walk freeze set: branch predictor and cache resources stop
	// receiving more budget once growing them fails to pay off
	// (Section 4.3's special-casing of predictors and caches).
	frozen := map[uarch.Resource]bool{}
	lastGrown := map[uarch.Resource]bool{}

	// Rotation state so a persistent bottleneck cycles through its
	// parameters (e.g. BranchPred alternates global/local/BTB/RAS).
	rot := map[uarch.Resource]int{}

	// Telemetry bookkeeping: the resize decision of the current step, in
	// deterministic (decision) order. Recording it costs two appends per
	// step and never feeds back into the walk.
	var grownNames, shrunkNames []string

	e := e0
	for step := 1; ev.Sims < float64(budget); step++ {
		// Iteration span: wraps the resize decision and the probe, so the
		// step's probe batch parents to it. The id is allocated here on the
		// driving goroutine (deterministic order) and the event emitted at
		// every exit from the step; SpanParent is restored before finish()
		// so the full-fidelity re-evaluations parent to the campaign.
		spanParent := ev.SpanParent
		var iterSpan, iterStart int64
		if ev.Obs.JournalEnabled() {
			iterSpan = ev.Obs.NextSpan()
			iterStart = ev.Obs.Clock()
			ev.SpanParent = iterSpan
		}
		endIter := func() {
			if iterSpan == 0 {
				return
			}
			ev.Obs.Emit(&obs.SpanEvent{
				Span: iterSpan, Parent: spanParent, SpanKind: obs.SpanIteration,
				Name:    fmt.Sprintf("w%d.s%d", walkIdx, step),
				StartNS: iterStart, DurNS: ev.Obs.Clock() - iterStart,
			})
			ev.SpanParent = spanParent
			iterSpan = 0
		}

		next := pt
		changed := false
		lastGrown = map[uarch.Resource]bool{}
		grownNames, shrunkNames = grownNames[:0], shrunkNames[:0]

		// Grow the top bottlenecks.
		grownCnt := 0
		for _, res := range e.Report.Top() {
			if grownCnt >= a.TopK {
				break
			}
			if e.Report.Contrib[res] < a.GrowThreshold {
				break
			}
			if frozen[res] || res == uarch.ResRawDep {
				continue
			}
			params := uarch.ResourceParams(res)
			if len(params) == 0 {
				continue
			}
			// Step size scales with how much of the runtime the
			// bottleneck owns: severe bottlenecks jump several candidate
			// levels at once so a walk converges in few probes.
			delta := 1 + int(e.Report.Contrib[res]/0.12)
			for i := 0; i < len(params); i++ {
				p := params[(rot[res]+i)%len(params)]
				if ev.Space.Step(&next, p, delta) {
					rot[res]++
					changed = true
					grownCnt++
					lastGrown[res] = true
					grownNames = append(grownNames, res.String())
					break
				}
			}
		}

		// Reclaim abundant resources: structures contributing (almost)
		// nothing to the critical path give levels back, paying for the
		// growth above. The front-end width itself is not shrunk on
		// silence — its pressure is under-observable from the graph —
		// but its buffers are.
		shrinkOnce := func(threshold float64) bool {
			if a.NoShrink {
				return false
			}
			did := false
			for _, res := range uarch.Resources() {
				if res == uarch.ResRawDep || res == uarch.ResNone {
					continue
				}
				if e.Report.Contrib[res] > threshold || lastGrown[res] {
					continue
				}
				for _, p := range uarch.ResourceParams(res) {
					if res == uarch.ResFrontend && p == uarch.ParamWidth {
						continue
					}
					if ev.Space.Step(&next, p, -a.ShrinkStep) {
						did = true
						shrunkNames = append(shrunkNames, res.String())
						break
					}
				}
			}
			return did
		}
		if shrinkOnce(a.ShrinkThreshold) {
			changed = true
		}

		// Enforce the walk's budget envelope analytically: keep
		// reclaiming the quietest structures until the area fits. This
		// is the paper's budget reassignment — growth is funded by the
		// idle structures, not by inflating the design.
		for mcpat.Area(ev.Space.Decode(next)) > envArea {
			if !shrinkOnce(a.ShrinkThreshold * 4) {
				break
			}
		}

		if !changed || next == pt {
			endIter()
			return finish() // nothing movable: restart
		}
		pt = next

		// The report that drove this step's resize decision, captured
		// before the probe result replaces it.
		var decisionTop []obs.ResContrib
		if ev.Obs != nil {
			decisionTop = topContribs(e, 4)
		}

		e, err = probe(pt)
		if err != nil {
			endIter()
			return err
		}
		if e.Failed {
			// The probe for this step was degraded to a skip; without a
			// bottleneck report the walk cannot continue, so its best
			// designs are harvested and the explorer restarts.
			endIter()
			return finish()
		}
		improved := e.PPA.Perf > bestIPC*1.002 && e.PPA.Power <= envPower
		if improved {
			bestIPC = e.PPA.Perf
			stale = 0
			bestPts = append(bestPts, pt)
		} else {
			stale++
			for res := range lastGrown {
				if res == uarch.ResBranchPred || res == uarch.ResICache || res == uarch.ResDCache {
					frozen[res] = true
				}
			}
		}
		if ev.Obs != nil {
			emitIter(ev, &obs.IterEvent{
				Explorer: a.Name(),
				Walk:     walkIdx,
				Step:     step,
				Top:      decisionTop,
				Grown:    append([]string(nil), grownNames...),
				Shrunk:   append([]string(nil), shrunkNames...),
				Improved: improved,
				BestIPC:  bestIPC,
			})
		}
		endIter()
		if stale >= a.Patience {
			return finish()
		}
	}
	return finish()
}
