package dse

import (
	"sync"
	"sync/atomic"
	"time"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// The batched-simulation fast path: when a batch carries two or more jobs
// that must actually simulate, every job runs the same workloads at the
// same trace length with the same generator seed — the batch grouping key
// (workload, tracelen, seed) is satisfied per workload across the whole
// job set by construction — so the per-workload simulations are N configs
// over ONE shared instruction stream. ooo.RunBatch simulates them in a
// single pass (shared stream iteration, shared branch replay per distinct
// predictor front end), and the pre-phase below stores each lane's trace
// and stats as a seed the per-job sim stage consumes instead of re-running
// the simulator. Everything downstream — warm-window probes, power, DEG,
// reduction, journaling — is unchanged, and the consumed outputs are
// bit-identical to per-config runs (pinned by internal/conformance), so
// enabling the fast path never changes results.

// simSeed is one (job, workload) product of the batched pre-phase: a
// trace+stats pair consumed at most once by that job's sim stage. Unused
// seeds (the job was abandoned, or an injected fault made the stage skip
// its attempt) are released after the compute phase so no trace leaks.
type simSeed struct {
	tr    *pipetrace.Trace
	stats *ooo.Stats
	// durNS is this lane's share of the batch pass's wall-clock (elapsed /
	// lanes): the consuming stage records it as its sim time so per-eval
	// stage accounting still sums to the real compute spent.
	durNS int64
	taken atomic.Bool
}

// take claims the seed's outputs; only the first caller succeeds. A timed-
// out attempt that claimed the seed keeps it (its discard hook releases
// the trace), and the retry finds the seed gone and falls back to a live
// per-config simulation.
func (s *simSeed) take() (*pipetrace.Trace, *ooo.Stats, bool) {
	if s == nil || !s.taken.CompareAndSwap(false, true) {
		return nil, nil, false
	}
	return s.tr, s.stats, true
}

// discard releases the trace of a seed nobody consumed.
func (s *simSeed) discard() {
	if s != nil && s.taken.CompareAndSwap(false, true) {
		s.tr.Release()
	}
}

// batchSeeds is the pre-phase's result: per-(job, workload) seeds plus the
// telemetry to journal at commit — one sim_batch span and one histogram
// observation per batched workload, and the fault events of workloads that
// fell back to per-config simulation.
type batchSeeds struct {
	jobs [][]*simSeed // aligned with the eligible jobs; inner slice per workload
	// spans and faults are indexed by workload so the commit phase emits
	// them in suite order regardless of the fan-out's completion order.
	spans  []*obs.SpanEvent
	faults []*obs.FaultEvent
	// killErr aborts the whole batch call (kill-class injection at the
	// sim_batch site), mirroring a kill anywhere else in the pipeline.
	killErr error
}

// discardUnused releases every seed that no sim stage consumed.
func (bs *batchSeeds) discardUnused() {
	if bs == nil {
		return
	}
	for _, seeds := range bs.jobs {
		for _, s := range seeds {
			s.discard()
		}
	}
}

// emit journals the pre-phase's telemetry under the batch span: per-
// workload sim_batch stage spans (suite order) and the fallback fault
// events. Runs on the committing goroutine before any job commits, so the
// span/event sequence is deterministic at any parallelism.
func (bs *batchSeeds) emit(rec *obs.Recorder, batchSpan int64) {
	if bs == nil || batchSpan == 0 {
		return
	}
	for _, f := range bs.faults {
		if f != nil {
			rec.Emit(f)
		}
	}
	for _, s := range bs.spans {
		if s != nil {
			s.Span = rec.NextSpan()
			s.Parent = batchSpan
			rec.Emit(s)
		}
	}
}

// batchEligible selects the jobs the pre-phase will simulate together:
// jobs that will really run the simulator (not served from the checkpoint
// replay store) with a decodable, valid config. Order follows the jobs
// slice, so lane order — and therefore the whole fast path — is
// deterministic.
func (ev *Evaluator) batchEligible(jobs []*job) []*job {
	var elig []*job
	for _, j := range jobs {
		if ev.restoredWillServe(j) {
			continue
		}
		cfg := ev.Space.Decode(j.key.pt)
		if cfg.Validate() != nil {
			continue // compute() surfaces the validation error as before
		}
		elig = append(elig, j)
	}
	return elig
}

// restoredWillServe mirrors serveRestored's decision without materialising
// the evaluation: such a job never reaches its sim stage, so seeding it
// would only strand traces.
func (ev *Evaluator) restoredWillServe(j *job) bool {
	ev.mu.Lock()
	r, ok := ev.restored[j.key]
	ev.mu.Unlock()
	if !ok {
		return false
	}
	return r.Failed || !(j.withDEG && r.Report == nil)
}

// runBatchSim is the batched-simulation pre-phase of Evaluator.batch: it
// fans the suite's workloads out (under the same leaf gate as the per-job
// compute phase), runs one ooo.RunBatch per workload over the eligible
// jobs' configs, and plants the per-lane results as seeds on the jobs. Any
// failure short of a kill degrades to per-config simulation — a workload
// whose batch pass failed simply plants no seeds — so the fast path can
// only ever add speed, never failures.
func (ev *Evaluator) runBatchSim(jobs []*job, withDEG, probe bool, leaf func(func())) *batchSeeds {
	elig := ev.batchEligible(jobs)
	if len(elig) < 2 {
		return nil // nothing to amortise
	}
	traceLen, _ := ev.planCost(probe)
	cfgs := make([]uarch.Config, len(elig))
	for i, j := range elig {
		cfgs[i] = ev.Space.Decode(j.key.pt)
	}

	bs := &batchSeeds{
		jobs:   make([][]*simSeed, len(elig)),
		spans:  make([]*obs.SpanEvent, len(ev.Workloads)),
		faults: make([]*obs.FaultEvent, len(ev.Workloads)),
	}
	for i := range bs.jobs {
		bs.jobs[i] = make([]*simSeed, len(ev.Workloads))
	}

	var killMu sync.Mutex
	rec := ev.Obs
	runOne := func(k int, opt ooo.BatchOptions) {
		wl := ev.Workloads[k]
		stream, err := workload.CachedTrace(wl, traceLen)
		if err != nil {
			return // the jobs' own trace stages will surface it
		}
		if err := ev.Faults.Hit(fault.SiteSimBatch); err != nil {
			if fault.IsKill(err) {
				killMu.Lock()
				if bs.killErr == nil {
					bs.killErr = err
				}
				killMu.Unlock()
				return
			}
			bs.faults[k] = &obs.FaultEvent{
				Site: fault.SiteSimBatch, Class: fault.Classify(err).String(),
				Action: "fallback", Workload: wl.Name, Err: err.Error(),
			}
			return
		}
		start := rec.Clock()
		t0 := time.Now()
		res, err := ooo.RunBatch(stream, cfgs, opt)
		elapsed := time.Since(t0)
		if err != nil {
			return // whole-call failure: every job falls back
		}
		share := int64(elapsed) / int64(len(res))
		for i, r := range res {
			if r.Err != nil {
				// This lane's failure is deterministic; the job's own sim
				// stage will reproduce and report it through the normal
				// resilience path.
				continue
			}
			bs.jobs[i][k] = &simSeed{tr: r.Trace, stats: r.Stats, durNS: share}
		}
		if rec.SpansActive() {
			bs.spans[k] = &obs.SpanEvent{
				SpanKind: obs.SpanStage, Name: "sim_batch", Workload: wl.Name,
				StartNS: start, DurNS: rec.Clock() - start,
			}
		}
		rec.Histogram(obs.MetricSimBatchSize).Observe(float64(len(res)))
	}

	if leaf == nil {
		// Sequential evaluator: the pass itself stays single-threaded too,
		// so fault-injection hit order and scheduling remain deterministic.
		for k := range ev.Workloads {
			runOne(k, ooo.BatchOptions{Lite: !withDEG, Workers: 1})
		}
	} else {
		var wg sync.WaitGroup
		for k := range ev.Workloads {
			k := k
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Workload goroutines are structural; the batch workers are
				// the CPU-bound leaves and run behind the compute gate.
				runOne(k, ooo.BatchOptions{Lite: !withDEG, Gate: leaf})
			}()
		}
		wg.Wait()
	}

	if bs.killErr != nil {
		bs.discardUnused()
	}
	for _, j := range elig {
		// Attach each job's seed row; compute() hands the row to the
		// workload slots.
		j.seeds = bs.rowFor(j, elig)
	}
	return bs
}

// rowFor returns the seed row of job j (nil if j is not in elig).
func (bs *batchSeeds) rowFor(j *job, elig []*job) []*simSeed {
	for i, e := range elig {
		if e == j {
			return bs.jobs[i]
		}
	}
	return nil
}
