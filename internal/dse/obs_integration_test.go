package dse

import (
	"bytes"
	"testing"
	"time"

	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// runWithJournal drives one ArchExplorer campaign with a journal attached
// and returns the evaluator plus the parsed journal events.
func runWithJournal(t *testing.T, parallelism int) (*Evaluator, []obs.Event) {
	t.Helper()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.Parallelism = parallelism
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec
	if err := NewArchExplorer(7).Run(ev, 40); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ev, events
}

// journalStageTotals reduces a journal's eval spans the same way the
// evaluator's history is maintained: a span that replaces another (a DEG
// upgrade of a cached entry) supersedes it.
func journalStageTotals(events []obs.Event) StageTimes {
	live := make(map[int64]StageTimes)
	for _, e := range events {
		span, ok := e.(*obs.EvalSpan)
		if !ok {
			continue
		}
		if span.Replaces != 0 {
			delete(live, span.Replaces)
		}
		live[span.Span] = StageTimes{
			Trace: time.Duration(span.TraceNS),
			Sim:   time.Duration(span.SimNS),
			Power: time.Duration(span.PowerNS),
			DEG:   time.Duration(span.DEGNS),
		}
	}
	var t StageTimes
	for _, st := range live {
		t.add(st)
	}
	return t
}

// TestJournalStageSumsMatchStageTotals is the tentpole's accounting
// contract: the journal's per-stage duration sums must equal
// Evaluator.StageTotals exactly (both are nanosecond-integral sums over
// the same evaluations, with superseded upgrade spans dropped).
func TestJournalStageSumsMatchStageTotals(t *testing.T) {
	ev, events := runWithJournal(t, 4)
	if got, want := journalStageTotals(events), ev.StageTotals(); got != want {
		t.Fatalf("journal stage sums %+v != StageTotals %+v", got, want)
	}

	evalSpans := 0
	for _, e := range events {
		if _, ok := e.(*obs.EvalSpan); ok {
			evalSpans++
		}
	}
	if evalSpans < len(ev.History) {
		t.Fatalf("journal holds %d eval spans for %d history entries", evalSpans, len(ev.History))
	}
}

// TestJournalUpgradeReplacesSpan pins the upgrade path: re-requesting a
// cached evaluation with DEG analysis emits a span that references the one
// it supersedes, and the journal reduction still matches StageTotals.
func TestJournalUpgradeReplacesSpan(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec

	pt := ev.Space.Nearest(uarch.Baseline())
	if _, err := ev.Evaluate(pt, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Evaluate(pt, true); err != nil { // upgrade: adds the report
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var spans []*obs.EvalSpan
	for _, e := range events {
		if s, ok := e.(*obs.EvalSpan); ok {
			spans = append(spans, s)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("expected 2 eval spans, got %d", len(spans))
	}
	if spans[0].Replaces != 0 {
		t.Fatalf("first span replaces %d", spans[0].Replaces)
	}
	if spans[1].Replaces != spans[0].Span {
		t.Fatalf("upgrade replaces %d, want %d", spans[1].Replaces, spans[0].Span)
	}
	if got, want := journalStageTotals(events), ev.StageTotals(); got != want {
		t.Fatalf("journal stage sums %+v != StageTotals %+v", got, want)
	}
	if hits := rec.Counter(obs.MetricCacheUpgrades).Value(); hits != 1 {
		t.Fatalf("upgrade counter %d, want 1", hits)
	}
}

// iterKey is the deterministic projection of an iteration event.
type iterKey struct {
	explorer           string
	walk, step         int
	phase              string
	sims, hv, best     float64
	top, grown, shrunk string
	improved           bool
	evals              int
}

// evalKey is the deterministic projection of an eval span (everything but
// the durations).
type evalKey struct {
	span, replaces int64
	config         string
	probe          bool
	simsAt         float64
	perf, pow, ar  float64
	simInsts       int64
}

func deterministicTrace(t *testing.T, events []obs.Event) []any {
	t.Helper()
	var out []any
	for _, e := range events {
		switch s := e.(type) {
		case *obs.EvalSpan:
			out = append(out, evalKey{
				span: s.Span, replaces: s.Replaces, config: s.Config,
				probe: s.Probe, simsAt: s.SimsAt, perf: s.Perf, pow: s.PowerW, ar: s.AreaMM2,
				simInsts: s.SimInsts,
			})
		case *obs.IterEvent:
			k := iterKey{
				explorer: s.Explorer, walk: s.Walk, step: s.Step, phase: s.Phase,
				sims: s.Sims, hv: s.HV, best: s.BestIPC, improved: s.Improved, evals: s.Evals,
			}
			for _, c := range s.Top {
				k.top += c.Res + ";"
			}
			for _, g := range s.Grown {
				k.grown += g + ";"
			}
			for _, g := range s.Shrunk {
				k.shrunk += g + ";"
			}
			out = append(out, k)
		}
	}
	return out
}

// TestJournalOrderingDeterministic is the enabled-telemetry contract: a
// parallel run's journal must carry the same events in the same order as
// the sequential run's — only the durations inside may differ. Emission
// happens in the evaluator's commit phase, which is what makes this hold.
func TestJournalOrderingDeterministic(t *testing.T) {
	_, seqEvents := runWithJournal(t, 1)
	_, parEvents := runWithJournal(t, 4)

	seq := deterministicTrace(t, seqEvents)
	par := deterministicTrace(t, parEvents)
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("journal diverges at event %d:\n  seq: %+v\n  par: %+v", i, seq[i], par[i])
		}
	}
}

// TestTelemetryDoesNotPerturbResults: the other half of the byte-identical
// guarantee — attaching a recorder (metrics + journal + running-HV
// computation) must not change any deterministic evaluation outcome.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	bare := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	if err := NewArchExplorer(7).Run(bare, 40); err != nil {
		t.Fatal(err)
	}
	wired, _ := runWithJournal(t, 0)

	if bare.Sims != wired.Sims {
		t.Fatalf("Sims differ: bare %v, instrumented %v", bare.Sims, wired.Sims)
	}
	if len(bare.History) != len(wired.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(bare.History), len(wired.History))
	}
	for i := range bare.History {
		sameEvaluation(t, "history", bare.History[i], wired.History[i])
	}
}

// TestCacheCounters pins the phase-1 cache accounting: a batch with
// duplicates and cached entries increments hits/misses the way the
// sequential loop's semantics define them.
func TestCacheCounters(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	rec := obs.New()
	ev.Obs = rec
	pt := ev.Space.Nearest(uarch.Baseline())

	if _, err := ev.EvaluateBatch([]uarch.Point{pt, pt, pt}, false); err != nil {
		t.Fatal(err)
	}
	if h, m := rec.Counter(obs.MetricCacheHits).Value(), rec.Counter(obs.MetricCacheMisses).Value(); h != 2 || m != 1 {
		t.Fatalf("after fresh batch: hits=%d misses=%d, want 2/1", h, m)
	}
	if _, err := ev.Evaluate(pt, false); err != nil {
		t.Fatal(err)
	}
	if h := rec.Counter(obs.MetricCacheHits).Value(); h != 3 {
		t.Fatalf("cached repeat not counted: hits=%d", h)
	}
	if got := rec.Counter(obs.MetricEvaluations).Value(); got != 1 {
		t.Fatalf("evaluations counter %d, want 1", got)
	}
	if spent := rec.Gauge(obs.MetricBudgetSpent).Value(); spent != ev.Sims {
		t.Fatalf("budget gauge %v, want %v", spent, ev.Sims)
	}
}
