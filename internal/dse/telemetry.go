package dse

import (
	"archexplorer/internal/obs"
	"archexplorer/internal/pareto"
)

// runningHV is the hypervolume of everything explored so far against the
// shared Table-4-space reference — the campaign's live progress signal.
// It is only computed on telemetry paths; the exploration itself never
// depends on it.
func (ev *Evaluator) runningHV() float64 {
	return pareto.Hypervolume(ev.PointsUpTo(ev.Sims), pareto.StandardReference)
}

// emitIter records one explorer decision step: counters and the running-
// hypervolume gauge always, the journal event only when a journal is
// attached. Must be called from the explorer's driving goroutine (the
// commit-phase discipline that keeps journal order deterministic).
func emitIter(ev *Evaluator, e *obs.IterEvent) {
	rec := ev.Obs
	if rec == nil {
		return
	}
	rec.Counter(obs.MetricIterations).Inc()
	hv := ev.runningHV()
	rec.Gauge(obs.MetricHypervolume).Set(hv)
	if !rec.JournalEnabled() {
		return
	}
	e.Sims = ev.Sims
	e.HV = hv
	rec.Emit(e)
}

// emitPhase is the batch-level iteration event the ML baselines record:
// which phase of the algorithm just ran and how many evaluations it spent.
func emitPhase(ev *Evaluator, explorer, phase string, evals int) {
	emitIter(ev, &obs.IterEvent{Explorer: explorer, Phase: phase, Evals: evals})
}

// topContribs summarises a bottleneck report's top contributors for an
// iteration event (at most k entries, in contribution order).
func topContribs(e *Evaluation, k int) []obs.ResContrib {
	if e == nil || e.Report == nil {
		return nil
	}
	var out []obs.ResContrib
	for _, res := range e.Report.Top() {
		if len(out) >= k {
			break
		}
		out = append(out, obs.ResContrib{Res: res.String(), Contrib: e.Report.Contrib[res]})
	}
	return out
}
