package dse

import (
	"math/rand"
	"sort"

	"archexplorer/internal/mlkit"
	"archexplorer/internal/uarch"
)

// RandomSearch samples uniform design points until the budget is spent.
type RandomSearch struct{ Seed int64 }

// Name implements Explorer.
func (r *RandomSearch) Name() string { return "Random" }

// Run implements Explorer.
func (r *RandomSearch) Run(ev *Evaluator, budget int) error {
	rng := rand.New(rand.NewSource(r.Seed))
	for ev.Sims < float64(budget) {
		pts := ev.DrawBatch(float64(budget), false, func() (uarch.Point, bool) {
			return ev.Space.Random(rng), true
		})
		if len(pts) == 0 {
			break
		}
		if _, err := ev.EvaluateBatch(pts, false); err != nil {
			return err
		}
		emitPhase(ev, r.Name(), "sample", len(pts))
	}
	return nil
}

// drawFrom adapts a fixed candidate list to DrawBatch's draw function.
func drawFrom(pts []uarch.Point) func() (uarch.Point, bool) {
	i := 0
	return func() (uarch.Point, bool) {
		if i >= len(pts) {
			var zero uarch.Point
			return zero, false
		}
		p := pts[i]
		i++
		return p, true
	}
}

// scoreOf is the scalar objective the surrogate baselines model: the
// paper's PPA trade-off Perf²/(Power·Area).
func scoreOf(e *Evaluation) float64 { return e.Tradeoff() }

// ---------------------------------------------------------------------------

// AdaBoostDSE reproduces the AdaBoost baseline [37]: an AdaBoost.RT
// ensemble over regression trees is trained on an upfront sampled design
// set (the original uses orthogonal-array sampling; uniform sampling over
// the full cross product plays that role here), then a large random
// candidate pool is screened by the trained model and the most promising
// designs are simulated with the remaining budget.
type AdaBoostDSE struct {
	Seed      int64
	TrainFrac float64 // share of the budget spent on the training set
	PoolSize  int     // candidates screened by the trained model
}

// NewAdaBoostDSE returns the configuration used in the experiments.
func NewAdaBoostDSE(seed int64) *AdaBoostDSE {
	return &AdaBoostDSE{Seed: seed, TrainFrac: 0.4, PoolSize: 2000}
}

// Name implements Explorer.
func (a *AdaBoostDSE) Name() string { return "AdaBoost" }

// Run implements Explorer.
func (a *AdaBoostDSE) Run(ev *Evaluator, budget int) error {
	rng := rand.New(rand.NewSource(a.Seed))

	var feats [][]float64
	var ys []float64
	for ev.Sims < a.TrainFrac*float64(budget) {
		pts := ev.DrawBatch(a.TrainFrac*float64(budget), false, func() (uarch.Point, bool) {
			return ev.Space.Random(rng), true
		})
		if len(pts) == 0 {
			break
		}
		evals, err := ev.EvaluateBatch(pts, false)
		if err != nil {
			return err
		}
		for _, e := range evals {
			if e.Failed {
				continue // degraded skips carry no usable training signal
			}
			feats = append(feats, ev.Features(e.Point))
			ys = append(ys, scoreOf(e))
		}
		emitPhase(ev, a.Name(), "train", len(pts))
	}

	model := mlkit.NewAdaBoostRT()
	model.Fit(feats, ys)

	type cand struct {
		pt    uarch.Point
		score float64
	}
	pool := make([]cand, 0, a.PoolSize)
	for i := 0; i < a.PoolSize; i++ {
		pt := ev.Space.Random(rng)
		pool = append(pool, cand{pt: pt, score: model.Predict(ev.Features(pt))})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].score > pool[j].score })

	ranked := make([]uarch.Point, len(pool))
	for i := range pool {
		ranked[i] = pool[i].pt
	}
	picked := ev.DrawBatch(float64(budget), false, drawFrom(ranked))
	if _, err := ev.EvaluateBatch(picked, false); err != nil {
		return err
	}
	emitPhase(ev, a.Name(), "screen", len(picked))
	return nil
}

// ---------------------------------------------------------------------------

// BOOMExplorer reproduces the Bayesian-optimisation baseline [8]: a
// Gaussian process models the PPA trade-off over normalised features and
// an expected-improvement acquisition selects the next design. The initial
// set is chosen by greedy max-min distance sampling (the original's
// diversity-aware initialisation).
type BOOMExplorer struct {
	Seed     int64
	InitN    int
	PoolSize int
}

// NewBOOMExplorer returns the configuration used in the experiments.
func NewBOOMExplorer(seed int64) *BOOMExplorer {
	return &BOOMExplorer{Seed: seed, InitN: 8, PoolSize: 400}
}

// Name implements Explorer.
func (b *BOOMExplorer) Name() string { return "BOOM-Explorer" }

// Run implements Explorer.
func (b *BOOMExplorer) Run(ev *Evaluator, budget int) error {
	rng := rand.New(rand.NewSource(b.Seed))

	// Diversity-aware initialisation: greedy max-min distance among a
	// random pool.
	var initPts []uarch.Point
	pool := make([]uarch.Point, 128)
	for i := range pool {
		pool[i] = ev.Space.Random(rng)
	}
	initPts = append(initPts, pool[0])
	for len(initPts) < b.InitN {
		bestIdx, bestDist := -1, -1.0
		for i, p := range pool {
			f := ev.Features(p)
			minD := -1.0
			for _, q := range initPts {
				d := sqDist(f, ev.Features(q))
				if minD < 0 || d < minD {
					minD = d
				}
			}
			if minD > bestDist {
				bestDist, bestIdx = minD, i
			}
		}
		initPts = append(initPts, pool[bestIdx])
	}

	var feats [][]float64
	var ys []float64
	bestY := -1.0
	add := func(e *Evaluation) {
		if e.Failed {
			return // degraded skips carry no usable training signal
		}
		feats = append(feats, ev.Features(e.Point))
		y := scoreOf(e)
		ys = append(ys, y)
		if y > bestY {
			bestY = y
		}
	}

	// The initial set is independent of any evaluation outcome, so it fans
	// out as one batch; the acquisition loop below stays sequential because
	// every pick depends on the refit surrogate.
	picked := ev.DrawBatch(float64(budget), false, drawFrom(initPts))
	evals, err := ev.EvaluateBatch(picked, false)
	if err != nil {
		return err
	}
	for _, e := range evals {
		add(e)
	}
	emitPhase(ev, b.Name(), "init", len(picked))
	if len(picked) < len(initPts) {
		return nil // budget exhausted mid-initialisation
	}

	for ev.Sims < float64(budget) {
		gp := mlkit.NewGP()
		if err := gp.Fit(feats, ys); err != nil {
			return err
		}
		var bestPt uarch.Point
		bestEI := -1.0
		for i := 0; i < b.PoolSize; i++ {
			pt := ev.Space.Random(rng)
			if ei := gp.ExpectedImprovement(ev.Features(pt), bestY); ei > bestEI {
				bestEI, bestPt = ei, pt
			}
		}
		e, err := ev.Evaluate(bestPt, false)
		if err != nil {
			return err
		}
		add(e)
		emitPhase(ev, b.Name(), "acquire", 1)
	}
	return nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ---------------------------------------------------------------------------

// ArchRankerDSE reproduces the ranking baseline [12]: a pairwise model is
// trained on an upfront simulated training set to predict which of two
// designs is better, then the trained ranker screens a large candidate
// pool and the predicted-best designs are simulated with the remaining
// budget (the original trains its ranking SVMs once and explores with the
// trained model).
type ArchRankerDSE struct {
	Seed      int64
	TrainFrac float64
	PoolSize  int
}

// NewArchRankerDSE returns the configuration used in the experiments.
func NewArchRankerDSE(seed int64) *ArchRankerDSE {
	return &ArchRankerDSE{Seed: seed, TrainFrac: 0.4, PoolSize: 2000}
}

// Name implements Explorer.
func (a *ArchRankerDSE) Name() string { return "ArchRanker" }

// Run implements Explorer.
func (a *ArchRankerDSE) Run(ev *Evaluator, budget int) error {
	rng := rand.New(rand.NewSource(a.Seed))

	type obs struct {
		f []float64
		y float64
	}
	var data []obs
	for ev.Sims < a.TrainFrac*float64(budget) {
		pts := ev.DrawBatch(a.TrainFrac*float64(budget), false, func() (uarch.Point, bool) {
			return ev.Space.Random(rng), true
		})
		if len(pts) == 0 {
			break
		}
		evals, err := ev.EvaluateBatch(pts, false)
		if err != nil {
			return err
		}
		for _, e := range evals {
			if e.Failed {
				continue // degraded skips carry no usable training signal
			}
			data = append(data, obs{f: ev.Features(e.Point), y: scoreOf(e)})
		}
		emitPhase(ev, a.Name(), "train", len(pts))
	}

	var better, worse [][]float64
	for i := range data {
		for j := range data {
			if data[i].y > data[j].y {
				better = append(better, data[i].f)
				worse = append(worse, data[j].f)
			}
		}
	}
	rk := mlkit.NewPairRanker(uarch.NumParams, a.Seed)
	rk.Fit(better, worse)

	type cand struct {
		pt    uarch.Point
		score float64
	}
	pool := make([]cand, 0, a.PoolSize)
	for i := 0; i < a.PoolSize; i++ {
		pt := ev.Space.Random(rng)
		pool = append(pool, cand{pt: pt, score: rk.Score(ev.Features(pt))})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].score > pool[j].score })

	ranked := make([]uarch.Point, len(pool))
	for i := range pool {
		ranked[i] = pool[i].pt
	}
	picked := ev.DrawBatch(float64(budget), false, drawFrom(ranked))
	if _, err := ev.EvaluateBatch(picked, false); err != nil {
		return err
	}
	emitPhase(ev, a.Name(), "screen", len(picked))
	return nil
}
