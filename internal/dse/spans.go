package dse

import (
	"sync"
	"time"

	"archexplorer/internal/obs"
)

// Span instrumentation support: the evaluator annotates every stage span
// with the 1-based worker slot it occupied, assigned lowest-free-first, so
// the selfdeg analysis can reconstruct worker-slot contention (two stages
// on the same slot never overlap; a gap between them on the critical path
// is time an eval spent waiting for a worker). Slots are an observation
// device — they do not gate anything; the leaf-gate semaphore still does —
// so the count of distinct slots observed equals the effective
// parallelism the pool actually granted.

// slotTracker hands out the lowest free slot number.
type slotTracker struct {
	mu   sync.Mutex
	busy []bool
}

func (t *slotTracker) acquire() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, b := range t.busy {
		if !b {
			t.busy[i] = true
			return i + 1
		}
	}
	t.busy = append(t.busy, true)
	return len(t.busy)
}

func (t *slotTracker) release(slot int) {
	if slot <= 0 {
		return
	}
	t.mu.Lock()
	t.busy[slot-1] = false
	t.mu.Unlock()
}

// stageSpans captures one workload's stage spans worker-side. The records
// accumulate in out with Span/Parent unset; the commit phase assigns ids
// and emits them, keeping the journal's event order deterministic. When
// off (telemetry disabled, or neither journal nor live dashboard active)
// every call is a no-op and nothing is measured.
type stageSpans struct {
	rec  *obs.Recorder
	on   bool
	wl   string
	slot int
	out  []obs.SpanEvent
}

// begin opens a stage span and returns the closure that finalizes it with
// the stage's measured duration (the same value the StageTimes field
// records, so spans and stage sums agree exactly).
func (s *stageSpans) begin(name string) func(time.Duration) {
	if !s.on {
		return func(time.Duration) {}
	}
	start := s.rec.Clock()
	done := s.rec.TrackSpan(obs.SpanStage, name, s.wl, s.slot)
	return func(d time.Duration) {
		done()
		s.out = append(s.out, obs.SpanEvent{
			SpanKind: obs.SpanStage, Name: name, Workload: s.wl,
			Worker: s.slot, StartNS: start, DurNS: int64(d),
		})
	}
}
