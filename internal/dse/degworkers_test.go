package dse

import (
	"bytes"
	"reflect"
	"regexp"
	"testing"

	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// evalWithWorkers runs one fully journaled evaluation at the given DEG
// worker count and returns the evaluation plus the raw journal bytes.
func evalWithWorkers(t *testing.T, workers int, streamed bool) (*Evaluation, []byte) {
	t.Helper()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	ev.DEGWindow = 400
	ev.DEGWorkers = workers
	ev.DEGStream = streamed
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec
	e, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return e, buf.Bytes()
}

// nsFields matches every wall-clock-valued journal field (they all end in
// _ns) plus the RFC3339 "time" stamps — the only nondeterministic bytes a
// journal may contain.
var nsFields = regexp.MustCompile(`"[a-z_]+_ns":-?\d+|"time":"[^"]*"`)

func scrubTimings(raw []byte) []byte {
	return nsFields.ReplaceAll(raw, []byte(`"t":0`))
}

// TestEvaluatorDEGWorkersDeterminism pins the tentpole's end-to-end
// guarantee at the evaluator level, for both the buffered and the streamed
// DEG path: the worker count changes neither any deterministic evaluation
// field nor a single journal byte (once wall-clock timings, the only
// legitimately nondeterministic fields, are scrubbed). Telemetry may gauge
// the worker count, but the journal event stream must be invariant.
func TestEvaluatorDEGWorkersDeterminism(t *testing.T) {
	for _, streamed := range []bool{false, true} {
		name := "buffered"
		if streamed {
			name = "streamed"
		}
		t.Run(name, func(t *testing.T) {
			seqE, seqRaw := evalWithWorkers(t, 1, streamed)
			parE, parRaw := evalWithWorkers(t, 4, streamed)

			if seqE.PPA != parE.PPA {
				t.Fatalf("workers changed PPA: %+v vs %+v", seqE.PPA, parE.PPA)
			}
			if !reflect.DeepEqual(seqE.Report, parE.Report) {
				t.Fatalf("workers changed the bottleneck report:\nseq %+v\npar %+v", seqE.Report, parE.Report)
			}
			if !reflect.DeepEqual(seqE.PerWorkloadIPC, parE.PerWorkloadIPC) {
				t.Fatalf("workers changed per-workload IPC: %v vs %v", seqE.PerWorkloadIPC, parE.PerWorkloadIPC)
			}
			if seqE.DEGWindows != parE.DEGWindows || seqE.DEGPeakEdges != parE.DEGPeakEdges || seqE.DEGDrops != parE.DEGDrops {
				t.Fatalf("workers changed window stats: seq{%d %d %d} par{%d %d %d}",
					seqE.DEGWindows, seqE.DEGPeakEdges, seqE.DEGDrops,
					parE.DEGWindows, parE.DEGPeakEdges, parE.DEGDrops)
			}

			seqJ, parJ := scrubTimings(seqRaw), scrubTimings(parRaw)
			if len(seqJ) == 0 {
				t.Fatal("empty journal")
			}
			if !bytes.Equal(seqJ, parJ) {
				// Find the first diverging line for a readable failure.
				sl, pl := bytes.Split(seqJ, []byte("\n")), bytes.Split(parJ, []byte("\n"))
				for i := 0; i < len(sl) && i < len(pl); i++ {
					if !bytes.Equal(sl[i], pl[i]) {
						t.Fatalf("journal bytes differ at line %d:\nseq %s\npar %s", i+1, sl[i], pl[i])
					}
				}
				t.Fatalf("journal lengths differ: %d vs %d lines", len(sl), len(pl))
			}
		})
	}
}
