// Package dse implements the design-space exploration loop of the paper:
// the PPA evaluator (simulator + power/area model, with simulation-budget
// accounting), the ArchExplorer bottleneck-removal-driven explorer, and the
// three machine-learning baselines it is compared against (ArchRanker,
// AdaBoost.RT, BOOM-Explorer) plus random search.
package dse

import (
	"fmt"

	"archexplorer/internal/calipers"
	"archexplorer/internal/deg"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pareto"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// Evaluation is the outcome of evaluating one design point on the full
// workload suite.
type Evaluation struct {
	Point  uarch.Point
	Config uarch.Config
	PPA    pareto.Point // Perf = mean IPC, Power = mean watts, Area = mm²

	// Report is the Equation-2 merged bottleneck report; populated only
	// when the evaluation was requested with DEG analysis.
	Report *deg.Report

	// Probe marks a short-prefix evaluation (Section 5.1's 100k-of-a-
	// Simpoint bottleneck probe) whose PPA is approximate.
	Probe bool

	// SimsAt is the evaluator's cumulative simulation count when this
	// evaluation completed (the x-coordinate on budget curves).
	SimsAt float64

	// PerWorkloadIPC records each workload's IPC (paper Fig. 13 uses
	// averages; ablations use the distribution).
	PerWorkloadIPC []float64
}

// Tradeoff is the paper's scalar PPA metric Perf²/(Power·Area).
func (e *Evaluation) Tradeoff() float64 {
	return mcpat.PPA(e.PPA.Perf, e.PPA.Power, e.PPA.Area)
}

// Evaluator runs detailed simulations and accounts the simulation budget.
// A full "simulation" is one (config, workload) run over the evaluation
// trace, matching the paper's budget axis. ArchExplorer's bottleneck
// probes follow Section 5.1: they simulate only a prefix of each workload
// ("the first hundred thousand instructions of each Simpoint"), so a probe
// is charged the corresponding fraction of a simulation. Cached repeats
// are free.
type Evaluator struct {
	Space     *uarch.Space
	Workloads []workload.Profile
	TraceLen  int
	// ProbeDiv is the trace-length divisor for probe evaluations (the
	// paper's 100k-of-100M would be 1000; the synthetic traces are far
	// shorter, so probes default to 1/8 of the evaluation trace).
	ProbeDiv int

	// Weights are Equation 2's designer-preference coefficients w_i, one
	// per workload. Nil means uniform 1/|B| (the paper's experimental
	// setting). They weight both the merged bottleneck report and the
	// averaged IPC/power.
	Weights []float64

	// UseCalipers swaps the bottleneck analyzer for the previous (static)
	// DEG formulation — the Section 6.2 comparison where the old
	// formulation's mis-attributed contributions steer the same DSE loop.
	UseCalipers bool

	// Sims counts the simulation budget spent so far, in units of full
	// (config, workload) simulations.
	Sims float64

	// History records every distinct evaluation in completion order.
	History []*Evaluation

	cache map[cacheKey]*Evaluation
}

type cacheKey struct {
	pt    uarch.Point
	probe bool
}

// NewEvaluator builds an evaluator over the given suite.
func NewEvaluator(space *uarch.Space, suite []workload.Profile, traceLen int) *Evaluator {
	if traceLen <= 0 {
		traceLen = 4000
	}
	return &Evaluator{
		Space:     space,
		Workloads: suite,
		TraceLen:  traceLen,
		ProbeDiv:  8,
		cache:     make(map[cacheKey]*Evaluation),
	}
}

// Evaluate fully simulates the design point on every workload. withDEG
// also runs the critical-path bottleneck analysis and merges the
// per-workload reports with uniform weights (Equation 2 with w_i = 1/|B|).
func (ev *Evaluator) Evaluate(pt uarch.Point, withDEG bool) (*Evaluation, error) {
	return ev.run(pt, withDEG, false)
}

// Probe is the cheap bottleneck-analysis evaluation ArchExplorer steps on:
// a short trace prefix with DEG analysis, charged fractionally.
func (ev *Evaluator) Probe(pt uarch.Point) (*Evaluation, error) {
	return ev.run(pt, true, true)
}

func (ev *Evaluator) run(pt uarch.Point, withDEG, probe bool) (*Evaluation, error) {
	key := cacheKey{pt: pt, probe: probe}
	if e, ok := ev.cache[key]; ok && (!withDEG || e.Report != nil) {
		return e, nil
	}
	cfg := ev.Space.Decode(pt)
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dse: invalid config: %w", err)
	}

	traceLen := ev.TraceLen
	cost := 1.0
	if probe {
		traceLen = ev.TraceLen / ev.ProbeDiv
		if traceLen < 250 {
			traceLen = 250
		}
		cost = float64(traceLen) / float64(ev.TraceLen)
	}

	var ipcSum, powSum float64
	var area float64
	var reports []*deg.Report
	e := &Evaluation{Point: pt, Config: cfg, Probe: probe}

	for _, wl := range ev.Workloads {
		stream, err := workload.CachedTrace(wl, traceLen)
		if err != nil {
			return nil, err
		}
		core, err := ooo.New(cfg)
		if err != nil {
			return nil, err
		}
		tr, stats, err := core.Run(stream)
		if err != nil {
			return nil, fmt.Errorf("dse: %s on %s: %w", wl.Name, cfg, err)
		}
		ev.Sims += cost

		pw, err := mcpat.Evaluate(cfg, stats)
		if err != nil {
			return nil, err
		}
		ipc := stats.IPC()
		if probe {
			// Short prefixes are dominated by cold caches and predictor
			// warmup; measure IPC over the post-warmup window so probe
			// estimates are comparable with full evaluations.
			warm := len(tr.Records) / 3
			span := tr.Records[len(tr.Records)-1].Stamp[pipetrace.SC] - tr.Records[warm].Stamp[pipetrace.SC]
			if span > 0 {
				ipc = float64(len(tr.Records)-warm-1) / float64(span)
			}
		}
		ipcSum += ipc
		powSum += pw.PowerW
		area = pw.AreaMM2
		e.PerWorkloadIPC = append(e.PerWorkloadIPC, ipc)

		if withDEG {
			var rep *deg.Report
			if ev.UseCalipers {
				rep, err = calipersReport(tr, cfg)
			} else {
				rep, _, _, err = deg.Analyze(tr, deg.Options{})
			}
			if err != nil {
				return nil, err
			}
			reports = append(reports, rep)
		}
	}

	if ev.Weights != nil {
		if len(ev.Weights) != len(ev.Workloads) {
			return nil, fmt.Errorf("dse: %d weights for %d workloads", len(ev.Weights), len(ev.Workloads))
		}
		var wsum, ipcW, powW float64
		for i, w := range ev.Weights {
			wsum += w
			ipcW += w * e.PerWorkloadIPC[i]
		}
		if wsum <= 0 {
			return nil, fmt.Errorf("dse: non-positive weight sum")
		}
		// Power re-weighted consistently with the per-workload shares.
		powW = powSum / float64(len(ev.Workloads)) // activity averaging kept uniform
		e.PPA = pareto.Point{Perf: ipcW / wsum, Power: powW, Area: area}
	} else {
		n := float64(len(ev.Workloads))
		e.PPA = pareto.Point{Perf: ipcSum / n, Power: powSum / n, Area: area}
	}
	if withDEG {
		merged, err := deg.Merge(reports, ev.Weights)
		if err != nil {
			return nil, err
		}
		e.Report = merged
	}

	e.SimsAt = ev.Sims
	if _, seen := ev.cache[key]; !seen {
		ev.History = append(ev.History, e)
	} else {
		// Upgrade the cached entry in place (adds the report).
		for i, old := range ev.History {
			if old.Point == pt && old.Probe == probe {
				ev.History[i] = e
				break
			}
		}
	}
	ev.cache[key] = e
	return e, nil
}

// Points returns the PPA outcomes of full-fidelity evaluations in
// completion order (the input to hypervolume-versus-budget curves).
func (ev *Evaluator) Points() []pareto.Point {
	var out []pareto.Point
	for _, e := range ev.History {
		if e.Probe {
			continue
		}
		out = append(out, e.PPA)
	}
	return out
}

// Features converts a design point to a normalised feature vector in
// [0,1]^NumParams for the ML baselines.
func (ev *Evaluator) Features(pt uarch.Point) []float64 {
	f := make([]float64, uarch.NumParams)
	for p := 0; p < uarch.NumParams; p++ {
		levels := ev.Space.Levels(uarch.Param(p))
		if levels > 1 {
			f[p] = float64(pt[p]) / float64(levels-1)
		}
	}
	return f
}

// Explorer is a DSE algorithm: it spends at most the given simulation
// budget on the evaluator and leaves its evaluations in the history.
type Explorer interface {
	Name() string
	Run(ev *Evaluator, budget int) error
}

// PointsUpTo returns the PPA outcomes of every evaluation whose cumulative
// simulation cost is within the given budget, in completion order. The
// exploration set includes probe evaluations: their short-prefix PPA
// estimates are conservative (cold caches and predictors bias IPC down),
// and the paper likewise records every explored design, re-evaluating the
// Pareto candidates at full fidelity.
func (ev *Evaluator) PointsUpTo(budget float64) []pareto.Point {
	var out []pareto.Point
	for _, e := range ev.History {
		if e.SimsAt > budget {
			continue
		}
		out = append(out, e.PPA)
	}
	return out
}

// calipersReport adapts the previous formulation's critical-path output to
// the Report shape the explorer consumes, so the same reassignment loop can
// be driven by the old (statically weighted, double-counting) attribution.
func calipersReport(tr *pipetrace.Trace, cfg uarch.Config) (*deg.Report, error) {
	g, err := calipers.Build(tr, calipers.Config{
		ROBEntries: cfg.ROBEntries, IQEntries: cfg.IQEntries,
		LQEntries: cfg.LQEntries, SQEntries: cfg.SQEntries,
		Width: cfg.Width, RdWrPorts: cfg.RdWrPorts,
	})
	if err != nil {
		return nil, err
	}
	res, err := g.CriticalPath()
	if err != nil {
		return nil, err
	}
	rep := &deg.Report{L: res.Length}
	if rep.L <= 0 {
		rep.L = 1
	}
	var attributed int64
	for r, d := range res.DelayByRes {
		rep.DelayByRes[r] = d
		rep.Contrib[r] = float64(d) / float64(rep.L)
		attributed += d
	}
	rep.Base = 1 - float64(attributed)/float64(rep.L)
	return rep, nil
}
