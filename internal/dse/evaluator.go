// Package dse implements the design-space exploration loop of the paper:
// the PPA evaluator (simulator + power/area model, with simulation-budget
// accounting), the ArchExplorer bottleneck-removal-driven explorer, and the
// three machine-learning baselines it is compared against (ArchRanker,
// AdaBoost.RT, BOOM-Explorer) plus random search.
package dse

import (
	"fmt"
	"sync"
	"time"

	"archexplorer/internal/calipers"
	"archexplorer/internal/deg"
	"archexplorer/internal/fault"
	"archexplorer/internal/isa"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/obs"
	"archexplorer/internal/ooo"
	"archexplorer/internal/par"
	"archexplorer/internal/pareto"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// StageTimes is the wall-clock spent per evaluation stage, summed across
// the workloads of one evaluation. Under parallel evaluation the per-stage
// sums exceed the evaluation's elapsed wall-clock: they count every
// worker's time, which is exactly what makes fan-out speedups observable
// (stage totals stay flat while Elapsed shrinks).
type StageTimes struct {
	Trace time.Duration // trace generation / cache lookup
	Sim   time.Duration // cycle-level out-of-order simulation
	Power time.Duration // McPAT power/area model
	DEG   time.Duration // graph build + critical path + attribution
	// DEGStream is the fused simulate+analyze stage of the streaming
	// pipeline (Evaluator.DEGStream); on streamed evaluations it replaces
	// Sim and DEG, which stay zero.
	DEGStream time.Duration
}

// Total is the summed worker time across all stages.
func (s StageTimes) Total() time.Duration {
	return s.Trace + s.Sim + s.Power + s.DEG + s.DEGStream
}

func (s *StageTimes) add(o StageTimes) {
	s.Trace += o.Trace
	s.Sim += o.Sim
	s.Power += o.Power
	s.DEG += o.DEG
	s.DEGStream += o.DEGStream
}

// Evaluation is the outcome of evaluating one design point on the full
// workload suite.
type Evaluation struct {
	Point  uarch.Point
	Config uarch.Config
	PPA    pareto.Point // Perf = mean IPC, Power = mean watts, Area = mm²

	// Report is the Equation-2 merged bottleneck report; populated only
	// when the evaluation was requested with DEG analysis.
	Report *deg.Report

	// Probe marks a short-prefix evaluation (Section 5.1's 100k-of-a-
	// Simpoint bottleneck probe) whose PPA is approximate.
	Probe bool

	// SimsAt is the evaluator's cumulative simulation count when this
	// evaluation completed (the x-coordinate on budget curves). It is
	// assigned at collection time, in request order, so it is identical
	// whether the evaluation ran sequentially or fanned out.
	SimsAt float64

	// PerWorkloadIPC records each workload's IPC (paper Fig. 13 uses
	// averages; ablations use the distribution).
	PerWorkloadIPC []float64

	// Times breaks the evaluation's worker time down by stage; Elapsed is
	// its end-to-end wall-clock. Both vary run to run — every other field
	// is deterministic.
	Times   StageTimes
	Elapsed time.Duration

	// SimInsts is the total number of instructions the simulator committed
	// across the suite for this evaluation (the numerator of simulator
	// throughput; zero for replayed or failed evaluations).
	SimInsts int64

	// DEGWindows and DEGPeakEdges summarize windowed bottleneck analysis
	// across the suite: total windows analyzed and the largest
	// single-window graph. Both stay zero on whole-trace runs. DEGDrops
	// counts defensively dropped DEG edges in either mode — nonzero means
	// the simulator emitted a corrupt trace.
	DEGWindows   int
	DEGPeakEdges int
	DEGDrops     int64

	// Failed marks an evaluation that failed permanently and was degraded
	// to a journaled skip (SkipFailures mode, or a failure replayed from a
	// checkpoint). Its PPA is zero and it never joins Pareto reductions,
	// but it occupies its History slot and its budget charge so that a
	// resumed campaign replays failures exactly where they happened.
	Failed     bool
	FailSite   string
	FailReason string
}

// Tradeoff is the paper's scalar PPA metric Perf²/(Power·Area). A failed
// evaluation trades off at zero (its PPA is unusable, not merely poor).
func (e *Evaluation) Tradeoff() float64 {
	if e.Failed {
		return 0
	}
	return mcpat.PPA(e.PPA.Perf, e.PPA.Power, e.PPA.Area)
}

// Evaluator runs detailed simulations and accounts the simulation budget.
// A full "simulation" is one (config, workload) run over the evaluation
// trace, matching the paper's budget axis. ArchExplorer's bottleneck
// probes follow Section 5.1: they simulate only a prefix of each workload
// ("the first hundred thousand instructions of each Simpoint"), so a probe
// is charged the corresponding fraction of a simulation. Cached repeats
// are free, including re-requests that only add the DEG report to an
// already-paid evaluation.
//
// The per-(config, workload) runs are independent, so an evaluation fans
// its workloads out across Parallelism workers; EvaluateBatch additionally
// fans out across design points. Results — PPA, PerWorkloadIPC, merged
// reports, History order, Sims accounting — are byte-identical to fully
// sequential operation regardless of completion order: workers fill
// per-workload slots that are reduced in suite order, and budget charges
// commit in request order.
type Evaluator struct {
	Space     *uarch.Space
	Workloads []workload.Profile
	TraceLen  int
	// ProbeDiv is the trace-length divisor for probe evaluations (the
	// paper's 100k-of-100M would be 1000; the synthetic traces are far
	// shorter, so probes default to 1/8 of the evaluation trace).
	ProbeDiv int

	// Parallelism bounds the concurrent (config, workload) simulations a
	// single evaluation or batch fans out. 0, the default, shares the
	// process-wide GOMAXPROCS compute-slot pool with every other
	// evaluator; 1 runs fully sequentially (today's behavior); any other
	// value uses a private pool of that size.
	Parallelism int

	// Weights are Equation 2's designer-preference coefficients w_i, one
	// per workload. Nil means uniform 1/|B| (the paper's experimental
	// setting). They weight both the merged bottleneck report and the
	// averaged IPC/power.
	Weights []float64

	// UseCalipers swaps the bottleneck analyzer for the previous (static)
	// DEG formulation — the Section 6.2 comparison where the old
	// formulation's mis-attributed contributions steer the same DSE loop.
	UseCalipers bool

	// DEGWindow switches bottleneck analysis to the streaming windowed
	// analyzer (deg.AnalyzeWindowed) with this many instructions per
	// window, bounding peak memory to O(window). 0, the default, keeps
	// whole-trace analysis — byte-identical to previous behavior.
	// DEGOverlap is the windows' context margin in instructions; 0 means
	// deg.DefaultOverlap.
	DEGWindow  int
	DEGOverlap int

	// SimBatch enables the batched-simulation fast path: when a batch
	// carries ≥2 jobs that will really simulate, each workload's configs
	// run through ooo.RunBatch in one shared-stream pass (see batchsim.go)
	// and the per-job sim stages consume the pre-computed results. Outputs
	// are bit-identical to per-config simulation — the conformance suite
	// pins it — so the switch trades nothing but the journal's extra
	// sim_batch spans. Streamed evaluations (DEGStream) bypass it: the
	// fused pipeline never materialises the trace a seed carries.
	SimBatch bool

	// DEGStream fuses simulation and bottleneck analysis into one streaming
	// stage: the simulator emits committed records in fixed-size chunks
	// through a bounded channel and the windowed analyzer consumes each
	// window as soon as its context margin is buffered, so analysis overlaps
	// simulation and no full trace is ever materialized — peak memory is
	// O(window + margin) instead of O(trace). Reports are bit-identical to
	// the buffered path at equal window/overlap. Probes and calipers runs
	// need the materialized trace and keep the buffered path regardless.
	// DEGChunk is the records-per-chunk granularity; 0 uses
	// ooo.DefaultChunkSize.
	DEGStream bool
	DEGChunk  int

	// DEGWorkers sets the windowed analyzer's worker-pool size for both
	// the buffered and streamed DEG paths. 0, the default, derives it from
	// the machine (par.DefaultLimit, i.e. GOMAXPROCS); 1 forces the
	// sequential path. Reports are bit-identical at every worker count —
	// the fold order is pinned — so this knob trades only memory
	// (bounded in-flight window copies, see deg.StreamAnalyzer) for
	// wall-clock. Note the DEG workers are not drawn from the Parallelism
	// slot pool: an evaluation fanning out across workloads AND windows can
	// oversubscribe the machine by design, since the windowed phases are
	// short and self-balancing.
	DEGWorkers int

	// Sims counts the simulation budget spent so far, in units of full
	// (config, workload) simulations. It is mutated only while committing
	// finished evaluations on the calling goroutine; explorers read it
	// between calls as before.
	Sims float64

	// History records every distinct evaluation in completion order.
	History []*Evaluation

	// Obs, when non-nil, receives telemetry: cache and evaluation
	// counters, the in-flight gauge, per-stage latency histograms, and —
	// when a journal is attached — one EvalSpan per committed evaluation
	// plus the hierarchical batch/eval/stage SpanEvents the selfdeg
	// analysis consumes. Journal events are emitted exclusively from the
	// commit phase, in commit order, so the event sequence is deterministic
	// regardless of the worker fan-out; with Obs nil every result is
	// byte-identical to an uninstrumented evaluator.
	Obs *obs.Recorder

	// SpanParent is the journal span id the evaluator's batch spans parent
	// to: the campaign span (set once by the driving tool) or the current
	// iteration span (set and restored around each explorer step, on the
	// driving goroutine). 0 — no parent — simply roots the batches.
	SpanParent int64

	// slots assigns worker-slot numbers to stage spans (see spans.go).
	slots slotTracker

	// Faults is the injected failure plan driving the fault-tolerance test
	// harness; nil (the default) injects nothing. Each pipeline stage
	// consults its named site before running.
	Faults *fault.Plan

	// Retry is the capped-exponential-backoff policy applied to transient
	// stage failures (including timeouts). The zero value retries nothing:
	// a transient failure then surfaces like a permanent one.
	Retry fault.Retry

	// StageTimeout bounds each stage attempt; an attempt that exceeds it is
	// abandoned and retried as a transient failure. 0 disables the bound.
	StageTimeout time.Duration

	// SkipFailures degrades a permanently failed evaluation to a journaled
	// skip — it enters History marked Failed, charged its full suite cost —
	// instead of aborting the campaign. Kill-class faults always abort.
	SkipFailures bool

	// Checkpoint, when non-nil, is invoked after every batch that committed
	// at least one evaluation, on the committing goroutine. The persist
	// package wires it to an atomic campaign snapshot.
	Checkpoint func()

	// restored is the replay store for checkpoint resume (see resume.go):
	// committed outcomes from a previous incarnation of this campaign,
	// served instead of simulating so the re-run retraces the original.
	restored map[cacheKey]*RestoredResult

	// mu guards cache, History, Sims, and obsSpans against the
	// evaluator's own batch fan-out. The exported fields are still meant
	// to be inspected from the goroutine driving the exploration loop.
	mu    sync.Mutex
	cache map[cacheKey]*Evaluation

	// obsSpans remembers the journal span id of each cached entry so a
	// DEG upgrade can reference the span it supersedes.
	obsSpans map[cacheKey]int64
}

type cacheKey struct {
	pt    uarch.Point
	probe bool
}

// NewEvaluator builds an evaluator over the given suite.
func NewEvaluator(space *uarch.Space, suite []workload.Profile, traceLen int) *Evaluator {
	if traceLen <= 0 {
		traceLen = 4000
	}
	return &Evaluator{
		Space:     space,
		Workloads: suite,
		TraceLen:  traceLen,
		ProbeDiv:  8,
		cache:     make(map[cacheKey]*Evaluation),
	}
}

// Evaluate fully simulates the design point on every workload. withDEG
// also runs the critical-path bottleneck analysis and merges the
// per-workload reports with uniform weights (Equation 2 with w_i = 1/|B|).
func (ev *Evaluator) Evaluate(pt uarch.Point, withDEG bool) (*Evaluation, error) {
	out, err := ev.batch([]uarch.Point{pt}, withDEG, false)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Probe is the cheap bottleneck-analysis evaluation ArchExplorer steps on:
// a short trace prefix with DEG analysis, charged fractionally.
func (ev *Evaluator) Probe(pt uarch.Point) (*Evaluation, error) {
	out, err := ev.batch([]uarch.Point{pt}, true, true)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// EvaluateBatch evaluates independent design points, fanning both points
// and their workloads out across the evaluator's parallelism. The returned
// slice aligns with pts; duplicated or already-cached points are resolved
// once and charged exactly as a sequential Evaluate loop would charge
// them. Results and accounting are byte-identical to calling Evaluate on
// each point in slice order.
func (ev *Evaluator) EvaluateBatch(pts []uarch.Point, withDEG bool) ([]*Evaluation, error) {
	return ev.batch(pts, withDEG, false)
}

// ProbeBatch is EvaluateBatch for probe evaluations.
func (ev *Evaluator) ProbeBatch(pts []uarch.Point) ([]*Evaluation, error) {
	return ev.batch(pts, true, true)
}

// DrawBatch plans the set of design points a sequential budget loop would
// evaluate: it keeps drawing from next while the projected simulation
// count stays under budget, mirroring
//
//	for ev.Sims < budget { ev.Evaluate(next()) }
//
// point for point — a draw that is already cached (or repeats an earlier
// draw in the same batch) projects zero cost, a fresh one projects a full
// (or probe-fraction) suite. next returning ok=false ends the batch early,
// e.g. when a ranked candidate pool runs out. Feed the result to
// EvaluateBatch/ProbeBatch and the budget lands exactly where the
// sequential loop would have left it.
func (ev *Evaluator) DrawBatch(budget float64, probe bool, next func() (uarch.Point, bool)) []uarch.Point {
	_, cost := ev.planCost(probe)
	suiteCost := cost * float64(len(ev.Workloads))
	ev.mu.Lock()
	defer ev.mu.Unlock()
	projected := ev.Sims
	seen := make(map[cacheKey]bool)
	var out []uarch.Point
	for projected < budget {
		pt, ok := next()
		if !ok {
			break
		}
		out = append(out, pt)
		key := cacheKey{pt: pt, probe: probe}
		if seen[key] {
			continue
		}
		if _, hit := ev.cache[key]; hit {
			continue
		}
		seen[key] = true
		projected += suiteCost
	}
	return out
}

// planCost returns the per-workload trace length and budget cost of one
// (config, workload) run: 1.0 for a full simulation, the trace-length
// fraction for a probe (Section 5.1's prefix charging).
func (ev *Evaluator) planCost(probe bool) (traceLen int, cost float64) {
	traceLen = ev.TraceLen
	cost = 1.0
	if probe {
		traceLen = ev.TraceLen / ev.ProbeDiv
		if traceLen < 250 {
			traceLen = 250
		}
		cost = float64(traceLen) / float64(ev.TraceLen)
	}
	return traceLen, cost
}

// job is one deduplicated design point of a batch.
type job struct {
	key     cacheKey
	withDEG bool
	// upgrade marks a cache hit that lacks the requested report: the
	// simulation re-runs to rebuild the trace, but the budget was already
	// paid — cached repeats are free, so the upgrade charges nothing.
	upgrade bool
	slots   []int // indices into the batch output
	e       *Evaluation
	err     error
	// faults are the retry/timeout records collected by this job's workers,
	// flattened in suite order by reduce and journaled at commit.
	faults []obs.FaultEvent
	// spans are the stage spans collected by this job's workers (ids
	// unassigned), flattened in suite order by reduce and emitted at
	// commit; startNS is the job's compute start on the recorder clock.
	spans    []obs.SpanEvent
	startNS  int64
	durNS    int64
	replayed bool
	// seeds are the batched-simulation pre-phase's per-workload outputs for
	// this job (nil without the fast path); each sim stage consumes its
	// slot instead of running the simulator (see batchsim.go).
	seeds []*simSeed
}

// batch implements Evaluate/Probe/EvaluateBatch/ProbeBatch: resolve cache
// hits, compute the missing evaluations in parallel, then commit results in
// request order so History, Sims, and SimsAt match sequential operation.
func (ev *Evaluator) batch(pts []uarch.Point, withDEG, probe bool) ([]*Evaluation, error) {
	out := make([]*Evaluation, len(pts))

	// Span capture starts before cache resolution so the batch span covers
	// the whole call; it is measurement only — ids are allocated and events
	// emitted from the commit phase below.
	rec := ev.Obs
	batchName := "evaluate"
	if probe {
		batchName = "probe"
	}
	var batchStart int64
	if len(pts) > 0 && rec.SpansActive() {
		batchStart = rec.Clock()
		defer rec.TrackSpan(obs.SpanBatch, batchName, "", 0)()
	}

	// Phase 1: resolve hits and dedupe misses in first-occurrence order.
	ev.mu.Lock()
	if ev.cache == nil {
		ev.cache = make(map[cacheKey]*Evaluation)
	}
	var jobs []*job
	byKey := make(map[cacheKey]*job)
	for i, pt := range pts {
		key := cacheKey{pt: pt, probe: probe}
		// Failed entries are sticky: a design that failed permanently is
		// never re-attempted, whatever fidelity is requested.
		if e, ok := ev.cache[key]; ok && (e.Failed || !withDEG || e.Report != nil) {
			out[i] = e
			continue
		}
		if j, ok := byKey[key]; ok {
			j.slots = append(j.slots, i)
			continue
		}
		j := &job{key: key, withDEG: withDEG, slots: []int{i}}
		_, j.upgrade = ev.cache[key]
		byKey[key] = j
		jobs = append(jobs, j)
	}
	ev.mu.Unlock()

	// Cache accounting: every request slot that did not become a job's
	// first occurrence was served from cache (or rides a duplicate).
	ev.Obs.Counter(obs.MetricCacheHits).Add(int64(len(pts) - len(jobs)))
	for _, j := range jobs {
		if j.upgrade {
			ev.Obs.Counter(obs.MetricCacheUpgrades).Inc()
		} else {
			ev.Obs.Counter(obs.MetricCacheMisses).Inc()
		}
	}

	// Phase 2: compute misses — points × workloads fan out onto the
	// compute-slot pool. Job goroutines are structural (they only wait),
	// so they are not slot-bounded themselves. With the batched fast path
	// on, a pre-phase simulates all jobs' configs per workload in shared-
	// stream passes first; the jobs' sim stages then consume the seeds.
	var bs *batchSeeds
	if len(jobs) > 0 {
		leaf := ev.leafGate()
		streamed := withDEG && ev.DEGStream && !ev.UseCalipers && !probe
		if ev.SimBatch && !streamed && len(jobs) > 1 {
			bs = ev.runBatchSim(jobs, withDEG, probe, leaf)
			if bs != nil && bs.killErr != nil {
				return nil, bs.killErr
			}
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			j := j
			wg.Add(1)
			go func() {
				defer wg.Done()
				ev.compute(j, probe, leaf)
			}()
		}
		wg.Wait()
		// Seeds nobody consumed (stage skipped by an injected fault, job
		// failed earlier) recycle here, before any result is visible.
		bs.discardUnused()
	}

	// Phase 3: commit in first-occurrence order — exactly the order a
	// sequential loop would have finished them — assigning SimsAt and
	// History position deterministically. Telemetry is emitted here and
	// only here (never from workers), so the journal's event order is the
	// commit order and therefore reproducible run to run. The batch span
	// id is allocated first, before any eval span, so the id sequence is
	// deterministic too; its event is emitted last, after its children —
	// readers see a post-order traversal of the span tree.
	var batchSpan int64
	if len(pts) > 0 && rec.JournalEnabled() {
		batchSpan = rec.NextSpan()
	}
	// The pre-phase's sim_batch spans and fallback events precede every
	// eval span, in suite order — the order a sequential pre-phase would
	// have produced them.
	bs.emit(rec, batchSpan)
	committed := false
	for _, j := range jobs {
		if j.err != nil && (fault.IsKill(j.err) || !ev.SkipFailures) {
			return nil, j.err
		}
		var charge float64
		if !j.upgrade {
			_, cost := ev.planCost(probe)
			charge = cost * float64(len(ev.Workloads))
		}
		if j.err != nil {
			// Permanent failure degraded to a journaled skip: a Failed
			// placeholder takes the evaluation's History slot and budget
			// charge, so a resumed campaign replays the skip in place.
			j.e = &Evaluation{
				Point: j.key.pt, Config: ev.Space.Decode(j.key.pt), Probe: probe,
				Failed: true, FailSite: failSite(j.err), FailReason: j.err.Error(),
			}
		}
		ev.mu.Lock()
		ev.Sims += charge
		j.e.SimsAt = ev.Sims
		switch {
		case j.upgrade && j.e.Failed:
			// A failed DEG upgrade keeps the paid-for plain entry in the
			// cache and History; the failure is served to this batch's
			// request slots only.
		case j.upgrade:
			// Upgrade the cached entry in place (adds the report).
			for i, old := range ev.History {
				if old.Point == j.key.pt && old.Probe == j.key.probe {
					ev.History[i] = j.e
					break
				}
			}
			ev.cache[j.key] = j.e
		default:
			ev.History = append(ev.History, j.e)
			ev.cache[j.key] = j.e
		}
		ev.mu.Unlock()
		ev.obsCommit(j, batchSpan)
		for _, i := range j.slots {
			out[i] = j.e
		}
		committed = true
	}
	if committed && ev.Checkpoint != nil {
		ev.Checkpoint()
	}
	if batchSpan != 0 {
		rec.Emit(&obs.SpanEvent{
			Span: batchSpan, Parent: ev.SpanParent, SpanKind: obs.SpanBatch,
			Name: batchName, Hits: len(pts) - len(jobs),
			StartNS: batchStart, DurNS: rec.Clock() - batchStart,
		})
	}
	return out, nil
}

// obsCommit records one committed job on the telemetry recorder: counters,
// the budget gauge, and — when a journal is attached — the evaluation's
// EvalSpan plus its stage SpanEvents and the eval SpanEvent that parents
// them to the batch (children first, parent last). The eval SpanEvent
// reuses the EvalSpan's id, so the two views of one evaluation join on it.
// Runs on the committing goroutine, after the job left the critical
// section; a nil recorder makes it a no-op.
func (ev *Evaluator) obsCommit(j *job, batchSpan int64) {
	rec := ev.Obs
	if rec == nil {
		return
	}
	e := j.e
	switch {
	case e.Failed:
		rec.Counter(obs.MetricEvalSkips).Inc()
	case e.Probe:
		rec.Counter(obs.MetricProbes).Inc()
	default:
		rec.Counter(obs.MetricEvaluations).Inc()
	}
	rec.Gauge(obs.MetricBudgetSpent).Set(e.SimsAt)
	if e.DEGDrops > 0 {
		rec.Counter(obs.MetricDEGDrops).Add(e.DEGDrops)
	}
	if e.DEGWindows > 0 {
		rec.Gauge(obs.MetricDEGWindows).Set(float64(e.DEGWindows))
		rec.Gauge(obs.MetricDEGPeakEdges).Set(float64(e.DEGPeakEdges))
		rec.Gauge(obs.MetricDEGWorkers).Set(float64(ev.degWorkers()))
	}
	if !rec.JournalEnabled() {
		return
	}
	// Worker-collected retry/timeout records land in the journal here, in
	// suite order, stamped with the design point they belong to.
	for i := range j.faults {
		f := j.faults[i] // copy: Emit assigns the Head in place
		f.Point = append([]int(nil), e.Point[:]...)
		rec.Emit(&f)
	}
	if e.Failed {
		rec.Emit(&obs.FaultEvent{
			Site: e.FailSite, Class: fault.Permanent.String(), Action: "skip",
			Point: append([]int(nil), e.Point[:]...), Err: e.FailReason,
		})
		if batchSpan != 0 {
			// Failed evaluations still occupy campaign wall-clock; an eval
			// span (with whatever stage spans completed before the failure)
			// keeps the selfdeg graph's coverage complete.
			id := rec.NextSpan()
			for i := range j.spans {
				s := j.spans[i] // copy: Emit assigns the Head in place
				s.Span = rec.NextSpan()
				s.Parent = id
				rec.Emit(&s)
			}
			rec.Emit(&obs.SpanEvent{
				Span: id, Parent: batchSpan, SpanKind: obs.SpanEval,
				Name: e.Config.String(), Point: append([]int(nil), e.Point[:]...),
				Cache: "failed", StartNS: j.startNS, DurNS: j.durNS,
			})
		}
		return
	}
	span := rec.NextSpan()
	ev.mu.Lock()
	if ev.obsSpans == nil {
		ev.obsSpans = make(map[cacheKey]int64)
	}
	var replaces int64
	if j.upgrade {
		replaces = ev.obsSpans[j.key]
	}
	ev.obsSpans[j.key] = span
	ev.mu.Unlock()
	rec.Emit(&obs.EvalSpan{
		Span:         span,
		Replaces:     replaces,
		Point:        append([]int(nil), e.Point[:]...),
		Config:       e.Config.String(),
		Probe:        e.Probe,
		SimsAt:       e.SimsAt,
		Perf:         e.PPA.Perf,
		PowerW:       e.PPA.Power,
		AreaMM2:      e.PPA.Area,
		DEGWindows:   e.DEGWindows,
		DEGPeakEdges: e.DEGPeakEdges,
		DEGDrops:     e.DEGDrops,
		SimInsts:     e.SimInsts,
		TraceNS:      e.Times.Trace.Nanoseconds(),
		SimNS:        e.Times.Sim.Nanoseconds(),
		PowerNS:      e.Times.Power.Nanoseconds(),
		DEGNS:        e.Times.DEG.Nanoseconds(),
		DEGStreamNS:  e.Times.DEGStream.Nanoseconds(),
		ElapsedNS:    e.Elapsed.Nanoseconds(),
	})
	if batchSpan == 0 {
		return
	}
	for i := range j.spans {
		s := j.spans[i] // copy: Emit assigns the Head in place
		s.Span = rec.NextSpan()
		s.Parent = span
		rec.Emit(&s)
	}
	cache := ""
	switch {
	case j.upgrade:
		cache = "upgrade"
	case j.replayed:
		cache = "replay"
	}
	rec.Emit(&obs.SpanEvent{
		Span: span, Parent: batchSpan, SpanKind: obs.SpanEval,
		Name: e.Config.String(), Point: append([]int(nil), e.Point[:]...),
		Cache: cache, StartNS: j.startNS, DurNS: j.durNS,
	})
}

// leafGate returns the executor for CPU-bound per-workload tasks: the
// process-wide slot pool by default, a private pool for an explicit
// Parallelism, or nil to request inline (sequential) execution.
func (ev *Evaluator) leafGate() func(func()) {
	switch p := ev.Parallelism; {
	case p == 1:
		return nil
	case p > 1:
		sem := make(chan struct{}, p)
		return func(fn func()) {
			sem <- struct{}{}
			defer func() { <-sem }()
			fn()
		}
	default:
		return par.Slot
	}
}

// wlResult is one workload's slot in an evaluation's fan-out.
type wlResult struct {
	ipc, pow, area float64
	rep            *deg.Report
	simInsts       int64
	degWindows     int
	degPeakEdges   int
	degDrops       int64
	times          StageTimes
	err            error
	// faults are the slot's retry/timeout records, in occurrence order.
	faults []obs.FaultEvent
	// spans are the slot's stage spans, in stage order (ids unassigned).
	spans []obs.SpanEvent
}

// compute runs one job: simulate every workload (concurrently when leaf is
// non-nil), then reduce the per-workload slots in suite order. A job whose
// outcome is in the checkpoint replay store skips simulation entirely.
func (ev *Evaluator) compute(j *job, probe bool, leaf func(func())) {
	// Span interval on the recorder clock (0s with telemetry off). Taken
	// here rather than from Elapsed so every path — replay, validation
	// error, permanent failure — still yields a well-formed interval that
	// contains its stage spans.
	j.startNS = ev.Obs.Clock()
	defer func() { j.durNS = ev.Obs.Clock() - j.startNS }()
	if ev.serveRestored(j, probe) {
		j.replayed = true
		return
	}
	start := time.Now()
	cfg := ev.Space.Decode(j.key.pt)
	if err := cfg.Validate(); err != nil {
		j.err = fmt.Errorf("dse: invalid config: %w", err)
		return
	}
	if ev.Weights != nil && len(ev.Weights) != len(ev.Workloads) {
		j.err = fmt.Errorf("dse: %d weights for %d workloads", len(ev.Weights), len(ev.Workloads))
		return
	}
	traceLen, _ := ev.planCost(probe)

	seedAt := func(k int) *simSeed {
		if k < len(j.seeds) {
			return j.seeds[k]
		}
		return nil
	}
	outs := make([]wlResult, len(ev.Workloads))
	if leaf == nil {
		for k := range ev.Workloads {
			outs[k] = ev.simWorkload(cfg, ev.Workloads[k], traceLen, j.withDEG, probe, seedAt(k))
		}
	} else {
		var wg sync.WaitGroup
		for k := range ev.Workloads {
			k := k
			wg.Add(1)
			go func() {
				defer wg.Done()
				leaf(func() {
					outs[k] = ev.simWorkload(cfg, ev.Workloads[k], traceLen, j.withDEG, probe, seedAt(k))
				})
			}()
		}
		wg.Wait()
	}
	j.e, j.err = ev.reduce(j, probe, cfg, outs)
	if j.e != nil {
		j.e.Elapsed = time.Since(start)
	}
}

// simOutcome bundles the simulate stage's products so the stage closure can
// return them as one fresh value (see runStage's self-containment rule).
// seeded marks an outcome consumed from the batched pre-phase rather than
// simulated by this attempt.
type simOutcome struct {
	tr     *pipetrace.Trace
	stats  *ooo.Stats
	seeded bool
}

// degOutcome bundles the bottleneck stage's products: the report plus the
// windowed analyzer's stats (zero for whole-trace and calipers analysis,
// except drops which both DEG modes surface).
type degOutcome struct {
	rep       *deg.Report
	windows   int
	peakEdges int
	drops     int64
}

// simWorkload runs one (config, workload) simulation end to end: trace,
// cycle-level core, power model, and (optionally) bottleneck analysis. Each
// stage runs under the evaluator's resilience policy — fault injection,
// timeout bounding, transient retries — via runStage; the stage closures
// only read their inputs and return fresh values, so an abandoned (timed
// out) attempt cannot race a retry.
func (ev *Evaluator) simWorkload(cfg uarch.Config, wl workload.Profile, traceLen int, withDEG, probe bool, seed *simSeed) (r wlResult) {
	// Streamed evaluations fuse simulation and analysis; probes need the
	// materialized trace for warm-window IPC and calipers runs need it for
	// the static graph, so both keep the buffered path.
	streamed := withDEG && ev.DEGStream && !ev.UseCalipers && !probe
	sr := &stageRunner{ev: ev, workload: wl.Name}
	// Stage span capture (journal and/or live dashboard): occupy a worker
	// slot for the duration of this workload and time each stage against
	// the recorder clock. Off, it costs one atomic load.
	sp := &stageSpans{rec: ev.Obs, wl: wl.Name}
	if ev.Obs.SpansActive() {
		sp.on = true
		sp.slot = ev.slots.acquire()
		defer ev.slots.release(sp.slot)
	}
	// r is a named result so these run after any return statement's copy.
	defer func() { r.spans = sp.out }()
	defer func() { r.faults = sr.recs }()
	// Worker-phase telemetry: the in-flight gauge and latency histograms
	// are unordered aggregates, so they may be updated here; journal
	// events may not (they are commit-phase only).
	if rec := ev.Obs; rec != nil {
		rec.Gauge(obs.MetricSimsInFlight).Add(1)
		defer func() {
			rec.Gauge(obs.MetricSimsInFlight).Add(-1)
			rec.Histogram(obs.MetricStageTrace).Observe(r.times.Trace.Seconds())
			rec.Histogram(obs.MetricStagePower).Observe(r.times.Power.Seconds())
			if streamed {
				rec.Histogram(obs.MetricStageDEGStream).Observe(r.times.DEGStream.Seconds())
			} else {
				rec.Histogram(obs.MetricStageSim).Observe(r.times.Sim.Seconds())
				if withDEG {
					rec.Histogram(obs.MetricStageDEG).Observe(r.times.DEG.Seconds())
				}
			}
			// Counters and gauges are unordered aggregates like the ones
			// above, so the throughput metrics may also land worker-side.
			if r.simInsts > 0 {
				rec.Counter(obs.MetricSimInsts).Add(r.simInsts)
				simSecs := r.times.Sim.Seconds()
				if streamed {
					// The fused stage's wall-clock covers analysis too; it
					// still bounds pipeline throughput from below.
					simSecs = r.times.DEGStream.Seconds()
				}
				if simSecs > 0 {
					rec.Gauge(obs.MetricSimInstRate).Set(float64(r.simInsts) / simSecs)
				}
			}
		}()
	}

	endStage := sp.begin("trace")
	t0 := time.Now()
	stream, err := runStage(sr, fault.SiteTrace, func() ([]isa.Inst, error) {
		return workload.CachedTrace(wl, traceLen)
	})
	r.times.Trace = time.Since(t0)
	endStage(r.times.Trace)
	if err != nil {
		r.err = err
		return r
	}

	if streamed {
		return ev.simWorkloadStreamed(r, sp, sr, cfg, wl, stream)
	}

	endStage = sp.begin("sim")
	t0 = time.Now()
	sim, err := runStageGuarded(sr, fault.SiteSim, nil,
		// A timed-out attempt's late trace has no receiver; recycle it.
		func(o simOutcome) { o.tr.Release() },
		func() (simOutcome, error) {
			// Batched fast path: claim this workload's pre-simulated lane.
			// The claim happens after the injected-fault check in the stage
			// runner, so an injection here leaves the seed unclaimed for the
			// retry; a seedless retry (or a lane that failed in the batch
			// pass) falls through to the live per-config simulation below.
			if tr, stats, ok := seed.take(); ok {
				return simOutcome{tr: tr, stats: stats, seeded: true}, nil
			}
			core, err := ooo.New(cfg)
			if err != nil {
				return simOutcome{}, err
			}
			// Probe-lite: without bottleneck analysis downstream, nothing reads
			// the DEG annotations, so skip recording them. Stamps and Stats are
			// bit-identical either way (pinned by ooo's parity tests).
			var tr *pipetrace.Trace
			var stats *ooo.Stats
			if withDEG {
				tr, stats, err = core.Run(stream)
			} else {
				tr, stats, err = core.RunLite(stream)
			}
			if err != nil {
				return simOutcome{}, fmt.Errorf("dse: %s on %s: %w", wl.Name, cfg, err)
			}
			if len(tr.Records) == 0 {
				tr.Release()
				return simOutcome{}, fmt.Errorf("dse: %s on %s: simulation committed no instructions", wl.Name, cfg)
			}
			return simOutcome{tr: tr, stats: stats}, nil
		})
	r.times.Sim = time.Since(t0)
	if err == nil && sim.seeded {
		// The compute happened in the batch pass; record this lane's share
		// of it as the sim time so per-eval stage accounting still sums to
		// the real compute spent (the sim_batch span carries the pass's
		// actual interval).
		r.times.Sim = time.Duration(seed.durNS)
	}
	endStage(r.times.Sim)
	if err != nil {
		r.err = err
		return r
	}
	tr, stats := sim.tr, sim.stats
	r.simInsts = int64(len(tr.Records))
	// The trace is consumed entirely within this call (warm-window IPC and
	// the DEG report aggregate; neither escapes holding record references),
	// so its buffers recycle through the trace pool when this reference —
	// the owner's — drops. Abandoned timed-out DEG attempts hold their own
	// references (the stage's acquire hook), so this Release is always safe
	// and no evaluation leaks its trace.
	defer tr.Release()

	endStage = sp.begin("power")
	t0 = time.Now()
	pw, err := runStage(sr, fault.SitePower, func() (mcpat.Result, error) {
		return mcpat.Evaluate(cfg, stats)
	})
	r.times.Power = time.Since(t0)
	endStage(r.times.Power)
	if err != nil {
		r.err = err
		return r
	}
	r.ipc = stats.IPC()
	if probe {
		if w, ok := warmWindowIPC(tr); ok {
			r.ipc = w
		}
	}
	r.pow = pw.PowerW
	r.area = pw.AreaMM2

	if withDEG {
		endStage = sp.begin("deg")
		t0 = time.Now()
		dout, err := runStageGuarded(sr, fault.SiteDEG,
			// Each attempt reads tr and may outlive this function when a
			// timeout abandons it, so it pins the trace with its own
			// reference, taken before the attempt starts.
			func() func() { tr.Retain(); return tr.Release },
			nil,
			func() (degOutcome, error) {
				if ev.UseCalipers {
					rep, err := calipersReport(tr, cfg)
					return degOutcome{rep: rep}, err
				}
				if ev.DEGWindow > 0 {
					rep, ws, err := deg.AnalyzeWindowed(tr, deg.WindowOptions{
						Window: ev.DEGWindow, Overlap: ev.DEGOverlap,
						ReorderWindow: cfg.ROBEntries,
						Workers:       ev.degWorkers(),
					})
					if err != nil {
						return degOutcome{}, err
					}
					return degOutcome{rep: rep, windows: ws.Windows,
						peakEdges: ws.PeakEdges, drops: int64(ws.Dropped())}, nil
				}
				rep, g, _, err := deg.Analyze(tr, deg.Options{})
				if err != nil {
					return degOutcome{}, err
				}
				return degOutcome{rep: rep, drops: int64(g.Dropped())}, nil
			})
		r.times.DEG = time.Since(t0)
		endStage(r.times.DEG)
		if err != nil {
			r.err = err
			return r
		}
		r.rep = dout.rep
		r.degWindows = dout.windows
		r.degPeakEdges = dout.peakEdges
		r.degDrops = dout.drops
	}
	return r
}

// degWorkers resolves the DEG analysis worker count: the configured
// DEGWorkers, or the machine's compute width (par.DefaultLimit, i.e.
// GOMAXPROCS) when unset. A resolved count of 1 is exactly the historical
// sequential path.
func (ev *Evaluator) degWorkers() int {
	if ev.DEGWorkers > 0 {
		return ev.DEGWorkers
	}
	return par.DefaultLimit()
}

// queueWaitHook returns the streamed analyzer's per-window queue-wait
// observer, feeding the MetricDEGQueueWait histogram; nil without
// telemetry, so the uninstrumented path never pays for time.Now. The
// histogram is concurrency-safe — workers call the hook directly.
func (ev *Evaluator) queueWaitHook() func(time.Duration) {
	if ev.Obs == nil {
		return nil
	}
	h := ev.Obs.Histogram(obs.MetricDEGQueueWait)
	return func(d time.Duration) { h.Observe(d.Seconds()) }
}

// streamDepth is the bounded channel depth between the simulating producer
// and the analyzing consumer of a streamed evaluation: enough for the
// stages to overlap, small enough that in-flight chunks stay a rounding
// error next to the analyzer's window+margin working set.
const streamDepth = 2

// streamOutcome bundles the fused simulate+analyze stage's products.
type streamOutcome struct {
	stats *ooo.Stats
	rep   *deg.Report
	ws    *deg.WindowStats
}

// simWorkloadStreamed is simWorkload's tail for streamed evaluations: one
// fused stage runs the simulator and the windowed DEG analyzer as a
// producer/consumer pair over a bounded chunk channel, then the power model
// runs on the stats as usual. No full trace is ever materialized.
func (ev *Evaluator) simWorkloadStreamed(r wlResult, sp *stageSpans, sr *stageRunner, cfg uarch.Config, wl workload.Profile, stream []isa.Inst) wlResult {
	endStage := sp.begin("deg_stream")
	t0 := time.Now()
	so, err := runStage(sr, fault.SiteDEGStream, func() (streamOutcome, error) {
		return ev.runStreamed(cfg, wl, stream)
	})
	r.times.DEGStream = time.Since(t0)
	endStage(r.times.DEGStream)
	if err != nil {
		r.err = err
		return r
	}
	r.simInsts = int64(so.stats.Committed)
	r.rep = so.rep
	r.degWindows = so.ws.Windows
	r.degPeakEdges = so.ws.PeakEdges
	r.degDrops = int64(so.ws.Dropped())

	endStage = sp.begin("power")
	t0 = time.Now()
	pw, err := runStage(sr, fault.SitePower, func() (mcpat.Result, error) {
		return mcpat.Evaluate(cfg, so.stats)
	})
	r.times.Power = time.Since(t0)
	endStage(r.times.Power)
	if err != nil {
		r.err = err
		return r
	}
	r.ipc = so.stats.IPC()
	r.pow = pw.PowerW
	r.area = pw.AreaMM2
	return r
}

// runStreamed is one attempt of the fused stage: the simulator goroutine
// (this one) emits chunks into a bounded channel; a consumer goroutine
// feeds them to the stream analyzer, which analyzes each window the moment
// its forward margin is buffered and evicts records no later window can
// reach. An analyzer error aborts the simulation at the next chunk instead
// of draining the whole workload into a dead consumer.
func (ev *Evaluator) runStreamed(cfg uarch.Config, wl workload.Profile, stream []isa.Inst) (streamOutcome, error) {
	sa, err := deg.NewStreamAnalyzer(deg.WindowOptions{
		Window: ev.DEGWindow, Overlap: ev.DEGOverlap,
		ReorderWindow: cfg.ROBEntries,
		Workers:       ev.degWorkers(),
		OnQueueWait:   ev.queueWaitHook(),
	})
	if err != nil {
		return streamOutcome{}, err
	}
	defer sa.Close() // idempotent; pairs with Finish on the success path
	core, err := ooo.New(cfg)
	if err != nil {
		return streamOutcome{}, err
	}
	chunkSize := ev.DEGChunk
	if chunkSize <= 0 {
		chunkSize = ooo.DefaultChunkSize
	}

	ch := make(chan *pipetrace.Chunk, streamDepth)
	done := make(chan struct{})
	var feedErr error
	go func() {
		defer close(done)
		for c := range ch {
			if err := sa.Feed(c); err != nil {
				feedErr = err
				return
			}
		}
	}()
	stats, simErr := core.RunStream(stream, chunkSize, func(c *pipetrace.Chunk) error {
		select {
		case ch <- c:
			return nil
		case <-done:
			c.Release()
			return feedErr // consumer died; abort the simulation
		}
	})
	close(ch)
	<-done
	for c := range ch {
		c.Release() // chunks the consumer never reached before it died
	}
	if feedErr != nil {
		return streamOutcome{}, feedErr
	}
	if simErr != nil {
		return streamOutcome{}, fmt.Errorf("dse: %s on %s: %w", wl.Name, cfg, simErr)
	}
	if stats.Committed == 0 {
		return streamOutcome{}, fmt.Errorf("dse: %s on %s: simulation committed no instructions", wl.Name, cfg)
	}
	rep, ws, err := sa.Finish(stats.Cycles)
	if err != nil {
		return streamOutcome{}, err
	}
	return streamOutcome{stats: stats, rep: rep, ws: ws}, nil
}

// warmWindowIPC measures IPC over the post-warmup window of a probe trace:
// short prefixes are dominated by cold caches and predictor warmup, so the
// first third is discarded to keep probe estimates comparable with full
// evaluations. Traces too small to carve a window (fewer than three
// committed records) or whose window spans zero cycles report ok=false and
// the caller keeps the whole-trace IPC — previously such traces indexed
// out of range and panicked.
func warmWindowIPC(tr *pipetrace.Trace) (float64, bool) {
	n := len(tr.Records)
	if n < 3 {
		return 0, false
	}
	warm := n / 3
	span := tr.Records[n-1].Stamp[pipetrace.SC] - tr.Records[warm].Stamp[pipetrace.SC]
	if span <= 0 {
		return 0, false
	}
	return float64(n-warm-1) / float64(span), true
}

// reduce folds the per-workload slots into one Evaluation in suite order,
// making the result independent of the order workers finished in. A failed
// workload surfaces the lowest-index error, again deterministically.
func (ev *Evaluator) reduce(j *job, probe bool, cfg uarch.Config, outs []wlResult) (*Evaluation, error) {
	// Fault records flatten in suite order first — retries that preceded a
	// failure are real events and must reach the journal either way. Stage
	// spans flatten in the same order, making the per-eval span sequence
	// deterministic however the workers interleaved.
	for k := range outs {
		j.faults = append(j.faults, outs[k].faults...)
		j.spans = append(j.spans, outs[k].spans...)
	}
	for k := range outs {
		if outs[k].err != nil {
			return nil, outs[k].err
		}
	}
	e := &Evaluation{Point: j.key.pt, Config: cfg, Probe: probe}
	var ipcSum, powSum, area float64
	var reports []*deg.Report
	for k := range outs {
		ipcSum += outs[k].ipc
		powSum += outs[k].pow
		area = outs[k].area
		e.PerWorkloadIPC = append(e.PerWorkloadIPC, outs[k].ipc)
		if j.withDEG {
			reports = append(reports, outs[k].rep)
		}
		e.Times.add(outs[k].times)
		e.SimInsts += outs[k].simInsts
		e.DEGWindows += outs[k].degWindows
		if outs[k].degPeakEdges > e.DEGPeakEdges {
			e.DEGPeakEdges = outs[k].degPeakEdges
		}
		e.DEGDrops += outs[k].degDrops
	}

	if ev.Weights != nil {
		var wsum, ipcW float64
		for i, w := range ev.Weights {
			wsum += w
			ipcW += w * e.PerWorkloadIPC[i]
		}
		if wsum <= 0 {
			return nil, fmt.Errorf("dse: non-positive weight sum")
		}
		// Power re-weighted consistently with the per-workload shares.
		powW := powSum / float64(len(ev.Workloads)) // activity averaging kept uniform
		e.PPA = pareto.Point{Perf: ipcW / wsum, Power: powW, Area: area}
	} else {
		n := float64(len(ev.Workloads))
		e.PPA = pareto.Point{Perf: ipcSum / n, Power: powSum / n, Area: area}
	}
	if j.withDEG {
		merged, err := deg.Merge(reports, ev.Weights)
		if err != nil {
			return nil, err
		}
		e.Report = merged
	}
	return e, nil
}

// StageTotals sums the per-stage worker time over every evaluation in the
// history — the observable cost breakdown a campaign prints.
func (ev *Evaluator) StageTotals() StageTimes {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	var t StageTimes
	for _, e := range ev.History {
		t.add(e.Times)
	}
	return t
}

// Points returns the PPA outcomes of full-fidelity evaluations in
// completion order (the input to hypervolume-versus-budget curves).
func (ev *Evaluator) Points() []pareto.Point {
	var out []pareto.Point
	for _, e := range ev.History {
		if e.Probe || e.Failed {
			continue
		}
		out = append(out, e.PPA)
	}
	return out
}

// Features converts a design point to a normalised feature vector in
// [0,1]^NumParams for the ML baselines.
func (ev *Evaluator) Features(pt uarch.Point) []float64 {
	f := make([]float64, uarch.NumParams)
	for p := 0; p < uarch.NumParams; p++ {
		levels := ev.Space.Levels(uarch.Param(p))
		if levels > 1 {
			f[p] = float64(pt[p]) / float64(levels-1)
		}
	}
	return f
}

// Explorer is a DSE algorithm: it spends at most the given simulation
// budget on the evaluator and leaves its evaluations in the history.
type Explorer interface {
	Name() string
	Run(ev *Evaluator, budget int) error
}

// PointsUpTo returns the PPA outcomes of every evaluation whose cumulative
// simulation cost is within the given budget, in completion order. The
// exploration set includes probe evaluations: their short-prefix PPA
// estimates are conservative (cold caches and predictors bias IPC down),
// and the paper likewise records every explored design, re-evaluating the
// Pareto candidates at full fidelity.
func (ev *Evaluator) PointsUpTo(budget float64) []pareto.Point {
	var out []pareto.Point
	for _, e := range ev.History {
		if e.SimsAt > budget || e.Failed {
			continue
		}
		out = append(out, e.PPA)
	}
	return out
}

// calipersReport adapts the previous formulation's critical-path output to
// the Report shape the explorer consumes, so the same reassignment loop can
// be driven by the old (statically weighted, double-counting) attribution.
func calipersReport(tr *pipetrace.Trace, cfg uarch.Config) (*deg.Report, error) {
	g, err := calipers.Build(tr, calipers.Config{
		ROBEntries: cfg.ROBEntries, IQEntries: cfg.IQEntries,
		LQEntries: cfg.LQEntries, SQEntries: cfg.SQEntries,
		Width: cfg.Width, RdWrPorts: cfg.RdWrPorts,
	})
	if err != nil {
		return nil, err
	}
	res, err := g.CriticalPath()
	if err != nil {
		return nil, err
	}
	rep := &deg.Report{L: res.Length}
	if rep.L <= 0 {
		rep.L = 1
	}
	var attributed int64
	for r, d := range res.DelayByRes {
		rep.DelayByRes[r] = d
		rep.Contrib[r] = float64(d) / float64(rep.L)
		attributed += d
	}
	rep.Base = 1 - float64(attributed)/float64(rep.L)
	return rep, nil
}
