package dse

import (
	"bytes"
	"math"
	"testing"

	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// Windowed DEG analysis is an analysis-side knob: it must not perturb the
// simulation (PPA, per-workload IPC) and its merged report must agree with
// whole-trace analysis closely enough for bottleneck ranking.
func TestEvaluatorWindowedDEGParity(t *testing.T) {
	whole := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	win := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	win.DEGWindow = 500

	pt := whole.Space.Nearest(uarch.Baseline())
	eW, err := whole.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	eV, err := win.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}

	if eW.PPA != eV.PPA {
		t.Fatalf("windowing changed PPA: %+v vs %+v", eW.PPA, eV.PPA)
	}
	for i := range eW.PerWorkloadIPC {
		if eW.PerWorkloadIPC[i] != eV.PerWorkloadIPC[i] {
			t.Fatalf("workload %d IPC differs: %v vs %v", i, eW.PerWorkloadIPC[i], eV.PerWorkloadIPC[i])
		}
	}

	if eW.DEGWindows != 0 || eW.DEGPeakEdges != 0 {
		t.Fatalf("whole-trace evaluation reported window stats: %d windows, %d peak edges",
			eW.DEGWindows, eW.DEGPeakEdges)
	}
	wantWindows := 4 * len(win.Workloads) // ceil(2000/500) per workload
	if eV.DEGWindows != wantWindows {
		t.Fatalf("DEGWindows = %d, want %d", eV.DEGWindows, wantWindows)
	}
	if eV.DEGPeakEdges <= 0 {
		t.Fatalf("DEGPeakEdges = %d, want > 0", eV.DEGPeakEdges)
	}
	if eW.DEGDrops != 0 || eV.DEGDrops != 0 {
		t.Fatalf("defensive drops: whole=%d windowed=%d, want 0", eW.DEGDrops, eV.DEGDrops)
	}

	for r, c := range eW.Report.Contrib {
		if d := math.Abs(c - eV.Report.Contrib[r]); d > 0.01 {
			t.Errorf("%s: whole %.5f windowed %.5f (diff %.5f)",
				uarch.Resource(r), c, eV.Report.Contrib[r], d)
		}
	}
}

// The journal carries the window stats on windowed runs and omits the
// fields entirely on whole-trace runs, so default journals stay
// byte-identical to pre-windowing builds.
func TestEvaluatorWindowedDEGJournal(t *testing.T) {
	spans := func(window int) ([]*obs.EvalSpan, []byte) {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		ev.DEGWindow = window
		rec := obs.New()
		var buf bytes.Buffer
		rec.SetJournalWriter(&buf)
		ev.Obs = rec
		if _, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var out []*obs.EvalSpan
		for _, e := range events {
			if s, ok := e.(*obs.EvalSpan); ok {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			t.Fatal("no EvalSpan events in journal")
		}
		return out, buf.Bytes()
	}

	winSpans, _ := spans(300)
	last := winSpans[len(winSpans)-1]
	if last.DEGWindows <= 0 || last.DEGPeakEdges <= 0 {
		t.Fatalf("windowed EvalSpan missing stats: windows=%d peakEdges=%d",
			last.DEGWindows, last.DEGPeakEdges)
	}
	if last.DEGDrops != 0 {
		t.Fatalf("windowed EvalSpan drops = %d, want 0", last.DEGDrops)
	}

	wholeSpans, raw := spans(0)
	for _, s := range wholeSpans {
		if s.DEGWindows != 0 || s.DEGPeakEdges != 0 || s.DEGDrops != 0 {
			t.Fatalf("whole-trace EvalSpan carries window stats: %+v", s)
		}
	}
	for _, field := range []string{"deg_windows", "deg_peak_edges", "deg_drops"} {
		if bytes.Contains(raw, []byte(field)) {
			t.Fatalf("whole-trace journal contains %q; omitempty regression", field)
		}
	}
}
