package dse

import (
	"testing"

	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// miniSuite keeps integration tests fast: four diverse workloads.
func miniSuite() []workload.Profile {
	names := []string{"458.sjeng", "444.namd", "429.mcf", "462.libquantum"}
	var out []workload.Profile
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

func TestEvaluatorCachesAndCounts(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	pt := ev.Space.Nearest(uarch.Baseline())

	e1, err := ev.Evaluate(pt, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sims != float64(len(ev.Workloads)) {
		t.Fatalf("sims = %v, want %d", ev.Sims, len(ev.Workloads))
	}
	e2, err := ev.Evaluate(pt, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sims != float64(len(ev.Workloads)) {
		t.Fatalf("cached evaluation consumed budget: sims = %v", ev.Sims)
	}
	if e1.PPA != e2.PPA {
		t.Fatal("cache returned different result")
	}
	if len(ev.History) != 1 {
		t.Fatalf("history length %d, want 1", len(ev.History))
	}

	// Upgrading to DEG analysis re-simulates and attaches a report.
	e3, err := ev.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Report == nil {
		t.Fatal("missing DEG report")
	}
	if len(ev.History) != 1 {
		t.Fatalf("upgrade duplicated history: %d", len(ev.History))
	}
}

func TestEvaluationOutputsSane(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	e, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true)
	if err != nil {
		t.Fatal(err)
	}
	if e.PPA.Perf <= 0 || e.PPA.Perf > 8 {
		t.Errorf("IPC %v implausible", e.PPA.Perf)
	}
	if e.PPA.Power <= 0 || e.PPA.Power > 5 {
		t.Errorf("power %v implausible", e.PPA.Power)
	}
	if e.PPA.Area <= 1 || e.PPA.Area > 30 {
		t.Errorf("area %v implausible", e.PPA.Area)
	}
	if e.Tradeoff() <= 0 {
		t.Error("nonpositive tradeoff")
	}
	if len(e.PerWorkloadIPC) != len(ev.Workloads) {
		t.Errorf("per-workload IPC count %d", len(e.PerWorkloadIPC))
	}
}

func runExplorer(t *testing.T, ex Explorer, budget int) *Evaluator {
	t.Helper()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	if err := ex.Run(ev, budget); err != nil {
		t.Fatalf("%s: %v", ex.Name(), err)
	}
	if ev.Sims < float64(budget) {
		t.Fatalf("%s stopped early: %v/%d sims", ex.Name(), ev.Sims, budget)
	}
	return ev
}

func TestExplorersRespectBudget(t *testing.T) {
	budget := 80 // 20 configs at 4 workloads each
	for _, ex := range []Explorer{
		NewArchExplorer(1),
		&RandomSearch{Seed: 1},
		NewAdaBoostDSE(1),
		NewBOOMExplorer(1),
		NewArchRankerDSE(1),
	} {
		ev := runExplorer(t, ex, budget)
		// Budget may be exceeded by at most one in-flight config
		// evaluation plus a finishing walk's full re-evaluations.
		if ev.Sims > float64(budget+3*len(ev.Workloads)) {
			t.Errorf("%s overspent: %v sims for budget %d", ex.Name(), ev.Sims, budget)
		}
		if len(ev.History) == 0 {
			t.Errorf("%s produced no evaluations", ex.Name())
		}
	}
}

func TestArchExplorerBeatsRandomPerSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration comparison")
	}
	budget := 160
	ref := pareto.Reference{Perf: 0.01, Power: 1.5, Area: 25}

	hv := func(ex Explorer) float64 {
		ev := runExplorer(t, ex, budget)
		return pareto.Hypervolume(ev.Points(), ref)
	}

	// Average two seeds to damp noise.
	hvArch := (hv(NewArchExplorer(1)) + hv(NewArchExplorer(2))) / 2
	hvRand := (hv(&RandomSearch{Seed: 1}) + hv(&RandomSearch{Seed: 2})) / 2
	t.Logf("HV arch=%.4f random=%.4f", hvArch, hvRand)
	if hvArch <= hvRand*0.95 {
		t.Errorf("ArchExplorer HV %.4f not better than random %.4f", hvArch, hvRand)
	}
}

func TestProbeCheaperThanFull(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 4000)
	pt := ev.Space.Nearest(uarch.Baseline())
	e, err := ev.Probe(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Probe {
		t.Fatal("probe not marked")
	}
	if e.Report == nil {
		t.Fatal("probe must carry a bottleneck report")
	}
	wantCost := float64(len(ev.Workloads)) / float64(ev.ProbeDiv)
	if ev.Sims < wantCost*0.9 || ev.Sims > wantCost*1.1 {
		t.Fatalf("probe cost %.3f sims, want ~%.3f", ev.Sims, wantCost)
	}
	// A full evaluation of the same point is separate and full-price.
	full, err := ev.Evaluate(pt, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Probe {
		t.Fatal("full evaluation marked as probe")
	}
	if got := ev.Sims; got < wantCost+float64(len(ev.Workloads))-0.01 {
		t.Fatalf("full evaluation undercharged: %.3f sims", got)
	}
	// Points() excludes probes; PointsUpTo includes them.
	if n := len(ev.Points()); n != 1 {
		t.Fatalf("Points() = %d, want 1 full evaluation", n)
	}
	if n := len(ev.PointsUpTo(1e9)); n != 2 {
		t.Fatalf("PointsUpTo = %d, want probe + full", n)
	}
}

func TestAblationSwitchesRun(t *testing.T) {
	for _, mk := range []func() *ArchExplorer{
		func() *ArchExplorer { a := NewArchExplorer(3); a.NoShrink = true; return a },
		func() *ArchExplorer { a := NewArchExplorer(3); a.NoProbe = true; return a },
		func() *ArchExplorer { a := NewArchExplorer(3); a.NoScreenStart = true; return a },
	} {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
		if err := mk().Run(ev, 40); err != nil {
			t.Fatal(err)
		}
		if len(ev.History) == 0 {
			t.Fatal("ablation variant explored nothing")
		}
	}
}

func TestEvaluatorFeaturesNormalized(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	var pt uarch.Point
	f := ev.Features(pt)
	for i, v := range f {
		if v != 0 {
			t.Fatalf("feature %d of minimum point = %v", i, v)
		}
	}
	for p := 0; p < uarch.NumParams; p++ {
		pt[p] = ev.Space.Levels(uarch.Param(p)) - 1
	}
	f = ev.Features(pt)
	for i, v := range f {
		if v != 1 {
			t.Fatalf("feature %d of maximum point = %v", i, v)
		}
	}
}

func TestWorkloadPreferenceWeights(t *testing.T) {
	// Weighting one workload to 100% must reproduce that workload's IPC
	// as the evaluation's Perf and skew the bottleneck report toward it.
	suite := miniSuite()
	evU := NewEvaluator(uarch.StandardSpace(), suite, 1500)
	pt := evU.Space.Nearest(uarch.Baseline())
	uniform, err := evU.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}

	w := make([]float64, len(suite))
	w[0] = 1 // 458.sjeng only
	evW := NewEvaluator(uarch.StandardSpace(), suite, 1500)
	evW.Weights = w
	weighted, err := evW.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := weighted.PPA.Perf - uniform.PerWorkloadIPC[0]; d > 1e-9 || d < -1e-9 {
		t.Fatalf("weighted perf %v, want workload 0's IPC %v", weighted.PPA.Perf, uniform.PerWorkloadIPC[0])
	}
	if weighted.Report == nil || uniform.Report == nil {
		t.Fatal("missing reports")
	}

	// Bad weights rejected.
	evBad := NewEvaluator(uarch.StandardSpace(), suite, 1500)
	evBad.Weights = []float64{1}
	if _, err := evBad.Evaluate(pt, false); err == nil {
		t.Fatal("length mismatch accepted")
	}
	evBad2 := NewEvaluator(uarch.StandardSpace(), suite, 1500)
	evBad2.Weights = make([]float64, len(suite)) // all zero
	if _, err := evBad2.Evaluate(pt, false); err == nil {
		t.Fatal("zero weights accepted")
	}
}
