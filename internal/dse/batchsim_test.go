package dse

import (
	"bytes"
	"math/rand"
	"testing"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/uarch"
)

// batchPoints draws n random valid points with one duplicate, the standard
// shape of an explorer-issued batch.
func batchPoints(seed int64, n int) []uarch.Point {
	rng := rand.New(rand.NewSource(seed))
	space := uarch.StandardSpace()
	pts := make([]uarch.Point, n)
	for i := range pts {
		pts[i] = space.Random(rng)
	}
	if n > 2 {
		pts[n-1] = pts[1] // duplicate inside the batch
	}
	return pts
}

// sameHistories asserts two evaluators produced byte-identical campaigns.
func sameHistories(t *testing.T, label string, a, b *Evaluator) {
	t.Helper()
	if a.Sims != b.Sims {
		t.Fatalf("%s: Sims differ: %v vs %v", label, a.Sims, b.Sims)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		sameEvaluation(t, label, a.History[i], b.History[i])
	}
}

// TestSimBatchParityEvaluateBatch is the fast path's contract: enabling
// SimBatch changes nothing observable — PPA, per-workload IPC, DEG reports,
// budget accounting, history — for lite and full-fidelity batches alike.
func TestSimBatchParityEvaluateBatch(t *testing.T) {
	for _, withDEG := range []bool{false, true} {
		pts := batchPoints(21, 6)

		plain := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		if _, err := plain.EvaluateBatch(pts, withDEG); err != nil {
			t.Fatal(err)
		}

		batched := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		batched.SimBatch = true
		evals, err := batched.EvaluateBatch(pts, withDEG)
		if err != nil {
			t.Fatal(err)
		}
		sameHistories(t, "evaluate", plain, batched)
		if evals[len(evals)-1] != evals[1] {
			t.Fatal("duplicate point did not share its evaluation")
		}
	}
}

// TestSimBatchParityProbeBatch: probes batch too (short traces, warm-window
// IPC read off the materialized trace), with identical results.
func TestSimBatchParityProbeBatch(t *testing.T) {
	pts := batchPoints(22, 5)

	plain := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1600)
	if _, err := plain.ProbeBatch(pts); err != nil {
		t.Fatal(err)
	}
	batched := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1600)
	batched.SimBatch = true
	if _, err := batched.ProbeBatch(pts); err != nil {
		t.Fatal(err)
	}
	sameHistories(t, "probe", plain, batched)
}

// TestSimBatchParityParallel: the fast path composes with the parallel
// fan-out — a Parallelism-4 batched campaign matches the sequential
// unbatched one exactly.
func TestSimBatchParityParallel(t *testing.T) {
	pts := batchPoints(23, 6)

	seq := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	seq.Parallelism = 1
	if _, err := seq.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}
	par := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	par.Parallelism = 4
	par.SimBatch = true
	if _, err := par.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}
	sameHistories(t, "parallel", seq, par)
}

// TestSimBatchStreamedBypass: streamed evaluations never see the pre-phase
// (the fused sim+DEG stage has no trace to seed), and the combination still
// produces the streamed run's exact results.
func TestSimBatchStreamedBypass(t *testing.T) {
	pts := batchPoints(24, 4)

	plain := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	plain.DEGStream = true
	plain.DEGWindow = 400
	if _, err := plain.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}
	batched := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	batched.DEGStream = true
	batched.DEGWindow = 400
	batched.SimBatch = true
	rec := obs.New()
	batched.Obs = rec
	if _, err := batched.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}
	sameHistories(t, "streamed", plain, batched)
	if _, _, count := rec.Histogram(obs.MetricSimBatchSize).Snapshot(); count != 0 {
		t.Fatalf("streamed batch ran the pre-phase %d times", count)
	}
}

// simBatchJournal runs one batched EvaluateBatch with a journal attached.
func simBatchJournal(t *testing.T, parallelism int, plan *fault.Plan) (*Evaluator, []obs.Event) {
	t.Helper()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.SimBatch = true
	ev.Parallelism = parallelism
	ev.Faults = plan
	ev.Retry = noSleepRetry
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	ev.Obs = rec
	if _, err := ev.EvaluateBatch(batchPoints(25, 5), true); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ev, events
}

// TestSimBatchJournalDeterministic: the pre-phase's telemetry is committed
// on the driving goroutine, so the journal — sim_batch spans included — is
// identical at any parallelism.
func TestSimBatchJournalDeterministic(t *testing.T) {
	_, seqEvents := simBatchJournal(t, 1, nil)
	_, parEvents := simBatchJournal(t, 4, nil)
	seq, par := spanShapes(seqEvents), spanShapes(parEvents)
	if len(seq) != len(par) {
		t.Fatalf("span counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("span tree diverges at span %d:\n  seq: %+v\n  par: %+v", i, seq[i], par[i])
		}
	}
}

// TestSimBatchSpans checks the pre-phase's span emission: one sim_batch
// stage span per workload, in suite order, parented by the batch span and
// preceding every eval span.
func TestSimBatchSpans(t *testing.T) {
	ev, events := simBatchJournal(t, 1, nil)
	shapes := spanShapes(events)

	var batchSpan int64
	for _, s := range shapes {
		if s.kind == obs.SpanBatch {
			batchSpan = s.span
		}
	}
	if batchSpan == 0 {
		t.Fatal("no batch span journaled")
	}
	var simBatch []spanShape
	firstEval := -1
	for i, s := range shapes {
		if s.kind == obs.SpanStage && s.name == "sim_batch" {
			simBatch = append(simBatch, s)
			if firstEval >= 0 {
				t.Fatalf("sim_batch span %d after an eval span", i)
			}
		}
		if s.kind == obs.SpanEval && firstEval < 0 {
			firstEval = i
		}
	}
	if len(simBatch) != len(ev.Workloads) {
		t.Fatalf("journaled %d sim_batch spans, want %d", len(simBatch), len(ev.Workloads))
	}
	for k, s := range simBatch {
		if s.parent != batchSpan {
			t.Fatalf("sim_batch span parented to %d, batch span is %d", s.parent, batchSpan)
		}
		if s.workload != ev.Workloads[k].Name {
			t.Fatalf("sim_batch span %d carries workload %q, want %q (suite order)",
				k, s.workload, ev.Workloads[k].Name)
		}
	}
}

// TestSimBatchHistogram: each batched workload pass observes the lane count
// on archx_sim_batch_size — count = workloads, every sample = unique jobs.
func TestSimBatchHistogram(t *testing.T) {
	ev, _ := simBatchJournal(t, 1, nil)
	_, sum, count := ev.Obs.Histogram(obs.MetricSimBatchSize).Snapshot()
	wls, uniq := len(ev.Workloads), len(ev.History)
	if count != uint64(wls) {
		t.Fatalf("histogram count %d, want one observation per workload (%d)", count, wls)
	}
	if sum != float64(wls*uniq) {
		t.Fatalf("histogram sum %v, want %d workloads x %d lanes", sum, wls, uniq)
	}
}

// TestSimBatchSingleJobSkips: one unique design has nothing to amortise, so
// the pre-phase must not run at all.
func TestSimBatchSingleJobSkips(t *testing.T) {
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.SimBatch = true
	rec := obs.New()
	ev.Obs = rec
	pt := ev.Space.Nearest(uarch.Baseline())
	if _, err := ev.EvaluateBatch([]uarch.Point{pt, pt}, true); err != nil {
		t.Fatal(err)
	}
	if _, _, count := rec.Histogram(obs.MetricSimBatchSize).Snapshot(); count != 0 {
		t.Fatalf("single-job batch ran the pre-phase %d times", count)
	}
}

// TestSimBatchTransientSimFaultsAbsorbed: SiteSim injections fire before
// the stage consumes its seed, so the failed attempt leaves the seed in
// place and the retry picks it up — results stay identical to a clean run.
func TestSimBatchTransientSimFaultsAbsorbed(t *testing.T) {
	pts := batchPoints(26, 4)
	clean := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	if _, err := clean.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}

	plan := fault.MustPlan(
		fault.Injection{Site: fault.SiteSim, Nth: 1, Count: 2, Class: fault.Transient},
	)
	faulted := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	faulted.SimBatch = true
	faulted.Parallelism = 1
	faulted.Faults = plan
	faulted.Retry = noSleepRetry
	if _, err := faulted.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}
	sameHistories(t, "transient-sim", clean, faulted)
	if plan.Hits(fault.SiteSim) < 3 {
		t.Fatalf("expected retries at the sim site, got %d hits", plan.Hits(fault.SiteSim))
	}
}

// TestSimBatchPermanentSimFaultsEquivalent: a blanket permanent failure at
// the sim site skips every design identically whether or not the batched
// pre-phase seeded it first, and the stranded seeds all recycle.
func TestSimBatchPermanentSimFaultsEquivalent(t *testing.T) {
	base := tracePoolLive()
	pts := batchPoints(27, 4)
	run := func(simBatch bool) *Evaluator {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		ev.SimBatch = simBatch
		ev.Parallelism = 1
		ev.SkipFailures = true
		ev.Faults = fault.MustPlan(
			fault.Injection{Site: fault.SiteSim, Nth: 1, Count: 1 << 20, Class: fault.Permanent},
		)
		ev.Retry = noSleepRetry
		if _, err := ev.EvaluateBatch(pts, true); err != nil {
			t.Fatal(err)
		}
		return ev
	}
	plain, batched := run(false), run(true)
	sameHistories(t, "permanent-sim", plain, batched)
	for _, e := range batched.History {
		if !e.Failed || e.FailSite != fault.SiteSim {
			t.Fatalf("expected sim failure, got %+v", e)
		}
	}
	waitPoolDrained(t, base)
}

// TestSimBatchFallbackOnSiteFault: a failure injected at the sim_batch site
// degrades that workload to per-config simulation — same results as a clean
// run, one "fallback" fault event journaled, nothing leaked.
func TestSimBatchFallbackOnSiteFault(t *testing.T) {
	base := tracePoolLive()
	pts := batchPoints(25, 5)
	clean := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	if _, err := clean.EvaluateBatch(pts, true); err != nil {
		t.Fatal(err)
	}

	plan := fault.MustPlan(
		fault.Injection{Site: fault.SiteSimBatch, Nth: 2, Class: fault.Permanent},
	)
	faulted, events := simBatchJournal(t, 1, plan)
	sameHistories(t, "fallback", clean, faulted)

	var fallbacks []*obs.FaultEvent
	for _, e := range events {
		if f, ok := e.(*obs.FaultEvent); ok && f.Action == "fallback" {
			fallbacks = append(fallbacks, f)
		}
	}
	if len(fallbacks) != 1 {
		t.Fatalf("journaled %d fallback events, want 1", len(fallbacks))
	}
	f := fallbacks[0]
	if f.Site != fault.SiteSimBatch || f.Class != "permanent" ||
		f.Workload != faulted.Workloads[1].Name || f.Err == "" {
		t.Fatalf("malformed fallback event: %+v", f)
	}
	// The degraded workload's pass never ran, so its histogram sample is
	// missing too: one observation per surviving workload.
	_, _, count := faulted.Obs.Histogram(obs.MetricSimBatchSize).Snapshot()
	if want := uint64(len(faulted.Workloads) - 1); count != want {
		t.Fatalf("histogram count %d, want %d", count, want)
	}
	waitPoolDrained(t, base)
}

// TestSimBatchKillAborts: a kill-class injection at the sim_batch site
// unwinds the whole batch call, like a kill anywhere else.
func TestSimBatchKillAborts(t *testing.T) {
	base := tracePoolLive()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.SimBatch = true
	ev.Parallelism = 1
	ev.SkipFailures = true // kills must abort even in skip mode
	ev.Faults = fault.MustPlan(
		fault.Injection{Site: fault.SiteSimBatch, Nth: 1, Class: fault.Kill},
	)
	_, err := ev.EvaluateBatch(batchPoints(28, 4), true)
	if err == nil || !fault.IsKill(err) {
		t.Fatalf("expected kill to surface, got %v", err)
	}
	if len(ev.History) != 0 {
		t.Fatalf("killed batch committed %d evaluations", len(ev.History))
	}
	waitPoolDrained(t, base)
}

// TestSimBatchNoTraceLeak: every seed is either consumed by its sim stage
// or discarded after the compute phase — the trace pool balances after
// lite, full, and probe batches.
func TestSimBatchNoTraceLeak(t *testing.T) {
	base := tracePoolLive()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.SimBatch = true
	pts := batchPoints(29, 5)
	if _, err := ev.EvaluateBatch(pts, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvaluateBatch(pts, true); err != nil { // DEG upgrade re-batches
		t.Fatal(err)
	}
	if _, err := ev.ProbeBatch(batchPoints(30, 4)); err != nil {
		t.Fatal(err)
	}
	waitPoolDrained(t, base)
}
