package dse

import (
	"errors"
	"time"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
)

// failSite names the pipeline stage a failed evaluation died at, when the
// error carries one (injected faults and timeouts do; organic simulator
// errors do not).
func failSite(err error) string {
	var fe *fault.Error
	if errors.As(err, &fe) {
		return fe.Site
	}
	var te *fault.TimeoutError
	if errors.As(err, &te) {
		return te.Site
	}
	return ""
}

// stageRunner carries one (config, workload) run's failure handling: it
// consults the evaluator's injected fault plan at each stage site, bounds
// each attempt by the stage timeout, retries transient failures under the
// capped-backoff policy, and collects the fault records that the commit
// phase will journal in deterministic order. Each workload slot owns its
// runner, so records never race across workers.
type stageRunner struct {
	ev       *Evaluator
	workload string
	recs     []obs.FaultEvent
}

// runStage executes one pipeline stage with fault injection, timeout, and
// transient-failure retries. fn must be self-contained: a timed-out
// attempt's goroutine is abandoned and may still be running, so fn only
// reads its inputs and returns fresh values (it never writes captured
// state).
func runStage[T any](sr *stageRunner, site string, fn func() (T, error)) (T, error) {
	var zero T
	for attempt := 1; ; attempt++ {
		v, err := attemptStage(sr, site, fn)
		if err == nil {
			return v, nil
		}
		if !fault.IsTransient(err) {
			return zero, err // permanent failures and kills surface immediately
		}
		backoff := sr.ev.Retry.Backoff(attempt)
		if backoff < 0 {
			return zero, err // retries exhausted: the transient failure is terminal
		}
		class := fault.Transient.String()
		if _, ok := err.(*fault.TimeoutError); ok {
			class = "timeout"
		}
		sr.recs = append(sr.recs, obs.FaultEvent{
			Site: site, Class: class, Action: "retry", Attempt: attempt,
			Workload: sr.workload, Err: err.Error(), BackoffNS: backoff.Nanoseconds(),
		})
		sr.ev.Obs.Counter(obs.MetricRetries).Inc()
		if backoff > 0 {
			time.Sleep(backoff)
		}
	}
}

// attemptStage runs one attempt: the injected fault (if scheduled) fires
// first, standing in for the stage crashing; otherwise fn runs, bounded by
// the evaluator's stage timeout. A timed-out attempt returns a transient
// TimeoutError and abandons the attempt goroutine to finish in the
// background — its result is discarded via the buffered channel.
func attemptStage[T any](sr *stageRunner, site string, fn func() (T, error)) (T, error) {
	work := func() (T, error) {
		if err := sr.ev.Faults.Hit(site); err != nil {
			var zero T
			return zero, err
		}
		return fn()
	}
	timeout := sr.ev.StageTimeout
	if timeout <= 0 {
		return work()
	}
	type result struct {
		v   T
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := work()
		done <- result{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.v, r.err
	case <-timer.C:
		sr.ev.Obs.Counter(obs.MetricTimeouts).Inc()
		var zero T
		return zero, &fault.TimeoutError{Site: site, After: timeout}
	}
}
