package dse

import (
	"errors"
	"time"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
)

// failSite names the pipeline stage a failed evaluation died at, when the
// error carries one (injected faults and timeouts do; organic simulator
// errors do not).
func failSite(err error) string {
	var fe *fault.Error
	if errors.As(err, &fe) {
		return fe.Site
	}
	var te *fault.TimeoutError
	if errors.As(err, &te) {
		return te.Site
	}
	return ""
}

// stageRunner carries one (config, workload) run's failure handling: it
// consults the evaluator's injected fault plan at each stage site, bounds
// each attempt by the stage timeout, retries transient failures under the
// capped-backoff policy, and collects the fault records that the commit
// phase will journal in deterministic order. Each workload slot owns its
// runner, so records never race across workers.
type stageRunner struct {
	ev       *Evaluator
	workload string
	recs     []obs.FaultEvent
}

// runStage executes one pipeline stage with fault injection, timeout, and
// transient-failure retries. fn must be self-contained: a timed-out
// attempt's goroutine is abandoned and may still be running, so fn only
// reads its inputs and returns fresh values (it never writes captured
// state).
func runStage[T any](sr *stageRunner, site string, fn func() (T, error)) (T, error) {
	return runStageGuarded(sr, site, nil, nil, fn)
}

// runStageGuarded is runStage for stages whose attempts touch refcounted
// state the caller releases after the stage returns, or produce values that
// own pooled storage.
//
// acquire (optional) takes a reference on the stage's shared input — it
// runs on the calling goroutine before each attempt can be abandoned, while
// the caller's own reference is still live — and the returned release runs
// when the attempt finishes, even if a timeout abandoned it long before.
// Without it, the caller's deferred Release would recycle the input under a
// still-running abandoned attempt.
//
// discard (optional) disposes of a successful attempt's value when nobody
// will receive it — the attempt timed out and its late result would
// otherwise strand whatever pooled storage it owns.
func runStageGuarded[T any](sr *stageRunner, site string, acquire func() func(), discard func(T), fn func() (T, error)) (T, error) {
	var zero T
	for attempt := 1; ; attempt++ {
		v, err := attemptStage(sr, site, acquire, discard, fn)
		if err == nil {
			return v, nil
		}
		if !fault.IsTransient(err) {
			return zero, err // permanent failures and kills surface immediately
		}
		backoff := sr.ev.Retry.Backoff(attempt)
		if backoff < 0 {
			return zero, err // retries exhausted: the transient failure is terminal
		}
		class := fault.Transient.String()
		if _, ok := err.(*fault.TimeoutError); ok {
			class = "timeout"
		}
		sr.recs = append(sr.recs, obs.FaultEvent{
			Site: site, Class: class, Action: "retry", Attempt: attempt,
			Workload: sr.workload, Err: err.Error(), BackoffNS: backoff.Nanoseconds(),
		})
		sr.ev.Obs.Counter(obs.MetricRetries).Inc()
		if backoff > 0 {
			time.Sleep(backoff)
		}
	}
}

// attemptStage runs one attempt: the injected fault (if scheduled) fires
// first, standing in for the stage crashing; otherwise fn runs, bounded by
// the evaluator's stage timeout. A timed-out attempt returns a transient
// TimeoutError and abandons the attempt goroutine to finish in the
// background — its result is discarded via the buffered channel.
func attemptStage[T any](sr *stageRunner, site string, acquire func() func(), discard func(T), fn func() (T, error)) (T, error) {
	work := func() (T, error) {
		if err := sr.ev.Faults.Hit(site); err != nil {
			var zero T
			return zero, err
		}
		return fn()
	}
	timeout := sr.ev.StageTimeout
	if timeout <= 0 {
		// Inline attempt: nothing is abandoned, so the caller's own
		// references cover the whole run and a guard would be redundant —
		// but acquiring keeps the refcount discipline identical in both
		// modes, so lifecycle tests exercise the same paths.
		if acquire != nil {
			defer acquire()()
		}
		return work()
	}
	type result struct {
		v   T
		err error
	}
	var release func()
	if acquire != nil {
		release = acquire()
	}
	done := make(chan result, 1)
	go func() {
		if release != nil {
			defer release()
		}
		v, err := work()
		done <- result{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.v, r.err
	case <-timer.C:
		sr.ev.Obs.Counter(obs.MetricTimeouts).Inc()
		if discard != nil {
			// The abandoned attempt may still complete; drain its late
			// result so any pooled storage it owns is returned rather than
			// stranded.
			go func() {
				if r := <-done; r.err == nil {
					discard(r.v)
				}
			}()
		}
		var zero T
		return zero, &fault.TimeoutError{Site: site, After: timeout}
	}
}
