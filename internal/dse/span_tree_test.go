package dse

import (
	"fmt"
	"strings"
	"testing"

	"archexplorer/internal/obs"
)

// spanShape is the deterministic projection of a SpanEvent: everything but
// the measurements (StartNS, DurNS, Worker), which legitimately vary run
// to run. Ids are included — they are allocated on the driving goroutine
// in decision order, so they too must reproduce.
type spanShape struct {
	span, parent int64
	kind, name   string
	workload     string
	point        string
	cache        string
	hits         int
}

func spanShapes(events []obs.Event) []spanShape {
	var out []spanShape
	for _, e := range events {
		s, ok := e.(*obs.SpanEvent)
		if !ok {
			continue
		}
		out = append(out, spanShape{
			span: s.Span, parent: s.Parent, kind: s.SpanKind, name: s.Name,
			workload: s.Workload, point: fmt.Sprint(s.Point), cache: s.Cache, hits: s.Hits,
		})
	}
	return out
}

// TestSpanTreeDeterministic is the span layer's ordering contract: a
// parallel campaign must journal the same span tree — same ids, parents,
// kinds, names, cache classifications, in the same order — as the
// sequential run. Only durations, start offsets, and worker slots differ.
func TestSpanTreeDeterministic(t *testing.T) {
	_, seqEvents := runWithJournal(t, 1)
	_, parEvents := runWithJournal(t, 4)
	seq, par := spanShapes(seqEvents), spanShapes(parEvents)
	if len(seq) == 0 {
		t.Fatal("journal holds no span events")
	}
	if len(seq) != len(par) {
		t.Fatalf("span counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("span tree diverges at span %d:\n  seq: %+v\n  par: %+v", i, seq[i], par[i])
		}
	}
}

// TestSpanTreeStructure checks the emitted tree's invariants on a real
// campaign journal: post-order emission (children precede parents), eval
// spans sharing their id with the EvalSpan accounting event, stage spans
// naming real stages and carrying worker slots, and batch/iteration spans
// parenting correctly.
func TestSpanTreeStructure(t *testing.T) {
	ev, events := runWithJournal(t, 2)

	evalAccounting := map[int64]bool{}
	for _, e := range events {
		if s, ok := e.(*obs.EvalSpan); ok {
			evalAccounting[s.Span] = true
		}
	}

	stageNames := map[string]bool{"trace": true, "sim": true, "power": true, "deg": true, "deg_stream": true}
	seen := map[int64]string{} // span id -> kind, in journal order
	counts := map[string]int{}
	for _, e := range events {
		s, ok := e.(*obs.SpanEvent)
		if !ok {
			continue
		}
		if s.Span <= 0 {
			t.Fatalf("span without id: %+v", s)
		}
		if _, dup := seen[s.Span]; dup {
			t.Fatalf("duplicate span id %d", s.Span)
		}
		if _, emitted := seen[s.Parent]; s.Parent != 0 && emitted {
			t.Fatalf("span %d emitted after its parent %d — not post-order", s.Span, s.Parent)
		}
		seen[s.Span] = s.SpanKind
		counts[s.SpanKind]++
		switch s.SpanKind {
		case obs.SpanStage:
			if !stageNames[s.Name] || s.Workload == "" || s.Worker <= 0 {
				t.Fatalf("malformed stage span: %+v", s)
			}
		case obs.SpanEval:
			if s.Cache == "" && !evalAccounting[s.Span] {
				t.Fatalf("computed eval span %d has no EvalSpan accounting event", s.Span)
			}
			if len(s.Point) == 0 {
				t.Fatalf("eval span without a design point: %+v", s)
			}
		case obs.SpanIteration:
			if !strings.HasPrefix(s.Name, "w") || !strings.Contains(s.Name, ".s") {
				t.Fatalf("iteration span name %q", s.Name)
			}
		case obs.SpanBatch:
			if s.Name != "evaluate" && s.Name != "probe" {
				t.Fatalf("batch span name %q", s.Name)
			}
		}
		if s.DurNS < 0 || s.StartNS < 0 {
			t.Fatalf("negative span timing: %+v", s)
		}
	}
	// Parent links resolve: every non-zero parent must eventually appear.
	for _, e := range events {
		if s, ok := e.(*obs.SpanEvent); ok && s.Parent != 0 {
			if _, ok := seen[s.Parent]; !ok {
				t.Fatalf("span %d references parent %d which never appears", s.Span, s.Parent)
			}
		}
	}
	for _, kind := range []string{obs.SpanIteration, obs.SpanBatch, obs.SpanEval, obs.SpanStage} {
		if counts[kind] == 0 {
			t.Fatalf("campaign journal has no %s spans (%v)", kind, counts)
		}
	}
	// Every stage span belongs to some eval; evals outnumber none of them.
	if counts[obs.SpanStage] < counts[obs.SpanEval] {
		t.Fatalf("fewer stage spans (%d) than eval spans (%d)", counts[obs.SpanStage], counts[obs.SpanEval])
	}
	if len(ev.History) == 0 {
		t.Fatal("campaign produced no history")
	}
}
