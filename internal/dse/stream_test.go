package dse

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// TestEvaluatorStreamedParity pins the tentpole at the evaluator level: a
// streamed evaluation (fused sim+DEG over the bounded chunk channel) is
// byte-identical to the buffered windowed path in everything deterministic —
// PPA, per-workload IPC, merged report, window stats, budget accounting.
func TestEvaluatorStreamedParity(t *testing.T) {
	buffered := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	buffered.DEGWindow = 500
	streamed := NewEvaluator(uarch.StandardSpace(), miniSuite(), 2000)
	streamed.DEGWindow = 500
	streamed.DEGStream = true

	pt := buffered.Space.Nearest(uarch.Baseline())
	eB, err := buffered.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	eS, err := streamed.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}

	if eB.PPA != eS.PPA {
		t.Fatalf("streaming changed PPA: %+v vs %+v", eB.PPA, eS.PPA)
	}
	if !reflect.DeepEqual(eB.PerWorkloadIPC, eS.PerWorkloadIPC) {
		t.Fatalf("per-workload IPC differs: %v vs %v", eB.PerWorkloadIPC, eS.PerWorkloadIPC)
	}
	if !reflect.DeepEqual(eB.Report, eS.Report) {
		t.Fatalf("streamed merged report differs:\nbuffered %+v\nstreamed %+v", eB.Report, eS.Report)
	}
	if eB.DEGWindows != eS.DEGWindows || eB.DEGPeakEdges != eS.DEGPeakEdges || eB.DEGDrops != eS.DEGDrops {
		t.Fatalf("window stats differ: buffered (%d,%d,%d) streamed (%d,%d,%d)",
			eB.DEGWindows, eB.DEGPeakEdges, eB.DEGDrops,
			eS.DEGWindows, eS.DEGPeakEdges, eS.DEGDrops)
	}
	if eB.SimInsts != eS.SimInsts || eB.SimsAt != eS.SimsAt {
		t.Fatalf("accounting differs: insts %d vs %d, sims %v vs %v",
			eB.SimInsts, eS.SimInsts, eB.SimsAt, eS.SimsAt)
	}
	// Stage times land in the fused bucket on the streamed run.
	if eS.Times.Sim != 0 || eS.Times.DEG != 0 || eS.Times.DEGStream == 0 {
		t.Fatalf("streamed stage times misfiled: %+v", eS.Times)
	}
	if eB.Times.DEGStream != 0 {
		t.Fatalf("buffered run charged the stream stage: %+v", eB.Times)
	}
}

// TestEvaluatorStreamedChunkIndependence: the chunk granularity is a purely
// mechanical knob — any size yields the identical evaluation.
func TestEvaluatorStreamedChunkIndependence(t *testing.T) {
	results := make([]*Evaluation, 0, 3)
	for _, chunk := range []int{0, 64, 5000} {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
		ev.DEGWindow = 400
		ev.DEGStream = true
		ev.DEGChunk = chunk
		e, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		results = append(results, e)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Report, results[i].Report) ||
			results[0].PPA != results[i].PPA {
			t.Fatalf("chunk size changed the evaluation: %+v vs %+v",
				results[0].Report, results[i].Report)
		}
	}
}

// TestEvaluatorStreamedWholeTrace: DEGStream with no window streams into the
// whole-trace short-circuit and still matches the plain whole-trace report.
func TestEvaluatorStreamedWholeTrace(t *testing.T) {
	whole := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1200)
	stream := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1200)
	stream.DEGStream = true

	pt := whole.Space.Nearest(uarch.Baseline())
	eW, err := whole.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	eS, err := stream.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eW.Report, eS.Report) || eW.PPA != eS.PPA {
		t.Fatal("whole-trace streamed evaluation differs from buffered")
	}
}

// TestEvaluatorStreamedProbesStayBuffered: probes need the materialized
// trace for warm-window IPC, so DEGStream must not change probe results.
func TestEvaluatorStreamedProbesStayBuffered(t *testing.T) {
	plain := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	plain.DEGWindow = 400
	stream := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	stream.DEGWindow = 400
	stream.DEGStream = true

	pt := plain.Space.Nearest(uarch.Baseline())
	eP, err := plain.Probe(pt)
	if err != nil {
		t.Fatal(err)
	}
	eS, err := stream.Probe(pt)
	if err != nil {
		t.Fatal(err)
	}
	if eP.PPA != eS.PPA || !reflect.DeepEqual(eP.Report, eS.Report) {
		t.Fatal("DEGStream changed probe results")
	}
	if eS.Times.DEGStream != 0 {
		t.Fatalf("probe ran the fused stage: %+v", eS.Times)
	}
}

// TestEvaluatorStreamedJournal: streamed spans carry deg_stream_ns and zero
// sim/deg stage times; buffered spans omit the field entirely, keeping
// pre-streaming journals byte-identical.
func TestEvaluatorStreamedJournal(t *testing.T) {
	spans := func(streamed bool) ([]*obs.EvalSpan, []byte) {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		ev.DEGWindow = 300
		ev.DEGStream = streamed
		rec := obs.New()
		var buf bytes.Buffer
		rec.SetJournalWriter(&buf)
		ev.Obs = rec
		if _, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var out []*obs.EvalSpan
		for _, e := range events {
			if s, ok := e.(*obs.EvalSpan); ok {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			t.Fatal("no EvalSpan events in journal")
		}
		return out, buf.Bytes()
	}

	streamSpans, _ := spans(true)
	s := streamSpans[len(streamSpans)-1]
	if s.DEGStreamNS <= 0 {
		t.Fatalf("streamed EvalSpan deg_stream_ns = %d, want > 0", s.DEGStreamNS)
	}
	if s.SimNS != 0 || s.DEGNS != 0 {
		t.Fatalf("streamed EvalSpan charges sim/deg stages: sim=%d deg=%d", s.SimNS, s.DEGNS)
	}
	if s.DEGWindows <= 0 {
		t.Fatalf("streamed EvalSpan missing window stats: %+v", s)
	}

	_, raw := spans(false)
	if bytes.Contains(raw, []byte("deg_stream_ns")) {
		t.Fatal("buffered journal contains deg_stream_ns; omitempty regression")
	}
}

// TestEvaluatorStreamedFaultInjection: the fused stage is a registered
// fault site — transient failures there retry to the same result, and the
// stage is charged the retry hits.
func TestEvaluatorStreamedFaultInjection(t *testing.T) {
	mk := func(plan *fault.Plan) *Evaluator {
		ev := faultEvaluator(t, plan)
		ev.DEGWindow = 400
		ev.DEGStream = true
		return ev
	}
	clean := mk(nil)
	pt := clean.Space.Nearest(uarch.Baseline())
	want, err := clean.Evaluate(pt, true)
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.MustPlan(
		fault.Injection{Site: fault.SiteDEGStream, Nth: 1, Count: 2, Class: fault.Transient},
	)
	ev := mk(plan)
	got, err := ev.Evaluate(pt, true)
	if err != nil {
		t.Fatalf("transient deg_stream fault surfaced despite retries: %v", err)
	}
	if !reflect.DeepEqual(want.Report, got.Report) || want.PPA != got.PPA {
		t.Fatal("retried streamed evaluation differs from clean run")
	}
	if plan.Hits(fault.SiteDEGStream) < 3 {
		t.Fatalf("expected >= 3 deg_stream hits, got %d", plan.Hits(fault.SiteDEGStream))
	}
}

// tracePoolLive returns the trace pool's live (unreleased) trace count.
func tracePoolLive() int64 {
	st := pipetrace.TracePoolStats()
	return st.Gets - st.Puts
}

// waitPoolDrained polls until every pool-owned trace above base is released
// — abandoned timed-out attempts release asynchronously — or fails the test.
func waitPoolDrained(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Stragglers from earlier tests can release below the baseline;
		// only a positive residue is a leak.
		leaked := tracePoolLive() - base
		if leaked <= 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d traces leaked (never released back to the pool)", leaked)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoTraceLeakWithStageTimeouts is the satellite-1 regression test: with
// stage timeouts enabled, every evaluation still releases its trace.
// Previously the evaluator skipped tr.Release() whenever StageTimeout != 0 —
// every (config, workload) run leaked its records and arenas for the life
// of the campaign.
func TestNoTraceLeakWithStageTimeouts(t *testing.T) {
	base := tracePoolLive()

	// Plain timed run: generous timeout, nothing fires, traces must still
	// recycle.
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	ev.Parallelism = 1
	ev.StageTimeout = time.Minute
	if _, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true); err != nil {
		t.Fatal(err)
	}
	waitPoolDrained(t, base)

	// A DEG attempt that times out (injected stall) and is abandoned: the
	// abandoned reader holds its own reference, the retry succeeds, and
	// once the straggler finishes the pool is balanced again.
	plan := fault.MustPlan(fault.Injection{
		Site: fault.SiteDEG, Nth: 1, Count: 1, Class: fault.Transient,
		Delay: 300 * time.Millisecond,
	})
	ev2 := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1500)
	ev2.Parallelism = 1
	ev2.StageTimeout = 50 * time.Millisecond
	ev2.Retry = noSleepRetry
	ev2.Faults = plan
	ev2.Obs = obs.New()
	e, err := ev2.Evaluate(ev2.Space.Nearest(uarch.Baseline()), true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Report == nil {
		t.Fatal("retried evaluation lost its report")
	}
	if got := ev2.Obs.Counter(obs.MetricTimeouts).Value(); got == 0 {
		t.Fatal("injected stall did not trip the stage timeout")
	}
	waitPoolDrained(t, base)
}

// TestGuardedStageDiscardsLateResult exercises the abandoned-attempt drain
// directly: a stage that times out but eventually succeeds hands its pooled
// result to the discard hook instead of stranding it.
func TestGuardedStageDiscardsLateResult(t *testing.T) {
	base := tracePoolLive()
	ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
	ev.StageTimeout = 20 * time.Millisecond
	sr := &stageRunner{ev: ev, workload: "synthetic"}

	_, err := runStageGuarded(sr, fault.SiteSim, nil,
		func(tr *pipetrace.Trace) { tr.Release() },
		func() (*pipetrace.Trace, error) {
			tr := pipetrace.GetTrace(16)
			time.Sleep(100 * time.Millisecond) // outlive the timeout
			return tr, nil
		})
	if _, ok := err.(*fault.TimeoutError); !ok {
		t.Fatalf("err = %v, want timeout", err)
	}
	waitPoolDrained(t, base)
}

// TestGuardedStageAcquireRelease: the acquire hook pins shared state for
// exactly the attempt's lifetime, on both the inline and the timed path.
func TestGuardedStageAcquireRelease(t *testing.T) {
	base := tracePoolLive()
	for _, timeout := range []time.Duration{0, time.Minute} {
		ev := NewEvaluator(uarch.StandardSpace(), miniSuite(), 1000)
		ev.StageTimeout = timeout
		sr := &stageRunner{ev: ev, workload: "synthetic"}
		tr := pipetrace.GetTrace(16)
		v, err := runStageGuarded(sr, fault.SiteDEG,
			func() func() { tr.Retain(); return tr.Release },
			nil,
			func() (int, error) { return 7, nil })
		if err != nil || v != 7 {
			t.Fatalf("timeout %v: got (%d, %v)", timeout, v, err)
		}
		tr.Release() // the owner's reference; the attempt's is already gone
		waitPoolDrained(t, base)
	}
}
