package dse

import (
	"fmt"

	"archexplorer/internal/deg"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
)

// Resume is replay-based: a checkpoint stores every committed evaluation
// (including failed ones), and the resumed process re-runs its explorer
// from the same seed against a fresh evaluator primed with that prefix.
// Explorer decisions are deterministic functions of evaluation results, so
// the replayed trajectory retraces the original one step for step; each
// replayed request is served from the restored store instead of the
// simulator — while still charging budget, appending to History, assigning
// SimsAt, and emitting journal events exactly as a live evaluation would.
// When the replay walks off the end of the stored prefix, live simulation
// takes over seamlessly. The net effect restores the rng state, budget
// position, and explorer position without serialising any of them, and
// makes a resumed campaign byte-identical (modulo wall-clock timings) to
// one that never crashed.

// RestoredResult is one checkpointed evaluation outcome fed back into a
// fresh evaluator for replay-based resume.
type RestoredResult struct {
	Point          uarch.Point
	Probe          bool
	PPA            pareto.Point
	PerWorkloadIPC []float64
	// Report is the merged bottleneck report, when the evaluation had one.
	Report *deg.Report
	// Times is the original run's worker time for this evaluation, so the
	// resumed campaign's stage totals still account the whole logical run.
	Times StageTimes
	// Failed marks a permanently failed evaluation that was degraded to a
	// journaled skip; replay reproduces the skip without re-attempting it.
	Failed     bool
	FailSite   string
	FailReason string
}

// Restore primes a fresh evaluator with a checkpointed prefix. It must run
// before any evaluation; restoring onto a used evaluator is an error.
func (ev *Evaluator) Restore(results []RestoredResult) error {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if len(ev.History) > 0 || ev.Sims != 0 {
		return fmt.Errorf("dse: Restore on a used evaluator (%d evaluations, %.1f sims)",
			len(ev.History), ev.Sims)
	}
	ev.restored = make(map[cacheKey]*RestoredResult, len(results))
	for i := range results {
		r := &results[i]
		// Later entries win: a DEG upgrade replaced its plain predecessor
		// in the history the checkpoint captured.
		ev.restored[cacheKey{pt: r.Point, probe: r.Probe}] = r
	}
	return nil
}

// serveRestored satisfies a job from the restored prefix store, if it can:
// the stored outcome is materialised as a fresh Evaluation and the job
// skips simulation entirely. Commit-phase accounting (budget charge,
// History position, SimsAt, journal events) still happens, which is what
// makes replay indistinguishable from the original execution. Returns
// false when the store has no usable entry (fresh territory, or a report
// was requested that the store lacks) — the job then computes live.
func (ev *Evaluator) serveRestored(j *job, probe bool) bool {
	ev.mu.Lock()
	r, ok := ev.restored[j.key]
	ev.mu.Unlock()
	if !ok {
		return false
	}
	if r.Failed {
		j.e = &Evaluation{
			Point: j.key.pt, Config: ev.Space.Decode(j.key.pt), Probe: probe,
			Failed: true, FailSite: r.FailSite, FailReason: r.FailReason,
		}
		return true
	}
	if j.withDEG && r.Report == nil {
		return false
	}
	e := &Evaluation{
		Point: j.key.pt, Config: ev.Space.Decode(j.key.pt), Probe: probe,
		PPA:            r.PPA,
		PerWorkloadIPC: append([]float64(nil), r.PerWorkloadIPC...),
		Times:          r.Times,
	}
	// The report is attached only when this request asked for it, exactly
	// like a live computation — so a later withDEG request still follows
	// the upgrade path, reassigning SimsAt the way the original run did.
	if j.withDEG {
		e.Report = r.Report
	}
	j.e = e
	return true
}
