package interval

import (
	"strings"
	"testing"

	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func traceFor(t testing.TB, cfg uarch.Config, name string, n int) *pipetrace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	core, err := ooo.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStackAccountsEveryCycle(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 5000)
	st, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range st.ByCause {
		if v < 0 {
			t.Fatal("negative cause count")
		}
		sum += v
	}
	if sum != tr.Cycles {
		t.Fatalf("stack sums to %d, trace has %d cycles", sum, tr.Cycles)
	}
	if st.CPI() <= 1.0/8 {
		t.Fatalf("implausible CPI %.3f", st.CPI())
	}
	t.Logf("\n%s", st)
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Analyze(&pipetrace.Trace{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMemoryBoundWorkloadShowsMemoryStalls(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "429.mcf", 5000)
	st, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Share(CauseMemory) < 0.10 {
		t.Errorf("mcf memory share only %.1f%%", 100*st.Share(CauseMemory))
	}
}

func TestRenameStallRankingMatchesStarvation(t *testing.T) {
	poor := uarch.Baseline()
	poor.IntRF = 40
	tr := traceFor(t, poor, "458.sjeng", 5000)
	st, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	top := st.TopRenameResources()
	if len(top) == 0 || top[0] != uarch.ResIntRF {
		t.Fatalf("starved IntRF not the top rename staller: %v", top)
	}
}

func TestStringRendersAllParts(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "456.hmmer", 3000)
	st, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	out := st.String()
	for _, want := range []string{"CPI stack", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCauseNames(t *testing.T) {
	for c := Cause(0); c < Cause(NumCauses); c++ {
		if c.String() == "" {
			t.Fatalf("cause %d unnamed", c)
		}
	}
}
