// Package interval implements the classic pipeline stall accounting
// ("interval analysis") the paper contrasts with critical-path analysis in
// Section 2.3. Every commit-idle cycle is attributed to whatever is
// blocking the oldest in-flight instruction at that moment, producing a CPI
// stack. Unlike the DEG's critical path, this per-cycle accounting cannot
// tell whether an overlapped event actually mattered for the runtime — the
// limitation the paper's approach removes — which makes it a useful
// comparison point for bottleneck reports.
package interval

import (
	"fmt"
	"sort"
	"strings"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// Cause classifies why a cycle made no commit progress.
type Cause uint8

const (
	CauseBase     Cause = iota // cycles with commit progress
	CauseFrontend              // no instruction in flight (fetch-bound)
	CauseBranch                // head waiting on a misprediction refill
	CauseICache                // head waiting on an instruction fetch
	CauseRename                // head stalled at rename (back-end structure full)
	CauseIssue                 // head dispatched, waiting to issue (deps/FUs)
	CauseMemory                // head executing a memory access
	CauseExec                  // head executing a non-memory operation
	CauseCommit                // head finished, waiting for commit bandwidth
	numCauses
)

// NumCauses is the number of stall classes.
const NumCauses = int(numCauses)

var causeNames = [...]string{
	CauseBase:     "Base",
	CauseFrontend: "Frontend",
	CauseBranch:   "Branch",
	CauseICache:   "ICache",
	CauseRename:   "Rename",
	CauseIssue:    "Issue",
	CauseMemory:   "Memory",
	CauseExec:     "Exec",
	CauseCommit:   "Commit",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// Stack is a CPI stack: cycles attributed to each cause, plus the rename
// stall share per back-end resource (the paper's Figure 3 "necessity").
type Stack struct {
	Cycles       int64
	Instructions int
	ByCause      [NumCauses]int64
	RenameByRes  [uarch.NumResources]int64
}

// CPI returns cycles per instruction.
func (s *Stack) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Share returns the fraction of all cycles attributed to a cause.
func (s *Stack) Share(c Cause) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ByCause[c]) / float64(s.Cycles)
}

// Analyze builds the CPI stack from a pipeline trace.
func Analyze(tr *pipetrace.Trace) (*Stack, error) {
	n := len(tr.Records)
	if n == 0 {
		return nil, fmt.Errorf("interval: empty trace")
	}
	st := &Stack{Cycles: tr.Cycles, Instructions: n}

	// commitsAt[c] counts commits in cycle c (sparse).
	commitsAt := make(map[int64]int, n)
	for i := range tr.Records {
		commitsAt[tr.Records[i].Stamp[pipetrace.SC]]++
	}

	// For every cycle, the oldest uncommitted instruction is the first
	// record whose commit stamp is >= the cycle (commits are in order).
	// Walk cycles with a pointer instead of searching.
	oldest := 0
	for c := int64(0); c < tr.Cycles; c++ {
		if commitsAt[c] > 0 {
			st.ByCause[CauseBase]++
			continue
		}
		for oldest < n && tr.Records[oldest].Stamp[pipetrace.SC] < c {
			oldest++
		}
		if oldest >= n {
			st.ByCause[CauseBase]++ // tail drain
			continue
		}
		st.ByCause[classify(tr, oldest, c)]++
	}

	// Rename-stall shares per resource (delayed-instruction counting, the
	// Section 2.2 necessity metric).
	for i := range tr.Records {
		for _, rd := range tr.Records[i].ResourceDeps {
			st.RenameByRes[rd.Resource]++
		}
	}
	return st, nil
}

// classify decides what the oldest in-flight instruction was doing at
// cycle c.
func classify(tr *pipetrace.Trace, idx int, c int64) Cause {
	rec := &tr.Records[idx]
	switch {
	case c < rec.Stamp[pipetrace.SF1]:
		// Not yet fetched: the front end is refilling.
		if rec.MispredictFrom >= 0 {
			return CauseBranch
		}
		return CauseFrontend
	case c < rec.Stamp[pipetrace.SF2]:
		if rec.ICacheLat > 2 {
			return CauseICache
		}
		return CauseFrontend
	case c < rec.Stamp[pipetrace.SR]:
		if len(rec.ResourceDeps) > 0 {
			return CauseRename
		}
		return CauseFrontend
	case c < rec.Stamp[pipetrace.SI]:
		return CauseIssue
	case c < rec.Stamp[pipetrace.SP]:
		if rec.Class.IsMem() || rec.Class == isa.OpLoad {
			return CauseMemory
		}
		return CauseExec
	default:
		return CauseCommit
	}
}

// TopRenameResources ranks back-end resources by rename-stall counts.
func (s *Stack) TopRenameResources() []uarch.Resource {
	var out []uarch.Resource
	for _, r := range uarch.Resources() {
		if s.RenameByRes[r] > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return s.RenameByRes[out[i]] > s.RenameByRes[out[j]]
	})
	return out
}

// String renders the CPI stack.
func (s *Stack) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stack (%d instructions, %d cycles, CPI %.3f)\n",
		s.Instructions, s.Cycles, s.CPI())
	for c := Cause(0); c < numCauses; c++ {
		if s.ByCause[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-9s %6.2f%%  (%d cycles)\n", c, 100*s.Share(c), s.ByCause[c])
	}
	if top := s.TopRenameResources(); len(top) > 0 {
		b.WriteString("  rename stalls by resource:")
		for _, r := range top {
			fmt.Fprintf(&b, " %s=%d", r, s.RenameByRes[r])
		}
		b.WriteString("\n")
	}
	return b.String()
}
