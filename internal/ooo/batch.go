package ooo

import (
	"fmt"
	"runtime"
	"sync"

	"archexplorer/internal/bpred"
	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// BranchReplay is a batch's shared branch-prediction outcome stream: one
// mispredict bit per branch of the instruction stream, in stream order,
// plus the predictor counters at the end of the run.
//
// Sharing it is sound because prediction is a pure function of the stream
// and the predictor configuration — Predict/Recover/Train take no timing
// inputs, and the in-order front end consults the predictor once per
// branch in stream order regardless of back-end capacity. Every config
// that agrees on the four predictor parameters therefore observes the
// identical outcome sequence, and RunBatch computes it once per distinct
// predictor config instead of once per lane. Cache state is the opposite
// case: the shared L2 couples the I- and D-streams and store-forwarding
// makes the D-access sequence timing-dependent, so each lane keeps its own
// hierarchy.
type BranchReplay struct {
	bits                 []uint64 // mispredict bit per branch, stream order
	branches             int
	lookups, mispredicts uint64
}

// NewBranchReplay runs the stream through a fresh predictor and records
// each branch's outcome. The per-branch resolution is the same
// resolveBranch the live fetch stage uses, so replayed lanes are bit-exact
// with per-config runs by construction.
func NewBranchReplay(stream []isa.Inst, cfg bpred.Config) (*BranchReplay, error) {
	p, err := bpred.New(cfg)
	if err != nil {
		return nil, err
	}
	r := &BranchReplay{}
	for i := range stream {
		in := &stream[i]
		if in.Class != isa.OpBranch {
			continue
		}
		r.push(resolveBranch(p, in))
	}
	r.lookups = p.Lookups
	r.mispredicts = p.Mispredicts
	return r, nil
}

// Branches returns the number of branch outcomes recorded.
func (r *BranchReplay) Branches() int { return r.branches }

func (r *BranchReplay) push(mispred bool) {
	if r.branches%64 == 0 {
		r.bits = append(r.bits, 0)
	}
	if mispred {
		r.bits[r.branches/64] |= 1 << (r.branches % 64)
	}
	r.branches++
}

func (r *BranchReplay) mispredicted(i int) bool {
	return r.bits[i/64]&(1<<(i%64)) != 0
}

// BatchOptions tunes one RunBatch call.
type BatchOptions struct {
	// Lite elides the DEG-only annotations from every lane, exactly as
	// RunLite does for a single config.
	Lite bool

	// Workers caps the goroutines the batch pass shards its lanes across;
	// 0 means min(len(cfgs), GOMAXPROCS). 1 runs the whole pass inline on
	// the calling goroutine — the configuration that isolates the pure
	// amortization win (shared decode iteration + shared branch replay)
	// from parallel speedup.
	Workers int

	// Gate, when non-nil, wraps each worker's CPU-bound pass — the hook
	// callers with a global compute-slot pool (par.Slot, the evaluator's
	// leaf gate) use to keep batch workers inside the machine-wide budget.
	// It must invoke its argument exactly once, synchronously.
	Gate func(func())

	// Check, when non-nil, runs per lane at the lane's first step, inside
	// the isolated region: an error (or panic) in Check fails only that
	// lane. Tests use it to exercise per-config failure isolation; the
	// evaluator leaves it nil.
	Check func(cfg int) error
}

// BatchResult is one config's slot of a RunBatch call. Exactly one of
// {Trace, Err} is meaningful: a failed lane carries Err and nil outputs,
// and its failure never disturbs sibling lanes.
type BatchResult struct {
	Trace *pipetrace.Trace
	Stats *Stats
	Err   error
}

// RunBatch simulates every configuration over one shared instruction
// stream in a single pass. The per-instruction work a single-config loop
// repeats N times is paid once per batch where it is config-independent —
// the stream iteration/decode and the branch-prediction outcome stream
// (shared per distinct predictor config via BranchReplay) — while each
// lane keeps the per-config state that timing feedback makes unshareable:
// occupancy pools, event heaps, scoreboards, and the cache hierarchy.
//
// State is laid out config-major ("structure of arrays" at lane
// granularity): lanes[i] bundles config i's complete pipeline state, and
// each worker drains its shard lane-outer — one lane runs the whole
// stream before the next starts, keeping that lane's multi-megabyte
// pipeline state cache-hot instead of interleaving every lane's working
// set at each instruction. Lane independence makes the order immaterial
// to results: each lane's trace, stats, and stamps are bit-identical to a
// dedicated Core.Run (Lite: RunLite) of its config — pinned by the
// conformance suite's fingerprint parity — so downstream DEG analysis
// consumes batch traces unchanged.
//
// Failures are isolated per lane: an invalid config, a Check error, or a
// panic mid-pass (a poisoned lane) fails only that lane's BatchResult and
// recycles its trace; the remaining lanes complete normally. RunBatch
// itself errors only on inputs that invalidate the whole call (empty
// stream, empty batch).
func RunBatch(stream []isa.Inst, cfgs []uarch.Config, opt BatchOptions) ([]BatchResult, error) {
	if len(stream) == 0 {
		return nil, fmt.Errorf("ooo: empty instruction stream")
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("ooo: empty config batch")
	}

	results := make([]BatchResult, len(cfgs))
	replays := make(map[bpred.Config]*BranchReplay, 1)
	var live []*batchLane
	for i, cfg := range cfgs {
		core, err := newCore(cfg, nil)
		if err != nil {
			results[i].Err = err
			continue
		}
		key := predConfig(cfg)
		rep, ok := replays[key]
		if !ok {
			// newCore validated cfg, so the predictor config is valid and
			// NewBranchReplay cannot fail here; the error path guards the
			// invariant rather than any reachable input.
			if rep, err = NewBranchReplay(stream, key); err != nil {
				results[i].Err = err
				continue
			}
			replays[key] = rep
		}
		core.replay = rep
		core.lite = opt.Lite
		tr := pipetrace.GetTrace(len(stream))
		core.arena = &tr.Arena
		live = append(live, &batchLane{idx: i, core: core, tr: tr})
	}

	runLanes(stream, live, opt)

	for _, ln := range live {
		r := &results[ln.idx]
		if ln.err != nil {
			r.Err = ln.err
			continue
		}
		c := ln.core
		c.arena = nil
		c.finalizeStats(len(stream))
		ln.tr.Cycles = c.stats.Cycles
		r.Trace = ln.tr
		r.Stats = &c.stats
	}
	return results, nil
}

// batchLane is one config's slot of the pass: its complete pipeline state
// plus the trace it emits into. A failed lane has err set and its trace
// already recycled.
type batchLane struct {
	idx  int // position in the cfgs/results slices
	core *Core
	tr   *pipetrace.Trace
	err  error
}

// step advances this lane through one instruction — the same five-stage
// resolution Core.run performs, appending into the lane's own trace.
func (ln *batchLane) step(seq int, in *isa.Inst) {
	c := ln.core
	ln.tr.Records = pipetrace.AppendReset(ln.tr.Records, seq, in.PC, in.Class)
	rec := &ln.tr.Records[len(ln.tr.Records)-1]
	c.fetch(in, rec)
	c.decode(rec)
	c.rename(in, rec)
	c.schedule(in, rec)
	c.commit(in, rec)
}

// fail poisons the lane: records the error and recycles its trace. The
// worker skips failed lanes for the rest of the pass.
func (ln *batchLane) fail(err error) {
	ln.err = err
	ln.tr.Release()
	ln.tr = nil
	ln.core = nil
}

// runLanes shards lanes contiguously across workers, each draining its
// shard lane-outer. Lanes never share mutable state (each owns its core
// and trace; the replay and stream are read-only), so workers need no
// synchronization beyond the final join.
func runLanes(stream []isa.Inst, lanes []*batchLane, opt BatchOptions) {
	if len(lanes) == 0 {
		return
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(lanes) {
		workers = len(lanes)
	}
	runShard := func(shard []*batchLane) {
		w := &batchWorker{lanes: shard}
		if opt.Gate != nil {
			opt.Gate(func() { w.run(stream, opt.Check) })
		} else {
			w.run(stream, opt.Check)
		}
	}
	if workers == 1 {
		runShard(lanes)
		return
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := wi * len(lanes) / workers
		hi := (wi + 1) * len(lanes) / workers
		wg.Add(1)
		go func(shard []*batchLane) {
			defer wg.Done()
			runShard(shard)
		}(lanes[lo:hi])
	}
	wg.Wait()
}

// batchWorker holds one shard's pass cursors — the current lane and that
// lane's current instruction — so a recovered panic can poison exactly the
// lane that raised it and resume the pass where it stopped.
type batchWorker struct {
	lanes []*batchLane
	li    int
	seq   int
}

// run drives the shard to completion, re-entering the isolated region
// after each poisoned lane. The recover loop costs nothing per step: the
// deferred recover lives on runIsolated's frame, not inside the pass.
func (w *batchWorker) run(stream []isa.Inst, check func(int) error) {
	for w.li < len(w.lanes) {
		w.runIsolated(stream, check)
	}
}

// runIsolated drains lanes until the shard completes or a lane panics. A
// panic poisons only the lane under the cursor — its error slot reports
// the failure, its trace recycles — and the caller resumes with the next
// lane; completed and sibling lanes are untouched.
func (w *batchWorker) runIsolated(stream []isa.Inst, check func(int) error) {
	defer func() {
		if p := recover(); p != nil {
			ln := w.lanes[w.li]
			ln.fail(fmt.Errorf("ooo: batch config %d panicked at seq %d: %v", ln.idx, w.seq, p))
			w.li++
			w.seq = 0
		}
	}()
	for w.li < len(w.lanes) {
		ln := w.lanes[w.li]
		if ln.err == nil {
			if check != nil && w.seq == 0 {
				if err := check(ln.idx); err != nil {
					ln.fail(err)
					w.li++
					continue
				}
			}
			for w.seq < len(stream) {
				ln.step(w.seq, &stream[w.seq])
				w.seq++
			}
		}
		w.li++
		w.seq = 0
	}
}
