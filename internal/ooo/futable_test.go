package ooo

import (
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/uarch"
)

// TestFUTableCoversEveryOpClass enumerates the full OpClass space and
// requires a complete, sane spec for each — the init-time guard against the
// old silent zero-latency fallback, exercised as a test so a new class shows
// up as a red test even if someone removes the init check.
func TestFUTableCoversEveryOpClass(t *testing.T) {
	for c := 0; c < isa.NumOpClasses; c++ {
		cls := isa.OpClass(c)
		spec := fuTable[c]
		if !spec.valid {
			t.Errorf("%s: no fuTable entry", cls)
			continue
		}
		if spec.lat < 1 {
			t.Errorf("%s: latency %d must be >= 1", cls, spec.lat)
		}
		if spec.res == uarch.ResNone || int(spec.res) >= uarch.NumResources {
			t.Errorf("%s: resource %d out of range", cls, spec.res)
		}
		if !spec.pipelined && spec.lat == 1 {
			t.Errorf("%s: single-cycle units must be pipelined", cls)
		}
	}
}

// TestValidateFUTableRejectsIncomplete checks the validator actually fires
// on the failure modes it exists for, by probing a doctored copy.
func TestValidateFUTableRejectsIncomplete(t *testing.T) {
	saved := fuTable
	defer func() { fuTable = saved }()

	fuTable[isa.OpFpDiv].valid = false
	if err := validateFUTable(); err == nil {
		t.Error("missing entry not rejected")
	}
	fuTable = saved

	fuTable[isa.OpIntAlu].lat = 0
	if err := validateFUTable(); err == nil {
		t.Error("zero latency not rejected")
	}
	fuTable = saved

	fuTable[isa.OpLoad].res = uarch.ResNone
	if err := validateFUTable(); err == nil {
		t.Error("missing resource not rejected")
	}
}
