// Package ooo is the cycle-level out-of-order superscalar core model that
// substitutes for the paper's modified gem5 O3 CPU.
//
// The model is trace-driven: the dynamic instruction stream (with resolved
// branch outcomes and effective addresses) comes from internal/workload,
// and the core resolves, in program order, the cycle at which each pipeline
// event of each instruction occurs, subject to the design point's resource
// constraints — pipeline widths, fetch buffering, branch prediction, ROB/
// IQ/LQ/SQ capacities, rename register pools, functional-unit and memory-
// port counts, and the cache hierarchy. Because later instructions' events
// depend only on earlier instructions' events, each instruction can be
// fully resolved before the next one, which both keeps the model fast and
// lets the scoreboard state the paper requires — WHICH instruction's
// released entry unblocked a stall — fall out exactly.
//
// Mispredicted branches stall the front end until the branch resolves and
// then pay a refill redirect; wrong-path instructions are not simulated
// (they cannot be derived from a correct-path trace), which slightly
// understates misprediction cost but preserves its critical-path structure.
package ooo

// freeEvent is one resource entry becoming available.
type freeEvent struct {
	time  int64 // cycle at which the entry is usable again
	owner int   // sequence number of the releasing instruction
}

// eventHeap is a binary min-heap over freeEvent (ordered by time), operated
// directly on the slice. The sift routines transcribe container/heap's
// up/down exactly — including tie handling between equal times — so the
// entry popped for any sequence of operations is identical to the previous
// interface-based implementation, keeping producer annotations bit-exact
// while eliminating the per-operation interface{} boxing allocation.
type eventHeap []freeEvent

func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].time < h[i].time) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].time < h[j1].time {
			j = j2 // = 2*i + 2, right child
		}
		if !(h[j].time < h[i].time) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// capPool models a capacity-constrained structure (ROB, IQ, LQ, SQ, rename
// register pools) whose entries are allocated in program order and freed at
// arbitrary times. Allocation takes the earliest-free entry; if the pool is
// not yet full the allocation is unconstrained.
type capPool struct {
	capacity int
	h        eventHeap
}

func newCapPool(capacity int) *capPool {
	return &capPool{capacity: capacity, h: make(eventHeap, 0, capacity)}
}

// alloc reserves one entry and returns the earliest cycle the entry is
// available plus the instruction that released it (-1 when unconstrained).
// The caller must later pass the entry's own release to free.
func (p *capPool) alloc() (int64, int) {
	if len(p.h) < p.capacity {
		return 0, -1
	}
	h := p.h
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	h.down(0, n)
	ev := h[n]
	p.h = h[:n]
	return ev.time, ev.owner
}

// free registers that owner releases one entry at time t.
func (p *capPool) free(t int64, owner int) {
	p.h = append(p.h, freeEvent{time: t, owner: owner})
	p.h.up(len(p.h) - 1)
}

// unitPool models a small bank of execution units (ALUs, dividers, cache
// ports). acquire picks the earliest-free unit, returns when it is free and
// who used it last, and occupies it for occ cycles starting no earlier than
// at.
type unitPool struct {
	nextFree []int64
	lastUser []int
}

func newUnitPool(n int) *unitPool {
	u := &unitPool{nextFree: make([]int64, n), lastUser: make([]int, n)}
	for i := range u.lastUser {
		u.lastUser[i] = -1
	}
	return u
}

// acquire books the earliest-available unit for occ cycles beginning at
// max(at, unit free time) on behalf of user. It returns the start cycle,
// the chosen unit, and the previous user when the unit was still busy at
// the requested time (-1 when the unit was already idle, i.e. no
// contention). If the caller's event is further delayed (issue-bandwidth
// limits), it must rebook the unit with adjust so later consumers observe
// the true occupancy window.
func (u *unitPool) acquire(at int64, occ int64, user int) (start int64, unit, prev int) {
	best := 0
	for i := 1; i < len(u.nextFree); i++ {
		if u.nextFree[i] < u.nextFree[best] {
			best = i
		}
	}
	start = at
	prev = -1
	if u.nextFree[best] > at {
		start = u.nextFree[best]
		prev = u.lastUser[best]
	}
	u.nextFree[best] = start + occ
	u.lastUser[best] = user
	return start, best, prev
}

// adjust moves a just-acquired unit's busy window to the actual start time.
func (u *unitPool) adjust(unit int, start, occ int64) {
	u.nextFree[unit] = start + occ
}

// bwRing tracks per-cycle bandwidth for events that are not monotone in
// time (issue). Slots are addressed by cycle modulo the ring size; the
// in-flight window of the core is far smaller than the ring, so collisions
// cannot occur.
type bwRing struct {
	cycle []int64
	used  []int
	width int
	mask  int64
}

func newBWRing(width int, logSize uint) *bwRing {
	size := int64(1) << logSize
	return &bwRing{
		cycle: make([]int64, size),
		used:  make([]int, size),
		width: width,
		mask:  size - 1,
	}
}

// book finds the first cycle >= t with spare bandwidth and consumes a slot.
func (r *bwRing) book(t int64) int64 {
	for {
		slot := t & r.mask
		if r.cycle[slot] != t {
			r.cycle[slot] = t
			r.used[slot] = 0
		}
		if r.used[slot] < r.width {
			r.used[slot]++
			return t
		}
		t++
	}
}

// inorderBW limits a pipeline stage whose event times are monotone
// (fetch, decode, rename, dispatch, commit).
type inorderBW struct {
	width int
	cur   int64
	used  int
}

func newInorderBW(width int) *inorderBW { return &inorderBW{width: width} }

// book returns the first cycle >= t with a free slot and consumes it.
// t must be >= any previously returned cycle minus the stage's reordering
// window (stages using this helper are strictly in order).
func (b *inorderBW) book(t int64) int64 {
	if t > b.cur {
		b.cur, b.used = t, 0
	}
	if b.used < b.width {
		b.used++
		return b.cur
	}
	b.cur++
	b.used = 1
	return b.cur
}
