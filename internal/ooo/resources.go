// Package ooo is the cycle-level out-of-order superscalar core model that
// substitutes for the paper's modified gem5 O3 CPU.
//
// The model is trace-driven: the dynamic instruction stream (with resolved
// branch outcomes and effective addresses) comes from internal/workload,
// and the core resolves, in program order, the cycle at which each pipeline
// event of each instruction occurs, subject to the design point's resource
// constraints — pipeline widths, fetch buffering, branch prediction, ROB/
// IQ/LQ/SQ capacities, rename register pools, functional-unit and memory-
// port counts, and the cache hierarchy. Because later instructions' events
// depend only on earlier instructions' events, each instruction can be
// fully resolved before the next one, which both keeps the model fast and
// lets the scoreboard state the paper requires — WHICH instruction's
// released entry unblocked a stall — fall out exactly.
//
// Mispredicted branches stall the front end until the branch resolves and
// then pay a refill redirect; wrong-path instructions are not simulated
// (they cannot be derived from a correct-path trace), which slightly
// understates misprediction cost but preserves its critical-path structure.
package ooo

import "fmt"

// freeEvent is one resource entry becoming available. The hot capPool
// stores times and owners in parallel arrays; this struct form is the
// interchange type of the reference-heap shadow used by the differential
// tests and FuzzCapPoolParity.
type freeEvent struct {
	time  int64 // cycle at which the entry is usable again
	owner int   // sequence number of the releasing instruction
}

// capPool models a capacity-constrained structure (ROB, IQ, LQ, SQ, rename
// register pools) whose entries are allocated in program order and freed at
// arbitrary times. Allocation takes the earliest-free entry; if the pool is
// not yet full the allocation is unconstrained.
//
// The pool IS a binary min-heap over time — and has to be. The obvious
// faster structure, a calendar/bucket queue popping same-time events in a
// value-defined order (FIFO, or lowest owner first), is observably wrong:
// which same-time entry pops is structure-dependent in container/heap, the
// popped owner feeds the producer annotations whenever the pool is the
// stall reason, and on the parity corpus ~30% of those stall-visible pops
// disagree between heap order and any per-bucket value order (measured;
// see DESIGN.md §15). So the layout evolution of the seed's container/heap
// is transcribed exactly, and the speedup is taken inside the
// transcription instead: times and owners live in parallel arrays so the
// sift's compare chain walks a dense 8-byte lane, and both sifts carry the
// moving element through a hole (one store per level) instead of swapping
// (four 16-byte moves per level). Equivalence is pinned three ways: the
// inductive argument in DESIGN.md §15, the differential fuzzer
// (FuzzCapPoolParity) against a live container/heap shadow, and the seed
// fingerprints.
type capPool struct {
	capacity int
	times    []int64 // heap-ordered release cycles
	owners   []int   // owners[i] released the entry freeing at times[i]
}

func newCapPool(capacity int) *capPool {
	return &capPool{
		capacity: capacity,
		times:    make([]int64, 0, capacity),
		owners:   make([]int, 0, capacity),
	}
}

// alloc reserves one entry and returns the earliest cycle the entry is
// available plus the instruction that released it (-1 when unconstrained).
// The caller must later pass the entry's own release to free.
func (p *capPool) alloc() (int64, int) {
	n := len(p.times)
	if n < p.capacity {
		return 0, -1
	}
	rt, ro := p.times[0], p.owners[0]
	n--
	// Reslice to the post-pop length before sifting: every index below is
	// then provably < len, so the sift loop runs without bounds checks.
	t, o := p.times[:n], p.owners[:n]
	lt, lo := p.times[n], p.owners[n]
	p.times, p.owners = t, o
	if n == 0 {
		return rt, ro
	}
	// Sift the displaced last element down from the root. Same child
	// choice as container/heap's down (left child on equal times) and same
	// strict-less stop condition, so the resulting array layout is
	// identical; only the data movement differs — the element rides in
	// registers and path entries shift up through the hole, instead of
	// four 16-byte swap moves per level.
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j1 := j + 1; j1 < n && t[j1] < t[j] {
			j = j1
		}
		if t[j] >= lt {
			break
		}
		t[i], o[i] = t[j], o[j]
		i = j
	}
	t[i], o[i] = lt, lo
	return rt, ro
}

// free registers that owner releases one entry at time tm.
func (p *capPool) free(tm int64, owner int) {
	t := append(p.times, tm)
	o := append(p.owners, owner)
	// Sift up through the hole: strict-less against the parent, exactly
	// container/heap's up.
	j := len(t) - 1
	for j > 0 {
		i := (j - 1) / 2
		if t[i] <= tm {
			break
		}
		t[j], o[j] = t[i], o[i]
		j = i
	}
	t[j], o[j] = tm, owner
	p.times, p.owners = t, o
}

// fifoPool is the calendar-queue capacity pool for structures whose two
// extra invariants make the heap unnecessary: release times arrive in
// non-decreasing order (the releasing stage is in-order), and the popped
// owner is never observed by any caller. Under monotone insertion the
// multiset minimum is simply the oldest entry, so alloc reads a ring
// cursor — O(1), no sift — and stays bit-exact with the heap on the only
// field it exposes, the release time. The fetch queue qualifies: decode
// frees it at the in-order DC+1 cycle, and fetch discards the owner (fetch
// stalls are attributed through the F stamps themselves, not through a
// pool annotation).
//
// Both invariants are enforced, not assumed: free panics on a
// non-monotone release (which would silently un-sort the ring), and alloc
// does not return an owner at all, so a future caller that needs one
// cannot compile against this type.
type fifoPool struct {
	times    []int64 // power-of-two ring of release cycles, oldest at head
	mask     int
	head     int
	n        int
	capacity int
	last     int64 // newest release accepted, for the monotone check
}

func newFIFOPool(capacity int) *fifoPool {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &fifoPool{times: make([]int64, size), mask: size - 1, capacity: capacity}
}

// alloc reserves one entry and returns the earliest cycle it is available
// (0 when the pool is not yet full, i.e. unconstrained).
func (p *fifoPool) alloc() int64 {
	if p.n < p.capacity {
		return 0
	}
	t := p.times[p.head]
	p.head = (p.head + 1) & p.mask
	p.n--
	return t
}

// free registers one entry release at time t. Releases must be
// non-decreasing in t — that is what lets alloc pop a cursor instead of
// sifting a heap — and the pool fails loudly if the contract breaks.
func (p *fifoPool) free(t int64) {
	if t < p.last {
		panic(fmt.Sprintf("ooo: fifoPool release out of order: %d after %d (in-order release contract broken)", t, p.last))
	}
	if p.n > p.mask {
		panic(fmt.Sprintf("ooo: fifoPool overflow: %d live entries exceed ring for capacity %d", p.n+1, p.capacity))
	}
	p.last = t
	p.times[(p.head+p.n)&p.mask] = t
	p.n++
}

// unitPool models a small bank of execution units (ALUs, dividers, cache
// ports). acquire picks the earliest-free unit, returns when it is free and
// who used it last, and occupies it for occ cycles starting no earlier than
// at.
//
// Contract (pinned by TestUnitPoolTieBreak / TestUnitPoolAcquireAdjust and
// by the seed fingerprints):
//
//   - Tie-break: among equally-early units the LOWEST index wins (the scan
//     keeps the first minimum it sees).
//   - The returned prev is the unit's last occupant at the REQUESTED
//     start: the wait the scheduler observed when it picked the unit. If
//     issue-bandwidth limits later delay the actual start and the caller
//     rebooks via adjust, prev is deliberately not re-derived — the DEG
//     edge blames the occupant that made the instruction wait at selection
//     time, which is the seed's annotation semantics, even if that
//     occupant's window has drained by the adjusted start.
type unitPool struct {
	nextFree []int64
	lastUser []int
}

func newUnitPool(n int) *unitPool {
	u := &unitPool{nextFree: make([]int64, n), lastUser: make([]int, n)}
	for i := range u.lastUser {
		u.lastUser[i] = -1
	}
	return u
}

// acquire books the earliest-available unit for occ cycles beginning at
// max(at, unit free time) on behalf of user. It returns the start cycle,
// the chosen unit, and the previous user when the unit was still busy at
// the requested time (-1 when the unit was already idle, i.e. no
// contention). If the caller's event is further delayed (issue-bandwidth
// limits), it must rebook the unit with adjust so later consumers observe
// the true occupancy window.
func (u *unitPool) acquire(at int64, occ int64, user int) (start int64, unit, prev int) {
	best := 0
	for i := 1; i < len(u.nextFree); i++ {
		if u.nextFree[i] < u.nextFree[best] {
			best = i
		}
	}
	start = at
	prev = -1
	if u.nextFree[best] > at {
		start = u.nextFree[best]
		prev = u.lastUser[best]
	}
	u.nextFree[best] = start + occ
	u.lastUser[best] = user
	return start, best, prev
}

// adjust moves a just-acquired unit's busy window to the actual start time.
// It does not touch lastUser: the unit still belongs to the same user, and
// that user's contention annotation was fixed at acquire time (see the
// type comment).
func (u *unitPool) adjust(unit int, start, occ int64) {
	u.nextFree[unit] = start + occ
}

// bwRing tracks per-cycle bandwidth for events that are not monotone in
// time (issue). Slots are addressed by cycle modulo the ring size with
// lazy reset: a slot whose recorded cycle is older than the cycle being
// booked belongs to a drained part of the window and is reclaimed.
//
// That reclamation is only sound while every live booking cycle fits
// inside one ring span. The ring is therefore sized from the config's
// actual reorder window (see issueRingSlots in core.go) rather than a
// fixed constant, and book checks the unsafe direction explicitly:
// finding a slot that holds a NEWER cycle than the one being booked means
// two live cycles collided and the older one's counts were already
// discarded. Rather than silently corrupting issue-bandwidth accounting,
// the ring rebuilds itself at twice the size — an exact, lossless
// migration, since remapping into a larger power-of-two ring keeps
// distinct cycles distinct — and a runaway guard fails loudly if growth
// ever exceeds the hard cap.
type bwRing struct {
	cycle []int64
	used  []int32
	width int32
	mask  int64
	grown int // growth events, surfaced to tests
}

// maxBWRingSlots is the runaway guard: needing growth beyond this means
// the reorder-window bound reasoning is broken, not that the config is
// big.
const maxBWRingSlots = 1 << 22

func newBWRing(width int, slots int) *bwRing {
	size := int64(1)
	for size < int64(slots) {
		size <<= 1
	}
	return &bwRing{
		cycle: make([]int64, size),
		used:  make([]int32, size),
		width: int32(width),
		mask:  size - 1,
	}
}

// book finds the first cycle >= t with spare bandwidth and consumes a slot.
func (r *bwRing) book(t int64) int64 {
	for {
		slot := t & r.mask
		c := r.cycle[slot]
		if c != t {
			if c > t {
				// Collision with a live newer cycle: reclaiming this slot
				// would lose its counts. Grow and retry — the booking
				// being attempted has consumed nothing yet, so the
				// migration is exact.
				r.grow()
				continue
			}
			r.cycle[slot] = t
			r.used[slot] = 0
		}
		if r.used[slot] < r.width {
			r.used[slot]++
			return t
		}
		t++
	}
}

// grow doubles the ring and migrates every live slot. Distinct cycles
// stay distinct: two old slots can only land on the same new slot if
// their cycles agree modulo the new size, which implies they agreed
// modulo the old size — i.e. they were the same slot.
func (r *bwRing) grow() {
	newSize := (r.mask + 1) * 2
	if newSize > maxBWRingSlots {
		panic(fmt.Sprintf("ooo: issue bandwidth ring exceeded %d slots; live issue-cycle spread is beyond the reorder-window bound", maxBWRingSlots))
	}
	cycle := make([]int64, newSize)
	used := make([]int32, newSize)
	newMask := newSize - 1
	for s := int64(0); s <= r.mask; s++ {
		if r.used[s] == 0 {
			continue
		}
		ns := r.cycle[s] & newMask
		cycle[ns] = r.cycle[s]
		used[ns] = r.used[s]
	}
	r.cycle, r.used, r.mask = cycle, used, newMask
	r.grown++
}

// inorderBW limits a pipeline stage whose event times are monotone
// (fetch, decode, rename, dispatch, commit).
type inorderBW struct {
	width int
	cur   int64
	used  int
}

func newInorderBW(width int) *inorderBW { return &inorderBW{width: width} }

// book returns the first cycle >= t with a free slot and consumes it.
// t must be >= any previously returned cycle minus the stage's reordering
// window (stages using this helper are strictly in order).
func (b *inorderBW) book(t int64) int64 {
	if t > b.cur {
		b.cur, b.used = t, 0
	}
	if b.used < b.width {
		b.used++
		return b.cur
	}
	b.cur++
	b.used = 1
	return b.cur
}

// storeTable is the in-flight store-forwarding buffer: an open-addressed
// hash table from 8-byte-aligned addresses to the youngest committed store
// at that address. It replaces a map[uint64]storeEntry on the hot path —
// same overwrite-on-commit, lookup-on-load semantics, without per-op
// hashing through the runtime map or GC write barriers. Keys are stored
// as addr|1 (addresses are masked to 8-byte alignment, so the tag bit is
// free), leaving 0 as the empty marker even for address 0.
type storeTable struct {
	keys []uint64
	vals []storeEntry
	mask uint64
	n    int
}

func newStoreTable() *storeTable {
	const initSize = 1024
	return &storeTable{
		keys: make([]uint64, initSize),
		vals: make([]storeEntry, initSize),
		mask: initSize - 1,
	}
}

// hashAddr spreads the aligned-address key over the table (Fibonacci
// multiplicative hashing; the low bits of an aligned address carry no
// entropy on their own).
func hashAddr(k uint64) uint64 {
	k *= 0x9E3779B97F4A7C15
	return k ^ (k >> 29)
}

// get returns the entry for addr (which must be 8-byte aligned).
func (s *storeTable) get(addr uint64) (storeEntry, bool) {
	k := addr | 1
	i := hashAddr(k) & s.mask
	for {
		kk := s.keys[i]
		if kk == k {
			return s.vals[i], true
		}
		if kk == 0 {
			return storeEntry{}, false
		}
		i = (i + 1) & s.mask
	}
}

// put inserts or overwrites the entry for addr (8-byte aligned).
func (s *storeTable) put(addr uint64, v storeEntry) {
	k := addr | 1
	i := hashAddr(k) & s.mask
	for {
		kk := s.keys[i]
		if kk == k {
			s.vals[i] = v
			return
		}
		if kk == 0 {
			s.keys[i] = k
			s.vals[i] = v
			s.n++
			if uint64(s.n)*4 > (s.mask+1)*3 {
				s.rehash()
			}
			return
		}
		i = (i + 1) & s.mask
	}
}

// rehash doubles the table and reinserts every key.
func (s *storeTable) rehash() {
	oldKeys, oldVals := s.keys, s.vals
	size := (s.mask + 1) * 2
	s.keys = make([]uint64, size)
	s.vals = make([]storeEntry, size)
	s.mask = size - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := hashAddr(k) & s.mask
		for s.keys[j] != 0 {
			j = (j + 1) & s.mask
		}
		s.keys[j] = k
		s.vals[j] = oldVals[i]
	}
}
