package ooo

import (
	"fmt"
	"hash/fnv"
	"io"

	"archexplorer/internal/pipetrace"
)

// Fingerprint folds every deterministic field of a trace — stage stamps,
// latencies, all DEG annotations, and the activity statistics — into one
// FNV-1a hash. Two runs agree on the fingerprint iff their pipetrace
// records and stats are byte-identical.
//
// It is the oracle of the conformance suite (internal/conformance) and of
// the in-package parity tests: the pinned seed fingerprints in
// parity_test.go were captured through this exact byte layout, so the
// layout must never change — a model change that legitimately moves the
// hash is re-pinned there, never absorbed by editing the format.
func Fingerprint(tr *pipetrace.Trace, st *Stats) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d\n", tr.Cycles)
	for i := range tr.Records {
		hashRecord(h, &tr.Records[i])
	}
	fmt.Fprintf(h, "%+v\n", *st)
	return h.Sum64()
}

// TimingFingerprint is Fingerprint restricted to the fields probe-lite
// recording preserves: stage stamps, cache/execution latencies, the
// misprediction outcome, and the stats. Full-fidelity and lite runs of the
// same (config, stream) agree on it by the RunLite contract, so it is the
// cross-mode oracle — comparing a lite run against a full run through the
// full Fingerprint would only measure the elided annotations.
func TimingFingerprint(tr *pipetrace.Trace, st *Stats) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d\n", tr.Cycles)
	for i := range tr.Records {
		r := &tr.Records[i]
		fmt.Fprintf(h, "%d %#x %d %v %d %d %v\n",
			r.Seq, r.PC, r.Class, r.Stamp,
			r.ICacheLat, r.DCacheLat, fpBool(r.Mispredicted))
		fmt.Fprintf(h, "exec=%d\n", r.ExecLat)
	}
	fmt.Fprintf(h, "%+v\n", *st)
	return h.Sum64()
}

// ChunkedFingerprint is Fingerprint over a run delivered as record chunks
// (RunStream): cycles and stats are hashed in the same positions, with the
// record sequence supplied chunk by chunk via the visit callback. Feeding
// it each chunk's records in emission order reproduces exactly what
// Fingerprint would compute over the materialized trace.
func ChunkedFingerprint(cycles int64, st *Stats, visit func(hash func(r *pipetrace.Record))) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d\n", cycles)
	visit(func(r *pipetrace.Record) { hashRecord(h, r) })
	fmt.Fprintf(h, "%+v\n", *st)
	return h.Sum64()
}

// hashRecord writes one record's deterministic fields in the pinned
// fingerprint layout.
func hashRecord(h io.Writer, r *pipetrace.Record) {
	fmt.Fprintf(h, "%d %#x %d %v %v %d %d %v %d %d %d %d %v\n",
		r.Seq, r.PC, r.Class, r.Stamp, r.ResourceDeps, r.FUProducer,
		r.FURes, r.DataProducers, r.PortProducer, r.MispredictFrom,
		r.ICacheLat, r.DCacheLat, fpBool(r.Mispredicted))
	fmt.Fprintf(h, "exec=%d\n", r.ExecLat)
}

func fpBool(b bool) int {
	if b {
		return 1
	}
	return 0
}
