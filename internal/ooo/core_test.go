package ooo

import (
	"testing"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func runWorkload(t testing.TB, cfg uarch.Config, name string, n int) (*pipetrace.Trace, *Stats) {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, stats, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	return tr, stats
}

func TestBaselineProducesValidTrace(t *testing.T) {
	tr, stats := runWorkload(t, uarch.Baseline(), "458.sjeng", 5000)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ipc := stats.IPC()
	if ipc <= 0.08 || ipc > 4 {
		t.Fatalf("baseline IPC %.3f outside plausible range", ipc)
	}
	t.Logf("sjeng baseline: IPC=%.3f cycles=%d mispredict=%.3f", ipc, stats.Cycles, stats.MispredictRate())
}

func TestEveryWorkloadSimulates(t *testing.T) {
	cfg := uarch.Baseline()
	for _, p := range workload.All() {
		stream, err := workload.CachedTrace(p, 2000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		core, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, stats, err := core.Run(stream)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if stats.IPC() <= 0 {
			t.Fatalf("%s: nonpositive IPC", p.Name)
		}
		t.Logf("%-18s IPC=%.3f  br-mpki=%.1f  d$miss=%.2f", p.Name, stats.IPC(),
			1000*float64(stats.Mispredicts)/float64(stats.Committed),
			float64(stats.DCacheMisses)/float64(max64(stats.DCacheAccesses, 1)))
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestBiggerMachineIsNotSlower(t *testing.T) {
	small := uarch.Baseline()
	big := small
	big.Width = 8
	big.ROBEntries = 256
	big.IntRF = 256
	big.FpRF = 256
	big.IQEntries = 80
	big.LQEntries = 48
	big.SQEntries = 48
	big.IntALU = 6
	big.IntMultDiv = 2
	big.FpALU = 2
	big.FpMultDiv = 2

	for _, name := range []string{"458.sjeng", "444.namd", "429.mcf"} {
		_, sSmall := runWorkload(t, small, name, 4000)
		_, sBig := runWorkload(t, big, name, 4000)
		if sBig.IPC() < sSmall.IPC()*0.98 {
			t.Errorf("%s: bigger machine slower: %.3f vs %.3f", name, sBig.IPC(), sSmall.IPC())
		}
	}
}
