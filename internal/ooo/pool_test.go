package ooo

import (
	"container/heap"
	"math/rand"
	"testing"

	"archexplorer/internal/uarch"
)

// uarchConfigWithWindow is a baseline config with the reorder window
// (the only fields issueRingSlots reads) overridden.
func uarchConfigWithWindow(rob, fq int) uarch.Config {
	cfg := uarch.Baseline()
	cfg.ROBEntries = rob
	cfg.FetchQueueUops = fq
	return cfg
}

// refEventHeap is the container/heap shadow: the seed's capPool used the
// stdlib heap (later transcribed into an inlined eventHeap), and its
// structure-dependent pop order among equal times is the pinned behaviour.
// Every differential test in this file compares the shipped SoA pool
// against this oracle.
type refEventHeap []freeEvent

func (h refEventHeap) Len() int           { return len(h) }
func (h refEventHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h refEventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)        { *h = append(*h, x.(freeEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// refCapPool is capPool's contract implemented directly on container/heap.
type refCapPool struct {
	capacity int
	h        refEventHeap
}

func (p *refCapPool) alloc() (int64, int) {
	if len(p.h) < p.capacity {
		return 0, -1
	}
	ev := heap.Pop(&p.h).(freeEvent)
	return ev.time, ev.owner
}

func (p *refCapPool) free(t int64, owner int) {
	heap.Push(&p.h, freeEvent{time: t, owner: owner})
}

// runPoolOps drives both pools through one op sequence and fails on the
// first diverging alloc. Each op is (free, time) or (alloc). Returns the
// number of allocs executed, so callers can assert coverage.
func runPoolOps(t *testing.T, capacity int, ops []poolOp) int {
	t.Helper()
	got := newCapPool(capacity)
	want := &refCapPool{capacity: capacity}
	allocs := 0
	live := 0 // entries the sim semantics would consider outstanding
	for i, op := range ops {
		if op.isFree {
			got.free(op.time, i)
			want.free(op.time, i)
			live++
			continue
		}
		gt, go_ := got.alloc()
		wt, wo := want.alloc()
		allocs++
		if gt != wt || go_ != wo {
			t.Fatalf("op %d (capacity %d): alloc = (%d, %d), container/heap reference = (%d, %d)",
				i, capacity, gt, go_, wt, wo)
		}
		if gt != 0 || go_ != -1 {
			live--
		}
	}
	if lg, lw := len(got.times), len(want.h); lg != lw {
		t.Fatalf("capacity %d: pool sizes diverged: %d vs %d (live %d)", capacity, lg, lw, live)
	}
	return allocs
}

type poolOp struct {
	isFree bool
	time   int64
}

// TestCapPoolMatchesReferenceHeap drives random alloc/free interleavings —
// duplicate-heavy times, pool-full boundaries, capacity 1 — against the
// container/heap shadow. The sim itself only ever does strict alloc/free
// alternation once a pool fills; this test covers the wider contract so
// the pool stays a drop-in heap, not just a heap on today's call pattern.
func TestCapPoolMatchesReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, capacity := range []int{1, 2, 3, 8, 50, 192} {
		for trial := 0; trial < 20; trial++ {
			ops := make([]poolOp, 0, 2048)
			clock := int64(0)
			pending := 0
			for len(ops) < 2048 {
				// Bias toward frees until the pool is full, then mix, with
				// small time deltas so equal-time buckets are common.
				if pending < capacity && rng.Intn(3) > 0 {
					clock += int64(rng.Intn(3)) // 0 is frequent: duplicates
					jitter := int64(rng.Intn(5)) - 2
					ops = append(ops, poolOp{isFree: true, time: clock + jitter})
					pending++
				} else {
					ops = append(ops, poolOp{})
					if pending > 0 {
						pending--
					}
				}
			}
			if allocs := runPoolOps(t, capacity, ops); allocs == 0 {
				t.Fatalf("capacity %d trial %d: sequence exercised no allocs", capacity, trial)
			}
		}
	}
}

// TestCapPoolEmptyAndBoundary pins the exact boundary behaviour: allocs
// below capacity are unconstrained (0, -1), the transition to full is
// taken from the heap, and draining to a single element skips the sift.
func TestCapPoolEmptyAndBoundary(t *testing.T) {
	p := newCapPool(2)
	if tm, o := p.alloc(); tm != 0 || o != -1 {
		t.Fatalf("alloc on empty pool = (%d, %d), want (0, -1)", tm, o)
	}
	p.free(10, 7)
	if tm, o := p.alloc(); tm != 0 || o != -1 {
		t.Fatalf("alloc below capacity = (%d, %d), want (0, -1)", tm, o)
	}
	p.free(5, 8)
	p.free(9, 9)
	if tm, o := p.alloc(); tm != 5 || o != 8 {
		t.Fatalf("first constrained alloc = (%d, %d), want (5, 8)", tm, o)
	}
	if tm, o := p.alloc(); tm != 9 || o != 9 {
		t.Fatalf("second constrained alloc = (%d, %d), want (9, 9)", tm, o)
	}
}

// FuzzCapPoolParity is the differential fuzzer the tentpole is pinned by:
// arbitrary byte strings decode into alloc/free interleavings over a
// fuzzer-chosen capacity, and the SoA pool must produce the identical
// (time, owner) pop sequence to the container/heap shadow.
//
// Byte encoding: byte 0 picks the capacity (1..64). Each following byte b
// is one op: b&1 selects free (1) or alloc (0); for frees, b>>1 is a time
// delta in [-15, 48] against a running clock, so duplicate times and
// out-of-order releases both occur naturally.
func FuzzCapPoolParity(f *testing.F) {
	f.Add([]byte{1, 3, 1, 0, 0})                         // capacity 1, fill, drain past empty
	f.Add([]byte{2, 1, 1, 1, 0, 0, 0})                   // duplicate times at capacity boundary
	f.Add([]byte{8, 5, 5, 5, 5, 5, 5, 5, 5, 0, 1, 0, 1}) // full pool, equal-time bucket
	f.Add([]byte{64, 2, 40, 2, 40, 0, 2, 0, 40, 0, 0})   // mixed deltas, interleaved
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := int(data[0])%64 + 1
		got := newCapPool(capacity)
		want := &refCapPool{capacity: capacity}
		clock := int64(1 << 20) // headroom so negative deltas stay positive
		for i, b := range data[1:] {
			if b&1 == 1 {
				clock += int64(b>>1) - 15
				got.free(clock, i)
				want.free(clock, i)
				continue
			}
			gt, gOwner := got.alloc()
			wt, wOwner := want.alloc()
			if gt != wt || gOwner != wOwner {
				t.Fatalf("op %d (capacity %d): alloc = (%d, %d), container/heap reference = (%d, %d)",
					i, capacity, gt, gOwner, wt, wOwner)
			}
		}
	})
}

// TestFIFOPoolMatchesHeap checks the calendar pool against the heap shadow
// under the fetch queue's actual invariant — monotone non-decreasing
// release times — where the minimum is always the oldest entry and the
// two structures must agree on every popped time.
func TestFIFOPoolMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, capacity := range []int{1, 2, 7, 32} {
		fifo := newFIFOPool(capacity)
		ref := &refCapPool{capacity: capacity}
		clock := int64(0)
		pending := 0
		for i := 0; i < 4096; i++ {
			if pending < capacity && rng.Intn(3) > 0 {
				clock += int64(rng.Intn(3))
				fifo.free(clock)
				ref.free(clock, i)
				pending++
				continue
			}
			// An alloc only consumes an entry when the pool is full — the
			// sim's contract, which is also what keeps len <= capacity.
			popped := pending == capacity
			gt := fifo.alloc()
			wt, _ := ref.alloc()
			if gt != wt {
				t.Fatalf("capacity %d op %d: fifo alloc %d, heap reference %d", capacity, i, gt, wt)
			}
			if popped {
				pending--
			}
		}
	}
}

// TestFIFOPoolRejectsNonMonotone pins the loud-failure contract: a release
// earlier than its predecessor would silently un-sort the ring, so it must
// panic instead.
func TestFIFOPoolRejectsNonMonotone(t *testing.T) {
	p := newFIFOPool(4)
	p.free(10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order fifoPool release did not panic")
		}
	}()
	p.free(9)
}

// TestBWRingGrowthExact forces collisions on a deliberately tiny ring and
// checks every booked cycle against a ring large enough to never collide:
// growth must be a lossless migration, not a lossy reset.
func TestBWRingGrowthExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	small := newBWRing(2, 8)
	big := newBWRing(2, 1<<16)
	base := int64(0)
	for i := 0; i < 5000; i++ {
		// Wander with occasional large jumps so live cycles spread far
		// beyond 8 slots, plus backward re-bookings inside the window.
		switch rng.Intn(8) {
		case 0:
			base += int64(rng.Intn(300))
		case 1:
			base -= int64(rng.Intn(20))
			if base < 0 {
				base = 0
			}
		default:
			base += int64(rng.Intn(2))
		}
		gs := small.book(base)
		gb := big.book(base)
		if gs != gb {
			t.Fatalf("op %d: small ring booked cycle %d, reference booked %d (after %d growths)",
				i, gs, gb, small.grown)
		}
	}
	if small.grown == 0 {
		t.Fatal("test pattern never collided; growth path not exercised")
	}
}

// TestIssueRingSlots pins the config-derived sizing and its clamps.
func TestIssueRingSlots(t *testing.T) {
	cases := []struct {
		rob, fq int
		want    int
	}{
		{8, 4, 1 << 12},      // tiny config hits the floor
		{50, 32, 84 * 64},    // baseline: window*64, not a fixed 1<<17
		{4096, 512, 1 << 17}, // huge config hits the ceiling
	}
	for _, c := range cases {
		cfg := uarchConfigWithWindow(c.rob, c.fq)
		if got := issueRingSlots(cfg); got != c.want {
			t.Errorf("issueRingSlots(ROB=%d, FQ=%d) = %d, want %d", c.rob, c.fq, got, c.want)
		}
	}
}

// TestUnitPoolTieBreak pins the acquire tie-break: among equally-early
// units the lowest index wins, so annotation blame is deterministic.
func TestUnitPoolTieBreak(t *testing.T) {
	u := newUnitPool(3)
	start, unit, prev := u.acquire(5, 2, 100)
	if start != 5 || unit != 0 || prev != -1 {
		t.Fatalf("first acquire = (%d, %d, %d), want (5, 0, -1)", start, unit, prev)
	}
	// Units 1 and 2 are both free at 0 — still tied, still lowest-first.
	_, unit, _ = u.acquire(5, 2, 101)
	if unit != 1 {
		t.Fatalf("second acquire picked unit %d, want 1", unit)
	}
	_, unit, _ = u.acquire(5, 2, 102)
	if unit != 2 {
		t.Fatalf("third acquire picked unit %d, want 2", unit)
	}
	// All units now free at 7: the tie between all three resolves to 0.
	start, unit, prev = u.acquire(6, 1, 103)
	if start != 7 || unit != 0 || prev != 100 {
		t.Fatalf("contended acquire = (%d, %d, %d), want (7, 0, 100)", start, unit, prev)
	}
}

// TestUnitPoolAcquireAdjust pins the acquire/adjust contract: prev is the
// blocker observed at the REQUESTED start, and a later adjust moves the
// busy window without rewriting history — the next acquire sees the
// adjusted window but blames the adjusted instruction, not a re-derived
// occupant.
func TestUnitPoolAcquireAdjust(t *testing.T) {
	u := newUnitPool(1)
	u.acquire(0, 4, 7) // unit busy until 4, last user 7

	start, unit, prev := u.acquire(2, 1, 8)
	if start != 4 || prev != 7 {
		t.Fatalf("contended acquire = (start %d, prev %d), want (4, 7)", start, prev)
	}
	// Issue bandwidth pushed the real start to 9 — past the old window.
	// adjust rebooks the occupancy; prev for instruction 8 stays 7 by
	// contract even though the unit was idle at cycle 9.
	u.adjust(unit, 9, 1)

	start, _, prev = u.acquire(9, 1, 9)
	if start != 10 || prev != 8 {
		t.Fatalf("post-adjust acquire = (start %d, prev %d), want (10, 8): adjust must move the window and keep blame on the adjusted user", start, prev)
	}
}

// TestStoreTableMatchesMap drives the open-addressed forwarding buffer
// against a plain map with the commit stage's access pattern: 8-aligned
// addresses (including 0), heavy overwrites, growth past the initial
// table, and misses.
func TestStoreTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := newStoreTable()
	ref := make(map[uint64]storeEntry)
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(4096)) * 8 // collisions and overwrites
		if rng.Intn(8) == 0 {
			addr = uint64(rng.Int63()) &^ 7 // spread keys to force growth
		}
		if rng.Intn(3) > 0 {
			e := storeEntry{seq: i, pReady: int64(i), commit: int64(i + 3)}
			st.put(addr, e)
			ref[addr] = e
		}
		got, ok := st.get(addr)
		want, wantOK := ref[addr]
		if ok != wantOK || got != want {
			t.Fatalf("op %d addr %#x: table = (%+v, %v), map = (%+v, %v)", i, addr, got, ok, want, wantOK)
		}
	}
	if _, ok := st.get(0); ok != func() bool { _, ok := ref[0]; return ok }() {
		t.Fatal("address 0 membership diverged from map")
	}
}
