package ooo

import (
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// parityWorkloads are the four invariant workloads whose simulator output is
// pinned bit-for-bit across hot-path rewrites.
var parityWorkloads = []string{"458.sjeng", "429.mcf", "619.lbm_s", "453.povray"}

const parityTraceLen = 6000

// tightConfig stresses every capacity pool so the free-event heaps stay full
// and their pop order (including tie handling between equal release times)
// shapes the producer annotations.
func tightConfig() uarch.Config {
	cfg := uarch.Baseline()
	cfg.ROBEntries = 32
	cfg.IQEntries = 8
	cfg.LQEntries = 8
	cfg.SQEntries = 8
	cfg.IntRF = 40
	cfg.FpRF = 40
	return cfg
}

// traceFingerprint is the exported Fingerprint under the name the pinned
// seed values were captured with; the seed-parity tests below replay the
// captured values, so any drift in the exported hash layout fails them.
func traceFingerprint(tr *pipetrace.Trace, st *Stats) uint64 {
	return Fingerprint(tr, st)
}

// seedFingerprints pins the exact output of the pre-optimization simulator
// (map-based FU lookup, container/heap pools, per-instruction annotation
// allocations) on the four invariant workloads. They were captured from the
// seed core before the hot-path rewrite and must never change: the
// optimization is required to be bit-exact, in both timing and every DEG
// annotation.
var seedFingerprints = map[string]map[string]uint64{
	"baseline": {
		"458.sjeng":  0xec4dd9ccad200458,
		"429.mcf":    0x26b449dff2761200,
		"619.lbm_s":  0x57f96513b030ba8a,
		"453.povray": 0xae65330f5177f181,
	},
	"tight": {
		"458.sjeng":  0xca8ab2e1bdab75aa,
		"429.mcf":    0xa488ab4c74bb70ad,
		"619.lbm_s":  0x6ea9af16393e9448,
		"453.povray": 0xe48880acfda92ab0,
	},
}

func runParityWorkload(t *testing.T, name string, cfg uarch.Config, lite bool) (*pipetrace.Trace, *Stats) {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, parityTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr *pipetrace.Trace
	var st *Stats
	if lite {
		tr, st, err = core.RunLite(stream)
	} else {
		tr, st, err = core.Run(stream)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

// TestSeedParity asserts the optimized simulator reproduces the seed
// simulator's output bit-for-bit on every invariant workload, at both the
// Table 1 baseline and a capacity-starved configuration that keeps the
// resource pools saturated.
func TestSeedParity(t *testing.T) {
	configs := map[string]uarch.Config{
		"baseline": uarch.Baseline(),
		"tight":    tightConfig(),
	}
	for cfgName, cfg := range configs {
		for _, name := range parityWorkloads {
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				tr, st := runParityWorkload(t, name, cfg, false)
				got := traceFingerprint(tr, st)
				want := seedFingerprints[cfgName][name]
				if got != want {
					t.Errorf("fingerprint drifted from seed: got %#x, want %#x\n"+
						"the hot path must be bit-exact; if a deliberate model change "+
						"caused this, re-pin after verifying stamps and annotations by hand", got, want)
				}
			})
		}
	}
}

// TestLiteParity asserts probe-lite mode changes only what it promises to:
// stage stamps, latencies, and Stats are byte-identical to a full run, while
// the DEG annotations (resource deps, producers, mispredict blame) are
// elided entirely.
func TestLiteParity(t *testing.T) {
	for _, name := range parityWorkloads {
		t.Run(name, func(t *testing.T) {
			full, fullSt := runParityWorkload(t, name, uarch.Baseline(), false)
			lite, liteSt := runParityWorkload(t, name, uarch.Baseline(), true)

			if *fullSt != *liteSt {
				t.Errorf("stats diverge between full and lite:\nfull %+v\nlite %+v", *fullSt, *liteSt)
			}
			if full.Cycles != lite.Cycles {
				t.Errorf("cycles diverge: full %d, lite %d", full.Cycles, lite.Cycles)
			}
			if len(full.Records) != len(lite.Records) {
				t.Fatalf("record count diverges: full %d, lite %d", len(full.Records), len(lite.Records))
			}
			for i := range full.Records {
				f, l := &full.Records[i], &lite.Records[i]
				if f.Stamp != l.Stamp {
					t.Fatalf("rec %d: stamps diverge\nfull %v\nlite %v", i, f.Stamp, l.Stamp)
				}
				if f.ICacheLat != l.ICacheLat || f.DCacheLat != l.DCacheLat ||
					f.ExecLat != l.ExecLat || f.Mispredicted != l.Mispredicted {
					t.Fatalf("rec %d: latencies/outcomes diverge", i)
				}
				if len(l.ResourceDeps) != 0 || len(l.DataProducers) != 0 {
					t.Fatalf("rec %d: lite run recorded annotations: deps=%v prods=%v",
						i, l.ResourceDeps, l.DataProducers)
				}
				if l.FUProducer != -1 || l.PortProducer != -1 || l.MispredictFrom != -1 {
					t.Fatalf("rec %d: lite run recorded producer blame: fu=%d port=%d bp=%d",
						i, l.FUProducer, l.PortProducer, l.MispredictFrom)
				}
			}
		})
	}
}

// TestPooledTraceReuseDeterministic asserts releasing a trace back to the
// pool and running again yields the identical fingerprint — reused backing
// storage must be indistinguishable from fresh storage.
func TestPooledTraceReuseDeterministic(t *testing.T) {
	var want uint64
	for round := 0; round < 3; round++ {
		tr, st := runParityWorkload(t, "458.sjeng", tightConfig(), false)
		got := traceFingerprint(tr, st)
		if round == 0 {
			want = got
		} else if got != want {
			t.Fatalf("round %d: fingerprint %#x differs from first run %#x after pooled reuse",
				round, got, want)
		}
		tr.Release()
	}
}

// TestRunDoesNotMutateSharedStream pins the CachedTrace immutability
// contract: Core.Run and RunLite treat the instruction stream as read-only,
// because CachedTrace hands every caller — concurrent evaluator workers
// included — the same backing array.
func TestRunDoesNotMutateSharedStream(t *testing.T) {
	p, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, parityTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]isa.Inst, len(stream))
	copy(snapshot, stream)

	for _, lite := range []bool{false, true} {
		core, err := New(tightConfig())
		if err != nil {
			t.Fatal(err)
		}
		if lite {
			_, _, err = core.RunLite(stream)
		} else {
			_, _, err = core.Run(stream)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range stream {
			if stream[i] != snapshot[i] {
				t.Fatalf("lite=%v: Run mutated shared stream at index %d: %+v != %+v",
					lite, i, stream[i], snapshot[i])
			}
		}
	}
}
