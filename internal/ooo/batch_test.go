package ooo

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// batchTestConfigs is a 4-lane batch mixing shared and distinct predictor
// front ends: baseline and tight share the predictor parameters (one
// replay serves both), the other two differ, so the replay map holds
// multiple entries.
func batchTestConfigs() []uarch.Config {
	wide := uarch.Baseline()
	wide.Width = 6
	wide.ROBEntries = 224
	wide.LocalPredictor = 2048
	wide.BTBEntries = 4096
	narrow := uarch.Baseline()
	narrow.Width = 2
	narrow.GlobalPredictor = 2048
	narrow.RASEntries = 16
	return []uarch.Config{uarch.Baseline(), tightConfig(), wide, narrow}
}

func batchStreamFor(t *testing.T, name string) []isa.Inst {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, parityTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// TestBatchParityWithRun is the core batched-simulation oracle: every
// lane's trace and stats must be bit-identical — full fingerprint, not
// just IPC — to a dedicated Core.Run (or RunLite) of the same config on
// the same stream, at every worker count.
func TestBatchParityWithRun(t *testing.T) {
	cfgs := batchTestConfigs()
	for _, name := range parityWorkloads {
		stream := batchStreamFor(t, name)
		for _, lite := range []bool{false, true} {
			// Reference fingerprints from dedicated per-config runs.
			want := make([]uint64, len(cfgs))
			for i, cfg := range cfgs {
				core, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				run := core.Run
				if lite {
					run = core.RunLite
				}
				trc, stats, err := run(stream)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = Fingerprint(trc, stats)
				trc.Release()
			}
			for _, workers := range []int{0, 1, 3} {
				res, err := RunBatch(stream, cfgs, BatchOptions{Lite: lite, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Err != nil {
						t.Fatalf("%s lite=%v workers=%d cfg %d: %v", name, lite, workers, i, r.Err)
					}
					if got := Fingerprint(r.Trace, r.Stats); got != want[i] {
						t.Errorf("%s lite=%v workers=%d cfg %d: batch fingerprint %#x != per-config run %#x",
							name, lite, workers, i, got, want[i])
					}
					r.Trace.Release()
				}
			}
		}
	}
}

// TestBatchLiteMatchesRunLiteExactly pins that a Lite batch elides exactly
// what RunLite elides: the full fingerprint of a Lite lane equals the full
// fingerprint of a dedicated RunLite, annotations included (both empty).
func TestBatchLiteMatchesRunLiteExactly(t *testing.T) {
	stream := batchStreamFor(t, "458.sjeng")
	cfg := tightConfig()
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, st, err := core.RunLite(stream)
	if err != nil {
		t.Fatal(err)
	}
	want := Fingerprint(tr, st)
	tr.Release()

	res, err := RunBatch(stream, []uarch.Config{cfg}, BatchOptions{Lite: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer res[0].Trace.Release()
	if got := Fingerprint(res[0].Trace, res[0].Stats); got != want {
		t.Errorf("lite batch fingerprint %#x != RunLite %#x", got, want)
	}
}

// TestBatchInvalidConfigIsolated pins per-lane failure isolation for
// construction-time failures: an invalid config fails only its own slot.
func TestBatchInvalidConfigIsolated(t *testing.T) {
	stream := batchStreamFor(t, "429.mcf")
	bad := uarch.Baseline()
	bad.IntRF = 2 // below the architectural minimum; Validate rejects it
	cfgs := []uarch.Config{uarch.Baseline(), bad, tightConfig()}
	res, err := RunBatch(stream, cfgs, BatchOptions{Lite: true})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Err == nil || res[1].Trace != nil {
		t.Fatalf("invalid config did not fail its lane: %+v", res[1])
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("sibling lane %d failed: %v", i, res[i].Err)
		}
		if res[i].Stats.Committed != uint64(len(stream)) {
			t.Fatalf("sibling lane %d committed %d != %d", i, res[i].Stats.Committed, len(stream))
		}
		res[i].Trace.Release()
	}
}

// TestBatchCheckFailureIsolated pins the Check hook's isolation contract:
// a lane whose Check errors or panics is poisoned, the rest of the batch
// stays bit-exact with per-config runs.
func TestBatchCheckFailureIsolated(t *testing.T) {
	stream := batchStreamFor(t, "619.lbm_s")
	cfgs := batchTestConfigs()
	checkErr := errors.New("lane rejected")
	for _, mode := range []string{"error", "panic"} {
		for _, workers := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				res, err := RunBatch(stream, cfgs, BatchOptions{
					Lite:    true,
					Workers: workers,
					Check: func(cfg int) error {
						if cfg != 2 {
							return nil
						}
						if mode == "panic" {
							panic("injected lane panic")
						}
						return checkErr
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res[2].Err == nil || res[2].Trace != nil {
					t.Fatalf("lane 2 was not poisoned: %+v", res[2])
				}
				if mode == "error" && !errors.Is(res[2].Err, checkErr) {
					t.Fatalf("lane 2 error %v does not wrap the Check error", res[2].Err)
				}
				for i, r := range res {
					if i == 2 {
						continue
					}
					if r.Err != nil {
						t.Fatalf("sibling lane %d failed: %v", i, r.Err)
					}
					core, err := New(cfgs[i])
					if err != nil {
						t.Fatal(err)
					}
					tr, st, err := core.RunLite(stream)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := Fingerprint(r.Trace, r.Stats), Fingerprint(tr, st); got != want {
						t.Errorf("lane %d diverged after sibling poison: %#x != %#x", i, got, want)
					}
					tr.Release()
					r.Trace.Release()
				}
			})
		}
	}
}

// TestBatchGate pins the Gate contract: every worker's pass runs inside
// the gate, and gating changes nothing about the results.
func TestBatchGate(t *testing.T) {
	stream := batchStreamFor(t, "453.povray")
	cfgs := batchTestConfigs()
	var calls atomic.Int64
	res, err := RunBatch(stream, cfgs, BatchOptions{
		Lite:    true,
		Workers: 2,
		Gate: func(fn func()) {
			calls.Add(1)
			fn()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("gate wrapped %d workers, want 2", got)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("lane %d: %v", i, r.Err)
		}
		r.Trace.Release()
	}
}

// TestBatchInputValidation pins the whole-call error cases.
func TestBatchInputValidation(t *testing.T) {
	stream := batchStreamFor(t, "429.mcf")
	if _, err := RunBatch(nil, []uarch.Config{uarch.Baseline()}, BatchOptions{}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := RunBatch(stream, nil, BatchOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestBatchNoTraceAliasing extends the Retain/Release contract tests to
// batch mode: the traces a batch returns must be pairwise distinct objects
// with pairwise distinct record storage, and recycling them between batch
// rounds must not let one lane's storage surface in another lane's result
// mid-run. (The double-Release pin that guards the underlying bug class
// lives with the pool: pipetrace's TestReleaseBeyondZeroPanics.)
func TestBatchNoTraceAliasing(t *testing.T) {
	stream := batchStreamFor(t, "458.sjeng")
	cfgs := batchTestConfigs()
	var want []uint64
	for round := 0; round < 3; round++ {
		res, err := RunBatch(stream, cfgs, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range res {
			if a.Err != nil {
				t.Fatal(a.Err)
			}
			for j := i + 1; j < len(res); j++ {
				b := res[j]
				if a.Trace == b.Trace {
					t.Fatalf("round %d: lanes %d and %d share a *Trace", round, i, j)
				}
				if &a.Trace.Records[0] == &b.Trace.Records[0] {
					t.Fatalf("round %d: lanes %d and %d share record storage", round, i, j)
				}
			}
		}
		// Fingerprints must be stable across rounds even though every round
		// after the first runs entirely on pool-recycled storage.
		for i, r := range res {
			got := Fingerprint(r.Trace, r.Stats)
			if round == 0 {
				want = append(want, got)
			} else if got != want[i] {
				t.Fatalf("round %d lane %d: fingerprint %#x != first round %#x (recycled storage leaked state)",
					round, i, got, want[i])
			}
		}
		for _, r := range res {
			r.Trace.Release()
		}
	}
}

// TestBranchReplayMatchesLivePredictor pins the replay's counters against
// a live predictor run of the same stream.
func TestBranchReplayMatchesLivePredictor(t *testing.T) {
	stream := batchStreamFor(t, "429.mcf")
	cfg := uarch.Baseline()
	rep, err := NewBranchReplay(stream, predConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, st, err := core.RunLite(stream)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	if uint64(rep.Branches()) != st.BranchLookups || rep.lookups != st.BranchLookups {
		t.Errorf("replay branches %d / lookups %d, live lookups %d", rep.Branches(), rep.lookups, st.BranchLookups)
	}
	if rep.mispredicts != st.Mispredicts {
		t.Errorf("replay mispredicts %d, live %d", rep.mispredicts, st.Mispredicts)
	}
	// The per-branch bits must match the live run's per-record outcomes.
	bi := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Class != isa.OpBranch {
			continue
		}
		if rep.mispredicted(bi) != r.Mispredicted {
			t.Fatalf("branch %d (seq %d): replay says %v, live run says %v",
				bi, r.Seq, rep.mispredicted(bi), r.Mispredicted)
		}
		bi++
	}
	if bi != rep.Branches() {
		t.Fatalf("consumed %d replay bits, replay recorded %d", bi, rep.Branches())
	}
}
