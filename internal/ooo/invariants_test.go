package ooo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"archexplorer/internal/deg"
	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// TestRandomConfigsProduceValidTraces is the core property test: any design
// point of the Table 4 space must simulate any workload into a trace that
// passes every pipetrace invariant (dense sequence numbers, monotone stage
// stamps, in-order commit).
func TestRandomConfigsProduceValidTraces(t *testing.T) {
	s := uarch.StandardSpace()
	names := []string{"458.sjeng", "429.mcf", "619.lbm_s", "453.povray"}
	f := func(seed int64, wlIdx uint8) bool {
		pt := s.Random(rand.New(rand.NewSource(seed)))
		cfg := s.Decode(pt)
		p, err := workload.ByName(names[int(wlIdx)%len(names)])
		if err != nil {
			return false
		}
		stream, err := workload.CachedTrace(p, 1200)
		if err != nil {
			return false
		}
		core, err := New(cfg)
		if err != nil {
			return false
		}
		tr, st, err := core.Run(stream)
		if err != nil {
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Logf("config %s: %v", cfg, err)
			return false
		}
		return st.IPC() > 0 && st.IPC() <= float64(cfg.Width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceProducersPrecedeConsumers checks the scoreboard outputs the
// DEG depends on: every recorded producer is an older instruction, and the
// producer's release plausibly gates the consumer's stall.
func TestResourceProducersPrecedeConsumers(t *testing.T) {
	tr, _ := runWorkload(t, uarch.Baseline(), "458.sjeng", 6000)
	for i := range tr.Records {
		rec := &tr.Records[i]
		for _, rd := range rec.ResourceDeps {
			if rd.Producer >= rec.Seq {
				t.Fatalf("seq %d: resource producer %d not older", rec.Seq, rd.Producer)
			}
			// Rename-to-rename: the producer renamed before us.
			if tr.Records[rd.Producer].Stamp[pipetrace.SR] > rec.Stamp[pipetrace.SR] {
				t.Fatalf("seq %d: producer %d renamed later", rec.Seq, rd.Producer)
			}
		}
		if rec.FUProducer >= 0 {
			if rec.FUProducer >= rec.Seq {
				t.Fatalf("seq %d: FU producer %d not older", rec.Seq, rec.FUProducer)
			}
			if tr.Records[rec.FUProducer].Stamp[pipetrace.SI] > rec.Stamp[pipetrace.SI] {
				t.Fatalf("seq %d: FU producer issued later", rec.Seq)
			}
		}
		for _, p := range rec.DataProducers {
			if p >= rec.Seq {
				t.Fatalf("seq %d: data producer %d not older", rec.Seq, p)
			}
		}
		if rec.MispredictFrom >= 0 {
			src := &tr.Records[rec.MispredictFrom]
			if !src.Mispredicted {
				t.Fatalf("seq %d: refill source %d not mispredicted", rec.Seq, rec.MispredictFrom)
			}
			if src.Stamp[pipetrace.SP] > rec.Stamp[pipetrace.SF1] {
				t.Fatalf("seq %d: fetched before branch %d resolved", rec.Seq, rec.MispredictFrom)
			}
		}
	}
}

// TestROBOccupancyBounded reconstructs ROB occupancy from the trace: at no
// cycle may more than ROBEntries instructions be between rename and commit.
func TestROBOccupancyBounded(t *testing.T) {
	cfg := uarch.Baseline()
	tr, _ := runWorkload(t, cfg, "429.mcf", 4000)
	type ev struct {
		t     int64
		delta int
	}
	var evs []ev
	for i := range tr.Records {
		evs = append(evs, ev{tr.Records[i].Stamp[pipetrace.SR], +1})
		evs = append(evs, ev{tr.Records[i].Stamp[pipetrace.SC] + 1, -1})
	}
	// Counting sort by time would be overkill; simple sort.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].t < evs[j-1].t || (evs[j].t == evs[j-1].t && evs[j].delta < evs[j-1].delta)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	occ, maxOcc := 0, 0
	for _, e := range evs {
		occ += e.delta
		if occ > maxOcc {
			maxOcc = occ
		}
	}
	if maxOcc > cfg.ROBEntries {
		t.Fatalf("ROB occupancy reached %d > %d", maxOcc, cfg.ROBEntries)
	}
	if maxOcc < cfg.ROBEntries/2 {
		t.Logf("note: ROB never more than half full (max %d)", maxOcc)
	}
}

// TestCommitBandwidthRespected: no more than Width commits per cycle.
func TestCommitBandwidthRespected(t *testing.T) {
	cfg := uarch.Baseline()
	tr, _ := runWorkload(t, cfg, "456.hmmer", 6000)
	perCycle := map[int64]int{}
	for i := range tr.Records {
		perCycle[tr.Records[i].Stamp[pipetrace.SC]]++
	}
	for c, n := range perCycle {
		if n > cfg.Width {
			t.Fatalf("cycle %d committed %d > width %d", c, n, cfg.Width)
		}
	}
}

// TestStoreForwardingHappens: a tight store-then-load sequence to the same
// address must sometimes forward from the store queue.
func TestStoreForwardingHappens(t *testing.T) {
	var stream []isa.Inst
	pc := uint64(0x1000)
	addr := uint64(0x200000)
	for i := 0; i < 200; i++ {
		stream = append(stream, isa.Inst{
			PC: pc, Class: isa.OpStore, Addr: addr,
			Src1: isa.IntReg(8), Src2: isa.IntReg(9), Dest: isa.InvalidReg, Size: 8,
		})
		pc += 4
		stream = append(stream, isa.Inst{
			PC: pc, Class: isa.OpLoad, Addr: addr,
			Src1: isa.IntReg(8), Src2: isa.InvalidReg, Dest: isa.IntReg(10), Size: 8,
		})
		pc += 4
		addr += 8
	}
	core, err := New(uarch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreForwards == 0 {
		t.Fatal("no store-to-load forwarding in a forwarding-dominated stream")
	}
}

// TestMispredictionStallsFetch: after a mispredicted branch, the next
// instruction's fetch must begin after the branch resolves.
func TestMispredictionStallsFetch(t *testing.T) {
	tr, stats := runWorkload(t, uarch.Baseline(), "458.sjeng", 6000)
	if stats.Mispredicts == 0 {
		t.Skip("no mispredictions observed")
	}
	refills := 0
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.MispredictFrom < 0 {
			continue
		}
		refills++
		br := &tr.Records[rec.MispredictFrom]
		if rec.Stamp[pipetrace.SF1] <= br.Stamp[pipetrace.SP] {
			t.Fatalf("refill fetch at %d before branch resolution at %d",
				rec.Stamp[pipetrace.SF1], br.Stamp[pipetrace.SP])
		}
	}
	if refills == 0 {
		t.Fatal("mispredictions recorded but no refill annotations")
	}
}

// TestNarrowMachineSlower: at the Table 1 baseline width barely matters —
// the machine is register-file bound (the paper's Figure 2 point). With a
// well-provisioned back end, width-1 versus width-4 must show a meaningful
// gap on an ILP-friendly workload.
func TestNarrowMachineSlower(t *testing.T) {
	rich := uarch.Baseline()
	rich.ROBEntries = 192
	rich.IntRF = 256
	rich.FpRF = 256
	rich.IQEntries = 64
	rich.LQEntries = 48
	rich.SQEntries = 48
	rich.IntALU = 6
	rich.RdWrPorts = 2
	narrow := rich
	narrow.Width = 1

	_, sN := runWorkload(t, narrow, "456.hmmer", 8000)
	_, sW := runWorkload(t, rich, "456.hmmer", 8000)
	if sN.IPC() > 1.0 {
		t.Fatalf("width-1 machine IPC %.3f > 1", sN.IPC())
	}
	if sW.IPC() < sN.IPC()*1.2 {
		t.Fatalf("4-wide %.3f not meaningfully faster than width-1 %.3f", sW.IPC(), sN.IPC())
	}
}

// TestEmptyStreamRejected guards the Run API contract.
func TestEmptyStreamRejected(t *testing.T) {
	core, err := New(uarch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.Run(nil); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

// TestInvalidConfigRejected guards the New API contract.
func TestInvalidConfigRejected(t *testing.T) {
	bad := uarch.Baseline()
	bad.IntRF = 10
	if _, err := New(bad); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

// TestFUContentionEasesWithMoreUnits: a divide-heavy stream on one
// unpipelined divider must speed up with a second divider.
func TestFUContentionEasesWithMoreUnits(t *testing.T) {
	var stream []isa.Inst
	pc := uint64(0x1000)
	for i := 0; i < 300; i++ {
		// Independent divides: distinct dests, invariant sources.
		stream = append(stream, isa.Inst{
			PC: pc, Class: isa.OpIntDiv,
			Src1: isa.IntReg(2), Src2: isa.IntReg(3), Dest: isa.IntReg(8 + i%16),
		})
		pc += 4
	}
	one := uarch.Baseline()
	two := one
	two.IntMultDiv = 2

	run := func(cfg uarch.Config) float64 {
		core, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := core.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	ipc1, ipc2 := run(one), run(two)
	if ipc2 < ipc1*1.5 {
		t.Fatalf("second divider did not help: %.4f -> %.4f", ipc1, ipc2)
	}
}

// TestFUContentionAnnotated: with one divider, back-to-back divides must
// carry FU producer annotations naming the previous divider user.
func TestFUContentionAnnotated(t *testing.T) {
	var stream []isa.Inst
	pc := uint64(0x1000)
	for i := 0; i < 50; i++ {
		stream = append(stream, isa.Inst{
			PC: pc, Class: isa.OpIntDiv,
			Src1: isa.IntReg(2), Src2: isa.IntReg(3), Dest: isa.IntReg(8 + i%16),
		})
		pc += 4
	}
	core, err := New(uarch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	annotated := 0
	for i := range tr.Records {
		if tr.Records[i].FUProducer >= 0 {
			annotated++
			if tr.Records[i].FURes != uarch.ResIntMultDiv {
				t.Fatalf("FU resource %s", tr.Records[i].FURes)
			}
		}
	}
	if annotated < 20 {
		t.Fatalf("only %d divider-contention annotations", annotated)
	}
}

// TestSmallFetchBufferSlowsStraightLineFetch: with tiny fetch buffers the
// front end needs more I$ requests per instruction.
func TestSmallFetchBufferSlowsStraightLineFetch(t *testing.T) {
	small := uarch.Baseline()
	small.FetchBufBytes = 16
	_, sS := runWorkload(t, small, "462.libquantum", 6000)
	_, sB := runWorkload(t, uarch.Baseline(), "462.libquantum", 6000)
	if sS.FetchGroups <= sB.FetchGroups {
		t.Fatalf("16B buffer made %d groups, 64B made %d", sS.FetchGroups, sB.FetchGroups)
	}
	if sS.IPC() > sB.IPC()*1.02 {
		t.Fatalf("smaller fetch buffer should not be faster: %.3f vs %.3f", sS.IPC(), sB.IPC())
	}
}

// TestDEGBuildDropsNothing: every trace the simulator emits must build into
// a DEG with zero defensive drops — addEdge's NoStamp/backward guards exist
// for corrupt traces, and a clean simulator must never trip them. The drop
// counters made these visible (they used to vanish silently); this pins them
// at zero so any future simulator regression that emits an unstampable or
// time-reversed dependence fails here instead of quietly skewing attribution.
func TestDEGBuildDropsNothing(t *testing.T) {
	for _, name := range []string{"458.sjeng", "429.mcf", "462.libquantum", "453.povray"} {
		tr, _ := runWorkload(t, uarch.Baseline(), name, 6000)
		g, err := deg.Build(tr, deg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g.DroppedNoStamp != 0 || g.DroppedBackward != 0 {
			t.Fatalf("%s: DEG build dropped edges (no-stamp %d, backward %d)",
				name, g.DroppedNoStamp, g.DroppedBackward)
		}
		if g.ClippedDeps != 0 {
			t.Fatalf("%s: whole-trace build clipped %d deps", name, g.ClippedDeps)
		}
	}
}

// TestDeterminism: identical runs produce identical traces.
func TestDeterminism(t *testing.T) {
	tr1, s1 := runWorkload(t, uarch.Baseline(), "625.x264_s", 3000)
	tr2, s2 := runWorkload(t, uarch.Baseline(), "625.x264_s", 3000)
	if s1.Cycles != s2.Cycles {
		t.Fatalf("cycle counts differ: %d vs %d", s1.Cycles, s2.Cycles)
	}
	for i := range tr1.Records {
		if tr1.Records[i].Stamp != tr2.Records[i].Stamp {
			t.Fatalf("stamps differ at %d", i)
		}
	}
}
