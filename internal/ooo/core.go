package ooo

import (
	"fmt"

	"archexplorer/internal/bpred"
	"archexplorer/internal/cache"
	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// Execution latencies (cycles) per operation class, and whether the unit is
// pipelined (occupancy 1) or blocking (occupancy = latency).
type fuSpec struct {
	lat       int64
	pipelined bool
	res       uarch.Resource
	valid     bool
}

// fuTable maps every isa.OpClass to its functional-unit spec. It is a dense
// array — one indexed load per instruction on the issue path, no map
// hashing — and init validates it exhaustively: a missing OpClass used to
// decay silently to the zero fuSpec (latency 0, non-pipelined, resource
// ResNone), corrupting timing without any error.
var fuTable = [isa.NumOpClasses]fuSpec{
	isa.OpIntAlu:  {lat: 1, pipelined: true, res: uarch.ResIntALU, valid: true},
	isa.OpBranch:  {lat: 1, pipelined: true, res: uarch.ResIntALU, valid: true},
	isa.OpNop:     {lat: 1, pipelined: true, res: uarch.ResIntALU, valid: true},
	isa.OpIntMult: {lat: 3, pipelined: true, res: uarch.ResIntMultDiv, valid: true},
	isa.OpIntDiv:  {lat: 20, pipelined: false, res: uarch.ResIntMultDiv, valid: true},
	isa.OpFpAlu:   {lat: 2, pipelined: true, res: uarch.ResFpALU, valid: true},
	isa.OpFpMult:  {lat: 4, pipelined: true, res: uarch.ResFpMultDiv, valid: true},
	isa.OpFpDiv:   {lat: 24, pipelined: false, res: uarch.ResFpMultDiv, valid: true},
	// Loads/stores compute the address on an ALU-like AGU slot modelled
	// inside the memory path; their fuTable entry covers the AGU.
	isa.OpLoad:  {lat: 1, pipelined: true, res: uarch.ResIntALU, valid: true},
	isa.OpStore: {lat: 1, pipelined: true, res: uarch.ResIntALU, valid: true},
}

func init() {
	if err := validateFUTable(); err != nil {
		panic(err)
	}
}

// validateFUTable checks that every operation class has a complete
// functional-unit spec, so a class added to the ISA without a table entry
// fails at process start instead of simulating with zero latency.
func validateFUTable() error {
	for c := 0; c < isa.NumOpClasses; c++ {
		spec := &fuTable[c]
		if !spec.valid {
			return fmt.Errorf("ooo: fuTable is missing OpClass %s", isa.OpClass(c))
		}
		if spec.lat < 1 {
			return fmt.Errorf("ooo: fuTable latency %d for %s must be >= 1", spec.lat, isa.OpClass(c))
		}
		if spec.res == uarch.ResNone {
			return fmt.Errorf("ooo: fuTable entry for %s has no resource", isa.OpClass(c))
		}
	}
	return nil
}

// redirectPenalty is the front-end refill delay after a misprediction
// squash, on top of waiting for the branch to resolve.
const redirectPenalty = 3

// Stats aggregates the activity counters the power model consumes.
type Stats struct {
	Cycles                       int64
	Committed                    uint64
	Fetched                      uint64
	FetchGroups                  uint64
	RenameOps                    uint64
	IssuedPerFU                  [uarch.NumResources]uint64
	BranchLookups, Mispredicts   uint64
	ICacheAccesses, ICacheMisses uint64
	DCacheAccesses, DCacheMisses uint64
	L2Accesses, L2Misses         uint64
	StoreForwards                uint64
	RenameStalls                 [uarch.NumResources]uint64 // instructions stalled per resource
}

// IPC returns the committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch lookup.
func (s *Stats) MispredictRate() float64 {
	if s.BranchLookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.BranchLookups)
}

// Core simulates one design point.
type Core struct {
	cfg  uarch.Config
	pred *bpred.Predictor
	hier *cache.Hierarchy

	// replay substitutes a batch's shared precomputed branch outcomes for
	// live predictor queries (pred is nil then — see RunBatch); replayNext
	// indexes the next branch of the stream in the replay's bitmap.
	replay     *BranchReplay
	replayNext int

	// Program-order stage trackers.
	fetchBW, decodeBW, renameBW, dispatchBW, commitBW *inorderBW
	issueBW                                           *bwRing

	// Capacity pools. The fetch queue is the one pool with monotone
	// releases and an unobserved pop owner, so it gets the O(1) calendar
	// pool; the rest must replay heap order exactly (see capPool).
	rob, iq, lq, sq *capPool
	intRF, fpRF     *capPool
	fq              *fifoPool

	// Execution units, indexed densely by uarch.Resource (only the four FU
	// classes are populated; a map here would hash on every issue).
	fus   [uarch.NumResources]*unitPool
	ports *unitPool

	// Register scoreboard: when each architectural register's latest value
	// is ready and who produces it.
	intReady, fpReady [isa.NumIntArchRegs]int64
	intProd, fpProd   [isa.NumIntArchRegs]int

	// In-flight store tracking for forwarding: address -> producing store.
	storeBuf *storeTable

	lastF, lastDC, lastR, lastDP, lastC int64

	// Fetch-group state.
	groupLeft    int
	groupF1      int64
	groupF2      int64
	groupLat     int64
	nextFetch    int64    // earliest F1 of the next group
	groupDrain   [2]int64 // F time of the last instruction of the previous two groups
	refillFrom   int      // mispredicted branch seq that gates the next fetch, or -1
	maxGroupSize int
	// pendingRedirectSeq is the mispredicted branch whose resolution will
	// release the stalled front end (-1 when the front end is healthy).
	pendingRedirectSeq int

	// Per-run recording state: the arena the current record's annotations
	// intern into — the batch trace's in Run, the current chunk's in
	// RunStream — and whether this run elides the DEG-only annotations
	// (probe-lite).
	arena *pipetrace.Arena
	lite  bool

	stats Stats
}

type storeEntry struct {
	seq    int
	pReady int64 // when the store's data is available for forwarding
	commit int64 // commit cycle (forwarding window end)
}

// New builds a core for the given configuration.
func New(cfg uarch.Config) (*Core, error) {
	pred, err := bpred.New(predConfig(cfg))
	if err != nil {
		return nil, err
	}
	return newCore(cfg, pred)
}

// predConfig projects the front-end predictor parameters out of a design
// point. Configs that agree on it share identical prediction behaviour on
// a given stream — the batch path's replay-sharing key.
func predConfig(cfg uarch.Config) bpred.Config {
	return bpred.Config{
		LocalEntries:  cfg.LocalPredictor,
		GlobalEntries: cfg.GlobalPredictor,
		BTBEntries:    cfg.BTBEntries,
		RASEntries:    cfg.RASEntries,
	}
}

// newCore builds the core around an optional live predictor. RunBatch
// passes nil and installs a shared BranchReplay instead; every other path
// supplies the predictor New constructs.
func newCore(cfg uarch.Config, pred *bpred.Predictor) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(
		cache.Config{SizeKB: cfg.ICacheKB, Assoc: cfg.ICacheAssoc},
		cache.Config{SizeKB: cfg.DCacheKB, Assoc: cfg.DCacheAssoc},
	)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:                cfg,
		pred:               pred,
		hier:               hier,
		fetchBW:            newInorderBW(cfg.Width),
		decodeBW:           newInorderBW(cfg.Width),
		renameBW:           newInorderBW(cfg.Width),
		dispatchBW:         newInorderBW(cfg.Width),
		commitBW:           newInorderBW(cfg.Width),
		issueBW:            newBWRing(cfg.Width, issueRingSlots(cfg)),
		rob:                newCapPool(cfg.ROBEntries),
		iq:                 newCapPool(cfg.IQEntries),
		lq:                 newCapPool(cfg.LQEntries),
		sq:                 newCapPool(cfg.SQEntries),
		fq:                 newFIFOPool(cfg.FetchQueueUops),
		intRF:              newCapPool(cfg.IntRF - isa.NumIntArchRegs),
		fpRF:               newCapPool(cfg.FpRF - isa.NumFpArchRegs),
		ports:              newUnitPool(cfg.RdWrPorts),
		storeBuf:           newStoreTable(),
		refillFrom:         -1,
		pendingRedirectSeq: -1,
		groupDrain:         [2]int64{-1, -1},
		maxGroupSize:       cfg.FetchBufBytes / 4,
	}
	c.fus[uarch.ResIntALU] = newUnitPool(cfg.IntALU)
	c.fus[uarch.ResIntMultDiv] = newUnitPool(cfg.IntMultDiv)
	c.fus[uarch.ResFpALU] = newUnitPool(cfg.FpALU)
	c.fus[uarch.ResFpMultDiv] = newUnitPool(cfg.FpMultDiv)
	for i := range c.intProd {
		c.intProd[i] = -1
		c.fpProd[i] = -1
	}
	return c, nil
}

// issueRingSlots sizes the issue bandwidth ring from the config's actual
// reorder window instead of a fixed constant. Live issue cycles can spread
// over at most the in-flight window (ROB entries plus fetch-queue
// buffering) times the worst per-instruction wait hop; sizing for the
// typical hop (an L2 round trip, not a full DRAM miss chain) keeps the
// per-run clear cost small, and the rare config/workload that exceeds the
// envelope is caught by the ring's collision check and repaired by an
// exact doubling instead of silently corrupting bandwidth counts.
func issueRingSlots(cfg uarch.Config) int {
	window := cfg.ROBEntries + cfg.FetchQueueUops + 2
	slots := window * 64
	const minSlots, maxSlots = 1 << 12, 1 << 17
	if slots < minSlots {
		return minSlots
	}
	if slots > maxSlots {
		return maxSlots
	}
	return slots
}

// Run simulates the dynamic instruction stream and returns the pipeline
// trace plus activity statistics, recording the full set of DEG
// annotations (resource/FU/port producers, data producers, misprediction
// refill sources).
//
// Run never mutates the stream: workload.CachedTrace shares one memoised
// slice across every concurrent evaluation, so the stream is read-only by
// contract. The returned trace draws its record storage from a process-
// wide pool; callers that finish with it may hand it back via
// (*pipetrace.Trace).Release, and callers that keep it simply never do.
func (c *Core) Run(stream []isa.Inst) (*pipetrace.Trace, *Stats, error) {
	return c.run(stream, false)
}

// RunLite is Run in probe-lite mode: every stage stamp, latency, and Stats
// counter is byte-identical to Run, but the DEG-only metadata — resource/
// FU/port producer annotations, data producers, and misprediction refill
// sources — is elided. Evaluations that never build a dependence graph
// (plain PPA evaluations, baseline explorers) use it to skip the
// annotation interning entirely.
func (c *Core) RunLite(stream []isa.Inst) (*pipetrace.Trace, *Stats, error) {
	return c.run(stream, true)
}

func (c *Core) run(stream []isa.Inst, lite bool) (*pipetrace.Trace, *Stats, error) {
	if len(stream) == 0 {
		return nil, nil, fmt.Errorf("ooo: empty instruction stream")
	}
	tr := pipetrace.GetTrace(len(stream))
	c.arena = &tr.Arena
	c.lite = lite

	for seq := range stream {
		in := &stream[seq]
		tr.Records = pipetrace.AppendReset(tr.Records, seq, in.PC, in.Class)
		rec := &tr.Records[seq]

		c.fetch(in, rec)
		c.decode(rec)
		c.rename(in, rec)
		c.schedule(in, rec)
		c.commit(in, rec)
	}
	c.arena = nil
	c.finalizeStats(len(stream))
	tr.Cycles = c.stats.Cycles
	return tr, &c.stats, nil
}

// finalizeStats fills the end-of-run counters after n committed
// instructions. Cycles are 0-based stamps, so the total is lastC+1.
func (c *Core) finalizeStats(n int) {
	c.stats.Fetched += uint64(n)
	c.stats.Committed += uint64(n)
	c.stats.Cycles = c.lastC + 1
	c.stats.ICacheAccesses = c.hier.L1I.Accesses
	c.stats.ICacheMisses = c.hier.L1I.Misses
	c.stats.DCacheAccesses = c.hier.L1D.Accesses
	c.stats.DCacheMisses = c.hier.L1D.Misses
	c.stats.L2Accesses = c.hier.L2.Accesses
	c.stats.L2Misses = c.hier.L2.Misses
	if c.pred != nil {
		c.stats.BranchLookups = c.pred.Lookups
		c.stats.Mispredicts = c.pred.Mispredicts
	} else {
		// Replay lanes share one predictor run; its counters were captured
		// when the replay was built and are identical for every lane.
		c.stats.BranchLookups = c.replay.lookups
		c.stats.Mispredicts = c.replay.mispredicts
	}
}

// resolveBranch runs one branch through the live predictor exactly as the
// fetch stage always has — predict, recover on a mispredict, train — and
// reports whether it mispredicted. It is the single definition of the
// prediction outcome: the fetch stage calls it for live cores and
// NewBranchReplay calls it to precompute a batch's shared outcome stream,
// so the two paths cannot drift.
func resolveBranch(p *bpred.Predictor, in *isa.Inst) bool {
	pred := p.Predict(in.PC, in.BrKind)
	mispred := pred.Taken != in.Taken || (in.Taken && pred.Target != in.NextPC())
	if mispred {
		p.Mispredicts++
		p.Recover(pred.Snap, in.BrKind, in.Taken)
	}
	p.Train(in.PC, in.BrKind, in.Taken, in.NextPC(), pred.Snap.Hist())
	return mispred
}

// fetch resolves F1/F2/F for one instruction, handling fetch grouping,
// I-cache latency, branch prediction, and misprediction refills.
func (c *Core) fetch(in *isa.Inst, rec *pipetrace.Record) {
	if c.groupLeft == 0 {
		// Start a new fetch group: one I$ request covering up to
		// FetchBufBytes of straight-line instructions. At most two groups
		// are in flight: a group may not start before the group two back
		// has drained into the fetch queue.
		f1 := max(c.nextFetch, c.groupDrain[0]+1)
		c.groupDrain[0] = c.groupDrain[1]
		lat := int64(c.hier.FetchLatency(in.PC))
		c.groupF1 = f1
		c.groupLat = lat
		c.groupF2 = f1 + lat
		c.groupLeft = c.maxGroupSize
		c.stats.FetchGroups++
		if c.refillFrom >= 0 {
			if !c.lite {
				rec.MispredictFrom = c.refillFrom
			}
			c.refillFrom = -1
		}
	}
	c.groupLeft--

	rec.Stamp[pipetrace.SF1] = c.groupF1
	rec.Stamp[pipetrace.SF2] = c.groupF2
	rec.ICacheLat = c.groupLat

	// F: copy into the fetch queue — fetch width and FQ capacity apply.
	fqAt := c.fq.alloc()
	fAt := max(c.groupF2, fqAt, c.lastF)
	f := c.fetchBW.book(fAt)
	rec.Stamp[pipetrace.SF] = f
	c.lastF = f
	c.groupDrain[1] = f

	groupDone := c.groupLeft == 0

	if in.Class == isa.OpBranch {
		var mispred bool
		if c.replay != nil {
			// Batch lane: prediction outcomes are a pure function of the
			// stream and the predictor config, precomputed once and shared
			// by every lane with this front end (see BranchReplay).
			mispred = c.replay.mispredicted(c.replayNext)
			c.replayNext++
		} else {
			mispred = resolveBranch(c.pred, in)
		}
		if mispred {
			rec.Mispredicted = true
			// The front end stalls until the branch resolves; the
			// resolve time is filled in by schedule().
			c.pendingRedirectSeq = rec.Seq
			groupDone = true
		} else if in.Taken {
			// Correctly predicted taken: the BTB redirects the next
			// fetch group to the target with a one-cycle bubble.
			groupDone = true
		}
	}

	if groupDone {
		c.groupLeft = 0
		c.nextFetch = c.groupF1 + 1
	}
}

// decode resolves DC and frees the fetch-queue entry.
func (c *Core) decode(rec *pipetrace.Record) {
	dc := c.decodeBW.book(max(rec.Stamp[pipetrace.SF]+1, c.lastDC))
	rec.Stamp[pipetrace.SDC] = dc
	c.lastDC = dc
	c.fq.free(dc + 1)
}

// rename resolves R and DP: it performs the scoreboard checks on every
// back-end structure the instruction needs, recording which producer's
// release unblocked each stall (the paper's rename-to-rename edges).
func (c *Core) rename(in *isa.Inst, rec *pipetrace.Record) {
	base := max(rec.Stamp[pipetrace.SDC]+1, c.lastR)
	ready := base

	// Allocate every structure this instruction needs — ROB, IQ, LQ or SQ,
	// and a rename file when it has a destination — directly, one call per
	// pool. Deps are staged in a stack buffer and interned into the trace
	// arena in one shot — no per-record slice allocation.
	var depBuf [4]pipetrace.ResourceDep
	deps := 0
	take := func(t int64, owner int, res uarch.Resource) {
		if t > base && owner >= 0 {
			if !c.lite {
				depBuf[deps] = pipetrace.ResourceDep{Resource: res, Producer: owner}
				deps++
			}
			c.stats.RenameStalls[res]++
		}
		ready = max(ready, t)
	}
	{
		t, owner := c.rob.alloc()
		take(t, owner, uarch.ResROB)
	}
	{
		t, owner := c.iq.alloc()
		take(t, owner, uarch.ResIQ)
	}
	switch in.Class {
	case isa.OpLoad:
		t, owner := c.lq.alloc()
		take(t, owner, uarch.ResLQ)
	case isa.OpStore:
		t, owner := c.sq.alloc()
		take(t, owner, uarch.ResSQ)
	}
	if in.HasDest() {
		if in.Dest.Float {
			t, owner := c.fpRF.alloc()
			take(t, owner, uarch.ResFpRF)
		} else {
			t, owner := c.intRF.alloc()
			take(t, owner, uarch.ResIntRF)
		}
	}
	if deps > 0 {
		rec.ResourceDeps = c.arena.InternDeps(depBuf[:deps])
	}

	r := c.renameBW.book(ready)
	rec.Stamp[pipetrace.SR] = r
	c.lastR = r
	c.stats.RenameOps++

	dp := c.dispatchBW.book(max(r+1, c.lastDP))
	rec.Stamp[pipetrace.SDP] = dp
	c.lastDP = dp
}

// schedule resolves I, M, and P: operand wakeup, FU and memory-port
// contention, cache access, and store-to-load forwarding.
func (c *Core) schedule(in *isa.Inst, rec *pipetrace.Record) {
	dp := rec.Stamp[pipetrace.SDP]
	base := dp + 1

	// Operand readiness (true data dependence), both sources unrolled into
	// a stack buffer.
	var prodBuf [2]int
	prods := 0
	for s := 0; s < 2; s++ {
		src := in.Src1
		if s == 1 {
			src = in.Src2
		}
		if !src.Valid() || src.IsZero() {
			continue
		}
		var t int64
		var prod int
		if src.Float {
			t, prod = c.fpReady[src.Index], c.fpProd[src.Index]
		} else {
			t, prod = c.intReady[src.Index], c.intProd[src.Index]
		}
		if t > base && prod >= 0 && !c.lite {
			prodBuf[prods] = prod
			prods++
		}
		base = max(base, t)
	}
	if prods > 0 {
		rec.DataProducers = c.arena.InternProducers(prodBuf[:prods])
	}

	// Functional unit.
	spec := &fuTable[in.Class]
	occ := int64(1)
	if !spec.pipelined {
		occ = spec.lat
	}
	fu := c.fus[spec.res]
	fuStart, fuUnit, fuPrev := fu.acquire(base, occ, rec.Seq)
	if fuStart > base && fuPrev >= 0 && !c.lite {
		rec.FUProducer = fuPrev
		rec.FURes = spec.res
	}
	issueAt := fuStart

	// Memory port (loads occupy a RdWr port at issue).
	portUnit := -1
	if in.Class == isa.OpLoad {
		pStart, pu, pPrev := c.ports.acquire(issueAt, 1, rec.Seq)
		if pStart > issueAt && pPrev >= 0 && !c.lite {
			rec.PortProducer = pPrev
		}
		issueAt = pStart
		portUnit = pu
	}

	iss := c.issueBW.book(issueAt)
	// Rebook the unit (and port) at the true issue cycle so later
	// consumers' producer annotations stay causally ordered.
	if iss != fuStart {
		fu.adjust(fuUnit, iss, occ)
	}
	if portUnit >= 0 && iss != issueAt {
		c.ports.adjust(portUnit, iss, 1)
	}
	rec.Stamp[pipetrace.SI] = iss
	c.stats.IssuedPerFU[spec.res]++
	c.iq.free(iss+1, rec.Seq)

	// Execution / memory access.
	var done int64
	rec.ExecLat = spec.lat
	switch in.Class {
	case isa.OpLoad:
		m := iss + 1 // address generation
		rec.Stamp[pipetrace.SM] = m
		addr := in.Addr &^ 7
		if se, ok := c.storeBuf.get(addr); ok && se.commit > m {
			// Store-to-load forwarding from the SQ.
			c.stats.StoreForwards++
			done = max(m, se.pReady) + 1
			rec.DCacheLat = done - m
		} else {
			lat := int64(c.hier.DataLatency(in.Addr))
			rec.DCacheLat = lat
			done = m + lat
		}
	case isa.OpStore:
		m := iss + 1
		rec.Stamp[pipetrace.SM] = m
		done = m // address + data staged in the SQ
	default:
		done = iss + spec.lat
	}
	rec.Stamp[pipetrace.SP] = done

	// Publish the destination for dependents.
	if in.HasDest() {
		if in.Dest.Float {
			c.fpReady[in.Dest.Index] = done + 1
			c.fpProd[in.Dest.Index] = rec.Seq
		} else {
			c.intReady[in.Dest.Index] = done + 1
			c.intProd[in.Dest.Index] = rec.Seq
		}
	}

	// Mispredicted branch: the front end resumes after resolution.
	if rec.Mispredicted && c.pendingRedirectSeq == rec.Seq {
		resume := done + redirectPenalty
		if resume > c.nextFetch {
			c.nextFetch = resume
		}
		c.refillFrom = rec.Seq
		c.groupLeft = 0
		c.pendingRedirectSeq = -1
	}
}

// commit resolves C and releases commit-time resources: the ROB entry, the
// LQ entry, the previous mapping of the destination register, and (after
// the drain) the SQ entry.
func (c *Core) commit(in *isa.Inst, rec *pipetrace.Record) {
	cc := c.commitBW.book(max(rec.Stamp[pipetrace.SP]+1, c.lastC))
	rec.Stamp[pipetrace.SC] = cc
	c.lastC = cc

	c.rob.free(cc+1, rec.Seq)
	if in.HasDest() {
		if in.Dest.Float {
			c.fpRF.free(cc+1, rec.Seq)
		} else {
			c.intRF.free(cc+1, rec.Seq)
		}
	}
	switch in.Class {
	case isa.OpLoad:
		c.lq.free(cc+1, rec.Seq)
	case isa.OpStore:
		// The store drains to the D$ after commit through the write
		// buffer, holding its SQ entry for the duration of the access.
		drain := cc + 1 // write buffer has its own D$ write port
		lat := int64(c.hier.DataLatency(in.Addr))
		c.sq.free(drain+lat, rec.Seq)
		c.storeBuf.put(in.Addr&^7, storeEntry{
			seq:    rec.Seq,
			pReady: rec.Stamp[pipetrace.SP],
			commit: drain + lat,
		})
	}
}
