package ooo

import (
	"fmt"

	"archexplorer/internal/bpred"
	"archexplorer/internal/cache"
	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// Execution latencies (cycles) per operation class, and whether the unit is
// pipelined (occupancy 1) or blocking (occupancy = latency).
type fuSpec struct {
	lat       int64
	pipelined bool
	res       uarch.Resource
}

var fuTable = map[isa.OpClass]fuSpec{
	isa.OpIntAlu:  {lat: 1, pipelined: true, res: uarch.ResIntALU},
	isa.OpBranch:  {lat: 1, pipelined: true, res: uarch.ResIntALU},
	isa.OpNop:     {lat: 1, pipelined: true, res: uarch.ResIntALU},
	isa.OpIntMult: {lat: 3, pipelined: true, res: uarch.ResIntMultDiv},
	isa.OpIntDiv:  {lat: 20, pipelined: false, res: uarch.ResIntMultDiv},
	isa.OpFpAlu:   {lat: 2, pipelined: true, res: uarch.ResFpALU},
	isa.OpFpMult:  {lat: 4, pipelined: true, res: uarch.ResFpMultDiv},
	isa.OpFpDiv:   {lat: 24, pipelined: false, res: uarch.ResFpMultDiv},
	// Loads/stores compute the address on an ALU-like AGU slot modelled
	// inside the memory path; their fuTable entry covers the AGU.
	isa.OpLoad:  {lat: 1, pipelined: true, res: uarch.ResIntALU},
	isa.OpStore: {lat: 1, pipelined: true, res: uarch.ResIntALU},
}

// redirectPenalty is the front-end refill delay after a misprediction
// squash, on top of waiting for the branch to resolve.
const redirectPenalty = 3

// Stats aggregates the activity counters the power model consumes.
type Stats struct {
	Cycles                       int64
	Committed                    uint64
	Fetched                      uint64
	FetchGroups                  uint64
	RenameOps                    uint64
	IssuedPerFU                  [uarch.NumResources]uint64
	BranchLookups, Mispredicts   uint64
	ICacheAccesses, ICacheMisses uint64
	DCacheAccesses, DCacheMisses uint64
	L2Accesses, L2Misses         uint64
	StoreForwards                uint64
	RenameStalls                 [uarch.NumResources]uint64 // instructions stalled per resource
}

// IPC returns the committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch lookup.
func (s *Stats) MispredictRate() float64 {
	if s.BranchLookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.BranchLookups)
}

// Core simulates one design point.
type Core struct {
	cfg  uarch.Config
	pred *bpred.Predictor
	hier *cache.Hierarchy

	// Program-order stage trackers.
	fetchBW, decodeBW, renameBW, dispatchBW, commitBW *inorderBW
	issueBW                                           *bwRing

	// Capacity pools.
	rob, iq, lq, sq, fq *capPool
	intRF, fpRF         *capPool

	// Execution units.
	fus   map[uarch.Resource]*unitPool
	ports *unitPool

	// Register scoreboard: when each architectural register's latest value
	// is ready and who produces it.
	intReady, fpReady [isa.NumIntArchRegs]int64
	intProd, fpProd   [isa.NumIntArchRegs]int

	// In-flight store tracking for forwarding: address -> producing store.
	storeBuf map[uint64]storeEntry

	lastF, lastDC, lastR, lastDP, lastC int64

	// Fetch-group state.
	groupLeft    int
	groupF1      int64
	groupF2      int64
	groupLat     int64
	nextFetch    int64    // earliest F1 of the next group
	groupDrain   [2]int64 // F time of the last instruction of the previous two groups
	refillFrom   int      // mispredicted branch seq that gates the next fetch, or -1
	maxGroupSize int
	// pendingRedirectSeq is the mispredicted branch whose resolution will
	// release the stalled front end (-1 when the front end is healthy).
	pendingRedirectSeq int

	stats Stats
}

type storeEntry struct {
	seq    int
	pReady int64 // when the store's data is available for forwarding
	commit int64 // commit cycle (forwarding window end)
}

// New builds a core for the given configuration.
func New(cfg uarch.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := bpred.New(bpred.Config{
		LocalEntries:  cfg.LocalPredictor,
		GlobalEntries: cfg.GlobalPredictor,
		BTBEntries:    cfg.BTBEntries,
		RASEntries:    cfg.RASEntries,
	})
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(
		cache.Config{SizeKB: cfg.ICacheKB, Assoc: cfg.ICacheAssoc},
		cache.Config{SizeKB: cfg.DCacheKB, Assoc: cfg.DCacheAssoc},
	)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:                cfg,
		pred:               pred,
		hier:               hier,
		fetchBW:            newInorderBW(cfg.Width),
		decodeBW:           newInorderBW(cfg.Width),
		renameBW:           newInorderBW(cfg.Width),
		dispatchBW:         newInorderBW(cfg.Width),
		commitBW:           newInorderBW(cfg.Width),
		issueBW:            newBWRing(cfg.Width, 17),
		rob:                newCapPool(cfg.ROBEntries),
		iq:                 newCapPool(cfg.IQEntries),
		lq:                 newCapPool(cfg.LQEntries),
		sq:                 newCapPool(cfg.SQEntries),
		fq:                 newCapPool(cfg.FetchQueueUops),
		intRF:              newCapPool(cfg.IntRF - isa.NumIntArchRegs),
		fpRF:               newCapPool(cfg.FpRF - isa.NumFpArchRegs),
		ports:              newUnitPool(cfg.RdWrPorts),
		storeBuf:           make(map[uint64]storeEntry),
		refillFrom:         -1,
		pendingRedirectSeq: -1,
		groupDrain:         [2]int64{-1, -1},
		fus: map[uarch.Resource]*unitPool{
			uarch.ResIntALU:     newUnitPool(cfg.IntALU),
			uarch.ResIntMultDiv: newUnitPool(cfg.IntMultDiv),
			uarch.ResFpALU:      newUnitPool(cfg.FpALU),
			uarch.ResFpMultDiv:  newUnitPool(cfg.FpMultDiv),
		},
		maxGroupSize: cfg.FetchBufBytes / 4,
	}
	for i := range c.intProd {
		c.intProd[i] = -1
		c.fpProd[i] = -1
	}
	return c, nil
}

// Run simulates the dynamic instruction stream and returns the pipeline
// trace plus activity statistics.
func (c *Core) Run(stream []isa.Inst) (*pipetrace.Trace, *Stats, error) {
	if len(stream) == 0 {
		return nil, nil, fmt.Errorf("ooo: empty instruction stream")
	}
	tr := &pipetrace.Trace{Records: make([]pipetrace.Record, 0, len(stream))}

	for seq := range stream {
		in := &stream[seq]
		rec := pipetrace.NewRecord(seq, in.PC, in.Class)

		c.fetch(in, &rec)
		c.decode(&rec)
		c.rename(in, &rec)
		c.schedule(in, &rec)
		c.commit(in, &rec)

		tr.Records = append(tr.Records, rec)
		c.stats.Fetched++
		c.stats.Committed++
	}
	tr.Cycles = c.lastC + 1 // cycles are 0-based stamps
	c.stats.Cycles = tr.Cycles
	c.stats.ICacheAccesses = c.hier.L1I.Accesses
	c.stats.ICacheMisses = c.hier.L1I.Misses
	c.stats.DCacheAccesses = c.hier.L1D.Accesses
	c.stats.DCacheMisses = c.hier.L1D.Misses
	c.stats.L2Accesses = c.hier.L2.Accesses
	c.stats.L2Misses = c.hier.L2.Misses
	c.stats.BranchLookups = c.pred.Lookups
	c.stats.Mispredicts = c.pred.Mispredicts
	return tr, &c.stats, nil
}

// fetch resolves F1/F2/F for one instruction, handling fetch grouping,
// I-cache latency, branch prediction, and misprediction refills.
func (c *Core) fetch(in *isa.Inst, rec *pipetrace.Record) {
	if c.groupLeft == 0 {
		// Start a new fetch group: one I$ request covering up to
		// FetchBufBytes of straight-line instructions. At most two groups
		// are in flight: a group may not start before the group two back
		// has drained into the fetch queue.
		f1 := maxI64(c.nextFetch, c.groupDrain[0]+1)
		c.groupDrain[0] = c.groupDrain[1]
		lat := int64(c.hier.FetchLatency(in.PC))
		c.groupF1 = f1
		c.groupLat = lat
		c.groupF2 = f1 + lat
		c.groupLeft = c.maxGroupSize
		c.stats.FetchGroups++
		if c.refillFrom >= 0 {
			rec.MispredictFrom = c.refillFrom
			c.refillFrom = -1
		}
	}
	c.groupLeft--

	rec.Stamp[pipetrace.SF1] = c.groupF1
	rec.Stamp[pipetrace.SF2] = c.groupF2
	rec.ICacheLat = c.groupLat

	// F: copy into the fetch queue — fetch width and FQ capacity apply.
	fqAt, _ := c.fq.alloc()
	fAt := maxI64(c.groupF2, fqAt, c.lastF)
	f := c.fetchBW.book(fAt)
	rec.Stamp[pipetrace.SF] = f
	c.lastF = f
	c.groupDrain[1] = f

	groupDone := c.groupLeft == 0

	if in.Class == isa.OpBranch {
		pred := c.pred.Predict(in.PC, in.BrKind)
		mispred := pred.Taken != in.Taken || (in.Taken && pred.Target != in.NextPC())
		if mispred {
			c.pred.Mispredicts++
			rec.Mispredicted = true
			c.pred.Recover(pred.Snap, in.BrKind, in.Taken)
			// The front end stalls until the branch resolves; the
			// resolve time is filled in by schedule().
			c.pendingRedirectSeq = rec.Seq
			groupDone = true
		} else if in.Taken {
			// Correctly predicted taken: the BTB redirects the next
			// fetch group to the target with a one-cycle bubble.
			groupDone = true
		}
		c.pred.Train(in.PC, in.BrKind, in.Taken, in.NextPC(), pred.Snap.Hist())
	}

	if groupDone {
		c.groupLeft = 0
		c.nextFetch = c.groupF1 + 1
	}
}

// decode resolves DC and frees the fetch-queue entry.
func (c *Core) decode(rec *pipetrace.Record) {
	dc := c.decodeBW.book(maxI64(rec.Stamp[pipetrace.SF]+1, c.lastDC))
	rec.Stamp[pipetrace.SDC] = dc
	c.lastDC = dc
	c.fq.free(dc+1, rec.Seq)
}

// rename resolves R and DP: it performs the scoreboard checks on every
// back-end structure the instruction needs, recording which producer's
// release unblocked each stall (the paper's rename-to-rename edges).
func (c *Core) rename(in *isa.Inst, rec *pipetrace.Record) {
	base := maxI64(rec.Stamp[pipetrace.SDC]+1, c.lastR)
	ready := base

	type want struct {
		pool *capPool
		res  uarch.Resource
	}
	wants := []want{{c.rob, uarch.ResROB}, {c.iq, uarch.ResIQ}}
	switch in.Class {
	case isa.OpLoad:
		wants = append(wants, want{c.lq, uarch.ResLQ})
	case isa.OpStore:
		wants = append(wants, want{c.sq, uarch.ResSQ})
	}
	if in.HasDest() {
		if in.Dest.Float {
			wants = append(wants, want{c.fpRF, uarch.ResFpRF})
		} else {
			wants = append(wants, want{c.intRF, uarch.ResIntRF})
		}
	}
	for _, w := range wants {
		t, owner := w.pool.alloc()
		if t > base && owner >= 0 {
			rec.ResourceDeps = append(rec.ResourceDeps, pipetrace.ResourceDep{
				Resource: w.res,
				Producer: owner,
			})
			c.stats.RenameStalls[w.res]++
		}
		ready = maxI64(ready, t)
	}

	r := c.renameBW.book(ready)
	rec.Stamp[pipetrace.SR] = r
	c.lastR = r
	c.stats.RenameOps++

	dp := c.dispatchBW.book(maxI64(r+1, c.lastDP))
	rec.Stamp[pipetrace.SDP] = dp
	c.lastDP = dp
}

// schedule resolves I, M, and P: operand wakeup, FU and memory-port
// contention, cache access, and store-to-load forwarding.
func (c *Core) schedule(in *isa.Inst, rec *pipetrace.Record) {
	dp := rec.Stamp[pipetrace.SDP]
	base := dp + 1

	// Operand readiness (true data dependence).
	for _, src := range []isa.Reg{in.Src1, in.Src2} {
		if !src.Valid() || src.IsZero() {
			continue
		}
		var t int64
		var prod int
		if src.Float {
			t, prod = c.fpReady[src.Index], c.fpProd[src.Index]
		} else {
			t, prod = c.intReady[src.Index], c.intProd[src.Index]
		}
		if t > base && prod >= 0 {
			rec.DataProducers = append(rec.DataProducers, prod)
		}
		base = maxI64(base, t)
	}

	// Functional unit.
	spec := fuTable[in.Class]
	occ := int64(1)
	if !spec.pipelined {
		occ = spec.lat
	}
	fuStart, fuUnit, fuPrev := c.fus[spec.res].acquire(base, occ, rec.Seq)
	if fuStart > base && fuPrev >= 0 {
		rec.FUProducer = fuPrev
		rec.FURes = spec.res
	}
	issueAt := fuStart

	// Memory port (loads occupy a RdWr port at issue).
	portUnit := -1
	if in.Class == isa.OpLoad {
		pStart, pu, pPrev := c.ports.acquire(issueAt, 1, rec.Seq)
		if pStart > issueAt && pPrev >= 0 {
			rec.PortProducer = pPrev
		}
		issueAt = pStart
		portUnit = pu
	}

	iss := c.issueBW.book(issueAt)
	// Rebook the unit (and port) at the true issue cycle so later
	// consumers' producer annotations stay causally ordered.
	if iss != fuStart {
		c.fus[spec.res].adjust(fuUnit, iss, occ)
	}
	if portUnit >= 0 && iss != issueAt {
		c.ports.adjust(portUnit, iss, 1)
	}
	rec.Stamp[pipetrace.SI] = iss
	c.stats.IssuedPerFU[spec.res]++
	c.iq.free(iss+1, rec.Seq)

	// Execution / memory access.
	var done int64
	rec.ExecLat = spec.lat
	switch in.Class {
	case isa.OpLoad:
		m := iss + 1 // address generation
		rec.Stamp[pipetrace.SM] = m
		addr := in.Addr &^ 7
		if se, ok := c.storeBuf[addr]; ok && se.commit > m {
			// Store-to-load forwarding from the SQ.
			c.stats.StoreForwards++
			done = maxI64(m, se.pReady) + 1
			rec.DCacheLat = done - m
		} else {
			lat := int64(c.hier.DataLatency(in.Addr))
			rec.DCacheLat = lat
			done = m + lat
		}
	case isa.OpStore:
		m := iss + 1
		rec.Stamp[pipetrace.SM] = m
		done = m // address + data staged in the SQ
	default:
		done = iss + spec.lat
	}
	rec.Stamp[pipetrace.SP] = done

	// Publish the destination for dependents.
	if in.HasDest() {
		if in.Dest.Float {
			c.fpReady[in.Dest.Index] = done + 1
			c.fpProd[in.Dest.Index] = rec.Seq
		} else {
			c.intReady[in.Dest.Index] = done + 1
			c.intProd[in.Dest.Index] = rec.Seq
		}
	}

	// Mispredicted branch: the front end resumes after resolution.
	if rec.Mispredicted && c.pendingRedirectSeq == rec.Seq {
		resume := done + redirectPenalty
		if resume > c.nextFetch {
			c.nextFetch = resume
		}
		c.refillFrom = rec.Seq
		c.groupLeft = 0
		c.pendingRedirectSeq = -1
	}
}

// commit resolves C and releases commit-time resources: the ROB entry, the
// LQ entry, the previous mapping of the destination register, and (after
// the drain) the SQ entry.
func (c *Core) commit(in *isa.Inst, rec *pipetrace.Record) {
	cc := c.commitBW.book(maxI64(rec.Stamp[pipetrace.SP]+1, c.lastC))
	rec.Stamp[pipetrace.SC] = cc
	c.lastC = cc

	c.rob.free(cc+1, rec.Seq)
	if in.HasDest() {
		if in.Dest.Float {
			c.fpRF.free(cc+1, rec.Seq)
		} else {
			c.intRF.free(cc+1, rec.Seq)
		}
	}
	switch in.Class {
	case isa.OpLoad:
		c.lq.free(cc+1, rec.Seq)
	case isa.OpStore:
		// The store drains to the D$ after commit through the write
		// buffer, holding its SQ entry for the duration of the access.
		drain := cc + 1 // write buffer has its own D$ write port
		lat := int64(c.hier.DataLatency(in.Addr))
		c.sq.free(drain+lat, rec.Seq)
		c.storeBuf[in.Addr&^7] = storeEntry{
			seq:    rec.Seq,
			pReady: rec.Stamp[pipetrace.SP],
			commit: drain + lat,
		}
	}
}

func maxI64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
