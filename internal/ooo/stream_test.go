package ooo

import (
	"fmt"
	"reflect"
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// collectStream runs RunStream and reassembles the chunks into one flat
// record slice (deep-copying annotation slices out of the chunk arenas so
// chunks can be released immediately, as a well-behaved sink would).
func collectStream(t *testing.T, cfg uarch.Config, n, chunkSize int) ([]pipetrace.Record, *Stats) {
	t.Helper()
	stream := testStream(t, n)
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []pipetrace.Record
	var sizes []int
	stats, err := core.RunStream(stream, chunkSize, func(c *pipetrace.Chunk) error {
		sizes = append(sizes, len(c.Records))
		for i := range c.Records {
			r := c.Records[i] // copy
			r.ResourceDeps = append([]pipetrace.ResourceDep(nil), r.ResourceDeps...)
			r.DataProducers = append([]int(nil), r.DataProducers...)
			recs = append(recs, r)
		}
		c.Release()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := chunkSize
	if want <= 0 {
		want = DefaultChunkSize
	}
	for i, s := range sizes {
		if s == 0 {
			t.Fatalf("chunk %d is empty", i)
		}
		if i < len(sizes)-1 && s != want {
			t.Fatalf("non-final chunk %d holds %d records, want %d", i, s, want)
		}
	}
	return recs, stats
}

func testStream(t *testing.T, n int) []isa.Inst {
	t.Helper()
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// TestRunStreamMatchesRun pins the streaming emitter to the batch path:
// same records (stamps and annotations), same Stats, for chunk sizes that
// divide the trace, that don't, that exceed it, and the degenerate 1.
func TestRunStreamMatchesRun(t *testing.T) {
	const n = 3000
	for _, cfg := range []uarch.Config{uarch.Baseline(), tightConfig()} {
		core, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, wantStats, err := core.Run(testStream(t, n))
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkSize := range []int{0, 1, 500, 512, n, n + 999} {
			t.Run(fmt.Sprintf("%s/chunk%d", cfg, chunkSize), func(t *testing.T) {
				recs, stats := collectStream(t, cfg, n, chunkSize)
				if len(recs) != len(tr.Records) {
					t.Fatalf("streamed %d records, batch %d", len(recs), len(tr.Records))
				}
				for i := range recs {
					if !reflect.DeepEqual(recs[i], tr.Records[i]) {
						t.Fatalf("record %d differs:\nstream %+v\nbatch  %+v", i, recs[i], tr.Records[i])
					}
				}
				if *stats != *wantStats {
					t.Fatalf("stats differ:\nstream %+v\nbatch  %+v", *stats, *wantStats)
				}
			})
		}
	}
}

// TestRunStreamSinkError checks that a sink failure aborts the simulation
// and surfaces the sink's error.
func TestRunStreamSinkError(t *testing.T) {
	core, err := New(uarch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("sink exploded")
	calls := 0
	_, err = core.RunStream(testStream(t, 3000), 256, func(c *pipetrace.Chunk) error {
		calls++
		c.Release()
		if calls == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got err %v, want the sink's error", err)
	}
	if calls != 2 {
		t.Fatalf("sink called %d times after erroring on call 2", calls)
	}
}
