package ooo

import (
	"fmt"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
)

// DefaultChunkSize is the record count per streamed chunk when the caller
// passes chunkSize <= 0: large enough that chunk handoff overhead (channel
// sends, pool traffic) is amortized over ~1k instructions, small enough
// that analysis starts long before the simulation ends.
const DefaultChunkSize = 1024

// RunStream is Run in streaming mode: instead of materializing one Trace,
// completed-instruction records are emitted in fixed-size chunks through
// sink, so a downstream analyzer can consume them while the simulation is
// still running and peak memory stays O(chunk + analyzer window) instead
// of O(trace).
//
// The timing model, the per-record annotations, and the returned Stats are
// bit-identical to Run over the same stream (pinned by the stream parity
// test); only the record packaging differs. Records keep their global
// sequence numbers, and each chunk's annotation slices are interned into
// that chunk's own arena, so ownership of a chunk — records plus
// annotation storage — passes wholesale to sink (see pipetrace.Chunk for
// the ownership rules). A sink error stops the simulation immediately and
// surfaces as RunStream's error; the chunk that produced the error is
// still owned by the sink.
//
// Like Run, RunStream never mutates the stream.
func (c *Core) RunStream(stream []isa.Inst, chunkSize int, sink func(*pipetrace.Chunk) error) (*Stats, error) {
	if len(stream) == 0 {
		return nil, fmt.Errorf("ooo: empty instruction stream")
	}
	if sink == nil {
		return nil, fmt.Errorf("ooo: nil chunk sink")
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}

	chunk := pipetrace.GetChunk(chunkSize)
	c.arena = &chunk.Arena
	c.lite = false
	flush := func() error {
		err := sink(chunk)
		chunk = nil
		c.arena = nil
		return err
	}

	for seq := range stream {
		in := &stream[seq]
		chunk.Records = pipetrace.AppendReset(chunk.Records, seq, in.PC, in.Class)
		rec := &chunk.Records[len(chunk.Records)-1]

		c.fetch(in, rec)
		c.decode(rec)
		c.rename(in, rec)
		c.schedule(in, rec)
		c.commit(in, rec)

		if len(chunk.Records) == chunkSize {
			if err := flush(); err != nil {
				return nil, err
			}
			chunk = pipetrace.GetChunk(chunkSize)
			c.arena = &chunk.Arena
		}
	}
	if len(chunk.Records) > 0 {
		if err := flush(); err != nil {
			return nil, err
		}
	} else {
		chunk.Release()
		c.arena = nil
	}
	c.finalizeStats(len(stream))
	return &c.stats, nil
}
