package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"archexplorer/internal/fault"
)

// TestLoadSurvivesTruncationAtEveryByte simulates a crash mid-write at every
// possible byte offset: reading the prefix must either succeed (trailing
// whitespace only) and validate, or return a clean error — never panic and
// never hand back a half-parsed campaign.
func TestLoadSurvivesTruncationAtEveryByte(t *testing.T) {
	_, c := smallCampaign(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if len(data) < 100 {
		t.Fatalf("campaign implausibly small: %d bytes", len(data))
	}

	for i := 0; i <= len(data); i++ {
		back, err := Read(bytes.NewReader(data[:i]))
		if err != nil {
			continue // a clean decode error is the expected outcome
		}
		// The decoder only succeeds when the prefix holds the complete
		// JSON value, so the result must be the full, valid campaign.
		if verr := ValidateCampaign(back); verr != nil {
			t.Fatalf("truncation at %d/%d parsed but did not validate: %v", i, len(data), verr)
		}
		if len(back.Designs) != len(c.Designs) {
			t.Fatalf("truncation at %d/%d parsed a partial campaign: %d designs, want %d",
				i, len(data), len(back.Designs), len(c.Designs))
		}
	}

	// The same property through the file-based path, at a spread of offsets
	// including both edges.
	dir := t.TempDir()
	offsets := []int{0, 1, len(data) / 3, len(data) / 2, len(data) - 1, len(data)}
	for _, i := range offsets {
		path := filepath.Join(dir, "truncated.json")
		if err := os.WriteFile(path, data[:i], 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := Load(path)
		if err != nil {
			continue
		}
		if verr := ValidateCampaign(back); verr != nil {
			t.Fatalf("Load of %d-byte truncation did not validate: %v", i, verr)
		}
	}
}

// TestFailedSaveKeepsPreviousCheckpoint: a save that dies (injected
// permanent persist.write fault) must leave the previous complete file
// untouched and no temp debris behind — the atomic-rename contract.
func TestFailedSaveKeepsPreviousCheckpoint(t *testing.T) {
	_, c := smallCampaign(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	crashed := c
	crashed.SimsSpent += 100
	err := saveWithFaults(&crashed, CheckpointOptions{
		Path: path,
		Faults: fault.MustPlan(fault.Injection{
			Site: fault.SitePersistWrite, Nth: 1, Class: fault.Permanent,
		}),
	})
	if err == nil {
		t.Fatal("injected write fault did not surface")
	}

	back, err := Load(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed save: %v", err)
	}
	if back.SimsSpent != c.SimsSpent {
		t.Fatalf("previous checkpoint clobbered: sims %v, want %v", back.SimsSpent, c.SimsSpent)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "campaign.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("save left debris: %v", names)
	}
}

// TestSaveErrorsCleanly pins the failure modes of the atomic save itself:
// an unwritable destination errors (no panic), and a successful save leaves
// exactly the destination file.
func TestSaveErrorsCleanly(t *testing.T) {
	_, c := smallCampaign(t)
	if err := c.Save(filepath.Join(t.TempDir(), "missing-dir", "c.json")); err == nil {
		t.Fatal("save into a missing directory did not error")
	}
	dir := t.TempDir()
	if err := c.Save(filepath.Join(dir, "c.json")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("successful save left %d entries, want 1", len(entries))
	}
}

// TestTransientSaveFaultRetried: a transient persist.write fault is absorbed
// by the retry policy and the snapshot still lands.
func TestTransientSaveFaultRetried(t *testing.T) {
	_, c := smallCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.json")
	err := saveWithFaults(&c, CheckpointOptions{
		Path:  path,
		Retry: fault.Retry{Max: 2},
		Faults: fault.MustPlan(fault.Injection{
			Site: fault.SitePersistWrite, Nth: 1, Class: fault.Transient,
		}),
	})
	if err != nil {
		t.Fatalf("transient save fault not retried: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}
