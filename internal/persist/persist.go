// Package persist serialises exploration artefacts — configurations,
// evaluations, bottleneck reports, and whole DSE campaigns — to JSON so
// runs can be stored, resumed, diffed, and post-processed outside the
// process (the equivalent of the exploration set the paper's flow keeps on
// disk between the DSE and the final full-Simpoint re-evaluation).
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"archexplorer/internal/deg"
	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
)

// ReportJSON is the stable on-disk form of a bottleneck report.
type ReportJSON struct {
	Cycles       int64              `json:"cycles"`
	Base         float64            `json:"base"`
	Contribution map[string]float64 `json:"contribution"`
	EdgeCounts   map[string]int     `json:"edge_counts"`
}

// FromReport converts a DEG report.
func FromReport(r *deg.Report) ReportJSON {
	out := ReportJSON{
		Cycles:       r.L,
		Base:         r.Base,
		Contribution: map[string]float64{},
		EdgeCounts:   map[string]int{},
	}
	for _, res := range uarch.Resources() {
		if r.Contrib[res] != 0 {
			out.Contribution[res.String()] = r.Contrib[res]
		}
		if r.EdgeCount[res] != 0 {
			out.EdgeCounts[res.String()] = r.EdgeCount[res]
		}
	}
	return out
}

// EvaluationJSON is one explored design.
type EvaluationJSON struct {
	Config  uarch.Config `json:"config"`
	Perf    float64      `json:"perf_ipc"`
	PowerW  float64      `json:"power_w"`
	AreaMM2 float64      `json:"area_mm2"`
	Probe   bool         `json:"probe,omitempty"`
	SimsAt  float64      `json:"sims_at"`
	Report  *ReportJSON  `json:"report,omitempty"`
}

// StageTimesJSON is the stable on-disk form of the evaluator's
// per-stage worker-time totals (nanoseconds, so the round trip is
// integral and exact).
type StageTimesJSON struct {
	TraceNS int64 `json:"trace_ns"`
	SimNS   int64 `json:"sim_ns"`
	PowerNS int64 `json:"power_ns"`
	DEGNS   int64 `json:"deg_ns"`
}

// FromStageTimes converts evaluator stage totals.
func FromStageTimes(st dse.StageTimes) StageTimesJSON {
	return StageTimesJSON{
		TraceNS: st.Trace.Nanoseconds(),
		SimNS:   st.Sim.Nanoseconds(),
		PowerNS: st.Power.Nanoseconds(),
		DEGNS:   st.DEG.Nanoseconds(),
	}
}

// Campaign is a complete DSE run. StageTimes and Journal are optional
// (omitempty) so files written before they existed still load.
type Campaign struct {
	Method    string  `json:"method"`
	Suite     string  `json:"suite"`
	Budget    int     `json:"budget"`
	SimsSpent float64 `json:"sims_spent"`
	// StageTimes records where worker time went (trace/sim/power/DEG)
	// for the run that produced this campaign.
	StageTimes *StageTimesJSON `json:"stage_times,omitempty"`
	// Journal is the path of the JSONL run journal written alongside
	// this campaign, when the run had -journal set.
	Journal string           `json:"journal,omitempty"`
	Designs []EvaluationJSON `json:"designs"`
}

// FromEvaluator captures an evaluator's history after an explorer ran.
func FromEvaluator(method, suite string, budget int, ev *dse.Evaluator) Campaign {
	c := Campaign{Method: method, Suite: suite, Budget: budget, SimsSpent: ev.Sims}
	st := FromStageTimes(ev.StageTotals())
	c.StageTimes = &st
	for _, e := range ev.History {
		ej := EvaluationJSON{
			Config:  e.Config,
			Perf:    e.PPA.Perf,
			PowerW:  e.PPA.Power,
			AreaMM2: e.PPA.Area,
			Probe:   e.Probe,
			SimsAt:  e.SimsAt,
		}
		if e.Report != nil {
			r := FromReport(e.Report)
			ej.Report = &r
		}
		c.Designs = append(c.Designs, ej)
	}
	return c
}

// Points converts the campaign back to PPA points (full evaluations only
// unless probes is true), preserving completion order.
func (c *Campaign) Points(probes bool) []pareto.Point {
	var out []pareto.Point
	for _, d := range c.Designs {
		if d.Probe && !probes {
			continue
		}
		out = append(out, pareto.Point{Perf: d.Perf, Power: d.PowerW, Area: d.AreaMM2})
	}
	return out
}

// Write serialises the campaign as indented JSON.
func (c *Campaign) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Read parses a campaign.
func Read(r io.Reader) (*Campaign, error) {
	var c Campaign
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("persist: decode campaign: %w", err)
	}
	return &c, nil
}

// Save writes the campaign to a file.
func (c *Campaign) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a campaign from a file.
func Load(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ValidateCampaign checks structural invariants after a round trip.
func ValidateCampaign(c *Campaign) error {
	if c.Method == "" {
		return fmt.Errorf("persist: campaign missing method")
	}
	prev := 0.0
	for i, d := range c.Designs {
		if err := d.Config.Validate(); err != nil {
			return fmt.Errorf("persist: design %d: %w", i, err)
		}
		if d.Perf <= 0 || d.PowerW <= 0 || d.AreaMM2 <= 0 {
			return fmt.Errorf("persist: design %d has non-positive PPA", i)
		}
		if d.SimsAt < prev {
			return fmt.Errorf("persist: design %d breaks budget ordering", i)
		}
		prev = d.SimsAt
	}
	return nil
}
