// Package persist serialises exploration artefacts — configurations,
// evaluations, bottleneck reports, and whole DSE campaigns — to JSON so
// runs can be stored, resumed, diffed, and post-processed outside the
// process (the equivalent of the exploration set the paper's flow keeps on
// disk between the DSE and the final full-Simpoint re-evaluation).
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"archexplorer/internal/deg"
	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
)

// CampaignVersion is the on-disk format version this build writes. Older
// files (including pre-versioning ones, which read back as version 0) still
// load; files from a newer build are rejected rather than misread.
const CampaignVersion = 1

// ReportJSON is the stable on-disk form of a bottleneck report.
type ReportJSON struct {
	Cycles       int64              `json:"cycles"`
	Base         float64            `json:"base"`
	Contribution map[string]float64 `json:"contribution"`
	EdgeCounts   map[string]int     `json:"edge_counts"`
}

// FromReport converts a DEG report.
func FromReport(r *deg.Report) ReportJSON {
	out := ReportJSON{
		Cycles:       r.L,
		Base:         r.Base,
		Contribution: map[string]float64{},
		EdgeCounts:   map[string]int{},
	}
	for _, res := range uarch.Resources() {
		if r.Contrib[res] != 0 {
			out.Contribution[res.String()] = r.Contrib[res]
		}
		if r.EdgeCount[res] != 0 {
			out.EdgeCounts[res.String()] = r.EdgeCount[res]
		}
	}
	return out
}

// ToReport reconstructs the DEG report a ReportJSON was written from —
// everything the explorer consumes (cycles, base, per-resource contribution
// and edge counts) round-trips exactly; the absolute per-resource delays
// are not persisted and read back as zero.
func (rj *ReportJSON) ToReport() (*deg.Report, error) {
	out := &deg.Report{L: rj.Cycles, Base: rj.Base}
	for name, v := range rj.Contribution {
		res, ok := uarch.ResourceByName(name)
		if !ok {
			return nil, fmt.Errorf("persist: unknown resource %q in report", name)
		}
		out.Contrib[res] = v
	}
	for name, n := range rj.EdgeCounts {
		res, ok := uarch.ResourceByName(name)
		if !ok {
			return nil, fmt.Errorf("persist: unknown resource %q in report", name)
		}
		out.EdgeCount[res] = n
	}
	return out, nil
}

// EvaluationJSON is one explored design. The fields beyond the original
// config/PPA core exist for checkpoint resume: Point pins the design's
// space coordinates (older files lack it and fall back to re-encoding the
// config), PerWorkloadIPC and the failure fields let a resumed run replay
// this evaluation's exact outcome, and Times carries its worker-time split
// so stage totals still account the whole logical run.
type EvaluationJSON struct {
	Config         uarch.Config    `json:"config"`
	Point          []int           `json:"point,omitempty"`
	Perf           float64         `json:"perf_ipc"`
	PowerW         float64         `json:"power_w"`
	AreaMM2        float64         `json:"area_mm2"`
	Probe          bool            `json:"probe,omitempty"`
	SimsAt         float64         `json:"sims_at"`
	PerWorkloadIPC []float64       `json:"per_workload_ipc,omitempty"`
	Report         *ReportJSON     `json:"report,omitempty"`
	Times          *StageTimesJSON `json:"times,omitempty"`
	Failed         bool            `json:"failed,omitempty"`
	FailSite       string          `json:"fail_site,omitempty"`
	FailReason     string          `json:"fail_reason,omitempty"`
}

// StageTimesJSON is the stable on-disk form of the evaluator's
// per-stage worker-time totals (nanoseconds, so the round trip is
// integral and exact).
type StageTimesJSON struct {
	TraceNS int64 `json:"trace_ns"`
	SimNS   int64 `json:"sim_ns"`
	PowerNS int64 `json:"power_ns"`
	DEGNS   int64 `json:"deg_ns"`
	// DEGStreamNS is the fused simulate+analyze stage of streamed
	// evaluations; omitted when zero so buffered-campaign checkpoints stay
	// byte-identical to pre-streaming builds.
	DEGStreamNS int64 `json:"deg_stream_ns,omitempty"`
}

// FromStageTimes converts evaluator stage totals.
func FromStageTimes(st dse.StageTimes) StageTimesJSON {
	return StageTimesJSON{
		TraceNS:     st.Trace.Nanoseconds(),
		SimNS:       st.Sim.Nanoseconds(),
		PowerNS:     st.Power.Nanoseconds(),
		DEGNS:       st.DEG.Nanoseconds(),
		DEGStreamNS: st.DEGStream.Nanoseconds(),
	}
}

// ToStageTimes is the inverse of FromStageTimes.
func (st StageTimesJSON) ToStageTimes() dse.StageTimes {
	return dse.StageTimes{
		Trace:     time.Duration(st.TraceNS),
		Sim:       time.Duration(st.SimNS),
		Power:     time.Duration(st.PowerNS),
		DEG:       time.Duration(st.DEGNS),
		DEGStream: time.Duration(st.DEGStreamNS),
	}
}

// Campaign is a complete DSE run — and, since the checkpoint/resume work,
// also the checkpoint format: Designs carries enough per-evaluation state
// (point, per-workload IPCs, report, failure outcome) to replay the run up
// to the snapshot. Every field beyond the original core is optional
// (omitempty) so files written before it existed still load.
type Campaign struct {
	// Version is the on-disk format version (see CampaignVersion);
	// pre-versioning files read back as 0.
	Version   int     `json:"version,omitempty"`
	Method    string  `json:"method"`
	Suite     string  `json:"suite"`
	Budget    int     `json:"budget"`
	SimsSpent float64 `json:"sims_spent"`
	// Seed and TraceLen pin the run's reproducibility knobs so a resume
	// can refuse a checkpoint written under incompatible settings.
	Seed     int64 `json:"seed,omitempty"`
	TraceLen int   `json:"trace_len,omitempty"`
	// StageTimes records where worker time went (trace/sim/power/DEG)
	// for the run that produced this campaign.
	StageTimes *StageTimesJSON `json:"stage_times,omitempty"`
	// Journal is the path of the JSONL run journal written alongside
	// this campaign, when the run had -journal set.
	Journal string           `json:"journal,omitempty"`
	Designs []EvaluationJSON `json:"designs"`
}

// FromEvaluator captures an evaluator's history after an explorer ran (or
// mid-run, for a checkpoint). The caller stamps Seed; everything else comes
// from the evaluator.
func FromEvaluator(method, suite string, budget int, ev *dse.Evaluator) Campaign {
	c := Campaign{
		Version: CampaignVersion,
		Method:  method, Suite: suite, Budget: budget,
		SimsSpent: ev.Sims, TraceLen: ev.TraceLen,
	}
	st := FromStageTimes(ev.StageTotals())
	c.StageTimes = &st
	for _, e := range ev.History {
		ej := EvaluationJSON{
			Config:     e.Config,
			Point:      append([]int(nil), e.Point[:]...),
			Perf:       e.PPA.Perf,
			PowerW:     e.PPA.Power,
			AreaMM2:    e.PPA.Area,
			Probe:      e.Probe,
			SimsAt:     e.SimsAt,
			Failed:     e.Failed,
			FailSite:   e.FailSite,
			FailReason: e.FailReason,
		}
		if !e.Failed {
			ej.PerWorkloadIPC = append([]float64(nil), e.PerWorkloadIPC...)
			t := FromStageTimes(e.Times)
			ej.Times = &t
		}
		if e.Report != nil {
			r := FromReport(e.Report)
			ej.Report = &r
		}
		c.Designs = append(c.Designs, ej)
	}
	return c
}

// Canonical returns a copy of the campaign with every non-deterministic
// field stripped: the stage-time totals, the per-design worker times, and
// the journal path. Two runs of the same campaign — including one that was
// killed and resumed — serialise canonically to identical bytes.
func (c *Campaign) Canonical() Campaign {
	out := *c
	out.StageTimes = nil
	out.Journal = ""
	out.Designs = append([]EvaluationJSON(nil), c.Designs...)
	for i := range out.Designs {
		out.Designs[i].Times = nil
	}
	return out
}

// Points converts the campaign back to PPA points (full evaluations only
// unless probes is true), preserving completion order.
func (c *Campaign) Points(probes bool) []pareto.Point {
	var out []pareto.Point
	for _, d := range c.Designs {
		if (d.Probe && !probes) || d.Failed {
			continue
		}
		out = append(out, pareto.Point{Perf: d.Perf, Power: d.PowerW, Area: d.AreaMM2})
	}
	return out
}

// Write serialises the campaign as indented JSON.
func (c *Campaign) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Read parses a campaign, rejecting files written by a newer format.
func Read(r io.Reader) (*Campaign, error) {
	var c Campaign
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("persist: decode campaign: %w", err)
	}
	if c.Version > CampaignVersion {
		return nil, fmt.Errorf("persist: campaign format v%d is newer than this build's v%d",
			c.Version, CampaignVersion)
	}
	return &c, nil
}

// Save writes the campaign to a file atomically: the JSON lands in a temp
// file in the destination directory, is synced, and replaces the target
// with a rename — so a crash mid-write (or mid-checkpoint) leaves either
// the previous complete file or the new one, never a truncated hybrid.
func (c *Campaign) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: save %s: %w", path, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: save %s: %w", path, err)
	}
	if err := c.Write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: save %s: %w", path, err)
	}
	return nil
}

// Load reads a campaign from a file.
func Load(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ValidateCampaign checks structural invariants after a round trip.
func ValidateCampaign(c *Campaign) error {
	if c.Method == "" {
		return fmt.Errorf("persist: campaign missing method")
	}
	prev := 0.0
	for i, d := range c.Designs {
		if err := d.Config.Validate(); err != nil {
			return fmt.Errorf("persist: design %d: %w", i, err)
		}
		// A failed (degraded-skip) evaluation legitimately has zero PPA.
		if !d.Failed && (d.Perf <= 0 || d.PowerW <= 0 || d.AreaMM2 <= 0) {
			return fmt.Errorf("persist: design %d has non-positive PPA", i)
		}
		if d.SimsAt < prev {
			return fmt.Errorf("persist: design %d breaks budget ordering", i)
		}
		prev = d.SimsAt
	}
	return nil
}
