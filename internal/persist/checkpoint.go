package persist

import (
	"errors"
	"fmt"
	"os"
	"time"

	"archexplorer/internal/dse"
	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
)

// CheckpointOptions wires crash-safe snapshots and replay-based resume onto
// an evaluator. Method/Suite/Budget/Seed identify the campaign; a resume
// refuses a checkpoint whose identity or reproducibility knobs disagree,
// since replaying someone else's results would silently corrupt the run.
type CheckpointOptions struct {
	// Path is the checkpoint file. Empty disables checkpointing entirely.
	Path string
	// Every throttles snapshots: at most one per interval, except that the
	// first commit after attach always snapshots. 0 snapshots after every
	// committed batch (the test setting; real campaigns throttle).
	Every time.Duration
	// Resume loads Path (when it exists) and primes the evaluator to
	// replay it. A missing file is not an error — the run starts fresh.
	Resume bool

	Method string
	Suite  string
	Budget int
	Seed   int64

	// Faults lets the persistence I/O itself be exercised by the fault
	// plan (sites persist.read / persist.write); nil injects nothing.
	Faults *fault.Plan
	// Retry is the backoff policy for transient persistence faults.
	Retry fault.Retry
	// Obs receives checkpoint/resume journal events and counters.
	Obs *obs.Recorder
}

// AttachCheckpoint optionally restores the evaluator from opts.Path and
// installs its Checkpoint hook. It must run before the explorer starts.
func AttachCheckpoint(ev *dse.Evaluator, opts CheckpointOptions) error {
	if opts.Path == "" {
		return nil
	}
	if opts.Resume {
		if err := resumeFrom(ev, opts); err != nil {
			return err
		}
	}
	var last time.Time
	ev.Checkpoint = func() {
		if !last.IsZero() && opts.Every > 0 && time.Since(last) < opts.Every {
			return
		}
		last = time.Now()
		c := FromEvaluator(opts.Method, opts.Suite, opts.Budget, ev)
		c.Seed = opts.Seed
		if err := saveWithFaults(&c, opts); err != nil {
			// A failed snapshot must not kill the campaign: the previous
			// checkpoint file is still intact (Save is atomic), so the run
			// just loses some resumable progress. Journal the miss.
			opts.Obs.Emit(&obs.FaultEvent{
				Site: fault.SitePersistWrite, Action: "checkpoint-failed",
				Err: err.Error(),
			})
			return
		}
		opts.Obs.Counter(obs.MetricCheckpoints).Inc()
		opts.Obs.Emit(&obs.CheckpointEvent{
			Path: opts.Path, Designs: len(c.Designs), Sims: c.SimsSpent,
		})
	}
	return nil
}

// saveWithFaults writes the snapshot under the fault plan's persist.write
// site, retrying transient injections like any other stage.
func saveWithFaults(c *Campaign, opts CheckpointOptions) error {
	for attempt := 1; ; attempt++ {
		err := opts.Faults.Hit(fault.SitePersistWrite)
		if err == nil {
			err = c.Save(opts.Path)
		}
		if err == nil {
			return nil
		}
		if !fault.IsTransient(err) {
			return err
		}
		backoff := opts.Retry.Backoff(attempt)
		if backoff < 0 {
			return err
		}
		opts.Obs.Counter(obs.MetricRetries).Inc()
		time.Sleep(backoff)
	}
}

// resumeFrom loads the checkpoint and primes the evaluator's replay store.
func resumeFrom(ev *dse.Evaluator, opts CheckpointOptions) error {
	var c *Campaign
	for attempt := 1; ; attempt++ {
		err := opts.Faults.Hit(fault.SitePersistRead)
		if err == nil {
			c, err = Load(opts.Path)
		}
		if err == nil {
			break
		}
		if errors.Is(err, os.ErrNotExist) {
			return nil // no checkpoint yet: a fresh run, not an error
		}
		if !fault.IsTransient(err) {
			return fmt.Errorf("persist: resume from %s: %w", opts.Path, err)
		}
		backoff := opts.Retry.Backoff(attempt)
		if backoff < 0 {
			return fmt.Errorf("persist: resume from %s: %w", opts.Path, err)
		}
		opts.Obs.Counter(obs.MetricRetries).Inc()
		time.Sleep(backoff)
	}
	if err := checkCompatible(c, opts, ev); err != nil {
		return err
	}
	skipped, err := RestoreInto(ev, c)
	if err != nil {
		return fmt.Errorf("persist: resume from %s: %w", opts.Path, err)
	}
	opts.Obs.Emit(&obs.ResumeEvent{
		Path: opts.Path, Designs: len(c.Designs), Skipped: skipped,
		Sims: c.SimsSpent,
	})
	return nil
}

// checkCompatible refuses checkpoints whose campaign identity or
// reproducibility knobs differ from the resuming run's.
func checkCompatible(c *Campaign, opts CheckpointOptions, ev *dse.Evaluator) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("persist: checkpoint %s was written by a different campaign: %s %v, resuming run has %v",
			opts.Path, field, got, want)
	}
	switch {
	case opts.Method != "" && c.Method != opts.Method:
		return mismatch("method", c.Method, opts.Method)
	case opts.Suite != "" && c.Suite != opts.Suite:
		return mismatch("suite", c.Suite, opts.Suite)
	case c.Budget != opts.Budget:
		return mismatch("budget", c.Budget, opts.Budget)
	case c.Seed != opts.Seed:
		return mismatch("seed", c.Seed, opts.Seed)
	case c.TraceLen != 0 && c.TraceLen != ev.TraceLen:
		return mismatch("trace_len", c.TraceLen, ev.TraceLen)
	}
	return nil
}

// RestoreInto validates a loaded campaign and primes the evaluator to
// replay it (see dse's replay-based resume). Returns how many designs in
// the checkpoint were failed skips. The evaluator must be fresh.
func RestoreInto(ev *dse.Evaluator, c *Campaign) (skipped int, err error) {
	if err := ValidateCampaign(c); err != nil {
		return 0, err
	}
	results := make([]dse.RestoredResult, 0, len(c.Designs))
	for i := range c.Designs {
		d := &c.Designs[i]
		r := dse.RestoredResult{
			Probe:      d.Probe,
			Failed:     d.Failed,
			FailSite:   d.FailSite,
			FailReason: d.FailReason,
		}
		r.PPA.Perf, r.PPA.Power, r.PPA.Area = d.Perf, d.PowerW, d.AreaMM2
		r.PerWorkloadIPC = append([]float64(nil), d.PerWorkloadIPC...)
		if len(d.Point) == len(r.Point) {
			for k, v := range d.Point {
				r.Point[k] = v
			}
		} else {
			// Pre-resume files carry no point; re-encode the config.
			pt, err := ev.Space.Encode(d.Config)
			if err != nil {
				return 0, fmt.Errorf("design %d: %w", i, err)
			}
			r.Point = pt
		}
		if d.Report != nil {
			rep, err := d.Report.ToReport()
			if err != nil {
				return 0, fmt.Errorf("design %d: %w", i, err)
			}
			r.Report = rep
		}
		if d.Times != nil {
			r.Times = d.Times.ToStageTimes()
		}
		if d.Failed {
			skipped++
		}
		results = append(results, r)
	}
	return skipped, ev.Restore(results)
}
