package persist

import (
	"bytes"
	"testing"

	"archexplorer/internal/uarch"
)

// fuzzSeedCampaign builds a small but fully-populated campaign covering
// every optional field the reader knows about, including a failed design.
func fuzzSeedCampaign(f *testing.F) []byte {
	space := uarch.StandardSpace()
	pt := space.Nearest(uarch.Baseline())
	cfg := space.Decode(pt)
	c := Campaign{
		Version: CampaignVersion, Method: "ArchExplorer", Suite: "SPEC06",
		Budget: 12, Seed: 7, TraceLen: 1200, SimsSpent: 4, Journal: "run.jsonl",
		StageTimes: &StageTimesJSON{TraceNS: 10, SimNS: 20, PowerNS: 3, DEGNS: 4},
		Designs: []EvaluationJSON{
			{
				Config: cfg, Point: pt[:],
				Perf: 1.2, PowerW: 0.8, AreaMM2: 9.5, SimsAt: 2,
				PerWorkloadIPC: []float64{1.1, 1.3},
				Times:          &StageTimesJSON{TraceNS: 5, SimNS: 10, PowerNS: 1, DEGNS: 2},
				Report: &ReportJSON{
					Cycles: 1000, Base: 0.4,
					Contribution: map[string]float64{"ROB": 0.3, "IQ": 0.1},
					EdgeCounts:   map[string]int{"ROB": 12},
				},
			},
			{
				Config: cfg, SimsAt: 4,
				Failed: true, FailSite: "sim", FailReason: "injected",
			},
		},
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRead drives the campaign reader with arbitrary bytes: it must never
// panic, and anything it accepts must survive a write/read round trip.
// Run the full fuzzer with:
//
//	go test -fuzz=FuzzRead -fuzztime=30s ./internal/persist/
func FuzzRead(f *testing.F) {
	valid := fuzzSeedCampaign(f)
	f.Add(valid)
	// Mid-write crash shapes: truncations of the valid seed.
	for _, frac := range []int{1, 2, 3, 5} {
		f.Add(valid[:len(valid)/frac])
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{nope`))
	f.Add([]byte(`{"version": 99, "method": "x"}`))
	f.Add([]byte(`{"designs": [{"sims_at": -1}]}`))
	f.Add([]byte(`{"stage_times": {"sim_ns": "not-a-number"}}`))
	f.Add([]byte(`[[[[[[[[`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage cleanly is the contract
		}
		_ = ValidateCampaign(c) // must not panic on any accepted input
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatalf("accepted campaign failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted campaign failed: %v\ninput: %q", err, data)
		}
		if len(back.Designs) != len(c.Designs) || back.Version != c.Version {
			t.Fatalf("round trip drifted: %d/%d designs, version %d/%d",
				len(back.Designs), len(c.Designs), back.Version, c.Version)
		}
	})
}
