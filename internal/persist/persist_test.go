package persist

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func smallCampaign(t *testing.T) (*dse.Evaluator, Campaign) {
	t.Helper()
	suite := workload.Suite06()[:2]
	ev := dse.NewEvaluator(uarch.StandardSpace(), suite, 1200)
	ex := dse.NewArchExplorer(1)
	if err := ex.Run(ev, 12); err != nil {
		t.Fatal(err)
	}
	return ev, FromEvaluator(ex.Name(), "SPEC06", 12, ev)
}

func TestRoundTrip(t *testing.T) {
	ev, c := smallCampaign(t)
	if err := ValidateCampaign(&c); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCampaign(back); err != nil {
		t.Fatal(err)
	}
	if len(back.Designs) != len(c.Designs) {
		t.Fatalf("design count %d != %d", len(back.Designs), len(c.Designs))
	}
	if back.SimsSpent != ev.Sims {
		t.Fatalf("sims %v != %v", back.SimsSpent, ev.Sims)
	}
	for i := range c.Designs {
		want := mustJSON(t, c.Designs[i])
		got := mustJSON(t, back.Designs[i])
		if want != got {
			t.Fatalf("design %d drifted:\n%s\nvs\n%s", i, want, got)
		}
	}
}

func TestHypervolumeSurvivesRoundTrip(t *testing.T) {
	ev, c := smallCampaign(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := pareto.Reference{Perf: 0.01, Power: 1.5, Area: 25}
	orig := pareto.Hypervolume(ev.PointsUpTo(1e18), ref)
	loaded := pareto.Hypervolume(back.Points(true), ref)
	if d := orig - loaded; d > 1e-12 || d < -1e-12 {
		t.Fatalf("HV drifted: %v vs %v", orig, loaded)
	}
}

func TestSaveLoad(t *testing.T) {
	_, c := smallCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != c.Method || len(back.Designs) != len(c.Designs) {
		t.Fatal("load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	_, c := smallCampaign(t)
	c.Designs[0].Perf = -1
	if err := ValidateCampaign(&c); err == nil {
		t.Fatal("negative perf not caught")
	}
	_, c = smallCampaign(t)
	c.Method = ""
	if err := ValidateCampaign(&c); err == nil {
		t.Fatal("missing method not caught")
	}
}

func TestStageTimesAndJournalRoundTrip(t *testing.T) {
	ev, c := smallCampaign(t)
	c.Journal = "run.jsonl"
	if c.StageTimes == nil {
		t.Fatal("FromEvaluator did not fill stage times")
	}
	if want := FromStageTimes(ev.StageTotals()); *c.StageTimes != want {
		t.Fatalf("stage times %+v != evaluator totals %+v", *c.StageTimes, want)
	}
	if c.StageTimes.SimNS <= 0 {
		t.Fatal("sim stage time not recorded")
	}

	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.StageTimes == nil || *back.StageTimes != *c.StageTimes {
		t.Fatalf("stage times drifted: %+v vs %+v", back.StageTimes, c.StageTimes)
	}
	if back.Journal != "run.jsonl" {
		t.Fatalf("journal path drifted: %q", back.Journal)
	}
}

// TestOldCampaignsStillLoad pins backwards compatibility: files written
// before StageTimes/Journal existed have neither key and must load and
// validate unchanged.
func TestOldCampaignsStillLoad(t *testing.T) {
	old := `{
  "method": "ArchExplorer",
  "suite": "SPEC06",
  "budget": 12,
  "sims_spent": 12,
  "designs": [
    {
      "config": ` + mustJSON(t, uarch.Baseline()) + `,
      "perf_ipc": 1.2,
      "power_w": 0.8,
      "area_mm2": 9.5,
      "sims_at": 2
    }
  ]
}`
	back, err := Read(bytes.NewBufferString(old))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCampaign(back); err != nil {
		t.Fatal(err)
	}
	if back.StageTimes != nil || back.Journal != "" {
		t.Fatalf("pre-telemetry campaign grew fields: %+v %q", back.StageTimes, back.Journal)
	}
	// And a modern campaign omits the keys when they are absent, so old
	// readers with strict schemas keep working.
	back.Designs = nil
	var buf bytes.Buffer
	if err := back.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("stage_times")) || bytes.Contains(buf.Bytes(), []byte("journal")) {
		t.Fatalf("empty telemetry fields serialized: %s", buf.String())
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReportSerialization(t *testing.T) {
	ev, _ := smallCampaign(t)
	var withReport *dse.Evaluation
	for _, e := range ev.History {
		if e.Report != nil {
			withReport = e
			break
		}
	}
	if withReport == nil {
		t.Skip("no report in campaign")
	}
	rj := FromReport(withReport.Report)
	if rj.Cycles <= 0 {
		t.Fatal("cycles missing")
	}
	if len(rj.Contribution) == 0 {
		t.Fatal("contributions missing")
	}
}
