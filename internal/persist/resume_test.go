package persist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"archexplorer/internal/dse"
	"archexplorer/internal/fault"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

const (
	resumeBudget = 12
	resumeSeed   = int64(1)
	resumeSuite  = "SPEC06"
)

// resumeEvaluator builds the small campaign evaluator the determinism
// matrix runs on (two workloads keep the wall-clock down; parallelism is
// the knob under test).
func resumeEvaluator(parallelism int) *dse.Evaluator {
	ev := dse.NewEvaluator(uarch.StandardSpace(), workload.Suite06()[:2], 1200)
	ev.Parallelism = parallelism
	return ev
}

// canonJSON is the byte-identity yardstick: the campaign minus wall-clock
// noise (stage times) and the journal path.
func canonJSON(t *testing.T, c *Campaign) string {
	t.Helper()
	b, err := json.Marshal(c.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cleanCanonical runs one uninterrupted campaign and returns its canonical
// form — the ground truth every kill-and-resume variant must reproduce.
func cleanCanonical(t *testing.T, mk func(int64) dse.Explorer) string {
	t.Helper()
	ev := resumeEvaluator(1)
	ex := mk(resumeSeed)
	if err := ex.Run(ev, resumeBudget); err != nil {
		t.Fatal(err)
	}
	c := FromEvaluator(ex.Name(), resumeSuite, resumeBudget, ev)
	c.Seed = resumeSeed
	return canonJSON(t, &c)
}

// killAndResume murders one campaign at the killAt-th simulator invocation
// (checkpointing after every committed batch), resumes it from the
// checkpoint with a fresh evaluator and explorer, and returns the resumed
// run's canonical campaign. killFired reports whether the kill actually
// interrupted the run (tiny campaigns can finish before a late kill point).
func killAndResume(t *testing.T, mk func(int64) dse.Explorer, parallelism, killAt int) (canon string, killFired bool) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "checkpoint.json")

	// Phase 1: the doomed run.
	ev := resumeEvaluator(parallelism)
	ev.Faults = fault.MustPlan(fault.Injection{
		Site: fault.SiteSim, Nth: killAt, Class: fault.Kill,
	})
	ex := mk(resumeSeed)
	opts := CheckpointOptions{
		Path: path, Method: ex.Name(), Suite: resumeSuite,
		Budget: resumeBudget, Seed: resumeSeed,
	}
	if err := AttachCheckpoint(ev, opts); err != nil {
		t.Fatal(err)
	}
	err := ex.Run(ev, resumeBudget)
	if err == nil {
		// The campaign finished before the kill point arrived: there is
		// nothing to resume, the completed run IS the result.
		c := FromEvaluator(ex.Name(), resumeSuite, resumeBudget, ev)
		c.Seed = resumeSeed
		return canonJSON(t, &c), false
	}
	if !fault.IsKill(err) {
		t.Fatalf("kill injection surfaced as a non-kill error: %v", err)
	}

	// Phase 2: the survivor. Fresh evaluator, fresh explorer, same seed and
	// flags, no faults — primed by replaying the checkpoint.
	ev2 := resumeEvaluator(parallelism)
	ex2 := mk(resumeSeed)
	opts.Resume = true
	if err := AttachCheckpoint(ev2, opts); err != nil {
		t.Fatal(err)
	}
	if err := ex2.Run(ev2, resumeBudget); err != nil {
		t.Fatal(err)
	}
	c := FromEvaluator(ex2.Name(), resumeSuite, resumeBudget, ev2)
	c.Seed = resumeSeed
	return canonJSON(t, &c), true
}

// TestKillAndResumeByteIdentical is the tentpole pin: for each explorer,
// parallelism setting, and kill point, a campaign killed mid-flight and
// resumed from its last checkpoint produces a byte-identical canonical
// campaign to the uninterrupted run.
func TestKillAndResumeByteIdentical(t *testing.T) {
	explorers := []struct {
		name string
		mk   func(int64) dse.Explorer
	}{
		{"ArchExplorer", func(s int64) dse.Explorer { return dse.NewArchExplorer(s) }},
		{"Random", func(s int64) dse.Explorer { return &dse.RandomSearch{Seed: s} }},
	}
	for _, ex := range explorers {
		want := cleanCanonical(t, ex.mk)
		anyKillFired := false
		for _, parallelism := range []int{1, 4} {
			for _, killAt := range []int{3, 7, 11} {
				name := fmt.Sprintf("%s/p%d/kill%d", ex.name, parallelism, killAt)
				got, fired := killAndResume(t, ex.mk, parallelism, killAt)
				anyKillFired = anyKillFired || fired
				if got != want {
					t.Errorf("%s: resumed campaign drifted from uninterrupted run\n got: %s\nwant: %s",
						name, got, want)
				}
			}
		}
		if !anyKillFired {
			t.Errorf("%s: no kill point ever fired — the matrix tested nothing", ex.name)
		}
	}
}

// TestBaselineExplorersKillAndResume extends one kill point to the learned
// baselines, whose explorers carry model state that must be rebuilt
// correctly by replay.
func TestBaselineExplorersKillAndResume(t *testing.T) {
	explorers := []func(int64) dse.Explorer{
		func(s int64) dse.Explorer { return dse.NewAdaBoostDSE(s) },
		func(s int64) dse.Explorer { return dse.NewBOOMExplorer(s) },
		func(s int64) dse.Explorer { return dse.NewArchRankerDSE(s) },
	}
	for _, mk := range explorers {
		name := mk(resumeSeed).Name()
		want := cleanCanonical(t, mk)
		got, _ := killAndResume(t, mk, 1, 5)
		if got != want {
			t.Errorf("%s: resumed campaign drifted from uninterrupted run\n got: %s\nwant: %s",
				name, got, want)
		}
	}
}

// TestResumeUnderRandomFaultsProperty quantifies the determinism claim:
// for random transient fault plans and a random kill point, the killed-and-
// resumed campaign equals the clean one — transients are absorbed by
// retries, the kill by the checkpoint.
func TestResumeUnderRandomFaultsProperty(t *testing.T) {
	mk := func(s int64) dse.Explorer { return dse.NewArchExplorer(s) }
	want := cleanCanonical(t, mk)
	sites := []string{fault.SiteTrace, fault.SiteSim, fault.SitePower, fault.SiteDEG}

	prop := func(planSeed int64, killRaw uint8) bool {
		killAt := 2 + int(killRaw)%18
		rng := rand.New(rand.NewSource(planSeed))
		inj := make([]fault.Injection, 0, 4)
		for k := 0; k < 3; k++ {
			inj = append(inj, fault.Injection{
				Site:  sites[rng.Intn(len(sites))],
				Nth:   1 + rng.Intn(25),
				Count: 1 + rng.Intn(2),
				Class: fault.Transient,
			})
		}
		inj = append(inj, fault.Injection{Site: fault.SiteSim, Nth: killAt, Class: fault.Kill})

		path := filepath.Join(t.TempDir(), "checkpoint.json")
		ev := resumeEvaluator(1)
		ev.Faults = fault.MustPlan(inj...)
		ev.Retry = fault.Retry{Max: 3}
		ex := mk(resumeSeed)
		opts := CheckpointOptions{
			Path: path, Method: ex.Name(), Suite: resumeSuite,
			Budget: resumeBudget, Seed: resumeSeed,
		}
		if err := AttachCheckpoint(ev, opts); err != nil {
			t.Error(err)
			return false
		}
		err := ex.Run(ev, resumeBudget)
		if err == nil {
			// A transient injection shadowed the kill hit (or the run ended
			// first): the run completed, absorbing every fault. It must
			// still equal the clean run.
			c := FromEvaluator(ex.Name(), resumeSuite, resumeBudget, ev)
			c.Seed = resumeSeed
			return canonJSON(t, &c) == want
		}
		if !fault.IsKill(err) {
			t.Errorf("plan %d: non-kill error surfaced: %v", planSeed, err)
			return false
		}
		ev2 := resumeEvaluator(1)
		ex2 := mk(resumeSeed)
		opts.Resume = true
		if err := AttachCheckpoint(ev2, opts); err != nil {
			t.Error(err)
			return false
		}
		if err := ex2.Run(ev2, resumeBudget); err != nil {
			t.Error(err)
			return false
		}
		c := FromEvaluator(ex2.Name(), resumeSuite, resumeBudget, ev2)
		c.Seed = resumeSeed
		return canonJSON(t, &c) == want
	}
	cfg := &quick.Config{MaxCount: 4, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSkipReplay pins degraded-mode resume: a campaign that skipped a
// permanently-failed design checkpoints the skip, and a resume replays it —
// same Failed placeholder, same budget charge, same downstream trajectory.
func TestSkipReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	mk := func(s int64) dse.Explorer { return dse.NewArchExplorer(s) }

	ev := resumeEvaluator(1)
	ev.Faults = fault.MustPlan(fault.Injection{
		Site: fault.SiteSim, Nth: 5, Class: fault.Permanent,
	})
	ev.SkipFailures = true
	ex := mk(resumeSeed)
	opts := CheckpointOptions{
		Path: path, Method: ex.Name(), Suite: resumeSuite,
		Budget: resumeBudget, Seed: resumeSeed,
	}
	if err := AttachCheckpoint(ev, opts); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(ev, resumeBudget); err != nil {
		t.Fatal(err)
	}
	c := FromEvaluator(ex.Name(), resumeSuite, resumeBudget, ev)
	c.Seed = resumeSeed
	want := canonJSON(t, &c)

	failed := 0
	ck, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ck.Designs {
		if d.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("checkpoint recorded no failed design — the injection never fired")
	}

	// Resume from the final checkpoint: the whole campaign replays,
	// including the skip, with no faults injected this time.
	ev2 := resumeEvaluator(1)
	ex2 := mk(resumeSeed)
	opts.Resume = true
	if err := AttachCheckpoint(ev2, opts); err != nil {
		t.Fatal(err)
	}
	if err := ex2.Run(ev2, resumeBudget); err != nil {
		t.Fatal(err)
	}
	c2 := FromEvaluator(ex2.Name(), resumeSuite, resumeBudget, ev2)
	c2.Seed = resumeSeed
	if got := canonJSON(t, &c2); got != want {
		t.Fatalf("skip replay drifted\n got: %s\nwant: %s", got, want)
	}
	replayFailed := 0
	for _, e := range ev2.History {
		if e.Failed {
			replayFailed++
		}
	}
	if replayFailed != failed {
		t.Fatalf("replayed %d failed designs, checkpoint held %d", replayFailed, failed)
	}
}

// TestResumeRejectsForeignCheckpoint: resuming against a checkpoint whose
// identity (seed here) disagrees must refuse rather than corrupt the run.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	_, c := smallCampaign(t)
	c.Seed = 42
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	ev := resumeEvaluator(1)
	err := AttachCheckpoint(ev, CheckpointOptions{
		Path: path, Resume: true, Method: c.Method, Suite: c.Suite,
		Budget: c.Budget, Seed: 7,
	})
	if err == nil {
		t.Fatal("seed mismatch not rejected")
	}
}

// TestResumeMissingCheckpointIsFresh: -resume with no checkpoint yet is a
// fresh run, not an error (the first crash may predate the first snapshot).
func TestResumeMissingCheckpointIsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.json")
	ev := resumeEvaluator(1)
	err := AttachCheckpoint(ev, CheckpointOptions{
		Path: path, Resume: true, Method: "ArchExplorer", Suite: resumeSuite,
		Budget: resumeBudget, Seed: resumeSeed,
	})
	if err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
	if err := dse.NewArchExplorer(resumeSeed).Run(ev, resumeBudget); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("fresh run never checkpointed: %v", err)
	}
}
