package deg_test

import (
	"fmt"
	"log"

	"archexplorer/internal/deg"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// Example demonstrates the full bottleneck-analysis pipeline: simulate a
// design, build the induced DEG, construct the critical path, and read the
// top bottleneck.
func Example() {
	cfg := uarch.Baseline()
	profile, err := workload.ByName("458.sjeng")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.Trace(profile, 5000)
	if err != nil {
		log.Fatal(err)
	}
	core, err := ooo.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, _, err := core.Run(stream)
	if err != nil {
		log.Fatal(err)
	}

	report, _, path, err := deg.Analyze(trace, deg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The critical path telescopes: its edge delays sum to its span.
	var sum int64
	for _, e := range path.Edges {
		sum += e.Delay
	}
	fmt.Println("telescopes:", sum == path.Span)
	fmt.Println("top bottleneck:", report.Top()[0])
	// Output:
	// telescopes: true
	// top bottleneck: IntRF
}
