package deg

import (
	"sort"
	"testing"

	"archexplorer/internal/uarch"
)

// refSort is the explicit (time, VertexID) comparison topoSort must match.
func refSort(verts []VertexID, time func(VertexID) int64) []VertexID {
	out := append([]VertexID(nil), verts...)
	sort.Slice(out, func(i, j int) bool {
		ti, tj := time(out[i]), time(out[j])
		if ti != tj {
			return ti < tj
		}
		return out[i] < out[j]
	})
	return out
}

// xorshift is a tiny deterministic PRNG for synthetic vertex sets.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// TestTopoSortBeyond24Bits is the regression test for the old packing
// (time<<24 | id, unpacked with &0xffffff): vertex IDs at and past 1<<24
// were truncated, silently corrupting the topological order for traces
// beyond ~2M records. The fixture straddles the 24-bit boundary with
// colliding times so the truncation would both misorder and alias vertices.
func TestTopoSortBeyond24Bits(t *testing.T) {
	const n = 4096
	rng := xorshift(12345)
	verts := make([]VertexID, 0, n)
	times := make(map[VertexID]int64, n)
	for i := 0; i < n; i++ {
		// Half below the 24-bit boundary, half above it.
		v := VertexID(rng.next() % (1 << 23))
		if i%2 == 1 {
			v += 1 << 24
		}
		if _, dup := times[v]; dup {
			continue
		}
		// Few distinct times, so ties force ordering by vertex ID — the
		// axis the truncation corrupted.
		times[v] = int64(rng.next() % 7)
		verts = append(verts, v)
	}
	timeOf := func(v VertexID) int64 { return times[v] }

	want := refSort(verts, timeOf)
	topoSort(verts, timeOf)
	for i := range verts {
		if verts[i] != want[i] {
			t.Fatalf("order diverges at %d: got v=%d t=%d, want v=%d t=%d",
				i, verts[i], timeOf(verts[i]), want[i], timeOf(want[i]))
		}
	}
}

// TestTopoSortTimeOverflowFallback drives stamps past 1<<32, where the
// packed key would overflow; topoSort must detect this and fall back to the
// explicit comparison.
func TestTopoSortTimeOverflowFallback(t *testing.T) {
	const n = 512
	rng := xorshift(99)
	verts := make([]VertexID, 0, n)
	times := make(map[VertexID]int64, n)
	for i := 0; i < n; i++ {
		v := VertexID(rng.next() % (1 << 30))
		if _, dup := times[v]; dup {
			continue
		}
		times[v] = int64(1<<32) + int64(rng.next()%5) // collides above the packing limit
		verts = append(verts, v)
	}
	timeOf := func(v VertexID) int64 { return times[v] }

	want := refSort(verts, timeOf)
	topoSort(verts, timeOf)
	for i := range verts {
		if verts[i] != want[i] {
			t.Fatalf("fallback order diverges at %d: got %d, want %d", i, verts[i], want[i])
		}
	}
}

// TestMergeAbsoluteFieldsWeighted pins the documented Merge invariants: a
// merge of identical reports reproduces the report (not a sum), and for
// equal-length inputs Contrib[r] == DelayByRes[r]/L up to rounding.
func TestMergeAbsoluteFieldsWeighted(t *testing.T) {
	mk := func(l int64, delays map[uarch.Resource]int64) *Report {
		r := &Report{L: l}
		var attributed int64
		for res, d := range delays {
			r.DelayByRes[res] = d
			r.Contrib[res] = float64(d) / float64(l)
			r.EdgeCount[res] = 1
			attributed += d
		}
		r.Base = 1 - float64(attributed)/float64(l)
		return r
	}

	a := mk(1000, map[uarch.Resource]int64{uarch.ResROB: 300, uarch.ResIQ: 100})
	same, err := Merge([]*Report{a, a, a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same.L != a.L {
		t.Fatalf("identical merge L = %d, want %d (sum bug)", same.L, a.L)
	}
	for _, res := range uarch.Resources() {
		if same.DelayByRes[res] != a.DelayByRes[res] {
			t.Fatalf("%s: identical merge delay %d, want %d", res, same.DelayByRes[res], a.DelayByRes[res])
		}
	}

	// Equal-length inputs with unequal weights: the ratio view must agree
	// with the Equation-2 view.
	b := mk(1000, map[uarch.Resource]int64{uarch.ResROB: 500, uarch.ResDCache: 200})
	m, err := Merge([]*Report{a, b}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range uarch.Resources() {
		wantContrib := 0.25*a.Contrib[res] + 0.75*b.Contrib[res]
		if d := m.Contrib[res] - wantContrib; d > 1e-12 || d < -1e-12 {
			t.Fatalf("%s: Contrib %v, want %v", res, m.Contrib[res], wantContrib)
		}
		ratio := float64(m.DelayByRes[res]) / float64(m.L)
		if d := ratio - wantContrib; d > 1e-3 || d < -1e-3 {
			t.Fatalf("%s: DelayByRes/L = %v inconsistent with Contrib %v", res, ratio, wantContrib)
		}
	}
	if m.L != 1000 {
		t.Fatalf("merged L = %d, want 1000", m.L)
	}
}
