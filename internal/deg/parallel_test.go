package deg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// TestParallelWindowedParity pins the tentpole's determinism guarantee for
// the buffered analyzer: AnalyzeWindowed with any worker count returns a
// Report and WindowStats bit-identical to the sequential run, across the
// same window/overlap shapes the stream parity suite uses — including
// overlap larger than window and margins larger than the trace.
func TestParallelWindowedParity(t *testing.T) {
	const n = 4000
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
	cases := []struct {
		window, overlap int
	}{
		{500, 0},
		{100, 300}, // window smaller than overlap
		{n + 100, 0},
		{0, 0},
		{1000, 64},
		{3999, 0},
		{1, 16},
		{2000, 2 * n}, // margin larger than the trace
	}
	for _, tc := range cases {
		for _, workers := range []int{2, 3, 4, 8, 64} {
			t.Run(fmt.Sprintf("w%d_o%d_k%d", tc.window, tc.overlap, workers), func(t *testing.T) {
				seq := WindowOptions{Window: tc.window, Overlap: tc.overlap}
				wantRep, wantSt, err := AnalyzeWindowed(tr, seq)
				if err != nil {
					t.Fatal(err)
				}
				par := seq
				par.Workers = workers
				gotRep, gotSt, err := AnalyzeWindowed(tr, par)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotRep, wantRep) {
					t.Fatalf("parallel report differs:\npar %+v\nseq %+v", gotRep, wantRep)
				}
				if !reflect.DeepEqual(gotSt, wantSt) {
					t.Fatalf("parallel stats differ:\npar %+v\nseq %+v", gotSt, wantSt)
				}
			})
		}
	}
}

// TestParallelStreamParity: the streaming analyzer's parallel mode against
// the sequential batch analyzer — the full three-way agreement (batch seq,
// stream seq, stream par) reduces to this plus the existing stream suite.
func TestParallelStreamParity(t *testing.T) {
	const n = 4000
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
	cases := []struct {
		window, overlap, chunk, workers int
	}{
		{500, 0, 256, 2},
		{500, 0, 1, 4},
		{100, 300, 128, 4}, // window smaller than overlap
		{n + 100, 0, 512, 4},
		{0, 0, 512, 8},
		{1000, 64, 256, 3},
		{1, 16, 64, 4},
		{2000, 2 * n, 1024, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%d_o%d_c%d_k%d", tc.window, tc.overlap, tc.chunk, tc.workers), func(t *testing.T) {
			seq := WindowOptions{Window: tc.window, Overlap: tc.overlap}
			wantRep, wantSt, err := AnalyzeWindowed(tr, seq)
			if err != nil {
				t.Fatal(err)
			}
			par := seq
			par.Workers = tc.workers
			gotRep, gotSt, _ := streamReport(t, tr, par, tc.chunk)
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("parallel stream report differs:\npar %+v\nseq %+v", gotRep, wantRep)
			}
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Fatalf("parallel stream stats differ:\npar %+v\nseq %+v", gotSt, wantSt)
			}
		})
	}
}

// TestParallelPropertyRandom quantifies worker-count invariance over random
// {window, overlap, chunk, workers} draws: every draw's parallel stream
// report must match the sequential batch analyzer bit for bit. Run under
// -race this doubles as the data-race gate on the dispatch/fold machinery.
func TestParallelPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7a11e1))
	traces := []*pipetrace.Trace{
		traceFor(t, uarch.Baseline(), "458.sjeng", 2500),
		traceFor(t, uarch.Baseline(), "429.mcf", 1800),
	}
	iters := 30
	if testing.Short() {
		iters = 10
	}
	for iter := 0; iter < iters; iter++ {
		tr := traces[rng.Intn(len(traces))]
		opts := WindowOptions{
			Window:  rng.Intn(3 * len(tr.Records) / 2), // includes 0 and > trace
			Overlap: rng.Intn(600),                     // includes 0 (default margin)
		}
		chunk := 1 + rng.Intn(2048)
		workers := 2 + rng.Intn(7)
		wantRep, wantSt, err := AnalyzeWindowed(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		par := opts
		par.Workers = workers
		parRep, parSt, err := AnalyzeWindowed(tr, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parRep, wantRep) || !reflect.DeepEqual(parSt, wantSt) {
			t.Fatalf("iter %d (window=%d overlap=%d workers=%d): buffered parallel mismatch",
				iter, opts.Window, opts.Overlap, workers)
		}
		gotRep, gotSt, _ := streamReport(t, tr, par, chunk)
		if !reflect.DeepEqual(gotRep, wantRep) || !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("iter %d (window=%d overlap=%d chunk=%d workers=%d): stream parallel mismatch",
				iter, opts.Window, opts.Overlap, chunk, workers)
		}
	}
}

// TestOverlapCoversTraceMatchesWholeTrace pins the exactly-once attribution
// property behind the overlap >= window corner (the "duplicate stitch"
// risk): when the margin covers the whole trace, every window builds the
// same full graph and finds the same global critical path, and since the
// windows' [lo, hi) ownership ranges partition the trace, the stitched
// report must equal whole-trace Analyze EXACTLY. Any double attribution of
// an edge whose head lands in two windows' margins would break this.
func TestOverlapCoversTraceMatchesWholeTrace(t *testing.T) {
	const n = 2000
	tr := traceFor(t, uarch.Baseline(), "429.mcf", n)
	whole, _, _, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, window := range []int{250, 500, 1999} {
			rep, st, err := AnalyzeWindowed(tr, WindowOptions{Window: window, Overlap: 2 * n, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, whole) {
				t.Fatalf("window=%d workers=%d overlap=full-trace: stitched report diverges from whole-trace Analyze:\nwindowed %+v\nwhole    %+v",
					window, workers, rep, whole)
			}
			if want := (n + window - 1) / window; st.Windows != want {
				t.Fatalf("window=%d: %d windows, want %d", window, st.Windows, want)
			}
		}
	}
}

// TestParallelStreamMemoryBound asserts the tentpole's degraded memory
// guarantee: with Workers > 1 the analyzer holds at most
// window + 2*overlap + chunk - 1 records in its sliding buffer plus
// InflightCap in-flight window copies of window + 2*overlap records each —
// and the bound stays independent of trace length.
func TestParallelStreamMemoryBound(t *testing.T) {
	const window, chunk, workers = 500, 128, 4
	peaks := make(map[int]int)
	for _, n := range []int{4000, 8000} {
		tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
		opts := WindowOptions{Window: window, Workers: workers}
		overlap, err := opts.effectiveOverlap()
		if err != nil {
			t.Fatal(err)
		}
		sa, err := NewStreamAnalyzer(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := sa.InflightCap(); got != 2*workers {
			t.Fatalf("InflightCap = %d, want %d", got, 2*workers)
		}
		feedTrace(t, sa, tr, chunk)
		bound := window + 2*overlap + chunk - 1 + sa.InflightCap()*(window+2*overlap)
		if peak := sa.PeakBufferedRecords(); peak > bound {
			t.Fatalf("n=%d: peak %d records exceeds parallel bound %d (window=%d overlap=%d chunk=%d inflight=%d)",
				n, peak, bound, window, overlap, chunk, sa.InflightCap())
		}
		if _, _, err := sa.Finish(tr.Cycles); err != nil {
			t.Fatal(err)
		}
		if held := sa.RetainedChunks(); held != 0 {
			t.Fatalf("n=%d: %d chunks leaked past Finish", n, held)
		}
		if live := sa.BufferedRecords(); live != 0 {
			t.Fatalf("n=%d: %d records still counted live past Finish", n, live)
		}
		peaks[n] = bound
	}
	if peaks[4000] != peaks[8000] {
		t.Fatalf("memory bound grew with trace length: %v", peaks)
	}
}

// TestParallelStreamCloseMidStream: aborting a parallel analyzer mid-flight
// stops the pool, releases every chunk reference (its own and the
// workers'), and recycles in-flight tasks; Close stays idempotent.
func TestParallelStreamCloseMidStream(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "401.bzip2", 3000)
	sa, err := NewStreamAnalyzer(WindowOptions{Window: 200, Overlap: 64, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	feedTrace(t, sa, tr, 100)
	sa.Close()
	sa.Close()
	if held := sa.RetainedChunks(); held != 0 {
		t.Fatalf("%d chunks retained past Close", held)
	}
	if live := sa.BufferedRecords(); live != 0 {
		t.Fatalf("%d records counted live past Close", live)
	}
}

// TestParallelQueueWaitHook: the streaming analyzer reports one queue-wait
// sample per dispatched (non-short-circuited) window, from worker
// goroutines, so the hook must tolerate concurrent calls — which is also
// what this pins under -race.
func TestParallelQueueWaitHook(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 4000)
	var mu sync.Mutex
	var waits []time.Duration
	opts := WindowOptions{
		Window:  500,
		Workers: 4,
		OnQueueWait: func(d time.Duration) {
			mu.Lock()
			waits = append(waits, d)
			mu.Unlock()
		},
	}
	wantRep, _, err := AnalyzeWindowed(tr, WindowOptions{Window: 500})
	if err != nil {
		t.Fatal(err)
	}
	gotRep, st, _ := streamReport(t, tr, opts, 256)
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatal("queue-wait hook changed the report")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != st.Windows {
		t.Fatalf("%d queue-wait samples for %d windows", len(waits), st.Windows)
	}
	for _, d := range waits {
		if d < 0 {
			t.Fatalf("negative queue wait %v", d)
		}
	}
}
