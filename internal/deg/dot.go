package deg

import (
	"fmt"
	"io"

	"archexplorer/internal/uarch"
)

// WriteDOT renders the graph in Graphviz DOT format, optionally
// highlighting a critical path in red (the paper's Figure 7/9 style).
// Intended for small traces; graphs beyond a few hundred instructions are
// unreadable and are rejected.
func (g *Graph) WriteDOT(w io.Writer, cp *CriticalPath) error {
	const maxInsts = 512
	if n := len(g.Trace.Records); n > maxInsts {
		return fmt.Errorf("deg: refusing to render %d instructions as DOT (max %d)", n, maxInsts)
	}
	onPath := map[[2]VertexID]bool{}
	if cp != nil {
		for _, e := range cp.Edges {
			onPath[[2]VertexID{e.From, e.To}] = true
		}
	}

	if _, err := fmt.Fprintln(w, "digraph deg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=plaintext, fontsize=10];")

	// Vertices grouped per instruction.
	emitted := map[VertexID]bool{}
	name := func(v VertexID) string {
		return fmt.Sprintf("\"%s(I%d)@%d\"", v.Stage(), v.Seq(), g.time(v))
	}
	for _, e := range g.Edges {
		for _, v := range [2]VertexID{e.From, e.To} {
			if !emitted[v] {
				emitted[v] = true
				fmt.Fprintf(w, "  %s;\n", name(v))
			}
		}
	}
	for _, e := range g.Edges {
		attrs := fmt.Sprintf("label=\"%d\"", e.Delay)
		switch e.Kind {
		case EdgeVirtual:
			attrs += ", style=dashed, color=blue"
		case EdgeResource, EdgeFU:
			attrs += ", color=orange"
		case EdgeMispredict:
			attrs += ", color=purple"
		case EdgeData:
			attrs += ", color=gray"
		}
		if e.Res != uarch.ResNone {
			attrs += fmt.Sprintf(", tooltip=\"%s\"", e.Res)
		}
		if onPath[[2]VertexID{e.From, e.To}] {
			attrs += ", color=red, penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  %s -> %s [%s];\n", name(e.From), name(e.To), attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
