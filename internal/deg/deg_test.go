package deg

import (
	"bytes"
	"strings"
	"testing"

	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func traceFor(t testing.TB, cfg uarch.Config, name string, n int) *pipetrace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	core, err := ooo.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildProducesDAGForwardEdges(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 3000)
	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	for _, e := range g.Edges {
		if e.Delay < 0 {
			t.Fatalf("backward edge %v", e)
		}
		if !orderLess(g.order(e.From), g.order(e.To)) {
			t.Fatalf("edge violates topological key: %v -> %v", e.From, e.To)
		}
		if e.Cost != 0 && e.Kind != EdgeResource && e.Kind != EdgeFU && e.Kind != EdgeMispredict {
			t.Fatalf("non-resource edge has cost: %+v", e)
		}
	}
	t.Logf("graph: %d vertices, %d edges %v", g.NumVertices, g.NumEdges(), g.EdgesByKind)
}

func TestCriticalPathTelescopes(t *testing.T) {
	for _, name := range []string{"458.sjeng", "429.mcf", "444.namd", "462.libquantum"} {
		tr := traceFor(t, uarch.Baseline(), name, 3000)
		g, err := Build(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cp, err := g.Construct()
		if err != nil {
			t.Fatal(err)
		}
		// The path's total edge delay must telescope exactly to the time
		// span between its first and last vertex.
		var sum int64
		for _, e := range cp.Edges {
			sum += e.Delay
		}
		if sum != cp.Span {
			t.Fatalf("%s: path delays sum to %d but span is %d", name, sum, cp.Span)
		}
		if cp.Span > tr.Cycles {
			t.Fatalf("%s: span %d exceeds runtime %d", name, cp.Span, tr.Cycles)
		}
		// The chain should cover most of the execution (it is the
		// serialization of the whole microexecution).
		if frac := float64(cp.Span) / float64(tr.Cycles); frac < 0.5 {
			t.Errorf("%s: critical path covers only %.1f%% of runtime", name, 100*frac)
		}
		if cp.Cost <= 0 {
			t.Errorf("%s: nonpositive path cost", name)
		}
	}
}

func TestReportContributionsNormalized(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 4000)
	rep, _, _, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Base
	for _, c := range rep.Contrib {
		if c < 0 || c > 1 {
			t.Fatalf("contribution out of range: %v", c)
		}
		total += c
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("contributions + base = %v, want 1", total)
	}
	t.Logf("\n%s", rep)
}

func TestDPMatchesBruteForceOnSmallGraph(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "456.hmmer", 40)
	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.Construct()
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: longest cost path via DFS memoization over the DAG
	// computed with explicit recursion (independent of topological order).
	adj := make(map[VertexID][]Edge)
	verts := map[VertexID]bool{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e)
		verts[e.From] = true
		verts[e.To] = true
	}
	memo := make(map[VertexID]int64)
	var down func(v VertexID) int64
	down = func(v VertexID) int64 {
		if m, ok := memo[v]; ok {
			return m
		}
		var best int64
		for _, e := range adj[v] {
			if c := e.Cost + down(e.To); c > best {
				best = c
			}
		}
		memo[v] = best
		return best
	}
	var want int64
	for v := range verts {
		if c := down(v); c > want {
			want = c
		}
	}
	if cp.Cost != want {
		t.Fatalf("DP cost %d, brute force %d", cp.Cost, want)
	}
}

func TestMergeWeights(t *testing.T) {
	tr1 := traceFor(t, uarch.Baseline(), "458.sjeng", 2000)
	tr2 := traceFor(t, uarch.Baseline(), "444.namd", 2000)
	r1, _, _, err := Analyze(tr1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _, err := Analyze(tr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge([]*Report{r1, r2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range uarch.Resources() {
		avg := (r1.Contrib[res] + r2.Contrib[res]) / 2
		if diff := m.Contrib[res] - avg; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: merged %v, want %v", res, m.Contrib[res], avg)
		}
	}
	if _, err := Merge(nil, nil); err == nil {
		t.Fatal("expected error for empty merge")
	}
	if _, err := Merge([]*Report{r1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for weight length mismatch")
	}
	if _, err := Merge([]*Report{r1}, []float64{-1}); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestBottleneckShiftsWithConfig(t *testing.T) {
	// Starving the machine of integer registers must raise the IntRF
	// contribution relative to a register-rich configuration.
	poor := uarch.Baseline()
	poor.IntRF = 40
	rich := uarch.Baseline()
	rich.IntRF = 256

	trPoor := traceFor(t, poor, "458.sjeng", 4000)
	trRich := traceFor(t, rich, "458.sjeng", 4000)
	rPoor, _, _, err := Analyze(trPoor, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rRich, _, _, err := Analyze(trRich, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rPoor.Contrib[uarch.ResIntRF] <= rRich.Contrib[uarch.ResIntRF] {
		t.Errorf("IntRF contribution did not drop when registers added: poor=%.3f rich=%.3f",
			rPoor.Contrib[uarch.ResIntRF], rRich.Contrib[uarch.ResIntRF])
	}
	t.Logf("poor:\n%s\nrich:\n%s", rPoor, rRich)
}

func TestWriteDOT(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "456.hmmer", 60)
	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.Construct()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, cp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph deg", "->", "color=red", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
	// Oversized traces are rejected.
	big := traceFor(t, uarch.Baseline(), "456.hmmer", 1000)
	bg, err := Build(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bg.WriteDOT(&buf, nil); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Build(&pipetrace.Trace{}, Options{}); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestVertexRoundTrip(t *testing.T) {
	v := Vertex(123, pipetrace.SI)
	if v.Seq() != 123 || v.Stage() != pipetrace.SI {
		t.Fatalf("round trip: %d %v", v.Seq(), v.Stage())
	}
}

func TestEdgeKindNames(t *testing.T) {
	for k := EdgeKind(0); int(k) < NumEdgeKinds; k++ {
		if k.String() == "" {
			t.Fatalf("edge kind %d unnamed", k)
		}
	}
}
