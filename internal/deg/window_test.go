package deg

// Tests for the streaming windowed analyzer: exact equality with Analyze on
// traces that fit one window, bounded divergence across windows on every
// seeded workload, determinism across pooled-buffer reuse (including
// concurrent use, for -race), context-margin clipping, and the Attribute /
// Merge bugfix sweep.

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func TestAnalyzeWindowedSingleWindowExact(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 1500)
	want, _, _, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, len(tr.Records), len(tr.Records) + 7} {
		got, st, err := AnalyzeWindowed(tr, WindowOptions{Window: w})
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if st.Windows != 1 {
			t.Fatalf("window %d: %d windows, want 1", w, st.Windows)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: report differs from whole-trace Analyze\n got %+v\nwant %+v", w, got, want)
		}
		if st.PeakEdges == 0 || st.PeakVertices == 0 {
			t.Fatalf("window %d: empty peak stats %+v", w, st)
		}
	}
}

// TestAnalyzeWindowedParity pins the acceptance criterion: on every seeded
// workload trace, multi-window analysis reproduces the whole-trace
// per-resource contributions within 1% absolute.
func TestAnalyzeWindowedParity(t *testing.T) {
	const n, window = 4000, 1000
	cfg := uarch.Baseline()
	var worst float64
	var worstAt string
	for _, p := range workload.All() {
		tr := traceFor(t, cfg, p.Name, n)
		whole, _, _, err := Analyze(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		win, st, err := AnalyzeWindowed(tr, WindowOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		if st.Windows < 2 {
			t.Fatalf("%s: %d windows, want a multi-window run", p.Name, st.Windows)
		}
		if st.Dropped() != 0 {
			t.Fatalf("%s: %d defensively dropped edges in windowed build", p.Name, st.Dropped())
		}
		if win.L != whole.L {
			t.Fatalf("%s: windowed L=%d, whole-trace L=%d", p.Name, win.L, whole.L)
		}
		for _, res := range uarch.Resources() {
			diff := win.Contrib[res] - whole.Contrib[res]
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst, worstAt = diff, p.Name+"/"+res.String()
			}
			if diff > 0.01 {
				t.Errorf("%s: %s contribution diverges %.4f (windowed %.4f vs whole %.4f)",
					p.Name, res, diff, win.Contrib[res], whole.Contrib[res])
			}
		}
	}
	t.Logf("worst per-resource divergence: %.5f at %s", worst, worstAt)
}

// TestAnalyzeWindowedDeterministic pins that pooled-buffer reuse cannot leak
// state between runs: repeated and concurrent analyses of the same trace
// return identical reports and stats.
func TestAnalyzeWindowedDeterministic(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "429.mcf", 3000)
	opts := WindowOptions{Window: 700}
	wantRep, wantSt, err := AnalyzeWindowed(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, st, err := AnalyzeWindowed(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, wantRep) || !reflect.DeepEqual(st, wantSt) {
			t.Fatalf("rerun %d differs: %+v vs %+v", i, rep, wantRep)
		}
	}
	// Concurrent runs share the pool; each must still be self-consistent.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	reps := make([]*Report, 8)
	for i := range reps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i], _, errs[i] = AnalyzeWindowed(tr, opts)
		}()
	}
	wg.Wait()
	for i := range reps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(reps[i], wantRep) {
			t.Fatalf("concurrent run %d differs", i)
		}
	}
}

func TestAnalyzeWindowedClipsDistantProducers(t *testing.T) {
	var recs []pipetrace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, mkRecord(i, int64(3*i), isa.OpIntAlu))
	}
	recs[6].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResROB, Producer: 0}}
	tr := mkTrace(recs...)

	// Default overlap covers the whole trace: the long-range edge is seen
	// and attributed exactly once.
	rep, st, err := AnalyzeWindowed(tr, WindowOptions{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ClippedDeps != 0 {
		t.Fatalf("clipped %d deps under the default overlap", st.ClippedDeps)
	}
	if rep.EdgeCount[uarch.ResROB] != 1 {
		t.Fatalf("ROB edge attributed %d times, want 1", rep.EdgeCount[uarch.ResROB])
	}

	// A one-instruction margin cannot reach producer 0 from the window that
	// owns instruction 6; the dependence is clipped and counted, not
	// silently dropped or mis-addressed.
	_, st, err = AnalyzeWindowed(tr, WindowOptions{Window: 2, Overlap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ClippedDeps == 0 {
		t.Fatal("expected the out-of-margin producer to be clipped")
	}
	if st.Dropped() != 0 {
		t.Fatalf("clipping must not count as a defensive drop: %+v", st)
	}
}

func TestAnalyzeWindowedEmptyTrace(t *testing.T) {
	if _, _, err := AnalyzeWindowed(&pipetrace.Trace{}, WindowOptions{Window: 10}); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

// TestAttributeSpanFallback pins the bugfix: a trace without a cycle count
// must attribute against the critical path's span, not against L=1 (which
// reported every resource at thousands of percent).
func TestAttributeSpanFallback(t *testing.T) {
	r0 := mkRecord(0, 0, isa.OpIntAlu)
	r1 := mkRecord(1, 1, isa.OpIntAlu)
	r1.Stamp[pipetrace.SR] = r0.Stamp[pipetrace.SR] + 10
	for s := pipetrace.SDP; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM {
			continue
		}
		r1.Stamp[s] = r1.Stamp[pipetrace.SR] + int64(s-pipetrace.SR)
	}
	r1.ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIntRF, Producer: 0}}
	tr := mkTrace(r0, r1)
	tr.Cycles = 0 // simulate a trace missing its runtime

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.Construct()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Span <= 1 {
		t.Fatalf("fixture path span %d too small to distinguish the fallback", cp.Span)
	}
	rep := Attribute(tr, cp)
	if rep.L != cp.Span {
		t.Fatalf("L=%d, want the path span %d", rep.L, cp.Span)
	}
	for _, c := range rep.Contrib {
		if c > 1 {
			t.Fatalf("contribution %v exceeds 100%% under the span fallback", c)
		}
	}
}

// TestAttributeClampsNegativeBase pins the other half of the bugfix: when
// attributed delay exceeds L, Base is clamped to zero and flagged instead of
// going silently negative.
func TestAttributeClampsNegativeBase(t *testing.T) {
	r0 := mkRecord(0, 0, isa.OpIntAlu)
	r1 := mkRecord(1, 1, isa.OpIntAlu)
	r1.Stamp[pipetrace.SR] = r0.Stamp[pipetrace.SR] + 10
	for s := pipetrace.SDP; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM {
			continue
		}
		r1.Stamp[s] = r1.Stamp[pipetrace.SR] + int64(s-pipetrace.SR)
	}
	r1.ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIntRF, Producer: 0}}
	tr := mkTrace(r0, r1)
	tr.Cycles = 5 // undercounts the 10-cycle stall on the path

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.Construct()
	if err != nil {
		t.Fatal(err)
	}
	rep := Attribute(tr, cp)
	if !rep.BaseClamped {
		t.Fatal("expected BaseClamped for attributed delay > L")
	}
	if rep.Base != 0 {
		t.Fatalf("Base=%v after clamping, want 0", rep.Base)
	}
	if !strings.Contains(rep.String(), "clamped") {
		t.Fatal("String() does not surface the clamp warning")
	}
}

func TestMergeSingleReport(t *testing.T) {
	a := &Report{L: 100, Base: 0.7}
	a.Contrib[uarch.ResROB] = 0.3
	a.DelayByRes[uarch.ResROB] = 30
	a.EdgeCount[uarch.ResROB] = 3
	m, err := Merge([]*Report{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, a) {
		t.Fatalf("single-report merge altered the report:\n got %+v\nwant %+v", m, a)
	}
}

func TestMergeZeroWeightMixedWithPositive(t *testing.T) {
	a := &Report{L: 100, Base: 0.7}
	a.Contrib[uarch.ResROB] = 0.3
	a.DelayByRes[uarch.ResROB] = 30
	a.EdgeCount[uarch.ResROB] = 3
	b := &Report{L: 200, Base: 0.5}
	b.Contrib[uarch.ResIQ] = 0.5
	b.DelayByRes[uarch.ResIQ] = 100
	b.EdgeCount[uarch.ResIQ] = 7

	m, err := Merge([]*Report{a, b}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted fields follow b alone; EdgeCount stays a diagnostic tally
	// over every input.
	if m.L != b.L || m.Base != b.Base ||
		m.Contrib[uarch.ResROB] != 0 || m.Contrib[uarch.ResIQ] != b.Contrib[uarch.ResIQ] ||
		m.DelayByRes[uarch.ResIQ] != b.DelayByRes[uarch.ResIQ] {
		t.Fatalf("zero-weighted report leaked into the merge: %+v", m)
	}
	if m.EdgeCount[uarch.ResROB] != 3 || m.EdgeCount[uarch.ResIQ] != 7 {
		t.Fatalf("EdgeCount should sum over all inputs: %+v", m.EdgeCount)
	}
}

func TestMergeWeightsNormalized(t *testing.T) {
	a := &Report{L: 100, Base: 0.7}
	a.Contrib[uarch.ResROB] = 0.3
	b := &Report{L: 200, Base: 0.5}
	b.Contrib[uarch.ResIQ] = 0.5
	m1, err := Merge([]*Report{a, b}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge([]*Report{a, b}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("weights {2,6} and {1,3} merged differently:\n%+v\n%+v", m1, m2)
	}
}

func TestMergePropagatesBaseClamped(t *testing.T) {
	plain := &Report{L: 100, Base: 0.5}
	clamped := &Report{L: 100, BaseClamped: true}
	m, err := Merge([]*Report{plain, clamped}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !m.BaseClamped {
		t.Fatal("clamp flag lost in merge")
	}
	// A zero-weighted clamped report contributes nothing, including its flag.
	m, err = Merge([]*Report{plain, clamped}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseClamped {
		t.Fatal("zero-weighted report propagated its clamp flag")
	}
}
