package deg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"archexplorer/internal/pipetrace"
)

// StreamAnalyzer consumes the simulator's streamed record chunks
// (ooo.RunStream) and produces the same Report and WindowStats that
// AnalyzeWindowed would produce over the materialized trace — bit for bit
// at equal window/overlap, because both run the identical windowAccum
// stitching core over identical window boundaries. The difference is
// memory: the analyzer retains only the records a still-unanalyzed window
// can reach (one window plus two context margins, plus the partially
// filled chunk), so peak memory is O(window + margin) instead of
// O(trace), and analysis overlaps simulation instead of trailing it.
//
// Lifecycle: NewStreamAnalyzer, then Feed every chunk in commit order,
// then exactly one Finish (which consumes the analyzer). Close aborts an
// analyzer that will not reach Finish, releasing retained chunks and
// pooled buffers; it is idempotent and implied by Finish.
//
// Chunk ownership: Feed takes ownership of its chunk — records and arena
// — per the pipetrace.Chunk contract, and drops its reference once every
// record in it has fallen out of reach of future windows (parallel
// workers pin the chunks behind their window with extra references). The
// caller must not touch a chunk after Feed returns.
//
// Parallel mode (WindowOptions.Workers > 1) dispatches each sealed window
// to a worker pool instead of analyzing it inline: the window's records
// [base, end) are copied into a pooled task, the chunks backing their
// annotation slices are retained, and the sliding buffer evicts exactly as
// in sequential mode. Results fold back strictly in window order, so the
// Report and WindowStats stay bit-identical to the sequential run at any
// worker count. A bounded in-flight cap (InflightCap, 2×workers)
// backpressures dispatch, degrading the sequential memory bound gracefully
// to window + 2·overlap + chunk − 1 + inflight·(window + 2·overlap)
// records.
type StreamAnalyzer struct {
	opts    WindowOptions
	overlap int

	wa windowAccum
	b  *buffers

	// Sliding record buffer: buf holds records [lowest, seen) of the
	// global commit order; view aliases it for the graph builder.
	buf    []pipetrace.Record
	view   pipetrace.Trace
	lowest int // global seq of buf[0]
	seen   int // records fed so far

	// Retained chunks in commit order; the analyzer's reference drops when
	// every one of a chunk's records is below the live buffer (annotation
	// slices in buf alias the chunk arenas, so chunks must outlive their
	// records).
	chunks []retainedChunk

	// nextLo is the global start of the first unanalyzed window.
	nextLo int

	// Trace-level aggregates mirroring Trace.Cycles fallbacks.
	firstF1 int64
	lastC   int64

	// peakBuffered is the high-water mark of live records — sliding buffer
	// plus in-flight task copies (see PeakBufferedRecords for the bound).
	peakBuffered int

	// Parallel mode. The feed goroutine dispatches tasks; workers run the
	// pure phase and fold completed windows back in window order under mu.
	workers  int                 // resolved worker count (1 = sequential)
	started  bool                // pool is running
	tasks    chan *windowTask    // dispatch queue, capacity inflightCap
	inflight chan struct{}       // tokens: dispatch→fold, bounds live tasks
	wg       sync.WaitGroup      // worker goroutines
	taskRecs atomic.Int64        // records held by in-flight task copies
	mu       sync.Mutex          // guards pending, nextFold, wa, werr
	pending  map[int]*windowTask // completed, waiting for in-order fold
	nextFold int                 // next window index to fold
	widx     int                 // next window index to dispatch
	werr     error               // first (lowest-window) worker error
	werrIdx  int

	closed bool
	err    error
}

type retainedChunk struct {
	c          *pipetrace.Chunk
	start, end int // global seq range [start, end) of the chunk's records
}

// windowTask carries one sealed window to a worker: a pooled copy of the
// records [base, end), task-local window bounds, and references on the
// chunks whose arenas the records' annotation slices alias.
type windowTask struct {
	idx      int
	recs     []pipetrace.Record
	lo, hi   int // window proper, as indices into recs
	chunks   []*pipetrace.Chunk
	res      windowResult
	enqueued time.Time
}

var taskPool = sync.Pool{New: func() any { return new(windowTask) }}

func (t *windowTask) recycle() {
	t.recs = t.recs[:0]
	t.chunks = t.chunks[:0]
	t.res = windowResult{}
	taskPool.Put(t)
}

// NewStreamAnalyzer validates the options and builds an analyzer. The
// overlap is resolved eagerly — an explicit overlap smaller than the
// config's reorder window errors here, before any simulation runs.
// Worker goroutines (for Workers > 1) start lazily at the first sealed
// window, so a short trace that short-circuits to whole-trace analysis
// never spawns them.
func NewStreamAnalyzer(opts WindowOptions) (*StreamAnalyzer, error) {
	overlap, err := opts.effectiveOverlap()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	return &StreamAnalyzer{
		opts:    opts,
		overlap: overlap,
		workers: workers,
		b:       bufPool.Get().(*buffers),
	}, nil
}

// Workers returns the resolved worker count (1 = sequential).
func (s *StreamAnalyzer) Workers() int { return s.workers }

// InflightCap returns how many dispatched-but-unfolded windows parallel
// mode allows before Feed backpressures; 0 in sequential mode. Each
// in-flight window holds a copy of up to window + 2·overlap records.
func (s *StreamAnalyzer) InflightCap() int {
	if s.workers <= 1 {
		return 0
	}
	return 2 * s.workers
}

// Feed appends one chunk of committed records and analyzes every window
// that seals — a window is sealed once its forward context margin is fully
// buffered. Feed takes ownership of the chunk. Chunks must arrive in
// commit order with densely increasing sequence numbers.
func (s *StreamAnalyzer) Feed(c *pipetrace.Chunk) error {
	if s.closed || s.err != nil {
		c.Release()
		if s.err != nil {
			return s.err
		}
		return fmt.Errorf("deg: Feed on a finished stream analyzer")
	}
	if len(c.Records) == 0 {
		c.Release()
		return nil
	}
	if got := c.Records[0].Seq; got != s.seen {
		c.Release()
		s.err = fmt.Errorf("deg: stream gap: chunk starts at seq %d, expected %d", got, s.seen)
		return s.err
	}
	if s.seen == 0 {
		s.firstF1 = c.Records[0].Stamp[pipetrace.SF1]
	}
	s.lastC = c.Records[len(c.Records)-1].Stamp[pipetrace.SC]
	s.buf = append(s.buf, c.Records...)
	s.chunks = append(s.chunks, retainedChunk{c: c, start: s.seen, end: s.seen + len(c.Records)})
	s.seen += len(c.Records)
	s.notePeak()
	if s.opts.Window > 0 {
		if err := s.drain(false); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// drain analyzes sealed windows. The boundaries replicate AnalyzeWindowed
// exactly: window [lo, lo+Window) with backward margin max(lo-overlap, 0)
// and forward margin min(hi+overlap, n). A non-final drain only runs
// windows whose forward margin is fully buffered — a window whose margin
// would be clamped by the trace end belongs to the final drain, where
// seen == n and the clamping matches the batch analyzer's.
//
// In parallel mode a sealed window is dispatched to the pool instead of
// analyzed inline; either way the buffer evicts immediately afterwards —
// dispatched windows carry their own record copies.
func (s *StreamAnalyzer) drain(final bool) error {
	for s.nextLo < s.seen {
		lo := s.nextLo
		hi := lo + s.opts.Window
		if hi > s.seen {
			if !final {
				return nil
			}
			hi = s.seen
		}
		end := hi + s.overlap
		if end > s.seen {
			if !final {
				return nil
			}
			end = s.seen
		}
		base := lo - s.overlap
		if base < 0 {
			base = 0
		}
		if s.workers > 1 {
			if err := s.dispatch(base, end, lo, hi); err != nil {
				return err
			}
		} else {
			s.view.Records = s.buf
			err := s.wa.analyzeWindow(&s.view, s.opts.Options,
				base-s.lowest, end-s.lowest, lo-s.lowest, hi-s.lowest, s.b)
			s.view.Records = nil
			if err != nil {
				return err
			}
		}
		s.nextLo += s.opts.Window
		s.evict(s.nextLo - s.overlap)
	}
	return nil
}

// dispatch hands one sealed window to the worker pool: copy its records
// out of the sliding buffer into a pooled task, retain the chunks backing
// their annotation slices, and enqueue. Blocks when InflightCap windows
// are dispatched but not yet folded — the backpressure that bounds memory.
func (s *StreamAnalyzer) dispatch(base, end, lo, hi int) error {
	s.mu.Lock()
	werr := s.werr
	s.mu.Unlock()
	if werr != nil {
		return werr
	}
	if !s.started {
		s.startWorkers()
	}
	s.inflight <- struct{}{} // released when the window folds (or errors)
	t := taskPool.Get().(*windowTask)
	t.idx = s.widx
	s.widx++
	t.recs = append(t.recs[:0], s.buf[base-s.lowest:end-s.lowest]...)
	t.lo, t.hi = lo-base, hi-base
	// The copied records' annotation slices alias the arenas of every chunk
	// overlapping [base, end); pin those until the pure phase is done.
	for _, rc := range s.chunks {
		if rc.end <= base {
			continue
		}
		if rc.start >= end {
			break
		}
		rc.c.Retain()
		t.chunks = append(t.chunks, rc.c)
	}
	s.taskRecs.Add(int64(len(t.recs)))
	s.notePeak()
	if s.opts.OnQueueWait != nil {
		t.enqueued = time.Now()
	}
	s.tasks <- t
	return nil
}

// startWorkers spins up the pool on the first sealed window.
func (s *StreamAnalyzer) startWorkers() {
	s.started = true
	depth := s.InflightCap()
	s.tasks = make(chan *windowTask, depth)
	s.inflight = make(chan struct{}, depth)
	s.pending = make(map[int]*windowTask, depth)
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			b := bufPool.Get().(*buffers)
			defer bufPool.Put(b)
			for t := range s.tasks {
				s.runTask(t, b)
			}
		}()
	}
}

// stopWorkers closes the queue and waits for the pool to finish every
// queued task. Idempotent; only the feed goroutine calls it.
func (s *StreamAnalyzer) stopWorkers() {
	if !s.started {
		return
	}
	close(s.tasks)
	s.wg.Wait()
	s.started = false
}

// runTask executes the pure per-window phase on a worker and folds every
// completed window whose predecessors have all folded — the in-window-
// order accumulation that keeps parallel reports bit-identical. Each fold
// recycles its task and releases one in-flight token; a failed window
// releases its token immediately so dispatch cannot deadlock, and the
// lowest failed window's error is what Finish reports.
func (s *StreamAnalyzer) runTask(t *windowTask, b *buffers) {
	if s.opts.OnQueueWait != nil {
		s.opts.OnQueueWait(time.Since(t.enqueued))
	}
	var view pipetrace.Trace
	view.Records = t.recs
	err := analyzeWindowPure(&view, s.opts.Options, 0, len(t.recs), t.lo, t.hi, b, &t.res)
	// The pure phase is the last read of the records (and of the chunk
	// arenas their annotation slices alias); drop the pins now.
	for _, c := range t.chunks {
		c.Release()
	}
	t.chunks = t.chunks[:0]

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.werr == nil || t.idx < s.werrIdx {
			s.werr, s.werrIdx = err, t.idx
		}
		s.taskRecs.Add(-int64(len(t.recs)))
		t.recycle()
		<-s.inflight
		return
	}
	s.pending[t.idx] = t
	for {
		nt, ok := s.pending[s.nextFold]
		if !ok {
			return
		}
		delete(s.pending, s.nextFold)
		s.nextFold++
		s.wa.fold(&nt.res)
		s.taskRecs.Add(-int64(len(nt.recs)))
		nt.recycle()
		<-s.inflight
	}
}

// notePeak refreshes the buffered-record high-water mark: the sliding
// buffer plus every in-flight task's record copy.
func (s *StreamAnalyzer) notePeak() {
	if n := len(s.buf) + int(s.taskRecs.Load()); n > s.peakBuffered {
		s.peakBuffered = n
	}
}

// evict drops records below the global sequence floor — no future window's
// backward margin reaches them — compacting the buffer and releasing the
// chunks whose records are all gone.
func (s *StreamAnalyzer) evict(floor int) {
	if floor <= s.lowest {
		return
	}
	k := floor - s.lowest
	if k > len(s.buf) {
		k = len(s.buf)
	}
	n := copy(s.buf, s.buf[k:])
	s.buf = s.buf[:n]
	s.lowest += k
	for len(s.chunks) > 0 && s.chunks[0].end <= s.lowest {
		s.chunks[0].c.Release()
		s.chunks = s.chunks[1:]
	}
}

// Finish analyzes the remaining tail windows and returns the stitched
// report, releasing every retained resource. cycles is the simulated
// runtime (ooo.Stats.Cycles); it plays the role AnalyzeWindowed reads from
// Trace.Cycles. Finish consumes the analyzer.
func (s *StreamAnalyzer) Finish(cycles int64) (*Report, *WindowStats, error) {
	if s.closed {
		return nil, nil, fmt.Errorf("deg: Finish on a finished stream analyzer")
	}
	defer s.Close()
	if s.err != nil {
		return nil, nil, s.err
	}
	if s.seen == 0 {
		return nil, nil, fmt.Errorf("deg: empty trace")
	}
	if s.opts.Window <= 0 || s.opts.Window >= s.seen {
		// Whole-trace short-circuit, mirroring AnalyzeWindowed: nothing
		// was sealed (sealing needs Window+overlap buffered records), so
		// the buffer still holds the entire trace and the batch analyzer
		// runs over it unchanged.
		s.view.Records = s.buf
		s.view.Cycles = cycles
		rep, g, _, err := Analyze(&s.view, s.opts.Options)
		s.view.Records = nil
		s.view.Cycles = 0
		if err != nil {
			return nil, nil, err
		}
		st := &WindowStats{
			Windows:         1,
			PeakEdges:       g.NumEdges(),
			PeakVertices:    g.NumVertices,
			DroppedNoStamp:  g.DroppedNoStamp,
			DroppedBackward: g.DroppedBackward,
			ClippedDeps:     g.ClippedDeps,
		}
		return rep, st, nil
	}
	if err := s.drain(true); err != nil {
		s.stopWorkers()
		return nil, nil, err
	}
	// Parallel mode: wait for every dispatched window to run and fold
	// before reading the accumulator; a worker failure surfaces as the
	// lowest failed window's error, matching sequential error order.
	s.stopWorkers()
	s.mu.Lock()
	werr := s.werr
	s.mu.Unlock()
	if werr != nil {
		return nil, nil, werr
	}
	return s.wa.finish(cycles, s.lastC-s.firstF1)
}

// Close stops any workers, releases the retained chunks and pooled
// buffers, and recycles in-flight tasks. Idempotent; implied by Finish.
// Use it directly only to abort an analyzer that will not reach Finish.
func (s *StreamAnalyzer) Close() {
	if s.closed {
		return
	}
	s.closed = true
	// Workers drain the remaining queue (releasing their chunk pins as
	// each task's pure phase ends) before the analyzer's own references go.
	s.stopWorkers()
	for idx, t := range s.pending {
		s.taskRecs.Add(-int64(len(t.recs)))
		delete(s.pending, idx)
		t.recycle()
	}
	for i := range s.chunks {
		s.chunks[i].c.Release()
	}
	s.chunks = nil
	s.buf = nil
	if s.b != nil {
		bufPool.Put(s.b)
		s.b = nil
	}
}

// BufferedRecords returns the records currently held in the sliding
// buffer plus the copies carried by in-flight parallel tasks — the live
// working set.
func (s *StreamAnalyzer) BufferedRecords() int {
	return len(s.buf) + int(s.taskRecs.Load())
}

// PeakBufferedRecords returns the high-water mark of live records.
// Whenever Window > 0 it is bounded by
//
//	window + 2*overlap + chunkSize - 1                        (sequential)
//	window + 2*overlap + chunkSize - 1
//	       + InflightCap * (window + 2*overlap)               (parallel)
//
// — the streaming pipeline's memory guarantee: trace-length-independent
// either way, with parallel mode trading a bounded number of in-flight
// window copies for multicore scaling.
func (s *StreamAnalyzer) PeakBufferedRecords() int { return s.peakBuffered }

// RetainedChunks returns how many chunks the analyzer currently holds.
func (s *StreamAnalyzer) RetainedChunks() int { return len(s.chunks) }
