package deg

import (
	"fmt"

	"archexplorer/internal/pipetrace"
)

// StreamAnalyzer consumes the simulator's streamed record chunks
// (ooo.RunStream) and produces the same Report and WindowStats that
// AnalyzeWindowed would produce over the materialized trace — bit for bit
// at equal window/overlap, because both run the identical windowAccum
// stitching core over identical window boundaries. The difference is
// memory: the analyzer retains only the records a still-unanalyzed window
// can reach (one window plus two context margins, plus the partially
// filled chunk), so peak memory is O(window + margin) instead of
// O(trace), and analysis overlaps simulation instead of trailing it.
//
// Lifecycle: NewStreamAnalyzer, then Feed every chunk in commit order,
// then exactly one Finish (which consumes the analyzer). Close aborts an
// analyzer that will not reach Finish, releasing retained chunks and
// pooled buffers; it is idempotent and implied by Finish.
//
// Chunk ownership: Feed takes ownership of its chunk — records and arena
// — per the pipetrace.Chunk contract, and releases it once every record
// in it has fallen out of reach of future windows. The caller must not
// touch a chunk after Feed returns.
type StreamAnalyzer struct {
	opts    WindowOptions
	overlap int

	wa windowAccum
	b  *buffers

	// Sliding record buffer: buf holds records [lowest, seen) of the
	// global commit order; view aliases it for the graph builder.
	buf    []pipetrace.Record
	view   pipetrace.Trace
	lowest int // global seq of buf[0]
	seen   int // records fed so far

	// Retained chunks in commit order; a chunk is released when every one
	// of its records is below the live buffer (annotation slices in buf
	// alias the chunk arenas, so chunks must outlive their records).
	chunks []retainedChunk

	// nextLo is the global start of the first unanalyzed window.
	nextLo int

	// Trace-level aggregates mirroring Trace.Cycles fallbacks.
	firstF1 int64
	lastC   int64

	// peakBuffered is the high-water mark of buffered records — the
	// observable memory bound (<= window + 2*overlap + chunk - 1).
	peakBuffered int

	closed bool
	err    error
}

type retainedChunk struct {
	c   *pipetrace.Chunk
	end int // global seq just past the chunk's last record
}

// NewStreamAnalyzer validates the options and builds an analyzer. The
// overlap is resolved eagerly — an explicit overlap smaller than the
// config's reorder window errors here, before any simulation runs.
func NewStreamAnalyzer(opts WindowOptions) (*StreamAnalyzer, error) {
	overlap, err := opts.effectiveOverlap()
	if err != nil {
		return nil, err
	}
	return &StreamAnalyzer{
		opts:    opts,
		overlap: overlap,
		b:       bufPool.Get().(*buffers),
	}, nil
}

// Feed appends one chunk of committed records and analyzes every window
// that seals — a window is sealed once its forward context margin is fully
// buffered. Feed takes ownership of the chunk. Chunks must arrive in
// commit order with densely increasing sequence numbers.
func (s *StreamAnalyzer) Feed(c *pipetrace.Chunk) error {
	if s.closed || s.err != nil {
		c.Release()
		if s.err != nil {
			return s.err
		}
		return fmt.Errorf("deg: Feed on a finished stream analyzer")
	}
	if len(c.Records) == 0 {
		c.Release()
		return nil
	}
	if got := c.Records[0].Seq; got != s.seen {
		c.Release()
		s.err = fmt.Errorf("deg: stream gap: chunk starts at seq %d, expected %d", got, s.seen)
		return s.err
	}
	if s.seen == 0 {
		s.firstF1 = c.Records[0].Stamp[pipetrace.SF1]
	}
	s.lastC = c.Records[len(c.Records)-1].Stamp[pipetrace.SC]
	s.buf = append(s.buf, c.Records...)
	s.seen += len(c.Records)
	s.chunks = append(s.chunks, retainedChunk{c: c, end: s.seen})
	if n := len(s.buf); n > s.peakBuffered {
		s.peakBuffered = n
	}
	if s.opts.Window > 0 {
		if err := s.drain(false); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// drain analyzes sealed windows. The boundaries replicate AnalyzeWindowed
// exactly: window [lo, lo+Window) with backward margin max(lo-overlap, 0)
// and forward margin min(hi+overlap, n). A non-final drain only runs
// windows whose forward margin is fully buffered — a window whose margin
// would be clamped by the trace end belongs to the final drain, where
// seen == n and the clamping matches the batch analyzer's.
func (s *StreamAnalyzer) drain(final bool) error {
	for s.nextLo < s.seen {
		lo := s.nextLo
		hi := lo + s.opts.Window
		if hi > s.seen {
			if !final {
				return nil
			}
			hi = s.seen
		}
		end := hi + s.overlap
		if end > s.seen {
			if !final {
				return nil
			}
			end = s.seen
		}
		base := lo - s.overlap
		if base < 0 {
			base = 0
		}
		s.view.Records = s.buf
		err := s.wa.analyzeWindow(&s.view, s.opts.Options,
			base-s.lowest, end-s.lowest, lo-s.lowest, hi-s.lowest, s.b)
		s.view.Records = nil
		if err != nil {
			return err
		}
		s.nextLo += s.opts.Window
		s.evict(s.nextLo - s.overlap)
	}
	return nil
}

// evict drops records below the global sequence floor — no future window's
// backward margin reaches them — compacting the buffer and releasing the
// chunks whose records are all gone.
func (s *StreamAnalyzer) evict(floor int) {
	if floor <= s.lowest {
		return
	}
	k := floor - s.lowest
	if k > len(s.buf) {
		k = len(s.buf)
	}
	n := copy(s.buf, s.buf[k:])
	s.buf = s.buf[:n]
	s.lowest += k
	for len(s.chunks) > 0 && s.chunks[0].end <= s.lowest {
		s.chunks[0].c.Release()
		s.chunks = s.chunks[1:]
	}
}

// Finish analyzes the remaining tail windows and returns the stitched
// report, releasing every retained resource. cycles is the simulated
// runtime (ooo.Stats.Cycles); it plays the role AnalyzeWindowed reads from
// Trace.Cycles. Finish consumes the analyzer.
func (s *StreamAnalyzer) Finish(cycles int64) (*Report, *WindowStats, error) {
	if s.closed {
		return nil, nil, fmt.Errorf("deg: Finish on a finished stream analyzer")
	}
	defer s.Close()
	if s.err != nil {
		return nil, nil, s.err
	}
	if s.seen == 0 {
		return nil, nil, fmt.Errorf("deg: empty trace")
	}
	if s.opts.Window <= 0 || s.opts.Window >= s.seen {
		// Whole-trace short-circuit, mirroring AnalyzeWindowed: nothing
		// was sealed (sealing needs Window+overlap buffered records), so
		// the buffer still holds the entire trace and the batch analyzer
		// runs over it unchanged.
		s.view.Records = s.buf
		s.view.Cycles = cycles
		rep, g, _, err := Analyze(&s.view, s.opts.Options)
		s.view.Records = nil
		s.view.Cycles = 0
		if err != nil {
			return nil, nil, err
		}
		st := &WindowStats{
			Windows:         1,
			PeakEdges:       g.NumEdges(),
			PeakVertices:    g.NumVertices,
			DroppedNoStamp:  g.DroppedNoStamp,
			DroppedBackward: g.DroppedBackward,
			ClippedDeps:     g.ClippedDeps,
		}
		return rep, st, nil
	}
	if err := s.drain(true); err != nil {
		return nil, nil, err
	}
	return s.wa.finish(cycles, s.lastC-s.firstF1)
}

// Close releases the retained chunks and pooled buffers. Idempotent;
// implied by Finish. Use it directly only to abort an analyzer that will
// not reach Finish.
func (s *StreamAnalyzer) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for i := range s.chunks {
		s.chunks[i].c.Release()
	}
	s.chunks = nil
	s.buf = nil
	if s.b != nil {
		bufPool.Put(s.b)
		s.b = nil
	}
}

// BufferedRecords returns the records currently retained — the live
// working set.
func (s *StreamAnalyzer) BufferedRecords() int { return len(s.buf) }

// PeakBufferedRecords returns the high-water mark of retained records:
// bounded by window + 2*overlap + chunkSize - 1 whenever Window > 0, the
// streaming pipeline's memory guarantee.
func (s *StreamAnalyzer) PeakBufferedRecords() int { return s.peakBuffered }

// RetainedChunks returns how many chunks the analyzer currently holds.
func (s *StreamAnalyzer) RetainedChunks() int { return len(s.chunks) }
