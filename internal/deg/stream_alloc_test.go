//go:build !race

package deg

import (
	"testing"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// TestStreamAllocsBounded is the CI allocation gate on the streaming hot
// path: once the pools are warm, a full streamed analysis allocates a
// small, record-count-independent number of times — analyzer construction,
// initial buffer growth to the window+margin working set, and per-window
// map resizes. A per-record allocation regression (the thing the arenas and
// pooled buffers exist to prevent) blows through the budget by two orders
// of magnitude on this trace. Excluded under -race: the race runtime
// inflates allocation counts.
func TestStreamAllocsBounded(t *testing.T) {
	const n, window, chunk = 3000, 500, 256
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
	opts := WindowOptions{Window: window}

	run := func() {
		sa, err := NewStreamAnalyzer(opts)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			c := pipetrace.GetChunk(hi - lo)
			for i := lo; i < hi; i++ {
				r := tr.Records[i]
				r.ResourceDeps = c.InternDeps(r.ResourceDeps)
				r.DataProducers = c.InternProducers(r.DataProducers)
				c.Records = append(c.Records, r)
			}
			if err := sa.Feed(c); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := sa.Finish(tr.Cycles); err != nil {
			t.Fatal(err)
		}
	}

	run() // warm the chunk pool and the analyzer buffer pool

	const budget = 250.0
	if allocs := testing.AllocsPerRun(5, run); allocs > budget {
		t.Fatalf("streamed analysis of %d records allocates %.0f times, budget %.0f",
			n, allocs, budget)
	}
}
