package deg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// DefaultOverlap is the context margin, in instructions, prepended to each
// window when WindowOptions.Overlap is zero and no ReorderWindow is given.
// Dependence annotations point backwards at most as far as the in-flight
// window allows, so the margin must cover the evaluated config's ROB (the
// design space sweeps it up to 256 entries — seq(32, 256, 16) in
// uarch.StandardSpace) plus refill slack. A caller that knows its config
// should set ReorderWindow and let RequiredOverlap derive the margin; this
// constant is only the config-free fallback, sized for ROBs up to
// 256 - RefillSlack instructions.
const DefaultOverlap = 256

// RefillSlack is the margin added on top of the reorder window when
// deriving a window overlap from a config: misprediction-refill sources
// and fetch-group producers can reach slightly past the ROB's reach
// (redirect penalty, fetch-queue drain), so the derived margin is
// ROB + RefillSlack.
const RefillSlack = 64

// RequiredOverlap returns the context margin the windowed analyzer needs
// for a design with the given reorder window (ROB entries): every producer
// annotation a window-interior instruction can name falls within it.
func RequiredOverlap(reorderWindow int) int {
	if reorderWindow <= 0 {
		return DefaultOverlap
	}
	o := reorderWindow + RefillSlack
	if o < DefaultOverlap {
		o = DefaultOverlap
	}
	return o
}

// WindowOptions tunes the windowed analyzer.
type WindowOptions struct {
	Options
	// Window is the number of instructions per analysis window. Zero (or a
	// value >= the trace length) analyzes the whole trace in one pass,
	// byte-identical to Analyze.
	Window int
	// Overlap is the context margin in instructions prepended to each
	// window so cross-boundary edges are seen; the margin's edges are
	// attributed only by the window that owns their head instruction, so
	// each edge is counted exactly once. Zero derives the margin from
	// ReorderWindow (RequiredOverlap), or DefaultOverlap when neither is
	// set.
	//
	// Overlap >= Window is valid, not a validation error: neighbouring
	// windows' margins then overlap each other's interiors, but because
	// attribution is ownership-based — an edge is counted only by the one
	// window whose [lo, hi) range contains its head instruction, and those
	// ranges partition the trace — no edge can be stitched twice no matter
	// how far the margins reach. TestOverlapCoversTraceMatchesWholeTrace
	// pins the limiting case (margin covering the whole trace must
	// reproduce whole-trace Analyze exactly).
	Overlap int
	// ReorderWindow is the evaluated config's ROB capacity in
	// instructions. When set, a zero Overlap derives the margin as
	// RequiredOverlap(ReorderWindow), and an explicit Overlap smaller than
	// ReorderWindow is rejected with an error instead of silently clipping
	// in-flight producers into ClippedDeps. Zero keeps the config-free
	// behavior (DefaultOverlap, no validation) for callers without a
	// config in hand.
	ReorderWindow int
	// Workers sets how many goroutines analyze windows concurrently.
	// Values <= 1 keep the sequential path; higher values fan the pure
	// per-window phase (graph build + DP) out across a pool, folding
	// results back in window order so the Report and WindowStats are
	// bit-identical to the sequential run at any worker count. The count
	// is clamped to the number of windows. Callers that want machine
	// scaling should resolve it themselves (e.g. runtime.GOMAXPROCS);
	// the library default stays sequential.
	Workers int
	// OnQueueWait, when non-nil, observes how long each sealed window
	// waited between becoming analyzable and a worker picking it up.
	// Only the streaming analyzer reports it (in the buffered path every
	// window is ready at once, so the wait measures nothing); hooks must
	// be safe for concurrent calls when Workers > 1.
	OnQueueWait func(time.Duration)
}

// workerCount resolves Workers against the number of windows: sequential
// unless both the option and the window count leave room to fan out.
func (o *WindowOptions) workerCount(windows int) int {
	w := o.Workers
	if w > windows {
		w = windows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// effectiveOverlap resolves the context margin from the options,
// validating a caller-supplied overlap against the config's reorder
// window when one is known.
func (o *WindowOptions) effectiveOverlap() (int, error) {
	if o.Overlap <= 0 {
		return RequiredOverlap(o.ReorderWindow), nil
	}
	if o.ReorderWindow > 0 && o.Overlap < o.ReorderWindow {
		return 0, fmt.Errorf("deg: overlap %d is smaller than the config's reorder window %d; in-flight producers would be clipped (need >= %d, ideally %d)",
			o.Overlap, o.ReorderWindow, o.ReorderWindow, RequiredOverlap(o.ReorderWindow))
	}
	return o.Overlap, nil
}

// WindowStats summarizes a windowed analysis run.
type WindowStats struct {
	// Windows is the number of windows analyzed (1 for whole-trace).
	Windows int
	// PeakEdges and PeakVertices are the largest single-window graph sizes —
	// the working-set measure that replaces the whole-trace graph size.
	PeakEdges    int
	PeakVertices int
	// Defensive-drop totals summed across windows (see Graph).
	DroppedNoStamp  int
	DroppedBackward int
	// ClippedDeps totals dependence annotations whose producer preceded the
	// window's context margin (structural, not corruption).
	ClippedDeps int
}

// Dropped is the total defensively dropped edge count across all windows.
func (s *WindowStats) Dropped() int { return s.DroppedNoStamp + s.DroppedBackward }

// buffers is the reusable scratch state for one windowed analysis: every
// slice the graph build and the critical-path DP would otherwise allocate
// per window. The d/parent tables carry stale values between windows by
// design — constructInto writes every sorted vertex's entry before reading
// it — while present/touched and the dedup maps are cleared each build.
type buffers struct {
	// Graph build.
	edges   []Edge
	anchors []anchor
	targets []anchor
	in      [][]int32
	touched []bool
	vseen   map[vkey]bool
	aseen   map[akey]bool

	// Critical-path construction.
	present []bool
	d       []int64
	parent  []int32
	keys    []uint64
	verts   []VertexID
	rverts  []VertexID
	redges  []Edge
}

var bufPool = sync.Pool{
	New: func() any {
		return &buffers{
			vseen: make(map[vkey]bool),
			aseen: make(map[akey]bool),
		}
	},
}

func (b *buffers) ensureIn(total int) [][]int32 {
	if cap(b.in) < total {
		b.in = append(b.in[:cap(b.in)], make([][]int32, total-cap(b.in))...)
	}
	b.in = b.in[:total]
	for i := range b.in {
		b.in[i] = b.in[i][:0]
	}
	return b.in
}

func (b *buffers) ensureTouched(total int) []bool {
	if cap(b.touched) < total {
		b.touched = make([]bool, total)
	}
	b.touched = b.touched[:total]
	clear(b.touched)
	return b.touched
}

func (b *buffers) ensurePresent(total int) []bool {
	if cap(b.present) < total {
		b.present = make([]bool, total)
	}
	b.present = b.present[:total]
	clear(b.present)
	return b.present
}

func (b *buffers) ensureD(total int) []int64 {
	if cap(b.d) < total {
		b.d = make([]int64, total)
	}
	b.d = b.d[:total]
	return b.d
}

func (b *buffers) ensureParent(total int) []int32 {
	if cap(b.parent) < total {
		b.parent = make([]int32, total)
	}
	b.parent = b.parent[:total]
	return b.parent
}

// AnalyzeWindowed is the streaming counterpart of Analyze: it slices the
// trace into fixed-size instruction windows, builds each window's induced
// DEG (plus a backward context margin) into pooled buffers, runs
// Algorithm 1 per window, and stitches the per-window critical paths into
// one Report. Peak memory is O(window), not O(trace), and vertex IDs are
// window-local, so traces are no longer capped by the int32 VertexID
// packing.
//
// Every attributed edge is owned by exactly one window — the one whose
// [lo, hi) instruction range contains the edge's head (To) instruction;
// margin edges appear in a window's graph for path context but are
// attributed only by their owner. On traces no longer than one window the
// result is identical to Analyze; across windows the per-resource Contrib
// matches whole-trace analysis within a small tolerance because each
// window picks its own locally longest path (see DESIGN.md §10).
//
// The returned Report and WindowStats are self-contained; no pooled memory
// escapes.
func AnalyzeWindowed(tr *pipetrace.Trace, opts WindowOptions) (*Report, *WindowStats, error) {
	n := len(tr.Records)
	if n == 0 {
		return nil, nil, fmt.Errorf("deg: empty trace")
	}
	if opts.Window <= 0 || opts.Window >= n {
		rep, g, _, err := Analyze(tr, opts.Options)
		if err != nil {
			return nil, nil, err
		}
		st := &WindowStats{
			Windows:         1,
			PeakEdges:       g.NumEdges(),
			PeakVertices:    g.NumVertices,
			DroppedNoStamp:  g.DroppedNoStamp,
			DroppedBackward: g.DroppedBackward,
			ClippedDeps:     g.ClippedDeps,
		}
		return rep, st, nil
	}
	overlap, err := opts.effectiveOverlap()
	if err != nil {
		return nil, nil, err
	}
	nWin := (n + opts.Window - 1) / opts.Window
	// bounds returns window i's record range: [lo, hi) is the owned span,
	// [base, end) adds the context margin on both sides. The margin extends
	// forward as well as back: the window's path then chooses how to cross
	// the right boundary with knowledge of what follows, instead of greedily
	// maximizing cost up to hi — which is where a context-free local path
	// diverges most from the global one.
	bounds := func(i int) (base, end, lo, hi int) {
		lo = i * opts.Window
		hi = min(lo+opts.Window, n)
		base = max(lo-overlap, 0)
		end = min(hi+overlap, n)
		return
	}

	var wa windowAccum
	if workers := opts.workerCount(nWin); workers > 1 {
		// Fan the pure phase out; fold in window order below. Each worker
		// owns one pooled buffer set and claims windows by fetch-add, so the
		// schedule is work-stealing-flat without a queue.
		results := make([]windowResult, nWin)
		errs := make([]error, nWin)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := bufPool.Get().(*buffers)
				defer bufPool.Put(b)
				for {
					i := int(next.Add(1)) - 1
					if i >= nWin {
						return
					}
					base, end, lo, hi := bounds(i)
					errs[i] = analyzeWindowPure(tr, opts.Options, base, end, lo, hi, b, &results[i])
				}
			}()
		}
		wg.Wait()
		for i := range results {
			if errs[i] != nil {
				return nil, nil, errs[i]
			}
			wa.fold(&results[i])
		}
	} else {
		b := bufPool.Get().(*buffers)
		defer bufPool.Put(b)
		for i := 0; i < nWin; i++ {
			base, end, lo, hi := bounds(i)
			if err := wa.analyzeWindow(tr, opts.Options, base, end, lo, hi, b); err != nil {
				return nil, nil, err
			}
		}
	}

	return wa.finish(tr.Cycles, tr.Span())
}

// windowAccum stitches per-window critical paths into one Report: the
// shared core of AnalyzeWindowed and the StreamAnalyzer, so the two are
// bit-identical by construction at equal window/overlap.
type windowAccum struct {
	rep        Report
	st         WindowStats
	attributed int64
}

// windowResult is the pure phase's output for one window: everything
// analyzeWindowPure learned, with no shared state touched. Folding these
// in window order (windowAccum.fold) reconstructs exactly the sums and
// maxes the sequential loop would have produced — every field is an
// integer sum or max, so the fold is order-insensitive in value and the
// in-order pass only pins the iteration for free determinism of Windows
// counting and future non-commutative stats.
type windowResult struct {
	delayByRes [uarch.NumResources]int64
	edgeCount  [uarch.NumResources]int
	attributed int64

	edges, vertices                              int
	droppedNoStamp, droppedBackward, clippedDeps int
}

// analyzeWindowPure builds the induced DEG over records [base, end) of tr
// (indices into tr.Records), constructs its critical path in the caller's
// buffers, and accumulates into res the delay of path edges owned by
// [lo, hi) — the window proper, excluding the context margins. It reads
// the trace and writes only b and res, so distinct windows run
// concurrently given distinct buffers and results.
func analyzeWindowPure(tr *pipetrace.Trace, opts Options, base, end, lo, hi int, b *buffers, res *windowResult) error {
	var g Graph
	if err := buildInto(&g, tr, opts, base, end, b); err != nil {
		return err
	}
	res.edges = g.NumEdges()
	res.vertices = g.NumVertices
	res.droppedNoStamp = g.DroppedNoStamp
	res.droppedBackward = g.DroppedBackward
	res.clippedDeps = g.ClippedDeps

	cp, err := g.constructInto(b)
	if err != nil {
		return err
	}
	for _, e := range cp.Edges {
		if e.Res == uarch.ResNone {
			continue
		}
		if seq := base + e.To.Seq(); seq < lo || seq >= hi {
			continue // a margin edge; its owner window attributes it
		}
		res.delayByRes[e.Res] += e.Delay
		res.edgeCount[e.Res]++
		res.attributed += e.Delay
	}
	return nil
}

// fold accumulates one window's pure result into the stitched report.
// Callers fold in window order.
func (wa *windowAccum) fold(res *windowResult) {
	wa.st.Windows++
	wa.st.PeakEdges = max(wa.st.PeakEdges, res.edges)
	wa.st.PeakVertices = max(wa.st.PeakVertices, res.vertices)
	wa.st.DroppedNoStamp += res.droppedNoStamp
	wa.st.DroppedBackward += res.droppedBackward
	wa.st.ClippedDeps += res.clippedDeps
	for r := range res.delayByRes {
		wa.rep.DelayByRes[r] += res.delayByRes[r]
		wa.rep.EdgeCount[r] += res.edgeCount[r]
	}
	wa.attributed += res.attributed
}

// analyzeWindow is the sequential fusion of the pure phase and the fold.
func (wa *windowAccum) analyzeWindow(tr *pipetrace.Trace, opts Options, base, end, lo, hi int, b *buffers) error {
	var res windowResult
	if err := analyzeWindowPure(tr, opts, base, end, lo, hi, b, &res); err != nil {
		return err
	}
	wa.fold(&res)
	return nil
}

// finish computes the report's ratios over the runtime L: the trace's
// cycle count, falling back to its wall-clock span, falling back to 1.
func (wa *windowAccum) finish(cycles, span int64) (*Report, *WindowStats, error) {
	rep, st := &wa.rep, &wa.st
	rep.L = cycles
	if rep.L <= 0 {
		rep.L = span
	}
	if rep.L <= 0 {
		rep.L = 1
	}
	for r := range rep.Contrib {
		rep.Contrib[r] = float64(rep.DelayByRes[r]) / float64(rep.L)
	}
	rep.Base = 1 - float64(wa.attributed)/float64(rep.L)
	if rep.Base < 0 {
		rep.Base = 0
		rep.BaseClamped = true
	}
	return rep, st, nil
}
