package deg

import (
	"fmt"
	"sync"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// DefaultOverlap is the context margin, in instructions, prepended to each
// window when WindowOptions.Overlap is zero. Dependence annotations point
// backwards at most as far as the in-flight window allows — the largest ROB
// in the design space holds 192 instructions — so 256 covers every producer
// a window-interior instruction can name, with slack for misprediction
// refills that reach slightly past the reorder window.
const DefaultOverlap = 256

// WindowOptions tunes the windowed analyzer.
type WindowOptions struct {
	Options
	// Window is the number of instructions per analysis window. Zero (or a
	// value >= the trace length) analyzes the whole trace in one pass,
	// byte-identical to Analyze.
	Window int
	// Overlap is the context margin in instructions prepended to each
	// window so cross-boundary edges are seen; the margin's edges are
	// attributed only by the window that owns their head instruction, so
	// each edge is counted exactly once. Zero means DefaultOverlap.
	Overlap int
}

// WindowStats summarizes a windowed analysis run.
type WindowStats struct {
	// Windows is the number of windows analyzed (1 for whole-trace).
	Windows int
	// PeakEdges and PeakVertices are the largest single-window graph sizes —
	// the working-set measure that replaces the whole-trace graph size.
	PeakEdges    int
	PeakVertices int
	// Defensive-drop totals summed across windows (see Graph).
	DroppedNoStamp  int
	DroppedBackward int
	// ClippedDeps totals dependence annotations whose producer preceded the
	// window's context margin (structural, not corruption).
	ClippedDeps int
}

// Dropped is the total defensively dropped edge count across all windows.
func (s *WindowStats) Dropped() int { return s.DroppedNoStamp + s.DroppedBackward }

// buffers is the reusable scratch state for one windowed analysis: every
// slice the graph build and the critical-path DP would otherwise allocate
// per window. The d/parent tables carry stale values between windows by
// design — constructInto writes every sorted vertex's entry before reading
// it — while present/touched and the dedup maps are cleared each build.
type buffers struct {
	// Graph build.
	edges   []Edge
	anchors []anchor
	targets []anchor
	in      [][]int32
	touched []bool
	vseen   map[vkey]bool
	aseen   map[akey]bool

	// Critical-path construction.
	present []bool
	d       []int64
	parent  []int32
	keys    []uint64
	verts   []VertexID
	rverts  []VertexID
	redges  []Edge
}

var bufPool = sync.Pool{
	New: func() any {
		return &buffers{
			vseen: make(map[vkey]bool),
			aseen: make(map[akey]bool),
		}
	},
}

func (b *buffers) ensureIn(total int) [][]int32 {
	if cap(b.in) < total {
		b.in = append(b.in[:cap(b.in)], make([][]int32, total-cap(b.in))...)
	}
	b.in = b.in[:total]
	for i := range b.in {
		b.in[i] = b.in[i][:0]
	}
	return b.in
}

func (b *buffers) ensureTouched(total int) []bool {
	if cap(b.touched) < total {
		b.touched = make([]bool, total)
	}
	b.touched = b.touched[:total]
	clear(b.touched)
	return b.touched
}

func (b *buffers) ensurePresent(total int) []bool {
	if cap(b.present) < total {
		b.present = make([]bool, total)
	}
	b.present = b.present[:total]
	clear(b.present)
	return b.present
}

func (b *buffers) ensureD(total int) []int64 {
	if cap(b.d) < total {
		b.d = make([]int64, total)
	}
	b.d = b.d[:total]
	return b.d
}

func (b *buffers) ensureParent(total int) []int32 {
	if cap(b.parent) < total {
		b.parent = make([]int32, total)
	}
	b.parent = b.parent[:total]
	return b.parent
}

// AnalyzeWindowed is the streaming counterpart of Analyze: it slices the
// trace into fixed-size instruction windows, builds each window's induced
// DEG (plus a backward context margin) into pooled buffers, runs
// Algorithm 1 per window, and stitches the per-window critical paths into
// one Report. Peak memory is O(window), not O(trace), and vertex IDs are
// window-local, so traces are no longer capped by the int32 VertexID
// packing.
//
// Every attributed edge is owned by exactly one window — the one whose
// [lo, hi) instruction range contains the edge's head (To) instruction;
// margin edges appear in a window's graph for path context but are
// attributed only by their owner. On traces no longer than one window the
// result is identical to Analyze; across windows the per-resource Contrib
// matches whole-trace analysis within a small tolerance because each
// window picks its own locally longest path (see DESIGN.md §10).
//
// The returned Report and WindowStats are self-contained; no pooled memory
// escapes.
func AnalyzeWindowed(tr *pipetrace.Trace, opts WindowOptions) (*Report, *WindowStats, error) {
	n := len(tr.Records)
	if n == 0 {
		return nil, nil, fmt.Errorf("deg: empty trace")
	}
	if opts.Window <= 0 || opts.Window >= n {
		rep, g, _, err := Analyze(tr, opts.Options)
		if err != nil {
			return nil, nil, err
		}
		st := &WindowStats{
			Windows:         1,
			PeakEdges:       g.NumEdges(),
			PeakVertices:    g.NumVertices,
			DroppedNoStamp:  g.DroppedNoStamp,
			DroppedBackward: g.DroppedBackward,
			ClippedDeps:     g.ClippedDeps,
		}
		return rep, st, nil
	}
	overlap := opts.Overlap
	if overlap <= 0 {
		overlap = DefaultOverlap
	}

	b := bufPool.Get().(*buffers)
	defer bufPool.Put(b)

	rep := &Report{}
	st := &WindowStats{}
	var attributed int64
	for lo := 0; lo < n; lo += opts.Window {
		hi := lo + opts.Window
		if hi > n {
			hi = n
		}
		base := lo - overlap
		if base < 0 {
			base = 0
		}
		// The margin extends forward as well as back: the window's path then
		// chooses how to cross the right boundary with knowledge of what
		// follows, instead of greedily maximizing cost up to hi — which is
		// where a context-free local path diverges most from the global one.
		end := hi + overlap
		if end > n {
			end = n
		}
		var g Graph
		if err := buildInto(&g, tr, opts.Options, base, end, b); err != nil {
			return nil, nil, err
		}
		st.Windows++
		if g.NumEdges() > st.PeakEdges {
			st.PeakEdges = g.NumEdges()
		}
		if g.NumVertices > st.PeakVertices {
			st.PeakVertices = g.NumVertices
		}
		st.DroppedNoStamp += g.DroppedNoStamp
		st.DroppedBackward += g.DroppedBackward
		st.ClippedDeps += g.ClippedDeps

		cp, err := g.constructInto(b)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range cp.Edges {
			if e.Res == uarch.ResNone {
				continue
			}
			if seq := base + e.To.Seq(); seq < lo || seq >= hi {
				continue // a margin edge; its owner window attributes it
			}
			rep.DelayByRes[e.Res] += e.Delay
			rep.EdgeCount[e.Res]++
			attributed += e.Delay
		}
	}

	rep.L = tr.Cycles
	if rep.L <= 0 {
		rep.L = tr.Span()
	}
	if rep.L <= 0 {
		rep.L = 1
	}
	for r := range rep.Contrib {
		rep.Contrib[r] = float64(rep.DelayByRes[r]) / float64(rep.L)
	}
	rep.Base = 1 - float64(attributed)/float64(rep.L)
	if rep.Base < 0 {
		rep.Base = 0
		rep.BaseClamped = true
	}
	return rep, st, nil
}
