package deg

import (
	"fmt"
	"sort"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// CriticalPath is the output of Algorithm 1: the maximum-cost chain through
// the induced DEG, which serializes the overlapping events that matter for
// the overall runtime.
type CriticalPath struct {
	// Vertices of the path in execution order.
	Vertices []VertexID
	// Edges[i] connects Vertices[i] to Vertices[i+1].
	Edges []Edge
	// Cost is the DP objective: total resource/misprediction delay.
	Cost int64
	// Span is the wall-clock interval the path's edges cover.
	Span int64
}

// topoSort orders verts by (time, VertexID), which equals the
// (time, seq, stage) topological order because a VertexID is
// seq*NumStages+stage. The common case packs both into one uint64 key —
// time in the upper 32 bits, vertex in the lower — so the sort comparator
// stays branch-cheap; that packing is exact while every stamp fits in 32
// bits (VertexID is int32, so the low half always fits). Stamps at or past
// 1<<32 cycles fall back to an explicit two-key comparison instead of
// silently corrupting the order — the bug the old 24-bit packing had for
// traces beyond ~2M records.
func topoSort(verts []VertexID, time func(VertexID) int64) {
	topoSortInto(verts, time, nil)
}

// topoSortInto is topoSort with a reusable key buffer (the windowed
// analyzer pools it); it returns the buffer so grown capacity survives.
func topoSortInto(verts []VertexID, time func(VertexID) int64, keys []uint64) []uint64 {
	var maxTime int64
	for _, v := range verts {
		if t := time(v); t > maxTime {
			maxTime = t
		}
	}
	if maxTime < 1<<32 {
		if cap(keys) < len(verts) {
			keys = make([]uint64, len(verts))
		}
		keys = keys[:len(verts)]
		for i, v := range verts {
			keys[i] = uint64(time(v))<<32 | uint64(uint32(v))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, k := range keys {
			verts[i] = VertexID(uint32(k))
		}
		return keys
	}
	sort.Slice(verts, func(i, j int) bool {
		ti, tj := time(verts[i]), time(verts[j])
		if ti != tj {
			return ti < tj
		}
		return verts[i] < verts[j]
	})
	return keys
}

// Construct runs Algorithm 1 (dynamic-programming longest path in
// topological order). Vertices without predecessors start at cost zero
// (line 8 of the paper's pseudocode acts as a virtual super-source); the
// path is reconstructed backwards from the maximum-cost vertex, which acts
// as the virtual super-sink. Runtime not covered by the path telescopes
// into the report's Base share.
func (g *Graph) Construct() (*CriticalPath, error) {
	return g.constructInto(nil)
}

// constructInto is Construct with pooled scratch arrays: when b is non-nil
// the topological order, DP tables, and the reconstructed path all live in
// the buffers, so the returned path is only valid until the buffers' next
// use. The d/parent tables need no reinitialisation between uses — every
// sorted vertex's entry is written before any read.
func (g *Graph) constructInto(b *buffers) (*CriticalPath, error) {
	if len(g.Edges) == 0 {
		return nil, fmt.Errorf("deg: graph has no edges")
	}

	// Topological order: (time, seq, stage) is valid by construction.
	// len(g.in) is the dense vertex-ID space of this (possibly windowed)
	// graph.
	total := len(g.in)
	var present []bool
	var d []int64
	var parent []int32 // incoming edge index, -1 none
	var verts []VertexID
	if b != nil {
		present = b.ensurePresent(total)
		d = b.ensureD(total)
		parent = b.ensureParent(total)
		verts = b.verts[:0]
	} else {
		present = make([]bool, total)
		d = make([]int64, total)
		parent = make([]int32, total)
	}
	nVerts := 0
	for i := range g.Edges {
		for _, v := range [2]VertexID{g.Edges[i].From, g.Edges[i].To} {
			if !present[v] {
				present[v] = true
				nVerts++
			}
		}
	}
	if b == nil {
		verts = make([]VertexID, 0, nVerts)
	}
	for v := 0; v < total; v++ {
		if present[v] {
			verts = append(verts, VertexID(v))
		}
	}
	var keys []uint64
	if b != nil {
		keys = b.keys
	}
	keys = topoSortInto(verts, g.time, keys)
	if b != nil {
		b.keys = keys
		b.verts = verts
	}

	var bestV VertexID
	var bestD int64 = -1
	for _, v := range verts {
		var dv int64
		pe := int32(-1)
		for _, ei := range g.in[v] {
			e := &g.Edges[ei]
			cand := d[e.From] + e.Cost
			if cand > dv || (cand == dv && pe < 0) {
				dv = cand
				pe = ei
			}
		}
		d[v] = dv
		parent[v] = pe
		if dv > bestD {
			bestD, bestV = dv, v
		}
	}

	// Reconstruct backwards from the super-sink.
	var redges []Edge
	var rverts []VertexID
	if b != nil {
		redges = b.redges[:0]
		rverts = b.rverts[:0]
	}
	v := bestV
	for {
		rverts = append(rverts, v)
		pe := parent[v]
		if pe < 0 {
			break
		}
		redges = append(redges, g.Edges[pe])
		v = g.Edges[pe].From
	}
	if b != nil {
		b.redges = redges
		b.rverts = rverts
	}
	// Reverse into execution order.
	for i, j := 0, len(rverts)-1; i < j; i, j = i+1, j-1 {
		rverts[i], rverts[j] = rverts[j], rverts[i]
	}
	for i, j := 0, len(redges)-1; i < j; i, j = i+1, j-1 {
		redges[i], redges[j] = redges[j], redges[i]
	}

	cp := &CriticalPath{Vertices: rverts, Edges: redges, Cost: bestD}
	if len(rverts) > 0 {
		cp.Span = g.time(rverts[len(rverts)-1]) - g.time(rverts[0])
	}
	return cp, nil
}

// Report is the bottleneck analysis output: each resource's contribution to
// the total runtime (Equation 1). Contributions are fractions of the
// critical path length L (the simulated runtime); Base is the share not
// attributed to any reassignable resource (pipeline progress, virtual-edge
// gaps, and the path's uncovered prefix/suffix).
type Report struct {
	L       int64 // total runtime in cycles
	Contrib [uarch.NumResources]float64
	// DelayByRes holds the absolute attributed cycles per resource.
	DelayByRes [uarch.NumResources]int64
	Base       float64
	// BaseClamped records that the raw Base came out negative (attributed
	// delay exceeded L, e.g. a truncated trace whose Cycles undercounts the
	// path) and was clamped to zero instead of being reported as a silently
	// negative fraction.
	BaseClamped bool
	// EdgeCount counts critical-path edges attributed per resource.
	EdgeCount [uarch.NumResources]int
}

// Analyze builds the graph, constructs the critical path, and attributes
// every path edge's delay to its resource (Equation 1).
func Analyze(tr *pipetrace.Trace, opts Options) (*Report, *Graph, *CriticalPath, error) {
	g, err := Build(tr, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	cp, err := g.Construct()
	if err != nil {
		return nil, nil, nil, err
	}
	rep := Attribute(tr, cp)
	return rep, g, cp, nil
}

// Attribute computes Equation 1 over a constructed critical path.
//
// When the trace carries no cycle count (tr.Cycles <= 0) the denominator
// falls back to the critical path's wall-clock Span rather than 1 — an L of
// one cycle would report every resource at thousands of percent. If the
// attributed delay still exceeds L (truncated traces whose Cycles
// undercounts the path), Base is clamped to zero and the report flags it
// via BaseClamped instead of going silently negative.
func Attribute(tr *pipetrace.Trace, cp *CriticalPath) *Report {
	rep := &Report{L: tr.Cycles}
	if rep.L <= 0 {
		rep.L = cp.Span
	}
	if rep.L <= 0 {
		rep.L = 1
	}
	var attributed int64
	for _, e := range cp.Edges {
		if e.Res == uarch.ResNone {
			continue
		}
		rep.DelayByRes[e.Res] += e.Delay
		rep.EdgeCount[e.Res]++
		attributed += e.Delay
	}
	for r := range rep.Contrib {
		rep.Contrib[r] = float64(rep.DelayByRes[r]) / float64(rep.L)
	}
	rep.Base = 1 - float64(attributed)/float64(rep.L)
	if rep.Base < 0 {
		rep.Base = 0
		rep.BaseClamped = true
	}
	return rep
}

// Top returns the resources ordered by decreasing contribution, skipping
// zero contributors.
func (r *Report) Top() []uarch.Resource {
	var out []uarch.Resource
	for _, res := range uarch.Resources() {
		if r.Contrib[res] > 0 {
			out = append(out, res)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return r.Contrib[out[i]] > r.Contrib[out[j]]
	})
	return out
}

// Merge computes the weighted average report across workloads
// (Equation 2). Weights must match reports in length; they are normalised
// internally.
//
// Contrib is exactly Equation 2: the weighted mean of each workload's
// contribution *fractions* Σᵢ wᵢ·(Delayᵢ[r]/Lᵢ). The absolute fields L and
// DelayByRes are weighted means of the inputs' absolute cycles (rounded to
// the nearest cycle), so a merge of identical reports reproduces the input
// rather than summing it. Because a mean of ratios is not the ratio of
// means, Contrib[r] equals DelayByRes[r]/L only when every input has the
// same L; in general the two views answer different questions (per-workload
// share of runtime versus cycles on a reference-length run) and Contrib is
// the one the explorer steers on. EdgeCount stays a plain sum — it is a
// diagnostic tally of critical-path edges across all inputs.
func Merge(reports []*Report, weights []float64) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("deg: no reports to merge")
	}
	if weights != nil && len(weights) != len(reports) {
		return nil, fmt.Errorf("deg: %d weights for %d reports", len(weights), len(reports))
	}
	var wsum float64
	if weights == nil {
		weights = make([]float64, len(reports))
		for i := range weights {
			weights[i] = 1
		}
	}
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("deg: negative weight %v", w)
		}
		wsum += w
	}
	if wsum == 0 {
		return nil, fmt.Errorf("deg: zero total weight")
	}
	out := &Report{}
	var lMean float64
	var delayMean [uarch.NumResources]float64
	for i, rep := range reports {
		w := weights[i] / wsum
		lMean += w * float64(rep.L)
		out.Base += w * rep.Base
		out.BaseClamped = out.BaseClamped || (w > 0 && rep.BaseClamped)
		for r := range rep.Contrib {
			out.Contrib[r] += w * rep.Contrib[r]
			delayMean[r] += w * float64(rep.DelayByRes[r])
			out.EdgeCount[r] += rep.EdgeCount[r]
		}
	}
	out.L = int64(lMean + 0.5)
	for r := range delayMean {
		out.DelayByRes[r] = int64(delayMean[r] + 0.5)
	}
	return out, nil
}

// String renders the report as the paper's bottleneck analysis table.
func (r *Report) String() string {
	clamp := ""
	if r.BaseClamped {
		clamp = " [base clamped: attributed delay exceeded L]"
	}
	out := fmt.Sprintf("bottleneck report (L=%d cycles, base=%.1f%%%s)\n", r.L, 100*r.Base, clamp)
	for _, res := range r.Top() {
		out += fmt.Sprintf("  %-12s %6.2f%%  (%d edges, %d cycles)\n",
			res, 100*r.Contrib[res], r.EdgeCount[res], r.DelayByRes[res])
	}
	return out
}
