// Package deg implements the paper's new dynamic event-dependence graph
// (DEG) formulation of microexecution, the induced DEG with virtual edges,
// the dynamic-programming critical-path construction (Algorithm 1), and the
// per-resource bottleneck contribution report (Equations 1 and 2).
//
// Vertices are pipeline events of committed instructions placed on the real
// time axis (each vertex is (instruction sequence, stage) with the cycle
// stamp the simulator observed). Edges follow Table 2 of the paper:
//
//   - Pipeline dependence (horizontal): F1→F2→F→DC→R→DP→I→(M)→P→C inside
//     one instruction.
//   - Misprediction dependence: P(i)→F1(j), where j is the first
//     instruction fetched after branch i's misprediction resolved.
//   - Hardware resource dependence: R(i)→R(j) when instruction j stalled at
//     rename for an entry of ROB/IQ/LQ/SQ/IntRF/FpRF that i released, per
//     the simulator's scoreboard; and I(i)→I(j) for functional units and
//     cache read/write ports.
//   - True data dependence: I(i)→I(j) for read-after-write producers that
//     were not ready when j entered the issue window.
//
// Every edge carries its actual delay (the time interval between its
// endpoints — the events' timing information the paper embeds), and a DP
// cost: resource and misprediction edges cost their delay, all other edges
// cost zero (Section 4.2's cost assignment). The induced DEG adds zero-cost
// virtual edges connecting "skewed" edges under Rule 1 (closest in time)
// and Rule 2 (closest in instruction sequence) so that consecutive resource
// usage episodes chain into one critical path.
package deg

import (
	"fmt"
	"math"
	"sort"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// EdgeKind classifies DEG edges (Table 2 plus the induced DEG's virtual
// edges).
type EdgeKind uint8

const (
	EdgePipeline EdgeKind = iota
	EdgeMispredict
	EdgeResource // rename-to-rename hardware resource usage
	EdgeFU       // issue-to-issue functional unit / port usage
	EdgeData     // true data dependence
	EdgeVirtual
	numEdgeKinds
)

// NumEdgeKinds is the number of edge classes.
const NumEdgeKinds = int(numEdgeKinds)

var edgeKindNames = [...]string{
	EdgePipeline:   "pipeline",
	EdgeMispredict: "mispredict",
	EdgeResource:   "resource",
	EdgeFU:         "fu",
	EdgeData:       "data",
	EdgeVirtual:    "virtual",
}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// cacheHitLatency is the pipelined L1 hit latency; access latencies above
// it indicate misses and are attributed to the cache as a bottleneck.
const cacheHitLatency = 2

// VertexID addresses a vertex as seq*NumStages + stage.
type VertexID int32

// Vertex returns the ID for (seq, stage).
func Vertex(seq int, st pipetrace.Stage) VertexID {
	return VertexID(seq*pipetrace.NumStages + int(st))
}

// Seq extracts the instruction sequence number.
func (v VertexID) Seq() int { return int(v) / pipetrace.NumStages }

// Stage extracts the pipeline stage.
func (v VertexID) Stage() pipetrace.Stage {
	return pipetrace.Stage(int(v) % pipetrace.NumStages)
}

// Edge is one DEG dependence.
type Edge struct {
	From, To VertexID
	Kind     EdgeKind
	Res      uarch.Resource // attribution target (ResNone for base edges)
	Delay    int64          // actual time interval t(To) - t(From)
	Cost     int64          // DP cost (Section 4.2)
}

// Graph is the induced DEG of one microexecution — or, for the windowed
// analyzer (AnalyzeWindowed), of one window of it, with vertex IDs local to
// the window so arbitrarily long traces stay within the int32 packing.
type Graph struct {
	Trace *pipetrace.Trace
	Edges []Edge

	// base is the global sequence number of local vertex seq 0. Whole-trace
	// graphs have base 0.
	base int

	// in[v] lists indices into Edges of v's incoming edges; indexed
	// densely by VertexID.
	in [][]int32

	// Statistics.
	NumVertices int
	EdgesByKind [NumEdgeKinds]int
	// SkewedAnchors counts the distinct (vertex, start) anchors feeding the
	// virtual-edge rules.
	SkewedAnchors int

	// Defensive-drop counters: edges addEdge refused to create. On a trace
	// that passes pipetrace validation both must stay zero (the simulator
	// invariants test asserts this); non-zero values indicate trace
	// corruption and are surfaced through the evaluator's telemetry rather
	// than vanishing silently.
	DroppedNoStamp  int // an endpoint's stage never happened
	DroppedBackward int // the edge would run backward in time
	// ClippedDeps counts dependence annotations whose producer precedes the
	// window's context base. Whole-trace builds always see zero; windowed
	// builds clip the rare producer older than the overlap margin.
	ClippedDeps int
}

// Dropped is the total defensively dropped edge count (trace-corruption
// indicator; window-context clipping is structural and counted separately).
func (g *Graph) Dropped() int { return g.DroppedNoStamp + g.DroppedBackward }

// time returns the stamp of a vertex.
func (g *Graph) time(v VertexID) int64 {
	return g.Trace.Records[g.base+v.Seq()].Stamp[v.Stage()]
}

// order is the topological sort key: edges always go forward in
// (time, seq, stage) lexicographic order.
func (g *Graph) order(v VertexID) [3]int64 {
	return [3]int64{g.time(v), int64(v.Seq()), int64(v.Stage())}
}

func orderLess(a, b [3]int64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// Options tunes graph construction.
type Options struct {
	// MaxVirtualScan bounds the candidate scan for virtual-edge rules.
	// Zero means the default (64).
	MaxVirtualScan int
}

// anchor is one endpoint of a skewed edge — a participant in the induced
// DEG's virtual-edge rules.
type anchor struct {
	v     VertexID
	ord   [3]int64
	start bool // true for skewed-edge start vertices (virtual targets)
}

// vkey dedups virtual edges; akey dedups skewed-edge anchors.
type vkey struct{ f, t VertexID }
type akey struct {
	v     VertexID
	start bool
}

// Build constructs the induced DEG from a pipeline trace.
func Build(tr *pipetrace.Trace, opts Options) (*Graph, error) {
	g := &Graph{}
	if err := buildInto(g, tr, opts, 0, len(tr.Records), nil); err != nil {
		return nil, err
	}
	return g, nil
}

// buildInto constructs the induced DEG over records [base, end) into the
// zeroed graph g, with vertex IDs local to base. When b is non-nil the
// graph's slices and scratch maps come from the (pooled) buffers so
// repeated builds reuse their allocations; such a graph is only valid until
// the buffers' next build. Dependence annotations reaching back before base
// are clipped and counted (whole-trace builds pass base 0 and never clip).
func buildInto(g *Graph, tr *pipetrace.Trace, opts Options, base, end int, b *buffers) error {
	nRecs := end - base
	if nRecs <= 0 {
		return fmt.Errorf("deg: empty trace")
	}
	if opts.MaxVirtualScan <= 0 {
		opts.MaxVirtualScan = 64
	}
	if nRecs > (math.MaxInt32-pipetrace.NumStages+1)/pipetrace.NumStages {
		// VertexID is an int32 of seq*NumStages+stage; IDs are local to the
		// build range, so only this range — not the whole trace — must fit.
		return fmt.Errorf("deg: trace of %d instructions exceeds the %d-instruction graph limit",
			nRecs, (math.MaxInt32-pipetrace.NumStages+1)/pipetrace.NumStages)
	}
	g.Trace = tr
	g.base = base

	// Producer annotations are global sequence numbers; records sit at
	// index Seq - seq0 in tr.Records. Batch traces have seq0 == 0 (index
	// equals sequence number); the stream analyzer's sliding buffer starts
	// at whatever sequence is still retained.
	seq0 := tr.Records[0].Seq

	// Skewed-edge anchor bookkeeping for the induced DEG, deduped by
	// (vertex, start): a vertex shared by several skewed edges used to push
	// one anchor per edge, repeating identical Rule 1/Rule 2 scans and
	// crowding the bounded Rule-2 candidate window with duplicates.
	var anchors []anchor
	var aseen map[akey]bool
	if b != nil {
		g.Edges = b.edges[:0]
		anchors = b.anchors[:0]
		aseen = b.aseen
		clear(aseen)
	} else {
		aseen = make(map[akey]bool)
	}

	addEdge := func(from, to VertexID, kind EdgeKind, res uarch.Resource) {
		df, dt := g.time(from), g.time(to)
		if df == pipetrace.NoStamp || dt == pipetrace.NoStamp {
			g.DroppedNoStamp++
			return
		}
		delay := dt - df
		if delay < 0 {
			g.DroppedBackward++
			return // defensive: never create a backward edge
		}
		var cost int64
		if kind == EdgeResource || kind == EdgeFU || kind == EdgeMispredict {
			cost = delay
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind, Res: res, Delay: delay, Cost: cost})
	}

	addSkewed := func(from, to VertexID, kind EdgeKind, res uarch.Resource) {
		n := len(g.Edges)
		addEdge(from, to, kind, res)
		if len(g.Edges) == n {
			return
		}
		if k := (akey{from, true}); !aseen[k] {
			aseen[k] = true
			anchors = append(anchors, anchor{v: from, ord: g.order(from), start: true})
		}
		if k := (akey{to, false}); !aseen[k] {
			aseen[k] = true
			anchors = append(anchors, anchor{v: to, ord: g.order(to), start: false})
		}
	}

	// clip drops a producer annotation that precedes the build range;
	// toLocal maps a surviving global producer sequence to the build
	// range's local vertex sequence.
	clip := func(producer int) bool {
		if producer-seq0 >= base {
			return false
		}
		g.ClippedDeps++
		return true
	}
	toLocal := func(producer int) int { return producer - seq0 - base }

	for i := 0; i < nRecs; i++ {
		rec := &tr.Records[base+i]
		// Horizontal pipeline chain. Attribution of base latencies: the
		// I$ response edge attributes to ICache and the load access edge
		// to DCache; remaining hops are unattributed pipeline progress.
		prev := pipetrace.SF1
		for s := pipetrace.SF2; s < pipetrace.Stage(pipetrace.NumStages); s++ {
			if !rec.HasStage(s) {
				continue
			}
			res := uarch.ResNone
			switch {
			case prev == pipetrace.SF1 && s == pipetrace.SF2:
				// The pipelined hit latency is intrinsic; only the miss
				// portion marks the I$ as a bottleneck.
				if rec.ICacheLat > cacheHitLatency {
					res = uarch.ResICache
				}
			case prev == pipetrace.SM && s == pipetrace.SP:
				if rec.DCacheLat > cacheHitLatency {
					res = uarch.ResDCache
				}
			case prev == pipetrace.SF2 && s == pipetrace.SF,
				prev == pipetrace.SF && s == pipetrace.SDC,
				prev == pipetrace.SR && s == pipetrace.SDP:
				// Fetch-buffer drain, fetch-queue and dispatch delays:
				// front-end width/buffer pressure.
				res = uarch.ResFrontend
			}
			addEdge(Vertex(i, prev), Vertex(i, s), EdgePipeline, res)
			prev = s
		}

		// Hardware resource dependencies (rename to rename).
		for _, rd := range rec.ResourceDeps {
			if clip(rd.Producer) {
				continue
			}
			addSkewed(Vertex(toLocal(rd.Producer), pipetrace.SR), Vertex(i, pipetrace.SR), EdgeResource, rd.Resource)
		}
		// Functional unit and port contention (issue to issue).
		if rec.FUProducer >= 0 && !clip(rec.FUProducer) {
			addSkewed(Vertex(toLocal(rec.FUProducer), pipetrace.SI), Vertex(i, pipetrace.SI), EdgeFU, rec.FURes)
		}
		if rec.PortProducer >= 0 && !clip(rec.PortProducer) {
			addSkewed(Vertex(toLocal(rec.PortProducer), pipetrace.SI), Vertex(i, pipetrace.SI), EdgeFU, uarch.ResRdWrPort)
		}
		// True data dependence.
		for _, p := range rec.DataProducers {
			if clip(p) {
				continue
			}
			addSkewed(Vertex(toLocal(p), pipetrace.SI), Vertex(i, pipetrace.SI), EdgeData, uarch.ResRawDep)
		}
		// Misprediction dependence.
		if rec.MispredictFrom >= 0 && !clip(rec.MispredictFrom) {
			addSkewed(Vertex(toLocal(rec.MispredictFrom), pipetrace.SP), Vertex(i, pipetrace.SF1), EdgeMispredict, uarch.ResBranchPred)
		}
	}

	// Induced DEG: virtual edges. Candidate targets are skewed-edge start
	// vertices; every anchor connects to (Rule 1) the target whose time is
	// closest after its own, and (Rule 2) the target whose instruction
	// sequence is closest after its own.
	var targets []anchor
	if b != nil {
		targets = b.targets[:0]
	}
	for _, a := range anchors {
		if a.start {
			targets = append(targets, a)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return orderLess(targets[i].ord, targets[j].ord) })
	g.SkewedAnchors = len(anchors)

	// Dedup helper for virtual edges.
	var seen map[vkey]bool
	if b != nil {
		seen = b.vseen
		clear(seen)
	} else {
		seen = make(map[vkey]bool)
	}
	addVirtual := func(from, to VertexID) {
		if from == to {
			return
		}
		k := vkey{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		addEdge(from, to, EdgeVirtual, uarch.ResNone)
	}

	for _, a := range anchors {
		// Rule 1: binary search targets by order; first strictly greater.
		lo := sort.Search(len(targets), func(i int) bool {
			return orderLess(a.ord, targets[i].ord)
		})
		if lo < len(targets) {
			best := targets[lo]
			addVirtual(a.v, best.v)
			// Rule 2: among the next few targets, closest sequence.
			bestSeq := best
			bestDist := seqDist(a.v, best.v)
			hi := lo + opts.MaxVirtualScan
			if hi > len(targets) {
				hi = len(targets)
			}
			for _, t := range targets[lo:hi] {
				if d := seqDist(a.v, t.v); d < bestDist {
					bestSeq, bestDist = t, d
				}
			}
			if bestSeq.v != best.v {
				addVirtual(a.v, bestSeq.v)
			}
		}
	}

	// Index incoming edges and tally statistics.
	total := nRecs * pipetrace.NumStages
	var touched []bool
	if b != nil {
		g.in = b.ensureIn(total)
		touched = b.ensureTouched(total)
	} else {
		g.in = make([][]int32, total)
		touched = make([]bool, total)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		g.in[e.To] = append(g.in[e.To], int32(i))
		g.EdgesByKind[e.Kind]++
		touched[e.From] = true
		touched[e.To] = true
	}
	for _, t := range touched {
		if t {
			g.NumVertices++
		}
	}
	if b != nil {
		// Hand the (possibly reallocated) slices back so the next build
		// reuses their grown capacity.
		b.edges = g.Edges
		b.anchors = anchors
		b.targets = targets
	}
	return nil
}

func seqDist(a, b VertexID) int {
	d := a.Seq() - b.Seq()
	if d < 0 {
		d = -d
	}
	return d
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }
