package deg

// Hand-built pipeline traces verifying the Table 2 edge taxonomy precisely:
// every dependence class must produce exactly the edge the paper specifies,
// with the observed interval as its delay, and the induced DEG must connect
// skewed edges under Rules 1 and 2.

import (
	"testing"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// mkRecord builds a record with a linear pipeline starting at cycle t0,
// one cycle per stage (M omitted for non-memory ops).
func mkRecord(seq int, t0 int64, class isa.OpClass) pipetrace.Record {
	r := pipetrace.NewRecord(seq, 0x1000+uint64(4*seq), class)
	t := t0
	for s := pipetrace.SF1; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM && !class.IsMem() {
			continue
		}
		r.Stamp[s] = t
		t++
	}
	return r
}

func mkTrace(recs ...pipetrace.Record) *pipetrace.Trace {
	tr := &pipetrace.Trace{Records: recs}
	tr.Cycles = recs[len(recs)-1].Stamp[pipetrace.SC] + 1
	return tr
}

func findEdge(g *Graph, from, to VertexID, kind EdgeKind) *Edge {
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.From == from && e.To == to && e.Kind == kind {
			return e
		}
	}
	return nil
}

func TestPipelineEdgesWithinInstruction(t *testing.T) {
	tr := mkTrace(mkRecord(0, 0, isa.OpIntAlu), mkRecord(1, 1, isa.OpLoad))
	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Non-memory op: F1->F2->F->DC->R->DP->I->P->C (8 hops, no M).
	hops := [][2]pipetrace.Stage{
		{pipetrace.SF1, pipetrace.SF2}, {pipetrace.SF2, pipetrace.SF},
		{pipetrace.SF, pipetrace.SDC}, {pipetrace.SDC, pipetrace.SR},
		{pipetrace.SR, pipetrace.SDP}, {pipetrace.SDP, pipetrace.SI},
		{pipetrace.SI, pipetrace.SP}, {pipetrace.SP, pipetrace.SC},
	}
	for _, h := range hops {
		e := findEdge(g, Vertex(0, h[0]), Vertex(0, h[1]), EdgePipeline)
		if e == nil {
			t.Fatalf("missing pipeline edge %s->%s", h[0], h[1])
		}
		if e.Delay != 1 {
			t.Fatalf("%s->%s delay %d, want 1", h[0], h[1], e.Delay)
		}
		if e.Cost != 0 {
			t.Fatalf("pipeline edge has nonzero cost")
		}
	}
	// Memory op: I->M->P present.
	if findEdge(g, Vertex(1, pipetrace.SI), Vertex(1, pipetrace.SM), EdgePipeline) == nil {
		t.Fatal("missing I->M for load")
	}
	if findEdge(g, Vertex(1, pipetrace.SM), Vertex(1, pipetrace.SP), EdgePipeline) == nil {
		t.Fatal("missing M->P for load")
	}
}

func TestResourceEdgeRenameToRename(t *testing.T) {
	// I2 stalls 7 cycles at rename waiting for a ROB entry freed by I0.
	r0 := mkRecord(0, 0, isa.OpIntAlu)
	r1 := mkRecord(1, 1, isa.OpIntAlu)
	r2 := mkRecord(2, 2, isa.OpIntAlu)
	r2.Stamp[pipetrace.SR] = r0.Stamp[pipetrace.SR] + 7 // stalled rename
	for s := pipetrace.SDP; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM {
			continue
		}
		r2.Stamp[s] = r2.Stamp[pipetrace.SR] + int64(s-pipetrace.SDP) + 1
	}
	r2.ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResROB, Producer: 0}}
	tr := mkTrace(r0, r1, r2)

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := findEdge(g, Vertex(0, pipetrace.SR), Vertex(2, pipetrace.SR), EdgeResource)
	if e == nil {
		t.Fatal("missing R(0)->R(2) resource edge")
	}
	if e.Res != uarch.ResROB {
		t.Fatalf("edge attributed to %s, want ROB", e.Res)
	}
	if want := r2.Stamp[pipetrace.SR] - r0.Stamp[pipetrace.SR]; e.Delay != want {
		t.Fatalf("delay %d, want %d (the resource's duty cycles)", e.Delay, want)
	}
	if e.Cost != e.Delay {
		t.Fatal("resource edges must carry their delay as DP cost")
	}
}

func TestFUAndDataEdgesIssueToIssue(t *testing.T) {
	r0 := mkRecord(0, 0, isa.OpIntDiv)
	r1 := mkRecord(1, 1, isa.OpIntDiv)
	// I1 issues 20 cycles after I0 (divider busy), and also waits on I0's
	// result.
	shift := int64(20)
	for s := pipetrace.SI; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM {
			continue
		}
		r1.Stamp[s] += shift
	}
	r1.FUProducer = 0
	r1.FURes = uarch.ResIntMultDiv
	r1.DataProducers = []int{0}
	tr := mkTrace(r0, r1)

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fu := findEdge(g, Vertex(0, pipetrace.SI), Vertex(1, pipetrace.SI), EdgeFU)
	if fu == nil {
		t.Fatal("missing FU I(0)->I(1) edge")
	}
	if fu.Res != uarch.ResIntMultDiv || fu.Cost != fu.Delay {
		t.Fatalf("FU edge wrong: %+v", fu)
	}
	data := findEdge(g, Vertex(0, pipetrace.SI), Vertex(1, pipetrace.SI), EdgeData)
	if data == nil {
		t.Fatal("missing true-data I(0)->I(1) edge")
	}
	if data.Cost != 0 {
		t.Fatal("true data dependence must have zero DP cost (Section 4.2 rule 3)")
	}
	if data.Res != uarch.ResRawDep {
		t.Fatalf("data edge attributed to %s", data.Res)
	}
}

func TestMispredictEdgePToF1(t *testing.T) {
	br := mkRecord(0, 0, isa.OpBranch)
	br.Mispredicted = true
	refill := mkRecord(1, br.Stamp[pipetrace.SP]+3, isa.OpIntAlu) // squash latency 3
	refill.MispredictFrom = 0
	tr := mkTrace(br, refill)

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := findEdge(g, Vertex(0, pipetrace.SP), Vertex(1, pipetrace.SF1), EdgeMispredict)
	if e == nil {
		t.Fatal("missing P(0)->F1(1) misprediction edge")
	}
	if e.Delay != 3 {
		t.Fatalf("squash delay %d, want the actual interval 3", e.Delay)
	}
	if e.Res != uarch.ResBranchPred {
		t.Fatalf("attributed to %s", e.Res)
	}
}

func TestVirtualEdgesConnectConsecutiveSkewedEdges(t *testing.T) {
	// Two disjoint resource edges: R(0)->R(2) and R(3)->R(5). The induced
	// DEG must add a virtual edge from the first edge's endpoints toward
	// the second edge's start so the critical path can chain them.
	var recs []pipetrace.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, mkRecord(i, int64(3*i), isa.OpIntAlu))
	}
	recs[2].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIQ, Producer: 0}}
	recs[5].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIQ, Producer: 3}}
	tr := mkTrace(recs...)

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgesByKind[EdgeVirtual] == 0 {
		t.Fatal("induced DEG added no virtual edges")
	}
	// Some virtual edge must END at the second skewed edge's start R(3).
	found := false
	for _, e := range g.Edges {
		if e.Kind == EdgeVirtual && e.To == Vertex(3, pipetrace.SR) {
			found = true
			if e.Cost != 0 {
				t.Fatal("virtual edges must cost zero")
			}
		}
	}
	if !found {
		t.Fatal("no virtual edge into the later skewed edge's start")
	}
	// And the critical path must pick up both resource edges.
	cp, err := g.Construct()
	if err != nil {
		t.Fatal(err)
	}
	resEdges := 0
	for _, e := range cp.Edges {
		if e.Kind == EdgeResource {
			resEdges++
		}
	}
	if resEdges != 2 {
		t.Fatalf("critical path chains %d resource edges, want 2", resEdges)
	}
}

// TestAnchorDedupPinnedEdgeCounts pins the exact induced-DEG shape of a
// fixture where one vertex starts two skewed edges: R(0) produces for both
// R(2) and R(3). Before anchors were deduped by (vertex, start), R(0)
// appeared twice in the anchor list — repeating its Rule 1/Rule 2 scans and
// crowding the bounded Rule-2 candidate window — and SkewedAnchors
// over-reported as 6.
func TestAnchorDedupPinnedEdgeCounts(t *testing.T) {
	var recs []pipetrace.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, mkRecord(i, int64(3*i), isa.OpIntAlu))
	}
	recs[2].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResROB, Producer: 0}}
	recs[3].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIQ, Producer: 0}}
	recs[5].ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIQ, Producer: 3}}
	tr := mkTrace(recs...)

	g, err := Build(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 6 non-memory instructions × 8 pipeline hops.
	if got := g.EdgesByKind[EdgePipeline]; got != 48 {
		t.Fatalf("%d pipeline edges, want 48", got)
	}
	if got := g.EdgesByKind[EdgeResource]; got != 3 {
		t.Fatalf("%d resource edges, want 3", got)
	}
	// Rule 1 from R(0)'s start anchor and from R(2)'s end anchor both reach
	// the next episode's start R(3); anchors at or after R(3) have no later
	// target.
	if got := g.EdgesByKind[EdgeVirtual]; got != 2 {
		t.Fatalf("%d virtual edges, want 2", got)
	}
	// Distinct (vertex, start) anchors: R(0)/start, R(2)/end, R(3)/end,
	// R(3)/start, R(5)/end.
	if g.SkewedAnchors != 5 {
		t.Fatalf("SkewedAnchors=%d, want 5 (duplicate R(0) start anchor not deduped)", g.SkewedAnchors)
	}
	if g.Dropped() != 0 {
		t.Fatalf("defensive drops on a clean fixture: %+v", g)
	}
}

func TestAttributionUsesActualDelays(t *testing.T) {
	// One 10-cycle resource stall in a 20-cycle execution: the resource's
	// contribution must be 10/Cycles.
	r0 := mkRecord(0, 0, isa.OpIntAlu)
	r1 := mkRecord(1, 1, isa.OpIntAlu)
	r1.Stamp[pipetrace.SR] = r0.Stamp[pipetrace.SR] + 10
	for s := pipetrace.SDP; s <= pipetrace.SC; s++ {
		if s == pipetrace.SM {
			continue
		}
		r1.Stamp[s] = r1.Stamp[pipetrace.SR] + int64(s-pipetrace.SR)
	}
	r1.ResourceDeps = []pipetrace.ResourceDep{{Resource: uarch.ResIntRF, Producer: 0}}
	tr := mkTrace(r0, r1)

	rep, _, _, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / float64(tr.Cycles)
	if got := rep.Contrib[uarch.ResIntRF]; got < want*0.999 || got > want*1.001 {
		t.Fatalf("IntRF contribution %v, want %v", got, want)
	}
	if rep.EdgeCount[uarch.ResIntRF] != 1 {
		t.Fatalf("edge count %d", rep.EdgeCount[uarch.ResIntRF])
	}
}
