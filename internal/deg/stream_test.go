package deg

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// feedTrace replays a materialized trace through a StreamAnalyzer as
// chunkSize-record chunks, re-interning each record's annotation slices
// into its chunk's arena — exactly the ownership shape ooo.RunStream
// produces (whose record-level parity with Run is pinned separately).
func feedTrace(t *testing.T, sa *StreamAnalyzer, tr *pipetrace.Trace, chunkSize int) {
	t.Helper()
	n := len(tr.Records)
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		c := pipetrace.GetChunk(hi - lo)
		for i := lo; i < hi; i++ {
			r := tr.Records[i]
			r.ResourceDeps = c.InternDeps(r.ResourceDeps)
			r.DataProducers = c.InternProducers(r.DataProducers)
			c.Records = append(c.Records, r)
		}
		if err := sa.Feed(c); err != nil {
			t.Fatalf("Feed at %d: %v", lo, err)
		}
	}
}

// streamReport runs the full streamed analysis of tr.
func streamReport(t *testing.T, tr *pipetrace.Trace, opts WindowOptions, chunkSize int) (*Report, *WindowStats, *StreamAnalyzer) {
	t.Helper()
	sa, err := NewStreamAnalyzer(opts)
	if err != nil {
		t.Fatal(err)
	}
	feedTrace(t, sa, tr, chunkSize)
	rep, st, err := sa.Finish(tr.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	return rep, st, sa
}

// TestStreamMatchesWindowedExact pins the tentpole's parity guarantee:
// the streamed report and stats are bit-identical to AnalyzeWindowed at
// equal window/overlap, across window/overlap/chunk shapes including
// window smaller than overlap, window larger than the trace, whole-trace
// (window 0), and traces shorter than one margin.
func TestStreamMatchesWindowedExact(t *testing.T) {
	const n = 4000
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
	cases := []struct {
		window, overlap, chunk int
	}{
		{500, 0, 256},       // default margin, multi-window
		{500, 0, 500},       // chunk == window
		{500, 0, 4096},      // single chunk
		{500, 0, 1},         // degenerate chunk
		{100, 300, 128},     // window smaller than overlap
		{n + 100, 0, 512},   // window larger than the trace -> whole-trace
		{0, 0, 512},         // window 0 -> whole-trace
		{1000, 64, 256},     // tight explicit overlap
		{3999, 0, 256},      // last window is one record
		{1, 16, 64},         // one-record windows
		{n, 0, 333},         // window == trace -> whole-trace
		{2000, 2 * n, 1024}, // margin larger than the trace
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%d_o%d_c%d", tc.window, tc.overlap, tc.chunk), func(t *testing.T) {
			opts := WindowOptions{Window: tc.window, Overlap: tc.overlap}
			wantRep, wantSt, err := AnalyzeWindowed(tr, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotRep, gotSt, _ := streamReport(t, tr, opts, tc.chunk)
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("streamed report differs:\nstream %+v\nbatch  %+v", gotRep, wantRep)
			}
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Fatalf("streamed stats differ:\nstream %+v\nbatch  %+v", gotSt, wantSt)
			}
		})
	}
}

// TestStreamShortTraceParity covers traces shorter than one margin — the
// whole-trace short-circuit — and the Cycles<=0 span fallback.
func TestStreamShortTraceParity(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "401.bzip2", 100)
	for _, window := range []int{0, 50, 99, 100, 400} {
		opts := WindowOptions{Window: window}
		wantRep, wantSt, err := AnalyzeWindowed(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, gotSt, _ := streamReport(t, tr, opts, 32)
		if !reflect.DeepEqual(gotRep, wantRep) || !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("window %d: short-trace stream mismatch", window)
		}
	}

	// Cycles unset: windowed analysis falls back to the trace span; the
	// stream analyzer must reproduce it from its running F1/C aggregates.
	noCycles := &pipetrace.Trace{Records: tr.Records}
	wantRep, _, err := AnalyzeWindowed(noCycles, WindowOptions{Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewStreamAnalyzer(WindowOptions{Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	feedTrace(t, sa, noCycles, 16)
	gotRep, _, err := sa.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatalf("span-fallback mismatch: stream L=%d batch L=%d", gotRep.L, wantRep.L)
	}
}

// TestStreamPropertyRandom quantifies parity over random window/overlap/
// chunk combinations on two workloads and two configs.
func TestStreamPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa2c4))
	traces := []*pipetrace.Trace{
		traceFor(t, uarch.Baseline(), "458.sjeng", 2500),
		traceFor(t, uarch.Baseline(), "429.mcf", 1800),
	}
	for iter := 0; iter < 40; iter++ {
		tr := traces[rng.Intn(len(traces))]
		opts := WindowOptions{
			Window:  rng.Intn(3 * len(tr.Records) / 2), // includes 0 and > trace
			Overlap: rng.Intn(600),                     // includes 0 (default margin)
		}
		chunk := 1 + rng.Intn(2048)
		wantRep, wantSt, err := AnalyzeWindowed(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, gotSt, _ := streamReport(t, tr, opts, chunk)
		if !reflect.DeepEqual(gotRep, wantRep) || !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("iter %d (window=%d overlap=%d chunk=%d): stream/batch mismatch",
				iter, opts.Window, opts.Overlap, chunk)
		}
	}
}

// TestStreamMemoryBound asserts the tentpole's memory guarantee at every
// worker count: the analyzer never holds more than
// window + 2*overlap + chunk - 1 + InflightCap*(window + 2*overlap)
// records (the inflight term is zero in sequential mode), the bound does
// not grow with trace length, and every retained chunk is released by
// Finish.
func TestStreamMemoryBound(t *testing.T) {
	const window, chunk = 500, 128
	for _, workers := range []int{0, 1, 4} {
		for _, n := range []int{4000, 8000} {
			t.Run(fmt.Sprintf("k%d_n%d", workers, n), func(t *testing.T) {
				tr := traceFor(t, uarch.Baseline(), "458.sjeng", n)
				opts := WindowOptions{Window: window, Workers: workers}
				overlap, err := opts.effectiveOverlap()
				if err != nil {
					t.Fatal(err)
				}
				sa, err := NewStreamAnalyzer(opts)
				if err != nil {
					t.Fatal(err)
				}
				feedTrace(t, sa, tr, chunk)
				// Trace-length-independent: every term is a function of the
				// options alone.
				bound := window + 2*overlap + chunk - 1 + sa.InflightCap()*(window+2*overlap)
				if peak := sa.PeakBufferedRecords(); peak > bound {
					t.Fatalf("peak buffered %d records exceeds bound %d (window=%d overlap=%d chunk=%d inflight=%d)",
						peak, bound, window, overlap, chunk, sa.InflightCap())
				}
				// The sliding buffer's chunk retention is worker-independent:
				// tasks pin chunks with their own references, not by delaying
				// the analyzer's eviction.
				maxChunks := (window+2*overlap+chunk-1+chunk-1)/chunk + 1
				if held := sa.RetainedChunks(); held > maxChunks {
					t.Fatalf("retaining %d chunks, bound %d", held, maxChunks)
				}
				if _, _, err := sa.Finish(tr.Cycles); err != nil {
					t.Fatal(err)
				}
				if held := sa.RetainedChunks(); held != 0 {
					t.Fatalf("%d chunks leaked past Finish", held)
				}
			})
		}
	}
}

// TestStreamOverlapValidation pins satellite 2's error contract: an
// explicit overlap smaller than the config's reorder window is rejected
// eagerly — by NewStreamAnalyzer and by AnalyzeWindowed — instead of
// silently clipping producers; a zero overlap derives the margin from the
// reorder window.
func TestStreamOverlapValidation(t *testing.T) {
	bad := WindowOptions{Window: 500, Overlap: 128, ReorderWindow: 256}
	if _, err := NewStreamAnalyzer(bad); err == nil || !strings.Contains(err.Error(), "reorder window") {
		t.Fatalf("NewStreamAnalyzer(overlap < ROB) err = %v, want reorder-window error", err)
	}
	tr := traceFor(t, uarch.Baseline(), "458.sjeng", 2000)
	if _, _, err := AnalyzeWindowed(tr, bad); err == nil || !strings.Contains(err.Error(), "reorder window") {
		t.Fatalf("AnalyzeWindowed(overlap < ROB) err = %v, want reorder-window error", err)
	}

	// Derived margin: ROB 256 needs 256+RefillSlack, above DefaultOverlap.
	if got := RequiredOverlap(256); got != 256+RefillSlack {
		t.Fatalf("RequiredOverlap(256) = %d, want %d", got, 256+RefillSlack)
	}
	// Small ROBs keep the historical default so existing results are
	// unchanged.
	if got := RequiredOverlap(50); got != DefaultOverlap {
		t.Fatalf("RequiredOverlap(50) = %d, want DefaultOverlap", got)
	}
	// An explicit overlap covering the reorder window passes validation.
	ok := WindowOptions{Window: 500, Overlap: 300, ReorderWindow: 256}
	if _, _, err := AnalyzeWindowed(tr, ok); err != nil {
		t.Fatal(err)
	}

	// Derived-margin parity: ReorderWindow-driven options agree between
	// the batch and streaming analyzers.
	derived := WindowOptions{Window: 500, ReorderWindow: 256}
	wantRep, wantSt, err := AnalyzeWindowed(tr, derived)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, gotSt, _ := streamReport(t, tr, derived, 256)
	if !reflect.DeepEqual(gotRep, wantRep) || !reflect.DeepEqual(gotSt, wantSt) {
		t.Fatal("derived-overlap stream/batch mismatch")
	}
}

// TestStreamMisuse covers the stream-order and lifecycle error paths.
func TestStreamMisuse(t *testing.T) {
	tr := traceFor(t, uarch.Baseline(), "401.bzip2", 200)

	// Out-of-order chunk.
	sa, err := NewStreamAnalyzer(WindowOptions{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	c := pipetrace.GetChunk(1)
	c.Records = append(c.Records, tr.Records[5])
	if err := sa.Feed(c); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap Feed err = %v", err)
	}
	if _, _, err := sa.Finish(tr.Cycles); err == nil {
		t.Fatal("Finish after stream gap must fail")
	}

	// Empty stream.
	sa2, err := NewStreamAnalyzer(WindowOptions{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sa2.Finish(0); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Fatalf("empty Finish err = %v", err)
	}

	// Double Finish / Feed after Finish.
	_, _, sa3 := streamReport(t, tr, WindowOptions{Window: 50}, 64)
	if _, _, err := sa3.Finish(tr.Cycles); err == nil {
		t.Fatal("double Finish must fail")
	}
	c2 := pipetrace.GetChunk(1)
	c2.Records = append(c2.Records, tr.Records[0])
	if err := sa3.Feed(c2); err == nil {
		t.Fatal("Feed after Finish must fail")
	}

	// Close is idempotent and safe mid-stream.
	sa4, err := NewStreamAnalyzer(WindowOptions{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	feedTrace(t, sa4, tr, 32)
	sa4.Close()
	sa4.Close()
}
