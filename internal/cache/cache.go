// Package cache models the two-level cache hierarchy of the evaluated
// processor: split first-level instruction and data caches (swept in the
// design space), a unified 8-way 2MB L2, and a fixed-latency DRAM main
// memory (Section 5.1 of the paper).
//
// The model is a timing filter: an access returns the number of cycles
// until data is available. Caches are set-associative with true-LRU
// replacement and are non-blocking only in the sense that the core overlaps
// latencies itself; the cache keeps no MSHR state. This matches the
// fidelity the DEG needs — the D-cache "skewed" edges carry the observed
// access latency, whatever produced it.
package cache

import "fmt"

// Latencies of the fixed parts of the hierarchy, in cycles.
const (
	L1HitLatency = 2  // Table 1: 2-cycle L1 I$ and D$
	L2HitLatency = 12 // typical L2 for the era's 2MB/8-way
	DRAMLatency  = 200
	L2SizeKB     = 2048
	L2Assoc      = 8
	LineBytes    = 64
	lineShift    = 6
)

// Config sizes one level-1 cache.
type Config struct {
	SizeKB int
	Assoc  int
}

// Cache is a set-associative cache with LRU replacement. Way state is
// stored in flat arrays indexed by set*assoc+way — one allocation per
// array instead of four slices per set, and a contiguous scan per lookup.
type Cache struct {
	tags []uint64
	// lru[base+i] is the recency rank of way i in its set (0 = most recent).
	lru   []uint8
	valid []bool
	// pfTag marks lines installed by the prefetcher and not yet demanded
	// (tagged prefetching: the first demand hit re-arms the prefetcher).
	pfTag   []bool
	assoc   int
	setMask uint64

	Accesses uint64
	Misses   uint64
	// HitOnPrefetch reports whether the most recent Access consumed a
	// prefetched line for the first time.
	HitOnPrefetch bool
}

// New builds a cache; size must divide evenly into sets of the given
// associativity.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeKB < 1 || cfg.Assoc < 1 {
		return nil, fmt.Errorf("cache: bad config %+v", cfg)
	}
	lines := cfg.SizeKB * 1024 / LineBytes
	nsets := lines / cfg.Assoc
	if nsets < 1 || nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %dKB/%d-way yields %d sets (must be a power of two >= 1)", cfg.SizeKB, cfg.Assoc, nsets)
	}
	c := &Cache{
		assoc:   cfg.Assoc,
		setMask: uint64(nsets - 1),
		tags:    make([]uint64, nsets*cfg.Assoc),
		lru:     make([]uint8, nsets*cfg.Assoc),
		valid:   make([]bool, nsets*cfg.Assoc),
		pfTag:   make([]bool, nsets*cfg.Assoc),
	}
	// Recency ranks form a permutation 0..assoc-1 within each set; touch
	// preserves that invariant, so they must start distinct.
	for i := range c.lru {
		c.lru[i] = uint8(i % cfg.Assoc)
	}
	return c, nil
}

// Access looks up addr, filling the line on a miss, and reports whether the
// access hit. HitOnPrefetch is set when the hit consumed a prefetched line
// for the first time (the hierarchy re-arms the prefetcher on that signal).
func (c *Cache) Access(addr uint64) bool {
	c.HitOnPrefetch = false
	c.Accesses++
	hit, _ := c.lookup(addr, false)
	return hit
}

// Install fills addr as a prefetch: no statistics, line tagged.
func (c *Cache) Install(addr uint64) {
	c.lookup(addr, true)
}

func (c *Cache) lookup(addr uint64, isPrefetch bool) (hit bool, way int) {
	line := addr >> lineShift
	base := int(line&c.setMask) * c.assoc
	tag := line >> 1 // keep set bits out of the tag for compactness

	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(base, w)
			if !isPrefetch && c.pfTag[base+w] {
				c.pfTag[base+w] = false
				c.HitOnPrefetch = true
			}
			return true, w
		}
	}
	if !isPrefetch {
		c.Misses++
	}
	// Fill the LRU way.
	victim := 0
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] > c.lru[base+victim] {
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.pfTag[base+victim] = isPrefetch
	c.touch(base, victim)
	return false, victim
}

// touch promotes way w of the set at base to most-recently-used.
func (c *Cache) touch(base, w int) {
	old := c.lru[base+w]
	for i := 0; i < c.assoc; i++ {
		if c.lru[base+i] < old {
			c.lru[base+i]++
		}
	}
	c.lru[base+w] = 0
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy bundles L1I, L1D, and the shared L2 with its timing.
type Hierarchy struct {
	L1I, L1D   *Cache
	L2         *Cache
	Prefetches uint64
}

// NewHierarchy builds the full memory system for one design point.
func NewHierarchy(l1i, l1d Config) (*Hierarchy, error) {
	ic, err := New(l1i)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	dc, err := New(l1d)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := New(Config{SizeKB: L2SizeKB, Assoc: L2Assoc})
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{L1I: ic, L1D: dc, L2: l2}, nil
}

// FetchLatency returns the cycles to fetch the instruction line at addr.
// Misses trigger a next-line prefetch (sequential code dominates).
func (h *Hierarchy) FetchLatency(addr uint64) int {
	if h.L1I.Access(addr) {
		if h.L1I.HitOnPrefetch {
			h.prefetch(h.L1I, addr+LineBytes)
		}
		return L1HitLatency
	}
	// The demand L2 access must precede the next-line install so the
	// prefetch cannot perturb this access's hit/miss or LRU outcome.
	lat := L1HitLatency + L2HitLatency
	if !h.L2.Access(addr) {
		lat += DRAMLatency
	}
	h.prefetch(h.L1I, addr+LineBytes)
	return lat
}

// DataLatency returns the cycles for a data access at addr. Stores use the
// same path (no write buffer modelled; the SQ provides the buffering).
// Misses trigger a tagged next-line prefetch, the timing-free equivalent of
// gem5's stride prefetcher for unit-stride streams.
func (h *Hierarchy) DataLatency(addr uint64) int {
	if h.L1D.Access(addr) {
		if h.L1D.HitOnPrefetch {
			h.prefetch(h.L1D, addr+LineBytes)
		}
		return L1HitLatency
	}
	lat := L1HitLatency + L2HitLatency
	if !h.L2.Access(addr) {
		lat += DRAMLatency
	}
	h.prefetch(h.L1D, addr+LineBytes)
	return lat
}

// prefetch installs a line into l1 and the L2 without perturbing the demand
// hit/miss statistics.
func (h *Hierarchy) prefetch(l1 *Cache, addr uint64) {
	l1.Install(addr)
	h.L2.Install(addr)
	h.Prefetches++
}
