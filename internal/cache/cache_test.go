package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SizeKB: 32, Assoc: 2}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{SizeKB: 0, Assoc: 2}, {SizeKB: 32, Assoc: 0}, {SizeKB: 3, Assoc: 7}} {
		if _, err := New(bad); err == nil {
			t.Errorf("expected error for %+v", bad)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	c, _ := New(Config{SizeKB: 16, Assoc: 2})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next line should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("stats %d/%d", c.Accesses, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: hammer three lines mapping to the same set; the least
	// recently used one must be the victim.
	c, _ := New(Config{SizeKB: 16, Assoc: 2}) // 128 sets
	setStride := uint64(128 * LineBytes)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a should have survived (was MRU)")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	c, _ := New(Config{SizeKB: 32, Assoc: 4})
	// Touch 16KB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16*1024; addr += LineBytes {
			c.Access(addr)
		}
	}
	if c.Misses != 16*1024/LineBytes {
		t.Fatalf("misses %d, want only cold misses %d", c.Misses, 16*1024/LineBytes)
	}
}

func TestMissRate(t *testing.T) {
	c, _ := New(Config{SizeKB: 16, Assoc: 2})
	if c.MissRate() != 0 {
		t.Fatal("miss rate before accesses")
	}
	c.Access(0)
	c.Access(0)
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(Config{SizeKB: 32, Assoc: 2}, Config{SizeKB: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x100000)
	// Cold: L1 miss, L2 miss -> DRAM.
	if lat := h.DataLatency(addr); lat != L1HitLatency+L2HitLatency+DRAMLatency {
		t.Fatalf("cold latency %d", lat)
	}
	// Warm: L1 hit.
	if lat := h.DataLatency(addr); lat != L1HitLatency {
		t.Fatalf("warm latency %d", lat)
	}
	// Fetch path mirrors it.
	if lat := h.FetchLatency(0x200000); lat != L1HitLatency+L2HitLatency+DRAMLatency {
		t.Fatalf("cold fetch latency %d", lat)
	}
	if lat := h.FetchLatency(0x200000); lat != L1HitLatency {
		t.Fatalf("warm fetch latency %d", lat)
	}
}

func TestTaggedPrefetchCoversStreams(t *testing.T) {
	h, err := NewHierarchy(Config{SizeKB: 32, Assoc: 2}, Config{SizeKB: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 512 lines at 8-byte stride: after the first miss the tagged
	// next-line prefetcher must hide nearly all subsequent line misses.
	misses := 0
	for addr := uint64(0x100000); addr < 0x100000+512*LineBytes; addr += 8 {
		before := h.L1D.Misses
		h.DataLatency(addr)
		if h.L1D.Misses != before {
			misses++
		}
	}
	if misses > 4 {
		t.Fatalf("streaming misses %d, prefetcher ineffective", misses)
	}
	if h.Prefetches == 0 {
		t.Fatal("prefetcher never fired")
	}
}

func TestAccessesNeverPanicAndStatsMonotone(t *testing.T) {
	c, _ := New(Config{SizeKB: 16, Assoc: 4})
	f := func(addr uint64) bool {
		a0, m0 := c.Accesses, c.Misses
		c.Access(addr)
		return c.Accesses == a0+1 && (c.Misses == m0 || c.Misses == m0+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchDoesNotPerturbStats(t *testing.T) {
	c, _ := New(Config{SizeKB: 16, Assoc: 2})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		c.Install(rng.Uint64() % (1 << 20))
	}
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatalf("Install perturbed stats: %d/%d", c.Accesses, c.Misses)
	}
}
