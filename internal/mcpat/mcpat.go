// Package mcpat is the analytical power and area model standing in for
// McPAT (the paper's Section 5.1 tooling). Structure areas follow
// CACTI-style scaling laws — linear in capacity with superlinear port/width
// terms — and power combines activity-based dynamic energy (driven by the
// simulator's event counters) with leakage proportional to area.
//
// Absolute values are calibrated so the Table 1 baseline lands near the
// paper's reported 0.2027 W and 5.6609 mm²; the DSE only relies on the
// model's *relative* ordering across the design space, which the monotone
// scaling laws guarantee (growing any structure strictly grows area and
// leakage; activity costs grow with the structure accessed).
package mcpat

import (
	"fmt"
	"math"
	"sort"

	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
)

// Area coefficients, mm² per unit of capacity. The width exponent models
// the port growth of multi-issue structures.
const (
	areaPerROBEntry   = 0.0022
	areaPerRFEntry    = 0.0018
	areaPerIQEntry    = 0.0045 // CAM + wakeup logic
	areaPerLSQEntry   = 0.0035 // address CAM
	areaPerFetchQUop  = 0.0008
	areaPerFetchBufB  = 0.00035
	areaPerIntALU     = 0.065
	areaPerIntMultDiv = 0.22
	areaPerFpALU      = 0.30
	areaPerFpMultDiv  = 0.42
	areaPerRdWrPort   = 0.09
	areaPerCacheKB    = 0.031  // L1 SRAM + tags
	areaCacheAssoc    = 0.012  // per extra way: comparators, muxes
	areaPerBPCounter  = 2.2e-6 // 2-bit counters
	areaPerBTBEntry   = 7.5e-6 // tag + target
	areaPerRASEntry   = 4.0e-5
	areaDecodePerWay  = 0.055 // decode/rename slice per pipeline way
	widthPortExponent = 0.75  // RF/ROB port area growth with width
	areaFixed         = 0.40  // pervasive logic: TLBs, PC, bypass, clocking
)

// Dynamic energy coefficients in nanojoules per event, scaled by structure
// size where capacity affects bitline/wordline energy.
const (
	njPerFetch       = 0.011
	njPerDecode      = 0.004
	njPerRenamePer64 = 0.009 // per rename, per 64 RF entries
	njPerIssuePer32  = 0.013 // per issue, per 32 IQ entries (CAM search)
	njPerCommit      = 0.004
	njPerALUOp       = 0.010
	njPerMulDivOp    = 0.036
	njPerFpOp        = 0.030
	njPerFpMulDivOp  = 0.048
	njPerL1PerKB     = 0.00042 // per access, per KB of capacity
	njPerL2Access    = 0.22
	njPerBPLookup    = 0.0045
	njPerMispredict  = 0.35 // squash + refill energy
)

// Leakage: watts per mm² of active silicon, and clock tree watts per
// pipeline way.
const (
	leakageWPerMM2 = 0.019
	clockWPerWay   = 0.014
	clockFrequency = 2.0e9 // Hz; converts energy/cycle to watts
)

// Breakdown itemises area (mm²) and average power (W) per structure group.
type Breakdown struct {
	Name  string
	Area  float64
	Power float64
}

// Result carries the PPA outputs for one (config, workload) evaluation.
type Result struct {
	PowerW  float64
	AreaMM2 float64
	Items   []Breakdown
}

// Area computes the silicon area of a configuration in mm².
func Area(cfg uarch.Config) float64 {
	r := areaBreakdown(cfg)
	var sum float64
	for _, it := range r {
		sum += it.Area
	}
	return sum
}

func areaBreakdown(cfg uarch.Config) []Breakdown {
	w := math.Pow(float64(cfg.Width), widthPortExponent)
	items := []Breakdown{
		{Name: "Frontend", Area: float64(cfg.FetchQueueUops)*areaPerFetchQUop +
			float64(cfg.FetchBufBytes)*areaPerFetchBufB +
			float64(cfg.Width)*areaDecodePerWay},
		{Name: "BranchPred", Area: float64(cfg.LocalPredictor)*areaPerBPCounter*2 +
			float64(cfg.GlobalPredictor)*areaPerBPCounter*2 +
			float64(cfg.BTBEntries)*areaPerBTBEntry +
			float64(cfg.RASEntries)*areaPerRASEntry},
		{Name: "ROB", Area: float64(cfg.ROBEntries) * areaPerROBEntry * w},
		{Name: "IntRF", Area: float64(cfg.IntRF) * areaPerRFEntry * w},
		{Name: "FpRF", Area: float64(cfg.FpRF) * areaPerRFEntry * w},
		{Name: "IQ", Area: float64(cfg.IQEntries) * areaPerIQEntry * w},
		{Name: "LQ", Area: float64(cfg.LQEntries) * areaPerLSQEntry},
		{Name: "SQ", Area: float64(cfg.SQEntries) * areaPerLSQEntry},
		{Name: "FUs", Area: float64(cfg.IntALU)*areaPerIntALU +
			float64(cfg.IntMultDiv)*areaPerIntMultDiv +
			float64(cfg.FpALU)*areaPerFpALU +
			float64(cfg.FpMultDiv)*areaPerFpMultDiv +
			float64(cfg.RdWrPorts)*areaPerRdWrPort},
		{Name: "ICache", Area: float64(cfg.ICacheKB)*areaPerCacheKB +
			float64(cfg.ICacheAssoc)*areaCacheAssoc},
		{Name: "DCache", Area: float64(cfg.DCacheKB)*areaPerCacheKB +
			float64(cfg.DCacheAssoc)*areaCacheAssoc},
		{Name: "Other", Area: areaFixed},
	}
	return items
}

// Evaluate computes power and area for a configuration given the activity
// counters of one simulated workload.
func Evaluate(cfg uarch.Config, st *ooo.Stats) (Result, error) {
	if st == nil || st.Cycles == 0 {
		return Result{}, fmt.Errorf("mcpat: missing or empty statistics")
	}
	items := areaBreakdown(cfg)
	var area float64
	for _, it := range items {
		area += it.Area
	}

	cycles := float64(st.Cycles)
	// Dynamic energy per structure group, in nanojoules.
	dyn := map[string]float64{
		"Frontend": float64(st.Fetched)*njPerFetch + float64(st.Fetched)*njPerDecode +
			float64(st.Committed)*njPerCommit,
		"BranchPred": float64(st.BranchLookups)*njPerBPLookup +
			float64(st.Mispredicts)*njPerMispredict,
		"ROB":   float64(st.Committed) * njPerCommit,
		"IntRF": float64(st.RenameOps) * njPerRenamePer64 * float64(cfg.IntRF) / 64,
		"FpRF":  float64(st.RenameOps) * njPerRenamePer64 * float64(cfg.FpRF) / 64 * 0.4,
		"IQ":    float64(sumIssues(st)) * njPerIssuePer32 * float64(cfg.IQEntries) / 32,
		"LQ":    float64(st.IssuedPerFU[uarch.ResIntALU]) * 0.001,
		"SQ":    float64(st.IssuedPerFU[uarch.ResIntALU]) * 0.001,
		"FUs": float64(st.IssuedPerFU[uarch.ResIntALU])*njPerALUOp +
			float64(st.IssuedPerFU[uarch.ResIntMultDiv])*njPerMulDivOp +
			float64(st.IssuedPerFU[uarch.ResFpALU])*njPerFpOp +
			float64(st.IssuedPerFU[uarch.ResFpMultDiv])*njPerFpMulDivOp,
		"ICache": float64(st.ICacheAccesses)*njPerL1PerKB*float64(cfg.ICacheKB) +
			float64(st.ICacheMisses)*njPerL2Access,
		"DCache": float64(st.DCacheAccesses)*njPerL1PerKB*float64(cfg.DCacheKB) +
			float64(st.DCacheMisses)*njPerL2Access,
		"Other": float64(st.L2Accesses) * njPerL2Access,
	}

	res := Result{AreaMM2: area}
	for _, it := range items {
		// watts = (nJ / cycle) * 1e-9 * f  + leakage + clock share
		dp := dyn[it.Name] / cycles * 1e-9 * clockFrequency
		lp := it.Area * leakageWPerMM2
		if it.Name == "Frontend" {
			lp += float64(cfg.Width) * clockWPerWay
		}
		res.Items = append(res.Items, Breakdown{Name: it.Name, Area: it.Area, Power: dp + lp})
		res.PowerW += dp + lp
	}
	sort.Slice(res.Items, func(i, j int) bool { return res.Items[i].Power > res.Items[j].Power })
	return res, nil
}

func sumIssues(st *ooo.Stats) uint64 {
	var n uint64
	for _, v := range st.IssuedPerFU {
		n += v
	}
	return n
}

// PPA is the scalar trade-off metric the paper reports:
// Perf²/(Power·Area), with Perf measured as IPC.
func PPA(ipc, powerW, areaMM2 float64) float64 {
	if powerW <= 0 || areaMM2 <= 0 {
		return 0
	}
	return ipc * ipc / (powerW * areaMM2)
}
