package mcpat

import (
	"testing"

	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func baselineStats(t testing.TB, cfg uarch.Config) *ooo.Stats {
	t.Helper()
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	core, err := ooo.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBaselineCalibration(t *testing.T) {
	cfg := uarch.Baseline()
	st := baselineStats(t, cfg)
	res, err := Evaluate(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: area=%.4f mm^2 power=%.4f W (paper: 5.6609 / 0.2027)", res.AreaMM2, res.PowerW)
	if res.AreaMM2 < 2 || res.AreaMM2 > 12 {
		t.Errorf("area %.3f far from paper's 5.66", res.AreaMM2)
	}
	if res.PowerW < 0.05 || res.PowerW > 0.8 {
		t.Errorf("power %.3f far from paper's 0.20", res.PowerW)
	}
}

func TestAreaMonotoneInEveryParameter(t *testing.T) {
	s := uarch.StandardSpace()
	base := s.Nearest(uarch.Baseline()) // Table 1 baseline is off-grid (ROB=50)
	a0 := Area(s.Decode(base))
	for p := uarch.Param(0); p < uarch.Param(uarch.NumParams); p++ {
		pt := base
		if !s.Step(&pt, p, 1) {
			continue
		}
		if a1 := Area(s.Decode(pt)); a1 <= a0 {
			t.Errorf("area not increasing in %s: %.4f -> %.4f", p, a0, a1)
		}
	}
}

func TestBreakdownSumsToTotals(t *testing.T) {
	cfg := uarch.Baseline()
	st := baselineStats(t, cfg)
	res, err := Evaluate(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	var area, power float64
	for _, it := range res.Items {
		if it.Area < 0 || it.Power < 0 {
			t.Fatalf("negative breakdown entry %+v", it)
		}
		area += it.Area
		power += it.Power
	}
	if d := area - res.AreaMM2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("breakdown area %v != total %v", area, res.AreaMM2)
	}
	if d := power - res.PowerW; d > 1e-9 || d < -1e-9 {
		t.Fatalf("breakdown power %v != total %v", power, res.PowerW)
	}
}

func TestPowerGrowsWithCapacityAtFixedActivity(t *testing.T) {
	cfg := uarch.Baseline()
	st := baselineStats(t, cfg)
	base, err := Evaluate(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	big := cfg
	big.IntRF = 200
	big.IQEntries = 80
	grown, err := Evaluate(big, st)
	if err != nil {
		t.Fatal(err)
	}
	if grown.PowerW <= base.PowerW {
		t.Fatalf("bigger structures with equal activity must cost power: %v vs %v",
			grown.PowerW, base.PowerW)
	}
	if grown.AreaMM2 <= base.AreaMM2 {
		t.Fatal("bigger structures must cost area")
	}
}

func TestEvaluateRejectsEmptyStats(t *testing.T) {
	if _, err := Evaluate(uarch.Baseline(), nil); err == nil {
		t.Fatal("nil stats accepted")
	}
	if _, err := Evaluate(uarch.Baseline(), &ooo.Stats{}); err == nil {
		t.Fatal("zero-cycle stats accepted")
	}
}

func TestPPAFunction(t *testing.T) {
	if got := PPA(2, 0.5, 4); got != 2.0 {
		t.Fatalf("PPA(2,0.5,4) = %v, want 2", got)
	}
	if PPA(1, 0, 5) != 0 || PPA(1, 5, 0) != 0 {
		t.Fatal("degenerate denominators must yield 0")
	}
}

func TestHigherActivityCostsMorePower(t *testing.T) {
	cfg := uarch.Baseline()
	st := baselineStats(t, cfg)
	busy := *st
	busy.DCacheMisses *= 4
	busy.Mispredicts *= 4
	lazy, err := Evaluate(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Evaluate(cfg, &busy)
	if err != nil {
		t.Fatal(err)
	}
	if hot.PowerW <= lazy.PowerW {
		t.Fatalf("more misses/mispredicts must cost power: %v vs %v", hot.PowerW, lazy.PowerW)
	}
}
