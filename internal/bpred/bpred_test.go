package bpred

import (
	"testing"

	"archexplorer/internal/isa"
)

func newPred(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(Config{LocalEntries: 1024, GlobalEntries: 4096, BTBEntries: 1024, RASEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadSizes(t *testing.T) {
	bad := []Config{
		{LocalEntries: 1000, GlobalEntries: 4096, BTBEntries: 1024, RASEntries: 16},
		{LocalEntries: 1024, GlobalEntries: 0, BTBEntries: 1024, RASEntries: 16},
		{LocalEntries: 1024, GlobalEntries: 4096, BTBEntries: 3, RASEntries: 16},
		{LocalEntries: 1024, GlobalEntries: 4096, BTBEntries: 1024, RASEntries: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

// train runs a branch through predict+train once and reports the
// prediction.
func train(p *Predictor, pc uint64, taken bool, target uint64) Prediction {
	pred := p.Predict(pc, isa.BrCond)
	if pred.Taken != taken || (taken && pred.Target != target) {
		p.Recover(pred.Snap, isa.BrCond, taken)
	}
	p.Train(pc, isa.BrCond, taken, target, pred.Snap.Hist())
	return pred
}

func TestLearnsAlwaysTakenBranch(t *testing.T) {
	p := newPred(t)
	pc, target := uint64(0x1000), uint64(0x2000)
	// Warmup.
	for i := 0; i < 16; i++ {
		train(p, pc, true, target)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		pred := train(p, pc, true, target)
		if pred.Taken && pred.Target == target {
			correct++
		}
	}
	if correct < 98 {
		t.Fatalf("always-taken branch predicted %d/100", correct)
	}
}

func TestLearnsPeriodicPattern(t *testing.T) {
	p := newPred(t)
	pc, target := uint64(0x4000), uint64(0x5000)
	period := 4 // T T T N repeating
	outcome := func(i int) bool { return i%period != period-1 }
	for i := 0; i < 200; i++ {
		train(p, pc, outcome(i), target)
	}
	correct := 0
	for i := 200; i < 400; i++ {
		pred := p.Predict(pc, isa.BrCond)
		want := outcome(i)
		ok := pred.Taken == want && (!want || pred.Target == target)
		if ok {
			correct++
		} else {
			p.Recover(pred.Snap, isa.BrCond, want)
		}
		p.Train(pc, isa.BrCond, want, target, pred.Snap.Hist())
	}
	if correct < 190 {
		t.Fatalf("period-%d branch predicted %d/200 after warmup", period, correct)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := newPred(t)
	callPC := uint64(0x100)
	retPC := uint64(0x900)
	// Warm the BTB for the call target.
	p.Train(callPC, isa.BrCall, true, 0x800, 0)

	correct := 0
	for i := 0; i < 50; i++ {
		p.Predict(callPC, isa.BrCall) // pushes callPC+4
		pred := p.Predict(retPC, isa.BrRet)
		if pred.Taken && pred.Target == callPC+4 {
			correct++
		}
	}
	if correct < 50 {
		t.Fatalf("RAS predicted %d/50 returns", correct)
	}
}

func TestRASDepthOverflowWraps(t *testing.T) {
	p, err := New(Config{LocalEntries: 512, GlobalEntries: 2048, BTBEntries: 512, RASEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Push 4 frames into a 2-entry RAS: the two oldest are lost.
	for i := 0; i < 4; i++ {
		p.Predict(uint64(0x100+16*i), isa.BrCall)
	}
	// The two youngest pop correctly.
	if pred := p.Predict(0x900, isa.BrRet); pred.Target != 0x100+16*3+4 {
		t.Fatalf("first pop got %#x", pred.Target)
	}
	if pred := p.Predict(0x904, isa.BrRet); pred.Target != 0x100+16*2+4 {
		t.Fatalf("second pop got %#x", pred.Target)
	}
	// The next pop has been overwritten by wrap-around; it must NOT
	// return the oldest frame's correct address.
	if pred := p.Predict(0x908, isa.BrRet); pred.Target == 0x100+16*1+4 {
		t.Fatal("2-entry RAS cannot remember 3 frames")
	}
}

func TestBTBMissForcesNotTaken(t *testing.T) {
	p := newPred(t)
	// Saturate toward taken without ever training the BTB target.
	pc := uint64(0x7000)
	for i := 0; i < 8; i++ {
		pred := p.Predict(pc, isa.BrCond)
		p.Train(pc, isa.BrCond, true, 0, pred.Snap.Hist()) // target 0: no BTB fill
	}
	pred := p.Predict(pc, isa.BrCond)
	if pred.Taken {
		t.Fatal("predicted taken without a BTB target to redirect to")
	}
	if p.BTBMisses == 0 {
		t.Fatal("BTB miss counter never incremented")
	}
}

func TestRecoverRestoresHistory(t *testing.T) {
	p := newPred(t)
	h0 := p.GlobalHist()
	pred := p.Predict(0x100, isa.BrCond)
	if p.GlobalHist() == h0<<1 && pred.Taken {
		// speculative update happened; fine either way
	}
	p.Recover(pred.Snap, isa.BrCond, true)
	if p.GlobalHist() != h0<<1|1 {
		t.Fatalf("recover+actual: hist %b, want %b", p.GlobalHist(), h0<<1|1)
	}
}

func TestStatisticsAccumulate(t *testing.T) {
	p := newPred(t)
	for i := 0; i < 10; i++ {
		train(p, 0x10, true, 0x20)
	}
	if p.Lookups != 10 {
		t.Fatalf("lookups %d", p.Lookups)
	}
}
