// Package bpred implements the tournament branch predictor of the baseline
// microarchitecture (Table 1): a local predictor, a global predictor, a
// choice predictor arbitrating between them, a branch target buffer, and a
// return address stack.
//
// The predictor is consulted at fetch and trained at commit time by the
// core model. Speculative state (global history, RAS) is checkpointed at
// prediction and restored on squash, matching the gem5 O3 TournamentBP.
package bpred

import (
	"fmt"

	"archexplorer/internal/isa"
)

// Config sizes the predictor structures. All table sizes must be powers of
// two; the core validates that via uarch.Config.Validate.
type Config struct {
	LocalEntries  int // local history/counter table entries
	GlobalEntries int // global counter table entries (choice table matches)
	BTBEntries    int
	RASEntries    int
}

// counter is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
}

// Predictor is a tournament branch predictor with BTB and RAS.
type Predictor struct {
	cfg Config

	localHist []uint16  // per-PC local history registers
	localCtr  []counter // indexed by local history
	globalCtr []counter // indexed by global history
	choiceCtr []counter // 0..1 prefer local, 2..3 prefer global

	globalHist uint64
	btb        []btbEntry
	ras        []uint64
	rasTop     int // number of valid entries

	// Statistics.
	Lookups, Mispredicts uint64
	BTBMisses            uint64
}

// New constructs a predictor; table sizes must be powers of two.
func New(cfg Config) (*Predictor, error) {
	for _, s := range []struct {
		name string
		v    int
	}{{"LocalEntries", cfg.LocalEntries}, {"GlobalEntries", cfg.GlobalEntries}, {"BTBEntries", cfg.BTBEntries}} {
		if s.v < 2 || s.v&(s.v-1) != 0 {
			return nil, fmt.Errorf("bpred: %s=%d must be a power of two >= 2", s.name, s.v)
		}
	}
	if cfg.RASEntries < 1 {
		return nil, fmt.Errorf("bpred: RASEntries=%d must be >= 1", cfg.RASEntries)
	}
	return &Predictor{
		cfg:       cfg,
		localHist: make([]uint16, cfg.LocalEntries),
		localCtr:  make([]counter, cfg.LocalEntries),
		globalCtr: make([]counter, cfg.GlobalEntries),
		choiceCtr: make([]counter, cfg.GlobalEntries),
		btb:       make([]btbEntry, cfg.BTBEntries),
		ras:       make([]uint64, cfg.RASEntries),
	}, nil
}

// Snapshot captures the speculative predictor state needed to recover from
// a squash: the global history register and the RAS. It is a plain value —
// the single RAS slot a call overwrites is saved inline rather than in an
// allocated copy, keeping the predict path allocation-free.
type Snapshot struct {
	globalHist uint64
	rasTop     int
	rasSaved   uint64 // RAS slot value overwritten by a call's push
	rasValid   bool   // rasSaved holds a value to restore
}

// Hist exposes the global history captured at prediction time; the core
// passes it back to Train so the counters indexed at prediction are the
// ones updated.
func (s Snapshot) Hist() uint64 { return s.globalHist }

// Prediction is the front-end's view of one branch.
type Prediction struct {
	Taken  bool
	Target uint64 // predicted target; 0 when the BTB misses
	Snap   Snapshot
}

func (p *Predictor) localIndex(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.LocalEntries-1))
}

// localCtrIndex selects the local counter from the branch's own history
// register (Alpha 21264 style).
func (p *Predictor) localCtrIndex(_ uint64, hist uint16) int {
	return int(uint64(hist) & uint64(p.cfg.LocalEntries-1))
}

// choiceIndex selects the choice counter by branch PC so the tournament
// learns per-branch which component predicts it better.
func (p *Predictor) choiceIndex(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.GlobalEntries-1))
}

func (p *Predictor) globalIndex() int {
	return int(p.globalHist & uint64(p.cfg.GlobalEntries-1))
}

func (p *Predictor) btbIndex(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BTBEntries-1))
}

// Predict consults the predictor for a branch at fetch time and
// speculatively updates the global history and RAS.
func (p *Predictor) Predict(pc uint64, kind isa.BranchKind) Prediction {
	p.Lookups++
	snap := Snapshot{globalHist: p.globalHist, rasTop: p.rasTop}

	var pred Prediction
	pred.Snap = snap

	switch kind {
	case isa.BrCall:
		pred.Taken = true
		pred.Target = p.btbTarget(pc)
		// Push the return address; wrap like a circular stack.
		pred.Snap.rasSaved = p.ras[p.rasSlot(p.rasTop)]
		pred.Snap.rasValid = true
		p.ras[p.rasSlot(p.rasTop)] = pc + 4
		p.rasTop++
	case isa.BrRet:
		pred.Taken = true
		if p.rasTop > 0 {
			p.rasTop--
			pred.Target = p.ras[p.rasSlot(p.rasTop)]
		} else {
			pred.Target = p.btbTarget(pc)
		}
	case isa.BrJump:
		pred.Taken = true
		pred.Target = p.btbTarget(pc)
	default: // conditional
		li := p.localIndex(pc)
		localPred := p.localCtr[p.localCtrIndex(pc, p.localHist[li])].taken()
		gi := p.globalIndex()
		globalPred := p.globalCtr[gi].taken()
		if p.choiceCtr[p.choiceIndex(pc)].taken() {
			pred.Taken = globalPred
		} else {
			pred.Taken = localPred
		}
		if pred.Taken {
			pred.Target = p.btbTarget(pc)
		}
		// Speculative global history update.
		p.globalHist = p.globalHist<<1 | boolBit(pred.Taken)
	}
	if pred.Taken && pred.Target == 0 {
		// BTB miss on a taken prediction: the front end cannot redirect,
		// so the effective prediction is not-taken (fall through).
		p.BTBMisses++
		pred.Taken = false
	}
	return pred
}

func (p *Predictor) rasSlot(top int) int {
	n := p.cfg.RASEntries
	return ((top % n) + n) % n
}

func (p *Predictor) btbTarget(pc uint64) uint64 {
	e := p.btb[p.btbIndex(pc)]
	if e.valid && e.tag == pc {
		return e.target
	}
	return 0
}

// Recover restores speculative state after a misprediction squash, then
// re-applies the resolved branch outcome to the global history.
func (p *Predictor) Recover(snap Snapshot, kind isa.BranchKind, actualTaken bool) {
	p.globalHist = snap.globalHist
	p.rasTop = snap.rasTop
	if snap.rasValid {
		p.ras[p.rasSlot(snap.rasTop)] = snap.rasSaved
	}
	if kind == isa.BrCond {
		p.globalHist = p.globalHist<<1 | boolBit(actualTaken)
	}
	if kind == isa.BrCall {
		// Re-apply the call's push: the call itself was correctly fetched.
		p.ras[p.rasSlot(p.rasTop)] = 0 // unknown link; will mispredict the ret
		p.rasTop++
	}
}

// Train updates the tables with a resolved branch outcome (commit time).
func (p *Predictor) Train(pc uint64, kind isa.BranchKind, taken bool, target uint64, histAtPredict uint64) {
	if kind == isa.BrCond {
		li := p.localIndex(pc)
		lhist := p.localCtrIndex(pc, p.localHist[li])
		localPred := p.localCtr[lhist].taken()
		gi := int(histAtPredict & uint64(p.cfg.GlobalEntries-1))
		globalPred := p.globalCtr[gi].taken()

		// Choice: strengthen toward whichever component was right.
		if localPred != globalPred {
			ci := p.choiceIndex(pc)
			p.choiceCtr[ci] = p.choiceCtr[ci].update(globalPred == taken)
		}
		p.localCtr[lhist] = p.localCtr[lhist].update(taken)
		p.globalCtr[gi] = p.globalCtr[gi].update(taken)
		p.localHist[li] = p.localHist[li]<<1 | uint16(boolBit(taken))
	}
	if taken && target != 0 {
		idx := p.btbIndex(pc)
		p.btb[idx] = btbEntry{valid: true, tag: pc, target: target}
	}
}

// GlobalHist exposes the current speculative global history (used by the
// core to remember the history at prediction time for training).
func (p *Predictor) GlobalHist() uint64 { return p.globalHist }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
