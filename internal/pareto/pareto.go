// Package pareto implements Pareto dominance, frontier extraction, and
// exact Pareto hypervolume (Equation 3 of the paper) for the
// performance-power-area objective space: performance is maximised while
// power and area are minimised.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Point is one design's PPA outcome.
type Point struct {
	Perf  float64 // IPC, higher is better
	Power float64 // watts, lower is better
	Area  float64 // mm², lower is better
}

// Dominates reports whether p is at least as good as q in every objective
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.Perf < q.Perf || p.Power > q.Power || p.Area > q.Area {
		return false
	}
	return p.Perf > q.Perf || p.Power < q.Power || p.Area < q.Area
}

// BetterEq reports whether p is at least as good as q everywhere.
func (p Point) BetterEq(q Point) bool {
	return p.Perf >= q.Perf && p.Power <= q.Power && p.Area <= q.Area
}

// Frontier returns the non-dominated subset of pts, sorted by decreasing
// performance. Duplicate points are collapsed.
func Frontier(pts []Point) []Point {
	var out []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Drop exact duplicates keeping the first occurrence.
			if j < i && q == p {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Perf != out[j].Perf {
			return out[i].Perf > out[j].Perf
		}
		if out[i].Power != out[j].Power {
			return out[i].Power < out[j].Power
		}
		return out[i].Area < out[j].Area
	})
	return out
}

// Reference is the hypervolume reference point v0; it must be dominated by
// every frontier point (worse in every objective).
type Reference struct {
	Perf  float64 // lower bound on performance
	Power float64 // upper bound on power
	Area  float64 // upper bound on area
}

// StandardReference is the fixed reference point v0 shared by every DSE
// comparison over the Table 4 design space: dominated by any design of
// interest there. The experiment harness, the CLIs, and the telemetry
// layer's running-hypervolume gauge all measure against it, so their
// numbers are directly comparable.
var StandardReference = Reference{Perf: 0.01, Power: 1.5, Area: 25}

// DefaultReference returns a reference point dominated by all pts with a
// small margin.
func DefaultReference(pts []Point) Reference {
	r := Reference{Perf: math.Inf(1), Power: 0, Area: 0}
	for _, p := range pts {
		r.Perf = math.Min(r.Perf, p.Perf)
		r.Power = math.Max(r.Power, p.Power)
		r.Area = math.Max(r.Area, p.Area)
	}
	if math.IsInf(r.Perf, 1) {
		return Reference{}
	}
	r.Perf *= 0.9
	r.Power *= 1.1
	r.Area *= 1.1
	return r
}

// Hypervolume computes the exact 3-objective Pareto hypervolume of pts
// with respect to ref (Equation 3). Points not dominating ref are ignored.
// The implementation transforms to maximisation coordinates and sweeps
// performance slices, accumulating the 2D staircase area of each slice.
func Hypervolume(pts []Point, ref Reference) float64 {
	// Transform to gain coordinates (all >= 0, larger is better).
	var gs []gain
	for _, p := range Frontier(pts) {
		if p.Perf <= ref.Perf || p.Power >= ref.Power || p.Area >= ref.Area {
			continue
		}
		gs = append(gs, gain{p.Perf - ref.Perf, ref.Power - p.Power, ref.Area - p.Area})
	}
	if len(gs) == 0 {
		return 0
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].a > gs[j].a })

	// Sweep a from high to low; between consecutive distinct a values the
	// cross-section is the staircase union of (b,c) rectangles of all
	// points seen so far.
	var hv float64
	var active []gain
	for i := 0; i < len(gs); {
		j := i
		for j < len(gs) && gs[j].a == gs[i].a {
			active = append(active, gs[j])
			j++
		}
		top := gs[i].a
		bottom := 0.0
		if j < len(gs) {
			bottom = gs[j].a
		}
		hv += (top - bottom) * staircaseArea(active)
		i = j
	}
	return hv
}

// gain is a point in maximisation coordinates relative to the reference.
type gain struct{ a, b, c float64 }

// staircaseArea computes the area of the union of the [0,b]x[0,c]
// rectangles of the active points: sort by b descending and accumulate
// strips where c exceeds the running maximum.
func staircaseArea(rects []gain) float64 {
	if len(rects) == 0 {
		return 0
	}
	rs := make([]gain, len(rects))
	copy(rs, rects)
	sort.Slice(rs, func(i, j int) bool { return rs[i].b > rs[j].b })
	var area, cmax float64
	for i := 0; i < len(rs); i++ {
		if rs[i].c <= cmax {
			continue
		}
		width := rs[i].b
		// The strip from the next-lower b boundary... accumulate by
		// integrating height increases: the union area equals
		// sum over points (sorted by b desc) of b_i * (c_i - cmax_so_far).
		area += width * (rs[i].c - cmax)
		cmax = rs[i].c
	}
	return area
}

// Hypervolume2D computes the exact Pareto hypervolume in the
// performance-power plane (the Figure 11 illustration), ignoring area.
func Hypervolume2D(pts []Point, ref Reference) float64 {
	var gs []gain
	for _, p := range Frontier(pts) {
		if p.Perf <= ref.Perf || p.Power >= ref.Power {
			continue
		}
		gs = append(gs, gain{a: 0, b: p.Perf - ref.Perf, c: ref.Power - p.Power})
	}
	return staircaseArea(gs)
}

// Curve returns the hypervolume after each prefix of the evaluation
// sequence: Curve(pts, ref)[i] is the HV of pts[:i+1]. It is non-
// decreasing by construction.
func Curve(pts []Point, ref Reference) []float64 {
	out := make([]float64, len(pts))
	for i := range pts {
		out[i] = Hypervolume(pts[:i+1], ref)
	}
	return out
}

// CurveAt samples a hypervolume curve at the given budgets: result[i] is
// the HV using the first budgets[i] evaluations (clamped to len(pts)).
func CurveAt(pts []Point, ref Reference, budgets []int) []float64 {
	out := make([]float64, len(budgets))
	for i, b := range budgets {
		if b > len(pts) {
			b = len(pts)
		}
		if b < 0 {
			b = 0
		}
		out[i] = Hypervolume(pts[:b], ref)
	}
	return out
}

// String renders a point compactly.
func (p Point) String() string {
	return fmt.Sprintf("(perf=%.3f, power=%.3fW, area=%.2fmm²)", p.Perf, p.Power, p.Area)
}
