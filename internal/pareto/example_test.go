package pareto_test

import (
	"fmt"

	"archexplorer/internal/pareto"
)

// Example computes the frontier and hypervolume of a small design set.
func Example() {
	designs := []pareto.Point{
		{Perf: 1.2, Power: 0.30, Area: 6.0}, // fast but hungry
		{Perf: 0.9, Power: 0.18, Area: 4.5}, // balanced
		{Perf: 0.8, Power: 0.25, Area: 5.5}, // dominated by the balanced one
		{Perf: 0.5, Power: 0.10, Area: 3.0}, // small and cool
	}
	frontier := pareto.Frontier(designs)
	fmt.Println("frontier size:", len(frontier))

	ref := pareto.Reference{Perf: 0.1, Power: 0.5, Area: 10}
	hv := pareto.Hypervolume(designs, ref)
	fmt.Printf("hypervolume: %.3f\n", hv)
	// Output:
	// frontier size: 3
	// hypervolume: 2.064
}
