package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominance(t *testing.T) {
	a := Point{Perf: 1.0, Power: 0.2, Area: 5}
	b := Point{Perf: 0.9, Power: 0.25, Area: 6}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Fatal("no self-domination")
	}
}

func TestDominanceIsStrictPartialOrder(t *testing.T) {
	// Irreflexive and asymmetric under random points.
	f := func(p1, p2, w1, w2, a1, a2 uint8) bool {
		x := Point{Perf: float64(p1), Power: float64(w1), Area: float64(a1)}
		y := Point{Perf: float64(p2), Power: float64(w2), Area: float64(a2)}
		if x.Dominates(x) || y.Dominates(y) {
			return false
		}
		return !(x.Dominates(y) && y.Dominates(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierNonDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []Point
	for i := 0; i < 200; i++ {
		pts = append(pts, Point{Perf: rng.Float64(), Power: rng.Float64(), Area: rng.Float64()})
	}
	fr := Frontier(pts)
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range fr {
		for j, q := range fr {
			if i != j && q.Dominates(p) {
				t.Fatalf("frontier point %v dominated by %v", p, q)
			}
		}
		// Every frontier point must come from pts.
		found := false
		for _, orig := range pts {
			if orig == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("frontier invented point %v", p)
		}
	}
	// Every non-frontier point must be dominated by some frontier point
	// or be a duplicate.
	for _, p := range pts {
		onFront := false
		for _, q := range fr {
			if p == q {
				onFront = true
				break
			}
		}
		if onFront {
			continue
		}
		dominated := false
		for _, q := range fr {
			if q.Dominates(p) || q == p {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("point %v neither on frontier nor dominated", p)
		}
	}
}

func TestHypervolumeSinglePoint(t *testing.T) {
	ref := Reference{Perf: 0, Power: 1, Area: 10}
	p := Point{Perf: 2, Power: 0.5, Area: 5}
	got := Hypervolume([]Point{p}, ref)
	want := 2.0 * 0.5 * 5.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("HV = %v, want %v", got, want)
	}
}

func TestHypervolumeMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := Reference{Perf: 0, Power: 1, Area: 1}
	var pts []Point
	for i := 0; i < 24; i++ {
		pts = append(pts, Point{
			Perf:  rng.Float64(),
			Power: rng.Float64(),
			Area:  rng.Float64(),
		})
	}
	exact := Hypervolume(pts, ref)

	const samples = 400000
	fr := Frontier(pts)
	hits := 0
	for i := 0; i < samples; i++ {
		y := Point{Perf: rng.Float64(), Power: rng.Float64(), Area: rng.Float64()}
		for _, p := range fr {
			if p.Perf >= y.Perf && p.Power <= y.Power && p.Area <= y.Area {
				hits++
				break
			}
		}
	}
	mc := float64(hits) / samples // unit cube volume
	if diff := exact - mc; diff > 0.01 || diff < -0.01 {
		t.Fatalf("exact HV %v vs Monte Carlo %v", exact, mc)
	}
}

func TestHypervolumeMonotoneUnderAddingPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := Reference{Perf: 0, Power: 1, Area: 1}
	var pts []Point
	prev := 0.0
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{Perf: rng.Float64(), Power: rng.Float64(), Area: rng.Float64()})
		hv := Hypervolume(pts, ref)
		if hv < prev-1e-12 {
			t.Fatalf("HV decreased from %v to %v after adding a point", prev, hv)
		}
		prev = hv
	}
}

func TestCurveNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := Reference{Perf: 0, Power: 1, Area: 1}
	var pts []Point
	for i := 0; i < 60; i++ {
		pts = append(pts, Point{Perf: rng.Float64(), Power: rng.Float64(), Area: rng.Float64()})
	}
	c := Curve(pts, ref)
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1]-1e-12 {
			t.Fatalf("curve decreased at %d: %v -> %v", i, c[i-1], c[i])
		}
	}
	at := CurveAt(pts, ref, []int{10, 30, 60, 100})
	if at[2] != c[59] || at[3] != c[59] {
		t.Fatal("CurveAt clamp mismatch")
	}
}

func TestHypervolume2D(t *testing.T) {
	ref := Reference{Perf: 0, Power: 1, Area: 99}
	pts := []Point{
		{Perf: 1, Power: 0.6, Area: 1},
		{Perf: 0.5, Power: 0.2, Area: 1},
	}
	got := Hypervolume2D(pts, ref)
	// Union of [0,1]x[0,0.4] and [0,0.5]x[0,0.8]
	want := 1*0.4 + 0.5*(0.8-0.4)
	if d := got - want; d > 1e-12 || d < -1e-12 {
		t.Fatalf("2D HV %v, want %v", got, want)
	}
}

func TestDefaultReferenceDominated(t *testing.T) {
	pts := []Point{{Perf: 1, Power: 0.3, Area: 4}, {Perf: 2, Power: 0.5, Area: 6}}
	ref := DefaultReference(pts)
	for _, p := range pts {
		if p.Perf <= ref.Perf || p.Power >= ref.Power || p.Area >= ref.Area {
			t.Fatalf("reference %+v not dominated by %v", ref, p)
		}
	}
	if (DefaultReference(nil) != Reference{}) {
		t.Fatal("empty input should yield zero reference")
	}
}
