package calipers

import (
	"testing"

	"archexplorer/internal/ooo"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func traceFor(t testing.TB, name string, n int) *pipetrace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, n)
	if err != nil {
		t.Fatal(err)
	}
	core, err := ooo.New(uarch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func cfg() Config {
	b := uarch.Baseline()
	return Config{
		ROBEntries: b.ROBEntries, IQEntries: b.IQEntries,
		LQEntries: b.LQEntries, SQEntries: b.SQEntries,
		Width: b.Width, RdWrPorts: b.RdWrPorts,
	}
}

func TestBuildAndCriticalPath(t *testing.T) {
	tr := traceFor(t, "444.namd", 2000)
	g, err := Build(tr, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4*len(tr.Records) {
		t.Fatalf("vertices %d", g.NumVertices())
	}
	res, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if res.Length <= 0 || res.Edges == 0 {
		t.Fatalf("degenerate critical path %+v", res)
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Build(&pipetrace.Trace{}, cfg()); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestStaticFormulationMisestimatesRuntime(t *testing.T) {
	// The defining property of the previous formulation: its statically
	// weighted critical path deviates from the actual simulated runtime
	// (Figure 5's error analysis). A faithful reimplementation must show
	// a nonzero error on realistic traces.
	var anyErr bool
	for _, name := range []string{"444.namd", "456.hmmer", "458.sjeng"} {
		tr := traceFor(t, name, 4000)
		g, err := Build(tr, cfg())
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		errPct := 100 * float64(res.Length-tr.Cycles) / float64(tr.Cycles)
		t.Logf("%s: actual %d, estimated %d (%+.2f%%)", name, tr.Cycles, res.Length, errPct)
		if errPct > 2 || errPct < -2 {
			anyErr = true
		}
	}
	if !anyErr {
		t.Error("static formulation suspiciously accurate on every workload")
	}
}

func TestPortAttributionOverestimates(t *testing.T) {
	// Consecutive execute-to-execute chaining double-counts overlapped
	// port usage; the previous formulation must attribute at least as
	// many port cycles as there are memory instructions minus one.
	tr := traceFor(t, "456.hmmer", 3000)
	g, err := Build(tr, cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Count edges tagged with the port resource.
	ports := 0
	for _, e := range g.Edges {
		if e.Res == uarch.ResRdWrPort {
			ports++
		}
	}
	mems := 0
	for i := range tr.Records {
		if tr.Records[i].Class.IsMem() {
			mems++
		}
	}
	if ports != mems-1 {
		t.Fatalf("port edges %d, want one per consecutive memory pair (%d)", ports, mems-1)
	}
}

func TestVertexIDRoundTrip(t *testing.T) {
	v := Vertex(42, SExecute)
	if v.Seq() != 42 || v.Stage() != SExecute {
		t.Fatalf("round trip failed: %d %v", v.Seq(), v.Stage())
	}
	if SExecute.String() != "E" || SFetch.String() != "F" {
		t.Fatal("stage names wrong")
	}
}
