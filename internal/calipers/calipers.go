// Package calipers reimplements the *previous* DEG formulation (Fields et
// al.'s dependence-graph model as used by Calipers, the representative
// baseline of the paper's Section 3) so its failure modes can be measured
// against the new formulation:
//
//  1. Static weights: penalties (misprediction, cache misses) are fixed
//     constants chosen ahead of time, not the actual intervals observed in
//     the microexecution.
//  2. Producer-consumer resource edges: capacity structures contribute
//     edges such as C(i) -> F(i+ROB) regardless of whether the resource was
//     actually exhausted (false dependence).
//  3. Consecutive same-unit execute edges: every pair of consecutive users
//     of a contended unit is connected, double-counting overlapped
//     (concurrent) events.
//
// The model consumes the same committed-instruction stream as the new DEG
// (it can see which branches mispredicted and which accesses missed — that
// information was available to prior work through simulator traces too) but
// follows the previous formulation's static rules for edges and weights.
// Its critical path length therefore deviates from the actual runtime,
// reproducing the Figure 5 error analysis.
package calipers

import (
	"fmt"

	"archexplorer/internal/isa"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
)

// Static penalties of the previous formulation (cycles). These mirror the
// fixed numbers such models hard-code: a uniform branch misprediction
// penalty and uniform cache miss latencies.
const (
	StaticMispredictPenalty = 8
	StaticL1MissPenalty     = 12
	StaticL2MissPenalty     = 200
	StaticFetchWeight       = 1 // consecutive-fetch edge weight per group
)

// Vertex stages of the previous formulation: one fetch, dispatch, execute,
// and commit event per instruction (the classic four-node row).
type Stage uint8

const (
	SFetch Stage = iota
	SDispatch
	SExecute
	SCommit
	numStages
)

var stageNames = [...]string{"F", "D", "E", "C"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// VertexID addresses (seq, stage).
type VertexID int32

// Vertex builds a vertex ID.
func Vertex(seq int, st Stage) VertexID { return VertexID(seq*int(numStages) + int(st)) }

// Seq returns the instruction index.
func (v VertexID) Seq() int { return int(v) / int(numStages) }

// Stage returns the pipeline stage.
func (v VertexID) Stage() Stage { return Stage(int(v) % int(numStages)) }

// Edge is a statically-weighted dependence.
type Edge struct {
	From, To VertexID
	Weight   int64
	Res      uarch.Resource
}

// Graph is the previous-formulation DEG.
type Graph struct {
	N     int
	Edges []Edge
	in    [][]int32
}

// Config carries the structure sizes the static rules need.
type Config struct {
	ROBEntries int
	IQEntries  int
	LQEntries  int
	SQEntries  int
	Width      int
	RdWrPorts  int
}

// Build constructs the previous-formulation graph from a committed pipeline
// trace. Only event *occurrence* (mispredicted? missed?) is taken from the
// trace; weights and structural edges follow the static rules.
func Build(tr *pipetrace.Trace, cfg Config) (*Graph, error) {
	n := len(tr.Records)
	if n == 0 {
		return nil, fmt.Errorf("calipers: empty trace")
	}
	g := &Graph{N: n}
	add := func(from, to VertexID, w int64, res uarch.Resource) {
		if from >= to {
			return
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Weight: w, Res: res})
	}

	var lastPortUser = -1
	for i := range tr.Records {
		rec := &tr.Records[i]

		// Intra-instruction pipeline edges with static latencies.
		add(Vertex(i, SFetch), Vertex(i, SDispatch), 3, uarch.ResNone) // fixed front-end depth
		execLat := rec.ExecLat
		if rec.Class == isa.OpLoad {
			// Static cache penalty chosen by observed miss level.
			switch {
			case rec.DCacheLat > 100:
				execLat += StaticL2MissPenalty
			case rec.DCacheLat > 4:
				execLat += StaticL1MissPenalty
			default:
				execLat += 2
			}
		}
		add(Vertex(i, SDispatch), Vertex(i, SExecute), execLat, uarch.ResDCache)
		add(Vertex(i, SExecute), Vertex(i, SCommit), 1, uarch.ResNone)

		// Consecutive fetch and commit edges (in-order chains).
		if i > 0 {
			wF := int64(0)
			if i%cfg.Width == 0 {
				wF = StaticFetchWeight
			}
			add(Vertex(i-1, SFetch), Vertex(i, SFetch), wF, uarch.ResFrontend)
			add(Vertex(i-1, SCommit), Vertex(i, SCommit), wF, uarch.ResROB)
		}

		// Static misprediction penalty from the branch's execute to the
		// next instruction's fetch.
		if rec.Mispredicted && i+1 < n {
			add(Vertex(i, SExecute), Vertex(i+1, SFetch), StaticMispredictPenalty, uarch.ResBranchPred)
		}

		// Producer-consumer resource edges inserted unconditionally (the
		// false-dependence failure mode): the instruction ROB entries
		// ahead must commit before i can dispatch, etc.
		if j := i - cfg.ROBEntries; j >= 0 {
			add(Vertex(j, SCommit), Vertex(i, SDispatch), 0, uarch.ResROB)
		}
		if j := i - cfg.IQEntries; j >= 0 {
			add(Vertex(j, SExecute), Vertex(i, SDispatch), 0, uarch.ResIQ)
		}

		// True data dependencies with static forwarding latency.
		for _, p := range rec.DataProducers {
			add(Vertex(p, SExecute), Vertex(i, SExecute), 1, uarch.ResRawDep)
		}

		// Read/write port contention: consecutive memory instructions are
		// chained execute-to-execute (the Figure 5(b) overestimation).
		if rec.Class.IsMem() {
			if lastPortUser >= 0 {
				add(Vertex(lastPortUser, SExecute), Vertex(i, SExecute), 1, uarch.ResRdWrPort)
			}
			lastPortUser = i
		}
	}

	g.in = make([][]int32, n*int(numStages))
	for idx := range g.Edges {
		g.in[g.Edges[idx].To] = append(g.in[g.Edges[idx].To], int32(idx))
	}
	return g, nil
}

// Result is the previous formulation's critical-path output.
type Result struct {
	Length     int64 // estimated execution cycles (critical path length)
	DelayByRes [uarch.NumResources]int64
	Edges      int
}

// CriticalPath computes the longest (max-weight) path from the first fetch
// to the last commit; vertex IDs are already a topological order since
// every edge goes from a lower ID to a higher one.
func (g *Graph) CriticalPath() (*Result, error) {
	total := g.N * int(numStages)
	d := make([]int64, total)
	parent := make([]int32, total)
	for i := range parent {
		parent[i] = -1
	}
	for v := 0; v < total; v++ {
		for _, ei := range g.in[v] {
			e := g.Edges[ei]
			if c := d[e.From] + e.Weight; c > d[v] || parent[v] < 0 && c == d[v] {
				d[v] = c
				parent[v] = ei
			}
		}
	}
	res := &Result{}
	end := Vertex(g.N-1, SCommit)
	res.Length = d[end]
	for v := int32(end); v >= 0 && parent[v] >= 0; {
		e := g.Edges[parent[v]]
		if e.Res != uarch.ResNone {
			res.DelayByRes[e.Res] += e.Weight
		}
		res.Edges++
		v = int32(e.From)
	}
	return res, nil
}

// NumVertices returns the vertex count of the previous formulation.
func (g *Graph) NumVertices() int { return g.N * int(numStages) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }
