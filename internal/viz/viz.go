// Package viz provides the small visualisation toolkit the experiment
// harness uses: PCA and t-SNE projections (Figure 1's design-space view)
// and ASCII renderings of scatter plots, curves, and bar charts so every
// figure of the paper can be regenerated on a terminal.
package viz

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// PCA projects rows of x (n × d) onto their top-2 principal components
// using power iteration on the covariance matrix.
func PCA(x [][]float64) [][2]float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	d := len(x[0])

	// Centre.
	mean := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	c := make([][]float64, n)
	for i, row := range x {
		c[i] = make([]float64, d)
		for j, v := range row {
			c[i][j] = v - mean[j]
		}
	}

	// Covariance (d × d).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range c {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] += row[i] * row[j]
			}
		}
	}
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] /= float64(n)
		}
	}

	// Top-2 eigenvectors by power iteration with deflation.
	rng := rand.New(rand.NewSource(1))
	var comps [2][]float64
	for k := 0; k < 2; k++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for it := 0; it < 100; it++ {
			w := make([]float64, d)
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					w[i] += cov[i][j] * v[j]
				}
			}
			// Deflate previously found components.
			for p := 0; p < k; p++ {
				var dot float64
				for j := range w {
					dot += w[j] * comps[p][j]
				}
				for j := range w {
					w[j] -= dot * comps[p][j]
				}
			}
			norm := 0.0
			for _, val := range w {
				norm += val * val
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			for j := range w {
				w[j] /= norm
			}
			v = w
		}
		comps[k] = v
	}

	out := make([][2]float64, n)
	for i, row := range c {
		for k := 0; k < 2; k++ {
			var s float64
			for j := range row {
				s += row[j] * comps[k][j]
			}
			out[i][k] = s
		}
	}
	return out
}

// TSNE embeds rows of x into 2D with a basic exact t-SNE (suitable for the
// few hundred points of Figure 1). Deterministic given the seed.
func TSNE(x [][]float64, perplexity float64, iters int, seed int64) [][2]float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if perplexity <= 0 {
		perplexity = 20
	}
	if iters <= 0 {
		iters = 300
	}

	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := range d2[i] {
			if i == j {
				continue
			}
			var s float64
			for k := range x[i] {
				diff := x[i][k] - x[j][k]
				s += diff * diff
			}
			d2[i][j] = s
		}
	}

	// Conditional probabilities with per-point bandwidth found by binary
	// search on the perplexity.
	p := make([][]float64, n)
	logPerp := math.Log(perplexity)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for it := 0; it < 50; it++ {
			var sum, hsum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				e := math.Exp(-d2[i][j] * beta)
				p[i][j] = e
				sum += e
				hsum += e * d2[i][j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			h := math.Log(sum) + beta*hsum/sum
			if math.Abs(h-logPerp) < 1e-4 {
				break
			}
			if h > logPerp {
				lo = beta
				if hi > 1e19 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := range p[i] {
			sum += p[i][j]
		}
		if sum > 0 {
			for j := range p[i] {
				p[i][j] /= sum
			}
		}
	}
	// Symmetrise.
	pj := make([][]float64, n)
	for i := range pj {
		pj[i] = make([]float64, n)
		for j := range pj[i] {
			pj[i][j] = (p[i][j] + p[j][i]) / (2 * float64(n))
			if pj[i][j] < 1e-12 {
				pj[i][j] = 1e-12
			}
		}
	}

	// Gradient descent with momentum.
	rng := rand.New(rand.NewSource(seed))
	y := make([][2]float64, n)
	vel := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	lr, momentum := 100.0, 0.5
	for it := 0; it < iters; it++ {
		if it == 100 {
			momentum = 0.8
		}
		// Student-t affinities.
		q := make([][]float64, n)
		var qsum float64
		for i := range q {
			q[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				q[i][j] = 1 / (1 + dx*dx + dy*dy)
				qsum += q[i][j]
			}
		}
		exag := 1.0
		if it < 50 {
			exag = 4.0
		}
		for i := 0; i < n; i++ {
			var gx, gy float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				qn := q[i][j] / qsum
				if qn < 1e-12 {
					qn = 1e-12
				}
				mult := (exag*pj[i][j] - qn) * q[i][j]
				gx += mult * (y[i][0] - y[j][0])
				gy += mult * (y[i][1] - y[j][1])
			}
			vel[i][0] = momentum*vel[i][0] - lr*gx
			vel[i][1] = momentum*vel[i][1] - lr*gy
		}
		for i := range y {
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
	}
	return y
}

// Scatter renders points as an ASCII scatter plot of the given size, with
// each point drawn using its rune (later points overwrite earlier ones).
func Scatter(xs, ys []float64, glyphs []rune, width, height int, title string) string {
	if width < 8 {
		width = 60
	}
	if height < 4 {
		height = 20
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for i := range xs {
		cx := int(float64(width-1) * (xs[i] - minX) / (maxX - minX))
		cy := int(float64(height-1) * (ys[i] - minY) / (maxY - minY))
		g := '*'
		if i < len(glyphs) {
			g = glyphs[i]
		}
		grid[height-1-cy][cx] = g
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: [%.4g, %.4g]\n", minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "x: [%.4g, %.4g]\n", minX, maxX)
	return b.String()
}

// Bars renders a labelled horizontal bar chart; values may be negative.
func Bars(labels []string, values []float64, width int, title string) string {
	if width < 10 {
		width = 50
	}
	maxAbs := 0.0
	maxLabel := 0
	for i, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(math.Abs(v) / maxAbs * float64(width))
		bar := strings.Repeat("#", n)
		sign := " "
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s %s%-*s %+.3g\n", maxLabel, labels[i], sign, width, bar, v)
	}
	return b.String()
}

// Curves renders multiple named series sharing an x-axis as aligned rows
// of values (a terminal-friendly stand-in for the paper's line plots).
func Curves(xs []int, series map[string][]float64, order []string, title string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%-16s", "x")
	for _, x := range xs {
		fmt.Fprintf(&b, "%10d", x)
	}
	b.WriteString("\n")
	for _, name := range order {
		fmt.Fprintf(&b, "%-16s", name)
		for _, v := range series[name] {
			fmt.Fprintf(&b, "%10.4f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}
