package viz

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPCARecoversDominantAxis(t *testing.T) {
	// Points along (1, 2, 0) with small noise: PC1 projections must
	// correlate almost perfectly with the latent coordinate.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var latent []float64
	for i := 0; i < 200; i++ {
		s := rng.NormFloat64() * 5
		latent = append(latent, s)
		x = append(x, []float64{
			1*s + rng.NormFloat64()*0.01,
			2*s + rng.NormFloat64()*0.01,
			rng.NormFloat64() * 0.01,
		})
	}
	proj := PCA(x)
	var dot, n1, n2 float64
	for i := range proj {
		dot += proj[i][0] * latent[i]
		n1 += proj[i][0] * proj[i][0]
		n2 += latent[i] * latent[i]
	}
	corr := math.Abs(dot / math.Sqrt(n1*n2))
	if corr < 0.999 {
		t.Fatalf("PC1 correlation %.4f with latent axis", corr)
	}
}

func TestPCAEmpty(t *testing.T) {
	if PCA(nil) != nil {
		t.Fatal("PCA(nil) should be nil")
	}
}

func TestTSNEKeepsClustersApart(t *testing.T) {
	// Two well-separated 5D clusters must stay separated in 2D.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	n := 40
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 10.0
		}
		row := make([]float64, 5)
		for j := range row {
			row[j] = base + rng.NormFloat64()*0.3
		}
		x = append(x, row)
	}
	emb := TSNE(x, 10, 200, 1)
	// Mean intra-cluster distance must be far below inter-cluster.
	dist := func(a, b [2]float64) float64 {
		dx, dy := a[0]-b[0], a[1]-b[1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	var intra, inter float64
	var ni, nx int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(emb[i], emb[j])
			if (i < n/2) == (j < n/2) {
				intra += d
				ni++
			} else {
				inter += d
				nx++
			}
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if inter < 2*intra {
		t.Fatalf("t-SNE merged clusters: intra %.3f inter %.3f", intra, inter)
	}
}

func TestScatterRendersAllPoints(t *testing.T) {
	out := Scatter([]float64{0, 1, 2}, []float64{0, 1, 2}, []rune{'a', 'b', 'c'}, 30, 10, "demo")
	for _, g := range []string{"a", "b", "c", "demo"} {
		if !strings.Contains(out, g) {
			t.Fatalf("scatter missing %q:\n%s", g, out)
		}
	}
}

func TestBarsHandlesNegatives(t *testing.T) {
	out := Bars([]string{"up", "down"}, []float64{5, -3}, 20, "bars")
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "+5") || !strings.Contains(out, "-3") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestCurvesAligned(t *testing.T) {
	out := Curves([]int{10, 20}, map[string][]float64{"a": {1, 2}, "b": {3, 4}}, []string{"a", "b"}, "t")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, two series
		t.Fatalf("unexpected layout:\n%s", out)
	}
}
