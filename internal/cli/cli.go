// Package cli holds the small amount of plumbing the repo's binaries
// share: a consistent "tool: message" error-exit convention and the
// telemetry flag set (-journal, -metrics-addr, -progress) that attaches
// an obs.Recorder to whatever the tool runs.
package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"archexplorer/internal/dse"
	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/par"
	"archexplorer/internal/persist"
)

// tool is the program name prefixed to every error line. Set once by
// Init; defaults to os.Args[0]'s base for tools that skip Init.
var tool = "cli"

// Init records the tool name used in error messages. Call it before
// flag.Parse in every main.
func Init(name string) { tool = name }

// Fatal prints "tool: err" to stderr and exits 1. Use it for runtime
// failures (I/O, simulation errors) — anything that is not a usage
// mistake.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Fatalf is Fatal with formatting.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Check calls Fatal if err is non-nil. It collapses the dominant
// error-handling pattern in the binaries to one line.
func Check(err error) {
	if err != nil {
		Fatal(err)
	}
}

// Usagef prints "tool: message" to stderr and exits 2 — the
// conventional exit code for bad invocations (unknown flag values,
// missing arguments).
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(2)
}

// Telemetry is the shared observability flag set. All three flags
// default off; with all of them off Start returns a nil recorder, and a
// nil *obs.Recorder is inert by contract, so the instrumented code path
// behaves byte-identically to an unwired binary.
type Telemetry struct {
	// Journal is the run-journal JSONL path (-journal).
	Journal string
	// MetricsAddr is the listen address for /metrics, /debug/pprof and
	// /debug/vars (-metrics-addr), e.g. "localhost:9090".
	MetricsAddr string
	// DashAddr is the listen address for the live dashboard (-dash-addr).
	// The dashboard rides the same mux as /metrics, so setting both flags
	// to different addresses is an error; either flag alone serves both.
	DashAddr string
	// Progress is the interval between live summary lines on stderr
	// (-progress), 0 to disable.
	Progress time.Duration
}

// AddTelemetryFlags registers the shared flags on fs (pass flag.CommandLine
// from a main).
func (t *Telemetry) AddTelemetryFlags(fs *flag.FlagSet) {
	fs.StringVar(&t.Journal, "journal", "", "write a JSONL run journal to this file (read it back with obsreport)")
	fs.StringVar(&t.MetricsAddr, "metrics-addr", "", "serve Prometheus /metrics, /debug/pprof and /debug/vars on this address")
	fs.StringVar(&t.DashAddr, "dash-addr", "", "serve the live campaign dashboard on this address at /dash (also exposes /metrics)")
	fs.DurationVar(&t.Progress, "progress", 0, "print a live telemetry summary line at this interval (e.g. 5s); 0 disables")
}

// Start builds the recorder the flags ask for. With every flag off it
// returns (nil, no-op cleanup, nil): downstream code hands the nil
// recorder to evaluators and explorers and pays only nil checks. The
// cleanup closes the journal and stops the progress ticker; call it
// before reading the journal back.
func (t *Telemetry) Start() (*obs.Recorder, func(), error) {
	if t.Journal == "" && t.MetricsAddr == "" && t.DashAddr == "" && t.Progress == 0 {
		return nil, func() {}, nil
	}
	if t.MetricsAddr != "" && t.DashAddr != "" && t.MetricsAddr != t.DashAddr {
		return nil, func() {}, fmt.Errorf("-metrics-addr and -dash-addr name different addresses; they share one server, pass either flag alone")
	}
	rec := obs.New()
	if t.Journal != "" {
		if err := rec.OpenJournal(t.Journal); err != nil {
			return nil, func() {}, err
		}
	}
	serveAddr := t.MetricsAddr
	if serveAddr == "" {
		serveAddr = t.DashAddr
	}
	if serveAddr != "" {
		addr, err := rec.Serve(serveAddr)
		if err != nil {
			rec.Close()
			return nil, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", tool, addr)
		if t.DashAddr != "" {
			fmt.Fprintf(os.Stderr, "%s: live dashboard on http://%s/dash\n", tool, addr)
		}
	}
	if t.Progress > 0 {
		rec.StartProgress(os.Stderr, t.Progress)
	}
	return rec, func() { rec.Close() }, nil
}

// Checkpoint is the shared crash-safety flag set: where to snapshot the
// campaign, how often, and whether to resume a previous run's snapshot.
type Checkpoint struct {
	// Path is the checkpoint file (-checkpoint); empty disables snapshots.
	Path string
	// Every is the minimum interval between snapshots (-checkpoint-every);
	// 0 snapshots after every committed evaluation batch.
	Every time.Duration
	// Resume restores the evaluator from Path before exploring (-resume).
	Resume bool
}

// AddCheckpointFlags registers the checkpoint flags on fs.
func (c *Checkpoint) AddCheckpointFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Path, "checkpoint", "", "snapshot the campaign to this file after evaluation batches (atomic rename)")
	fs.DurationVar(&c.Every, "checkpoint-every", 30*time.Second, "minimum interval between checkpoint snapshots; 0 snapshots every batch")
	fs.BoolVar(&c.Resume, "resume", false, "resume the campaign from -checkpoint if the file exists (replays completed evaluations)")
}

// Wire attaches checkpoint/resume behaviour to the evaluator under the
// campaign identity (method, suite, budget, seed) the snapshot is keyed by.
// Call it after the resilience flags were applied and before the explorer
// runs. With -resume and no existing file the run simply starts fresh.
func (c *Checkpoint) Wire(ev *dse.Evaluator, method, suite string, budget int, seed int64, rec *obs.Recorder) error {
	if c.Resume && c.Path == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	return persist.AttachCheckpoint(ev, persist.CheckpointOptions{
		Path: c.Path, Every: c.Every, Resume: c.Resume,
		Method: method, Suite: suite, Budget: budget, Seed: seed,
		Faults: ev.Faults, Retry: ev.Retry, Obs: rec,
	})
}

// DEG is the shared bottleneck-analysis flag set: the streaming windowed
// analyzer's window size and context margin. Both default to 0, which
// keeps the whole-trace analyzer — byte-identical to an unwired binary.
type DEG struct {
	// Window is the instructions per analysis window (-deg-window); 0
	// analyzes the whole trace in one pass.
	Window int
	// Overlap is the context margin prepended to each window
	// (-deg-overlap); 0 derives it from the evaluated config's reorder
	// window (deg.RequiredOverlap), falling back to deg.DefaultOverlap.
	Overlap int
	// Stream fuses simulation and analysis into the streaming pipeline
	// (-deg-stream): no full trace is materialized and peak memory is
	// O(window + margin). Chunk is the records-per-chunk granularity
	// (-deg-chunk); 0 uses the simulator default.
	Stream bool
	Chunk  int
	// Workers is the windowed analyzer's worker-pool size (-deg-workers):
	// 0 derives it from the machine (GOMAXPROCS), 1 forces the sequential
	// path. Reports are bit-identical at every worker count.
	Workers int
}

// AddDEGFlags registers the windowed-analysis flags on fs.
func (d *DEG) AddDEGFlags(fs *flag.FlagSet) {
	fs.IntVar(&d.Window, "deg-window", 0, "run bottleneck analysis in instruction windows of this size (pooled buffers, O(window) memory); 0 analyzes the whole trace")
	fs.IntVar(&d.Overlap, "deg-overlap", 0, "context margin in instructions prepended to each -deg-window so cross-boundary edges are seen; 0 derives it from the evaluated config's ROB")
	fs.BoolVar(&d.Stream, "deg-stream", false, "stream simulator chunks straight into the windowed analyzer (no materialized trace, O(window+margin) memory; reports identical to the buffered path)")
	fs.IntVar(&d.Chunk, "deg-chunk", 0, "records per chunk of the -deg-stream pipeline; 0 uses the simulator default")
	fs.IntVar(&d.Workers, "deg-workers", 0, "worker goroutines analyzing -deg-window windows in parallel (reports bit-identical at any count); 0 derives the count from GOMAXPROCS, 1 runs sequentially")
}

// ResolvedWorkers is the worker count a tool driving the deg package
// directly (rather than through an Evaluator, which resolves its own)
// should pass: the -deg-workers value, or the machine's compute width
// when the flag was left at 0.
func (d *DEG) ResolvedWorkers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return par.DefaultLimit()
}

// Apply installs the windowed-analysis knobs on the evaluator.
func (d *DEG) Apply(ev *dse.Evaluator) {
	ev.DEGWindow = d.Window
	ev.DEGOverlap = d.Overlap
	ev.DEGStream = d.Stream
	ev.DEGChunk = d.Chunk
	ev.DEGWorkers = d.Workers
}

// Resilience is the shared fault-tolerance flag set: the retry policy for
// transient evaluation failures, the per-stage timeout, and whether
// permanent failures abort the campaign or degrade to journaled skips.
type Resilience struct {
	Retries      int
	RetryBase    time.Duration
	RetryCap     time.Duration
	StageTimeout time.Duration
	SkipFailures bool
}

// AddResilienceFlags registers the resilience flags on fs.
func (r *Resilience) AddResilienceFlags(fs *flag.FlagSet) {
	fs.IntVar(&r.Retries, "retries", fault.DefaultRetry.Max, "retries per evaluation stage for transient failures; 0 disables retrying")
	fs.DurationVar(&r.RetryBase, "retry-base", fault.DefaultRetry.Base, "first retry backoff (doubles per attempt)")
	fs.DurationVar(&r.RetryCap, "retry-cap", fault.DefaultRetry.Cap, "upper bound on the retry backoff")
	fs.DurationVar(&r.StageTimeout, "stage-timeout", 0, "abandon and retry an evaluation stage after this long; 0 disables")
	fs.BoolVar(&r.SkipFailures, "skip-failures", false, "degrade permanently failed evaluations to journaled skips instead of aborting")
}

// Apply installs the policy on the evaluator.
func (r *Resilience) Apply(ev *dse.Evaluator) {
	ev.Retry = fault.Retry{Max: r.Retries, Base: r.RetryBase, Cap: r.RetryCap}
	ev.StageTimeout = r.StageTimeout
	ev.SkipFailures = r.SkipFailures
}

// Sim is the shared simulation flag set: the batched multi-config fast
// path. Off by default; results are bit-identical either way (pinned by
// internal/conformance), so the flag is purely a throughput knob.
type Sim struct {
	// Batch simulates sibling configs of each evaluation batch over one
	// shared instruction stream (-sim-batch, ooo.RunBatch): the trace
	// decode and branch-prediction replay are paid once per workload
	// instead of once per config.
	Batch bool
}

// AddSimFlags registers the simulation flags on fs.
func (s *Sim) AddSimFlags(fs *flag.FlagSet) {
	fs.BoolVar(&s.Batch, "sim-batch", false, "simulate a batch's sibling configs over one shared instruction stream (bit-identical results, amortized decode and branch replay)")
}

// Apply installs the simulation knobs on the evaluator.
func (s *Sim) Apply(ev *dse.Evaluator) {
	ev.SimBatch = s.Batch
}
