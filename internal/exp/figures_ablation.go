package exp

import (
	"fmt"
	"io"

	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
)

func init() {
	register(Experiment{
		Name:  "ablation",
		Paper: "(extension)",
		Desc:  "ArchExplorer design-choice ablations: shrinking, cheap probes, start screening",
		Run:   runAblation,
	})
	register(Experiment{
		Name:  "sec2stats",
		Paper: "Section 2.2",
		Desc:  "Per-workload rename-stall necessity at the baseline (motivating statistics)",
		Run:   runSec2Stats,
	})
}

// runAblation quantifies how much each ArchExplorer design choice
// contributes to the hypervolume-per-budget result: disabling budget
// reclamation (NoShrink), stepping on full evaluations instead of cheap
// probes (NoProbe), and starting walks unscreened (NoScreenStart).
func runAblation(o Options, w io.Writer) error {
	o = o.Defaults()
	suite, err := suiteByName("SPEC06")
	if err != nil {
		return err
	}
	variants := []struct {
		name string
		mk   func(seed int64) *dse.ArchExplorer
	}{
		{"full", func(s int64) *dse.ArchExplorer { return dse.NewArchExplorer(s) }},
		{"-shrink", func(s int64) *dse.ArchExplorer {
			a := dse.NewArchExplorer(s)
			a.NoShrink = true
			return a
		}},
		{"-probes", func(s int64) *dse.ArchExplorer {
			a := dse.NewArchExplorer(s)
			a.NoProbe = true
			return a
		}},
		{"-screening", func(s int64) *dse.ArchExplorer {
			a := dse.NewArchExplorer(s)
			a.NoScreenStart = true
			return a
		}},
		{"topk=1", func(s int64) *dse.ArchExplorer {
			a := dse.NewArchExplorer(s)
			a.TopK = 1
			return a
		}},
	}

	fmt.Fprintf(w, "ArchExplorer ablations on SPEC06-like suite, budget %d sims, %d seed(s)\n\n",
		o.Budget, o.Seeds)
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "variant", "HV@half", "HV@full", "full evals")
	grid, err := exploreGrid(o, len(variants), o.Seeds, func(vi int, seed int64, cellSpan int64) (*dse.Evaluator, error) {
		ev := newEvaluator(o, suite)
		ev.SpanParent = cellSpan
		if err := cellCheckpoint(o, ev, "ablation-"+variants[vi].name, seed); err != nil {
			return nil, err
		}
		if err := variants[vi].mk(seed).Run(ev, o.Budget); err != nil {
			return nil, err
		}
		return ev, nil
	})
	if err != nil {
		return err
	}
	for vi, v := range variants {
		var hvHalf, hvFull float64
		evals := 0
		for _, ev := range grid[vi] {
			hvHalf += pareto.Hypervolume(ev.PointsUpTo(float64(o.Budget/2)), hvReference) / float64(o.Seeds)
			hvFull += pareto.Hypervolume(ev.PointsUpTo(float64(o.Budget)), hvReference) / float64(o.Seeds)
			evals += len(ev.Points())
		}
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %14d\n", v.name, hvHalf, hvFull, evals/o.Seeds)
	}
	return nil
}

// runSec2Stats reproduces the Section 2.2 motivating measurement: the share
// of instructions stalled at rename per blocking resource, at the Table 1
// baseline (the paper reports 25.71%% for 657.xz_s and 18.94%% for
// 625.x264_s stalled on integer registers).
func runSec2Stats(o Options, w io.Writer) error {
	o = o.Defaults()
	cfg := uarch.Baseline()
	names := []string{"657.xz_s", "625.x264_s", "600.perlbench_s", "619.lbm_s", "605.mcf_s", "631.deepsjeng_s"}
	if o.Fast {
		names = names[:3]
	}
	fmt.Fprintf(w, "Section 2.2: rename-stall necessity at the baseline\n\n")
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s %8s %8s\n", "workload", "IntRF", "FpRF", "ROB", "IQ", "LQ", "SQ")
	for _, name := range names {
		wl, err := lookup(name)
		if err != nil {
			return err
		}
		_, st, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		pct := func(r uarch.Resource) float64 {
			return 100 * float64(st.RenameStalls[r]) / float64(st.Committed)
		}
		fmt.Fprintf(w, "%-18s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			name, pct(uarch.ResIntRF), pct(uarch.ResFpRF), pct(uarch.ResROB),
			pct(uarch.ResIQ), pct(uarch.ResLQ), pct(uarch.ResSQ))
	}
	fmt.Fprintf(w, "\npaper: 25.71%% of 657.xz_s and 18.94%% of 625.x264_s instructions\n")
	fmt.Fprintf(w, "stall at rename for physical integer registers.\n")
	return nil
}
