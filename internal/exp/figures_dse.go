package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig10",
		Paper: "Figure 10",
		Desc:  "A bottleneck-removal search path with per-step reports",
		Run:   runFig10,
	})
	register(Experiment{
		Name:  "fig12",
		Paper: "Figure 12",
		Desc:  "Pareto hypervolume versus simulation budget for all DSE methods",
		Run:   runFig12,
	})
	register(Experiment{
		Name:  "table5",
		Paper: "Table 5",
		Desc:  "Simulations to reach a target hypervolume and hypervolume at a fixed budget",
		Run:   runTable5,
	})
	register(Experiment{
		Name:  "fig13",
		Paper: "Figure 13",
		Desc:  "Pareto frontiers and PPA trade-off distributions per method",
		Run:   runFig13,
	})
	register(Experiment{
		Name:  "fig11",
		Paper: "Figure 11",
		Desc:  "Pareto hypervolume illustration in the Perf-Power plane",
		Run:   runFig11,
	})
}

// hvReference is the fixed reference point v0 used by every DSE
// comparison — the shared pareto.StandardReference, so the harness, the
// CLIs, and the telemetry journal all report comparable hypervolumes.
var hvReference = pareto.StandardReference

// methods instantiates the five explorers for a seed.
func methods(seed int64) []dse.Explorer {
	return []dse.Explorer{
		dse.NewArchExplorer(seed),
		&dse.RandomSearch{Seed: seed},
		dse.NewAdaBoostDSE(seed),
		dse.NewBOOMExplorer(seed),
		dse.NewArchRankerDSE(seed),
	}
}

// methodNames lists the display order of Figure 12/13 and Table 5.
var methodNames = []string{"ArchExplorer", "Random", "AdaBoost", "BOOM-Explorer", "ArchRanker"}

// runCampaign executes every method on the suite, averaging HV curves over
// seeds. It returns the curves and the last evaluator per method (for
// frontier plots). The (seed, method) campaigns are independent, so they
// all run concurrently; the reduction below walks the collected grid in the
// original seed-major order, keeping curves, evaluator selection, and the
// progress log identical to the sequential nested loops.
func runCampaign(o Options, suiteName string, w io.Writer) (map[string][]float64, []int, map[string]*dse.Evaluator, error) {
	suite, err := suiteByName(suiteName)
	if err != nil {
		return nil, nil, nil, err
	}
	nb := 6
	budgets := make([]int, nb)
	for i := range budgets {
		budgets[i] = (i + 1) * o.Budget / nb
	}

	grid, err := exploreGrid(o, len(methodNames), o.Seeds, func(m int, seed int64, cellSpan int64) (*dse.Evaluator, error) {
		ev := newEvaluator(o, suite)
		ev.SpanParent = cellSpan
		if err := cellCheckpoint(o, ev, suiteName+"-"+methodNames[m], seed); err != nil {
			return nil, err
		}
		if err := methods(seed)[m].Run(ev, o.Budget); err != nil {
			return nil, err
		}
		return ev, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}

	curves := make(map[string][]float64)
	lastEv := make(map[string]*dse.Evaluator)
	for s := 0; s < o.Seeds; s++ {
		for m, name := range methodNames {
			ev := grid[m][s]
			if curves[name] == nil {
				curves[name] = make([]float64, nb)
			}
			for i, b := range budgets {
				curves[name][i] += pareto.Hypervolume(ev.PointsUpTo(float64(b)), hvReference) / float64(o.Seeds)
			}
			lastEv[name] = ev
			if w != nil {
				st := ev.StageTotals()
				fmt.Fprintf(w, "  [%s seed %d] %s: %.1f sims, %d full evaluations (sim %v, analysis %v)\n",
					suiteName, s+1, name, ev.Sims, len(ev.Points()),
					st.Sim.Round(time.Millisecond), st.DEG.Round(time.Millisecond))
			}
		}
	}
	return curves, budgets, lastEv, nil
}

// runFig10 narrates one ArchExplorer walk: per-step bottleneck report and
// the action taken, mirroring the paper's Figure 10 story.
func runFig10(o Options, w io.Writer) error {
	o = o.Defaults()
	suite := workload.Suite17()
	if o.Fast {
		suite = suite[:4]
	}
	ev := newEvaluator(o, suite)
	pt := ev.Space.Nearest(uarch.Baseline())

	fmt.Fprintf(w, "Figure 10: a bottleneck-removal search path from the Table 1 baseline\n\n")
	for step := 0; step < 5; step++ {
		e, err := ev.Probe(pt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "step %d: %s\n", step, e.Config)
		fmt.Fprintf(w, "  IPC=%.4f power=%.4f W area=%.3f mm2 tradeoff=%.4f\n",
			e.PPA.Perf, e.PPA.Power, e.PPA.Area, e.Tradeoff())
		top := e.Report.Top()
		if len(top) > 4 {
			top = top[:4]
		}
		for _, res := range top {
			fmt.Fprintf(w, "  bottleneck %-11s %5.1f%% of runtime\n", res, 100*e.Report.Contrib[res])
		}
		// Apply one reassignment by hand, exactly as the explorer would.
		moved := false
		for _, res := range top {
			if res == uarch.ResRawDep {
				continue
			}
			for _, p := range uarch.ResourceParams(res) {
				if ev.Space.Step(&pt, p, 1) {
					fmt.Fprintf(w, "  action: grow %s (+1 level on %s)\n\n", res, p)
					moved = true
					break
				}
			}
			if moved {
				break
			}
		}
		if !moved {
			fmt.Fprintf(w, "  action: none available\n\n")
			break
		}
	}
	return nil
}

// runFig12 reproduces the hypervolume-versus-budget curves for both suites.
func runFig12(o Options, w io.Writer) error {
	o = o.Defaults()
	for _, suite := range []string{"SPEC06", "SPEC17"} {
		budget := o.Budget
		if suite == "SPEC17" {
			budget = o.Budget * 14 / 12 // paper budgets scale with suite size
		}
		oo := o
		oo.Budget = budget
		fmt.Fprintf(w, "Figure 12 (%s): Pareto hypervolume vs simulations\n", suite)
		curves, budgets, _, err := runCampaign(oo, suite, nil)
		if err != nil {
			return err
		}
		printCurves(w, budgets, curves)
		fmt.Fprintln(w)
	}
	return nil
}

func printCurves(w io.Writer, budgets []int, curves map[string][]float64) {
	fmt.Fprintf(w, "%-16s", "sims")
	for _, b := range budgets {
		fmt.Fprintf(w, "%10d", b)
	}
	fmt.Fprintln(w)
	for _, name := range methodNames {
		fmt.Fprintf(w, "%-16s", name)
		for _, v := range curves[name] {
			fmt.Fprintf(w, "%10.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// runTable5 reproduces Table 5's two comparisons: the number of simulations
// each method needs to reach a target hypervolume, and the hypervolume each
// reaches at a fixed budget. Targets follow the paper's procedure (chosen
// where the curves begin to converge).
func runTable5(o Options, w io.Writer) error {
	o = o.Defaults()
	for _, suiteName := range []string{"SPEC06", "SPEC17"} {
		suite, err := suiteByName(suiteName)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Table 5 (%s)\n", suiteName)

		// Dense per-method HV traces for threshold crossing.
		type trace struct {
			sims []float64
			hv   []float64
		}
		traces := make(map[string]trace)
		grid, err := exploreGrid(o, len(methodNames), o.Seeds, func(m int, seed int64, cellSpan int64) (*dse.Evaluator, error) {
			ev := newEvaluator(o, suite)
			ev.SpanParent = cellSpan
			if err := cellCheckpoint(o, ev, "table5-"+suiteName+"-"+methodNames[m], seed); err != nil {
				return nil, err
			}
			if err := methods(seed)[m].Run(ev, o.Budget); err != nil {
				return nil, err
			}
			return ev, nil
		})
		if err != nil {
			return err
		}
		for s := 0; s < o.Seeds; s++ {
			for m, name := range methodNames {
				ev := grid[m][s]
				// Sample HV at 24 budget points.
				tr := traces[name]
				if tr.sims == nil {
					tr.sims = make([]float64, 24)
					tr.hv = make([]float64, 24)
					for i := range tr.sims {
						tr.sims[i] = float64((i + 1) * o.Budget / 24)
					}
				}
				for i, b := range tr.sims {
					tr.hv[i] += pareto.Hypervolume(ev.PointsUpTo(b), hvReference) / float64(o.Seeds)
				}
				traces[name] = tr
			}
		}

		// Target HV: where curves converge — 97% of the best final value.
		bestFinal := 0.0
		for _, tr := range traces {
			if v := tr.hv[len(tr.hv)-1]; v > bestFinal {
				bestFinal = v
			}
		}
		target := 0.97 * bestFinal
		fixedBudget := o.Budget * 5 / 6

		// First pass: threshold crossings and fixed-budget HVs.
		simsAt := map[string]float64{}
		hvAt := map[string]float64{}
		for _, name := range methodNames {
			tr := traces[name]
			simsAt[name] = -1
			for i, v := range tr.hv {
				if v >= target {
					simsAt[name] = tr.sims[i]
					break
				}
			}
			for i, b := range tr.sims {
				if b <= float64(fixedBudget) {
					hvAt[name] = tr.hv[i]
				}
			}
		}
		// Second pass: print with ratios against ArchRanker (the paper's
		// Table 5 uses ArchRanker's row as 1.0).
		refSims, refHV := simsAt["ArchRanker"], hvAt["ArchRanker"]
		fmt.Fprintf(w, "  target HV y=%.4f; fixed budget x=%d sims\n", target, fixedBudget)
		fmt.Fprintf(w, "  %-16s %14s %8s %18s %8s\n", "method", "sims@target", "ratio", "HV@budget", "ratio")
		for _, name := range methodNames {
			simsStr, ratioS := "not reached", "-"
			if simsAt[name] >= 0 {
				simsStr = fmt.Sprintf("%.0f", simsAt[name])
				if refSims > 0 {
					ratioS = fmt.Sprintf("%.4f", simsAt[name]/refSims)
				}
			}
			ratioH := "-"
			if refHV > 0 {
				ratioH = fmt.Sprintf("%.4f", hvAt[name]/refHV)
			}
			fmt.Fprintf(w, "  %-16s %14s %8s %18.4f %8s\n", name, simsStr, ratioS, hvAt[name], ratioH)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig13 reproduces the frontier scatter plots (IPC^-1 vs power, IPC^-1
// vs area, area vs power) and the PPA trade-off statistics of each method's
// Pareto designs.
func runFig13(o Options, w io.Writer) error {
	o = o.Defaults()
	curvesOpts := o
	_, _, evs, err := runCampaign(curvesOpts, "SPEC06", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 13 (SPEC06, %d sims): Pareto frontiers per method\n\n", o.Budget)

	type mstat struct {
		name           string
		frontier       []pareto.Point
		avgPPA, maxPPA float64
	}
	var stats []mstat
	for _, name := range methodNames {
		ev := evs[name]
		fr := pareto.Frontier(ev.PointsUpTo(float64(o.Budget)))
		var sum, maxv float64
		for _, p := range fr {
			ppa := p.Perf * p.Perf / (p.Power * p.Area)
			sum += ppa
			if ppa > maxv {
				maxv = ppa
			}
		}
		avg := 0.0
		if len(fr) > 0 {
			avg = sum / float64(len(fr))
		}
		stats = append(stats, mstat{name: name, frontier: fr, avgPPA: avg, maxPPA: maxv})
	}

	fmt.Fprintf(w, "%-16s %9s %12s %12s\n", "method", "frontier", "avg PPA", "best PPA")
	for _, m := range stats {
		fmt.Fprintf(w, "%-16s %9d %12.4f %12.4f\n", m.name, len(m.frontier), m.avgPPA, m.maxPPA)
	}
	fmt.Fprintln(w)

	for _, m := range stats {
		fmt.Fprintf(w, "%s frontier (IPC^-1 / power / area):\n", m.name)
		for _, p := range m.frontier {
			fmt.Fprintf(w, "   %7.3f %8.4f %8.3f\n", 1/p.Perf, p.Power, p.Area)
		}
	}
	return nil
}

// runFig11 illustrates the hypervolume definition on a small 2D example
// with randomly generated outcomes.
func runFig11(_ Options, w io.Writer) error {
	rng := rand.New(rand.NewSource(11))
	var pts []pareto.Point
	for i := 0; i < 12; i++ {
		pts = append(pts, pareto.Point{
			Perf:  0.4 + 0.8*rng.Float64(),
			Power: 0.1 + 0.4*rng.Float64(),
			Area:  5,
		})
	}
	ref := pareto.Reference{Perf: 0.3, Power: 0.6, Area: 10}
	fr := pareto.Frontier(pts)
	sort.Slice(fr, func(i, j int) bool { return fr[i].Perf > fr[j].Perf })
	fmt.Fprintf(w, "Figure 11: Pareto hypervolume in Perf-Power space\n\n")
	fmt.Fprintf(w, "  reference v0 = (perf %.2f, power %.2f)\n  frontier:\n", ref.Perf, ref.Power)
	for _, p := range fr {
		fmt.Fprintf(w, "    perf %.3f  power %.3f\n", p.Perf, p.Power)
	}
	fmt.Fprintf(w, "  PV_v0 = %.4f (area dominated by the frontier above v0)\n",
		pareto.Hypervolume2D(pts, ref))
	return nil
}
