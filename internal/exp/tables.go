package exp

import (
	"fmt"
	"io"

	"archexplorer/internal/mcpat"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "table1",
		Paper: "Table 1",
		Desc:  "Baseline microarchitecture specification and its measured IPC/Power/Area",
		Run:   runTable1,
	})
	register(Experiment{
		Name:  "table3",
		Paper: "Table 3",
		Desc:  "Workload suites with dynamic instruction-mix statistics",
		Run:   runTable3,
	})
	register(Experiment{
		Name:  "table4",
		Paper: "Table 4",
		Desc:  "Microarchitecture design-space specification and size",
		Run:   runTable4,
	})
}

// runTable1 reproduces Table 1: the baseline specification plus measured
// average IPC, power, and area over the SPEC17-like suite (the paper
// evaluates the baseline with SPEC CPU2017 Simpoints).
func runTable1(o Options, w io.Writer) error {
	o = o.Defaults()
	cfg := uarch.Baseline()
	fmt.Fprintf(w, "Table 1: baseline microarchitecture specification\n\n")
	fmt.Fprintf(w, "  Pipeline width               %d\n", cfg.Width)
	fmt.Fprintf(w, "  Fetch buffer (bytes)         %d\n", cfg.FetchBufBytes)
	fmt.Fprintf(w, "  Fetch queue (uops)           %d\n", cfg.FetchQueueUops)
	fmt.Fprintf(w, "  Branch predictor (l/g/c)     %d/%d/%d  RAS %d  BTB %d\n",
		cfg.LocalPredictor, cfg.GlobalPredictor, cfg.GlobalPredictor, cfg.RASEntries, cfg.BTBEntries)
	fmt.Fprintf(w, "  ROB/IQ/LQ/SQ                 %d/%d/%d/%d\n",
		cfg.ROBEntries, cfg.IQEntries, cfg.LQEntries, cfg.SQEntries)
	fmt.Fprintf(w, "  Int RF / Fp RF               %d / %d\n", cfg.IntRF, cfg.FpRF)
	fmt.Fprintf(w, "  FUs (ALU/MulDiv/FpALU/FpMD)  %d/%d/%d/%d  RdWrPort %d\n",
		cfg.IntALU, cfg.IntMultDiv, cfg.FpALU, cfg.FpMultDiv, cfg.RdWrPorts)
	fmt.Fprintf(w, "  L1 I$/D$                     %d-way %dKB / %d-way %dKB\n\n",
		cfg.ICacheAssoc, cfg.ICacheKB, cfg.DCacheAssoc, cfg.DCacheKB)

	var ipcSum, powSum, area float64
	suite := workload.Suite17()
	for _, wl := range suite {
		_, st, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		pw, err := mcpat.Evaluate(cfg, st)
		if err != nil {
			return err
		}
		ipcSum += st.IPC()
		powSum += pw.PowerW
		area = pw.AreaMM2
	}
	n := float64(len(suite))
	fmt.Fprintf(w, "  measured (this repro):  IPC %.4f   Power %.4f W   Area %.4f mm2\n",
		ipcSum/n, powSum/n, area)
	fmt.Fprintf(w, "  paper (gem5+McPAT):     IPC 0.9418  Power 0.2027 W  Area 5.6609 mm2\n")
	return nil
}

// runTable3 reproduces Table 3 with the synthetic workloads' measured
// dynamic characteristics.
func runTable3(o Options, w io.Writer) error {
	o = o.Defaults()
	fmt.Fprintf(w, "Table 3: workloads used for evaluation\n\n")
	fmt.Fprintf(w, "%-18s %-7s %6s %6s %6s %6s %6s %6s\n",
		"workload", "suite", "%load", "%store", "%br", "%fp", "%mul", "taken")
	for _, p := range workload.All() {
		tr, err := workload.CachedTrace(p, o.TraceLen)
		if err != nil {
			return err
		}
		m := workload.Mix(tr)
		tot := float64(m.Total)
		taken := 0.0
		if m.Branches > 0 {
			taken = float64(m.TakenBranches) / float64(m.Branches)
		}
		fmt.Fprintf(w, "%-18s %-7s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			p.Name, p.Suite,
			100*float64(m.Loads)/tot, 100*float64(m.Stores)/tot,
			100*float64(m.Branches)/tot,
			100*float64(m.FpAlu+m.FpMul+m.FpDiv)/tot,
			100*float64(m.IntMul+m.IntDiv)/tot,
			100*taken)
	}
	fmt.Fprintf(w, "\nSPEC06-like: %d workloads, SPEC17-like: %d workloads\n",
		len(workload.Suite06()), len(workload.Suite17()))
	return nil
}

// runTable4 reproduces Table 4: every swept parameter with its candidate
// values and the total design-space size (paper: 8.9649e14).
func runTable4(_ Options, w io.Writer) error {
	s := uarch.StandardSpace()
	fmt.Fprintf(w, "Table 4: microarchitecture design space specification\n\n")
	for p := uarch.Param(0); p < uarch.Param(uarch.NumParams); p++ {
		vs := s.Values(p)
		fmt.Fprintf(w, "  %-12s (%2d values)  %v\n", p, len(vs), vs)
	}
	fmt.Fprintf(w, "\n  total size: %.4e design points\n  (paper states 8.9649e14; its Table 4 ranges multiply to ~1.07e15 — this repo follows the ranges)\n", s.Size())
	return nil
}
