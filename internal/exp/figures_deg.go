package exp

import (
	"fmt"
	"io"
	"time"

	"archexplorer/internal/calipers"
	"archexplorer/internal/deg"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig4",
		Paper: "Figure 4",
		Desc:  "Previous (static) DEG formulation: graph and critical path on a small execution",
		Run:   runFig4,
	})
	register(Experiment{
		Name:  "fig5",
		Paper: "Figure 5",
		Desc:  "Previous DEG error sources: critical-path length error and port-contention overestimation",
		Run:   runFig5,
	})
	register(Experiment{
		Name:  "fig9",
		Paper: "Figures 7-9",
		Desc:  "New DEG formulation + induced DEG walkthrough: critical path matches runtime",
		Run:   runFig9,
	})
	register(Experiment{
		Name:  "graphstats",
		Paper: "Footnote 5",
		Desc:  "Induced-DEG size versus the previous formulation and the longest-path overhead",
		Run:   runGraphStats,
	})
}

func calConfig(cfg uarch.Config) calipers.Config {
	return calipers.Config{
		ROBEntries: cfg.ROBEntries,
		IQEntries:  cfg.IQEntries,
		LQEntries:  cfg.LQEntries,
		SQEntries:  cfg.SQEntries,
		Width:      cfg.Width,
		RdWrPorts:  cfg.RdWrPorts,
	}
}

// runFig4 demonstrates the previous formulation on a small execution.
func runFig4(o Options, w io.Writer) error {
	o = o.Defaults()
	wl, err := workload.ByName("444.namd")
	if err != nil {
		return err
	}
	cfg := uarch.Baseline()
	tr, _, err := simulate(cfg, wl, 400)
	if err != nil {
		return err
	}
	g, err := calipers.Build(tr, calConfig(cfg))
	if err != nil {
		return err
	}
	res, err := g.CriticalPath()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: previous DEG formulation (static weights, producer-consumer edges)\n\n")
	fmt.Fprintf(w, "  vertices %d, edges %d\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(w, "  critical path: %d edges, estimated length %d cycles\n", res.Edges, res.Length)
	fmt.Fprintf(w, "  actual simulated runtime: %d cycles (error %+.2f%%)\n",
		tr.Cycles, 100*float64(res.Length-tr.Cycles)/float64(tr.Cycles))
	return nil
}

// runFig5 quantifies the previous formulation's error sources across
// workloads: static weights misestimate the critical-path length (the paper
// reports a 25.71%% underestimation on 444.namd), and consecutive
// execute-to-execute port edges overestimate read/write-port pressure (the
// paper reports +125%% on 456.hmmer).
func runFig5(o Options, w io.Writer) error {
	o = o.Defaults()
	cfg := uarch.Baseline()
	fmt.Fprintf(w, "Figure 5: previous-DEG error analysis (static assignment, concurrent events)\n\n")
	fmt.Fprintf(w, "%-18s %10s %10s %9s %16s %16s\n", "workload", "actual", "oldDEG", "err%", "oldPortCycles", "newPortCycles")

	names := []string{"444.namd", "456.hmmer", "458.sjeng", "429.mcf", "462.libquantum", "401.bzip2"}
	if o.Fast {
		names = names[:3]
	}
	for _, name := range names {
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		tr, _, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		og, err := calipers.Build(tr, calConfig(cfg))
		if err != nil {
			return err
		}
		ores, err := og.CriticalPath()
		if err != nil {
			return err
		}
		rep, _, _, err := deg.Analyze(tr, deg.Options{})
		if err != nil {
			return err
		}
		errPct := 100 * float64(ores.Length-tr.Cycles) / float64(tr.Cycles)
		fmt.Fprintf(w, "%-18s %10d %10d %8.2f%% %16d %16d\n",
			name, tr.Cycles, ores.Length, errPct,
			ores.DelayByRes[uarch.ResRdWrPort], rep.DelayByRes[uarch.ResRdWrPort])
	}
	fmt.Fprintf(w, "\nThe previous formulation's length errors stem from static penalties and\n")
	fmt.Fprintf(w, "false producer-consumer dependence; its port attribution double-counts\n")
	fmt.Fprintf(w, "overlapped accesses, where the new DEG separates concurrent events.\n")
	return nil
}

// runFig9 walks through the new DEG on a small execution, printing the
// critical path and the telescoping identity the formulation guarantees.
func runFig9(o Options, w io.Writer) error {
	o = o.Defaults()
	wl, err := workload.ByName("458.sjeng")
	if err != nil {
		return err
	}
	cfg := uarch.Baseline()
	tr, _, err := simulate(cfg, wl, 300)
	if err != nil {
		return err
	}
	rep, g, cp, err := deg.Analyze(tr, deg.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figures 7-9: new DEG formulation and induced DEG\n\n")
	fmt.Fprintf(w, "  vertices %d, edges %d by kind %v\n", g.NumVertices, g.NumEdges(), g.EdgesByKind)
	fmt.Fprintf(w, "  critical path: %d vertices, cost %d, span %d of %d runtime cycles\n",
		len(cp.Vertices), cp.Cost, cp.Span, tr.Cycles)

	var sum int64
	for _, e := range cp.Edges {
		sum += e.Delay
	}
	fmt.Fprintf(w, "  telescoping check: sum of path delays = %d = span (exact)\n\n", sum)

	fmt.Fprintf(w, "  first critical-path hops:\n")
	limit := 14
	for i, e := range cp.Edges {
		if i >= limit {
			fmt.Fprintf(w, "    ... (%d more)\n", len(cp.Edges)-limit)
			break
		}
		fmt.Fprintf(w, "    %s(I%d) -> %s(I%d)  %-10s delay %d  (%s)\n",
			e.From.Stage(), e.From.Seq(), e.To.Stage(), e.To.Seq(), e.Kind, e.Delay, e.Res)
	}
	fmt.Fprintf(w, "\n%s", rep)
	return nil
}

// runGraphStats reproduces footnote 5: the induced DEG versus the previous
// formulation in vertices/edges (paper: +39.59%% vertices, -51.72%% edges on
// SPEC17), and the longest-path construction cost as a share of simulation
// runtime (paper: 2.24%%).
func runGraphStats(o Options, w io.Writer) error {
	o = o.Defaults()
	cfg := uarch.Baseline()
	suite := workload.Suite17()
	if o.Fast {
		suite = suite[:4]
	}
	var vNew, eNew, vOld, eOld int
	var simTime, pathTime time.Duration
	for _, wl := range suite {
		stream, err := workload.CachedTrace(wl, o.TraceLen)
		if err != nil {
			return err
		}
		t0 := time.Now()
		tr, _, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		simTime += time.Since(t0)
		_ = stream

		t1 := time.Now()
		g, err := deg.Build(tr, deg.Options{})
		if err != nil {
			return err
		}
		if _, err := g.Construct(); err != nil {
			return err
		}
		pathTime += time.Since(t1)
		vNew += g.NumVertices
		eNew += g.NumEdges()

		og, err := calipers.Build(tr, calConfig(cfg))
		if err != nil {
			return err
		}
		vOld += og.NumVertices()
		eOld += og.NumEdges()
	}
	fmt.Fprintf(w, "Footnote 5: graph statistics over %d SPEC17-like workloads\n\n", len(suite))
	fmt.Fprintf(w, "  induced DEG:   %8d vertices  %8d edges\n", vNew, eNew)
	fmt.Fprintf(w, "  previous DEG:  %8d vertices  %8d edges\n", vOld, eOld)
	fmt.Fprintf(w, "  delta:         %+7.2f%% vertices  %+7.2f%% edges  (paper: +39.59%% / -51.72%%)\n",
		100*float64(vNew-vOld)/float64(vOld), 100*float64(eNew-eOld)/float64(eOld))
	fmt.Fprintf(w, "  graph build + longest path: %v versus %v simulation (%.2f%%; paper: 2.24%%)\n",
		pathTime.Round(time.Millisecond), simTime.Round(time.Millisecond),
		100*float64(pathTime)/float64(simTime))
	return nil
}
