package exp

import (
	"fmt"
	"io"

	"archexplorer/internal/deg"
	"archexplorer/internal/interval"
	"archexplorer/internal/uarch"
)

func init() {
	register(Experiment{
		Name:  "cpistack",
		Paper: "Section 2.3",
		Desc:  "Interval (stall) analysis versus critical-path bottleneck attribution",
		Run:   runCPIStack,
	})
}

// runCPIStack contrasts the classic per-cycle stall accounting with the
// DEG's critical-path attribution on the same executions. The paper's
// Section 2.3 argument is visible directly: interval analysis blames the
// symptom at the ROB head (e.g. "memory"), while the critical path blames
// the resource whose shortage keeps those latencies from overlapping
// (e.g. the integer register file that caps the instruction window).
func runCPIStack(o Options, w io.Writer) error {
	o = o.Defaults()
	cfg := uarch.Baseline()
	names := []string{"458.sjeng", "429.mcf", "444.namd", "462.libquantum"}
	if o.Fast {
		names = names[:2]
	}
	for _, name := range names {
		wl, err := lookup(name)
		if err != nil {
			return err
		}
		tr, _, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		stack, err := interval.Analyze(tr)
		if err != nil {
			return err
		}
		rep, _, _, err := deg.Analyze(tr, deg.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s ==\n", name)
		fmt.Fprintf(w, "interval analysis (per-cycle head-of-ROB accounting):\n%s\n", stack)
		fmt.Fprintf(w, "critical-path bottleneck attribution (this paper's method):\n%s\n", rep)
	}
	return nil
}
