package exp

import (
	"fmt"
	"io"

	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
)

func init() {
	register(Experiment{
		Name:  "calipersdse",
		Paper: "Section 6.2",
		Desc:  "DSE driven by the new DEG versus the previous (Calipers) formulation",
		Run:   runCalipersDSE,
	})
}

// runCalipersDSE runs the identical bottleneck-removal loop twice — once
// guided by the new DEG's attribution and once by the previous static
// formulation's — isolating how much the formulation itself is worth. The
// old formulation's double-counted, statically weighted contributions
// misrank bottlenecks, so its walks fix the wrong structures.
func runCalipersDSE(o Options, w io.Writer) error {
	o = o.Defaults()
	suite, err := suiteByName("SPEC06")
	if err != nil {
		return err
	}
	budgets := []int{o.Budget / 3, 2 * o.Budget / 3, o.Budget}
	fmt.Fprintf(w, "Section 6.2: identical DSE loop, different dependence-graph formulations\n\n")
	fmt.Fprintf(w, "%-22s", "analysis")
	for _, b := range budgets {
		fmt.Fprintf(w, "  HV@%-6d", b)
	}
	fmt.Fprintln(w)
	variants := []struct {
		name        string
		useCalipers bool
	}{
		{"new DEG (this paper)", false},
		{"previous DEG", true},
	}
	grid, err := exploreGrid(o, len(variants), o.Seeds, func(vi int, seed int64, cellSpan int64) (*dse.Evaluator, error) {
		ev := newEvaluator(o, suite)
		ev.SpanParent = cellSpan
		ev.UseCalipers = variants[vi].useCalipers
		if err := cellCheckpoint(o, ev, fmt.Sprintf("calipersdse-v%d", vi), seed); err != nil {
			return nil, err
		}
		if err := dse.NewArchExplorer(seed).Run(ev, o.Budget); err != nil {
			return nil, err
		}
		return ev, nil
	})
	if err != nil {
		return err
	}
	for vi, variant := range variants {
		hv := make([]float64, len(budgets))
		for _, ev := range grid[vi] {
			for i, b := range budgets {
				hv[i] += pareto.Hypervolume(ev.PointsUpTo(float64(b)), hvReference) / float64(o.Seeds)
			}
		}
		fmt.Fprintf(w, "%-22s", variant.name)
		for _, v := range hv {
			fmt.Fprintf(w, "  %9.4f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}
