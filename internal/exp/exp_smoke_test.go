package exp

import (
	"bytes"
	"testing"
)

func TestAllExperimentsRunFast(t *testing.T) {
	for _, e := range List() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Options{Fast: true, Budget: 60, Samples: 20, Seeds: 1}, &buf); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
			t.Logf("%s: %d bytes", e.Name, buf.Len())
		})
	}
}

func TestRegistry(t *testing.T) {
	list := List()
	if len(list) < 15 {
		t.Fatalf("only %d experiments registered", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatal("List not sorted")
		}
	}
	for _, e := range list {
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %q missing metadata", e.Name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	e, err := Get("table1")
	if err != nil || e.Name != "table1" {
		t.Fatalf("Get(table1): %v %v", e, err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.TraceLen == 0 || o.Budget == 0 || o.Seeds == 0 || o.Samples == 0 {
		t.Fatalf("defaults incomplete: %+v", o)
	}
	fast := Options{Fast: true, Budget: 10000}.Defaults()
	if fast.Budget > 180 || fast.Seeds != 1 {
		t.Fatalf("fast mode did not shrink: %+v", fast)
	}
}
