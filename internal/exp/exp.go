// Package exp is the experiment harness: one registered runner per table
// and figure of the paper's evaluation, each of which regenerates the
// corresponding rows/series from this repo's simulator and models. The
// cmd/experiments binary and the repository-root benchmarks are thin
// wrappers around this registry.
package exp

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"archexplorer/internal/dse"
	"archexplorer/internal/fault"
	"archexplorer/internal/obs"
	"archexplorer/internal/ooo"
	"archexplorer/internal/par"
	"archexplorer/internal/persist"
	"archexplorer/internal/pipetrace"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// Options scales experiments between quick smoke runs and full
// reproductions.
type Options struct {
	// TraceLen is the instruction count of each full workload evaluation.
	TraceLen int
	// Budget is the simulation budget for DSE experiments (in full
	// (config, workload) simulations).
	Budget int
	// Seeds is how many seeds DSE comparisons average over.
	Seeds int
	// Samples is the design count for sampling experiments (Figure 1).
	Samples int
	// Parallelism bounds each evaluator's concurrent (config, workload)
	// simulations: 0 (the default) shares one GOMAXPROCS-sized pool across
	// every concurrently running evaluation, 1 forces fully sequential
	// simulation. Results are identical at any setting; only wall-clock
	// changes.
	Parallelism int
	// Obs, when non-nil, receives telemetry from every evaluator the
	// harness builds plus grid-progress events as campaign cells finish.
	// Results are identical with or without it. Note that a grid fans
	// multiple evaluators out concurrently, so a shared journal interleaves
	// their (individually deterministic) event streams.
	Obs *obs.Recorder
	// SpanParent, when nonzero, is the campaign span id grid-cell spans
	// parent to (see obs.Recorder.CampaignSpan), so the self-DEG analysis
	// sees one tree per run rather than a forest of cells.
	SpanParent int64
	// Progress, when non-nil, receives a one-line note as each campaign
	// grid cell completes (live visibility into multi-minute fan-outs).
	Progress io.Writer
	// Fast shrinks everything for smoke tests and benchmarks.
	Fast bool

	// CheckpointDir, when set, gives every campaign grid cell its own
	// crash-safe snapshot file <dir>/<cell>-s<seed>.json; with Resume set a
	// re-run replays whatever those snapshots already hold, so a killed
	// multi-hour fan-out picks up where it died.
	CheckpointDir string
	// CheckpointEvery throttles per-cell snapshots (0 = every batch).
	CheckpointEvery time.Duration
	// Resume restores each cell from its snapshot when one exists.
	Resume bool

	// DEGWindow and DEGOverlap switch every evaluator the harness builds
	// to windowed bottleneck analysis (see dse.Evaluator); 0 keeps the
	// whole-trace analyzer. DEGStream additionally fuses simulation and
	// analysis into the streaming pipeline, DEGChunk setting its chunk
	// granularity.
	DEGWindow  int
	DEGOverlap int
	DEGStream  bool
	DEGChunk   int

	// SimBatch turns on the batched multi-config simulation fast path in
	// every evaluator the harness builds (see dse.Evaluator.SimBatch);
	// results are bit-identical either way.
	SimBatch bool

	// Retry, StageTimeout, and SkipFailures are the evaluator resilience
	// policy applied to every evaluator the harness builds (see dse).
	Retry        fault.Retry
	StageTimeout time.Duration
	SkipFailures bool
	// Faults is the injectable failure plan, for the fault-tolerance tests.
	Faults *fault.Plan
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.TraceLen == 0 {
		o.TraceLen = 4000
	}
	if o.Budget == 0 {
		o.Budget = 720
	}
	if o.Seeds == 0 {
		o.Seeds = 2
	}
	if o.Samples == 0 {
		o.Samples = 120
	}
	if o.Fast {
		o.TraceLen = 2000
		if o.Budget > 180 {
			o.Budget = 180
		}
		o.Seeds = 1
		if o.Samples > 40 {
			o.Samples = 40
		}
	}
	return o
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	Name  string
	Paper string // which table/figure of the paper it regenerates
	Desc  string
	Run   func(o Options, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic("exp: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

// Get returns a registered experiment.
func Get(name string) (Experiment, error) {
	e, ok := registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (use List)", name)
	}
	return e, nil
}

// List returns all experiments sorted by name.
func List() []Experiment {
	var out []Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// newEvaluator builds a standard-space evaluator wired with the options'
// parallelism and telemetry recorder, so every experiment's evaluations
// share the same fan-out policy and observability sink.
func newEvaluator(o Options, suite []workload.Profile) *dse.Evaluator {
	ev := dse.NewEvaluator(uarch.StandardSpace(), suite, o.TraceLen)
	ev.Parallelism = o.Parallelism
	ev.Obs = o.Obs
	ev.Faults = o.Faults
	ev.Retry = o.Retry
	ev.StageTimeout = o.StageTimeout
	ev.SkipFailures = o.SkipFailures
	ev.DEGWindow = o.DEGWindow
	ev.DEGOverlap = o.DEGOverlap
	ev.DEGStream = o.DEGStream
	ev.DEGChunk = o.DEGChunk
	ev.SimBatch = o.SimBatch
	return ev
}

// cellCheckpoint wires checkpoint/resume onto one grid cell's evaluator,
// naming the snapshot after the cell and seed so independent cells never
// clobber each other. A no-op without a CheckpointDir.
func cellCheckpoint(o Options, ev *dse.Evaluator, cell string, seed int64) error {
	if o.CheckpointDir == "" {
		return nil
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, cell)
	return persist.AttachCheckpoint(ev, persist.CheckpointOptions{
		Path:   filepath.Join(o.CheckpointDir, fmt.Sprintf("%s-s%d.json", slug, seed)),
		Every:  o.CheckpointEvery,
		Resume: o.Resume,
		Method: cell, Budget: o.Budget, Seed: seed,
		Faults: o.Faults, Retry: o.Retry, Obs: o.Obs,
	})
}

// exploreGrid runs a variants × seeds grid of independent explorations
// concurrently and collects the evaluators into [variant][seed-1] slots.
// The grid goroutines only coordinate — the simulations inside each
// exploration are what occupy the shared compute pool — so the grid itself
// is unbounded. Slot collection keeps downstream reductions (curve
// averaging, table rows) in the same deterministic order as the nested
// sequential loops this replaces; errors surface lowest-index first. As
// cells finish, a progress line goes to o.Progress and a grid event to the
// recorder (in completion order — progress is live telemetry, not part of
// the deterministic accounting stream).
// Each cell also gets its own campaign-kind span ("cell-v<variant>-s<seed>"),
// opened and emitted from the cell's goroutine — like GridProgress, cell
// spans land in the journal in completion order, while the span tree inside
// each cell stays deterministic.
func exploreGrid(o Options, variants, seeds int, run func(variant int, seed int64, cellSpan int64) (*dse.Evaluator, error)) ([][]*dse.Evaluator, error) {
	out := make([][]*dse.Evaluator, variants)
	for v := range out {
		out[v] = make([]*dse.Evaluator, seeds)
	}
	n := variants * seeds
	var done atomic.Int64
	start := time.Now()
	err := par.ForEach(n, n, func(i int) error {
		v, s := i/seeds, i%seeds
		var cellSpan, cellStart int64
		if o.Obs.JournalEnabled() {
			cellSpan = o.Obs.NextSpan()
			cellStart = o.Obs.Clock()
		}
		if o.Obs.SpansActive() {
			defer o.Obs.TrackSpan(obs.SpanCampaign, fmt.Sprintf("cell-v%d-s%d", v, s+1), "", 0)()
		}
		ev, err := run(v, int64(s+1), cellSpan)
		if err != nil {
			return err
		}
		if cellSpan != 0 {
			o.Obs.Emit(&obs.SpanEvent{
				Span: cellSpan, Parent: o.SpanParent, SpanKind: obs.SpanCampaign,
				Name:    fmt.Sprintf("cell-v%d-s%d", v, s+1),
				StartNS: cellStart, DurNS: o.Obs.Clock() - cellStart,
			})
		}
		out[v][s] = ev
		k := done.Add(1)
		o.Obs.Counter(obs.MetricCampaignsDone).Inc()
		o.Obs.Emit(&obs.GridProgress{
			Variant: v, Seed: int64(s + 1), Done: int(k), Total: n, Sims: ev.Sims,
		})
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "  progress: campaign %d/%d done (variant %d, seed %d, %.1f sims, %v elapsed)\n",
				k, n, v, s+1, ev.Sims, time.Since(start).Round(time.Millisecond))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// simulate runs one config on one workload and returns the trace + stats.
func simulate(cfg uarch.Config, wl workload.Profile, n int) (*pipetrace.Trace, *ooo.Stats, error) {
	stream, err := workload.CachedTrace(wl, n)
	if err != nil {
		return nil, nil, err
	}
	core, err := ooo.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return core.Run(stream)
}

// suiteByName maps "SPEC06"/"SPEC17" to workload profiles.
func suiteByName(name string) ([]workload.Profile, error) {
	switch name {
	case "SPEC06":
		return workload.Suite06(), nil
	case "SPEC17":
		return workload.Suite17(), nil
	default:
		return nil, fmt.Errorf("exp: unknown suite %q", name)
	}
}

// lookup finds a workload profile by name.
func lookup(name string) (workload.Profile, error) {
	return workload.ByName(name)
}
