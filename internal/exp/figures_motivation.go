package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"archexplorer/internal/mcpat"
	"archexplorer/internal/par"
	"archexplorer/internal/uarch"
	"archexplorer/internal/viz"
	"archexplorer/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig1",
		Paper: "Figure 1",
		Desc:  "Design-space PPA landscape for 458.sjeng, t-SNE projected to 2D",
		Run:   runFig1,
	})
	register(Experiment{
		Name:  "fig2",
		Paper: "Figure 2",
		Desc:  "Doubling each baseline parameter: Perf/Power/Area/PPA deltas",
		Run:   runFig2,
	})
	register(Experiment{
		Name:  "fig3",
		Paper: "Figure 3",
		Desc:  "Stepwise necessity-guided manual search from the baseline",
		Run:   runFig3,
	})
}

// evalOn evaluates one config on a suite, returning mean IPC, mean power,
// and area. The per-workload runs are independent, so they fan out under
// the given parallelism bound (0 defaults to GOMAXPROCS, 1 is sequential);
// the sums reduce in suite order, so the result is identical either way.
func evalOn(cfg uarch.Config, suite []workload.Profile, traceLen, parallelism int) (ipc, pow, area float64, err error) {
	type slot struct{ ipc, pow, area float64 }
	slots := make([]slot, len(suite))
	err = par.ForEach(len(suite), parallelism, func(i int) error {
		_, st, e := simulate(cfg, suite[i], traceLen)
		if e != nil {
			return e
		}
		pw, e := mcpat.Evaluate(cfg, st)
		if e != nil {
			return e
		}
		slots[i] = slot{ipc: st.IPC(), pow: pw.PowerW, area: pw.AreaMM2}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, s := range slots {
		ipc += s.ipc
		pow += s.pow
		area = s.area
	}
	n := float64(len(suite))
	return ipc / n, pow / n, area, nil
}

// runFig1 samples the design space, evaluates each point on 458.sjeng, and
// renders t-SNE-projected performance, power, and area landscapes.
func runFig1(o Options, w io.Writer) error {
	o = o.Defaults()
	wl, err := workload.ByName("458.sjeng")
	if err != nil {
		return err
	}
	s := uarch.StandardSpace()
	rng := rand.New(rand.NewSource(458))

	// The rng draw order defines the sample set, so draw every point up
	// front, then evaluate the samples concurrently into index-aligned
	// slots — the figures come out identical to the sequential loop.
	pts := make([]uarch.Point, o.Samples)
	for i := range pts {
		pts[i] = s.Random(rng)
	}
	feats := make([][]float64, o.Samples)
	perf := make([]float64, o.Samples)
	pow := make([]float64, o.Samples)
	area := make([]float64, o.Samples)
	err = par.ForEach(o.Samples, o.Parallelism, func(i int) error {
		cfg := s.Decode(pts[i])
		_, st, err := simulate(cfg, wl, o.TraceLen)
		if err != nil {
			return err
		}
		pwm, err := mcpat.Evaluate(cfg, st)
		if err != nil {
			return err
		}
		f := make([]float64, uarch.NumParams)
		for p := 0; p < uarch.NumParams; p++ {
			f[p] = float64(pts[i][p]) / float64(s.Levels(uarch.Param(p))-1)
		}
		feats[i] = f
		perf[i] = st.IPC()
		pow[i] = pwm.PowerW
		area[i] = pwm.AreaMM2
		return nil
	})
	if err != nil {
		return err
	}

	emb := viz.TSNE(feats, 15, 250, 1)
	xs := make([]float64, len(emb))
	ys := make([]float64, len(emb))
	for i, e := range emb {
		xs[i], ys[i] = e[0], e[1]
	}
	for _, panel := range []struct {
		name string
		vals []float64
	}{{"(a) performance (IPC)", perf}, {"(b) power (W)", pow}, {"(c) area (mm2)", area}} {
		glyphs := quantileGlyphs(panel.vals)
		fmt.Fprintf(w, "%s\n", viz.Scatter(xs, ys, glyphs, 64, 16,
			"Figure 1"+panel.name+"  [. low  - mid  + high  # top quartile]"))
	}
	fmt.Fprintf(w, "IPC range [%.3f, %.3f]; power range [%.3f, %.3f] W; area range [%.2f, %.2f] mm2\n",
		minOf(perf), maxOf(perf), minOf(pow), maxOf(pow), minOf(area), maxOf(area))
	return nil
}

func quantileGlyphs(vals []float64) []rune {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	q := func(f float64) float64 { return sorted[int(f*float64(len(sorted)-1))] }
	q1, q2, q3 := q(0.25), q(0.5), q(0.75)
	out := make([]rune, len(vals))
	for i, v := range vals {
		switch {
		case v <= q1:
			out[i] = '.'
		case v <= q2:
			out[i] = '-'
		case v <= q3:
			out[i] = '+'
		default:
			out[i] = '#'
		}
	}
	return out
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// fig2Doublings lists the Table 1 components the paper doubles.
type doubling struct {
	name  string
	apply func(*uarch.Config)
}

func fig2Doublings() []doubling {
	return []doubling{
		{"ROB x2", func(c *uarch.Config) { c.ROBEntries *= 2 }},
		{"IQ x2", func(c *uarch.Config) { c.IQEntries *= 2 }},
		{"LQ x2", func(c *uarch.Config) { c.LQEntries *= 2 }},
		{"SQ x2", func(c *uarch.Config) { c.SQEntries *= 2 }},
		{"IntRF x2", func(c *uarch.Config) { c.IntRF *= 2 }},
		{"FpRF x2", func(c *uarch.Config) { c.FpRF *= 2 }},
		{"IntALU x2", func(c *uarch.Config) { c.IntALU *= 2 }},
		{"FpALU x2", func(c *uarch.Config) { c.FpALU *= 2 }},
		{"FetchQ x2", func(c *uarch.Config) { c.FetchQueueUops *= 2 }},
		{"BTB x2", func(c *uarch.Config) { c.BTBEntries *= 2 }},
	}
}

// runFig2 reproduces the doubling experiment: each bar is the percentage
// change versus the baseline when one component is doubled. The paper's
// headline observations: doubling IntRF lifts performance ~23% and the PPA
// trade-off ~27%, while doubling FpALU only costs power and area.
func runFig2(o Options, w io.Writer) error {
	o = o.Defaults()
	suite := workload.Suite17()
	if o.Fast {
		suite = suite[:6]
	}
	base := uarch.Baseline()
	bIPC, bPow, bArea, err := evalOn(base, suite, o.TraceLen, o.Parallelism)
	if err != nil {
		return err
	}
	bPPA := mcpat.PPA(bIPC, bPow, bArea)

	// The doublings are independent one-off evaluations; fan them out and
	// reduce in definition order. Each evalOn already fans its workloads
	// out — both semaphores are private, so nesting cannot deadlock.
	ds := fig2Doublings()
	type delta struct{ perf, pow, area, ppa float64 }
	deltas := make([]delta, len(ds))
	err = par.ForEach(len(ds), len(ds), func(i int) error {
		cfg := base
		ds[i].apply(&cfg)
		ipc, pow, area, err := evalOn(cfg, suite, o.TraceLen, o.Parallelism)
		if err != nil {
			return err
		}
		deltas[i] = delta{
			perf: 100 * (ipc - bIPC) / bIPC,
			pow:  100 * (pow - bPow) / bPow,
			area: 100 * (area - bArea) / bArea,
			ppa:  100 * (mcpat.PPA(ipc, pow, area) - bPPA) / bPPA,
		}
		return nil
	})
	if err != nil {
		return err
	}
	var labels []string
	var dPerf, dPow, dArea, dPPA []float64
	for i, d := range ds {
		labels = append(labels, d.name)
		dPerf = append(dPerf, deltas[i].perf)
		dPow = append(dPow, deltas[i].pow)
		dArea = append(dArea, deltas[i].area)
		dPPA = append(dPPA, deltas[i].ppa)
	}

	fmt.Fprintf(w, "Figure 2: doubling one component of the Table 1 baseline (%% change)\n\n")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %12s\n", "component", "perf%", "power%", "area%", "Perf2/(PxA)%")
	for i := range labels {
		fmt.Fprintf(w, "%-10s %8.2f%% %8.2f%% %8.2f%% %11.2f%%\n",
			labels[i], dPerf[i], dPow[i], dArea[i], dPPA[i])
	}
	fmt.Fprintf(w, "\n%s", viz.Bars(labels, dPPA, 40, "PPA trade-off change per doubling"))
	return nil
}

// runFig3 reproduces the stepwise heuristic search: necessity (the share of
// instructions stalled at rename for each resource) guides increasing the
// top-ranked resource and reclaiming zero-necessity ones, six simulations
// total.
func runFig3(o Options, w io.Writer) error {
	o = o.Defaults()
	suite := workload.Suite17()
	if o.Fast {
		suite = suite[:6]
	}
	s := uarch.StandardSpace()
	pt := s.Nearest(uarch.Baseline())

	b0 := s.Decode(pt)
	ipc0, pow0, area0, err := evalOn(b0, suite, o.TraceLen, o.Parallelism)
	if err != nil {
		return err
	}
	ppa0 := mcpat.PPA(ipc0, pow0, area0)
	fmt.Fprintf(w, "Figure 3: stepwise necessity-guided search (6 steps)\n\n")
	fmt.Fprintf(w, "step 0 (baseline): IPC=%.4f power=%.4f area=%.3f PPA=%.4f\n", ipc0, pow0, area0, ppa0)

	grown := map[uarch.Resource]bool{}
	shrunk := map[uarch.Resource]bool{}
	for step := 1; step <= 6; step++ {
		// Measure necessity on one representative workload.
		cfg := s.Decode(pt)
		_, st, err := simulate(cfg, suite[0], o.TraceLen)
		if err != nil {
			return err
		}
		type nec struct {
			res   uarch.Resource
			ratio float64
		}
		var necs []nec
		for _, res := range uarch.Resources() {
			if n := st.RenameStalls[res]; n > 0 {
				necs = append(necs, nec{res, float64(n) / float64(st.Committed)})
			}
		}
		sort.Slice(necs, func(i, j int) bool { return necs[i].ratio > necs[j].ratio })

		// One adjustment per simulation, as in the paper's six-step walk:
		// grow the top-necessity resource when it is clearly starved,
		// otherwise reclaim one still-untouched zero-stall structure.
		moved := false
		if len(necs) > 0 && necs[0].ratio > 0.10 && !shrunk[necs[0].res] {
			for _, p := range uarch.ResourceParams(necs[0].res) {
				if s.Step(&pt, p, 1) {
					grown[necs[0].res] = true
					moved = true
					break
				}
			}
		}
		if !moved {
			seen := map[uarch.Resource]bool{}
			for _, n := range necs {
				seen[n.res] = true
			}
			for _, res := range []uarch.Resource{uarch.ResFpRF, uarch.ResSQ, uarch.ResLQ, uarch.ResIQ, uarch.ResROB} {
				if seen[res] || grown[res] || shrunk[res] {
					continue
				}
				for _, p := range uarch.ResourceParams(res) {
					if s.Step(&pt, p, -1) {
						shrunk[res] = true
						moved = true
						break
					}
				}
				if moved {
					break
				}
			}
		}

		cfg = s.Decode(pt)
		ipc, pow, area, err := evalOn(cfg, suite, o.TraceLen, o.Parallelism)
		if err != nil {
			return err
		}
		ppa := mcpat.PPA(ipc, pow, area)
		top := "-"
		if len(necs) > 0 {
			top = fmt.Sprintf("%s %.1f%%", necs[0].res, 100*necs[0].ratio)
		}
		fmt.Fprintf(w, "step %d: IPC=%.4f (%+.2f%%) power=%.4f (%+.2f%%) area=%.3f (%+.2f%%) PPA=%.4f (%+.2f%%)  top necessity: %s\n",
			step, ipc, 100*(ipc-ipc0)/ipc0, pow, 100*(pow-pow0)/pow0,
			area, 100*(area-area0)/area0, ppa, 100*(ppa-ppa0)/ppa0, top)
	}
	return nil
}
