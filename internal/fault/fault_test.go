package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSitesRegistry(t *testing.T) {
	sites := Sites()
	if len(sites) != 8 {
		t.Fatalf("expected 8 registered sites, got %v", sites)
	}
	for _, s := range sites {
		if !ValidSite(s) {
			t.Fatalf("registered site %q not valid", s)
		}
	}
	for i := 1; i < len(sites); i++ {
		if sites[i-1] >= sites[i] {
			t.Fatalf("sites not sorted: %v", sites)
		}
	}
	if ValidSite("nope") {
		t.Fatal("unknown site accepted")
	}
}

func TestNewPlanValidates(t *testing.T) {
	cases := []Injection{
		{Site: "bogus", Nth: 1, Class: Transient},
		{Site: SiteSim, Nth: 0, Class: Transient},
		{Site: SiteSim, Nth: 1, Class: Class(99)},
	}
	for i, inj := range cases {
		if _, err := NewPlan(inj); err == nil {
			t.Fatalf("case %d: invalid injection accepted", i)
		}
	}
	if _, err := NewPlan(Injection{Site: SiteSim, Nth: 3, Class: Permanent}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan did not panic on invalid injection")
		}
	}()
	MustPlan(Injection{Site: "bogus", Nth: 1, Class: Transient})
}

func TestPlanSchedule(t *testing.T) {
	p := MustPlan(
		Injection{Site: SiteSim, Nth: 3, Class: Transient},
		Injection{Site: SitePower, Nth: 2, Count: 2, Class: Permanent},
	)
	// sim fails exactly on its 3rd hit.
	for i := 1; i <= 5; i++ {
		err := p.Hit(SiteSim)
		if (i == 3) != (err != nil) {
			t.Fatalf("sim hit %d: err=%v", i, err)
		}
		if i == 3 {
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != SiteSim || fe.Hit != 3 || fe.Class != Transient {
				t.Fatalf("wrong fault error: %#v", err)
			}
			if !strings.Contains(err.Error(), "transient") || !strings.Contains(err.Error(), "sim") {
				t.Fatalf("uninformative error: %v", err)
			}
		}
	}
	// power fails on hits 2 and 3 (Count 2).
	var powerErrs int
	for i := 1; i <= 4; i++ {
		if err := p.Hit(SitePower); err != nil {
			powerErrs++
			if !errors.Is(err, err) || Classify(err) != Permanent {
				t.Fatalf("power hit %d misclassified: %v", i, err)
			}
		}
	}
	if powerErrs != 2 {
		t.Fatalf("expected 2 power failures, got %d", powerErrs)
	}
	if p.Hits(SiteSim) != 5 || p.Hits(SitePower) != 4 || p.Hits(SiteDEG) != 0 {
		t.Fatalf("hit counters wrong: sim=%d power=%d deg=%d",
			p.Hits(SiteSim), p.Hits(SitePower), p.Hits(SiteDEG))
	}
}

func TestPlanDelayStalls(t *testing.T) {
	p := MustPlan(Injection{Site: SiteTrace, Nth: 1, Class: Transient, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := p.Hit(SiteTrace); err == nil {
		t.Fatal("expected injected failure")
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay not served: %v", d)
	}
}

func TestNilPlanInert(t *testing.T) {
	var p *Plan
	if err := p.Hit(SiteSim); err != nil {
		t.Fatal("nil plan injected")
	}
	if p.Hits(SiteSim) != 0 {
		t.Fatal("nil plan counted")
	}
	if got := p.String(); !strings.Contains(got, "no plan") {
		t.Fatalf("nil plan string: %q", got)
	}
}

func TestPlanConcurrentHits(t *testing.T) {
	p := MustPlan(Injection{Site: SiteSim, Nth: 50, Class: Transient})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := p.Hit(SiteSim); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if p.Hits(SiteSim) != 200 {
		t.Fatalf("lost hits: %d", p.Hits(SiteSim))
	}
	if fired != 1 {
		t.Fatalf("injection fired %d times", fired)
	}
}

func TestClassify(t *testing.T) {
	if Classify(&Error{Site: SiteSim, Hit: 1, Class: Transient}) != Transient {
		t.Fatal("transient misclassified")
	}
	if Classify(&Error{Site: SiteSim, Hit: 1, Class: Kill}) != Kill {
		t.Fatal("kill misclassified")
	}
	wrapped := fmt.Errorf("outer: %w", &Error{Site: SiteDEG, Hit: 2, Class: Transient})
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient not recognised")
	}
	te := &TimeoutError{Site: SiteSim, After: time.Second}
	if !IsTransient(fmt.Errorf("wrap: %w", te)) {
		t.Fatal("timeout not transient")
	}
	if !strings.Contains(te.Error(), "timed out") {
		t.Fatalf("timeout error text: %v", te)
	}
	if Classify(errors.New("segfault")) != Permanent {
		t.Fatal("real error not permanent")
	}
	if IsTransient(nil) || IsKill(nil) {
		t.Fatal("nil error classified")
	}
	if !IsKill(&Error{Site: SiteSim, Hit: 1, Class: Kill}) {
		t.Fatal("kill not recognised")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Transient: "transient", Permanent: "permanent", Kill: "kill"} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
	if got := Class(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown class string: %q", got)
	}
}

func TestPlanString(t *testing.T) {
	if got := MustPlan().String(); !strings.Contains(got, "empty") {
		t.Fatalf("empty plan string: %q", got)
	}
	p := MustPlan(Injection{Site: SiteSim, Nth: 3, Count: 2, Class: Kill})
	if got := p.String(); !strings.Contains(got, "kill@sim[3+2]") {
		t.Fatalf("plan string: %q", got)
	}
}

func TestRandomPlanSeededAndTransient(t *testing.T) {
	a := RandomPlan(7, nil, 5, 10)
	b := RandomPlan(7, nil, 5, 10)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	if c := RandomPlan(8, []string{SiteSim}, 5, 10); c.String() == a.String() {
		t.Fatal("different seeds produced identical plans")
	}
	for _, i := range a.inj {
		if i.Class != Transient {
			t.Fatalf("random plan injected non-transient: %+v", i)
		}
		if i.Nth < 1 || i.Nth > 10 {
			t.Fatalf("hit index out of range: %+v", i)
		}
	}
	// Degenerate arguments still build a valid plan.
	if p := RandomPlan(1, nil, 2, 0); len(p.inj) != 2 {
		t.Fatal("maxNth clamp failed")
	}
}

func TestRetryBackoff(t *testing.T) {
	r := Retry{Max: 4, Base: 10 * time.Millisecond, Cap: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for k := 1; k <= 4; k++ {
		if got := r.Backoff(k); got != want[k-1]*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", k, got, want[k-1]*time.Millisecond)
		}
	}
	if r.Backoff(5) >= 0 || r.Backoff(0) >= 0 {
		t.Fatal("out-of-range attempt did not give up")
	}
	var zero Retry
	if zero.Backoff(1) >= 0 {
		t.Fatal("zero policy retried")
	}
	// No cap: pure doubling.
	nc := Retry{Max: 3, Base: time.Millisecond}
	if nc.Backoff(3) != 4*time.Millisecond {
		t.Fatalf("uncapped backoff(3) = %v", nc.Backoff(3))
	}
	if DefaultRetry.Max <= 0 || DefaultRetry.Backoff(1) <= 0 {
		t.Fatal("DefaultRetry not usable")
	}
}
