// Package fault is the failure-injection and failure-classification layer
// that makes campaign robustness testable. It has three parts:
//
//   - a registry of named failure sites — the places in the evaluation
//     pipeline (trace/sim/power/deg) and the persistence layer
//     (persist.write/persist.read) that are allowed to fail;
//   - a schedulable Plan of injections ("fail the 3rd sim hit with a
//     transient error", "kill the campaign at the 10th sim hit"), so tests
//     reproduce exact failure scenarios deterministically;
//   - an error taxonomy (transient / permanent / kill) plus the capped
//     exponential-backoff Retry policy the evaluator applies to transient
//     failures.
//
// Production code never constructs injections; it only classifies errors
// (Classify, IsTransient, IsKill) and consults a possibly-nil *Plan at its
// sites. A nil Plan injects nothing and costs one pointer comparison, so
// the instrumented pipeline is byte-identical to an uninstrumented one
// when no plan is attached.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// The registered failure sites. Site hit counts are deterministic when the
// evaluator runs sequentially (Parallelism = 1); under a parallel fan-out
// the workers race for hit numbers, so schedule-sensitive tests pin
// Parallelism to 1.
const (
	// SiteTrace is trace generation / trace-cache lookup.
	SiteTrace = "trace"
	// SiteSim is the cycle-level out-of-order simulation.
	SiteSim = "sim"
	// SitePower is the McPAT power/area model.
	SitePower = "power"
	// SiteDEG is the dependence-graph bottleneck analysis.
	SiteDEG = "deg"
	// SiteDEGStream is the fused simulate+analyze stage of the streaming
	// sim->DEG pipeline (Evaluator.DEGStream); it stands in for both SiteSim
	// and SiteDEG when the two stages run as one.
	SiteDEGStream = "deg_stream"
	// SiteSimBatch is the batched multi-config simulation pre-phase
	// (Evaluator.SimBatch): one hit per (batch, workload) RunBatch call.
	// A failure here never fails an evaluation — the affected workload
	// falls back to per-config simulation — so injections at this site
	// exercise the fallback path rather than the failure path.
	SiteSimBatch = "sim_batch"
	// SitePersistWrite is a campaign checkpoint/save write.
	SitePersistWrite = "persist.write"
	// SitePersistRead is a campaign checkpoint/resume read.
	SitePersistRead = "persist.read"
)

// Sites returns the registry of valid failure-site names, sorted.
func Sites() []string {
	out := []string{SiteTrace, SiteSim, SiteSimBatch, SitePower, SiteDEG, SiteDEGStream, SitePersistWrite, SitePersistRead}
	sort.Strings(out)
	return out
}

// ValidSite reports whether name is a registered failure site.
func ValidSite(name string) bool {
	for _, s := range Sites() {
		if s == name {
			return true
		}
	}
	return false
}

// Class is the failure taxonomy the retry/degradation machinery acts on.
type Class uint8

const (
	// Transient failures succeed when retried (I/O hiccups, injected
	// flakiness, stage timeouts). The evaluator retries them with capped
	// exponential backoff.
	Transient Class = iota + 1
	// Permanent failures never succeed on retry (deterministic simulator
	// errors, poisoned configurations). The evaluator either aborts the
	// campaign or — in skip-failures mode — journals the design as skipped
	// and keeps exploring.
	Permanent
	// Kill models the process dying at this point (SIGKILL mid-campaign).
	// It is never retried and never degraded to a skip: it unwinds the
	// whole run, leaving only the last checkpoint behind. Tests use it to
	// schedule reproducible crash points.
	Kill
)

// String names the class for journals and error text.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Error is an injected failure. It records which site fired and which hit
// of that site it was, so journals and tests can name the exact schedule
// point.
type Error struct {
	Site  string
	Hit   int // 1-based hit count of Site when the injection fired
	Class Class
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure at %s (hit %d)", e.Class, e.Site, e.Hit)
}

// TimeoutError is a stage attempt that exceeded the evaluator's stage
// timeout. Timeouts are transient by definition: the attempt is abandoned
// and retried.
type TimeoutError struct {
	Site  string
	After time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("fault: %s stage timed out after %v", e.Site, e.After)
}

// Classify maps an error to its failure class. Injected faults and
// timeouts carry their class; every other (real) error is Permanent —
// the simulator is deterministic, so retrying a genuine failure would
// only repeat it.
func Classify(err error) Class {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return Transient
	}
	return Permanent
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return err != nil && Classify(err) == Transient }

// IsKill reports whether err is a scheduled campaign kill.
func IsKill(err error) bool { return err != nil && Classify(err) == Kill }

// Injection schedules failures at one site: hits Nth through Nth+Count-1
// of the site fail with the given class. Delay, when non-zero, stalls the
// failing attempt before the error fires — modelling a hung stage so
// timeout handling can be exercised deterministically.
type Injection struct {
	Site  string
	Nth   int // 1-based hit index at which the injection starts firing
	Count int // consecutive hits that fail (0 means 1)
	Class Class
	Delay time.Duration
}

func (i Injection) matches(hit int) bool {
	n := i.Count
	if n <= 0 {
		n = 1
	}
	return hit >= i.Nth && hit < i.Nth+n
}

// Plan is a concurrency-safe schedule of injections plus the per-site hit
// counters they fire against. All methods are nil-safe; a nil plan never
// injects.
type Plan struct {
	mu   sync.Mutex
	hits map[string]int
	inj  []Injection
}

// NewPlan validates the injections (registered site, positive Nth, known
// class) and builds a plan over them.
func NewPlan(inj ...Injection) (*Plan, error) {
	for _, i := range inj {
		if !ValidSite(i.Site) {
			return nil, fmt.Errorf("fault: unknown site %q (valid: %s)", i.Site, strings.Join(Sites(), ", "))
		}
		if i.Nth < 1 {
			return nil, fmt.Errorf("fault: injection at %s has non-positive hit index %d", i.Site, i.Nth)
		}
		switch i.Class {
		case Transient, Permanent, Kill:
		default:
			return nil, fmt.Errorf("fault: injection at %s has unknown class %d", i.Site, i.Class)
		}
	}
	return &Plan{hits: make(map[string]int), inj: append([]Injection(nil), inj...)}, nil
}

// MustPlan is NewPlan for tests and literals; it panics on an invalid
// injection.
func MustPlan(inj ...Injection) *Plan {
	p, err := NewPlan(inj...)
	if err != nil {
		panic(err)
	}
	return p
}

// Hit records one arrival at a site and returns the scheduled failure, if
// any. Matching injections first serve their Delay (the hung-stage stall),
// then fail. Safe for concurrent use; nil-safe.
func (p *Plan) Hit(site string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.hits[site]++
	hit := p.hits[site]
	var fired *Injection
	for k := range p.inj {
		if p.inj[k].Site == site && p.inj[k].matches(hit) {
			fired = &p.inj[k]
			break
		}
	}
	p.mu.Unlock()
	if fired == nil {
		return nil
	}
	if fired.Delay > 0 {
		time.Sleep(fired.Delay)
	}
	return &Error{Site: site, Hit: hit, Class: fired.Class}
}

// Hits returns how many times a site has been reached so far.
func (p *Plan) Hits(site string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[site]
}

// String describes the schedule (not the live counters).
func (p *Plan) String() string {
	if p == nil {
		return "fault: no plan"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inj) == 0 {
		return "fault: empty plan"
	}
	var parts []string
	for _, i := range p.inj {
		n := i.Count
		if n <= 0 {
			n = 1
		}
		parts = append(parts, fmt.Sprintf("%s@%s[%d+%d]", i.Class, i.Site, i.Nth, n))
	}
	return "fault: " + strings.Join(parts, " ")
}

// RandomPlan builds a seeded plan of n transient injections over the given
// sites, with hit indices in [1, maxNth] and runs of 1..2 consecutive
// failures. Transient-only plans never change campaign results (retries
// absorb them), which is exactly the property resume-determinism tests
// quantify over.
func RandomPlan(seed int64, sites []string, n, maxNth int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if len(sites) == 0 {
		sites = []string{SiteTrace, SiteSim, SitePower, SiteDEG}
	}
	if maxNth < 1 {
		maxNth = 1
	}
	inj := make([]Injection, 0, n)
	for k := 0; k < n; k++ {
		inj = append(inj, Injection{
			Site:  sites[rng.Intn(len(sites))],
			Nth:   1 + rng.Intn(maxNth),
			Count: 1 + rng.Intn(2),
			Class: Transient,
		})
	}
	return MustPlan(inj...)
}

// Retry is a capped exponential-backoff policy for transient failures:
// attempt k (1-based) sleeps min(Base·2^(k-1), Cap) before retrying. Max
// is the number of retries after the first attempt; the zero value retries
// nothing, so an unconfigured evaluator fails exactly as it did before
// this policy existed.
type Retry struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

// DefaultRetry is the production policy: three retries starting at 10ms,
// capped at 500ms.
var DefaultRetry = Retry{Max: 3, Base: 10 * time.Millisecond, Cap: 500 * time.Millisecond}

// Backoff returns the sleep before retry attempt k (1-based). Attempts
// beyond Max, or a non-positive k, return a negative duration meaning
// "give up".
func (r Retry) Backoff(k int) time.Duration {
	if k < 1 || k > r.Max {
		return -1
	}
	d := r.Base
	for i := 1; i < k; i++ {
		d *= 2
		if r.Cap > 0 && d >= r.Cap {
			return r.Cap
		}
	}
	if r.Cap > 0 && d > r.Cap {
		return r.Cap
	}
	return d
}
