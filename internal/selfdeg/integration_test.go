package selfdeg_test

import (
	"bytes"
	"testing"

	"archexplorer/internal/dse"
	"archexplorer/internal/obs"
	"archexplorer/internal/selfdeg"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// TestRealCampaignAttribution is the acceptance gate for the self-DEG:
// analyze the journal of an actual parallel campaign and require the
// critical path to attribute (essentially all of) the campaign wall-clock,
// with a byte-identical report on re-analysis. The ≥95% bound is the
// ISSUE's acceptance criterion; the construction telescopes to 100% unless
// clock skew drops edges, so this also guards the graph's connectivity.
func TestRealCampaignAttribution(t *testing.T) {
	var suite []workload.Profile
	for _, n := range []string{"458.sjeng", "429.mcf"} {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, p)
	}
	rec := obs.New()
	var buf bytes.Buffer
	rec.SetJournalWriter(&buf)
	campaign, endCampaign := rec.CampaignSpan("test/ArchExplorer")

	ev := dse.NewEvaluator(uarch.StandardSpace(), suite, 1000)
	ev.Parallelism = 4
	ev.Obs = rec
	ev.SpanParent = campaign
	if err := dse.NewArchExplorer(3).Run(ev, 30); err != nil {
		t.Fatal(err)
	}
	endCampaign()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := selfdeg.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaign != "test/ArchExplorer" || rep.Synthesized {
		t.Fatalf("root selection failed: %+v", rep)
	}
	if rep.Total <= 0 {
		t.Fatalf("campaign wall-clock %v", rep.Total)
	}
	if cov := float64(rep.Covered) / float64(rep.Total); cov < 0.95 {
		t.Fatalf("critical path covers %.1f%% of wall-clock, want >= 95%%", 100*cov)
	}
	if rep.Workers < 1 {
		t.Fatalf("no worker slots observed: %+v", rep)
	}
	if len(rep.Classes) == 0 {
		t.Fatal("no edge classes attributed")
	}

	var a, b bytes.Buffer
	rep.Format(&a)
	rep2, err := selfdeg.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	rep2.Format(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("report not reproducible across re-analysis:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
}
