package selfdeg

import (
	"bytes"
	"testing"
	"time"

	"archexplorer/internal/obs"
)

// span is shorthand for building synthetic journals.
func span(id, parent int64, kind, name string, worker int, start, dur int64) *obs.SpanEvent {
	return &obs.SpanEvent{
		Span: id, Parent: parent, SpanKind: kind, Name: name,
		Worker: worker, StartNS: start, DurNS: dur,
	}
}

// TestAnalyzeSimpleTree hand-builds the smallest interesting campaign —
// two evals sharing one worker slot with a gap between them — and checks
// the attribution numerically: the path covers the whole wall-clock, the
// slot gap shows up as slot wait, and the what-if halves it.
func TestAnalyzeSimpleTree(t *testing.T) {
	events := []obs.Event{
		// Post-order, as the evaluator emits: stages, eval, stages, eval,
		// batch, campaign.
		span(3, 2, obs.SpanStage, "sim", 1, 0, 40),
		span(2, 5, obs.SpanEval, "cfgA", 0, 0, 40),
		span(6, 4, obs.SpanStage, "sim", 1, 50, 50),
		span(4, 5, obs.SpanEval, "cfgB", 0, 50, 50),
		span(5, 1, obs.SpanBatch, "evaluate", 0, 0, 100),
		span(1, 0, obs.SpanCampaign, "test", 0, 0, 100),
	}
	// Stage spans carry the workload so the seq grouping sees them.
	for _, e := range events {
		if s := e.(*obs.SpanEvent); s.SpanKind == obs.SpanStage {
			s.Workload = "mcf"
		}
	}
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaign != "test" || rep.Synthesized {
		t.Fatalf("root selection: %+v", rep)
	}
	if rep.Total != 100 {
		t.Fatalf("total %v, want 100ns", rep.Total)
	}
	if rep.Covered != rep.Total {
		t.Fatalf("covered %v of %v — the path must telescope to the wall-clock", rep.Covered, rep.Total)
	}
	if rep.Workers != 1 {
		t.Fatalf("workers = %d", rep.Workers)
	}
	if got := rep.Share("sim stage").Dur; got != 90 {
		t.Fatalf("sim stage on path = %v, want 90ns", got)
	}
	if rep.SlotWait != 10 {
		t.Fatalf("slot wait = %v, want 10ns", rep.SlotWait)
	}
	if rep.Classes[0].Class != "sim stage" {
		t.Fatalf("top class %q", rep.Classes[0].Class)
	}
	if f := rep.Classes[0].Frac; f < 0.89 || f > 0.91 {
		t.Fatalf("top class fraction %v", f)
	}
	if rep.WhatIf() != 5 {
		t.Fatalf("what-if = %v, want 5ns (10ns · 1/2)", rep.WhatIf())
	}
	if rep.Skew != 0 {
		t.Fatalf("skew = %d on a clean journal", rep.Skew)
	}
}

// TestAnalyzeNoSpans: journals without span events are an explicit error,
// not an empty report.
func TestAnalyzeNoSpans(t *testing.T) {
	if _, err := Analyze([]obs.Event{&obs.RunStart{Tool: "x"}}); err == nil {
		t.Fatal("no-span journal did not error")
	}
}

// TestSynthesizedRoot: several top-level campaign spans (a grid of cells
// journaled without a run-wide root) get a synthesized "journal" root
// covering the whole extent, and orphan spans re-parent to it.
func TestSynthesizedRoot(t *testing.T) {
	events := []obs.Event{
		span(1, 0, obs.SpanCampaign, "cell-v0-s1", 0, 0, 60),
		span(2, 0, obs.SpanCampaign, "cell-v1-s1", 0, 10, 90),
		span(3, 99, obs.SpanEval, "orphan", 0, 20, 10), // parent never journaled
	}
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Synthesized || rep.Campaign != "journal" {
		t.Fatalf("expected synthesized root, got %+v", rep)
	}
	if rep.Total != 100 { // extent [0, 100)
		t.Fatalf("synthesized total %v, want 100ns", rep.Total)
	}
	if rep.Covered != rep.Total {
		t.Fatalf("covered %v of %v", rep.Covered, rep.Total)
	}
}

// TestSkewDroppedEdges: a child whose end runs past its parent's would
// need a backward join edge; it must be dropped and counted, never built.
func TestSkewDroppedEdges(t *testing.T) {
	events := []obs.Event{
		span(2, 1, obs.SpanEval, "cfg", 0, 10, 200), // ends at 210, after the campaign
		span(1, 0, obs.SpanCampaign, "test", 0, 0, 100),
	}
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skew == 0 {
		t.Fatal("backward edge not counted as skew")
	}
}

// TestCacheHitBatch: a childless batch with cache hits is real work (the
// cache short-circuited the subtree), labeled as such on the path.
func TestCacheHitBatch(t *testing.T) {
	events := []obs.Event{
		&obs.SpanEvent{Span: 2, Parent: 1, SpanKind: obs.SpanBatch, Name: "evaluate", Hits: 3, StartNS: 0, DurNS: 80},
		span(1, 0, obs.SpanCampaign, "test", 0, 0, 100),
	}
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 3 {
		t.Fatalf("cache hits = %d", rep.CacheHits)
	}
	if got := rep.Share("batch (cache-hit)").Dur; got != 80 {
		t.Fatalf("cache-hit batch on path = %v, want 80ns", got)
	}
}

// TestFormatDeterministic: analyzing the same journal twice renders byte-
// identical reports — the reproducibility contract obsreport relies on.
func TestFormatDeterministic(t *testing.T) {
	events := []obs.Event{
		span(3, 2, obs.SpanStage, "sim", 1, 0, 30),
		span(4, 2, obs.SpanStage, "deg", 1, 30, 10),
		span(2, 5, obs.SpanEval, "cfgA", 0, 0, 40),
		span(5, 1, obs.SpanBatch, "evaluate", 0, 0, 50),
		span(6, 1, obs.SpanIteration, "w1.s1", 0, 50, 40),
		span(1, 0, obs.SpanCampaign, "test", 0, 0, 100),
	}
	var a, b bytes.Buffer
	ra, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	ra.Format(&a)
	rb, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	rb.Format(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ across reruns:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	if !bytes.Contains(a.Bytes(), []byte("critical-path attribution")) {
		t.Fatalf("report missing attribution section:\n%s", a.String())
	}
}

// TestWhatIfZero: without slot waits the what-if must not promise savings.
func TestWhatIfZero(t *testing.T) {
	r := &Report{Workers: 4, SlotWait: 0}
	if r.WhatIf() != 0 {
		t.Fatalf("what-if without slot wait = %v", r.WhatIf())
	}
	r = &Report{Workers: 3, SlotWait: 40 * time.Millisecond}
	if r.WhatIf() != 30*time.Millisecond {
		t.Fatalf("what-if = %v, want 30ms (40ms · 3/4)", r.WhatIf())
	}
}
