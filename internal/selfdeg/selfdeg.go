// Package selfdeg applies the paper's own method to the tool that
// implements it: it reconstructs a dependency graph of a DSE campaign's
// execution from the hierarchical span events in its run journal and runs
// longest-path attribution over it — the same critical-path question the
// DEG asks of a microarchitecture, asked of the explorer. The graph
// encodes what actually serialized the run: evals depend on the batch that
// dispatched them (eval-depends-on-draw), batches end at a commit barrier
// their slowest eval gates, stages of one workload chain in pipeline
// order, stages sharing a worker slot contend for it, and cache hits
// short-circuit whole subtrees. Stage *sums* (obsreport's breakdown) say
// where worker time went; the critical path says where wall-clock went —
// the distinction the paper's Figure 1 draws for pipelines, reproduced for
// the campaign itself.
//
// Determinism: the graph is built from journal values only, with all ties
// broken on (time, span id), so re-analyzing the same journal reproduces
// the same critical path and the same report, byte for byte.
package selfdeg

import (
	"fmt"
	"io"
	"sort"
	"time"

	"archexplorer/internal/obs"
)

// Edge-class labels as they appear in the report. Work classes (span
// bodies) name what ran; wait classes name what was waited on.
const (
	ClassSlotWait = "slot wait"
	ClassDispatch = "dispatch"
	ClassBarrier  = "commit barrier"
)

// ClassShare is one edge class's share of the critical path.
type ClassShare struct {
	Class string
	Dur   time.Duration
	Count int
	Frac  float64
}

// Report is the campaign's critical-path attribution.
type Report struct {
	// Campaign labels the root span ("journal" when the journal holds no
	// single root campaign span and one was synthesized).
	Campaign string
	// Total is the campaign wall-clock (root span duration); Covered is
	// the summed duration of critical-path edges. The path runs from
	// campaign begin to campaign end with every edge measuring elapsed
	// time, so Covered telescopes to Total — coverage below 100% means
	// clock-skewed spans forced edges to be dropped.
	Total   time.Duration
	Covered time.Duration
	// Spans is the number of span events analyzed; Workers the distinct
	// worker slots observed; CacheHits the batch slots short-circuited by
	// the evaluation cache (subtrees that never existed).
	Spans     int
	Workers   int
	CacheHits int
	// SlotWait is the time the critical path spent waiting for a worker
	// slot — the directly actionable number: it bounds what adding
	// parallelism can recover.
	SlotWait time.Duration
	// Classes is the per-class attribution, largest first (ties on name).
	Classes []ClassShare
	// Skew counts edges dropped for a negative time delta (clock skew or
	// a malformed journal); nonzero Skew is a data-quality warning.
	Skew int
	// Synthesized marks a root synthesized from the span extent because
	// the journal held zero or several top-level campaign spans.
	Synthesized bool
}

// Share returns the named class's share (zero value when absent).
func (r *Report) Share(class string) ClassShare {
	for _, c := range r.Classes {
		if c.Class == class {
			return c
		}
	}
	return ClassShare{Class: class}
}

// node is one span in the reconstructed tree.
type node struct {
	ev       *obs.SpanEvent
	parent   int32 // -1 for the root
	children []int32
	top      int32 // ancestor directly under the root (slot-group key)
}

// edge is one dependency in the campaign graph. Duration is implied by
// the endpoint times; work is the DP objective (nonzero only on leaf
// span bodies), which steers the longest path through real work when
// several paths span the same wall-clock.
type edge struct {
	to   int32
	cls  int32
	work int64
}

// Analyze reconstructs the campaign graph from a journal's span events and
// returns the critical-path attribution. Journals without span events
// (pre-span builds, or telemetry off) return an error.
func Analyze(events []obs.Event) (*Report, error) {
	var spans []*obs.SpanEvent
	for _, e := range events {
		if s, ok := e.(*obs.SpanEvent); ok {
			spans = append(spans, s)
		}
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("selfdeg: no span events in journal (recorded by an older build, or telemetry off?)")
	}

	idx := make(map[int64]int32, len(spans))
	for i, s := range spans {
		idx[s.Span] = int32(i)
	}

	// Root selection: the unique top-level campaign span when there is
	// one; otherwise synthesize a root covering the span extent (several
	// concurrent campaigns, or a journal recorded without CampaignSpan).
	rep := &Report{Spans: len(spans)}
	var rootCands []int32
	for i, s := range spans {
		if s.SpanKind != obs.SpanCampaign {
			continue
		}
		if p, ok := idx[s.Parent]; s.Parent == 0 || !ok || p == int32(i) {
			rootCands = append(rootCands, int32(i))
		}
	}
	var root int32
	if len(rootCands) == 1 {
		root = rootCands[0]
		rep.Campaign = spans[root].Name
	} else {
		lo, hi := spans[0].StartNS, spans[0].End()
		for _, s := range spans[1:] {
			if s.StartNS < lo {
				lo = s.StartNS
			}
			if s.End() > hi {
				hi = s.End()
			}
		}
		spans = append(spans, &obs.SpanEvent{
			SpanKind: obs.SpanCampaign, Name: "journal", StartNS: lo, DurNS: hi - lo,
		})
		root = int32(len(spans) - 1)
		rep.Campaign = "journal"
		rep.Synthesized = true
	}

	nodes := make([]node, len(spans))
	for i := range spans {
		nodes[i] = node{ev: spans[i], parent: root, top: -1}
		if int32(i) == root {
			nodes[i].parent = -1
			continue
		}
		if p, ok := idx[spans[i].Parent]; ok && p != int32(i) && p != root {
			nodes[i].parent = p
		}
	}
	for i := range nodes {
		if nodes[i].parent >= 0 {
			nodes[nodes[i].parent].children = append(nodes[nodes[i].parent].children, int32(i))
		}
		if w := spans[i].Worker; w > rep.Workers {
			rep.Workers = w
		}
		if spans[i].SpanKind == obs.SpanBatch {
			rep.CacheHits += spans[i].Hits
		}
	}
	// Deterministic child order: (start, span id). Journal order already
	// provides this for well-formed journals; sorting makes it a contract.
	for i := range nodes {
		c := nodes[i].children
		sort.Slice(c, func(a, b int) bool {
			sa, sb := spans[c[a]], spans[c[b]]
			if sa.StartNS != sb.StartNS {
				return sa.StartNS < sb.StartNS
			}
			return sa.Span < sb.Span
		})
	}
	for i := range nodes {
		topOf(nodes, root, int32(i))
	}

	g := newGraph(spans, rep)
	g.build(nodes, root)
	g.longestPath(root)
	g.attribute(rep, root)
	return rep, nil
}

// topOf memoizes each node's ancestor directly under the root — the key
// slot numbers are grouped by, since worker slots are assigned per
// evaluator and two grid cells reuse the same numbers for different pools.
func topOf(nodes []node, root, i int32) int32 {
	if nodes[i].top >= 0 {
		return nodes[i].top
	}
	cur, steps := i, 0
	for nodes[cur].parent >= 0 && nodes[cur].parent != root {
		cur = nodes[cur].parent
		if steps++; steps > len(nodes) { // malformed parent cycle
			break
		}
	}
	nodes[i].top = cur
	return cur
}

// graph is the vertex/edge store: vertices 2i (span begin) and 2i+1 (span
// end), adjacency in insertion order (deterministic), class labels
// interned to indices.
type graph struct {
	spans   []*obs.SpanEvent
	out     [][]edge
	indeg   []int32
	classes []string
	clsIdx  map[string]int32
	rep     *Report
	path    dp
}

func newGraph(spans []*obs.SpanEvent, rep *Report) *graph {
	return &graph{
		spans:  spans,
		out:    make([][]edge, 2*len(spans)),
		indeg:  make([]int32, 2*len(spans)),
		clsIdx: make(map[string]int32),
		rep:    rep,
	}
}

func (g *graph) vtime(v int32) int64 {
	s := g.spans[v>>1]
	if v&1 == 0 {
		return s.StartNS
	}
	return s.End()
}

func begin(i int32) int32 { return 2 * i }
func end(i int32) int32   { return 2*i + 1 }

func (g *graph) class(label string) int32 {
	if c, ok := g.clsIdx[label]; ok {
		return c
	}
	c := int32(len(g.classes))
	g.classes = append(g.classes, label)
	g.clsIdx[label] = c
	return c
}

// addEdge inserts from→to unless it would run backward in time (clock
// skew), which is counted instead. work marks span-body edges of leaves,
// the DP objective.
func (g *graph) addEdge(from, to int32, label string, work bool) {
	d := g.vtime(to) - g.vtime(from)
	if d < 0 {
		g.rep.Skew++
		return
	}
	var w int64
	if work {
		w = d
	}
	g.out[from] = append(g.out[from], edge{to: to, cls: g.class(label), work: w})
	g.indeg[to]++
}

// build lays down the campaign dependency graph:
//
//   - dispatch: parent begin → child begin (an eval cannot start before
//     the batch that drew it; a batch not before its iteration; …)
//   - commit barrier / join: child end → parent end (a batch commits only
//     after its slowest eval — the fan-in that serializes parallel evals)
//   - body: begin → end of every span; leaf bodies carry work (a stage
//     simulating, a replayed or failed eval, a cache-hit batch), container
//     bodies are the zero-work fallback that keeps end reachable even
//     where children leave gaps
//   - seq: end → next begin between non-overlapping same-kind siblings
//     (same workload for stages, so an eval's trace→sim→power→deg
//     pipeline chains); between iterations this is the explorer deciding
//   - slot wait: end → next begin between non-overlapping stages on the
//     same worker slot of the same campaign/cell — the contention edge:
//     when it lands on the critical path, the run was worker-starved
func (g *graph) build(nodes []node, root int32) {
	for i := range nodes {
		n := &nodes[i]
		s := n.ev
		if n.parent >= 0 {
			g.addEdge(begin(n.parent), begin(int32(i)), ClassDispatch, false)
			join := ClassBarrier
			if k := g.spans[n.parent].SpanKind; k != obs.SpanBatch {
				join = "join (" + k + ")"
			}
			g.addEdge(end(int32(i)), end(n.parent), join, false)
		}
		if len(n.children) == 0 {
			g.addEdge(begin(int32(i)), end(int32(i)), leafLabel(s), true)
		} else {
			g.addEdge(begin(int32(i)), end(int32(i)), "idle ("+s.SpanKind+")", false)
		}

		// Sequential-sibling edges, grouped by (kind, workload).
		type groupKey struct {
			kind, wl string
		}
		groups := make(map[groupKey][]int32)
		var order []groupKey
		for _, c := range n.children {
			k := groupKey{g.spans[c].SpanKind, g.spans[c].Workload}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], c)
		}
		for _, k := range order {
			sibs := groups[k]
			for j := 1; j < len(sibs); j++ {
				a, b := sibs[j-1], sibs[j]
				if g.spans[b].StartNS >= g.spans[a].End() {
					g.addEdge(end(a), begin(b), seqLabel(k.kind), false)
				}
			}
		}

		// Driver-progression edges across ALL children regardless of kind:
		// under a campaign, batches and iterations interleave on the driving
		// goroutine, and without cross-kind edges the critical path could not
		// weave from a screen batch into the iterations that follow it —
		// their time would be misattributed to a same-kind sibling gap.
		for j := 1; j < len(n.children); j++ {
			a, b := n.children[j-1], n.children[j]
			if g.spans[b].StartNS < g.spans[a].End() {
				continue
			}
			label := seqLabel(g.spans[b].SpanKind)
			if g.spans[a].SpanKind != g.spans[b].SpanKind {
				label = "explorer decide"
			}
			g.addEdge(end(a), begin(b), label, false)
		}
	}

	// Worker-slot contention edges: stage spans on one slot of one
	// campaign/cell never overlap; a gap between consecutive occupants is
	// the next eval waiting for the slot.
	type slotKey struct {
		top    int32
		worker int
	}
	slots := make(map[slotKey][]int32)
	var order []slotKey
	for i := range nodes {
		s := nodes[i].ev
		if s.SpanKind != obs.SpanStage || s.Worker <= 0 || int32(i) == root {
			continue
		}
		k := slotKey{nodes[i].top, s.Worker}
		if _, ok := slots[k]; !ok {
			order = append(order, k)
		}
		slots[k] = append(slots[k], int32(i))
	}
	for _, k := range order {
		occ := slots[k]
		sort.Slice(occ, func(a, b int) bool {
			sa, sb := g.spans[occ[a]], g.spans[occ[b]]
			if sa.StartNS != sb.StartNS {
				return sa.StartNS < sb.StartNS
			}
			return sa.Span < sb.Span
		})
		for j := 1; j < len(occ); j++ {
			a, b := occ[j-1], occ[j]
			if g.spans[b].StartNS >= g.spans[a].End() {
				g.addEdge(end(a), begin(b), ClassSlotWait, false)
			}
		}
	}
}

// leafLabel names the work a leaf span's body performed.
func leafLabel(s *obs.SpanEvent) string {
	switch s.SpanKind {
	case obs.SpanStage:
		return s.Name + " stage"
	case obs.SpanEval:
		switch s.Cache {
		case "replay":
			return "eval (replay)"
		case "failed":
			return "eval (failed)"
		}
		return "eval (body)"
	case obs.SpanBatch:
		if s.Hits > 0 {
			return "batch (cache-hit)"
		}
		return "idle (batch)"
	case obs.SpanIteration:
		return "explorer decide"
	}
	return "idle (" + s.SpanKind + ")"
}

// seqLabel names the gap between consecutive same-kind siblings.
func seqLabel(kind string) string {
	switch kind {
	case obs.SpanIteration:
		return "explorer decide"
	case obs.SpanBatch:
		return "between batches"
	case obs.SpanEval:
		return "between evals"
	case obs.SpanStage:
		return "stage pipeline"
	}
	return "between " + kind + "s"
}

// dp is the longest-path state, reconstructed from parent pointers.
type dp struct {
	dist []int64 // max accumulated work from the root begin; -1 unreachable
	parV []int32 // predecessor vertex on the best path
	parC []int32 // class of the edge taken
}

// longestPath runs the work-maximizing DP over a topological order
// (Kahn's algorithm with a (time, vertex) min-heap, so ties — including
// zero-duration edges between same-time vertices — process in a fixed
// order and the chosen path is deterministic).
func (g *graph) longestPath(root int32) {
	n := len(g.out)
	g.path.dist = make([]int64, n)
	g.path.parV = make([]int32, n)
	g.path.parC = make([]int32, n)
	for i := 0; i < n; i++ {
		g.path.dist[i] = -1
		g.path.parV[i] = -1
		g.path.parC[i] = -1
	}
	g.path.dist[begin(root)] = 0

	indeg := append([]int32(nil), g.indeg...)
	h := &vheap{g: g}
	for v := int32(0); v < int32(n); v++ {
		if indeg[v] == 0 {
			h.push(v)
		}
	}
	for h.len() > 0 {
		v := h.pop()
		dv := g.path.dist[v]
		for _, e := range g.out[v] {
			if dv >= 0 {
				if nd := dv + e.work; nd > g.path.dist[e.to] {
					g.path.dist[e.to] = nd
					g.path.parV[e.to] = v
					g.path.parC[e.to] = e.cls
				}
			}
			if indeg[e.to]--; indeg[e.to] == 0 {
				h.push(e.to)
			}
		}
	}
}

// attribute walks the chosen path backward from the campaign end and
// aggregates edge durations by class.
func (g *graph) attribute(rep *Report, root int32) {
	rep.Total = time.Duration(g.spans[root].DurNS)
	type agg struct {
		dur   int64
		count int
	}
	byClass := make(map[int32]*agg)
	cur := end(root)
	for cur != begin(root) {
		pv := g.path.parV[cur]
		if pv < 0 {
			break // end unreachable: skew broke the spine (reported via coverage)
		}
		cls := g.path.parC[cur]
		a := byClass[cls]
		if a == nil {
			a = &agg{}
			byClass[cls] = a
		}
		d := g.vtime(cur) - g.vtime(pv)
		a.dur += d
		a.count++
		rep.Covered += time.Duration(d)
		cur = pv
	}
	for cls, a := range byClass {
		rep.Classes = append(rep.Classes, ClassShare{
			Class: g.classes[cls],
			Dur:   time.Duration(a.dur),
			Count: a.count,
		})
	}
	if rep.Total > 0 {
		for i := range rep.Classes {
			rep.Classes[i].Frac = float64(rep.Classes[i].Dur) / float64(rep.Total)
		}
	}
	sort.Slice(rep.Classes, func(a, b int) bool {
		if rep.Classes[a].Dur != rep.Classes[b].Dur {
			return rep.Classes[a].Dur > rep.Classes[b].Dur
		}
		return rep.Classes[a].Class < rep.Classes[b].Class
	})
	rep.SlotWait = rep.Share(ClassSlotWait).Dur
}

// vheap is a minimal binary min-heap of vertices keyed by (time, vertex).
type vheap struct {
	g *graph
	v []int32
}

func (h *vheap) len() int { return len(h.v) }

func (h *vheap) less(a, b int32) bool {
	ta, tb := h.g.vtime(a), h.g.vtime(b)
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (h *vheap) push(x int32) {
	h.v = append(h.v, x)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.v[i], h.v[p]) {
			break
		}
		h.v[i], h.v[p] = h.v[p], h.v[i]
		i = p
	}
}

func (h *vheap) pop() int32 {
	top := h.v[0]
	last := len(h.v) - 1
	h.v[0] = h.v[last]
	h.v = h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.v) && h.less(h.v[l], h.v[s]) {
			s = l
		}
		if r < len(h.v) && h.less(h.v[r], h.v[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.v[i], h.v[s] = h.v[s], h.v[i]
		i = s
	}
	return top
}

// WhatIf estimates the wall-clock one more worker slot would have saved:
// slot waits on the critical path shrink roughly in proportion to
// W/(W+1) — an optimistic bound (it assumes waits were spread evenly and
// nothing else becomes critical), which is exactly how the paper uses its
// what-if numbers: to rank the next fix, not to promise a speedup.
func (r *Report) WhatIf() time.Duration {
	if r.Workers <= 0 || r.SlotWait <= 0 {
		return 0
	}
	return r.SlotWait * time.Duration(r.Workers) / time.Duration(r.Workers+1)
}

// Format renders the report for obsreport -critical-path. Output is
// deterministic for a given journal.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "self-DEG critical path: campaign %q\n", r.Campaign)
	if r.Synthesized {
		fmt.Fprintf(w, "  (no single root campaign span; root synthesized over the span extent)\n")
	}
	cov := 0.0
	if r.Total > 0 {
		cov = 100 * float64(r.Covered) / float64(r.Total)
	}
	fmt.Fprintf(w, "  wall-clock %s, critical path covers %s (%.1f%%)\n", fdur(r.Total), fdur(r.Covered), cov)
	fmt.Fprintf(w, "  %d spans, %d worker slots, %d cache-hit short-circuits", r.Spans, r.Workers, r.CacheHits)
	if r.Skew > 0 {
		fmt.Fprintf(w, ", %d skew-dropped edges", r.Skew)
	}
	fmt.Fprintf(w, "\n\ncritical-path attribution:\n")
	for _, c := range r.Classes {
		fmt.Fprintf(w, "  %-22s %10s  %5.1f%%  (%d edges)\n", c.Class, fdur(c.Dur), 100*c.Frac, c.Count)
	}
	if save := r.WhatIf(); save > 0 {
		fmt.Fprintf(w, "\nwhat-if: +1 worker slot saves up to ~%s (%s of slot wait on the path, %d slots today)\n",
			fdur(save), fdur(r.SlotWait), r.Workers)
	} else if r.SlotWait == 0 {
		fmt.Fprintf(w, "\nwhat-if: no slot wait on the critical path — more workers would not help; attack the top class above\n")
	}
}

// fdur formats durations with fixed precision so reports diff cleanly.
func fdur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
	return fmt.Sprintf("%dns", d)
}
