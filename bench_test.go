// Package archexplorer's root benchmarks regenerate every table and figure
// of the paper (one benchmark per experiment; see DESIGN.md's experiment
// index) plus micro-benchmarks for the main computational kernels. Each
// experiment benchmark reports its output size and writes the rows/series
// through the exp harness; run with -benchtime=1x for a single regeneration:
//
//	go test -bench=. -benchmem -benchtime=1x
package archexplorer

import (
	"bytes"
	"math/rand"
	"testing"

	"archexplorer/internal/deg"
	"archexplorer/internal/dse"
	"archexplorer/internal/exp"
	"archexplorer/internal/ooo"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

// benchExperiment runs one registered experiment with benchmark-friendly
// scaling.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := exp.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := exp.Options{Fast: true, Budget: 120, Seeds: 1, Samples: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(opts, &buf); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(buf.Len()), "output-bytes")
	}
}

func BenchmarkTable1Baseline(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable3Workloads(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4DesignSpace(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5Comparison(b *testing.B)  { benchExperiment(b, "table5") }

func BenchmarkFig1DesignSpace(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2Doubling(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3Stepwise(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4OldDEG(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5OldDEGErrors(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig9NewDEG(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10SearchPath(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11Hypervolume(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12HVCurves(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13Frontiers(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkGraphStats(b *testing.B)       { benchExperiment(b, "graphstats") }

// --- Micro-benchmarks for the computational kernels -----------------------

// BenchmarkSimulatorThroughput measures the cycle-level core model in
// simulated instructions per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, err := ooo.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Run(stream); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkDEGAnalyze measures induced-DEG construction plus Algorithm 1
// plus attribution on a 20k-instruction trace.
func BenchmarkDEGAnalyze(b *testing.B) {
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 20000)
	if err != nil {
		b.Fatal(err)
	}
	core, err := ooo.New(uarch.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := deg.Analyze(tr, deg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDEGAnalyzeWindowed measures the same analysis through the
// windowed, allocation-pooled path (10 windows of 2000 instructions).
// Compare allocs/op against BenchmarkDEGAnalyze: peak memory is bounded by
// one window's graph, and the pooled buffers amortize to near-zero steady-
// state allocation.
func BenchmarkDEGAnalyzeWindowed(b *testing.B) {
	p, err := workload.ByName("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.CachedTrace(p, 20000)
	if err != nil {
		b.Fatal(err)
	}
	core, err := ooo.New(uarch.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := core.Run(stream)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := deg.AnalyzeWindowed(tr, deg.WindowOptions{Window: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypervolume3D measures the exact hypervolume computation on a
// 200-point set.
func BenchmarkHypervolume3D(b *testing.B) {
	var pts []pareto.Point
	state := uint64(88172645463325252)
	rnd := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000000) / 1000000
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, pareto.Point{Perf: rnd(), Power: rnd(), Area: rnd()})
	}
	ref := pareto.Reference{Perf: 0, Power: 1, Area: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(pts, ref)
	}
}

// BenchmarkEvaluator measures one full (config x 4 workloads) PPA
// evaluation, the unit of the simulation budget.
func BenchmarkEvaluator(b *testing.B) {
	suite := workload.Suite06()[:4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := dse.NewEvaluator(uarch.StandardSpace(), suite, 4000)
		if _, err := ev.Evaluate(ev.Space.Nearest(uarch.Baseline()), true); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEvaluatorBatch measures a batch of distinct design points on a
// 4-workload suite at the given parallelism. Comparing the Parallelism=1
// and Parallelism=4 variants shows the fan-out speedup; on a single-core
// host the two converge, since the same work is just interleaved.
func benchEvaluatorBatch(b *testing.B, parallelism int) {
	suite := workload.Suite06()[:4]
	space := uarch.StandardSpace()
	rng := rand.New(rand.NewSource(42))
	pts := make([]uarch.Point, 4)
	for i := range pts {
		pts[i] = space.Random(rng)
	}
	if _, err := workload.Trace(suite[0], 4000); err != nil { // warm compile caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := dse.NewEvaluator(space, suite, 4000)
		ev.Parallelism = parallelism
		if _, err := ev.EvaluateBatch(pts, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorSequential(b *testing.B) { benchEvaluatorBatch(b, 1) }
func BenchmarkEvaluatorParallel4(b *testing.B)  { benchEvaluatorBatch(b, 4) }

func BenchmarkAblation(b *testing.B)    { benchExperiment(b, "ablation") }
func BenchmarkSec2Stats(b *testing.B)   { benchExperiment(b, "sec2stats") }
func BenchmarkCPIStack(b *testing.B)    { benchExperiment(b, "cpistack") }
func BenchmarkCalipersDSE(b *testing.B) { benchExperiment(b, "calipersdse") }
