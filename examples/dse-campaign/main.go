// DSE campaign example: run ArchExplorer and a random-search control on
// the same budget and compare their hypervolume curves and frontiers —
// a miniature of the Figure 12 experiment.
package main

import (
	"fmt"
	"log"

	"archexplorer/internal/dse"
	"archexplorer/internal/pareto"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	const budget = 360 // full (config, workload) simulations
	suite := workload.Suite06()
	ref := pareto.Reference{Perf: 0.01, Power: 1.5, Area: 25}

	for _, ex := range []dse.Explorer{
		dse.NewArchExplorer(1),
		&dse.RandomSearch{Seed: 1},
	} {
		ev := dse.NewEvaluator(uarch.StandardSpace(), suite, 4000)
		if err := ex.Run(ev, budget); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", ex.Name())
		fmt.Printf("spent %.1f sims, explored %d designs (%d at full fidelity)\n",
			ev.Sims, len(ev.PointsUpTo(budget)), len(ev.Points()))
		for _, b := range []int{budget / 4, budget / 2, budget} {
			hv := pareto.Hypervolume(ev.PointsUpTo(float64(b)), ref)
			fmt.Printf("  HV@%-4d = %.4f\n", b, hv)
		}
		fr := pareto.Frontier(ev.PointsUpTo(budget))
		fmt.Printf("frontier: %d designs; best trade-off %.4f\n\n",
			len(fr), bestTradeoff(fr))
	}
}

func bestTradeoff(fr []pareto.Point) float64 {
	best := 0.0
	for _, p := range fr {
		if v := p.Perf * p.Perf / (p.Power * p.Area); v > best {
			best = v
		}
	}
	return best
}
