// Design-space walk example: the Section 2 motivation experiments in
// runnable form. First the Figure 2 doubling study — which single
// component doubles are worth their power and area — and then a
// bottleneck-guided improvement of the baseline using the DEG report, as
// in Figure 3/10.
package main

import (
	"fmt"
	"log"

	"archexplorer/internal/dse"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func evalMean(cfg uarch.Config, suite []workload.Profile, n int) (ipc, pow, area float64) {
	for _, wl := range suite {
		stream, err := workload.CachedTrace(wl, n)
		if err != nil {
			log.Fatal(err)
		}
		core, err := ooo.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		_, st, err := core.Run(stream)
		if err != nil {
			log.Fatal(err)
		}
		pw, err := mcpat.Evaluate(cfg, st)
		if err != nil {
			log.Fatal(err)
		}
		ipc += st.IPC()
		pow += pw.PowerW
		area = pw.AreaMM2
	}
	k := float64(len(suite))
	return ipc / k, pow / k, area
}

func main() {
	suite := workload.Suite17()[:6]
	base := uarch.Baseline()
	bIPC, bPow, bArea := evalMean(base, suite, 6000)
	bPPA := mcpat.PPA(bIPC, bPow, bArea)
	fmt.Printf("baseline: IPC %.4f  power %.4f W  area %.3f mm2  PPA %.4f\n\n", bIPC, bPow, bArea, bPPA)

	fmt.Println("doubling study (Figure 2):")
	for _, d := range []struct {
		name  string
		apply func(*uarch.Config)
	}{
		{"IntRF x2", func(c *uarch.Config) { c.IntRF *= 2 }},
		{"ROB   x2", func(c *uarch.Config) { c.ROBEntries *= 2 }},
		{"FpALU x2", func(c *uarch.Config) { c.FpALU *= 2 }},
		{"SQ    x2", func(c *uarch.Config) { c.SQEntries *= 2 }},
	} {
		cfg := base
		d.apply(&cfg)
		ipc, pow, area := evalMean(cfg, suite, 6000)
		ppa := mcpat.PPA(ipc, pow, area)
		fmt.Printf("  %-9s perf %+6.2f%%  power %+6.2f%%  area %+6.2f%%  PPA %+6.2f%%\n",
			d.name, 100*(ipc-bIPC)/bIPC, 100*(pow-bPow)/bPow,
			100*(area-bArea)/bArea, 100*(ppa-bPPA)/bPPA)
	}

	// Bottleneck-guided walk from the baseline (Figure 3/10 flavour).
	fmt.Println("\nbottleneck-guided walk (Figure 3/10):")
	ev := dse.NewEvaluator(uarch.StandardSpace(), suite, 6000)
	pt := ev.Space.Nearest(base)
	for step := 0; step < 5; step++ {
		e, err := ev.Probe(pt)
		if err != nil {
			log.Fatal(err)
		}
		top := e.Report.Top()
		topName := "none"
		if len(top) > 0 {
			topName = fmt.Sprintf("%s (%.1f%%)", top[0], 100*e.Report.Contrib[top[0]])
		}
		fmt.Printf("  step %d: tradeoff %.4f, top bottleneck %s\n", step, e.Tradeoff(), topName)
		moved := false
		for _, res := range top {
			for _, p := range uarch.ResourceParams(res) {
				if ev.Space.Step(&pt, p, 1) {
					moved = true
					break
				}
			}
			if moved {
				break
			}
		}
		if !moved {
			break
		}
	}
}
