// Critical-path example: contrast the new DEG formulation with the
// previous (Calipers-style) one on the same microexecution — the Section 3
// error analysis in runnable form. The previous formulation's statically
// weighted critical path misestimates the runtime; the new formulation's
// path telescopes to it exactly.
package main

import (
	"fmt"
	"log"

	"archexplorer/internal/calipers"
	"archexplorer/internal/deg"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	cfg := uarch.Baseline()
	for _, name := range []string{"444.namd", "456.hmmer"} {
		profile, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		stream, err := workload.Trace(profile, 8000)
		if err != nil {
			log.Fatal(err)
		}
		core, err := ooo.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		trace, _, err := core.Run(stream)
		if err != nil {
			log.Fatal(err)
		}

		// Previous formulation: static weights, producer-consumer edges.
		old, err := calipers.Build(trace, calipers.Config{
			ROBEntries: cfg.ROBEntries, IQEntries: cfg.IQEntries,
			LQEntries: cfg.LQEntries, SQEntries: cfg.SQEntries,
			Width: cfg.Width, RdWrPorts: cfg.RdWrPorts,
		})
		if err != nil {
			log.Fatal(err)
		}
		oldPath, err := old.CriticalPath()
		if err != nil {
			log.Fatal(err)
		}

		// New formulation: dynamic events, induced DEG, Algorithm 1.
		report, _, newPath, err := deg.Analyze(trace, deg.Options{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", name)
		fmt.Printf("actual runtime:            %6d cycles\n", trace.Cycles)
		fmt.Printf("previous DEG estimate:     %6d cycles (%+.2f%% error)\n",
			oldPath.Length, 100*float64(oldPath.Length-trace.Cycles)/float64(trace.Cycles))
		fmt.Printf("new DEG critical path:     %6d cycles spanned (telescopes exactly)\n", newPath.Span)
		fmt.Printf("RdWrPort attribution:      previous %d cycles vs new %d cycles\n\n",
			oldPath.DelayByRes[uarch.ResRdWrPort], report.DelayByRes[uarch.ResRdWrPort])
	}
}
