// Quickstart: simulate the Table 1 baseline on one workload, compute its
// power and area, and print the critical-path bottleneck report — the
// complete ArchExplorer analysis pipeline in ~40 lines.
package main

import (
	"fmt"
	"log"

	"archexplorer/internal/deg"
	"archexplorer/internal/mcpat"
	"archexplorer/internal/ooo"
	"archexplorer/internal/uarch"
	"archexplorer/internal/workload"
)

func main() {
	// 1. Pick a microarchitecture (Table 1 baseline) and a workload.
	cfg := uarch.Baseline()
	profile, err := workload.ByName("458.sjeng")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.Trace(profile, 20000)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run the cycle-level out-of-order simulation.
	core, err := ooo.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, stats, err := core.Run(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config: %s\n", cfg)
	fmt.Printf("simulated %d instructions in %d cycles: IPC %.4f\n",
		stats.Committed, stats.Cycles, stats.IPC())

	// 3. Power and area from the analytical McPAT-style model.
	pw, err := mcpat.Evaluate(cfg, stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power %.4f W, area %.4f mm2, PPA trade-off %.4f\n\n",
		pw.PowerW, pw.AreaMM2, mcpat.PPA(stats.IPC(), pw.PowerW, pw.AreaMM2))

	// 4. Build the induced DEG, construct the critical path, and print the
	// bottleneck contributions (Equations 1).
	report, graph, path, err := deg.Analyze(trace, deg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("induced DEG: %d vertices, %d edges; critical path spans %d cycles\n\n",
		graph.NumVertices, graph.NumEdges(), path.Span)
	fmt.Print(report)
}
